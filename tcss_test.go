package tcss

import (
	"errors"
	"math"
	"testing"

	"tcss/internal/core"
	"tcss/internal/graph"
	"tcss/internal/lbsn"
)

// smallDataset builds a quick dataset for API tests.
func smallDataset(t *testing.T, seed int64) *Dataset {
	t.Helper()
	cfg, err := lbsn.NewPreset("gmu-5k", seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Users, cfg.POIs, cfg.CheckInsPerUser = 48, 40, 20
	ds, err := lbsn.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Epochs = 30
	cfg.Rank = 5
	cfg.Seed = 3
	return cfg
}

func TestFitEvaluateRecommend(t *testing.T) {
	ds := smallDataset(t, 1)
	rec, err := Fit(ds, Month, quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := rec.Evaluate()
	if res.HitAtK < 0 || res.HitAtK > 1 || math.IsNaN(res.MRR) {
		t.Fatalf("bad evaluation result %+v", res)
	}
	recs := rec.Recommend(0, 5, 5)
	if len(recs) == 0 || len(recs) > 5 {
		t.Fatalf("Recommend returned %d items", len(recs))
	}
	// Already-visited POIs must be excluded.
	visited := map[int]bool{}
	for _, j := range rec.Side.OwnPOIs[0] {
		visited[j] = true
	}
	for _, r := range recs {
		if visited[r.POI] {
			t.Fatalf("recommended already-visited POI %d", r.POI)
		}
	}
	// Scores sorted descending.
	for i := 1; i < len(recs); i++ {
		if recs[i].Score > recs[i-1].Score {
			t.Fatal("recommendations not sorted by score")
		}
	}
}

func TestFitRejectsInvalidDataset(t *testing.T) {
	ds := smallDataset(t, 2)
	ds.CheckIns[0].POI = 9999
	if _, err := Fit(ds, Month, quickConfig()); err == nil {
		t.Fatal("invalid dataset must be rejected")
	}
}

func TestFitSplitFractions(t *testing.T) {
	ds := smallDataset(t, 3)
	rec, err := FitSplit(ds, Month, quickConfig(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	total := rec.Train.NNZ() + len(rec.Test)
	if rec.Train.NNZ() != total/2 && rec.Train.NNZ() != (total+1)/2 {
		t.Fatalf("50%% split gave %d train of %d", rec.Train.NNZ(), total)
	}
}

func TestGenerateSaveLoadDataset(t *testing.T) {
	ds := GenerateDataset("gmu-5k", 4)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveDataset(ds, dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(dir, ds.Name)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumUsers != ds.NumUsers || len(back.CheckIns) != len(ds.CheckIns) {
		t.Fatal("save/load round trip lost data")
	}
}

func TestVariantsThroughPublicAPI(t *testing.T) {
	ds := smallDataset(t, 5)
	for _, variant := range []HausdorffVariant{SocialHausdorff, SelfHausdorff, NoHausdorff, ZeroOut} {
		cfg := quickConfig()
		cfg.Epochs = 5
		cfg.Variant = variant
		if variant == NoHausdorff {
			cfg.Lambda = 0
		}
		if _, err := Fit(ds, Month, cfg); err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
	}
}

func TestGranularities(t *testing.T) {
	ds := smallDataset(t, 6)
	for _, gran := range []Granularity{Month, Week, Hour} {
		cfg := quickConfig()
		cfg.Epochs = 3
		rec, err := Fit(ds, gran, cfg)
		if err != nil {
			t.Fatalf("%v: %v", gran, err)
		}
		if rec.Train.DimK != gran.Len() {
			t.Fatalf("%v: tensor K = %d", gran, rec.Train.DimK)
		}
	}
}

func TestPaperConfigValues(t *testing.T) {
	cfg := PaperConfig()
	if cfg.LR != 0.001 || cfg.WeightDecay != 0.1 || cfg.Lambda != 0.1 {
		t.Fatalf("PaperConfig = %+v", cfg)
	}
	def := DefaultConfig()
	if def.Rank != 10 || def.WPos != 0.99 || def.WNeg != 0.01 || def.Alpha != -1 {
		t.Fatalf("DefaultConfig core values differ from the paper: %+v", def)
	}
}

func TestExplainThroughPublicAPI(t *testing.T) {
	ds := smallDataset(t, 8)
	cfg := quickConfig()
	cfg.Epochs = 10
	rec, err := Fit(ds, Month, cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := rec.Recommend(0, 3, 3)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	ex := rec.Explain(0, recs[0].POI, 3)
	if ex.User != 0 || ex.POI != recs[0].POI {
		t.Fatal("explanation identity wrong")
	}
	if math.Abs(ex.Score-recs[0].Score) > 1e-12 {
		t.Fatalf("explanation score %g != recommendation score %g", ex.Score, recs[0].Score)
	}
	if ex.VisitProbability < 0 || ex.VisitProbability > 1 {
		t.Fatalf("visit probability %g out of range", ex.VisitProbability)
	}
	if ex.String() == "" {
		t.Fatal("empty explanation string")
	}
}

func TestSaveLoadModelThroughPublicAPI(t *testing.T) {
	ds := smallDataset(t, 9)
	cfg := quickConfig()
	cfg.Epochs = 5
	rec, err := Fit(ds, Month, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.json"
	if err := rec.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict(0, 1, 2) != rec.Model.Predict(0, 1, 2) {
		t.Fatal("loaded model differs")
	}
}

func TestObserveOnlineUpdate(t *testing.T) {
	ds := smallDataset(t, 10)
	cfg := quickConfig()
	cfg.Epochs = 20
	rec, err := Fit(ds, Month, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A brand-new check-in at an unobserved cell.
	var newCI lbsn.CheckIn
	found := false
	for u := 0; u < ds.NumUsers && !found; u++ {
		for j := 0; j < len(ds.POIs) && !found; j++ {
			for k := 0; k < 12 && !found; k++ {
				if !rec.Train.Has(u, j, k) && rec.Score(u, j, k) < 0.5 {
					newCI = lbsn.CheckIn{User: u, POI: j, Month: k, Week: k * 4, Hour: 10}
					found = true
				}
			}
		}
	}
	if !found {
		t.Skip("no unobserved low-scored cell")
	}
	before := rec.Score(newCI.User, newCI.POI, newCI.Month)
	ocfg := DefaultOnlineConfig()
	added, err := rec.Observe([]lbsn.CheckIn{newCI}, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("added = %d, want 1", added)
	}
	after := rec.Score(newCI.User, newCI.POI, newCI.Month)
	if after <= before {
		t.Fatalf("observed check-in score must rise (%g -> %g)", before, after)
	}
	if !rec.Train.Has(newCI.User, newCI.POI, newCI.Month) {
		t.Fatal("tensor must contain the new cell")
	}
}

func TestObserveTransactionalRollback(t *testing.T) {
	ds := smallDataset(t, 11)
	cfg := quickConfig()
	cfg.Epochs = 10
	rec, err := Fit(ds, Month, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find an unobserved cell so UpdateOnline itself succeeds.
	var newCI lbsn.CheckIn
	found := false
	for u := 0; u < ds.NumUsers && !found; u++ {
		for j := 0; j < len(ds.POIs) && !found; j++ {
			if !rec.Train.Has(u, j, 0) {
				newCI = lbsn.CheckIn{User: u, POI: j, Month: 0, Week: 0, Hour: 0}
				found = true
			}
		}
	}
	if !found {
		t.Skip("no unobserved cell")
	}
	// Sabotage the side-information rebuild: a social graph that no longer
	// covers the user dimension makes core.BuildSideInfo fail AFTER the
	// factor update has succeeded.
	goodSocial := rec.Dataset.Social
	rec.Dataset.Social = graph.New(1)
	modelBefore, trainBefore, sideBefore := rec.Model, rec.Train, rec.Side
	scoreBefore := rec.Score(newCI.User, newCI.POI, 0)
	checkInsBefore := len(rec.Dataset.CheckIns)

	added, err := rec.Observe([]lbsn.CheckIn{newCI}, DefaultOnlineConfig())
	if !errors.Is(err, ErrObserveReverted) {
		t.Fatalf("err = %v, want ErrObserveReverted", err)
	}
	if added != 0 {
		t.Fatalf("failed observe reported %d added cells", added)
	}
	if rec.Model != modelBefore || rec.Train != trainBefore || rec.Side != sideBefore {
		t.Fatal("failed observe must leave model, tensor and side info untouched")
	}
	if rec.Train.Has(newCI.User, newCI.POI, 0) {
		t.Fatal("failed observe leaked the new cell into the training tensor")
	}
	if got := rec.Score(newCI.User, newCI.POI, 0); got != scoreBefore {
		t.Fatalf("failed observe moved the score %g -> %g", scoreBefore, got)
	}
	if len(rec.Dataset.CheckIns) != checkInsBefore {
		t.Fatal("failed observe appended check-ins")
	}

	// With the graph restored the identical observe goes through, and the
	// commit swaps fresh objects rather than mutating the published ones.
	rec.Dataset.Social = goodSocial
	added, err = rec.Observe([]lbsn.CheckIn{newCI}, DefaultOnlineConfig())
	if err != nil || added != 1 {
		t.Fatalf("observe after restore = %d, %v", added, err)
	}
	if rec.Model == modelBefore || rec.Train == trainBefore {
		t.Fatal("successful observe must swap in fresh model and tensor objects")
	}
	if trainBefore.Has(newCI.User, newCI.POI, 0) {
		t.Fatal("pre-observe tensor snapshot was mutated in place")
	}
}

func TestAttachModelRoundTrip(t *testing.T) {
	ds := smallDataset(t, 12)
	cfg := quickConfig()
	cfg.Epochs = 5
	rec, err := Fit(ds, Month, cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.json"
	if err := rec.SaveModel(path); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := AttachModel(m, ds, Month, cfg, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if back.Train.NNZ() != rec.Train.NNZ() || len(back.Test) != len(rec.Test) {
		t.Fatalf("attach reproduced split %d/%d, want %d/%d",
			back.Train.NNZ(), len(back.Test), rec.Train.NNZ(), len(rec.Test))
	}
	a, b := rec.Recommend(0, 3, 5), back.Recommend(0, 3, 5)
	if len(a) != len(b) {
		t.Fatalf("recommendation count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A model smaller than the dataset, or with a different time axis, must
	// be rejected.
	if m.I > 1 {
		small := core.NewModel(m.I-1, m.J, m.K, m.Rank)
		if _, err := AttachModel(small, ds, Month, cfg, 0.8); err == nil {
			t.Fatal("smaller model shape must be rejected")
		}
	}
	wrongK := core.NewModel(m.I, m.J, m.K+1, m.Rank)
	if _, err := AttachModel(wrongK, ds, Month, cfg, 0.8); err == nil {
		t.Fatal("mismatched time axis must be rejected")
	}
	// A LARGER model is the open-world growth case: the dataset is grown to
	// match and serving resumes with the extra rows intact.
	bigger := core.NewModel(m.I+2, m.J+1, m.K, m.Rank)
	grownRec, err := AttachModel(bigger, ds, Month, cfg, 0.8)
	if err != nil {
		t.Fatalf("grown model must attach: %v", err)
	}
	if grownRec.Dataset.NumUsers != m.I+2 || len(grownRec.Dataset.POIs) != m.J+1 {
		t.Fatalf("dataset not grown to model dims: %d users, %d POIs",
			grownRec.Dataset.NumUsers, len(grownRec.Dataset.POIs))
	}
	if got := len(grownRec.Side.OwnPOIs); got != m.I+2 {
		t.Fatalf("side info covers %d users, want %d", got, m.I+2)
	}
	_ = grownRec.Recommend(m.I+1, 3, 5) // grown row must be servable
}

func TestFriendPOIs(t *testing.T) {
	ds := smallDataset(t, 7)
	cfg := quickConfig()
	cfg.Epochs = 2
	rec, err := Fit(ds, Month, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < ds.NumUsers; u++ {
		for _, j := range rec.FriendPOIs(u) {
			if j < 0 || j >= len(ds.POIs) {
				t.Fatalf("friend POI %d out of range", j)
			}
		}
	}
}
