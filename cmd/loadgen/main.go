// Command loadgen drives the tcss serving API and reports throughput and
// latency. By default it self-hosts: it trains a model on a preset dataset,
// starts the internal/serve server on a loopback listener, and hammers it
// over real HTTP. Point -url at a running `tcss serve` to load an external
// server instead (then -users and -times must describe the model dims).
//
// Two load models:
//
//	loadgen -conns 8 -duration 10s             # closed loop: 8 workers, b2b
//	loadgen -rate 2000 -duration 10s           # open loop: 2000 req/s target
//
// A fraction of requests (-observe-frac) are POST /v1/observe batches with a
// random check-in, exercising the snapshot-swap path and cache invalidation
// under read load. With -drift, an open-world stream (datagen -drift-weeks)
// is additionally fed through /v1/observe week by week while reads run, so
// the served model grows — new users, new POIs — under live traffic. Results
// (throughput, client-side percentiles, error counts, server-side /metrics
// scrape) are written as JSON to -out.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tcss"
	"tcss/internal/core"
	"tcss/internal/lbsn"
	"tcss/internal/replay"
	"tcss/internal/serve"
)

type options struct {
	url         string
	preset      string
	seed        int64
	gran        string
	epochs      int
	rank        int
	conns       int
	rate        float64
	duration    time.Duration
	observeFrac float64
	nextFrac    float64
	topN        int
	users       int
	pois        int
	times       int
	retries     int
	retryCap    time.Duration
	out         string

	storage       string
	coalesce      bool
	coalesceWin   time.Duration
	coalesceBatch int
	noCache       bool

	verify    bool
	synthRank int
	ver       *verifier

	requireModels string
	requireShadow bool

	drift         string
	driftInterval time.Duration
}

// sample is one completed request, classified for aggregation. status and ms
// describe the final attempt; retries counts the 503-and-retried attempts
// before it, netRetries the 504s, transport errors and torn bodies retried.
type sample struct {
	observe    bool
	next       bool
	status     int
	ms         float64
	cacheHit   bool
	retries    int
	netRetries int
	model      string // routed model from the X-Model header
	body       []byte // final-attempt response body, captured only under -verify
}

func main() {
	var o options
	flag.StringVar(&o.url, "url", "", "target server base URL (empty = self-host in process)")
	flag.StringVar(&o.preset, "preset", "gowalla", fmt.Sprintf("self-host preset dataset, one of %v", lbsn.PresetNames()))
	flag.Int64Var(&o.seed, "seed", 7, "seed for dataset, training and request generation")
	flag.StringVar(&o.gran, "granularity", "month", "self-host time granularity: month, week or hour")
	flag.IntVar(&o.epochs, "epochs", 0, "self-host training epochs (0 = default)")
	flag.IntVar(&o.rank, "rank", 0, "self-host embedding rank (0 = default)")
	flag.IntVar(&o.conns, "conns", 8, "closed-loop worker connections")
	flag.Float64Var(&o.rate, "rate", 0, "open-loop target requests/s (0 = closed loop)")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "measurement duration")
	flag.Float64Var(&o.observeFrac, "observe-frac", 0.001, "fraction of requests that are observe batches")
	flag.Float64Var(&o.nextFrac, "next-frac", 0, "fraction of requests that are POST /v1/next with a random check-in sequence (requires -url against a server with a sequential model)")
	flag.IntVar(&o.topN, "n", 10, "top-N per recommend request")
	flag.IntVar(&o.users, "users", 0, "user id range for -url mode (ignored when self-hosting)")
	flag.IntVar(&o.pois, "pois", 0, "poi id range for -url mode (ignored when self-hosting)")
	flag.IntVar(&o.times, "times", 0, "time unit range for -url mode (ignored when self-hosting)")
	flag.IntVar(&o.retries, "retries", 3, "max retries per request on 503, 504 and transport errors (0 disables)")
	flag.DurationVar(&o.retryCap, "retry-cap", 500*time.Millisecond, "ceiling on per-retry backoff (Retry-After is clamped to this)")
	flag.StringVar(&o.out, "out", "BENCH_PR3.json", "output JSON path")
	flag.StringVar(&o.storage, "storage", "", "self-host factor storage: f64 (default), f32, int8")
	flag.BoolVar(&o.coalesce, "coalesce", false, "self-host with request coalescing (batched slab scoring)")
	flag.DurationVar(&o.coalesceWin, "coalesce-window", 0, "coalescing window (0 = server default 200µs)")
	flag.IntVar(&o.coalesceBatch, "coalesce-batch", 0, "coalescing flush threshold (0 = server default 32)")
	flag.BoolVar(&o.noCache, "no-cache", false, "self-host with the response cache disabled (bench the scoring path)")
	flag.BoolVar(&o.verify, "verify", false, "recompute every recommend response from the synthetic model and exit nonzero on any mismatch (requires -url against a -synth-* cluster with matching -users/-pois/-times/-synth-rank/-seed, and -observe-frac 0)")
	flag.IntVar(&o.synthRank, "synth-rank", 8, "synthetic model embedding rank for -verify")
	flag.StringVar(&o.requireModels, "require-models", "", "comma-separated model names that must show served traffic in the target's /metrics (exit nonzero otherwise)")
	flag.BoolVar(&o.requireShadow, "require-shadow", false, "require the target's /metrics to show completed shadow scoring (exit nonzero otherwise)")
	flag.StringVar(&o.drift, "drift", "", "open-world traffic: feed this drift stream (JSONL from datagen -drift-weeks) through /v1/observe while the read load runs; self-hosting enables growth")
	flag.DurationVar(&o.driftInterval, "drift-interval", 0, "pause between drift week batches (0 = spread evenly over -duration)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(o options) (err error) {
	base := o.url
	if base == "" {
		var stop func()
		base, stop, err = selfHost(&o)
		if err != nil {
			return err
		}
		defer stop()
	} else {
		base = strings.TrimRight(base, "/")
		if o.users <= 0 || o.times <= 0 {
			return fmt.Errorf("-url mode requires -users and -times (the served model's dims)")
		}
		if o.observeFrac > 0 && o.pois <= 0 {
			return fmt.Errorf("-url mode with -observe-frac > 0 requires -pois")
		}
	}
	if o.nextFrac > 0 {
		if o.url == "" {
			return fmt.Errorf("-next-frac requires -url (the target must serve a sequential model on /v1/next)")
		}
		if o.pois <= 0 {
			return fmt.Errorf("-next-frac requires -pois (check-in sequences draw random POI ids)")
		}
	}
	if o.verify {
		switch {
		case o.url == "":
			return fmt.Errorf("-verify requires -url (the target must serve the synthetic model)")
		case o.observeFrac != 0:
			return fmt.Errorf("-verify requires -observe-frac 0 (observes would advance the served model past the local copy)")
		case o.drift != "":
			return fmt.Errorf("-verify is incompatible with -drift (growth advances the served model past the local copy)")
		case o.pois <= 0:
			return fmt.Errorf("-verify requires -pois (the synthetic model's POI count)")
		}
		o.ver, err = newVerifier(o)
		if err != nil {
			return err
		}
		fmt.Printf("loadgen: verifying against local synthetic model (users=%d pois=%d times=%d rank=%d seed=%d)\n",
			o.users, o.pois, o.times, o.synthRank, o.seed)
	}

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        o.conns + 64,
			MaxIdleConnsPerHost: o.conns + 64,
		},
	}
	results := make(chan sample, 8192)
	var agg aggregate
	collectDone := make(chan struct{})
	go func() {
		defer close(collectDone)
		for s := range results {
			agg.add(s)
		}
	}()

	fmt.Printf("loadgen: %s for %s (", base, o.duration)
	if o.rate > 0 {
		fmt.Printf("open loop, %g req/s target", o.rate)
	} else {
		fmt.Printf("closed loop, %d conns", o.conns)
	}
	fmt.Printf(", observe-frac %g)\n", o.observeFrac)

	// Open-world feed: one goroutine walks the drift stream's weekly batches
	// through /v1/observe while the read load runs, growing the served model
	// in place. Reads racing the growth are the point of the exercise.
	var (
		driftRep *driftReport
		driftWG  sync.WaitGroup
	)
	if o.drift != "" {
		weeks, err := lbsn.ReadWeeksJSONLFile(o.drift)
		if err != nil {
			return err
		}
		driftRep = &driftReport{WeeksTotal: len(weeks)}
		target := &replay.HTTPTarget{BaseURL: base, Client: client}
		if u, p, err := target.Dims(); err == nil {
			driftRep.UsersBefore, driftRep.POIsBefore = u, p
		}
		interval := o.driftInterval
		if interval <= 0 && len(weeks) > 0 {
			interval = o.duration / time.Duration(len(weeks)+1)
		}
		deadline := time.Now().Add(o.duration)
		fmt.Printf("loadgen: drift feed %s (%d weeks, one per %s)\n", o.drift, len(weeks), interval)
		driftWG.Add(1)
		go func() {
			defer driftWG.Done()
			for _, wb := range weeks {
				if time.Now().After(deadline) {
					return
				}
				if _, err := target.ObserveWeek(wb); err != nil {
					driftRep.Errors++
					if driftRep.FirstError == "" {
						driftRep.FirstError = err.Error()
					}
				} else {
					driftRep.WeeksApplied++
				}
				time.Sleep(interval)
			}
		}()
	}

	start := time.Now()
	if o.rate > 0 {
		runOpenLoop(o, base, client, results)
	} else {
		runClosedLoop(o, base, client, results)
	}
	elapsed := time.Since(start)
	driftWG.Wait()
	close(results)
	<-collectDone

	report := agg.report(o, elapsed)
	report.Server = scrapeMetrics(client, base)
	if driftRep != nil {
		if u, p, err := (&replay.HTTPTarget{BaseURL: base, Client: client}).Dims(); err == nil {
			driftRep.UsersAfter, driftRep.POIsAfter = u, p
		}
		report.Drift = driftRep
	}
	if o.ver != nil {
		o.ver.mu.Lock()
		report.Verify = &verifyReport{
			Checked:       o.ver.checked.Load(),
			Mismatches:    o.ver.mismatches.Load(),
			FirstMismatch: o.ver.first,
		}
		o.ver.mu.Unlock()
	}

	raw, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if err := os.WriteFile(o.out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("recommend: %d ok, %.0f req/s, p50 %.3fms p95 %.3fms p99 %.3fms, client cache-hit %.1f%%\n",
		report.Recommend.OK, report.Recommend.RPS,
		report.Recommend.P50ms, report.Recommend.P95ms, report.Recommend.P99ms,
		100*report.Recommend.CacheHitFrac)
	if o.nextFrac > 0 {
		fmt.Printf("next: %d ok, %.0f req/s, p50 %.3fms p95 %.3fms p99 %.3fms, client cache-hit %.1f%%\n",
			report.Next.OK, report.Next.RPS,
			report.Next.P50ms, report.Next.P95ms, report.Next.P99ms,
			100*report.Next.CacheHitFrac)
	}
	if len(report.Models) > 0 {
		names := make([]string, 0, len(report.Models))
		for name := range report.Models {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			cs := report.Models[name]
			fmt.Printf("model %s: %d recommends (p99 %.3fms), %d nexts (p99 %.3fms)\n",
				name, cs.Recommends, cs.P99ms, cs.Nexts, cs.NextP99ms)
		}
	}
	if report.Drift != nil {
		d := report.Drift
		fmt.Printf("drift: %d/%d weeks applied (%d errors), model %dx%d -> %dx%d\n",
			d.WeeksApplied, d.WeeksTotal, d.Errors,
			d.UsersBefore, d.POIsBefore, d.UsersAfter, d.POIsAfter)
	}
	fmt.Printf("observe: %d ok, %d shed; errors: %d shed_503, %d deadline_504, %d other\n",
		report.Observe.OK, report.Observe.Shed,
		report.Errors.Shed503, report.Errors.Deadline504, report.Errors.Other)
	fmt.Printf("retries: %d recommend, %d observe (on 503, honoring Retry-After, cap %s)\n",
		report.Recommend.Retries, report.Observe.Retries, o.retryCap)
	fmt.Printf("net retries: %d recommend, %d next, %d observe (on 504, transport errors and torn bodies)\n",
		report.Recommend.NetRetries, report.Next.NetRetries, report.Observe.NetRetries)
	printServerStats(report.Server)
	fmt.Printf("wrote %s\n", o.out)
	if report.Verify != nil {
		fmt.Printf("verify: %d responses checked against the local model, %d mismatches\n",
			report.Verify.Checked, report.Verify.Mismatches)
		if report.Verify.Mismatches > 0 {
			return fmt.Errorf("verify: %d mismatched responses (first: %s)",
				report.Verify.Mismatches, report.Verify.FirstMismatch)
		}
		if report.Verify.Checked == 0 {
			return fmt.Errorf("verify: no successful recommend responses to check")
		}
	}
	if o.requireModels != "" || o.requireShadow {
		if err := checkServerModels(report.Server, o); err != nil {
			return err
		}
		fmt.Println("require: server-side model and shadow checks passed")
	}
	return nil
}

// checkServerModels asserts multi-model serving invariants against the
// scraped /metrics document: every -require-models name must have served
// traffic, and -require-shadow demands completed off-path shadow scorings
// with a sane agreement fraction.
func checkServerModels(raw json.RawMessage, o options) error {
	if raw == nil {
		return fmt.Errorf("require: /metrics scrape failed, cannot check models")
	}
	var m struct {
		Models []struct {
			Name         string `json:"name"`
			Requests     int64  `json:"requests"`
			NextRequests int64  `json:"next_requests"`
			Shadow       struct {
				Scored       int64   `json:"scored"`
				Errors       int64   `json:"errors"`
				AgreementAvg float64 `json:"agreement_avg"`
			} `json:"shadow"`
		} `json:"models"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("require: decoding /metrics: %w", err)
	}
	byName := make(map[string]int)
	for i, ms := range m.Models {
		byName[ms.Name] = i
	}
	if o.requireModels != "" {
		for _, name := range strings.Split(o.requireModels, ",") {
			name = strings.TrimSpace(name)
			i, ok := byName[name]
			if !ok {
				return fmt.Errorf("require: model %q absent from server /metrics", name)
			}
			if m.Models[i].Requests+m.Models[i].NextRequests == 0 {
				return fmt.Errorf("require: model %q served no traffic", name)
			}
		}
	}
	if o.requireShadow {
		var scored int64
		for _, ms := range m.Models {
			scored += ms.Shadow.Scored
			if avg := ms.Shadow.AgreementAvg; avg < 0 || avg > 1 {
				return fmt.Errorf("require: model %q shadow agreement %g outside [0,1]", ms.Name, avg)
			}
		}
		if scored == 0 {
			return fmt.Errorf("require: no completed shadow scorings on the server")
		}
		fmt.Printf("require: %d shadow scorings completed\n", scored)
	}
	return nil
}

// printServerStats summarizes the model-storage and coalescing blocks of the
// scraped /metrics document (the full document is embedded in the report).
func printServerStats(raw json.RawMessage) {
	if raw == nil {
		return
	}
	var m struct {
		Model struct {
			Storage      string  `json:"storage"`
			FactorBytes  int64   `json:"factor_bytes"`
			BytesPerUser float64 `json:"bytes_per_user"`
		} `json:"model"`
		Coalesce struct {
			Enabled      bool    `json:"enabled"`
			Batches      int64   `json:"batches"`
			Requests     int64   `json:"requests"`
			AvgBatchSize float64 `json:"avg_batch_size"`
		} `json:"coalesce"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return
	}
	if m.Model.Storage != "" {
		fmt.Printf("server model: %s storage, %d factor bytes (%.1f per user)\n",
			m.Model.Storage, m.Model.FactorBytes, m.Model.BytesPerUser)
	}
	if m.Coalesce.Enabled {
		fmt.Printf("server coalesce: %d batches, %d requests, avg batch %.2f\n",
			m.Coalesce.Batches, m.Coalesce.Requests, m.Coalesce.AvgBatchSize)
	}
}

// selfHost trains a recommender on the preset and serves it on a loopback
// listener, returning the base URL and a shutdown func. It also fills in
// o.users/o.times from the trained model's dims.
func selfHost(o *options) (string, func(), error) {
	cfg, err := lbsn.NewPreset(o.preset, o.seed)
	if err != nil {
		return "", nil, err
	}
	ds, err := lbsn.Generate(cfg)
	if err != nil {
		return "", nil, err
	}
	var g tcss.Granularity
	switch strings.ToLower(o.gran) {
	case "month":
		g = tcss.Month
	case "week":
		g = tcss.Week
	case "hour":
		g = tcss.Hour
	default:
		return "", nil, fmt.Errorf("unknown granularity %q", o.gran)
	}
	tcfg := tcss.DefaultConfig()
	tcfg.Seed = o.seed
	if o.epochs > 0 {
		tcfg.Epochs = o.epochs
	}
	if o.rank > 0 {
		tcfg.Rank = o.rank
	}
	fmt.Printf("loadgen: training on %s (users=%d pois=%d epochs=%d)...\n",
		o.preset, ds.NumUsers, len(ds.POIs), tcfg.Epochs)
	rec, err := tcss.Fit(ds, g, tcfg)
	if err != nil {
		return "", nil, err
	}
	if o.storage != "" {
		mode, err := tcss.ParseStorageMode(o.storage)
		if err != nil {
			return "", nil, err
		}
		m, err := rec.Model.ToStorage(mode)
		if err != nil {
			return "", nil, err
		}
		rec.Model = m
	}
	o.users = rec.Model.I
	o.pois = rec.Model.J
	o.times = rec.Model.K
	fmt.Printf("loadgen: serving %s storage, %d factor bytes (%.1f per user), coalesce=%v cache=%v\n",
		rec.Model.Mode, rec.Model.FactorBytes(),
		float64(rec.Model.FactorBytes())/float64(rec.Model.I), o.coalesce, !o.noCache)

	opts := serve.Options{
		Coalesce:       o.coalesce,
		CoalesceWindow: o.coalesceWin,
		CoalesceBatch:  o.coalesceBatch,
		// An open-world drift feed needs the observe path to grow the model.
		Grow: o.drift != "",
	}
	if o.noCache {
		opts.CacheSize = -1
	}
	srv, err := serve.New(rec, opts)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop := func() {
		ln.Close()
		srv.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// runClosedLoop runs o.conns workers issuing back-to-back requests until the
// duration elapses.
func runClosedLoop(o options, base string, client *http.Client, results chan<- sample) {
	deadline := time.Now().Add(o.duration)
	var wg sync.WaitGroup
	for w := 0; w < o.conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.seed + int64(w)*7919))
			for time.Now().Before(deadline) {
				results <- issue(o, base, client, rng)
			}
		}(w)
	}
	wg.Wait()
}

// runOpenLoop fires requests at a fixed target rate regardless of completion
// times; each request runs in its own goroutine, so latency under saturation
// reflects queueing rather than back-pressure on the generator.
func runOpenLoop(o options, base string, client *http.Client, results chan<- sample) {
	interval := time.Duration(float64(time.Second) / o.rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.Now().Add(o.duration)
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		rng = rand.New(rand.NewSource(o.seed))
	)
	for time.Now().Before(deadline) {
		<-ticker.C
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			r := rand.New(rand.NewSource(rng.Int63()))
			mu.Unlock()
			results <- issue(o, base, client, r)
		}()
	}
	wg.Wait()
}

// issue performs one request: an observe batch with probability observeFrac,
// otherwise a recommend query with uniform random user and time unit.
func issue(o options, base string, client *http.Client, rng *rand.Rand) sample {
	if rng.Float64() < o.observeFrac {
		body, _ := json.Marshal(map[string]any{
			"checkins": []map[string]int{{
				"user":  rng.Intn(o.users),
				"poi":   rng.Intn(o.pois),
				"month": rng.Intn(12),
				"week":  rng.Intn(53),
				"hour":  rng.Intn(24),
			}},
		})
		s := timed(o, rng, func() (*http.Response, error) {
			return client.Post(base+"/v1/observe", "application/json", bytes.NewReader(body))
		})
		s.observe = true
		return s
	}
	if o.nextFrac > 0 && rng.Float64() < o.nextFrac {
		return issueNext(o, base, client, rng)
	}
	user, t := rng.Intn(o.users), rng.Intn(o.times)
	url := fmt.Sprintf("%s/v1/recommend?user=%d&t=%d&n=%d", base, user, t, o.topN)
	s := timed(o, rng, func() (*http.Response, error) { return client.Get(url) })
	if o.ver != nil && s.status == http.StatusOK {
		o.ver.check(user, t, o.topN, s.body)
	}
	s.body = nil
	return s
}

// issueNext performs one POST /v1/next with a random check-in sequence of
// 2–8 visits whose time units ascend, mimicking a user trajectory.
func issueNext(o options, base string, client *http.Client, rng *rand.Rand) sample {
	seqLen := 2 + rng.Intn(7)
	ts := make([]int, seqLen)
	for i := range ts {
		ts[i] = rng.Intn(o.times)
	}
	sort.Ints(ts)
	checkins := make([]map[string]int, seqLen)
	for i := range checkins {
		checkins[i] = map[string]int{"poi": rng.Intn(o.pois), "t": ts[i]}
	}
	body, _ := json.Marshal(map[string]any{"checkins": checkins})
	url := fmt.Sprintf("%s/v1/next?user=%d&n=%d", base, rng.Intn(o.users), o.topN)
	s := timed(o, rng, func() (*http.Response, error) {
		return client.Post(url, "application/json", bytes.NewReader(body))
	})
	s.next = true
	s.body = nil
	return s
}

// verifier recomputes expected recommend responses from a local copy of the
// cluster's deterministic synthetic model (see tcss.SynthServing). Scores are
// compared exactly: JSON's shortest-round-trip float64 encoding means a
// correctly-routed, correctly-replicated response decodes to bit-identical
// values, so any inequality is a real serving defect (wrong shard, stale
// generation, torn shipment), not noise.
type verifier struct {
	model *tcss.Model
	side  *tcss.SideInfo
	pool  sync.Pool

	checked    atomic.Int64
	mismatches atomic.Int64

	mu    sync.Mutex
	first string
}

func newVerifier(o options) (*verifier, error) {
	model, side, err := tcss.SynthServing(o.users, o.pois, o.times, o.synthRank, o.seed)
	if err != nil {
		return nil, err
	}
	v := &verifier{model: model, side: side}
	v.pool.New = func() any { return core.NewRecScratch(model) }
	return v, nil
}

func (v *verifier) check(user, t, n int, body []byte) {
	var resp struct {
		Results []struct {
			POI   int     `json:"poi"`
			Score float64 `json:"score"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		v.record(fmt.Sprintf("user=%d t=%d: decoding response: %v", user, t, err))
		return
	}
	sc := v.pool.Get().(*core.RecScratch)
	want := v.model.TopNScratch(user, t, n, v.side.OwnPOIs[user], sc)
	v.pool.Put(sc)
	v.checked.Add(1)
	if len(resp.Results) != len(want) {
		v.record(fmt.Sprintf("user=%d t=%d: %d results, want %d", user, t, len(resp.Results), len(want)))
		return
	}
	for i, got := range resp.Results {
		if got.POI != want[i].POI || got.Score != want[i].Score {
			v.record(fmt.Sprintf("user=%d t=%d rank %d: got poi=%d score=%v, want poi=%d score=%v",
				user, t, i, got.POI, got.Score, want[i].POI, want[i].Score))
			return
		}
	}
}

func (v *verifier) record(msg string) {
	v.mismatches.Add(1)
	v.mu.Lock()
	if v.first == "" {
		v.first = msg
	}
	v.mu.Unlock()
}

// timed issues one request with up to o.retries retries. Retried outcomes:
// 503 (shed or degraded), 504 (deadline budget drained at the gateway),
// transport errors (connection refused/reset, a partitioned gateway) and
// torn response bodies — the latter classes counted separately as network
// retries. The wait before each retry is the larger of the doubling client
// backoff and the server's Retry-After header, capped at o.retryCap and
// jittered to [wait/2, wait) so retry storms decorrelate. The returned
// latency covers the whole episode, backoff included.
func timed(o options, rng *rand.Rand, send func() (*http.Response, error)) sample {
	start := time.Now()
	var s sample
	backoff := 25 * time.Millisecond
	for attempt := 0; ; attempt++ {
		var retryAfter string
		resp, err := send()
		if err != nil {
			s.status, s.cacheHit, s.model, s.body = 0, false, "", nil
		} else {
			s.status = resp.StatusCode
			s.cacheHit = resp.Header.Get("X-Cache") == "HIT"
			s.model = resp.Header.Get("X-Model")
			retryAfter = resp.Header.Get("Retry-After")
			var berr error
			if o.ver != nil {
				s.body, berr = io.ReadAll(resp.Body)
			} else {
				_, berr = io.Copy(io.Discard, resp.Body)
			}
			resp.Body.Close()
			if berr != nil {
				// A torn body is as useless as no response: retry it like a
				// transport failure rather than trusting partial bytes.
				err = berr
				s.status, s.body = 0, nil
			}
		}
		retry := err != nil ||
			s.status == http.StatusServiceUnavailable ||
			s.status == http.StatusGatewayTimeout
		if !retry || attempt >= o.retries {
			break
		}
		wait := backoff
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs > 0 {
			if ra := time.Duration(secs) * time.Second; ra > wait {
				wait = ra
			}
		}
		if wait > o.retryCap {
			wait = o.retryCap
		}
		if half := wait / 2; half > 0 {
			wait = half + time.Duration(rng.Int63n(int64(half)))
		}
		time.Sleep(wait)
		backoff *= 2
		if s.status == http.StatusServiceUnavailable {
			s.retries++
		} else {
			s.netRetries++
		}
	}
	s.ms = float64(time.Since(start)) / float64(time.Millisecond)
	return s
}

// aggregate accumulates samples; single-goroutine (the collector).
type aggregate struct {
	recLat         []float64
	recOK          int
	recHits        int
	recRetries     int
	recNetRetries  int
	nextLat        []float64
	nextOK         int
	nextHits       int
	nextRetries    int
	nextNetRetries int
	obsOK          int
	obsShed        int
	obsBad         int
	obsRetries     int
	obsNetRetries  int
	shed503        int
	missed504      int
	other          int
	models         map[string]*modelAgg
}

// modelAgg is the client-side view of one routed model's traffic.
type modelAgg struct {
	recLat  []float64
	nextLat []float64
}

func (a *aggregate) add(s sample) {
	if s.observe {
		a.obsRetries += s.retries
		a.obsNetRetries += s.netRetries
		switch s.status {
		case http.StatusOK:
			a.obsOK++
		case http.StatusServiceUnavailable:
			a.obsShed++
		case http.StatusBadRequest:
			a.obsBad++ // random POI out of range: expected, still exercised parsing
		default:
			a.other++
		}
		return
	}
	if s.next {
		a.nextRetries += s.retries
		a.nextNetRetries += s.netRetries
		switch s.status {
		case http.StatusOK:
			a.nextOK++
			a.nextLat = append(a.nextLat, s.ms)
			if s.cacheHit {
				a.nextHits++
			}
			a.perModel(s.model).nextLat = append(a.perModel(s.model).nextLat, s.ms)
		case http.StatusServiceUnavailable:
			a.shed503++
		case http.StatusGatewayTimeout:
			a.missed504++
		default:
			a.other++
		}
		return
	}
	a.recRetries += s.retries
	a.recNetRetries += s.netRetries
	switch s.status {
	case http.StatusOK:
		a.recOK++
		a.recLat = append(a.recLat, s.ms)
		if s.cacheHit {
			a.recHits++
		}
		a.perModel(s.model).recLat = append(a.perModel(s.model).recLat, s.ms)
	case http.StatusServiceUnavailable:
		a.shed503++
	case http.StatusGatewayTimeout:
		a.missed504++
	default:
		a.other++
	}
}

// perModel returns the accumulator for one X-Model value. Pre-registry
// servers send no header; that traffic lands under "" and is dropped from
// the models block.
func (a *aggregate) perModel(model string) *modelAgg {
	if a.models == nil {
		a.models = make(map[string]*modelAgg)
	}
	m, ok := a.models[model]
	if !ok {
		m = &modelAgg{}
		a.models[model] = m
	}
	return m
}

// benchReport is the BENCH_PR3.json document.
type benchReport struct {
	Config struct {
		Target      string  `json:"target"`
		Preset      string  `json:"preset,omitempty"`
		Conns       int     `json:"conns,omitempty"`
		RateTarget  float64 `json:"rate_target_rps,omitempty"`
		DurationSec float64 `json:"duration_seconds"`
		ObserveFrac float64 `json:"observe_frac"`
		TopN        int     `json:"topn"`
		Seed        int64   `json:"seed"`
		Retries     int     `json:"retries"`
		RetryCapMs  float64 `json:"retry_cap_ms"`
		Storage     string  `json:"storage,omitempty"`
		Coalesce    bool    `json:"coalesce"`
		NoCache     bool    `json:"no_cache"`
	} `json:"config"`
	Recommend struct {
		OK           int     `json:"ok"`
		RPS          float64 `json:"rps"`
		P50ms        float64 `json:"p50_ms"`
		P95ms        float64 `json:"p95_ms"`
		P99ms        float64 `json:"p99_ms"`
		CacheHitFrac float64 `json:"client_cache_hit_frac"`
		Retries      int     `json:"retries"`
		NetRetries   int     `json:"net_retries"`
	} `json:"recommend"`
	Next struct {
		OK           int     `json:"ok"`
		RPS          float64 `json:"rps"`
		P50ms        float64 `json:"p50_ms"`
		P95ms        float64 `json:"p95_ms"`
		P99ms        float64 `json:"p99_ms"`
		CacheHitFrac float64 `json:"client_cache_hit_frac"`
		Retries      int     `json:"retries"`
		NetRetries   int     `json:"net_retries"`
	} `json:"next"`
	Observe struct {
		OK         int `json:"ok"`
		Shed       int `json:"shed"`
		Bad        int `json:"bad_request"`
		Retries    int `json:"retries"`
		NetRetries int `json:"net_retries"`
	} `json:"observe"`
	Models map[string]clientModelStats `json:"models,omitempty"`
	Errors struct {
		Shed503     int `json:"shed_503"`
		Deadline504 int `json:"deadline_504"`
		Other       int `json:"other"`
	} `json:"errors"`
	Verify *verifyReport   `json:"verify,omitempty"`
	Drift  *driftReport    `json:"drift,omitempty"`
	Server json.RawMessage `json:"server_metrics,omitempty"`
}

// driftReport summarizes the open-world feed of -drift: how much of the
// stream was applied during the run and how far the served model grew.
type driftReport struct {
	WeeksTotal   int    `json:"weeks_total"`
	WeeksApplied int    `json:"weeks_applied"`
	Errors       int    `json:"errors"`
	FirstError   string `json:"first_error,omitempty"`
	UsersBefore  int    `json:"users_before"`
	POIsBefore   int    `json:"pois_before"`
	UsersAfter   int    `json:"users_after"`
	POIsAfter    int    `json:"pois_after"`
}

// clientModelStats is the per-routed-model block of the report, keyed by the
// X-Model response header.
type clientModelStats struct {
	Recommends int     `json:"recommends"`
	P99ms      float64 `json:"p99_ms,omitempty"`
	Nexts      int     `json:"nexts"`
	NextP99ms  float64 `json:"next_p99_ms,omitempty"`
}

type verifyReport struct {
	Checked       int64  `json:"checked"`
	Mismatches    int64  `json:"mismatches"`
	FirstMismatch string `json:"first_mismatch,omitempty"`
}

func (a *aggregate) report(o options, elapsed time.Duration) benchReport {
	var r benchReport
	r.Config.Target = o.url
	if o.url == "" {
		r.Config.Target = "self-hosted"
		r.Config.Preset = o.preset
	}
	if o.rate > 0 {
		r.Config.RateTarget = o.rate
	} else {
		r.Config.Conns = o.conns
	}
	r.Config.DurationSec = elapsed.Seconds()
	r.Config.ObserveFrac = o.observeFrac
	r.Config.TopN = o.topN
	r.Config.Seed = o.seed
	r.Config.Retries = o.retries
	r.Config.RetryCapMs = float64(o.retryCap) / float64(time.Millisecond)
	r.Config.Storage = o.storage
	r.Config.Coalesce = o.coalesce
	r.Config.NoCache = o.noCache

	r.Recommend.OK = a.recOK
	r.Recommend.RPS = float64(a.recOK) / elapsed.Seconds()
	r.Recommend.P50ms, r.Recommend.P95ms, r.Recommend.P99ms = percentiles(a.recLat)
	if a.recOK > 0 {
		r.Recommend.CacheHitFrac = float64(a.recHits) / float64(a.recOK)
	}
	r.Recommend.Retries = a.recRetries
	r.Recommend.NetRetries = a.recNetRetries
	r.Next.OK = a.nextOK
	r.Next.RPS = float64(a.nextOK) / elapsed.Seconds()
	r.Next.P50ms, r.Next.P95ms, r.Next.P99ms = percentiles(a.nextLat)
	if a.nextOK > 0 {
		r.Next.CacheHitFrac = float64(a.nextHits) / float64(a.nextOK)
	}
	r.Next.Retries = a.nextRetries
	r.Next.NetRetries = a.nextNetRetries
	for model, m := range a.models {
		if model == "" {
			continue
		}
		if r.Models == nil {
			r.Models = make(map[string]clientModelStats)
		}
		var cs clientModelStats
		cs.Recommends = len(m.recLat)
		_, _, cs.P99ms = percentiles(m.recLat)
		cs.Nexts = len(m.nextLat)
		_, _, cs.NextP99ms = percentiles(m.nextLat)
		r.Models[model] = cs
	}
	r.Observe.OK = a.obsOK
	r.Observe.Shed = a.obsShed
	r.Observe.Bad = a.obsBad
	r.Observe.Retries = a.obsRetries
	r.Observe.NetRetries = a.obsNetRetries
	r.Errors.Shed503 = a.shed503
	r.Errors.Deadline504 = a.missed504
	r.Errors.Other = a.other
	return r
}

func percentiles(lat []float64) (p50, p95, p99 float64) {
	if len(lat) == 0 {
		return 0, 0, 0
	}
	sorted := make([]float64, len(lat))
	copy(sorted, lat)
	sort.Float64s(sorted)
	at := func(p float64) float64 {
		idx := int(p*float64(len(sorted))) - 1
		if idx < 0 {
			idx = 0
		}
		return sorted[idx]
	}
	return at(0.50), at(0.95), at(0.99)
}

// scrapeMetrics embeds the server's own /metrics document in the report.
func scrapeMetrics(client *http.Client, base string) json.RawMessage {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	return json.RawMessage(raw)
}
