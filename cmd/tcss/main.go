// Command tcss trains and evaluates the TCSS model (or one of its ablation
// variants) on a generated preset or a dataset directory, prints Hit@10 and
// MRR under the paper's protocol, and optionally prints top-N
// recommendations for a user.
//
// Usage:
//
//	tcss -preset gowalla                         # generate, train, evaluate
//	tcss -data ./data/gowalla                    # same on a saved dataset
//	tcss -preset yelp -variant self-hausdorff    # ablation variant
//	tcss -preset gowalla -recommend 12 -time 5   # top POIs for user 12, June
//	tcss -preset gowalla -checkpoint ck.json -checkpoint-every 50
//	tcss -preset gowalla -resume ck.json         # continue a checkpointed run
//	tcss -preset gowalla -storage f32 -save-binary model.bin  # compact + mmap-able
//
// The serve subcommand starts the online recommendation HTTP server instead:
//
//	tcss serve -preset gowalla -addr :8080       # train, then serve /v1/*
//	tcss serve -model model.json -preset gowalla # serve a saved model
//
// The replay subcommand evaluates open-world continuous learning by feeding
// a streaming drift scenario through the online observe path week by week:
//
//	tcss replay -preset gmu-5k -weeks 6 -compare-random -out BENCH_PR9.json
//	tcss replay -preset gmu-5k -weeks 2 -url http://127.0.0.1:8080
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tcss"
	"tcss/internal/fault"
	"tcss/internal/lbsn"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "replay" {
		replayMain(os.Args[2:])
		return
	}
	var (
		preset    = flag.String("preset", "", fmt.Sprintf("generate a preset dataset, one of %v", lbsn.PresetNames()))
		data      = flag.String("data", "", "load a dataset directory written by datagen")
		gran      = flag.String("granularity", "month", "time granularity: month, week or hour")
		variant   = flag.String("variant", "social", "head variant: social, self, none, zero-out")
		initName  = flag.String("init", "spectral", "initialization: spectral, random, one-hot")
		negSample = flag.Bool("negative-sampling", false, "use negative sampling instead of the whole-data loss")
		epochs    = flag.Int("epochs", 0, "training epochs (0 = default)")
		rank      = flag.Int("rank", 0, "embedding rank (0 = default 10)")
		lambda    = flag.Float64("lambda", -1, "social head weight (-1 = default)")
		seed      = flag.Int64("seed", 7, "seed for generation, splitting and training")
		recommend = flag.Int("recommend", -1, "print top-10 recommendations for this user id")
		timeUnit  = flag.Int("time", 0, "time unit for -recommend")

		checkpoint = flag.String("checkpoint", "", "write resumable training checkpoints to this file")
		ckEvery    = flag.Int("checkpoint-every", 0, "checkpoint period in epochs (0 = final epoch only)")
		ckKeep     = flag.Int("checkpoint-keep", 0, "rotated prior checkpoints to keep (path.1 ... path.N)")
		resume     = flag.String("resume", "", "resume training from a checkpoint written by -checkpoint")
		savePath   = flag.String("save", "", "save the trained model to this file")
		saveBinary = flag.String("save-binary", "", "save the trained model in the mmap-loadable v5 binary slab format")
		storage    = flag.String("storage", "", "factor storage of the trained model: f64 (default), f32, int8")
		faultSpec  = flag.String("fault", "", "inject a crash fault for testing: crash-save=N@B kills the process B bytes into the Nth checkpoint save")
	)
	flag.Parse()

	ds, err := loadDataset(*preset, *data, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcss:", err)
		os.Exit(1)
	}
	g, err := parseGranularity(*gran)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcss:", err)
		os.Exit(1)
	}

	cfg := tcss.DefaultConfig()
	cfg.Seed = *seed
	cfg.NegSampling = *negSample
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}
	if *rank > 0 {
		cfg.Rank = *rank
	}
	if *lambda >= 0 {
		cfg.Lambda = *lambda
	}
	if err := applyVariant(&cfg, *variant); err != nil {
		fmt.Fprintln(os.Stderr, "tcss:", err)
		os.Exit(1)
	}
	if err := applyInit(&cfg, *initName); err != nil {
		fmt.Fprintln(os.Stderr, "tcss:", err)
		os.Exit(1)
	}
	if *storage != "" {
		mode, err := tcss.ParseStorageMode(*storage)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcss:", err)
			os.Exit(1)
		}
		cfg.Storage = mode
	}
	cfg.CheckpointPath = *checkpoint
	cfg.CheckpointEvery = *ckEvery
	cfg.CheckpointKeep = *ckKeep
	cfg.ResumePath = *resume
	if *faultSpec != "" {
		fs, err := parseFaultSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcss:", err)
			os.Exit(1)
		}
		cfg.FS = fs
	}

	s := ds.Summary()
	fmt.Printf("dataset %s: users=%d pois=%d check-ins=%d density=%.4f%%\n",
		ds.Name, s.Users, s.POIs, s.CheckIns, 100*s.TensorDensityMonth)
	fmt.Printf("training TCSS (%s, init=%s, rank=%d, epochs=%d, lambda=%g)...\n",
		cfg.Variant, cfg.Init, cfg.Rank, cfg.Epochs, cfg.Lambda)

	rec, err := tcss.Fit(ds, g, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcss:", err)
		os.Exit(1)
	}
	res := rec.Evaluate()
	fmt.Printf("held-out evaluation: Hit@10=%.4f MRR=%.4f (%d test check-ins)\n",
		res.HitAtK, res.MRR, len(rec.Test))

	if *savePath != "" {
		if err := rec.SaveModel(*savePath); err != nil {
			fmt.Fprintln(os.Stderr, "tcss:", err)
			os.Exit(1)
		}
		fmt.Printf("model saved to %s\n", *savePath)
	}
	if *saveBinary != "" {
		if err := rec.SaveModelBinary(*saveBinary); err != nil {
			fmt.Fprintln(os.Stderr, "tcss:", err)
			os.Exit(1)
		}
		fmt.Printf("model saved to %s (%s storage, binary v5, %d factor bytes)\n",
			*saveBinary, rec.Model.Mode, rec.Model.FactorBytes())
	}

	if *recommend >= 0 {
		if *recommend >= ds.NumUsers {
			fmt.Fprintf(os.Stderr, "tcss: user %d out of range (0-%d)\n", *recommend, ds.NumUsers-1)
			os.Exit(1)
		}
		fmt.Printf("top-10 POIs for user %d at %s unit %d:\n", *recommend, g, *timeUnit)
		for rank, r := range rec.Recommend(*recommend, *timeUnit, 10) {
			p := ds.POIs[r.POI]
			fmt.Printf("  %2d. POI %-4d  %-13s (%.4f, %.4f)  score %.4f\n",
				rank+1, r.POI, p.Category, p.Loc.Lat, p.Loc.Lon, r.Score)
		}
	}
}

// parseFaultSpec builds the injected-crash filesystem behind the -fault
// flag. The only spec is "crash-save=N@B": simulate a power loss B bytes
// into the Nth checkpoint save — the byte prefix lands on disk and the
// process dies with exit code 137 (SIGKILL's conventional code), exactly
// what the crash-smoke harness resumes from.
func parseFaultSpec(spec string) (fault.FS, error) {
	rest, ok := strings.CutPrefix(spec, "crash-save=")
	if !ok {
		return nil, fmt.Errorf("unknown -fault spec %q (want crash-save=N@B)", spec)
	}
	nStr, bStr, ok := strings.Cut(rest, "@")
	if !ok {
		return nil, fmt.Errorf("-fault crash-save wants N@B, got %q", rest)
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n < 1 {
		return nil, fmt.Errorf("-fault crash-save: bad save index %q", nStr)
	}
	b, err := strconv.ParseInt(bStr, 10, 64)
	if err != nil || b < 1 {
		return nil, fmt.Errorf("-fault crash-save: bad byte offset %q", bStr)
	}
	inj := fault.NewInjectFS(nil, fault.Plan{CrashFile: n, CrashAtByte: b})
	inj.OnCrash = func() {
		fmt.Fprintf(os.Stderr, "tcss: injected crash %d bytes into checkpoint save %d\n", b, n)
		os.Exit(137)
	}
	return inj, nil
}

func loadDataset(preset, data string, seed int64) (*tcss.Dataset, error) {
	switch {
	case preset != "" && data != "":
		return nil, fmt.Errorf("use either -preset or -data, not both")
	case preset != "":
		cfg, err := lbsn.NewPreset(preset, seed)
		if err != nil {
			return nil, err
		}
		return lbsn.Generate(cfg)
	case data != "":
		return tcss.LoadDataset(data, data)
	default:
		return nil, fmt.Errorf("one of -preset or -data is required")
	}
}

func parseGranularity(s string) (tcss.Granularity, error) {
	switch strings.ToLower(s) {
	case "month":
		return tcss.Month, nil
	case "week":
		return tcss.Week, nil
	case "hour":
		return tcss.Hour, nil
	}
	return tcss.Month, fmt.Errorf("unknown granularity %q", s)
}

func applyVariant(cfg *tcss.Config, s string) error {
	switch strings.ToLower(s) {
	case "social":
		cfg.Variant = tcss.SocialHausdorff
	case "self":
		cfg.Variant = tcss.SelfHausdorff
	case "none":
		cfg.Variant = tcss.NoHausdorff
		cfg.Lambda = 0
	case "zero-out":
		cfg.Variant = tcss.ZeroOut
		cfg.Lambda = 0
	default:
		return fmt.Errorf("unknown variant %q", s)
	}
	return nil
}

func applyInit(cfg *tcss.Config, s string) error {
	switch strings.ToLower(s) {
	case "spectral":
		cfg.Init = tcss.SpectralInit
	case "random":
		cfg.Init = tcss.RandomInit
	case "one-hot":
		cfg.Init = tcss.OneHotInit
	default:
		return fmt.Errorf("unknown init %q", s)
	}
	return nil
}
