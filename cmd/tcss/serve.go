package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tcss"
	"tcss/internal/baselines"
	"tcss/internal/cluster"
	"tcss/internal/geo"
	"tcss/internal/lbsn"
	"tcss/internal/registry"
	"tcss/internal/serve"
)

// serveMain implements `tcss serve`: train (or load) a model and serve it
// over HTTP with the internal/serve online recommendation server.
func serveMain(args []string) {
	fs := flag.NewFlagSet("tcss serve", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `Usage: tcss serve [flags]

Serves recommendations over HTTP: GET /v1/recommend, POST /v1/next,
GET /v1/explain, POST /v1/observe, POST /v1/snapshot/save, GET /metrics,
GET /healthz.

Flags:
`)
		fs.PrintDefaults()
	}
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		preset    = fs.String("preset", "", fmt.Sprintf("generate a preset dataset, one of %v", lbsn.PresetNames()))
		data      = fs.String("data", "", "load a dataset directory written by datagen")
		gran      = fs.String("granularity", "month", "time granularity: month, week or hour")
		seed      = fs.Int64("seed", 7, "seed for generation, splitting and training")
		epochs    = fs.Int("epochs", 0, "training epochs (0 = default)")
		rank      = fs.Int("rank", 0, "embedding rank (0 = default 10)")
		modelPath = fs.String("model", "", "serve a saved model instead of training; its recorded generation is resumed")
		mmapModel = fs.Bool("mmap", false, "memory-map a -model file in the v5 binary format instead of reading it (O(1) restart)")
		storage   = fs.String("storage", "", "serve with this factor storage: f64, f32, int8 (empty keeps the model's mode)")
		snapshot  = fs.String("snapshot", "", "enable POST /v1/snapshot/save writing the model (with generation) here")
		snapKeep  = fs.Int("snapshot-keep", 0, "rotated prior snapshots to keep (path.1 ... path.N)")

		checkpoint = fs.String("checkpoint", "", "write resumable mid-train checkpoints to this file while training")
		ckEvery    = fs.Int("checkpoint-every", 0, "checkpoint period in epochs (0 = final epoch only)")
		ckKeep     = fs.Int("checkpoint-keep", 0, "rotated prior checkpoints to keep (path.1 ... path.N)")
		resume     = fs.String("resume", "", "resume the pre-serve training from a checkpoint")
		drainWait  = fs.Duration("drain", 10*time.Second, "graceful shutdown budget on SIGINT/SIGTERM")

		topN        = fs.Int("topn", 0, "default result count for /v1/recommend (0 = server default)")
		cacheSize   = fs.Int("cache", 0, "response cache capacity (0 = server default, negative disables)")
		maxInflight = fs.Int("max-inflight", 0, "concurrent scoring requests (0 = server default)")
		maxQueue    = fs.Int("max-queue", -1, "admission wait queue length (-1 = server default)")
		timeout     = fs.Duration("timeout", 0, "per-request deadline (0 = server default)")
		onlineEp    = fs.Int("online-epochs", 0, "SGD epochs per observe batch (0 = default)")
		grow        = fs.Bool("grow", false, "open-world mode: /v1/observe accepts new_users/new_pois and check-ins beyond the trained dimensions, growing the model in place")
		halfLife    = fs.Float64("half-life", 0, "check-in decay half-life in observe steps; recent evidence outweighs stale (0 = no decay)")

		coalesce      = fs.Bool("coalesce", false, "batch concurrent recommend requests through one factor-slab pass")
		coalesceWin   = fs.Duration("coalesce-window", 0, "max wait for batch co-travellers (0 = server default 200µs)")
		coalesceBatch = fs.Int("coalesce-batch", 0, "batch flush threshold (0 = server default 32)")

		shardName     = fs.String("shard-name", "", "this node's shard name inside a cluster (enables 421 on non-owned users with -cluster-shards)")
		clusterShards = fs.String("cluster-shards", "", "comma-separated shard names forming the consistent-hash ring")
		vnodes        = fs.Int("vnodes", 0, "ring virtual nodes per shard (0 = default)")
		replicaOf     = fs.String("replica-of", "", "primary base URL; serve as a read-only replica fed by snapshot shipping")
		syncEvery     = fs.Duration("sync-every", 500*time.Millisecond, "replica snapshot-shipping poll interval")
		syncWait      = fs.Duration("sync-wait", 30*time.Second, "replica budget for the initial sync against the primary")
		firstGenFlag  = fs.Uint64("first-gen", 0, "snapshot generation to publish at startup (overrides a loaded model's)")
		maxGenLag     = fs.Uint64("max-gen-lag", 0, "replica staleness bound: report degraded health when this many generations behind the primary (0 = unbounded)")

		seqModels = fs.String("seq", "", "comma-separated sequential models to train and register for /v1/next: STRNN, STGN, STAN")
		seqEpochs = fs.Int("seq-epochs", 3, "sequential model training epochs")
		seqRank   = fs.Int("seq-rank", 8, "sequential model embedding rank")
		seqState  = fs.String("seq-state", "", "load a saved sequential model state (kind recorded in the file) and register it")
		seqSave   = fs.String("seq-save", "", "save each trained sequential model's state here (suffixed .NAME when several)")
		abSpec    = fs.String("ab", "", "A/B experiment NAME=FRACTION: deterministically route that fraction of users to model NAME")
		shadowOf  = fs.String("shadow", "", "shadow model: score every request off-path on this model and record top-K agreement")

		synthUsers = fs.Int("synth-users", 0, "serve a deterministic synthetic model with this many users (skips dataset and training)")
		synthPOIs  = fs.Int("synth-pois", 1000, "synthetic model POI count")
		synthTimes = fs.Int("synth-times", 12, "synthetic model time units (12=month, 53=week, 24=hour)")
		synthRank  = fs.Int("synth-rank", 8, "synthetic model embedding rank")
	)
	fs.Parse(args)

	var (
		rec      *tcss.Recommender
		src      serve.Source
		dist     *geo.DistanceMatrix
		firstGen uint64
	)
	if *synthUsers > 0 {
		// Synthetic serving mode: a deterministic seeded model at any shape,
		// no dataset, no training. Used for production-scale cluster tests
		// where every node (and the verifying load generator) rebuilds the
		// identical model from the same arguments.
		model, side, err := tcss.SynthServing(*synthUsers, *synthPOIs, *synthTimes, *synthRank, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcss serve:", err)
			os.Exit(1)
		}
		src = &serve.StaticSource{Model: model, Side: side, Gran: tcss.SynthGranularity(*synthTimes)}
		dist = side.Dist
		fmt.Printf("synthetic model: users=%d pois=%d times=%d rank=%d seed=%d (%d factor bytes)\n",
			model.I, model.J, model.K, model.Rank, *seed, model.FactorBytes())
	} else {
		ds, err := loadDataset(*preset, *data, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcss serve:", err)
			os.Exit(1)
		}
		g, err := parseGranularity(*gran)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcss serve:", err)
			os.Exit(1)
		}
		cfg := tcss.DefaultConfig()
		cfg.Seed = *seed
		if *epochs > 0 {
			cfg.Epochs = *epochs
		}
		if *rank > 0 {
			cfg.Rank = *rank
		}
		if *modelPath != "" {
			var (
				m    *tcss.Model
				gen  uint64
				from string
			)
			if *mmapModel {
				// Zero-copy path: the factor slabs alias the mapping, so startup
				// cost is O(1) in model size. The mapping stays open for the
				// process lifetime (the kernel reclaims it on exit).
				var closer io.Closer
				m, gen, closer, err = tcss.LoadModelMmap(*modelPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "tcss serve:", err)
					os.Exit(1)
				}
				defer closer.Close()
				from = *modelPath + " (mmap)"
			} else {
				// Fallback-aware load: a crash mid-save leaves the newest snapshot
				// torn; the rotation ladder still holds the previous intact one.
				m, gen, from, err = tcss.LoadModelVersionedFallback(*modelPath, 16)
				if err != nil {
					fmt.Fprintln(os.Stderr, "tcss serve:", err)
					os.Exit(1)
				}
			}
			rec, err = tcss.AttachModel(m, ds, g, cfg, 0.8)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tcss serve:", err)
				os.Exit(1)
			}
			firstGen = gen
			fmt.Printf("loaded model %s (generation %d)\n", from, gen)
		} else {
			// A killed serve process can restart with -resume pointing at the
			// periodic mid-train snapshot and continue training where it left
			// off instead of starting over.
			cfg.CheckpointPath = *checkpoint
			cfg.CheckpointEvery = *ckEvery
			cfg.CheckpointKeep = *ckKeep
			cfg.ResumePath = *resume
			s := ds.Summary()
			fmt.Printf("dataset %s: users=%d pois=%d check-ins=%d\n", ds.Name, s.Users, s.POIs, s.CheckIns)
			fmt.Printf("training TCSS (rank=%d, epochs=%d)...\n", cfg.Rank, cfg.Epochs)
			start := time.Now()
			rec, err = tcss.Fit(ds, g, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tcss serve:", err)
				os.Exit(1)
			}
			fmt.Printf("trained in %s\n", time.Since(start).Round(time.Millisecond))
		}

		if *storage != "" {
			mode, err := tcss.ParseStorageMode(*storage)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tcss serve:", err)
				os.Exit(1)
			}
			m, err := rec.Model.ToStorage(mode)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tcss serve:", err)
				os.Exit(1)
			}
			rec.Model = m
		}
		fmt.Printf("model storage %s: %d factor bytes (%.1f per user)\n",
			rec.Model.Mode, rec.Model.FactorBytes(), float64(rec.Model.FactorBytes())/float64(rec.Model.I))
		if *replicaOf != "" {
			// Replicas never observe: serve the fitted model read-only and
			// let snapshot shipping advance it.
			src = &serve.StaticSource{Model: rec.Model, Side: rec.Side, Gran: rec.Gran}
		} else {
			src = &serve.RecommenderSource{Rec: rec}
		}
		dist = rec.Side.Dist
	}
	if *firstGenFlag > 0 {
		firstGen = *firstGenFlag
	}

	// Multi-model registry: train or load sequential baselines alongside the
	// tensor model, then configure A/B and shadow routing over the set. The
	// server registers the tensor model itself as primary "tcss".
	var reg *registry.Registry
	if *seqModels != "" || *seqState != "" || *abSpec != "" || *shadowOf != "" {
		if *synthUsers > 0 {
			fmt.Fprintln(os.Stderr, "tcss serve: -seq/-seq-state/-ab/-shadow need a real dataset and are incompatible with -synth-users")
			os.Exit(1)
		}
		reg = registry.New()
		seqGen := firstGen
		if seqGen == 0 {
			seqGen = 1
		}
		names := []string{}
		if *seqModels != "" {
			names = strings.Split(*seqModels, ",")
		}
		for _, name := range names {
			name = strings.TrimSpace(name)
			m, ok := baselines.SeqLookup(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "tcss serve: unknown sequential model %q (want STRNN, STGN or STAN)\n", name)
				os.Exit(1)
			}
			ctx := &baselines.Context{
				Train:  rec.Train,
				Social: rec.Dataset.Social,
				Dist:   rec.Side.Dist,
				Rank:   *seqRank,
				Epochs: *seqEpochs,
				Seed:   *seed,
			}
			start := time.Now()
			if err := m.(baselines.Recommender).Fit(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "tcss serve: fitting %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("trained %s (rank=%d, epochs=%d) in %s\n", name, *seqRank, *seqEpochs, time.Since(start).Round(time.Millisecond))
			if *seqSave != "" {
				path := *seqSave
				if len(names) > 1 {
					path += "." + name
				}
				if err := baselines.SaveSeqState(nil, path, 1, seqGen, m); err != nil {
					fmt.Fprintf(os.Stderr, "tcss serve: saving %s state: %v\n", name, err)
					os.Exit(1)
				}
				fmt.Printf("saved %s state to %s (generation %d)\n", name, path, seqGen)
			}
			if err := reg.Register(registry.NewSeqScorer(m, seqGen)); err != nil {
				fmt.Fprintln(os.Stderr, "tcss serve:", err)
				os.Exit(1)
			}
		}
		if *seqState != "" {
			m, gen, from, err := baselines.LoadSeqStateFallback(*seqState, 16, dist)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tcss serve:", err)
				os.Exit(1)
			}
			if err := reg.Register(registry.NewSeqScorer(m, gen)); err != nil {
				fmt.Fprintln(os.Stderr, "tcss serve:", err)
				os.Exit(1)
			}
			fmt.Printf("loaded %s state %s (generation %d)\n", m.Name(), from, gen)
		}
		if *abSpec != "" {
			name, fracStr, ok := strings.Cut(*abSpec, "=")
			frac := 0.0
			if ok {
				var perr error
				frac, perr = strconv.ParseFloat(fracStr, 64)
				ok = perr == nil
			}
			if !ok || frac <= 0 || frac >= 1 {
				fmt.Fprintf(os.Stderr, "tcss serve: -ab wants NAME=FRACTION with 0 < FRACTION < 1, got %q\n", *abSpec)
				os.Exit(1)
			}
			if err := reg.SetAB(name, frac); err != nil {
				fmt.Fprintln(os.Stderr, "tcss serve:", err)
				os.Exit(1)
			}
			fmt.Printf("A/B split: %.0f%% of users routed to %s\n", frac*100, name)
		}
		if *shadowOf != "" {
			if err := reg.SetShadow(*shadowOf); err != nil {
				fmt.Fprintln(os.Stderr, "tcss serve:", err)
				os.Exit(1)
			}
			fmt.Printf("shadow scoring on %s\n", *shadowOf)
		}
	}

	online := tcss.DefaultOnlineConfig()
	if *onlineEp > 0 {
		online.Epochs = *onlineEp
	}
	online.DecayHalfLife = *halfLife
	role := ""
	switch {
	case *replicaOf != "":
		role = "replica"
	case *shardName != "":
		role = "primary"
	}
	opts := serve.Options{
		TopNDefault:     *topN,
		RequestTimeout:  *timeout,
		MaxInflight:     *maxInflight,
		MaxQueue:        *maxQueue,
		CacheSize:       *cacheSize,
		Online:          online,
		Grow:            *grow,
		SnapshotPath:    *snapshot,
		SnapshotKeep:    *snapKeep,
		FirstGeneration: firstGen,
		Coalesce:        *coalesce,
		CoalesceWindow:  *coalesceWin,
		CoalesceBatch:   *coalesceBatch,
		ShardName:       *shardName,
		MaxGenLag:       *maxGenLag,
		Role:            role,
		Registry:        reg,
	}
	if *clusterShards != "" {
		if *shardName == "" {
			fmt.Fprintln(os.Stderr, "tcss serve: -cluster-shards requires -shard-name")
			os.Exit(1)
		}
		ring, err := cluster.NewRing(strings.Split(*clusterShards, ","), *vnodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcss serve:", err)
			os.Exit(1)
		}
		opts.Owns = ring.Owns(*shardName)
	}
	srv, err := serve.NewFromSource(src, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcss serve:", err)
		os.Exit(1)
	}
	defer srv.Close()

	// Graceful shutdown: SIGINT/SIGTERM stops accepting connections, drains
	// in-flight requests, then drains the writer (final best-effort snapshot
	// save) — all within the -drain budget.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *replicaOf != "" {
		// Replica: catch up to the primary's generation before listening,
		// then keep polling in the background.
		repl := &cluster.Replicator{
			Server:   srv,
			Primary:  strings.TrimRight(*replicaOf, "/"),
			Dist:     dist,
			Interval: *syncEvery,
			// One sync cycle may legitimately take as long as the initial
			// catch-up budget allows (a full snapshot on a loaded host);
			// the timeout exists to unwedge hung primaries, not to race
			// slow-but-progressing transfers.
			SyncTimeout: *syncWait,
		}
		deadline := time.Now().Add(*syncWait)
		for {
			gen, _, err := repl.SyncOnce(ctx)
			if err == nil {
				fmt.Printf("replica of %s: synced at generation %d\n", *replicaOf, gen)
				break
			}
			if time.Now().After(deadline) {
				fmt.Fprintf(os.Stderr, "tcss serve: initial sync against %s: %v\n", *replicaOf, err)
				os.Exit(1)
			}
			time.Sleep(200 * time.Millisecond)
		}
		go repl.Run(ctx)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	fmt.Printf("serving generation %d on %s (/v1/recommend /v1/next /v1/explain /v1/observe /metrics /healthz)\n",
		srv.Generation(), *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "tcss serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal during drain kills the process immediately
	fmt.Println("shutting down...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "tcss serve: http drain:", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "tcss serve: writer drain:", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "tcss serve:", err)
		os.Exit(1)
	}
	fmt.Printf("shutdown complete at generation %d\n", srv.Generation())
}
