package main

import (
	"testing"

	"tcss"
)

func TestParseGranularity(t *testing.T) {
	cases := map[string]tcss.Granularity{
		"month": tcss.Month, "Week": tcss.Week, "HOUR": tcss.Hour,
	}
	for in, want := range cases {
		got, err := parseGranularity(in)
		if err != nil || got != want {
			t.Fatalf("parseGranularity(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseGranularity("day"); err == nil {
		t.Fatal("unknown granularity must error")
	}
}

func TestApplyVariant(t *testing.T) {
	cfg := tcss.DefaultConfig()
	if err := applyVariant(&cfg, "self"); err != nil || cfg.Variant != tcss.SelfHausdorff {
		t.Fatalf("self variant: %v %v", cfg.Variant, err)
	}
	if err := applyVariant(&cfg, "none"); err != nil || cfg.Variant != tcss.NoHausdorff || cfg.Lambda != 0 {
		t.Fatal("none variant must zero lambda")
	}
	if err := applyVariant(&cfg, "zero-out"); err != nil || cfg.Variant != tcss.ZeroOut {
		t.Fatal("zero-out variant")
	}
	if err := applyVariant(&cfg, "social"); err != nil || cfg.Variant != tcss.SocialHausdorff {
		t.Fatal("social variant")
	}
	if err := applyVariant(&cfg, "bogus"); err == nil {
		t.Fatal("unknown variant must error")
	}
}

func TestApplyInit(t *testing.T) {
	cfg := tcss.DefaultConfig()
	for in, want := range map[string]tcss.InitMethod{
		"spectral": tcss.SpectralInit, "random": tcss.RandomInit, "one-hot": tcss.OneHotInit,
	} {
		if err := applyInit(&cfg, in); err != nil || cfg.Init != want {
			t.Fatalf("applyInit(%q) = %v, %v", in, cfg.Init, err)
		}
	}
	if err := applyInit(&cfg, "xavier"); err == nil {
		t.Fatal("unknown init must error")
	}
}

func TestLoadDatasetValidation(t *testing.T) {
	if _, err := loadDataset("", "", 1); err == nil {
		t.Fatal("neither preset nor data must error")
	}
	if _, err := loadDataset("gowalla", "/tmp/x", 1); err == nil {
		t.Fatal("both preset and data must error")
	}
	if _, err := loadDataset("unknown-preset", "", 1); err == nil {
		t.Fatal("unknown preset must error")
	}
}
