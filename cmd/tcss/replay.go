package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tcss"
	"tcss/internal/lbsn"
	"tcss/internal/replay"
)

// replayMain implements `tcss replay`: feed a streaming drift scenario
// through a recommender's online observe path week by week, scoring each
// week's novel check-ins before folding them in (next-week prediction), and
// report the NDCG@K / recall@K trajectory split into established users and
// cold-start arrivals.
//
//	tcss replay -preset gmu-5k -weeks 6                  # generate, fit, replay in-process
//	tcss replay -preset gmu-5k -weeks 6 -compare-random  # warm vs random growth-init ablation
//	tcss replay -data ./d -drift ./d/drift.jsonl         # datagen-written base + stream
//	tcss replay -preset gmu-5k -weeks 2 -url http://127.0.0.1:8080  # drive a live serve node
func replayMain(args []string) {
	fs := flag.NewFlagSet("tcss replay", flag.ExitOnError)
	var (
		preset = fs.String("preset", "", fmt.Sprintf("generate the base dataset from a preset, one of %v", lbsn.PresetNames()))
		data   = fs.String("data", "", "load the base dataset from a datagen directory (requires -drift)")
		drift  = fs.String("drift", "", "drift stream JSONL (from datagen -drift-weeks); generated when empty")
		gran   = fs.String("granularity", "month", "time granularity: month, week or hour")
		seed   = fs.Int64("seed", 7, "seed for generation, training and the stream")

		weeks     = fs.Int("weeks", 6, "simulated weeks to generate (ignored with -drift)")
		startWeek = fs.Int("start-week", 14, "week-of-year the generated stream starts at")
		newUsers  = fs.Float64("new-users", 3, "mean new-user arrivals per generated week")
		newPOIs   = fs.Float64("new-pois", 2, "mean POI openings per generated week")
		closeProb = fs.Float64("close-prob", 0.01, "per-POI weekly closing probability in the generated stream")

		epochs       = fs.Int("epochs", 0, "base training epochs (0 = default)")
		rank         = fs.Int("rank", 0, "embedding rank (0 = default)")
		onlineEpochs = fs.Int("online-epochs", 0, "refinement epochs per weekly fold (0 = default)")
		halfLife     = fs.Float64("half-life", 0, "check-in decay half-life in observe steps (0 = no decay)")

		topK      = fs.Int("topk", 10, "recommendation list length scored")
		coldWeeks = fs.Int("cold-weeks", 2, "weeks after arrival a user counts as cold-start")

		url           = fs.String("url", "", "replay through a live serve node's HTTP API instead of in-process")
		compareRandom = fs.Bool("compare-random", false, "also replay with random (un-warmed) growth init for comparison")
		out           = fs.String("out", "", "write the trajectory document to this JSON file")
	)
	fs.Parse(args)

	if err := runReplay(replayOpts{
		preset: *preset, data: *data, drift: *drift, gran: *gran, seed: *seed,
		weeks: *weeks, startWeek: *startWeek, newUsers: *newUsers, newPOIs: *newPOIs, closeProb: *closeProb,
		epochs: *epochs, rank: *rank, onlineEpochs: *onlineEpochs, halfLife: *halfLife,
		topK: *topK, coldWeeks: *coldWeeks,
		url: *url, compareRandom: *compareRandom, out: *out,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "tcss replay:", err)
		os.Exit(1)
	}
}

type replayOpts struct {
	preset, data, drift, gran    string
	seed                         int64
	weeks, startWeek             int
	newUsers, newPOIs, closeProb float64
	epochs, rank, onlineEpochs   int
	halfLife                     float64
	topK, coldWeeks              int
	url                          string
	compareRandom                bool
	out                          string
}

// replayDoc is the JSON document -out writes (the shape BENCH_PR9.json pins).
type replayDoc struct {
	Bench  string `json:"bench"`
	Config struct {
		Source       string  `json:"source"`
		Granularity  string  `json:"granularity"`
		Seed         int64   `json:"seed"`
		Weeks        int     `json:"weeks"`
		Rank         int     `json:"rank"`
		Epochs       int     `json:"epochs"`
		OnlineEpochs int     `json:"online_epochs"`
		HalfLife     float64 `json:"decay_half_life,omitempty"`
		TopK         int     `json:"top_k"`
		ColdWeeks    int     `json:"cold_weeks"`
		BaseUsers    int     `json:"base_users"`
		BasePOIs     int     `json:"base_pois"`
	} `json:"config"`
	Warm   *replay.Trajectory `json:"warm"`
	Random *replay.Trajectory `json:"random,omitempty"`
}

func runReplay(o replayOpts) error {
	g, err := parseGranularity(o.gran)
	if err != nil {
		return err
	}

	// Assemble the drift stream: generated from a preset, or a datagen
	// directory plus a JSONL stream file.
	var d *lbsn.Drift
	switch {
	case o.data != "" && o.preset != "":
		return fmt.Errorf("use either -preset or -data, not both")
	case o.data != "":
		if o.drift == "" {
			return fmt.Errorf("-data needs -drift (the stream JSONL datagen wrote next to it)")
		}
		base, err := tcss.LoadDataset(o.data, o.data)
		if err != nil {
			return err
		}
		wks, err := lbsn.ReadWeeksJSONLFile(o.drift)
		if err != nil {
			return err
		}
		d = &lbsn.Drift{Base: base, Weeks: wks}
	case o.preset != "":
		base, err := lbsn.NewPreset(o.preset, o.seed)
		if err != nil {
			return err
		}
		d, err = lbsn.GenerateDrift(lbsn.DriftConfig{
			Base:             base,
			Weeks:            o.weeks,
			StartWeek:        o.startWeek,
			NewUsersPerWeek:  o.newUsers,
			NewPOIsPerWeek:   o.newPOIs,
			CloseProbPerWeek: o.closeProb,
		})
		if err != nil {
			return err
		}
		if o.drift != "" {
			if err := lbsn.WriteWeeksJSONLFile(o.drift, d.Weeks); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("one of -preset or -data is required")
	}

	ocfg := tcss.DefaultOnlineConfig()
	ocfg.Seed = o.seed
	if o.onlineEpochs > 0 {
		ocfg.Epochs = o.onlineEpochs
	}
	ocfg.DecayHalfLife = o.halfLife
	rcfg := replay.Config{TopK: o.topK, ColdWeeks: o.coldWeeks}

	cfg := tcss.DefaultConfig()
	cfg.Seed = o.seed
	if o.epochs > 0 {
		cfg.Epochs = o.epochs
	}
	if o.rank > 0 {
		cfg.Rank = o.rank
	}
	fit := func() (*tcss.Recommender, error) { return tcss.Fit(d.Base, g, cfg) }

	doc := &replayDoc{Bench: "open-world-drift-replay"}
	doc.Config.Granularity = g.String()
	doc.Config.Seed = o.seed
	doc.Config.Weeks = len(d.Weeks)
	doc.Config.Rank = cfg.Rank
	doc.Config.Epochs = cfg.Epochs
	doc.Config.OnlineEpochs = ocfg.Epochs
	doc.Config.HalfLife = o.halfLife
	doc.Config.TopK = o.topK
	doc.Config.ColdWeeks = o.coldWeeks
	doc.Config.BaseUsers = d.Base.NumUsers
	doc.Config.BasePOIs = len(d.Base.POIs)
	if o.preset != "" {
		doc.Config.Source = "preset:" + o.preset
	} else {
		doc.Config.Source = "data:" + o.data
	}

	if o.url != "" {
		if o.compareRandom {
			return fmt.Errorf("-compare-random needs in-process replay (the init policy is the server's)")
		}
		fmt.Printf("replaying %d weeks through %s...\n", len(d.Weeks), o.url)
		traj, err := replay.Run(d, g, &replay.HTTPTarget{BaseURL: o.url}, rcfg)
		if err != nil {
			return err
		}
		doc.Warm = traj
		printTrajectory("serve", traj)
	} else {
		rec, err := fit()
		if err != nil {
			return err
		}
		fmt.Printf("base model: users=%d pois=%d rank=%d; replaying %d weeks (warm growth init)...\n",
			rec.Model.I, rec.Model.J, rec.Model.Rank, len(d.Weeks))
		warm, err := replay.Run(d, g, replay.NewLocalTarget(rec, ocfg), rcfg)
		if err != nil {
			return err
		}
		doc.Warm = warm
		printTrajectory("warm", warm)

		if o.compareRandom {
			rec2, err := fit()
			if err != nil {
				return err
			}
			rcfg2 := ocfg
			rcfg2.GrowHints = &tcss.GrowthHints{Random: true}
			fmt.Printf("replaying %d weeks again (random growth init)...\n", len(d.Weeks))
			random, err := replay.Run(d, g, replay.NewLocalTarget(rec2, rcfg2), rcfg)
			if err != nil {
				return err
			}
			doc.Random = random
			printTrajectory("random", random)
			fmt.Printf("cold-start NDCG@%d: warm %.4f vs random %.4f\n",
				o.topK, warm.Overall.Cold.NDCG, random.Overall.Cold.NDCG)
		}
	}

	if o.out != "" {
		raw, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("trajectory written to %s\n", o.out)
	}
	return nil
}

func printTrajectory(label string, traj *replay.Trajectory) {
	fmt.Printf("%-6s  week  gen   users  pois   est(n  ndcg   rec )  cold(n  ndcg   rec )\n", label)
	for _, w := range traj.Weeks {
		fmt.Printf("%-6s  %4d  %-4d  %5d  %4d   %4d  %.3f  %.3f    %4d  %.3f  %.3f\n",
			"", w.Week, w.Generation, w.Users, w.POIs,
			w.Established.Count, w.Established.NDCG, w.Established.Recall,
			w.Cold.Count, w.Cold.NDCG, w.Cold.Recall)
	}
	o := traj.Overall
	fmt.Printf("%-6s  overall: established n=%d NDCG@%d=%.4f recall@%d=%.4f | cold n=%d NDCG@%d=%.4f recall@%d=%.4f\n",
		"", o.Established.Count, traj.TopK, o.Established.NDCG, traj.TopK, o.Established.Recall,
		o.Cold.Count, traj.TopK, o.Cold.NDCG, traj.TopK, o.Cold.Recall)
}
