// Command chaosproxy is a fault-injecting reverse proxy for chaos smoke
// tests: it forwards everything to -target until its admin endpoint flips it
// into a fault mode, letting a shell harness impose network failures on one
// real link of a spawned cluster without touching the processes themselves.
//
//	chaosproxy -listen 127.0.0.1:19301 -target http://127.0.0.1:19210 \
//	           -admin 127.0.0.1:19302
//
// Admin API (separate listener, never fault-injected):
//
//	POST /fault?mode=pass|error|hang|slow|truncate   switch mode
//	GET  /fault                                      {"mode":..,"injected":..}
//
// Modes: pass forwards untouched; error answers 503 without forwarding (a
// crashed or overloaded node); hang holds the request until the client gives
// up (a wedged node — deadline budgets must bound it); slow forwards after a
// 500ms delay (tail latency — hedged reads race past it); truncate forwards
// but tears the response body mid-stream (a broken connection — clients must
// treat partial bytes as failure, not truth).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"os"
	"sync/atomic"
	"time"
)

var validModes = map[string]bool{
	"pass": true, "error": true, "hang": true, "slow": true, "truncate": true,
}

type proxy struct {
	mode     atomic.Value // string
	injected atomic.Int64
	rp       *httputil.ReverseProxy
}

// truncatedBody cuts the upstream response off after limit bytes; the
// reverse proxy aborts the client connection mid-response, so the client
// observes a torn body whose Content-Length never arrives.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

func (p *proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch p.mode.Load().(string) {
	case "error":
		p.injected.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, `{"error":"chaosproxy: injected 503"}`+"\n")
		return
	case "hang":
		p.injected.Add(1)
		<-r.Context().Done()
		return
	case "slow":
		p.injected.Add(1)
		timer := time.NewTimer(500 * time.Millisecond)
		select {
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	case "truncate":
		p.injected.Add(1)
	}
	p.rp.ServeHTTP(w, r)
}

func (p *proxy) serveAdmin(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		mode := r.URL.Query().Get("mode")
		if !validModes[mode] {
			http.Error(w, fmt.Sprintf("unknown mode %q", mode), http.StatusBadRequest)
			return
		}
		p.mode.Store(mode)
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"mode\":%q,\"injected\":%d}\n",
		p.mode.Load().(string), p.injected.Load())
}

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:19301", "proxied (fault-injected) listen address")
		admin  = flag.String("admin", "127.0.0.1:19302", "admin listen address (POST /fault?mode=...)")
		target = flag.String("target", "", "upstream base URL to forward to")
	)
	flag.Parse()
	if *target == "" {
		fmt.Fprintln(os.Stderr, "chaosproxy: -target is required")
		os.Exit(1)
	}
	u, err := url.Parse(*target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaosproxy:", err)
		os.Exit(1)
	}

	p := &proxy{rp: httputil.NewSingleHostReverseProxy(u)}
	p.mode.Store("pass")
	p.rp.ModifyResponse = func(resp *http.Response) error {
		if p.mode.Load().(string) == "truncate" && resp.Body != nil {
			resp.Body = &truncatedBody{rc: resp.Body, remaining: 32}
		}
		return nil
	}
	// The proxy aborting a torn copy is expected noise, not a crash.
	p.rp.ErrorLog = nil

	adminMux := http.NewServeMux()
	adminMux.HandleFunc("/fault", p.serveAdmin)
	go func() {
		if err := http.ListenAndServe(*admin, adminMux); err != nil {
			fmt.Fprintln(os.Stderr, "chaosproxy admin:", err)
			os.Exit(1)
		}
	}()

	fmt.Printf("chaosproxy: %s -> %s (admin %s)\n", *listen, *target, *admin)
	if err := http.ListenAndServe(*listen, p); err != nil {
		fmt.Fprintln(os.Stderr, "chaosproxy:", err)
		os.Exit(1)
	}
}
