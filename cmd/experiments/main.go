// Command experiments reproduces the paper's tables and figures on the
// scaled synthetic presets and prints them in order.
//
// Usage:
//
//	experiments                 # run everything (takes a while)
//	experiments -only table1,fig9
//	experiments -quick          # heavily scaled-down smoke run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tcss/internal/experiments"
)

type runner struct {
	name string
	run  func(experiments.Options) (*experiments.Table, error)
}

func runners() []runner {
	return []runner{
		{"table1", experiments.TableI},
		{"table2", experiments.TableII},
		{"table3", experiments.TableIII},
		{"table4", experiments.TableIV},
		{"fig4", experiments.Fig4},
		{"fig5", experiments.Fig5},
		{"fig6", experiments.Fig6},
		{"fig7", experiments.Fig7},
		{"fig8", experiments.Fig8},
		{"fig9", experiments.Fig9},
		{"fig10", experiments.Fig10},
		{"fig11", experiments.Fig11},
		{"fig12", experiments.Fig12},
		{"fig13", experiments.Fig13},
		{"ablation-alpha", experiments.AblationAlpha},
		{"ablation-entropy", experiments.AblationEntropy},
		{"ablation-subsampling", experiments.AblationUserSubsampling},
		{"ablation-granularity", experiments.AblationGranularity},
	}
}

func main() {
	var (
		only   = flag.String("only", "", "comma-separated experiment names (default: all)")
		quick  = flag.Bool("quick", false, "scaled-down smoke run")
		seed   = flag.Int64("seed", 7, "experiment seed")
		list   = flag.Bool("list", false, "list experiment names and exit")
		csvDir = flag.String("csv", "", "also export each table as CSV into this directory")
	)
	flag.Parse()

	if *list {
		for _, r := range runners() {
			fmt.Println(r.name)
		}
		return
	}

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	opts.Seed = *seed

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}

	for _, r := range runners() {
		if len(want) > 0 && !want[r.name] {
			continue
		}
		start := time.Now()
		table, err := r.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(table)
		fmt.Printf("(%s finished in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path, err := table.ExportDir(*csvDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: exporting %s: %v\n", r.name, err)
				os.Exit(1)
			}
			fmt.Printf("(exported to %s)\n\n", path)
		}
	}
}
