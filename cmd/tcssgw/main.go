// Command tcssgw fronts a sharded tcss serving cluster: it routes
// /v1/recommend and /v1/explain to the shard owning the user (with replica
// failover), splits /v1/observe batches by ownership, and merges /metrics
// and /healthz across every endpoint.
//
// Two ways to describe the cluster:
//
//	tcssgw -shards 'shard-0=http://h0:8080,http://h0r:8081;shard-1=http://h1:8080'
//
// fronts an already-running cluster, while
//
//	tcssgw -spawn 4 -replicas 2 -synth-users 1000000
//
// launches a local 4-shard × 2-replica cluster of `tcss serve` children on
// sequential ports (synthetic deterministic model, primaries at generation 1,
// replicas catching up over snapshot shipping) and then fronts it. Spawn mode
// is what `make cluster-smoke` uses; pid files in -pid-dir let the smoke
// harness kill -9 a primary mid-load.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tcss/internal/cluster"
)

func main() {
	var (
		listen = flag.String("listen", ":8090", "gateway listen address")
		shards = flag.String("shards", "", "cluster topology: name=primaryURL[,replicaURL...] joined by ';'")
		vnodes = flag.Int("vnodes", 0, "ring virtual nodes per shard (0 = default; must match the shards')")

		readBudget    = flag.Duration("read-budget", 0, "total deadline budget per read across all failover attempts (0 = 2s default; clients lower it per-request with X-Deadline-Budget)")
		perTryTimeout = flag.Duration("per-try-timeout", 0, "cap on a single backend attempt (0 = 1s default, always clamped to the remaining budget)")
		retryRate     = flag.Float64("retry-rate", 0, "retry-budget refill rate in tokens/s charged per failover or hedge attempt (0 = 10/s default)")
		retryBurst    = flag.Float64("retry-burst", 0, "retry-budget bucket size (0 = 20 default)")
		hedge         = flag.Bool("hedge", false, "hedge GET /v1/recommend: race a second candidate if the first is slow")
		hedgeDelay    = flag.Duration("hedge-delay", 0, "how long to wait before firing the hedge attempt (0 = 30ms default)")

		spawn      = flag.Int("spawn", 0, "spawn a local cluster with this many shards instead of using -shards")
		replicas   = flag.Int("replicas", 1, "replicas per spawned shard")
		portBase   = flag.Int("port-base", 9100, "first port for spawned nodes (sequential from here)")
		tcssBin    = flag.String("tcss", "tcss", "path to the tcss binary for spawned nodes")
		pidDir     = flag.String("pid-dir", "", "write <node>.pid files for spawned nodes here")
		spawnWait  = flag.Duration("spawn-wait", 60*time.Second, "budget for every spawned node to answer /healthz")
		seed       = flag.Int64("seed", 7, "synthetic model seed for spawned nodes")
		synthUsers = flag.Int("synth-users", 100_000, "synthetic model user count for spawned nodes")
		synthPOIs  = flag.Int("synth-pois", 1000, "synthetic model POI count for spawned nodes")
		synthTimes = flag.Int("synth-times", 12, "synthetic model time units for spawned nodes")
		synthRank  = flag.Int("synth-rank", 8, "synthetic model embedding rank for spawned nodes")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var (
		sets []cluster.ShardSet
		kids *children
		err  error
	)
	switch {
	case *spawn > 0 && *shards != "":
		fmt.Fprintln(os.Stderr, "tcssgw: use either -spawn or -shards, not both")
		os.Exit(1)
	case *spawn > 0:
		sets, kids, err = spawnCluster(ctx, spawnConfig{
			shards: *spawn, replicas: *replicas, portBase: *portBase,
			tcssBin: *tcssBin, pidDir: *pidDir, wait: *spawnWait, vnodes: *vnodes,
			seed: *seed, users: *synthUsers, pois: *synthPOIs, times: *synthTimes, rank: *synthRank,
		})
		if kids != nil {
			defer kids.killAll()
		}
	case *shards != "":
		sets, err = parseTopology(*shards)
	default:
		fmt.Fprintln(os.Stderr, "tcssgw: one of -shards or -spawn is required")
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcssgw:", err)
		os.Exit(1)
	}

	gw, err := cluster.NewGateway(sets, cluster.GatewayOptions{
		Vnodes:        *vnodes,
		ReadBudget:    *readBudget,
		PerTryTimeout: *perTryTimeout,
		RetryRate:     *retryRate,
		RetryBurst:    *retryBurst,
		Hedge:         *hedge,
		HedgeDelay:    *hedgeDelay,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcssgw:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *listen, Handler: gw.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	fmt.Printf("gateway on %s fronting %d shards (/v1/recommend /v1/explain /v1/observe /metrics /healthz)\n",
		*listen, len(sets))
	for _, set := range sets {
		fmt.Printf("  %s: primary %s, %d replicas\n", set.Name, set.Primary, len(set.Replicas))
	}

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "tcssgw:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("shutting down...")
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "tcssgw: http drain:", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "tcssgw:", err)
		os.Exit(1)
	}
}

// parseTopology parses "name=primaryURL[,replicaURL...];name=..." into shard
// sets. Whitespace around separators is tolerated.
func parseTopology(spec string) ([]cluster.ShardSet, error) {
	var sets []cluster.ShardSet
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, urls, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("shard entry %q: want name=primaryURL[,replicaURL...]", entry)
		}
		set := cluster.ShardSet{Name: strings.TrimSpace(name)}
		for i, u := range strings.Split(urls, ",") {
			u = strings.TrimRight(strings.TrimSpace(u), "/")
			if u == "" {
				return nil, fmt.Errorf("shard %q: empty endpoint URL", set.Name)
			}
			if i == 0 {
				set.Primary = u
			} else {
				set.Replicas = append(set.Replicas, u)
			}
		}
		sets = append(sets, set)
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("no shards in topology %q", spec)
	}
	return sets, nil
}

type spawnConfig struct {
	shards, replicas, portBase int
	tcssBin, pidDir            string
	wait                       time.Duration
	vnodes                     int
	seed                       int64
	users, pois, times, rank   int
}

// children tracks spawned tcss serve processes for shutdown. Children that
// die on their own (including the smoke harness's injected kill -9) are
// reaped and logged but never bring the gateway down — that is the point of
// replica failover.
type children struct {
	procs []*exec.Cmd
}

func (c *children) killAll() {
	for _, cmd := range c.procs {
		if cmd.Process != nil {
			cmd.Process.Signal(syscall.SIGTERM)
		}
	}
	deadline := time.After(5 * time.Second)
	done := make(chan struct{})
	go func() {
		for _, cmd := range c.procs {
			cmd.Wait()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-deadline:
		for _, cmd := range c.procs {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
		}
	}
}

// spawnCluster launches shards×(1+replicas) `tcss serve` children on
// sequential loopback ports. Primaries come up first at generation 1;
// replicas then bootstrap at generation 0 and catch up through a real
// snapshot shipment before answering /healthz, so the replication path is
// exercised even before any load arrives.
func spawnCluster(ctx context.Context, sc spawnConfig) ([]cluster.ShardSet, *children, error) {
	kids := &children{}
	names := make([]string, sc.shards)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	allShards := strings.Join(names, ",")

	start := func(name string, port int, extra ...string) error {
		args := []string{"serve",
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-shard-name", names[shardIndexOf(name)],
			"-cluster-shards", allShards,
			"-vnodes", strconv.Itoa(sc.vnodes),
			"-seed", strconv.FormatInt(sc.seed, 10),
			"-synth-users", strconv.Itoa(sc.users),
			"-synth-pois", strconv.Itoa(sc.pois),
			"-synth-times", strconv.Itoa(sc.times),
			"-synth-rank", strconv.Itoa(sc.rank),
		}
		args = append(args, extra...)
		cmd := exec.Command(sc.tcssBin, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("starting %s: %w", name, err)
		}
		kids.procs = append(kids.procs, cmd)
		go func() {
			if err := cmd.Wait(); err != nil && ctx.Err() == nil {
				fmt.Fprintf(os.Stderr, "tcssgw: node %s exited: %v\n", name, err)
			}
		}()
		if sc.pidDir != "" {
			pidFile := filepath.Join(sc.pidDir, name+".pid")
			if err := os.WriteFile(pidFile, []byte(strconv.Itoa(cmd.Process.Pid)+"\n"), 0o644); err != nil {
				return fmt.Errorf("writing %s: %w", pidFile, err)
			}
		}
		return nil
	}

	if sc.pidDir != "" {
		if err := os.MkdirAll(sc.pidDir, 0o755); err != nil {
			return nil, kids, err
		}
	}

	// Primaries first: replicas need them answering /v1/snapshot/bin.
	sets := make([]cluster.ShardSet, sc.shards)
	perShard := 1 + sc.replicas
	for i, name := range names {
		port := sc.portBase + i*perShard
		sets[i] = cluster.ShardSet{Name: name, Primary: fmt.Sprintf("http://127.0.0.1:%d", port)}
		if err := start(name, port, "-first-gen", "1"); err != nil {
			return nil, kids, err
		}
	}
	for i := range names {
		if err := waitHealthy(ctx, sets[i].Primary, sc.wait); err != nil {
			return nil, kids, fmt.Errorf("primary %s: %w", names[i], err)
		}
	}
	fmt.Printf("spawned %d primaries at generation 1\n", sc.shards)

	for i, name := range names {
		for r := 1; r <= sc.replicas; r++ {
			port := sc.portBase + i*perShard + r
			url := fmt.Sprintf("http://127.0.0.1:%d", port)
			sets[i].Replicas = append(sets[i].Replicas, url)
			err := start(fmt.Sprintf("%s-replica-%d", name, r), port,
				"-replica-of", sets[i].Primary, "-sync-wait", sc.wait.String())
			if err != nil {
				return nil, kids, err
			}
		}
	}
	for i := range names {
		for _, url := range sets[i].Replicas {
			if err := waitHealthy(ctx, url, sc.wait); err != nil {
				return nil, kids, fmt.Errorf("replica of %s at %s: %w", names[i], url, err)
			}
		}
	}
	if sc.replicas > 0 {
		fmt.Printf("spawned %d replicas, all synced over snapshot shipping\n", sc.shards*sc.replicas)
	}
	return sets, kids, nil
}

// shardIndexOf extracts the shard index from a spawned node name
// ("shard-2" or "shard-2-replica-1" -> 2).
func shardIndexOf(name string) int {
	rest := strings.TrimPrefix(name, "shard-")
	if i := strings.IndexByte(rest, '-'); i >= 0 {
		rest = rest[:i]
	}
	n, _ := strconv.Atoi(rest)
	return n
}

// waitHealthy polls a node's /healthz until it answers 200 or the budget
// runs out. Replicas only start listening after their initial sync, so a
// healthy replica is already on the primary's generation.
func waitHealthy(ctx context.Context, base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			if err == nil {
				return fmt.Errorf("not healthy after %s", budget)
			}
			return fmt.Errorf("not healthy after %s: %w", budget, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
