// Command datagen synthesizes an LBSN dataset from one of the paper presets
// (gowalla, yelp, foursquare, gmu-5k) and writes it as CSV files. With
// -drift-weeks it additionally emits a deterministic open-world stream —
// weekly batches of new-user arrivals, POI openings/closures and seasonally
// drifting check-ins — as JSON lines next to the base dataset, the input
// format of `tcss replay` and loadgen's -drift mode.
//
// Usage:
//
//	datagen -preset gowalla -seed 42 -out ./data/gowalla [-users 360 -pois 800]
//	datagen -preset gmu-5k -out ./data/drift -drift-weeks 6 [-drift-new-users 3]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tcss/internal/lbsn"
)

func main() {
	var (
		preset = flag.String("preset", "gowalla", fmt.Sprintf("dataset preset, one of %v", lbsn.PresetNames()))
		seed   = flag.Int64("seed", 42, "generator seed")
		out    = flag.String("out", "", "output directory (required)")
		users  = flag.Int("users", 0, "override the preset's user count")
		pois   = flag.Int("pois", 0, "override the preset's POI count")

		driftWeeks     = flag.Int("drift-weeks", 0, "also emit an open-world drift stream of this many weeks as <out>/drift.jsonl")
		driftStart     = flag.Int("drift-start-week", 14, "week-of-year the drift stream starts at")
		driftNewUsers  = flag.Float64("drift-new-users", 3, "mean new-user arrivals per drift week")
		driftNewPOIs   = flag.Float64("drift-new-pois", 2, "mean POI openings per drift week")
		driftCloseProb = flag.Float64("drift-close-prob", 0.01, "per-POI weekly closing probability")
		driftSeed      = flag.Int64("drift-seed", 0, "drift stream seed (0 = seed+1)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	cfg, err := lbsn.NewPreset(*preset, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if *users > 0 {
		cfg.Users = *users
	}
	if *pois > 0 {
		cfg.POIs = *pois
	}

	var (
		ds    *lbsn.Dataset
		weeks []lbsn.WeekBatch
	)
	if *driftWeeks > 0 {
		d, err := lbsn.GenerateDrift(lbsn.DriftConfig{
			Base:             cfg,
			Weeks:            *driftWeeks,
			StartWeek:        *driftStart,
			NewUsersPerWeek:  *driftNewUsers,
			NewPOIsPerWeek:   *driftNewPOIs,
			CloseProbPerWeek: *driftCloseProb,
			Seed:             *driftSeed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		ds, weeks = d.Base, d.Weeks
	} else {
		ds, err = lbsn.Generate(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
	}
	if err := ds.WriteDir(*out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	s := ds.Summary()
	fmt.Printf("wrote %s to %s\n", *preset, *out)
	fmt.Printf("users=%d pois=%d check-ins=%d friendships=%d\n", s.Users, s.POIs, s.CheckIns, s.Edges)
	fmt.Printf("month-tensor density=%.4f%% mean check-ins/user=%.1f mean degree=%.1f\n",
		100*s.TensorDensityMonth, s.MeanCheckInsPerUser, s.MeanDegree)

	if len(weeks) > 0 {
		path := filepath.Join(*out, "drift.jsonl")
		if err := lbsn.WriteWeeksJSONLFile(path, weeks); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		var arrivals, openings, closures, checkIns int
		for _, wb := range weeks {
			arrivals += len(wb.NewUsers)
			openings += len(wb.NewPOIs)
			closures += len(wb.ClosedPOIs)
			checkIns += len(wb.CheckIns)
		}
		fmt.Printf("drift stream: %d weeks to %s (new users=%d, POI openings=%d, closures=%d, check-ins=%d)\n",
			len(weeks), path, arrivals, openings, closures, checkIns)
	}
}
