// Command datagen synthesizes an LBSN dataset from one of the paper presets
// (gowalla, yelp, foursquare, gmu-5k) and writes it as CSV files.
//
// Usage:
//
//	datagen -preset gowalla -seed 42 -out ./data/gowalla [-users 360 -pois 800]
package main

import (
	"flag"
	"fmt"
	"os"

	"tcss/internal/lbsn"
)

func main() {
	var (
		preset = flag.String("preset", "gowalla", fmt.Sprintf("dataset preset, one of %v", lbsn.PresetNames()))
		seed   = flag.Int64("seed", 42, "generator seed")
		out    = flag.String("out", "", "output directory (required)")
		users  = flag.Int("users", 0, "override the preset's user count")
		pois   = flag.Int("pois", 0, "override the preset's POI count")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	cfg, err := lbsn.NewPreset(*preset, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if *users > 0 {
		cfg.Users = *users
	}
	if *pois > 0 {
		cfg.POIs = *pois
	}
	ds, err := lbsn.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := ds.WriteDir(*out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	s := ds.Summary()
	fmt.Printf("wrote %s to %s\n", *preset, *out)
	fmt.Printf("users=%d pois=%d check-ins=%d friendships=%d\n", s.Users, s.POIs, s.CheckIns, s.Edges)
	fmt.Printf("month-tensor density=%.4f%% mean check-ins/user=%.1f mean degree=%.1f\n",
		100*s.TensorDensityMonth, s.MeanCheckInsPerUser, s.MeanDegree)
}
