module tcss

go 1.22
