package tcss

// This file is the benchmark harness required to regenerate every table and
// figure of the paper's evaluation section (§V). One Benchmark per
// experiment; each iteration runs the full experiment at a reduced scale so
// `go test -bench=. -benchmem` finishes in reasonable time on a laptop. The
// cmd/experiments binary runs the same experiments at full preset scale and
// prints the complete tables.
//
// Alongside the experiment benchmarks, kernel micro-benchmarks cover the
// performance-critical pieces the paper's Table IV argues about: the naive
// Eq (14) loss, the negative-sampling loss, and the rewritten Eq (15) loss,
// plus the social Hausdorff head and the spectral initialization.

import (
	"math/rand"
	"strconv"
	"testing"

	"tcss/internal/core"
	"tcss/internal/eval"
	"tcss/internal/experiments"
	"tcss/internal/lbsn"
	"tcss/internal/mat"
	"tcss/internal/tensor"
)

// benchOptions trades fidelity for speed: quarter-scale presets and fewer
// epochs. The shapes (who wins, ablation ordering) are preserved; absolute
// metric values are noisier than the full-scale run.
func benchOptions() experiments.Options {
	return experiments.Options{
		Scale: 0.25, Epochs: 40, BaselineEpochs: 2,
		UsersPerEpoch: 40, TrainFrac: 0.8, Seed: 7,
	}
}

// runTable is the shared driver: run the experiment once per iteration and
// report the wall time; the table itself is logged once in verbose mode.
func runTable(b *testing.B, run func(experiments.Options) (*experiments.Table, error)) {
	b.Helper()
	opts := benchOptions()
	for i := 0; i < b.N; i++ {
		table, err := run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + table.String())
		}
	}
}

func BenchmarkTableIResults(b *testing.B)   { runTable(b, experiments.TableI) }
func BenchmarkTableIIAblation(b *testing.B) { runTable(b, experiments.TableII) }
func BenchmarkTableIIIWeights(b *testing.B) { runTable(b, experiments.TableIII) }
func BenchmarkTableIVLossTime(b *testing.B) { runTable(b, experiments.TableIV) }

func BenchmarkFig4CategoryHit(b *testing.B)          { runTable(b, experiments.Fig4) }
func BenchmarkFig5CategoryMRR(b *testing.B)          { runTable(b, experiments.Fig5) }
func BenchmarkFig6TimeFactorSimilarity(b *testing.B) { runTable(b, experiments.Fig6) }
func BenchmarkFig7CategorySimilarity(b *testing.B)   { runTable(b, experiments.Fig7) }
func BenchmarkFig8WeightGrid(b *testing.B)           { runTable(b, experiments.Fig8) }
func BenchmarkFig9InitConvergence(b *testing.B)      { runTable(b, experiments.Fig9) }
func BenchmarkFig10RankSweep(b *testing.B)           { runTable(b, experiments.Fig10) }
func BenchmarkFig11LambdaSweep(b *testing.B)         { runTable(b, experiments.Fig11) }
func BenchmarkFig12CaseStudy(b *testing.B)           { runTable(b, experiments.Fig12) }
func BenchmarkFig13TimeScores(b *testing.B)          { runTable(b, experiments.Fig13) }

// Ablation benches for this implementation's own design choices (DESIGN.md §4).
func BenchmarkAblationAlpha(b *testing.B)       { runTable(b, experiments.AblationAlpha) }
func BenchmarkAblationEntropy(b *testing.B)     { runTable(b, experiments.AblationEntropy) }
func BenchmarkAblationSubsampling(b *testing.B) { runTable(b, experiments.AblationUserSubsampling) }
func BenchmarkAblationGranularity(b *testing.B) { runTable(b, experiments.AblationGranularity) }

// benchInstance prepares one reduced Gowalla instance for the kernel
// micro-benchmarks.
func benchInstance(b *testing.B) (*experiments.Instance, *core.Model) {
	b.Helper()
	inst, err := experiments.LoadPreset("gowalla", benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	m := core.NewModel(inst.Train.DimI, inst.Train.DimJ, inst.Train.DimK, 10)
	if err := m.Initialize(core.RandomInit, inst.Train, rand.New(rand.NewSource(1))); err != nil {
		b.Fatal(err)
	}
	return inst, m
}

// The three Table IV loss strategies as micro-benchmarks: the asymptotic gap
// between the naive O(I·J·K·r) evaluation and the rewritten
// O(|Ω₊|·r + (I+J+K)·r²) form is the paper's efficiency claim.
func BenchmarkLossNaive(b *testing.B) {
	inst, m := benchInstance(b)
	grads := core.NewGrads(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grads.Zero()
		m.NaiveWholeDataLoss(inst.Train, 0.99, 0.01, grads)
	}
}

func BenchmarkLossNegSampling(b *testing.B) {
	inst, m := benchInstance(b)
	grads := core.NewGrads(m)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grads.Zero()
		negs, err := core.SampleNegatives(inst.Train, inst.Train.NNZ(), rng)
		if err != nil {
			b.Fatal(err)
		}
		m.NegSamplingLoss(inst.Train, negs, 0.99, 0.01, grads)
	}
}

func BenchmarkLossRewritten(b *testing.B) {
	inst, m := benchInstance(b)
	grads := core.NewGrads(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grads.Zero()
		m.WholeDataLoss(inst.Train, 0.99, 0.01, grads)
	}
}

// BenchmarkLossRewrittenWorkers sweeps the worker count of the parallel
// positive-entry loop (1 worker = the serial path bit-for-bit).
func BenchmarkLossRewrittenWorkers(b *testing.B) {
	for _, w := range []int{1, 4, 8} {
		b.Run("workers-"+strconv.Itoa(w), func(b *testing.B) {
			inst, m := benchInstance(b)
			grads := core.NewGrads(m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				grads.Zero()
				m.WholeDataLossWorkers(inst.Train, 0.99, 0.01, grads, w)
			}
		})
	}
}

// BenchmarkHausdorffLoss measures one full social-Hausdorff pass (loss +
// gradients over all users), the dominant per-epoch cost of TCSS training.
func BenchmarkHausdorffLoss(b *testing.B) {
	inst, m := benchInstance(b)
	head := core.NewHausdorff(inst.Side.Dist, inst.Side.EntropyW, inst.Side.FriendPOIs)
	users := make([]int, m.I)
	for i := range users {
		users[i] = i
	}
	grads := core.NewGrads(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grads.Zero()
		head.Loss(m, users, grads)
	}
}

// BenchmarkHausdorffLossWorkers sweeps the worker count of the user-sharded
// social-Hausdorff pass.
func BenchmarkHausdorffLossWorkers(b *testing.B) {
	for _, w := range []int{1, 4, 8} {
		b.Run("workers-"+strconv.Itoa(w), func(b *testing.B) {
			inst, m := benchInstance(b)
			head := core.NewHausdorff(inst.Side.Dist, inst.Side.EntropyW, inst.Side.FriendPOIs)
			users := make([]int, m.I)
			for i := range users {
				users[i] = i
			}
			grads := core.NewGrads(m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				grads.Zero()
				head.LossWorkers(m, users, grads, w)
			}
		})
	}
}

// BenchmarkScoreSlab measures the slab GEMM scoring kernel: one full J×K
// prediction slice per iteration (the unit of work of the Hausdorff head and
// the batch scorers).
func BenchmarkScoreSlab(b *testing.B) {
	_, m := benchInstance(b)
	out := make([]float64, m.J*m.K)
	scratch := make([]float64, 2*m.Rank)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ScoreSlabScratch(i%m.I, out, scratch)
	}
}

// BenchmarkMulBlocked compares the cache-blocked GEMM against the row-wise
// kernel at a size where all three operands overflow L1.
func BenchmarkMulBlocked(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	const n = 192
	x := mat.Random(n, n, 1, rng)
	y := mat.Random(n, n, 1, rng)
	out := mat.New(n, n)
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mat.MulBlocked(out, x, y)
		}
	})
	b.Run("rowwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mat.MulInto(out, x, y)
		}
	})
}

// BenchmarkRank measures the §V-C ranking protocol (100 sampled negatives
// per held-out entry, Hit@10 + MRR) that dominates benchmark-harness
// wall-clock.
func BenchmarkRank(b *testing.B) {
	inst, m := benchInstance(b)
	cfg := eval.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.Rank(m, inst.Test, inst.Train.DimJ, cfg)
	}
}

// BenchmarkSpectralInit measures the Eq (4) initialization: three sparse
// Gram matrices plus leading eigenvectors.
func BenchmarkSpectralInit(b *testing.B) {
	inst, _ := benchInstance(b)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewModel(inst.Train.DimI, inst.Train.DimJ, inst.Train.DimK, 10)
		if err := m.Initialize(core.SpectralInit, inst.Train, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainEpoch measures one complete TCSS training epoch (rewritten
// L2 + social head + Adam step) via a 1-epoch training run.
func BenchmarkTrainEpoch(b *testing.B) {
	inst, _ := benchInstance(b)
	cfg := core.DefaultConfig()
	cfg.Epochs = 1
	cfg.Seed = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(inst.Train, inst.Side, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict measures the Eq (6) scoring kernel across ranks.
func BenchmarkPredict(b *testing.B) {
	for _, rank := range []int{2, 10, 32} {
		b.Run("rank-"+strconv.Itoa(rank), func(b *testing.B) {
			m := core.NewModel(100, 100, 12, rank)
			rng := rand.New(rand.NewSource(5))
			if err := m.Initialize(core.RandomInit, nil, rng); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += m.Predict(i%100, (i*7)%100, i%12)
			}
			_ = sink
		})
	}
}

// BenchmarkDatasetGeneration measures the LBSN simulator itself.
func BenchmarkDatasetGeneration(b *testing.B) {
	cfg, err := lbsn.NewPreset("gowalla", 6)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Users, cfg.POIs = 120, 240
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := lbsn.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// The PR 4 serving-freshness benchmarks (BENCH_PR4.json): keeping a served
// model current via the engine's warm-start online update (what
// Recommender.Observe does) versus the pre-engine alternative of retraining
// from scratch on the grown tensor. Both report epochs/sec so the comparison
// is per unit of optimization work as well as wall-clock per refresh.
func observeBenchSetup(b *testing.B) (*Recommender, []lbsn.CheckIn, Config) {
	b.Helper()
	cfg := DefaultConfig()
	cfg.Epochs = 40
	cfg.UsersPerEpoch = 40
	cfg.Seed = 7
	gen, err := lbsn.NewPreset("gowalla", 7)
	if err != nil {
		b.Fatal(err)
	}
	gen.Users, gen.POIs = gen.Users/4, gen.POIs/4
	ds, err := lbsn.Generate(gen)
	if err != nil {
		b.Fatal(err)
	}
	rec, err := Fit(ds, Month, cfg)
	if err != nil {
		b.Fatal(err)
	}
	// A batch of genuinely new cells, as a burst of fresh check-ins would be.
	var fresh []lbsn.CheckIn
	for u := 0; u < ds.NumUsers && len(fresh) < 16; u++ {
		for j := 0; j < len(ds.POIs) && len(fresh) < 16; j++ {
			if !rec.Train.Has(u, j, 5) {
				fresh = append(fresh, lbsn.CheckIn{User: u, POI: j, Month: 5, Week: 22, Hour: 12})
				break
			}
		}
	}
	if len(fresh) == 0 {
		b.Fatal("no fresh cells available")
	}
	return rec, fresh, cfg
}

func BenchmarkObserveWarmStart(b *testing.B) {
	rec, fresh, _ := observeBenchSetup(b)
	online := DefaultOnlineConfig()
	// Observe swaps in private copies on success; restoring the originals
	// makes every iteration fold the same genuinely-new batch.
	m0, t0, s0, ci0 := rec.Model, rec.Train, rec.Side, len(rec.Dataset.CheckIns)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rec.Observe(fresh, online); err != nil {
			b.Fatal(err)
		}
		rec.Model, rec.Train, rec.Side = m0, t0, s0
		rec.Dataset.CheckIns = rec.Dataset.CheckIns[:ci0]
	}
	b.ReportMetric(float64(online.Epochs)*float64(b.N)/b.Elapsed().Seconds(), "epochs/sec")
}

func BenchmarkObserveRetrain(b *testing.B) {
	rec, fresh, cfg := observeBenchSetup(b)
	entries := make([]tensor.Entry, len(fresh))
	for n, c := range fresh {
		entries[n] = tensor.Entry{I: c.User, J: c.POI, K: c.Month, Val: 1}
	}
	grown := rec.Train.Clone()
	for _, e := range entries {
		grown.Set(e.I, e.J, e.K, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		side, err := core.BuildSideInfo(rec.Dataset.Social, rec.Dataset.Distances(), grown)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Train(grown, side, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.Epochs)*float64(b.N)/b.Elapsed().Seconds(), "epochs/sec")
}
