package tcss

import (
	"errors"
	"testing"

	"tcss/internal/core"
	"tcss/internal/geo"
	"tcss/internal/lbsn"
)

func TestObserveOpenGrowsEverythingTogether(t *testing.T) {
	ds := smallDataset(t, 21)
	cfg := quickConfig()
	cfg.Epochs = 5
	rec, err := Fit(ds, Month, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oldI, oldJ := rec.Model.I, rec.Model.J
	oldModel, oldSide, oldTrain := rec.Model, rec.Side, rec.Train

	newUser := lbsn.NewUser{ID: oldI, Friends: []int{0, 1}}
	newPOI := lbsn.POI{ID: oldJ, Loc: geo.Point{Lat: 30.1, Lon: -97.1}, Category: lbsn.Food}
	batch := ObserveBatch{
		NewUsers: []lbsn.NewUser{newUser},
		NewPOIs:  []lbsn.POI{newPOI},
		CheckIns: []lbsn.CheckIn{
			{User: oldI, POI: 3, Month: 4, Week: 18, Hour: 12},
			{User: 2, POI: oldJ, Month: 4, Week: 18, Hour: 19},
		},
	}
	ocfg := DefaultOnlineConfig()
	ocfg.Epochs = 3
	ocfg.Seed = 5
	added, err := rec.ObserveOpen(batch, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("added = %d, want 2", added)
	}
	if rec.Model.I != oldI+1 || rec.Model.J != oldJ+1 {
		t.Fatalf("model dims = %dx%d, want %dx%d", rec.Model.I, rec.Model.J, oldI+1, oldJ+1)
	}
	if rec.Train.DimI != oldI+1 || rec.Train.DimJ != oldJ+1 {
		t.Fatalf("train dims = %dx%d", rec.Train.DimI, rec.Train.DimJ)
	}
	if len(rec.Side.OwnPOIs) != oldI+1 || len(rec.Side.EntropyW) != oldJ+1 || rec.Side.Dist.N != oldJ+1 {
		t.Fatal("side info did not grow with the model")
	}
	if rec.Dataset.NumUsers != oldI+1 || len(rec.Dataset.POIs) != oldJ+1 {
		t.Fatal("dataset did not grow with the model")
	}
	if !rec.Dataset.Social.HasEdge(oldI, 0) || !rec.Dataset.Social.HasEdge(oldI, 1) {
		t.Fatal("arrival's friendships not wired into the social graph")
	}
	if got := rec.Side.OwnPOIs[oldI]; len(got) != 1 || got[0] != 3 {
		t.Fatalf("new user's own POIs = %v, want [3]", got)
	}

	// Transactional: published references stay valid and untouched.
	if oldModel.I != oldI || len(oldSide.OwnPOIs) != oldI || oldTrain.DimI != oldI {
		t.Fatal("previously published model/side/train were mutated")
	}

	// The grown row must be recommendable and exclude the visited POI.
	recs := rec.Recommend(oldI, 4, 5)
	if len(recs) == 0 {
		t.Fatal("no recommendations for grown user")
	}
	for _, rc := range recs {
		if rc.POI == 3 {
			t.Fatal("visited POI not excluded for grown user")
		}
	}

	// A second batch with a plain out-of-range check-in (no arrival
	// metadata) must also grow, via fallback init.
	added, err = rec.ObserveOpen(ObserveBatch{CheckIns: []lbsn.CheckIn{
		{User: oldI + 3, POI: 0, Month: 5, Week: 22, Hour: 9},
	}}, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 || rec.Model.I != oldI+4 {
		t.Fatalf("gap growth: added=%d I=%d, want 1/%d", added, rec.Model.I, oldI+4)
	}
}

func TestObserveOpenCompactRejected(t *testing.T) {
	ds := smallDataset(t, 22)
	cfg := quickConfig()
	cfg.Epochs = 3
	cfg.Storage = StorageFloat32
	rec, err := Fit(ds, Month, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oldI := rec.Model.I
	_, err = rec.ObserveOpen(ObserveBatch{CheckIns: []lbsn.CheckIn{
		{User: oldI, POI: 0, Month: 1, Week: 4, Hour: 8},
	}}, DefaultOnlineConfig())
	if !errors.Is(err, core.ErrCompactModel) {
		t.Fatalf("err = %v, want ErrCompactModel", err)
	}
	// In-range observes on compact models keep working transparently.
	if _, err := rec.ObserveOpen(ObserveBatch{CheckIns: []lbsn.CheckIn{
		{User: 0, POI: 1, Month: 1, Week: 4, Hour: 8},
	}}, DefaultOnlineConfig()); err != nil {
		t.Fatalf("in-range observe on compact model: %v", err)
	}
}

func TestObserveOpenDeterministic(t *testing.T) {
	run := func() *Model {
		ds := smallDataset(t, 23)
		cfg := quickConfig()
		cfg.Epochs = 3
		rec, err := Fit(ds, Month, cfg)
		if err != nil {
			t.Fatal(err)
		}
		batch := ObserveBatch{
			NewUsers: []lbsn.NewUser{{ID: rec.Model.I, Friends: []int{2}}},
			CheckIns: []lbsn.CheckIn{{User: rec.Model.I, POI: 1, Month: 2, Week: 9, Hour: 11}},
		}
		ocfg := DefaultOnlineConfig()
		ocfg.Epochs = 2
		ocfg.Seed = 9
		if _, err := rec.ObserveOpen(batch, ocfg); err != nil {
			t.Fatal(err)
		}
		return rec.Model
	}
	a, b := run(), run()
	for i := range a.U1.Data {
		if a.U1.Data[i] != b.U1.Data[i] {
			t.Fatal("ObserveOpen is not bit-deterministic under identical seeds")
		}
	}
}
