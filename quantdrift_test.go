package tcss

import (
	"math"
	"testing"

	"tcss/internal/eval"
)

// Drift tolerances for the compact storage modes, asserted on both NDCG@10
// (sampled-negative protocol) and recall@10 (full-ranking protocol). float32
// keeps ~7 significant digits, so ranking metrics may move only where two
// scores were near-ties; int8 rounds factors to 1/127 of each row's max and
// is allowed visibly more drift — the contract callers trade memory against.
const (
	f32DriftTol  = 0.01
	int8DriftTol = 0.05
)

// TestQuantizationRankingDrift is the quality gate for the compact storage
// modes: on the golden presets, converting a trained model to float32 or int8
// must not move NDCG@10 or recall@10 beyond the documented drift bounds, and
// must shrink the resident factor bytes by the promised ratios (≥ 2x for
// float32, ≥ 4x for int8).
func TestQuantizationRankingDrift(t *testing.T) {
	for _, preset := range []string{"gowalla", "gmu-5k"} {
		t.Run(preset, func(t *testing.T) {
			ds := GenerateDataset(preset, 11)
			cfg := quickConfig()
			cfg.Seed = 11
			// Realistic rank: at tiny ranks the fixed overheads (float64 core
			// weights, int8 per-row scales) dominate the shrink ratios this
			// test asserts.
			cfg.Rank = 12
			rec, err := Fit(ds, Month, cfg)
			if err != nil {
				t.Fatal(err)
			}
			base := rec.Model
			evalCfg := eval.DefaultConfig()

			// Full-ranking recall@10 excludes each user's training POIs, the
			// usual protocol (and what the serving skip lists implement).
			own := make([]map[int]bool, base.I)
			for u := range own {
				own[u] = make(map[int]bool, len(rec.Side.OwnPOIs[u]))
				for _, j := range rec.Side.OwnPOIs[u] {
					own[u][j] = true
				}
			}
			skip := func(user, poi int) bool { return own[user][poi] }

			type quality struct{ ndcg, recall float64 }
			measure := func(m *Model) quality {
				ext := eval.RankExtended(scorer{m}, rec.Test, base.J, evalCfg)
				_, recall := eval.TopNMetrics(scorer{m}, rec.Test, base.J, 10, skip)
				return quality{ndcg: ext.NDCGAtK, recall: recall}
			}
			ref := measure(base)
			if ref.ndcg == 0 {
				t.Fatalf("%s: degenerate reference NDCG@10 = 0", preset)
			}

			for _, tc := range []struct {
				mode StorageMode
				tol  float64
				size float64 // minimum factor-bytes shrink ratio vs f64
			}{
				// float32 halves every slab but h stays float64, so the
				// ratio approaches 2 from below; int8 clears 4x once the
				// rank amortizes its per-row scales.
				{StorageFloat32, f32DriftTol, 1.95},
				{StorageInt8, int8DriftTol, 4},
			} {
				compact, err := base.ToStorage(tc.mode)
				if err != nil {
					t.Fatal(err)
				}
				got := measure(compact)
				if d := math.Abs(got.ndcg - ref.ndcg); d > tc.tol {
					t.Errorf("%s %v: NDCG@10 drift %.4f (%.4f vs %.4f) exceeds %.4f",
						preset, tc.mode, d, got.ndcg, ref.ndcg, tc.tol)
				}
				if d := math.Abs(got.recall - ref.recall); d > tc.tol {
					t.Errorf("%s %v: recall@10 drift %.4f (%.4f vs %.4f) exceeds %.4f",
						preset, tc.mode, d, got.recall, ref.recall, tc.tol)
				}
				ratio := float64(base.FactorBytes()) / float64(compact.FactorBytes())
				if ratio < tc.size {
					t.Errorf("%s %v: factor bytes shrink %.2fx, want >= %.0fx",
						preset, tc.mode, ratio, tc.size)
				}
				t.Logf("%s %v: NDCG@10 %.4f (f64 %.4f), recall@10 %.4f (f64 %.4f), %.2fx smaller",
					preset, tc.mode, got.ndcg, ref.ndcg, got.recall, ref.recall, ratio)
			}
		})
	}
}
