package tcss

import (
	"fmt"

	"tcss/internal/core"
	"tcss/internal/lbsn"
	"tcss/internal/tensor"
)

// ObserveBatch bundles the check-ins of one observe step with the open-world
// arrivals they may reference: users signing up (with their initial
// friendships) and POIs opening. It is the unit the streaming drift simulator
// emits per week and the serving observe endpoint accepts.
type ObserveBatch struct {
	CheckIns []lbsn.CheckIn
	NewUsers []lbsn.NewUser
	NewPOIs  []lbsn.POI
}

// growNeighborK is how many geographically-nearest existing POIs warm-start
// a new POI's factor row.
const growNeighborK = 8

// ObserveOpen is Observe for an open world: check-ins may reference users and
// POIs beyond the model's current dimensions, and the batch may carry the
// arrival metadata that makes warm initialization possible. The model, the
// training tensor, the side information and the dataset all grow together;
// new user rows start at the mean of their friends' factors and new POI rows
// at the mean of their geographic neighbours' (see core.GrowthHints), so a
// newcomer's first recommendations reflect their social circle instead of
// noise.
//
// Without any growth the call reduces to Observe. Growth requires float64
// factor storage: unlike an in-range update, which transparently widens and
// re-compacts, growing a quantized model would warm-start rows from lossy
// factors and re-quantize every slab each batch — route open-world writes to
// a float64 primary instead. The returned error wraps core.ErrCompactModel so
// callers can tell this apart from a bad request.
//
// Like Observe, the update is transactional: all state is swapped in together
// only after every step succeeded, and previously published references to
// Model/Side stay valid and internally consistent.
func (r *Recommender) ObserveOpen(batch ObserveBatch, cfg OnlineConfig) (int, error) {
	oldI, oldJ := r.Model.I, r.Model.J
	// Arrivals whose ids already fit the model are stale duplicates — a
	// retried batch, or a gateway fan-out reaching this node twice. Drop them
	// so re-delivery is idempotent; their rows already exist.
	var newUsers []lbsn.NewUser
	for _, u := range batch.NewUsers {
		if u.ID >= oldI {
			newUsers = append(newUsers, u)
		}
	}
	var newPOIs []lbsn.POI
	for _, p := range batch.NewPOIs {
		if p.ID >= oldJ {
			newPOIs = append(newPOIs, p)
		}
	}
	needI, needJ := oldI, oldJ
	for _, c := range batch.CheckIns {
		if c.User >= needI {
			needI = c.User + 1
		}
		if c.POI >= needJ {
			needJ = c.POI + 1
		}
	}
	for _, u := range newUsers {
		if u.ID >= needI {
			needI = u.ID + 1
		}
	}
	for _, p := range newPOIs {
		if p.ID >= needJ {
			needJ = p.ID + 1
		}
	}
	if needI == oldI && needJ == oldJ && len(newUsers) == 0 {
		return r.Observe(batch.CheckIns, cfg)
	}
	if r.Model.Mode != StorageFloat64 {
		return 0, fmt.Errorf("tcss: open-world observe on %v storage: %w", r.Model.Mode, core.ErrCompactModel)
	}

	ds, err := r.Dataset.Grown(newUsers, newPOIs, needI, needJ)
	if err != nil {
		return 0, err
	}
	dist := ds.Distances()

	// Warm-init hints: friendship for user rows, geographic proximity for
	// POI rows. Neighbour candidates are restricted to pre-growth POIs —
	// placeholders and same-batch arrivals carry no learned signal.
	random := cfg.GrowHints != nil && cfg.GrowHints.Random
	hints := &core.GrowthHints{
		Friends:  make(map[int][]int),
		NearPOIs: make(map[int][]int),
		Random:   random,
		Seed:     cfg.Seed,
	}
	for _, u := range newUsers {
		hints.Friends[u.ID] = u.Friends
	}
	for _, p := range newPOIs {
		near := dist.NearestIndices(p.ID, growNeighborK+(needJ-oldJ))
		keep := make([]int, 0, growNeighborK)
		for _, j := range near {
			if j < oldJ {
				keep = append(keep, j)
				if len(keep) == growNeighborK {
					break
				}
			}
		}
		hints.NearPOIs[p.ID] = keep
	}

	model := r.Model.Clone()
	if err := model.Grow(needI, needJ, hints); err != nil {
		return 0, err
	}
	train := r.Train.Clone()
	train.Grow(needI, needJ, train.DimK)

	entries := make([]tensor.Entry, len(batch.CheckIns))
	for n, c := range batch.CheckIns {
		entries[n] = tensor.Entry{I: c.User, J: c.POI, K: r.Gran.Index(c), Val: 1}
	}

	// The social head (when enabled) needs side info covering the grown
	// dimensions before the update, so arrivals are regularized toward their
	// friends' POIs from their very first gradient step.
	var sidePre *core.SideInfo
	if cfg.Lambda > 0 {
		sidePre, err = core.GrowSideInfo(r.Side, ds.Social, dist, train, entries)
		if err != nil {
			return 0, err
		}
	}
	added, err := model.UpdateOnline(train, entries, sidePre, cfg)
	if err != nil {
		return 0, err
	}

	side, err := core.GrowSideInfo(r.Side, ds.Social, dist, train, entries)
	if err != nil {
		return 0, fmt.Errorf("%w: growing side info: %v", ErrObserveReverted, err)
	}
	side.Locs = ds.Locations()
	r.Model, r.Train, r.Side, r.Dataset = model, train, side, ds
	r.Dataset.CheckIns = append(r.Dataset.CheckIns, batch.CheckIns...)
	return added, nil
}
