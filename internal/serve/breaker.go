package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrDegraded is the sentinel wrapped by write-path rejections while the
// circuit breaker is open: the server is degraded — reads keep serving the
// last good snapshot — and the client should retry after the breaker's
// backoff. Test with errors.Is.
var ErrDegraded = errors.New("serve: write path degraded")

// breakerState is the circuit breaker's position in its state machine.
type breakerState int

const (
	breakerClosed   breakerState = iota // healthy, writes flow
	breakerOpen                         // tripped, writes rejected until a backoff passes
	breakerHalfOpen                     // backoff passed, one probe write admitted
)

func (st breakerState) String() string {
	switch st {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// breaker is the write-path circuit breaker. The writer goroutine owns the
// allow/success/failure cycle (writes are serialized, so at most one probe is
// ever in flight); status is read concurrently by /healthz and /metrics,
// hence the mutex.
//
// Closed until threshold consecutive failures; then open for an
// exponentially growing, jittered, capped backoff; then half-open, admitting
// exactly one probe whose outcome either closes the breaker (recovery) or
// re-opens it with a doubled backoff.
type breaker struct {
	mu        sync.Mutex
	now       func() time.Time
	rng       *rand.Rand // jitter; seeded, so tests are deterministic
	threshold int
	base, max time.Duration

	state       breakerState
	consecutive int
	backoff     time.Duration // last computed backoff (pre-jitter)
	until       time.Time     // when open: earliest probe time
	lastErr     error
}

func newBreaker(threshold int, base, max time.Duration, seed int64, now func() time.Time) *breaker {
	return &breaker{
		now: now, rng: rand.New(rand.NewSource(seed)),
		threshold: threshold, base: base, max: max,
	}
}

// allow reports whether a write may proceed. While open it returns an error
// wrapping ErrDegraded until the backoff deadline passes, at which point the
// breaker moves to half-open and admits the caller as the probe.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return nil
	}
	if b.now().Before(b.until) {
		return fmt.Errorf("%w (retry in %s): %v", ErrDegraded, b.until.Sub(b.now()).Round(time.Millisecond), b.lastErr)
	}
	b.state = breakerHalfOpen
	return nil
}

// success records a completed write; it reports whether this closed a
// previously tripped breaker (a recovery).
func (b *breaker) success() (recovered bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	recovered = b.state != breakerClosed
	b.state = breakerClosed
	b.consecutive = 0
	b.backoff = 0
	b.lastErr = nil
	return recovered
}

// failure records a failed write; it reports whether this tripped the
// breaker open (from closed after threshold consecutive failures, or
// immediately from a failed half-open probe).
func (b *breaker) failure(err error) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	b.lastErr = err
	if b.state == breakerClosed && b.consecutive < b.threshold {
		return false
	}
	wasOpen := b.state == breakerOpen
	b.state = breakerOpen
	if b.backoff == 0 {
		b.backoff = b.base
	} else {
		b.backoff *= 2
	}
	if b.backoff > b.max {
		b.backoff = b.max
	}
	// Jitter: [backoff, 1.25*backoff), so synchronized clients desynchronize.
	jittered := b.backoff + time.Duration(b.rng.Int63n(int64(b.backoff)/4+1))
	b.until = b.now().Add(jittered)
	return !wasOpen
}

// status returns the state name, a human reason when degraded, and how long
// until the next probe (0 when not open or already due).
func (b *breaker) status() (state, reason string, retryIn time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	state = b.state.String()
	if b.state != breakerClosed && b.lastErr != nil {
		reason = b.lastErr.Error()
	}
	if b.state == breakerOpen {
		if d := b.until.Sub(b.now()); d > 0 {
			retryIn = d
		}
	}
	return state, reason, retryIn
}
