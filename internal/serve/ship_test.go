package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"tcss/internal/core"
	"tcss/internal/fault"
)

// shipTestSnapshot builds a snapshot from a freshly fitted recommender.
func shipTestSnapshot(t *testing.T) (*Snapshot, *RecommenderSource) {
	t.Helper()
	rec := fitRecommender(t, 21)
	src := &RecommenderSource{Rec: rec}
	return &Snapshot{Gen: 7, Model: rec.Model, Side: rec.Side, Created: time.Now()}, src
}

func TestShipmentRoundTrip(t *testing.T) {
	snap, _ := shipTestSnapshot(t)
	wire, err := EncodeShipment(snap)
	if err != nil {
		t.Fatal(err)
	}
	model, side, gen, err := DecodeShipment(wire, snap.Side.Dist)
	if err != nil {
		t.Fatal(err)
	}
	if gen != snap.Gen {
		t.Fatalf("generation %d shipped as %d", snap.Gen, gen)
	}
	if model.I != snap.Model.I || model.J != snap.Model.J || model.K != snap.Model.K {
		t.Fatalf("model shape changed in transit: %dx%dx%d", model.I, model.J, model.K)
	}
	if side.Dist != snap.Side.Dist {
		t.Fatal("local distance matrix was not grafted into the decoded side info")
	}
	// Bit-identical scoring on both ends, the property failover relies on.
	for _, user := range []int{0, 3, 17} {
		want := snap.Model.TopNScratch(user, 2, 5, snap.Side.OwnPOIs[user], core.NewRecScratch(snap.Model))
		got := model.TopNScratch(user, 2, 5, side.OwnPOIs[user], core.NewRecScratch(model))
		if len(want) != len(got) {
			t.Fatalf("user %d: %d vs %d recs", user, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("user %d rank %d: sent %+v, received %+v", user, i, want[i], got[i])
			}
		}
	}
}

func TestShipmentCorruptionRejected(t *testing.T) {
	snap, _ := shipTestSnapshot(t)
	wire, err := EncodeShipment(snap)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte well past the fixed header: the outer CRC must
	// catch it before any decoding happens.
	for _, at := range []int{fault.FixedHeaderSize + 1, len(wire) / 2, len(wire) - 1} {
		bad := bytes.Clone(wire)
		bad[at] ^= 0x40
		if _, _, _, err := DecodeShipment(bad, snap.Side.Dist); !errors.Is(err, fault.ErrChecksum) {
			t.Fatalf("flip at %d: want ErrChecksum, got %v", at, err)
		}
	}
	// Truncation is also a frame error, though not necessarily a CRC one.
	if _, _, _, err := DecodeShipment(wire[:len(wire)-3], snap.Side.Dist); err == nil {
		t.Fatal("truncated shipment decoded cleanly")
	}
}

func TestServeSnapshotBin(t *testing.T) {
	srv, hs := newTestServer(t, Options{})
	cur := srv.snap.load()

	resp, err := http.Get(hs.URL + "/v1/snapshot/bin")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Generation"); got == "" {
		t.Fatal("missing X-Generation header")
	}
	model, _, gen, err := DecodeShipment(body, cur.Side.Dist)
	if err != nil {
		t.Fatal(err)
	}
	if gen != cur.Gen || model.I != cur.Model.I {
		t.Fatalf("shipped gen %d model %d users, serving gen %d model %d users",
			gen, model.I, cur.Gen, cur.Model.I)
	}

	// ?after=<current> is the cheap no-news poll: 204, no body.
	resp, err = http.Get(hs.URL + "/v1/snapshot/bin?after=" + strconv.FormatUint(cur.Gen, 10))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("poll at current generation: status %d, want 204", resp.StatusCode)
	}

	resp, err = http.Get(hs.URL + "/v1/snapshot/bin?after=bogus")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus after: status %d, want 400", resp.StatusCode)
	}
}

func TestOwnershipMisroute(t *testing.T) {
	srv, hs := newTestServer(t, Options{
		ShardName: "shard-0",
		Role:      "primary",
		Owns:      func(user int) bool { return user%2 == 0 },
	})

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/v1/recommend?user=4&t=2&n=5"); got != http.StatusOK {
		t.Fatalf("owned user: status %d", got)
	}
	if got := get("/v1/recommend?user=3&t=2&n=5"); got != http.StatusMisdirectedRequest {
		t.Fatalf("foreign user recommend: status %d, want 421", got)
	}
	if got := get("/v1/explain?user=5&poi=1&t=2"); got != http.StatusMisdirectedRequest {
		t.Fatalf("foreign user explain: status %d, want 421", got)
	}
	resp, err := http.Post(hs.URL+"/v1/observe", "application/json",
		strings.NewReader(`{"checkins":[{"user":3,"poi":1,"month":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("foreign user observe: status %d, want 421", resp.StatusCode)
	}

	m := srv.collectMetrics(false)
	if m.Shard.Name != "shard-0" || m.Shard.Role != "primary" {
		t.Fatalf("shard identity in metrics: %+v", m.Shard)
	}
	if m.Shard.Misrouted != 3 {
		t.Fatalf("misrouted counter = %d, want 3", m.Shard.Misrouted)
	}
}

func TestReadOnlyReplicaRejectsObserve(t *testing.T) {
	rec := fitRecommender(t, 21)
	srv, err := NewFromSource(&StaticSource{Model: rec.Model, Side: rec.Side, Gran: rec.Gran},
		Options{ShardName: "shard-0", Role: "replica"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hs := ts.URL

	resp, err := http.Post(hs+"/v1/observe", "application/json",
		strings.NewReader(`{"checkins":[{"user":1,"poi":1,"month":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("observe at replica: status %d, want 421", resp.StatusCode)
	}
	if !strings.Contains(eb.Error, "read-only") {
		t.Fatalf("error body %q does not explain read-only", eb.Error)
	}

	// Reads still work.
	r2, err := http.Get(hs + "/v1/recommend?user=1&t=2&n=5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("replica recommend: status %d", r2.StatusCode)
	}
}

func TestPublishMonotonic(t *testing.T) {
	rec := fitRecommender(t, 21)
	srv, err := NewFromSource(&StaticSource{Model: rec.Model, Side: rec.Side, Gran: rec.Gran}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	base := srv.snap.load().Gen
	gen, err := srv.Publish(ctx, rec.Model, rec.Side, base+5)
	if err != nil || gen != base+5 {
		t.Fatalf("publish ahead: gen=%d err=%v", gen, err)
	}
	if got := srv.snap.load().Gen; got != base+5 {
		t.Fatalf("snapshot generation %d after publish, want %d", got, base+5)
	}
	// A stale shipment must be a no-op that reports the live generation.
	gen, err = srv.Publish(ctx, rec.Model, rec.Side, base+2)
	if err != nil || gen != base+5 {
		t.Fatalf("stale publish: gen=%d err=%v, want no-op at %d", gen, err, base+5)
	}
	m := srv.collectMetrics(false)
	if m.Replication.Applied != 1 {
		t.Fatalf("replication applied = %d, want 1", m.Replication.Applied)
	}
}

func TestMetricsWindow(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	if resp, err := http.Get(hs.URL + "/v1/recommend?user=3&t=2&n=5"); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	} else {
		t.Fatal(err)
	}

	var plain, windowed metricsSnapshot
	getJSON(t, hs.URL+"/metrics", &plain)
	getJSON(t, hs.URL+"/metrics?window=1", &windowed)
	if plain.Windows != nil {
		t.Fatal("plain scrape should omit the raw windows block")
	}
	if windowed.Windows == nil {
		t.Fatal("?window=1 scrape missing the raw windows block")
	}
	if len(windowed.Windows.RecommendMs) == 0 {
		t.Fatal("recommend window empty after a served request")
	}
	if windowed.Recommend.Count != 1 {
		t.Fatalf("recommend count %d, want 1", windowed.Recommend.Count)
	}
}

func TestRecordReplication(t *testing.T) {
	rec := fitRecommender(t, 21)
	srv, err := NewFromSource(&StaticSource{Model: rec.Model, Side: rec.Side, Gran: rec.Gran}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	srv.RecordReplication(nil)
	srv.RecordReplication(errors.New("connection refused"))
	srv.RecordReplication(fault.ErrChecksum)
	m := srv.collectMetrics(false)
	if m.Replication.Syncs != 1 || m.Replication.Failures != 2 || m.Replication.ChecksumRejected != 1 {
		t.Fatalf("replication counters %+v", m.Replication)
	}
}
