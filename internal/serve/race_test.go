package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tcss/internal/core"
)

// freshCells collects n distinct (user, poi) cells absent from the training
// tensor of the server's current snapshot, spread across users so every
// observe batch below genuinely adds cells.
func freshCells(t *testing.T, srv *Server, n int) []observeCheckIn {
	t.Helper()
	snap := srv.snap.load()
	own := make([]map[int]bool, snap.Model.I)
	for u := range own {
		own[u] = map[int]bool{}
		for _, j := range snap.Side.OwnPOIs[u] {
			own[u][j] = true
		}
	}
	var cells []observeCheckIn
	for j := 0; j < snap.Model.J && len(cells) < n; j++ {
		for u := 0; u < snap.Model.I && len(cells) < n; u++ {
			if !own[u][j] {
				own[u][j] = true
				cells = append(cells, observeCheckIn{User: u, POI: j, Month: 3, Week: 13, Hour: 9})
			}
		}
	}
	if len(cells) < n {
		t.Fatalf("only %d fresh cells available, want %d", len(cells), n)
	}
	return cells
}

// TestConcurrentReadersObserveWriter hammers GET /v1/recommend from many
// goroutines while a writer applies observe batches, and checks under -race
// that every response is internally consistent with exactly one snapshot
// generation: recomputing TopNScratch against the snapshot published at the
// response's reported generation must reproduce the response bit for bit.
func TestConcurrentReadersObserveWriter(t *testing.T) {
	srv, err := New(fitRecommender(t, 21), Options{Online: quickOnline()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Record every published snapshot by generation. The initial snapshot is
	// published inside New, before onSwap can be set; capture it directly.
	// Setting onSwap here is race-free: the writer goroutine only publishes
	// while handling a command, and the channel send of the first observe
	// happens after this write.
	var (
		mu    sync.Mutex
		byGen = map[uint64]*Snapshot{}
	)
	first := srv.snap.load()
	byGen[first.Gen] = first
	srv.onSwap = func(snap *Snapshot) {
		mu.Lock()
		byGen[snap.Gen] = snap
		mu.Unlock()
	}

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// snapshotFor waits briefly for onSwap to record a generation a reader
	// already saw: publish stores the atomic pointer before invoking onSwap,
	// so a reader can observe a generation a beat before it lands in byGen.
	snapshotFor := func(gen uint64) *Snapshot {
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			snap := byGen[gen]
			mu.Unlock()
			if snap != nil || time.Now().After(deadline) {
				return snap
			}
			time.Sleep(time.Millisecond)
		}
	}

	const (
		readers  = 9
		batches  = 3
		perBatch = 2
		topN     = 6
	)
	cells := freshCells(t, srv, batches*perBatch)
	model := first.Model

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sc := core.NewRecScratch(model)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				user := (r*7 + i) % model.I
				tu := (r + i) % model.K
				var got recommendResponse
				url := fmt.Sprintf("%s/v1/recommend?user=%d&t=%d&n=%d", hs.URL, user, tu, topN)
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					t.Errorf("reader %d: status %d", r, resp.StatusCode)
					return
				}
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					t.Errorf("reader %d: decoding %s: %v", r, url, err)
					return
				}
				snap := snapshotFor(got.Generation)
				if snap == nil {
					t.Errorf("reader %d: response claims unknown generation %d", r, got.Generation)
					return
				}
				want := snap.Model.TopNScratch(user, tu, topN, snap.Side.OwnPOIs[user], sc)
				if len(want) != len(got.Results) {
					t.Errorf("reader %d gen %d: %d results, recompute gives %d",
						r, got.Generation, len(got.Results), len(want))
					return
				}
				for p := range want {
					if want[p].POI != got.Results[p].POI || want[p].Score != got.Results[p].Score {
						t.Errorf("reader %d gen %d user %d t %d rank %d: got %+v, recompute %+v",
							r, got.Generation, user, tu, p, got.Results[p], want[p])
						return
					}
				}
			}
		}(r)
	}

	// Single observe writer: each batch adds fresh cells, so every batch must
	// advance the generation by exactly one.
	for b := 0; b < batches; b++ {
		batch := cells[b*perBatch : (b+1)*perBatch]
		resp, out := postObserve(t, hs.URL, observeRequest{CheckIns: batch})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe batch %d: status %d", b, resp.StatusCode)
		}
		if out.Added == 0 {
			t.Fatalf("observe batch %d added no cells", b)
		}
		if out.Generation != uint64(b+1) {
			t.Fatalf("observe batch %d: generation %d, want %d", b, out.Generation, b+1)
		}
	}
	close(done)
	wg.Wait()

	if got := srv.Generation(); got != batches {
		t.Fatalf("final generation %d, want %d", got, batches)
	}
	mu.Lock()
	recorded := len(byGen)
	mu.Unlock()
	if recorded != batches+1 {
		t.Fatalf("recorded %d snapshots, want %d", recorded, batches+1)
	}
}
