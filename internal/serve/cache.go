package serve

import (
	"container/list"
	"sync"
)

// cacheKey identifies one recommend or next response. The routed model name
// and its generation are part of the key, so responses from different models
// never collide and every snapshot swap implicitly invalidates all cached
// entries — a stale generation can never be served. The server additionally
// purges on swap so dead entries release memory immediately instead of aging
// out of the LRU. For /v1/next, seq holds the exact canonicalized check-in
// sequence ("poi:t;…"): keying on the full sequence rather than a hash rules
// out collisions serving a wrong cached body.
type cacheKey struct {
	model   string
	gen     uint64
	user, t int
	n       int
	seq     string
}

// lruCache is a small mutex-guarded LRU over marshaled response bodies.
// Storing the exact bytes written on the miss path keeps hit responses
// byte-identical to miss responses for the same (generation, query).
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *cacheEntry
	items map[cacheKey]*list.Element
}

type cacheEntry struct {
	key  cacheKey
	body []byte
}

func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		return nil
	}
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[cacheKey]*list.Element, capacity),
	}
}

// get returns the cached body for key, or nil.
func (c *lruCache) get(key cacheKey) []byte {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).body
}

// put stores body under key, evicting the least recently used entry when
// full. The caller must not modify body afterwards.
func (c *lruCache) put(key cacheKey, body []byte) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, body: body})
}

// purge drops every entry (called on snapshot swap).
func (c *lruCache) purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[cacheKey]*list.Element, c.cap)
}

// len reports the current entry count.
func (c *lruCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
