package serve

import (
	"context"
	"sync/atomic"
)

// admission is the read path's bounded admission queue: at most maxInflight
// requests score concurrently, at most maxQueue more may wait for a slot, and
// anything beyond that is shed immediately with 503 + Retry-After so an
// overloaded server degrades to fast rejections instead of collapsing under
// unbounded goroutine and memory growth (every accepted request holds scratch
// buffers and a response in flight).
type admission struct {
	slots       chan struct{}
	maxInflight int
	maxQueue    int
	inflight    atomic.Int64
	waiting     atomic.Int64
}

func newAdmission(maxInflight, maxQueue int) *admission {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots:       make(chan struct{}, maxInflight),
		maxInflight: maxInflight,
		maxQueue:    maxQueue,
	}
}

// admissionResult classifies the outcome of acquire.
type admissionResult int

const (
	admitted     admissionResult = iota
	shedOverflow                 // queue full: 503 + Retry-After
	shedDeadline                 // context expired while waiting: 504
)

// acquire blocks until a slot is free, the queue overflows, or ctx expires.
// On admitted the caller must release().
func (a *admission) acquire(ctx context.Context) admissionResult {
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return admitted
	default:
	}
	// No free slot: join the bounded wait queue if there is room.
	if a.waiting.Add(1) > int64(a.maxQueue) {
		a.waiting.Add(-1)
		return shedOverflow
	}
	defer a.waiting.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return admitted
	case <-ctx.Done():
		return shedDeadline
	}
}

func (a *admission) release() {
	a.inflight.Add(-1)
	<-a.slots
}
