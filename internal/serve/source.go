package serve

import (
	"errors"
	"fmt"

	"tcss"
	"tcss/internal/core"
	"tcss/internal/lbsn"
)

// ErrReadOnly is the sentinel returned by sources that cannot apply observe
// batches: replicas fed by snapshot shipping and static (synthetic or
// mmap-served) models. Handlers answer such observes with 421 so a
// misconfigured client — or a gateway with a stale ring — learns it is
// talking to the wrong node rather than silently losing writes.
var ErrReadOnly = errors.New("serve: node is read-only, observe at the shard primary")

// Source is the snapshot-source seam between the HTTP server and the model
// it serves. The server's read path only ever touches immutable Snapshots;
// a Source answers the two questions the write path needs: what snapshot to
// publish at startup, and how to fold an observe batch into the next one.
//
// This seam is what lets one Server implementation serve three roles:
//
//   - single node / shard primary: RecommenderSource applies observes via
//     the transactional tcss.Recommender.Observe;
//   - shard replica: StaticSource rejects observes with ErrReadOnly and the
//     snapshot-shipping Replicator publishes shipped generations through
//     Server.Publish;
//   - synthetic or mmap-backed read-only serving: StaticSource again.
//
// Observe is only ever called from the server's single-writer goroutine, so
// implementations need no internal locking against themselves.
type Source interface {
	// Snapshot returns the model and side information to publish at startup.
	Snapshot() (*core.Model, *core.SideInfo)
	// Granularity maps observe check-ins to tensor time units.
	Granularity() lbsn.Granularity
	// Observe folds a batch — check-ins plus any open-world arrivals — and
	// returns the number of genuinely new tensor cells plus the fresh
	// model/side pair to publish. The pair must be fresh objects whenever the
	// model changed (including pure growth with zero new cells, so the writer
	// can detect it by pointer); read-only sources return ErrReadOnly.
	Observe(batch tcss.ObserveBatch, cfg tcss.OnlineConfig) (added int, model *core.Model, side *core.SideInfo, err error)
	// ReadOnly reports whether Observe always fails with ErrReadOnly; the
	// handlers use it to reject writes before they reach the writer queue.
	ReadOnly() bool
}

// RecommenderSource adapts a fitted tcss.Recommender to the Source seam.
// After the server starts, the writer goroutine owns the Recommender.
type RecommenderSource struct {
	Rec *tcss.Recommender
}

// Snapshot returns the recommender's current model and side information.
func (s *RecommenderSource) Snapshot() (*core.Model, *core.SideInfo) {
	return s.Rec.Model, s.Rec.Side
}

// Granularity returns the granularity the recommender was fitted at.
func (s *RecommenderSource) Granularity() lbsn.Granularity { return s.Rec.Gran }

// Observe applies the batch transactionally via the open-world path — model
// and side information grow when the batch references users or POIs beyond
// the current dimensions — and returns the recommender's fresh model/side
// objects (ObserveOpen swaps in new values, never mutates published ones, so
// earlier snapshots stay internally consistent).
func (s *RecommenderSource) Observe(batch tcss.ObserveBatch, cfg tcss.OnlineConfig) (int, *core.Model, *core.SideInfo, error) {
	added, err := s.Rec.ObserveOpen(batch, cfg)
	if err != nil {
		return 0, nil, nil, err
	}
	return added, s.Rec.Model, s.Rec.Side, nil
}

// ReadOnly reports false: a recommender-backed node is a writable primary.
func (s *RecommenderSource) ReadOnly() bool { return false }

// StaticSource serves a fixed model/side pair and rejects observes. It backs
// replicas (whose snapshots arrive via Server.Publish from the shipping
// Replicator) and read-only deployments such as synthetic load-test models.
type StaticSource struct {
	Model *core.Model
	Side  *core.SideInfo
	Gran  lbsn.Granularity
}

// Snapshot returns the static model and side information.
func (s *StaticSource) Snapshot() (*core.Model, *core.SideInfo) { return s.Model, s.Side }

// Granularity returns the declared granularity.
func (s *StaticSource) Granularity() lbsn.Granularity { return s.Gran }

// Observe always fails with ErrReadOnly.
func (s *StaticSource) Observe(tcss.ObserveBatch, tcss.OnlineConfig) (int, *core.Model, *core.SideInfo, error) {
	return 0, nil, nil, ErrReadOnly
}

// ReadOnly reports true.
func (s *StaticSource) ReadOnly() bool { return true }

// validateSource rejects sources that cannot publish a first snapshot.
func validateSource(src Source) error {
	if src == nil {
		return fmt.Errorf("serve: nil snapshot source")
	}
	m, side := src.Snapshot()
	if m == nil || side == nil {
		return fmt.Errorf("serve: snapshot source has no model or side information")
	}
	return nil
}
