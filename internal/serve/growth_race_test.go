package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tcss/internal/core"
)

// TestConcurrentReadersGrowthWriter is the open-world variant of
// TestConcurrentReadersObserveWriter: readers hammer GET /v1/recommend while
// a writer applies observe batches that each carry a new-user arrival, a POI
// opening and check-ins referencing them, so every swap also grows the model
// dimensions. Under -race, each response must still be bit-identical to a
// TopNScratch recompute against the snapshot published at the response's
// reported generation — growth must never expose a half-swapped model.
func TestConcurrentReadersGrowthWriter(t *testing.T) {
	srv, err := New(fitRecommender(t, 21), Options{Grow: true, Online: quickOnline()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var (
		mu    sync.Mutex
		byGen = map[uint64]*Snapshot{}
	)
	first := srv.snap.load()
	byGen[first.Gen] = first
	srv.onSwap = func(snap *Snapshot) {
		mu.Lock()
		byGen[snap.Gen] = snap
		mu.Unlock()
	}

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	snapshotFor := func(gen uint64) *Snapshot {
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			snap := byGen[gen]
			mu.Unlock()
			if snap != nil || time.Now().After(deadline) {
				return snap
			}
			time.Sleep(time.Millisecond)
		}
	}

	const (
		readers = 9
		batches = 3
		topN    = 6
	)
	cells := freshCells(t, srv, batches)
	model := first.Model
	baseI, baseJ := model.I, model.J

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// The scratch is sized for the base model; RecScratch grows its
			// buffers lazily, so recomputing against larger snapshots is safe.
			sc := core.NewRecScratch(model)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				user := (r*7 + i) % baseI
				tu := (r + i) % model.K
				var got recommendResponse
				url := fmt.Sprintf("%s/v1/recommend?user=%d&t=%d&n=%d", hs.URL, user, tu, topN)
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					t.Errorf("reader %d: status %d", r, resp.StatusCode)
					return
				}
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					t.Errorf("reader %d: decoding %s: %v", r, url, err)
					return
				}
				snap := snapshotFor(got.Generation)
				if snap == nil {
					t.Errorf("reader %d: response claims unknown generation %d", r, got.Generation)
					return
				}
				want := snap.Model.TopNScratch(user, tu, topN, snap.Side.OwnPOIs[user], sc)
				if len(want) != len(got.Results) {
					t.Errorf("reader %d gen %d: %d results, recompute gives %d",
						r, got.Generation, len(got.Results), len(want))
					return
				}
				for p := range want {
					if want[p].POI != got.Results[p].POI || want[p].Score != got.Results[p].Score {
						t.Errorf("reader %d gen %d user %d t %d rank %d: got %+v, recompute %+v",
							r, got.Generation, user, tu, p, got.Results[p], want[p])
						return
					}
				}
			}
		}(r)
	}

	// Growth writer: batch b introduces user baseI+b and POI baseJ+b, with a
	// check-in from the arrival to the opening plus one fresh in-range cell,
	// so every batch both grows the dimensions and adds tensor cells.
	for b := 0; b < batches; b++ {
		newUser, newPOI := baseI+b, baseJ+b
		req := observeRequest{
			NewUsers: []observeNewUser{{ID: newUser, Friends: []int{b % baseI}}},
			NewPOIs:  []observePOI{{ID: newPOI, Lat: 38.83, Lon: -77.31, Category: b % 5}},
			CheckIns: []observeCheckIn{
				{User: newUser, POI: newPOI, Month: 3, Week: 13, Hour: 9},
				cells[b],
			},
		}
		resp, out := postObserve(t, hs.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe batch %d: status %d", b, resp.StatusCode)
		}
		if out.Added == 0 {
			t.Fatalf("observe batch %d added no cells", b)
		}
		if out.Generation != uint64(b+1) {
			t.Fatalf("observe batch %d: generation %d, want %d", b, out.Generation, b+1)
		}
		if out.Users != baseI+b+1 || out.POIs != baseJ+b+1 {
			t.Fatalf("observe batch %d: dims %dx%d, want %dx%d",
				b, out.Users, out.POIs, baseI+b+1, baseJ+b+1)
		}
	}
	close(done)
	wg.Wait()

	if got := srv.Generation(); got != batches {
		t.Fatalf("final generation %d, want %d", got, batches)
	}
	final := srv.snap.load()
	if final.Model.I != baseI+batches || final.Model.J != baseJ+batches {
		t.Fatalf("final dims %dx%d, want %dx%d",
			final.Model.I, final.Model.J, baseI+batches, baseJ+batches)
	}
	if gu, gp := srv.met.observeGrownUsers.Load(), srv.met.observeGrownPOIs.Load(); gu != batches || gp != batches {
		t.Fatalf("growth counters users=%d pois=%d, want %d each", gu, gp, batches)
	}
}
