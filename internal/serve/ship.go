package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"tcss/internal/core"
	"tcss/internal/fault"
	"tcss/internal/geo"
)

// ShipVersion is the snapshot-shipping wire format version, carried in the
// outer CRC32-C frame header so both ends can gate on it before trusting the
// payload layout.
const ShipVersion = 1

// ShippedSide is the dynamic part of core.SideInfo that travels with a
// shipped snapshot. The POI distance matrix is deliberately excluded: it is
// derived from static POI geography, identical on every node that loaded the
// same dataset, and O(J²) — shipping it would dominate the wire size for no
// information. DecodeShipment grafts the receiver's local distance matrix
// back in.
type ShippedSide struct {
	EntropyW   []float64 `json:"entropy_w"`
	OwnPOIs    [][]int   `json:"own_pois"`
	FriendPOIs [][]int   `json:"friend_pois"`
	// Lats/Lons, when present, are the POI coordinates (len == model.J).
	// They are O(J) — unlike the O(J²) matrix — and let a replica whose
	// static distance matrix predates open-world growth extend it
	// incrementally instead of rejecting the shipment. Optional and
	// backward compatible: pre-growth shipments simply omit them, and the
	// wire version stays ShipVersion 1.
	Lats []float64 `json:"lats,omitempty"`
	Lons []float64 `json:"lons,omitempty"`
}

// EncodeShipment serializes a snapshot for replication: one outer CRC32-C
// frame (fault.WriteFramed, version ShipVersion) whose payload is the model
// in the v5 binary slab format (itself a checksummed frame, so the replica's
// standard loader verifies it a second time) followed by the dynamic side
// information as JSON, with an 8-byte little-endian length prefix splitting
// the two. A single flipped or torn byte anywhere fails the outer CRC on the
// receiving end with fault.ErrChecksum.
func EncodeShipment(snap *Snapshot) ([]byte, error) {
	var model bytes.Buffer
	if err := snap.Model.SaveBinary(&model, snap.Gen); err != nil {
		return nil, fmt.Errorf("serve: encoding shipped model: %w", err)
	}
	shipped := ShippedSide{
		EntropyW:   snap.Side.EntropyW,
		OwnPOIs:    snap.Side.OwnPOIs,
		FriendPOIs: snap.Side.FriendPOIs,
	}
	if len(snap.Side.Locs) >= snap.Model.J {
		shipped.Lats = make([]float64, snap.Model.J)
		shipped.Lons = make([]float64, snap.Model.J)
		for j := 0; j < snap.Model.J; j++ {
			shipped.Lats[j] = snap.Side.Locs[j].Lat
			shipped.Lons[j] = snap.Side.Locs[j].Lon
		}
	}
	side, err := json.Marshal(shipped)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding shipped side info: %w", err)
	}
	wire := make([]byte, 8, 8+model.Len()+len(side))
	binary.LittleEndian.PutUint64(wire, uint64(model.Len()))
	wire = append(wire, model.Bytes()...)
	wire = append(wire, side...)
	var out bytes.Buffer
	out.Grow(len(wire) + 256)
	if err := fault.WriteFramed(&out, ShipVersion, wire); err != nil {
		return nil, fmt.Errorf("serve: framing shipment: %w", err)
	}
	return out.Bytes(), nil
}

// DecodeShipment verifies and decodes a shipment produced by EncodeShipment,
// grafting dist (the receiver's static POI distance matrix) into the side
// information. When the shipped model has grown past dist (open-world
// growth at the primary) and the shipment carries POI coordinates, the
// matrix is extended incrementally (geo.DistanceMatrix.Grown) — or built
// from scratch when dist is nil; without coordinates a dimension mismatch
// is an error. Corruption fails with an error wrapping fault.ErrChecksum;
// callers keep serving their last good snapshot in that case.
func DecodeShipment(data []byte, dist *geo.DistanceMatrix) (*core.Model, *core.SideInfo, uint64, error) {
	version, wire, err := fault.ReadFramed(data)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("serve: shipment frame: %w", err)
	}
	if version != ShipVersion {
		return nil, nil, 0, fmt.Errorf("serve: shipment is wire version %d, this build reads %d", version, ShipVersion)
	}
	if len(wire) < 8 {
		return nil, nil, 0, fmt.Errorf("serve: shipment payload truncated (%d bytes)", len(wire))
	}
	modelLen := binary.LittleEndian.Uint64(wire)
	if modelLen > uint64(len(wire)-8) {
		return nil, nil, 0, fmt.Errorf("serve: shipment declares %d model bytes, payload has %d", modelLen, len(wire)-8)
	}
	model, gen, err := core.DecodeBinary(wire[8 : 8+modelLen])
	if err != nil {
		return nil, nil, 0, err
	}
	var shipped ShippedSide
	if err := json.Unmarshal(wire[8+modelLen:], &shipped); err != nil {
		return nil, nil, 0, fmt.Errorf("serve: decoding shipped side info: %w", err)
	}
	if len(shipped.OwnPOIs) != model.I || len(shipped.FriendPOIs) != model.I || len(shipped.EntropyW) != model.J {
		return nil, nil, 0, fmt.Errorf("serve: shipped side info shape (%d users, %d POIs) does not match model %dx%d",
			len(shipped.OwnPOIs), len(shipped.EntropyW), model.I, model.J)
	}
	var pts []geo.Point
	if len(shipped.Lats) == model.J && len(shipped.Lons) == model.J {
		pts = make([]geo.Point, model.J)
		for j := range pts {
			pts[j] = geo.Point{Lat: shipped.Lats[j], Lon: shipped.Lons[j]}
		}
	}
	switch {
	case dist != nil && dist.N == model.J:
		// Local matrix matches the shipped model: the normal graft.
	case pts != nil && dist != nil && dist.N < model.J:
		dist = dist.Grown(pts)
	case pts != nil:
		dist = geo.NewDistanceMatrix(pts)
	default:
		n := 0
		if dist != nil {
			n = dist.N
		}
		return nil, nil, 0, fmt.Errorf("serve: shipment model has %d POIs but local distance matrix covers %d and no coordinates were shipped", model.J, n)
	}
	side := &core.SideInfo{
		Dist:       dist,
		EntropyW:   shipped.EntropyW,
		OwnPOIs:    shipped.OwnPOIs,
		FriendPOIs: shipped.FriendPOIs,
		Locs:       pts,
	}
	return model, side, gen, nil
}

// RecordReplication feeds the replica-side replication counters after one
// sync attempt: nil for a successful fetch (whether or not it carried a new
// generation), a fault.ErrChecksum-wrapping error for a corrupt shipment, any
// other error for transport or decode failures. The shipping Replicator in
// internal/cluster calls this so /metrics on a replica tells the whole story.
func (s *Server) RecordReplication(err error) {
	if err == nil {
		s.met.replicationSyncs.Add(1)
		return
	}
	s.met.replicationFails.Add(1)
	if errors.Is(err, fault.ErrChecksum) {
		s.met.replicationCRC.Add(1)
	}
}

// serveSnapshotBin implements GET /v1/snapshot/bin: the snapshot-shipping
// export. With ?after=G the handler answers 204 No Content when the current
// generation is not past G — the cheap poll a replica issues every sync
// interval — and otherwise streams the full shipment. The X-Generation
// header always reports the generation being (or not being) shipped.
func (s *Server) serveSnapshotBin(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.load()
	w.Header().Set("X-Generation", strconv.FormatUint(snap.Gen, 10))
	if raw := r.URL.Query().Get("after"); raw != "" {
		after, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			s.badRequest(w, "parameter %q: %v", "after", err)
			return
		}
		if snap.Gen <= after {
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
	body, err := EncodeShipment(snap)
	if err != nil {
		s.met.internalErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	s.met.shipmentsServed.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}
