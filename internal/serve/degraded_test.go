package serve

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"tcss/internal/core"
	"tcss/internal/fault"
)

func getRaw(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestDegradedModeBreaker drives the write path through injected failures and
// checks the full degradation contract: the breaker trips after threshold
// consecutive failures, writes are rejected with 503 + Retry-After while
// open, /healthz reports degraded with a reason, reads keep serving the last
// good snapshot byte-identically throughout, and after the backoff a probe
// write recovers the breaker.
func TestDegradedModeBreaker(t *testing.T) {
	hooks := fault.NewHooks(7)
	srv, hs := newTestServer(t, Options{
		Faults:             hooks,
		BreakerThreshold:   2,
		BreakerBaseBackoff: 50 * time.Millisecond,
		BreakerMaxBackoff:  time.Second,
		BreakerSeed:        11,
	})
	fresh := findFreshCell(t, srv)

	readURL := hs.URL + "/v1/recommend?user=1&t=0&n=5"
	baseStatus, baseline := getRaw(t, readURL)
	if baseStatus != http.StatusOK {
		t.Fatalf("baseline read status %d", baseStatus)
	}

	// Readers hammer the server across the whole degradation episode; every
	// response must be 200 and byte-identical to the healthy baseline.
	var readers sync.WaitGroup
	stop := make(chan struct{})
	readErr := make(chan string, 1)
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, body := func() (int, []byte) {
					resp, err := http.Get(readURL)
					if err != nil {
						return 0, nil
					}
					defer resp.Body.Close()
					b, _ := io.ReadAll(resp.Body)
					return resp.StatusCode, b
				}()
				if status != http.StatusOK || !bytes.Equal(body, baseline) {
					select {
					case readErr <- "read degraded during write-path failure":
					default:
					}
					return
				}
			}
		}()
	}

	// Two injected failures trip the threshold-2 breaker.
	hooks.FailNext(2, nil)
	for i := 0; i < 2; i++ {
		resp, _ := postObserve(t, hs.URL, observeRequest{CheckIns: []observeCheckIn{fresh}})
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("injected failure %d: status %d, want 500", i, resp.StatusCode)
		}
	}

	// Open breaker: writes shed instantly with Retry-After.
	resp, _ := postObserve(t, hs.URL, observeRequest{CheckIns: []observeCheckIn{fresh}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker observe status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded rejection carries no Retry-After")
	}

	var health healthResponse
	hr := getJSON(t, hs.URL+"/healthz", &health)
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz status %d, want 200 (reads still serve)", hr.StatusCode)
	}
	if health.Status != "degraded" || health.Breaker != "open" || health.Reason == "" {
		t.Fatalf("degraded healthz = %+v", health)
	}

	// The degradation episode is over once the probe publishes generation 1,
	// which legitimately changes read responses — stop the baseline readers
	// first.
	close(stop)
	readers.Wait()
	select {
	case msg := <-readErr:
		t.Fatal(msg)
	default:
	}

	// Past the (jittered, <= 1.25x) backoff the next write is the probe; the
	// injection script is exhausted, so it succeeds and closes the breaker.
	time.Sleep(150 * time.Millisecond)
	resp, got := postObserve(t, hs.URL, observeRequest{CheckIns: []observeCheckIn{fresh}})
	if resp.StatusCode != http.StatusOK || got.Added != 1 || got.Generation != 1 {
		t.Fatalf("probe observe = %d %+v, want 200 added 1 gen 1", resp.StatusCode, got)
	}
	getJSON(t, hs.URL+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("post-recovery healthz = %+v", health)
	}

	var met metricsSnapshot
	getJSON(t, hs.URL+"/metrics", &met)
	rel := met.Reliability
	if rel.ObserveFailures != 2 {
		t.Fatalf("observe_failures = %d, want 2", rel.ObserveFailures)
	}
	if rel.BreakerTrips != 1 || rel.BreakerRecoveries != 1 {
		t.Fatalf("breaker trips/recoveries = %d/%d, want 1/1", rel.BreakerTrips, rel.BreakerRecoveries)
	}
	if rel.BreakerRejected < 1 {
		t.Fatalf("breaker_rejected = %d, want >= 1", rel.BreakerRejected)
	}
	if rel.BreakerState != "closed" {
		t.Fatalf("breaker_state = %q, want closed", rel.BreakerState)
	}
}

// TestMetricsMoveUnderInjectedFaults asserts the reliability counters are
// live: a bit-rot injection on the snapshot path makes the save's read-back
// verification reject the file (checksum_rejected_loads, save_retries) and
// the retry then succeeds; an injected observe failure moves
// observe_failures without tripping the threshold-3 breaker.
func TestMetricsMoveUnderInjectedFaults(t *testing.T) {
	hooks := fault.NewHooks(3)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	// Byte 200 sits inside the CRC-framed payload of the v5 binary snapshot
	// (the first fault.FixedHeaderSize bytes are the fixed header, whose pad
	// region tolerates flips by design).
	inj := fault.NewInjectFS(nil, fault.Plan{FlipByteAt: 200})
	srv, hs := newTestServer(t, Options{
		SnapshotPath:     path,
		FS:               inj,
		Faults:           hooks,
		SaveRetries:      2,
		SaveRetryBackoff: time.Millisecond,
	})
	_ = srv

	var met metricsSnapshot
	getJSON(t, hs.URL+"/metrics", &met)
	if met.Reliability.SaveRetries != 0 || met.Reliability.ChecksumRejectedLoads != 0 {
		t.Fatalf("counters dirty at start: %+v", met.Reliability)
	}

	// The flipped byte corrupts the first save in flight; read-back catches
	// it and the retry (past the one-shot fault) succeeds.
	resp, err := http.Post(hs.URL+"/v1/snapshot/save", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("save status %d, want 200 after retry", resp.StatusCode)
	}
	if _, _, err := core.LoadFileVersioned(path); err != nil {
		t.Fatalf("published snapshot does not load: %v", err)
	}

	getJSON(t, hs.URL+"/metrics", &met)
	rel := met.Reliability
	if rel.ChecksumRejectedLoads < 1 {
		t.Fatalf("checksum_rejected_loads = %d, want >= 1", rel.ChecksumRejectedLoads)
	}
	if rel.SaveRetries < 1 {
		t.Fatalf("save_retries = %d, want >= 1", rel.SaveRetries)
	}
	if rel.SaveFailures != 0 {
		t.Fatalf("save_failures = %d, want 0 (retry recovered)", rel.SaveFailures)
	}
	if met.Snapshot.Saves != 1 {
		t.Fatalf("snapshot saves = %d, want 1", met.Snapshot.Saves)
	}

	// One injected observe failure: counter moves, breaker stays closed
	// (default threshold 3).
	hooks.FailNext(1, nil)
	fresh := findFreshCell(t, srv)
	if resp, _ := postObserve(t, hs.URL, observeRequest{CheckIns: []observeCheckIn{fresh}}); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected observe status %d, want 500", resp.StatusCode)
	}
	getJSON(t, hs.URL+"/metrics", &met)
	if met.Reliability.ObserveFailures != 1 {
		t.Fatalf("observe_failures = %d, want 1", met.Reliability.ObserveFailures)
	}
	if met.Reliability.BreakerState != "closed" || met.Reliability.BreakerTrips != 0 {
		t.Fatalf("one failure must not trip the breaker: %+v", met.Reliability)
	}
}

// TestShutdownDrainsAndSaves checks the graceful path: Shutdown sheds new
// writes, drains the queue, persists a final snapshot carrying the last
// generation, and leaves reads serving.
func TestShutdownDrainsAndSaves(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	srv, hs := newTestServer(t, Options{SnapshotPath: path})
	fresh := findFreshCell(t, srv)

	if resp, got := postObserve(t, hs.URL, observeRequest{CheckIns: []observeCheckIn{fresh}}); resp.StatusCode != http.StatusOK || got.Generation != 1 {
		t.Fatalf("observe = %d %+v", resp.StatusCode, got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	m, gen, err := core.LoadFileVersioned(path)
	if err != nil {
		t.Fatalf("final snapshot does not load: %v", err)
	}
	if gen != 1 || m == nil {
		t.Fatalf("final snapshot generation %d, want 1", gen)
	}

	// New writes are shed; reads still serve the last snapshot.
	if resp, _ := postObserve(t, hs.URL, observeRequest{CheckIns: []observeCheckIn{fresh}}); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown observe status %d, want 503", resp.StatusCode)
	}
	if status, _ := getRaw(t, hs.URL+"/v1/recommend?user=1&t=0&n=3"); status != http.StatusOK {
		t.Fatalf("post-shutdown read status %d, want 200", status)
	}
	var health healthResponse
	getJSON(t, hs.URL+"/healthz", &health)
	if health.Status != "degraded" || health.Reason != "server draining" {
		t.Fatalf("post-shutdown healthz = %+v", health)
	}

	// Shutdown and Close are idempotent and combinable.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	srv.Close()
}
