package serve

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"testing"

	"tcss/internal/core"
	"tcss/internal/fault"
)

// snapModel builds a small deterministic model whose factor values encode
// tag, so a recovered file can be identified byte-for-byte.
func snapModel(tag float64) *core.Model {
	m := core.NewModel(5, 4, 3, 2)
	fill := func(s []float64, base float64) {
		for i := range s {
			s[i] = base + float64(i)/16
		}
	}
	fill(m.U1.Data, tag)
	fill(m.U2.Data, tag+100)
	fill(m.U3.Data, tag+200)
	fill(m.H, tag+300)
	return m
}

func saveSnap(fs fault.FS, m *core.Model, path string, keep int, gen uint64) error {
	return fault.WriteFileRotate(fs, path, keep, func(w io.Writer) error {
		return m.SaveVersioned(w, gen)
	})
}

// TestCrashKillSweepSnapshotSave is the crash-kill harness for the serving
// snapshot path: with a good generation-1 snapshot on disk, it sweeps an
// injected crash through every byte of the generation-2 save (and through
// every filesystem op), and after each crash demands the fallback loader
// recovers an intact snapshot — either generation, but never a torn hybrid.
func TestCrashKillSweepSnapshotSave(t *testing.T) {
	m1, m2 := snapModel(1000), snapModel(2000)

	// Probe: size of one rotated save.
	probeDir := t.TempDir()
	probe := fault.NewInjectFS(nil, fault.Plan{})
	if err := saveSnap(probe, m2, filepath.Join(probeDir, "snap.json"), 1, 2); err != nil {
		t.Fatal(err)
	}
	totalBytes := probe.BytesWritten()
	if totalBytes == 0 {
		t.Fatal("probe save wrote nothing")
	}

	points := 0
	runPoint := func(name string, plan fault.Plan) {
		points++
		dir := t.TempDir()
		path := filepath.Join(dir, "snap.json")
		if err := saveSnap(nil, m1, path, 1, 1); err != nil {
			t.Fatal(err)
		}
		inj := fault.NewInjectFS(nil, plan)
		err := saveSnap(inj, m2, path, 1, 2)
		if err == nil {
			// Only a best-effort-op crash (directory sync) lets the save
			// complete; the published file must then be generation 2.
			if !inj.Crashed() {
				t.Fatalf("%s: crash point did not fire", name)
			}
		} else if !errors.Is(err, fault.ErrCrashed) {
			t.Fatalf("%s: save failed with %v, want an injected crash", name, err)
		}
		got, gen, from, lerr := core.LoadFileVersionedFallback(path, 2)
		if lerr != nil {
			t.Fatalf("%s: no intact snapshot on the ladder: %v", name, lerr)
		}
		var want *core.Model
		switch gen {
		case 1:
			want = m1
		case 2:
			want = m2
		default:
			t.Fatalf("%s: recovered impossible generation %d from %s", name, gen, from)
		}
		for i := range want.U1.Data {
			if got.U1.Data[i] != want.U1.Data[i] {
				t.Fatalf("%s: recovered gen %d with torn factors at U1[%d]", name, gen, i)
			}
		}
	}

	// Byte sweep: every single byte of the snapshot write is a crash point.
	for b := int64(1); b <= totalBytes; b++ {
		runPoint(fmt.Sprintf("byte-%d", b), fault.Plan{CrashAtByte: b})
	}
	for _, op := range []fault.Op{fault.OpCreate, fault.OpSync, fault.OpClose, fault.OpRename, fault.OpSyncDir} {
		n := probe.OpCount(op)
		if n == 0 {
			t.Fatalf("probe save performed no %s ops", op)
		}
		for i := 0; i < n; i++ {
			runPoint(fmt.Sprintf("op-%s-%d", op, i), fault.Plan{CrashOp: op, CrashOpIndex: i})
		}
	}

	if points < 100 {
		t.Fatalf("sweep covered %d crash points, want >= 100", points)
	}
	t.Logf("snapshot crash sweep: %d points over %d bytes", points, totalBytes)
}
