package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tcss"
	"tcss/internal/core"
	"tcss/internal/geo"
	"tcss/internal/lbsn"
	"tcss/internal/registry"
)

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/recommend", s.serveRecommend)
	mux.HandleFunc("POST /v1/next", s.serveNext)
	mux.HandleFunc("GET /v1/explain", s.serveExplain)
	mux.HandleFunc("POST /v1/observe", s.serveObserve)
	mux.HandleFunc("POST /v1/snapshot/save", s.serveSnapshotSave)
	mux.HandleFunc("GET /v1/snapshot/bin", s.serveSnapshotBin)
	mux.HandleFunc("GET /healthz", s.serveHealthz)
	mux.HandleFunc("GET /metrics", s.serveMetrics)
	return mux
}

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) badRequest(w http.ResponseWriter, format string, args ...any) {
	s.met.badRequest.Add(1)
	writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf(format, args...)})
}

// shed rejects with 503 + Retry-After, the bounded queue's overflow response.
func (s *Server) shed(w http.ResponseWriter, what string) {
	s.met.shed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.opts.RetryAfter.Seconds()))))
	writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: what + " at capacity, retry later"})
}

func (s *Server) deadline(w http.ResponseWriter) {
	s.met.deadlineMissed.Add(1)
	writeJSON(w, http.StatusGatewayTimeout, errorBody{Error: "request deadline exceeded"})
}

// misroute rejects with 421 Misdirected Request: the request reached a node
// that must not answer it — a user outside this shard's partition, or a write
// at a read-only replica. 421 rather than 404/503 because the request itself
// is fine; only the routing is wrong, and the gateway should know loudly.
func (s *Server) misroute(w http.ResponseWriter, format string, args ...any) {
	s.met.misrouted.Add(1)
	writeJSON(w, http.StatusMisdirectedRequest, errorBody{Error: fmt.Sprintf(format, args...)})
}

// owns reports whether this node's partition covers user. Standalone servers
// (no Owns predicate) own everyone.
func (s *Server) owns(user int) bool {
	return s.opts.Owns == nil || s.opts.Owns(user)
}

// degraded rejects a write with 503 while the circuit breaker is open,
// advertising the breaker's own probe deadline as Retry-After.
func (s *Server) degraded(w http.ResponseWriter, err error) {
	s.met.shed.Add(1)
	_, _, retryIn := s.brk.status()
	secs := int(math.Ceil(retryIn.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
}

// routeError maps registry routing/scoring sentinels to HTTP statuses: an
// unknown ?model= name (or a /v1/next with nothing to route to) is 404, a
// model that cannot score sequences is 400, and a registered-but-unfitted
// model is 503 — the model exists, it just cannot answer yet.
func (s *Server) routeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, registry.ErrUnknownModel), errors.Is(err, registry.ErrNoNextModel):
		s.met.modelNotFound.Add(1)
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
	case errors.Is(err, registry.ErrNotNextCapable):
		s.met.badRequest.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	case errors.Is(err, registry.ErrNotReady):
		s.met.modelNotReady.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.opts.RetryAfter.Seconds()))))
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
	default:
		s.met.internalErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
	}
}

// spawnShadow schedules an off-path scoring of the shadow model named in the
// decision and records its top-K overlap against the primary's results. It
// runs after the primary response bytes are already on the wire (or at least
// fully computed), never writes to the ResponseWriter, and copies what it
// needs from the request — by construction it cannot alter the primary
// response. Slots are bounded; overflow is dropped and counted.
func (s *Server) spawnShadow(dec registry.Decision, next bool, user int, seq []registry.Event, t, n int, primary []core.Recommendation) {
	sc, ok := s.reg.Get(dec.Shadow)
	if !ok {
		return
	}
	pois := make([]int, len(primary))
	for i, rec := range primary {
		pois[i] = rec.POI
	}
	name := dec.Shadow
	s.reg.ShadowGo(func() {
		var recs []core.Recommendation
		var err error
		if next {
			ns, isNext := sc.(registry.NextScorer)
			if !isNext {
				s.reg.RecordShadowError(name)
				return
			}
			recs, _, err = ns.Next(user, seq, t, n)
		} else {
			recs, _, err = sc.Recommend(user, t, n)
		}
		if err != nil {
			s.reg.RecordShadowError(name)
			return
		}
		shadowPOIs := make([]int, len(recs))
		for i, rec := range recs {
			shadowPOIs[i] = rec.POI
		}
		frac, exact := registry.Overlap(pois, shadowPOIs)
		s.reg.RecordShadow(name, frac, exact)
	})
}

// intParam parses a required (or defaulted) integer query parameter.
func intParam(r *http.Request, name string, def int, required bool) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		if required {
			return 0, fmt.Errorf("missing required parameter %q", name)
		}
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	return v, nil
}

// requestTimeout resolves the per-request deadline: the configured
// RequestTimeout, clamped down to the gateway's X-Deadline-Budget header when
// one arrives — once the gateway's budget for this hop is spent nobody is
// waiting for the answer, so working longer only burns scoring slots.
func (s *Server) requestTimeout(r *http.Request) time.Duration {
	timeout := s.opts.RequestTimeout
	if raw := r.Header.Get("X-Deadline-Budget"); raw != "" {
		if ms, err := strconv.ParseInt(raw, 10, 64); err == nil && ms > 0 {
			if budget := time.Duration(ms) * time.Millisecond; budget < timeout {
				s.met.budgetClamped.Add(1)
				return budget
			}
		}
	}
	return timeout
}

// admitRead runs the shared read-path front door: per-request deadline,
// bounded admission, and the test hold hook. On nil cleanup the response has
// already been written.
func (s *Server) admitRead(w http.ResponseWriter, r *http.Request) (context.Context, func()) {
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(r))
	switch s.adm.acquire(ctx) {
	case shedOverflow:
		cancel()
		s.shed(w, "read queue")
		return nil, nil
	case shedDeadline:
		cancel()
		s.deadline(w)
		return nil, nil
	}
	if s.opts.holdForTest != nil {
		s.opts.holdForTest()
	}
	if ctx.Err() != nil {
		s.adm.release()
		cancel()
		s.deadline(w)
		return nil, nil
	}
	return ctx, func() { s.adm.release(); cancel() }
}

// recommendResponse is the body of GET /v1/recommend. It carries no volatile
// fields, so cached bytes are byte-identical to freshly computed ones for the
// same (generation, query).
type recommendResponse struct {
	User       int              `json:"user"`
	T          int              `json:"t"`
	Generation uint64           `json:"generation"`
	Results    []recommendation `json:"results"`
}

type recommendation struct {
	POI   int     `json:"poi"`
	Score float64 `json:"score"`
}

func (s *Server) serveRecommend(w http.ResponseWriter, r *http.Request) {
	started := s.opts.now()
	s.met.recommendTotal.Add(1)

	snap := s.snap.load()
	user, err := intParam(r, "user", 0, true)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	t, err := intParam(r, "t", 0, true)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	n, err := intParam(r, "n", s.opts.TopNDefault, false)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	if user < 0 || user >= snap.Model.I {
		s.badRequest(w, "user %d out of range [0, %d)", user, snap.Model.I)
		return
	}
	if !s.owns(user) {
		s.misroute(w, "user %d is not in shard %q's partition", user, s.opts.ShardName)
		return
	}
	if t < 0 || t >= snap.Model.K {
		s.badRequest(w, "t %d out of range [0, %d)", t, snap.Model.K)
		return
	}
	if n <= 0 {
		s.badRequest(w, "n must be positive, got %d", n)
		return
	}
	if n > s.opts.MaxTopN {
		n = s.opts.MaxTopN
	}

	// Routing: explicit ?model= override, else the registry's policy
	// (primary, or the deterministic A/B split when configured).
	dec, err := s.reg.Route(user, r.URL.Query().Get("model"))
	if err != nil {
		s.routeError(w, err)
		return
	}
	scorer, _ := s.reg.Get(dec.Model)

	key := cacheKey{model: dec.Model, gen: scorer.Generation(), user: user, t: t, n: n}
	if body := s.cache.get(key); body != nil {
		s.met.cacheHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "HIT")
		w.Header().Set("X-Model", dec.Model)
		w.Header().Set("X-Generation", strconv.FormatUint(key.gen, 10))
		w.Write(body)
		dur := s.opts.now().Sub(started)
		s.met.recommendLat.observe(dur)
		s.reg.RecordServe(dec.Model, false, true, dur)
		return
	}
	s.met.cacheMisses.Add(1)

	_, release := s.admitRead(w, r)
	if release == nil {
		return
	}
	recs, gen, err := scorer.Recommend(user, t, n)
	release()
	if err != nil {
		if errors.Is(err, registry.ErrNotReady) {
			s.reg.RecordNotReady(dec.Model)
		}
		s.routeError(w, err)
		return
	}

	resp := recommendResponse{
		User: user, T: t, Generation: gen,
		Results: make([]recommendation, len(recs)),
	}
	for i, rec := range recs {
		resp.Results[i] = recommendation{POI: rec.POI, Score: rec.Score}
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		s.met.internalErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	body = append(body, '\n')
	s.cache.put(cacheKey{model: dec.Model, gen: gen, user: user, t: t, n: n}, body)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "MISS")
	w.Header().Set("X-Model", dec.Model)
	w.Header().Set("X-Generation", strconv.FormatUint(gen, 10))
	w.Write(body)
	dur := s.opts.now().Sub(started)
	s.met.recommendLat.observe(dur)
	s.reg.RecordServe(dec.Model, false, false, dur)

	// Shadow scoring runs strictly after the primary bytes are written and
	// over copies of the inputs; it can only touch registry counters.
	if dec.Shadow != "" {
		s.spawnShadow(dec, false, user, nil, t, n, recs)
	}
}

// maxNextSeq bounds the check-in sequence length of one /v1/next request:
// long enough for any realistic recent history, short enough that a single
// request cannot monopolize a scoring slot rolling an unbounded recurrence.
const maxNextSeq = 512

// nextRequest is the body of POST /v1/next: the user's recent check-ins in
// ascending time order.
type nextRequest struct {
	CheckIns []nextCheckIn `json:"checkins"`
}

type nextCheckIn struct {
	POI int `json:"poi"`
	T   int `json:"t"`
}

// nextResponse is the body of POST /v1/next. Like recommendResponse it
// carries no volatile fields, so cached bytes are byte-identical to freshly
// computed ones. Model is part of the body here (unlike /v1/recommend, which
// reports it in the X-Model header only, keeping its pre-registry bytes).
type nextResponse struct {
	User       int              `json:"user"`
	T          int              `json:"t"`
	Model      string           `json:"model"`
	Generation uint64           `json:"generation"`
	Results    []recommendation `json:"results"`
}

// seqCacheString canonicalizes a check-in sequence for the cache key.
func seqCacheString(checkIns []nextCheckIn) string {
	var b strings.Builder
	for _, c := range checkIns {
		b.WriteString(strconv.Itoa(c.POI))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(c.T))
		b.WriteByte(';')
	}
	return b.String()
}

// serveNext scores the next POI after a posted check-in sequence with the
// routed sequential model. Admission, deadline, caching, and metrics match
// /v1/recommend; the target time t defaults to the last check-in's time unit.
func (s *Server) serveNext(w http.ResponseWriter, r *http.Request) {
	started := s.opts.now()
	s.met.nextTotal.Add(1)

	snap := s.snap.load()
	user, err := intParam(r, "user", 0, true)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	t, err := intParam(r, "t", -1, false)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	n, err := intParam(r, "n", s.opts.TopNDefault, false)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	var req nextRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.badRequest(w, "decoding body: %v", err)
		return
	}
	if len(req.CheckIns) == 0 {
		s.badRequest(w, "no checkins in request")
		return
	}
	if len(req.CheckIns) > maxNextSeq {
		s.badRequest(w, "%d checkins exceed the limit of %d", len(req.CheckIns), maxNextSeq)
		return
	}
	if user < 0 || user >= snap.Model.I {
		s.badRequest(w, "user %d out of range [0, %d)", user, snap.Model.I)
		return
	}
	if !s.owns(user) {
		s.misroute(w, "user %d is not in shard %q's partition", user, s.opts.ShardName)
		return
	}
	for i, c := range req.CheckIns {
		if c.POI < 0 || c.POI >= snap.Model.J {
			s.badRequest(w, "checkin %d: poi %d out of range [0, %d)", i, c.POI, snap.Model.J)
			return
		}
		if c.T < 0 || c.T >= snap.Model.K {
			s.badRequest(w, "checkin %d: t %d out of range [0, %d)", i, c.T, snap.Model.K)
			return
		}
	}
	if r.URL.Query().Get("t") == "" {
		t = req.CheckIns[len(req.CheckIns)-1].T
	}
	if t < 0 || t >= snap.Model.K {
		s.badRequest(w, "t %d out of range [0, %d)", t, snap.Model.K)
		return
	}
	if n <= 0 {
		s.badRequest(w, "n must be positive, got %d", n)
		return
	}
	if n > s.opts.MaxTopN {
		n = s.opts.MaxTopN
	}

	dec, err := s.reg.RouteNext(user, r.URL.Query().Get("model"))
	if err != nil {
		s.routeError(w, err)
		return
	}
	scorer, _ := s.reg.Get(dec.Model)
	next, ok := scorer.(registry.NextScorer)
	if !ok { // unreachable: RouteNext only routes to NextScorers
		s.routeError(w, fmt.Errorf("%w: %q", registry.ErrNotNextCapable, dec.Model))
		return
	}

	seqStr := seqCacheString(req.CheckIns)
	key := cacheKey{model: dec.Model, gen: scorer.Generation(), user: user, t: t, n: n, seq: seqStr}
	if body := s.cache.get(key); body != nil {
		s.met.cacheHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "HIT")
		w.Header().Set("X-Model", dec.Model)
		w.Header().Set("X-Generation", strconv.FormatUint(key.gen, 10))
		w.Write(body)
		dur := s.opts.now().Sub(started)
		s.met.nextLat.observe(dur)
		s.reg.RecordServe(dec.Model, true, true, dur)
		return
	}
	s.met.cacheMisses.Add(1)

	seq := make([]registry.Event, len(req.CheckIns))
	for i, c := range req.CheckIns {
		seq[i] = registry.Event{POI: c.POI, T: c.T}
	}

	_, release := s.admitRead(w, r)
	if release == nil {
		return
	}
	recs, gen, err := next.Next(user, seq, t, n)
	release()
	if err != nil {
		if errors.Is(err, registry.ErrNotReady) {
			s.reg.RecordNotReady(dec.Model)
		}
		s.routeError(w, err)
		return
	}

	resp := nextResponse{
		User: user, T: t, Model: dec.Model, Generation: gen,
		Results: make([]recommendation, len(recs)),
	}
	for i, rec := range recs {
		resp.Results[i] = recommendation{POI: rec.POI, Score: rec.Score}
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		s.met.internalErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	body = append(body, '\n')
	s.cache.put(cacheKey{model: dec.Model, gen: gen, user: user, t: t, n: n, seq: seqStr}, body)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "MISS")
	w.Header().Set("X-Model", dec.Model)
	w.Header().Set("X-Generation", strconv.FormatUint(gen, 10))
	w.Write(body)
	dur := s.opts.now().Sub(started)
	s.met.nextLat.observe(dur)
	s.reg.RecordServe(dec.Model, true, false, dur)

	if dec.Shadow != "" {
		s.spawnShadow(dec, true, user, seq, t, n, recs)
	}
}

// explainResponse mirrors core.Explanation with JSON-safe distances: +Inf
// (no friend/own POIs) marshals as null, which encoding/json cannot express
// for a plain float64.
type explainResponse struct {
	User       int    `json:"user"`
	POI        int    `json:"poi"`
	T          int    `json:"t"`
	Generation uint64 `json:"generation"`

	Score            float64 `json:"score"`
	VisitProbability float64 `json:"visit_probability"`
	PeakT            int     `json:"peak_t"`
	PeakScore        float64 `json:"peak_score"`

	FriendVisited    bool     `json:"friend_visited"`
	NearestFriendPOI int      `json:"nearest_friend_poi"`
	NearestFriendKm  *float64 `json:"nearest_friend_km"`
	OwnVisited       bool     `json:"own_visited"`
	NearestOwnPOI    int      `json:"nearest_own_poi"`
	NearestOwnKm     *float64 `json:"nearest_own_km"`
	LocationEntropyW float64  `json:"location_entropy_weight"`
}

func finiteOrNil(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

func (s *Server) serveExplain(w http.ResponseWriter, r *http.Request) {
	started := s.opts.now()
	s.met.explainTotal.Add(1)

	snap := s.snap.load()
	user, err := intParam(r, "user", 0, true)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	poi, err := intParam(r, "poi", 0, true)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	t, err := intParam(r, "t", 0, true)
	if err != nil {
		s.badRequest(w, "%v", err)
		return
	}
	if user < 0 || user >= snap.Model.I {
		s.badRequest(w, "user %d out of range [0, %d)", user, snap.Model.I)
		return
	}
	if !s.owns(user) {
		s.misroute(w, "user %d is not in shard %q's partition", user, s.opts.ShardName)
		return
	}
	if poi < 0 || poi >= snap.Model.J {
		s.badRequest(w, "poi %d out of range [0, %d)", poi, snap.Model.J)
		return
	}
	if t < 0 || t >= snap.Model.K {
		s.badRequest(w, "t %d out of range [0, %d)", t, snap.Model.K)
		return
	}

	_, release := s.admitRead(w, r)
	if release == nil {
		return
	}
	ex := snap.Model.Explain(snap.Side, user, poi, t)
	release()

	w.Header().Set("X-Generation", strconv.FormatUint(snap.Gen, 10))
	writeJSON(w, http.StatusOK, explainResponse{
		User: user, POI: poi, T: t, Generation: snap.Gen,
		Score:            ex.Score,
		VisitProbability: ex.VisitProbability,
		PeakT:            ex.PeakTimeUnit,
		PeakScore:        ex.PeakScore,
		FriendVisited:    ex.FriendVisited,
		NearestFriendPOI: ex.NearestFriendPOI,
		NearestFriendKm:  finiteOrNil(ex.NearestFriendDist),
		OwnVisited:       ex.OwnVisited,
		NearestOwnPOI:    ex.NearestOwnPOI,
		NearestOwnKm:     finiteOrNil(ex.NearestOwnDistance),
		LocationEntropyW: ex.LocationEntropyW,
	})
	s.met.explainLat.observe(s.opts.now().Sub(started))
}

// observeRequest is the body of POST /v1/observe. new_users and new_pois
// carry open-world arrivals (mirroring the drift stream's JSONL shape); they
// are only accepted when the server runs with Options.Grow.
type observeRequest struct {
	CheckIns []observeCheckIn `json:"checkins"`
	NewUsers []observeNewUser `json:"new_users,omitempty"`
	NewPOIs  []observePOI     `json:"new_pois,omitempty"`
}

type observeCheckIn struct {
	User  int `json:"user"`
	POI   int `json:"poi"`
	Month int `json:"month"`
	Week  int `json:"week"`
	Hour  int `json:"hour"`
}

type observeNewUser struct {
	ID      int   `json:"id"`
	Friends []int `json:"friends,omitempty"`
}

type observePOI struct {
	ID       int     `json:"id"`
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	Category int     `json:"category"`
}

type observeResponse struct {
	Added      int    `json:"added"`
	Generation uint64 `json:"generation"`
	// Users and POIs report the model dimensions after the batch applied.
	Users int `json:"users"`
	POIs  int `json:"pois"`
}

// conflict rejects a growth-requiring request with 409: the ids are beyond
// the model's dimensions and this node will not grow (Options.Grow off, or
// the batch lost a validation race). Distinct from 400 — the request may be
// perfectly valid at a growth-enabled primary.
func (s *Server) conflict(w http.ResponseWriter, format string, args ...any) {
	s.met.observeRejectedRange.Add(1)
	writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) serveObserve(w http.ResponseWriter, r *http.Request) {
	started := s.opts.now()
	s.met.observeTotal.Add(1)

	if s.closing.Load() {
		s.shed(w, "server draining, observe")
		return
	}
	if s.src.ReadOnly() {
		s.misroute(w, "%v", ErrReadOnly)
		return
	}
	var req observeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.badRequest(w, "decoding body: %v", err)
		return
	}
	if len(req.CheckIns) == 0 && len(req.NewUsers) == 0 && len(req.NewPOIs) == 0 {
		s.badRequest(w, "no checkins in request")
		return
	}
	snap := s.snap.load()
	grow := s.opts.Grow
	if !grow && (len(req.NewUsers) > 0 || len(req.NewPOIs) > 0) {
		s.conflict(w, "open-world arrivals rejected: growth is disabled on this node")
		return
	}
	// needI tracks the user dimension the batch implies, so friend references
	// can chain through same-batch arrivals.
	needI := snap.Model.I
	batch := tcss.ObserveBatch{NewUsers: make([]lbsn.NewUser, len(req.NewUsers)), NewPOIs: make([]lbsn.POI, len(req.NewPOIs))}
	for i, u := range req.NewUsers {
		if u.ID < 0 {
			s.badRequest(w, "new_user %d: negative id %d", i, u.ID)
			return
		}
		if !s.owns(u.ID) {
			s.misroute(w, "new_user %d: user %d is not in shard %q's partition", i, u.ID, s.opts.ShardName)
			return
		}
		if u.ID >= needI {
			needI = u.ID + 1
		}
		batch.NewUsers[i] = lbsn.NewUser{ID: u.ID, Friends: u.Friends}
	}
	for i, u := range req.NewUsers {
		for _, f := range u.Friends {
			if f < 0 || f >= needI {
				s.badRequest(w, "new_user %d: friend %d out of range [0, %d)", i, f, needI)
				return
			}
		}
	}
	for i, p := range req.NewPOIs {
		if p.ID < 0 {
			s.badRequest(w, "new_poi %d: negative id %d", i, p.ID)
			return
		}
		batch.NewPOIs[i] = lbsn.POI{
			ID: p.ID, Loc: geo.Point{Lat: p.Lat, Lon: p.Lon},
			Category: lbsn.Category(p.Category),
		}
	}
	batch.CheckIns = make([]lbsn.CheckIn, len(req.CheckIns))
	for i, c := range req.CheckIns {
		ci := lbsn.CheckIn{User: c.User, POI: c.POI, Month: c.Month, Week: c.Week, Hour: c.Hour}
		if c.User < 0 {
			s.badRequest(w, "checkin %d: negative user %d", i, c.User)
			return
		}
		if c.User >= snap.Model.I && !grow {
			s.conflict(w, "checkin %d: user %d beyond model dimension %d and growth is disabled", i, c.User, snap.Model.I)
			return
		}
		if !s.owns(c.User) {
			s.misroute(w, "checkin %d: user %d is not in shard %q's partition", i, c.User, s.opts.ShardName)
			return
		}
		if c.POI < 0 {
			s.badRequest(w, "checkin %d: negative poi %d", i, c.POI)
			return
		}
		if c.POI >= snap.Model.J && !grow {
			s.conflict(w, "checkin %d: poi %d beyond model dimension %d and growth is disabled", i, c.POI, snap.Model.J)
			return
		}
		if k := s.gran.Index(ci); k < 0 || k >= snap.Model.K {
			s.badRequest(w, "checkin %d: time unit %d out of range [0, %d)", i, k, snap.Model.K)
			return
		}
		batch.CheckIns[i] = ci
	}

	cmd := writerCmd{batch: &batch, reply: make(chan writerResult, 1)}
	select {
	case s.cmds <- cmd:
	default:
		s.shed(w, "observe queue")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(r))
	defer cancel()
	select {
	case res := <-cmd.reply:
		if res.err != nil {
			switch {
			case errors.Is(res.err, ErrDegraded):
				s.degraded(w, res.err)
			case errors.Is(res.err, core.ErrOutOfRange):
				// Counted by the writer; the ids need growth this node (or
				// config) refused.
				writeJSON(w, http.StatusConflict, errorBody{Error: res.err.Error()})
			case errors.Is(res.err, core.ErrCompactModel):
				// Growth needs float64 factors; this node serves a compact
				// model. 503 — the cluster may still have a f64 primary.
				writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: res.err.Error()})
			default:
				s.met.internalErrors.Add(1)
				writeJSON(w, http.StatusInternalServerError, errorBody{Error: res.err.Error()})
			}
			return
		}
		snap := s.snap.load()
		writeJSON(w, http.StatusOK, observeResponse{
			Added: res.added, Generation: res.gen,
			Users: snap.Model.I, POIs: snap.Model.J,
		})
		s.met.observeLat.observe(s.opts.now().Sub(started))
	case <-ctx.Done():
		// The batch stays queued and will still be applied; the client just
		// stopped waiting for confirmation.
		s.deadline(w)
	}
}

type saveResponse struct {
	Path       string `json:"path"`
	Generation uint64 `json:"generation"`
}

func (s *Server) serveSnapshotSave(w http.ResponseWriter, r *http.Request) {
	if s.opts.SnapshotPath == "" {
		s.badRequest(w, "snapshot saving is not configured (no snapshot path)")
		return
	}
	if s.closing.Load() {
		s.shed(w, "server draining, snapshot save")
		return
	}
	cmd := writerCmd{save: true, reply: make(chan writerResult, 1)}
	select {
	case s.cmds <- cmd:
	default:
		s.shed(w, "observe queue")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	select {
	case res := <-cmd.reply:
		if res.err != nil {
			s.met.internalErrors.Add(1)
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: res.err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, saveResponse{Path: s.opts.SnapshotPath, Generation: res.gen})
	case <-ctx.Done():
		s.deadline(w)
	}
}

type healthResponse struct {
	Status     string  `json:"status"`
	Generation uint64  `json:"generation"`
	AgeSeconds float64 `json:"snapshot_age_seconds"`
	// Shard and Role identify this node inside a cluster; empty standalone.
	Shard string `json:"shard,omitempty"`
	Role  string `json:"role,omitempty"`
	// GenLag is how many generations this node trails its primary's newest
	// advertised generation (replicas only; omitted when current).
	GenLag uint64 `json:"generation_lag,omitempty"`
	// Reason and Breaker appear when Status is "degraded": why the write
	// path is down, and the breaker state ("open" or "half_open").
	Reason  string `json:"reason,omitempty"`
	Breaker string `json:"breaker,omitempty"`
}

// serveHealthz reports three states: "ok" (200), "degraded" (200 — reads
// still serve the last good snapshot; the body says why: breaker-rejected
// writes, draining, or a replica past its staleness bound), and "no
// snapshot" (503 — nothing to serve).
func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.load()
	if snap == nil || snap.Model == nil {
		writeJSON(w, http.StatusServiceUnavailable, healthResponse{Status: "no snapshot"})
		return
	}
	resp := healthResponse{
		Status:     "ok",
		Generation: snap.Gen,
		AgeSeconds: s.opts.now().Sub(snap.Created).Seconds(),
		Shard:      s.opts.ShardName,
		Role:       s.opts.Role,
		GenLag:     s.genLag(snap.Gen),
	}
	if state, reason, _ := s.brk.status(); state != "closed" {
		resp.Status = "degraded"
		resp.Reason = reason
		resp.Breaker = state
	} else if s.closing.Load() {
		resp.Status = "degraded"
		resp.Reason = "server draining"
	} else if s.opts.MaxGenLag > 0 && resp.GenLag > s.opts.MaxGenLag {
		// Past the staleness bound: still serving the last good snapshot,
		// but loudly — the gateway deprioritizes degraded replicas and the
		// chaos invariants treat answers beyond the bound as violations.
		resp.Status = "degraded"
		resp.Reason = fmt.Sprintf("staleness: %d generations behind primary (bound %d)",
			resp.GenLag, s.opts.MaxGenLag)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.collectMetrics(r.URL.Query().Get("window") == "1")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&m)
}
