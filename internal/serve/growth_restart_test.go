package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"tcss"
	"tcss/internal/core"
)

// TestSnapshotSaveAndRestartGrown kills and restarts a growth-enabled node:
// a server grows past its trained dimensions through /v1/observe, persists,
// and a fresh process loads the snapshot, reattaches it to the regenerated
// base dataset (AttachModel grows the dataset to match) and resumes — with
// the grown dimensions, the continued generation counter, factors
// bit-identical to the running server's, and bit-identical responses for
// users whose skip set the observe batch did not touch.
func TestSnapshotSaveAndRestartGrown(t *testing.T) {
	path := t.TempDir() + "/snap.json"
	srv, hs := newTestServer(t, Options{Grow: true, SnapshotPath: path})

	first := srv.snap.load()
	baseI, baseJ := first.Model.I, first.Model.J
	newUser, newPOI := baseI, baseJ

	fresh := findFreshCell(t, srv)
	req := observeRequest{
		NewUsers: []observeNewUser{{ID: newUser, Friends: []int{fresh.User}}},
		NewPOIs:  []observePOI{{ID: newPOI, Lat: 38.83, Lon: -77.31, Category: 2}},
		CheckIns: []observeCheckIn{
			{User: newUser, POI: newPOI, Month: 3, Week: 13, Hour: 9},
			fresh,
		},
	}
	if resp, got := postObserve(t, hs.URL, req); resp.StatusCode != http.StatusOK ||
		got.Generation != 1 || got.Users != baseI+1 || got.POIs != baseJ+1 {
		t.Fatalf("growth observe failed: %d %+v", resp.StatusCode, got)
	}

	var saved saveResponse
	resp, err := http.Post(hs.URL+"/v1/snapshot/save", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&saved); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || saved.Generation != 1 {
		t.Fatalf("save = %d %+v", resp.StatusCode, saved)
	}

	m, gen, err := core.LoadFileVersioned(path)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 || m.I != baseI+1 || m.J != baseJ+1 {
		t.Fatalf("persisted gen %d dims %dx%d, want gen 1 dims %dx%d",
			gen, m.I, m.J, baseI+1, baseJ+1)
	}

	// The persisted factors — grown rows included — must be the running
	// server's bits exactly.
	cur := srv.snap.load().Model
	for n := range cur.U1.Data {
		if m.U1.Data[n] != cur.U1.Data[n] {
			t.Fatalf("u1[%d] differs from the running server", n)
		}
	}
	for n := range cur.U2.Data {
		if m.U2.Data[n] != cur.U2.Data[n] {
			t.Fatalf("u2[%d] differs from the running server", n)
		}
	}

	// Restart against the regenerated base dataset: AttachModel accepts the
	// larger model and grows the dataset with placeholder entities.
	rec2, err := tcss.AttachModel(m, makeDataset(t, 21), tcss.Month, testTrainConfig(21), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	restarted, err := New(rec2, Options{FirstGeneration: gen, Grow: true, Online: quickOnline()})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	hs2 := httptest.NewServer(restarted.Handler())
	defer hs2.Close()

	var health healthResponse
	getJSON(t, hs2.URL+"/healthz", &health)
	if health.Generation != 1 {
		t.Fatalf("restarted generation %d, want 1", health.Generation)
	}

	// An established user the observe batch never touched gets bit-identical
	// recommendations from both processes. (fresh.User's own skip set grew,
	// and the arrival's check-in is not in the regenerated dataset, so those
	// two legitimately differ.)
	otherUser := (fresh.User + 1) % baseI
	q := fmt.Sprintf("/v1/recommend?user=%d&t=2&n=8", otherUser)
	var a, b recommendResponse
	getJSON(t, hs.URL+q, &a)
	getJSON(t, hs2.URL+q, &b)
	if len(a.Results) == 0 || len(a.Results) != len(b.Results) {
		t.Fatalf("restart changed result count %d -> %d", len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("rank %d: %+v before restart, %+v after", i, a.Results[i], b.Results[i])
		}
	}

	// The grown user is servable after restart, and growth can continue from
	// the resumed dimensions without a gap.
	var grownResp recommendResponse
	if resp := getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&t=2&n=8", hs2.URL, newUser), &grownResp); resp.StatusCode != http.StatusOK {
		t.Fatalf("grown user after restart: status %d", resp.StatusCode)
	}
	if len(grownResp.Results) == 0 {
		t.Fatal("grown user got no recommendations after restart")
	}
	next := observeRequest{
		NewUsers: []observeNewUser{{ID: newUser + 1, Friends: []int{newUser}}},
		CheckIns: []observeCheckIn{{User: newUser + 1, POI: newPOI, Month: 4, Week: 14, Hour: 11}},
	}
	if resp, got := postObserve(t, hs2.URL, next); resp.StatusCode != http.StatusOK ||
		got.Generation != 2 || got.Users != baseI+2 {
		t.Fatalf("post-restart growth observe failed: %d %+v", resp.StatusCode, got)
	}
}
