// Package serve is the online recommendation server: it puts a trained
// tcss.Recommender behind an HTTP API (stdlib net/http only) built for heavy
// read traffic with incremental freshness.
//
// Consistency model. The serving state is an immutable Snapshot (model
// factors + side information + generation counter) held behind an atomic
// pointer. Reads (recommend, explain) load the pointer once and score against
// that snapshot for the whole request — lock-free, wait-free, and immune to
// concurrent updates. All writes (observe batches, snapshot saves) funnel
// through a single-writer update goroutine that applies
// Recommender.Observe — itself transactional, producing fresh model/side
// objects instead of mutating published ones — and atomically swaps in the
// next-generation snapshot. Readers therefore never block on writers and
// never see a half-updated model; every response is internally consistent
// with exactly one generation, which the response reports.
//
// Load management. The read path runs behind a bounded admission queue
// (MaxInflight scoring slots, MaxQueue waiters, 503 + Retry-After beyond
// that), per-request deadlines (504 on expiry), a generation-keyed LRU
// response cache that snapshot swaps invalidate wholesale, and pooled scoring
// scratch (core.RecScratch) so steady-state requests allocate only their
// response. Observability comes from /metrics (request counts, latency
// percentiles over a ring-buffer window, cache hit rate, snapshot
// generation/age, queue depths) and /healthz.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tcss"
	"tcss/internal/core"
	"tcss/internal/fault"
	"tcss/internal/registry"
)

// Options configures a Server. The zero value is usable: every field falls
// back to the DefaultOptions value.
type Options struct {
	// TopNDefault is the result count when ?n= is omitted; MaxTopN caps it.
	TopNDefault int
	MaxTopN     int

	// RequestTimeout is the per-request deadline applied on top of whatever
	// deadline the client's context already carries.
	RequestTimeout time.Duration

	// MaxInflight bounds concurrently scoring read requests; MaxQueue bounds
	// how many more may wait for a slot. Beyond that, requests are shed with
	// 503 and a Retry-After of RetryAfter.
	MaxInflight int
	MaxQueue    int
	RetryAfter  time.Duration

	// CacheSize is the LRU capacity in responses; < 0 disables the cache.
	CacheSize int

	// Coalesce batches concurrent recommend requests through one pass over
	// the POI factor slab (core.TopNBatch): a request joins the pending batch,
	// which executes when it reaches CoalesceBatch requests or CoalesceWindow
	// after its first member arrived, whichever comes first. Per request the
	// results are bit-identical to the per-request path against the snapshot
	// the batch executed on (whose generation the response reports). Worth it
	// under concurrent load; off by default because a lone request pays the
	// window as added latency.
	Coalesce       bool
	CoalesceWindow time.Duration // max wait for co-travellers; default 200µs
	CoalesceBatch  int           // flush threshold; default 32

	// ObserveQueue bounds buffered writer commands (observe/save batches);
	// a full queue sheds observes with 503.
	ObserveQueue int

	// Online configures the incremental model update per observe batch.
	Online tcss.OnlineConfig

	// Grow lets /v1/observe reference users and POIs beyond the current
	// model dimensions: the batch may carry new_users/new_pois arrival
	// metadata and the model grows (warm-started rows, extended side
	// information) inside the single-writer path, publishing the grown
	// snapshot as the next generation. When false (the default), out-of-range
	// ids are rejected with 409 Conflict before reaching the writer. Growth
	// requires float64 factor storage; on a compact model the writer rejects
	// the batch with 503 and counts it in observe_pipeline.rejected_compact.
	Grow bool

	// Registry, when non-nil, is the multi-model registry the read path
	// routes through: extra models (sequential scorers) registered on it are
	// servable via ?model= overrides, A/B splits, and shadow scoring, and
	// /v1/next routes to its next-capable models. The server registers its
	// own snapshot adapter as the registry's primary model and finalizes the
	// registry during construction — register secondary models and set
	// routing policies (SetAB/SetShadow) before NewFromSource. Nil gets a
	// fresh single-model registry, which behaves exactly like the
	// pre-registry server.
	Registry *registry.Registry

	// ModelName is the registry name of the server's own TCSS snapshot
	// model; default "tcss".
	ModelName string

	// SnapshotPath, when set, enables POST /v1/snapshot/save, which persists
	// the current model (with its generation) there via the versioned format.
	SnapshotPath string

	// FirstGeneration numbers the snapshot published at startup; a server
	// restarted from a saved snapshot passes the loaded generation so the
	// counter keeps rising across restarts.
	FirstGeneration uint64

	// SnapshotKeep is how many rotated prior snapshot files to retain next
	// to SnapshotPath (path.1 … path.N) as a recovery fallback ladder; 0
	// keeps only the newest file.
	SnapshotKeep int

	// ShardName and Role identify this node inside a sharded cluster; both
	// appear in /healthz and /metrics so the gateway can label its rollups.
	// Role is "primary" or "replica"; empty means a standalone node.
	ShardName string
	Role      string

	// MaxGenLag is the staleness bound for replicas: once the served snapshot
	// trails the primary's advertised generation by more than this many
	// generations, /healthz reports degraded (reason "staleness") so the
	// gateway deprioritizes the replica. 0 disables the bound. The current
	// lag is always reported in /metrics' replication block.
	MaxGenLag uint64

	// Owns, when non-nil, restricts the users this node answers for: a
	// request for a user outside the partition is rejected with 421
	// (Misdirected Request) instead of being served, so a gateway/shard ring
	// disagreement surfaces as a loud routing error rather than a silently
	// wrong (differently-generated) answer. Nil owns every user.
	Owns func(user int) bool

	// OnSwap, when set, observes every published snapshot — including the
	// initial one — from the publishing goroutine. Cluster test harnesses
	// use it to capture per-generation snapshots for bit-identity checks.
	OnSwap func(*Snapshot)

	// FS, when non-nil, routes snapshot writes through an injectable
	// filesystem seam (fault.InjectFS in crash harnesses); nil uses the real
	// filesystem.
	FS fault.FS

	// Faults, when non-nil, injects latency and errors at the top of the
	// writer's observe ("observe") and snapshot-save ("save") operations —
	// the seam the degraded-mode tests drive. A nil value costs one pointer
	// check.
	Faults *fault.Hooks

	// BreakerThreshold is how many consecutive write failures trip the
	// circuit breaker open; BreakerBaseBackoff is the first open interval,
	// doubling per re-trip up to BreakerMaxBackoff (both jittered).
	// BreakerSeed seeds the jitter for deterministic tests.
	BreakerThreshold   int
	BreakerBaseBackoff time.Duration
	BreakerMaxBackoff  time.Duration
	BreakerSeed        int64

	// SaveRetries is how many times a failed snapshot save is retried by the
	// writer before reporting failure (negative: no retries);
	// SaveRetryBackoff is the jitter-free pause between attempts.
	SaveRetries      int
	SaveRetryBackoff time.Duration

	// now substitutes time.Now in tests.
	now func() time.Time
	// holdForTest, when set, runs on the read path after admission; tests
	// use it to hold scoring slots open.
	holdForTest func()
}

// DefaultOptions returns the serving defaults.
func DefaultOptions() Options {
	return Options{
		TopNDefault:    10,
		MaxTopN:        100,
		RequestTimeout: 2 * time.Second,
		MaxInflight:    4 * runtime.GOMAXPROCS(0),
		MaxQueue:       256,
		RetryAfter:     time.Second,
		CacheSize:      8192,
		CoalesceWindow: 200 * time.Microsecond,
		CoalesceBatch:  32,
		ObserveQueue:   64,
		Online:         tcss.DefaultOnlineConfig(),

		BreakerThreshold:   3,
		BreakerBaseBackoff: 100 * time.Millisecond,
		BreakerMaxBackoff:  5 * time.Second,
		SaveRetries:        2,
		SaveRetryBackoff:   50 * time.Millisecond,
	}
}

// Validate rejects option combinations that withDefaults cannot repair.
// Non-positive values generally mean "use the default", so Validate only
// flags settings that are explicitly nonsensical: negative coalescing knobs
// (a negative duration or batch size is never a plausible default request), a
// coalesce batch of one (pays the batching synchronisation for no reuse — set
// Coalesce false instead), and a coalesce window at or beyond the request
// timeout (every coalesced request would miss its deadline waiting for
// co-travellers). New calls Validate before applying defaults.
func (o Options) Validate() error {
	if o.CoalesceWindow < 0 {
		return fmt.Errorf("serve: coalesce window must not be negative, got %v", o.CoalesceWindow)
	}
	if o.CoalesceBatch < 0 {
		return fmt.Errorf("serve: coalesce batch must not be negative, got %d", o.CoalesceBatch)
	}
	if o.CoalesceBatch == 1 {
		return fmt.Errorf("serve: coalesce batch of 1 defeats coalescing; disable Coalesce instead")
	}
	if o.Coalesce {
		timeout := o.RequestTimeout
		if timeout <= 0 {
			timeout = DefaultOptions().RequestTimeout
		}
		window := o.CoalesceWindow
		if window == 0 {
			window = DefaultOptions().CoalesceWindow
		}
		if window >= timeout {
			return fmt.Errorf("serve: coalesce window %v must be below the request timeout %v", window, timeout)
		}
	}
	return nil
}

func (o Options) withDefaults() Options {
	def := DefaultOptions()
	if o.TopNDefault <= 0 {
		o.TopNDefault = def.TopNDefault
	}
	if o.MaxTopN <= 0 {
		o.MaxTopN = def.MaxTopN
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = def.RequestTimeout
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = def.MaxInflight
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = def.MaxQueue
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = def.RetryAfter
	}
	if o.CacheSize == 0 {
		o.CacheSize = def.CacheSize
	}
	if o.CoalesceWindow <= 0 {
		o.CoalesceWindow = def.CoalesceWindow
	}
	if o.CoalesceBatch <= 0 {
		o.CoalesceBatch = def.CoalesceBatch
	}
	if o.ObserveQueue <= 0 {
		o.ObserveQueue = def.ObserveQueue
	}
	if o.Online.Epochs <= 0 || o.Online.LR <= 0 {
		o.Online = def.Online
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = def.BreakerThreshold
	}
	if o.BreakerBaseBackoff <= 0 {
		o.BreakerBaseBackoff = def.BreakerBaseBackoff
	}
	if o.BreakerMaxBackoff <= 0 {
		o.BreakerMaxBackoff = def.BreakerMaxBackoff
	}
	if o.SaveRetries == 0 {
		o.SaveRetries = def.SaveRetries
	} else if o.SaveRetries < 0 {
		o.SaveRetries = 0
	}
	if o.SaveRetryBackoff <= 0 {
		o.SaveRetryBackoff = def.SaveRetryBackoff
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// writerCmd is a command for the single-writer update goroutine.
type writerCmd struct {
	batch *tcss.ObserveBatch // observe batch (check-ins + open-world arrivals)
	save  bool               // persist the current snapshot to SnapshotPath
	pub   *Snapshot          // externally built snapshot to publish (replication)
	reply chan writerResult  // buffered(1); always receives exactly once
}

type writerResult struct {
	added int
	gen   uint64
	err   error
}

// Server is the embeddable recommendation server. Create one with New,
// expose Handler() on any net/http server, and Close it on shutdown.
type Server struct {
	opts Options
	gran tcss.Granularity

	// src is owned by the writer goroutine after New returns; the read path
	// only ever touches immutable snapshots.
	src Source

	snap  holder
	reg   *registry.Registry
	coal  *coalescer // nil unless Options.Coalesce
	cache *lruCache
	met   *metrics
	adm   *admission
	brk   *breaker
	cmds  chan writerCmd
	quit  chan struct{}
	wg    sync.WaitGroup
	mux   *http.ServeMux

	// Shutdown coordination: closing makes handlers shed new write commands;
	// drain tells the writer to finish buffered work, take a final snapshot,
	// and exit. quitOnce/drainOnce make Close and Shutdown idempotent and
	// safe to combine.
	closing   atomic.Bool
	drain     chan struct{}
	quitOnce  sync.Once
	drainOnce sync.Once

	scratch sync.Pool // *core.RecScratch

	// primaryGen is the newest generation this node's primary has advertised
	// (replicas only; fed by the replicator via SetPrimaryGeneration). The gap
	// to the served snapshot's generation is the replica's staleness, bounded
	// by Options.MaxGenLag.
	primaryGen atomic.Uint64

	// onSwap, when set (tests), observes every published snapshot, including
	// the initial one, from the publishing goroutine.
	onSwap func(*Snapshot)
}

// SetPrimaryGeneration records the newest generation the primary is known to
// serve. The replicator calls this on every reachable sync; /healthz turns
// degraded and /metrics reports the lag once the replica falls more than
// Options.MaxGenLag generations behind.
func (s *Server) SetPrimaryGeneration(gen uint64) {
	for {
		cur := s.primaryGen.Load()
		if gen <= cur || s.primaryGen.CompareAndSwap(cur, gen) {
			return
		}
	}
}

// genLag returns how many generations the served snapshot trails the primary
// (zero when current, standalone, or before the first sync).
func (s *Server) genLag(served uint64) uint64 {
	if p := s.primaryGen.Load(); p > served {
		return p - served
	}
	return 0
}

// New builds a Server around a fitted Recommender and starts its update
// goroutine. The Recommender must not be used directly afterwards — the
// server's writer goroutine owns it.
func New(rec *tcss.Recommender, opts Options) (*Server, error) {
	if rec == nil || rec.Model == nil || rec.Side == nil {
		return nil, fmt.Errorf("serve: recommender is not fitted")
	}
	return NewFromSource(&RecommenderSource{Rec: rec}, opts)
}

// NewFromSource builds a Server over an arbitrary snapshot Source — the seam
// replicas (StaticSource + Publish) and read-only deployments use — and
// starts its update goroutine.
func NewFromSource(src Source, opts Options) (*Server, error) {
	if err := validateSource(src); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	s := &Server{
		opts:  opts,
		gran:  src.Granularity(),
		src:   src,
		cache: newLRUCache(opts.CacheSize),
		met:   &metrics{start: opts.now()},
		adm:   newAdmission(opts.MaxInflight, opts.MaxQueue),
		brk:   newBreaker(opts.BreakerThreshold, opts.BreakerBaseBackoff, opts.BreakerMaxBackoff, opts.BreakerSeed, opts.now),
		cmds:  make(chan writerCmd, opts.ObserveQueue),
		quit:  make(chan struct{}),
		drain: make(chan struct{}),
	}
	model, side := src.Snapshot()
	s.publish(&Snapshot{
		Gen:     opts.FirstGeneration,
		Model:   model,
		Side:    side,
		Created: opts.now(),
	})
	if opts.Coalesce {
		s.coal = newCoalescer(s, opts.CoalesceWindow, opts.CoalesceBatch)
	}
	s.reg = opts.Registry
	if s.reg == nil {
		s.reg = registry.New()
	}
	name := opts.ModelName
	if name == "" {
		name = "tcss"
	}
	if err := s.reg.RegisterPrimary(&snapshotScorer{s: s, name: name}); err != nil {
		close(s.quit)
		return nil, err
	}
	if err := s.reg.Finalize(); err != nil {
		close(s.quit)
		return nil, err
	}
	s.mux = s.routes()
	s.wg.Add(1)
	go s.writerLoop()
	return s, nil
}

// Handler returns the server's HTTP handler (all /v1, /metrics and /healthz
// routes), suitable for http.Server or httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Generation returns the currently served snapshot generation.
func (s *Server) Generation() uint64 { return s.snap.load().Gen }

// Close stops the update goroutine immediately. In-flight HTTP requests on
// the read path are unaffected (they only touch snapshots); queued observes
// that have not been picked up are answered with an error by their
// enqueuer's timeout. For an orderly exit that drains queued writes and
// saves a final snapshot, use Shutdown.
func (s *Server) Close() {
	s.quitOnce.Do(func() { close(s.quit) })
	s.wg.Wait()
	s.reg.DrainShadows()
}

// Shutdown stops the server gracefully: new write requests are shed with 503
// immediately, the writer drains every queued observe/save command, takes a
// final best-effort snapshot save when SnapshotPath is configured, and
// exits. Reads keep serving throughout (connection draining is the HTTP
// listener's job — pair this with http.Server.Shutdown). If ctx expires
// before the drain completes, the writer is killed Close-style and ctx's
// error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	s.drainOnce.Do(func() { close(s.drain) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.reg.DrainShadows()
		return nil
	case <-ctx.Done():
		s.quitOnce.Do(func() { close(s.quit) })
		<-done
		return ctx.Err()
	}
}

// publish swaps in a new snapshot and invalidates the response cache. Called
// by the writer goroutine (and once during New before it starts).
func (s *Server) publish(snap *Snapshot) {
	s.snap.store(snap)
	s.cache.purge()
	if s.opts.OnSwap != nil {
		s.opts.OnSwap(snap)
	}
	if s.onSwap != nil {
		s.onSwap(snap)
	}
}

// Publish hands an externally built snapshot (model, side information,
// generation) to the writer goroutine for publication. It is how snapshot
// shipping feeds a replica: the Replicator decodes a shipped generation and
// publishes it here, keeping the single-writer invariant — reads never see a
// half-swapped snapshot, and publications observe a total order. Generations
// are monotonic: a shipment at or below the current generation is a no-op
// (the returned generation reports what is actually served). Publish blocks
// until the writer picks the command up or ctx expires.
func (s *Server) Publish(ctx context.Context, model *core.Model, side *core.SideInfo, gen uint64) (uint64, error) {
	if model == nil || side == nil {
		return s.snap.load().Gen, fmt.Errorf("serve: publish with nil model or side")
	}
	cmd := writerCmd{
		pub:   &Snapshot{Gen: gen, Model: model, Side: side, Created: s.opts.now()},
		reply: make(chan writerResult, 1),
	}
	select {
	case s.cmds <- cmd:
	case <-ctx.Done():
		return s.snap.load().Gen, ctx.Err()
	case <-s.quit:
		return s.snap.load().Gen, fmt.Errorf("serve: server closed")
	}
	select {
	case res := <-cmd.reply:
		return res.gen, res.err
	case <-ctx.Done():
		return s.snap.load().Gen, ctx.Err()
	}
}

// handlePublish applies a Publish command on the writer goroutine. Stale or
// duplicate generations are no-ops so replication retries and races cannot
// move a node backwards.
func (s *Server) handlePublish(snap *Snapshot) writerResult {
	cur := s.snap.load()
	if snap.Gen <= cur.Gen {
		return writerResult{gen: cur.Gen}
	}
	s.publish(snap)
	s.met.snapshotSwaps.Add(1)
	s.met.replicationApplied.Add(1)
	return writerResult{gen: snap.Gen}
}

// writerLoop is the single writer: it serializes every model mutation and
// snapshot save, so UpdateOnline never races with itself and snapshot
// generations observe a total order.
func (s *Server) writerLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case <-s.drain:
			// Graceful exit: finish everything already queued (handlers shed
			// new commands once closing is set), then persist a final
			// best-effort snapshot and stop.
			for {
				select {
				case <-s.quit:
					return
				case cmd := <-s.cmds:
					cmd.reply <- s.dispatch(cmd)
				default:
					if s.opts.SnapshotPath != "" {
						s.handleSave()
					}
					return
				}
			}
		case cmd := <-s.cmds:
			cmd.reply <- s.dispatch(cmd)
		}
	}
}

func (s *Server) dispatch(cmd writerCmd) writerResult {
	switch {
	case cmd.save:
		return s.handleSave()
	case cmd.pub != nil:
		return s.handlePublish(cmd.pub)
	default:
		return s.handleObserve(cmd.batch)
	}
}

func (s *Server) handleObserve(batch *tcss.ObserveBatch) writerResult {
	cur := s.snap.load()
	// The breaker guards the model-mutation path: while open, observes are
	// rejected instantly (readers keep the last good snapshot) until the
	// backoff admits a probe.
	if err := s.brk.allow(); err != nil {
		s.met.breakerRejected.Add(1)
		return writerResult{gen: cur.Gen, err: err}
	}
	added, model, side, err := s.observeOnce(batch)
	if err != nil {
		s.met.observeFailures.Add(1)
		switch {
		case errors.Is(err, core.ErrCompactModel):
			// A growth batch on a compact model is a routing/configuration
			// problem, not a model-path fault: count it separately and keep
			// the breaker closed so in-range observes still flow.
			s.met.observeRejectedCompact.Add(1)
		case errors.Is(err, core.ErrOutOfRange):
			s.met.observeRejectedRange.Add(1)
		default:
			if s.brk.failure(err) {
				s.met.breakerTrips.Add(1)
			}
		}
		return writerResult{gen: cur.Gen, err: err}
	}
	if s.brk.success() {
		s.met.breakerRecoveries.Add(1)
	}
	// Pure growth (arrivals without novel cells) still publishes: the source
	// returns a fresh model object whenever dimensions changed.
	if added == 0 && model == cur.Model {
		s.met.observeNoop.Add(1)
		return writerResult{gen: cur.Gen}
	}
	if grew := model.I - cur.Model.I; grew > 0 {
		s.met.observeGrownUsers.Add(int64(grew))
	}
	if grew := model.J - cur.Model.J; grew > 0 {
		s.met.observeGrownPOIs.Add(int64(grew))
	}
	next := &Snapshot{
		Gen:     cur.Gen + 1,
		Model:   model,
		Side:    side,
		Created: s.opts.now(),
	}
	s.publish(next)
	s.met.snapshotSwaps.Add(1)
	s.met.observeApplied.Add(1)
	s.met.observeAdded.Add(int64(added))
	return writerResult{added: added, gen: next.Gen}
}

// observeOnce runs one guarded observe: the injected fault seam first, then
// the source's transactional model update (which itself reverts on error).
func (s *Server) observeOnce(batch *tcss.ObserveBatch) (int, *core.Model, *core.SideInfo, error) {
	if err := s.opts.Faults.Before("observe"); err != nil {
		return 0, nil, nil, err
	}
	return s.src.Observe(*batch, s.opts.Online)
}

func (s *Server) handleSave() writerResult {
	snap := s.snap.load()
	if s.opts.SnapshotPath == "" {
		return writerResult{gen: snap.Gen, err: fmt.Errorf("serve: no snapshot path configured")}
	}
	var err error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			s.met.saveRetries.Add(1)
			select {
			case <-time.After(s.opts.SaveRetryBackoff):
			case <-s.quit:
				return writerResult{gen: snap.Gen, err: err}
			}
		}
		if err = s.trySave(snap); err == nil {
			s.met.snapshotSaves.Add(1)
			return writerResult{gen: snap.Gen}
		}
		if attempt >= s.opts.SaveRetries {
			break
		}
	}
	s.met.saveFailures.Add(1)
	return writerResult{gen: snap.Gen, err: err}
}

// trySave is one snapshot-save attempt: the injected fault seam, a
// crash-safe rotated write of the v5 binary slab format (mmap-loadable for
// O(1) restart), and a read-back verification so a write the filesystem
// silently tore (short write, bit rot) is caught here — where a retry can fix
// it — instead of at the next restart.
func (s *Server) trySave(snap *Snapshot) error {
	if err := s.opts.Faults.Before("save"); err != nil {
		return err
	}
	path := s.opts.SnapshotPath
	if err := snap.Model.SaveBinaryRotate(s.opts.FS, path, s.opts.SnapshotKeep, snap.Gen); err != nil {
		return err
	}
	if _, _, err := core.LoadFileVersioned(path); err != nil {
		if errors.Is(err, core.ErrChecksum) {
			s.met.checksumRejected.Add(1)
		}
		return fmt.Errorf("serve: snapshot read-back: %w", err)
	}
	return nil
}

// getScratch returns a pooled scoring scratch; putScratch recycles it.
func (s *Server) getScratch() *core.RecScratch {
	if sc, ok := s.scratch.Get().(*core.RecScratch); ok {
		return sc
	}
	return core.NewRecScratch(s.snap.load().Model)
}

func (s *Server) putScratch(sc *core.RecScratch) { s.scratch.Put(sc) }
