// Package serve is the online recommendation server: it puts a trained
// tcss.Recommender behind an HTTP API (stdlib net/http only) built for heavy
// read traffic with incremental freshness.
//
// Consistency model. The serving state is an immutable Snapshot (model
// factors + side information + generation counter) held behind an atomic
// pointer. Reads (recommend, explain) load the pointer once and score against
// that snapshot for the whole request — lock-free, wait-free, and immune to
// concurrent updates. All writes (observe batches, snapshot saves) funnel
// through a single-writer update goroutine that applies
// Recommender.Observe — itself transactional, producing fresh model/side
// objects instead of mutating published ones — and atomically swaps in the
// next-generation snapshot. Readers therefore never block on writers and
// never see a half-updated model; every response is internally consistent
// with exactly one generation, which the response reports.
//
// Load management. The read path runs behind a bounded admission queue
// (MaxInflight scoring slots, MaxQueue waiters, 503 + Retry-After beyond
// that), per-request deadlines (504 on expiry), a generation-keyed LRU
// response cache that snapshot swaps invalidate wholesale, and pooled scoring
// scratch (core.RecScratch) so steady-state requests allocate only their
// response. Observability comes from /metrics (request counts, latency
// percentiles over a ring-buffer window, cache hit rate, snapshot
// generation/age, queue depths) and /healthz.
package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"tcss"
	"tcss/internal/core"
	"tcss/internal/lbsn"
)

// Options configures a Server. The zero value is usable: every field falls
// back to the DefaultOptions value.
type Options struct {
	// TopNDefault is the result count when ?n= is omitted; MaxTopN caps it.
	TopNDefault int
	MaxTopN     int

	// RequestTimeout is the per-request deadline applied on top of whatever
	// deadline the client's context already carries.
	RequestTimeout time.Duration

	// MaxInflight bounds concurrently scoring read requests; MaxQueue bounds
	// how many more may wait for a slot. Beyond that, requests are shed with
	// 503 and a Retry-After of RetryAfter.
	MaxInflight int
	MaxQueue    int
	RetryAfter  time.Duration

	// CacheSize is the LRU capacity in responses; < 0 disables the cache.
	CacheSize int

	// ObserveQueue bounds buffered writer commands (observe/save batches);
	// a full queue sheds observes with 503.
	ObserveQueue int

	// Online configures the incremental model update per observe batch.
	Online tcss.OnlineConfig

	// SnapshotPath, when set, enables POST /v1/snapshot/save, which persists
	// the current model (with its generation) there via the versioned format.
	SnapshotPath string

	// FirstGeneration numbers the snapshot published at startup; a server
	// restarted from a saved snapshot passes the loaded generation so the
	// counter keeps rising across restarts.
	FirstGeneration uint64

	// now substitutes time.Now in tests.
	now func() time.Time
	// holdForTest, when set, runs on the read path after admission; tests
	// use it to hold scoring slots open.
	holdForTest func()
}

// DefaultOptions returns the serving defaults.
func DefaultOptions() Options {
	return Options{
		TopNDefault:    10,
		MaxTopN:        100,
		RequestTimeout: 2 * time.Second,
		MaxInflight:    4 * runtime.GOMAXPROCS(0),
		MaxQueue:       256,
		RetryAfter:     time.Second,
		CacheSize:      8192,
		ObserveQueue:   64,
		Online:         tcss.DefaultOnlineConfig(),
	}
}

func (o Options) withDefaults() Options {
	def := DefaultOptions()
	if o.TopNDefault <= 0 {
		o.TopNDefault = def.TopNDefault
	}
	if o.MaxTopN <= 0 {
		o.MaxTopN = def.MaxTopN
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = def.RequestTimeout
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = def.MaxInflight
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = def.MaxQueue
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = def.RetryAfter
	}
	if o.CacheSize == 0 {
		o.CacheSize = def.CacheSize
	}
	if o.ObserveQueue <= 0 {
		o.ObserveQueue = def.ObserveQueue
	}
	if o.Online.Epochs <= 0 || o.Online.LR <= 0 {
		o.Online = def.Online
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// writerCmd is a command for the single-writer update goroutine.
type writerCmd struct {
	checkIns []lbsn.CheckIn    // observe batch; nil for a save command
	save     bool              // persist the current snapshot to SnapshotPath
	reply    chan writerResult // buffered(1); always receives exactly once
}

type writerResult struct {
	added int
	gen   uint64
	err   error
}

// Server is the embeddable recommendation server. Create one with New,
// expose Handler() on any net/http server, and Close it on shutdown.
type Server struct {
	opts Options
	gran tcss.Granularity

	// rec is owned by the writer goroutine after New returns; the read path
	// only ever touches immutable snapshots.
	rec *tcss.Recommender

	snap  holder
	cache *lruCache
	met   *metrics
	adm   *admission
	cmds  chan writerCmd
	quit  chan struct{}
	wg    sync.WaitGroup
	mux   *http.ServeMux

	scratch sync.Pool // *core.RecScratch

	// onSwap, when set (tests), observes every published snapshot, including
	// the initial one, from the publishing goroutine.
	onSwap func(*Snapshot)
}

// New builds a Server around a fitted Recommender and starts its update
// goroutine. The Recommender must not be used directly afterwards — the
// server's writer goroutine owns it.
func New(rec *tcss.Recommender, opts Options) (*Server, error) {
	if rec == nil || rec.Model == nil || rec.Side == nil {
		return nil, fmt.Errorf("serve: recommender is not fitted")
	}
	opts = opts.withDefaults()
	s := &Server{
		opts:  opts,
		gran:  rec.Gran,
		rec:   rec,
		cache: newLRUCache(opts.CacheSize),
		met:   &metrics{start: opts.now()},
		adm:   newAdmission(opts.MaxInflight, opts.MaxQueue),
		cmds:  make(chan writerCmd, opts.ObserveQueue),
		quit:  make(chan struct{}),
	}
	s.publish(&Snapshot{
		Gen:     opts.FirstGeneration,
		Model:   rec.Model,
		Side:    rec.Side,
		Created: opts.now(),
	})
	s.mux = s.routes()
	s.wg.Add(1)
	go s.writerLoop()
	return s, nil
}

// Handler returns the server's HTTP handler (all /v1, /metrics and /healthz
// routes), suitable for http.Server or httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// Generation returns the currently served snapshot generation.
func (s *Server) Generation() uint64 { return s.snap.load().Gen }

// Close stops the update goroutine. In-flight HTTP requests on the read path
// are unaffected (they only touch snapshots); queued observes that have not
// been picked up are answered with an error by their enqueuer's timeout.
func (s *Server) Close() {
	close(s.quit)
	s.wg.Wait()
}

// publish swaps in a new snapshot and invalidates the response cache. Called
// by the writer goroutine (and once during New before it starts).
func (s *Server) publish(snap *Snapshot) {
	s.snap.store(snap)
	s.cache.purge()
	if s.onSwap != nil {
		s.onSwap(snap)
	}
}

// writerLoop is the single writer: it serializes every model mutation and
// snapshot save, so UpdateOnline never races with itself and snapshot
// generations observe a total order.
func (s *Server) writerLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case cmd := <-s.cmds:
			if cmd.save {
				cmd.reply <- s.handleSave()
				continue
			}
			cmd.reply <- s.handleObserve(cmd.checkIns)
		}
	}
}

func (s *Server) handleObserve(checkIns []lbsn.CheckIn) writerResult {
	added, err := s.rec.Observe(checkIns, s.opts.Online)
	cur := s.snap.load()
	if err != nil {
		return writerResult{gen: cur.Gen, err: err}
	}
	if added == 0 {
		s.met.observeNoop.Add(1)
		return writerResult{gen: cur.Gen}
	}
	next := &Snapshot{
		Gen:     cur.Gen + 1,
		Model:   s.rec.Model,
		Side:    s.rec.Side,
		Created: s.opts.now(),
	}
	s.publish(next)
	s.met.snapshotSwaps.Add(1)
	s.met.observeApplied.Add(1)
	s.met.observeAdded.Add(int64(added))
	return writerResult{added: added, gen: next.Gen}
}

func (s *Server) handleSave() writerResult {
	snap := s.snap.load()
	if s.opts.SnapshotPath == "" {
		return writerResult{gen: snap.Gen, err: fmt.Errorf("serve: no snapshot path configured")}
	}
	if err := snap.Model.SaveFileVersioned(s.opts.SnapshotPath, snap.Gen); err != nil {
		return writerResult{gen: snap.Gen, err: err}
	}
	s.met.snapshotSaves.Add(1)
	return writerResult{gen: snap.Gen}
}

// getScratch returns a pooled scoring scratch; putScratch recycles it.
func (s *Server) getScratch() *core.RecScratch {
	if sc, ok := s.scratch.Get().(*core.RecScratch); ok {
		return sc
	}
	return core.NewRecScratch(s.snap.load().Model)
}

func (s *Server) putScratch(sc *core.RecScratch) { s.scratch.Put(sc) }
