package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tcss"
	"tcss/internal/core"
	"tcss/internal/lbsn"
)

// makeDataset regenerates the deterministic test dataset for seed.
func makeDataset(t *testing.T, seed int64) *tcss.Dataset {
	t.Helper()
	cfg, err := lbsn.NewPreset("gmu-5k", seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Users, cfg.POIs, cfg.CheckInsPerUser = 40, 36, 18
	ds, err := lbsn.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testTrainConfig(seed int64) tcss.Config {
	tcfg := tcss.DefaultConfig()
	tcfg.Epochs = 8
	tcfg.Rank = 5
	tcfg.Seed = seed
	return tcfg
}

// fitRecommender trains a small model for handler tests.
func fitRecommender(t *testing.T, seed int64) *tcss.Recommender {
	t.Helper()
	rec, err := tcss.Fit(makeDataset(t, seed), tcss.Month, testTrainConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// quickOnline keeps observe batches fast in tests.
func quickOnline() tcss.OnlineConfig {
	o := tcss.DefaultOnlineConfig()
	o.Epochs = 3
	return o
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Online.Epochs == 0 {
		opts.Online = quickOnline()
	}
	srv, err := New(fitRecommender(t, 21), opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestRecommendHandler(t *testing.T) {
	srv, hs := newTestServer(t, Options{})

	var got recommendResponse
	resp := getJSON(t, hs.URL+"/v1/recommend?user=3&t=5&n=5", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("first request X-Cache = %q, want MISS", resp.Header.Get("X-Cache"))
	}
	if got.User != 3 || got.T != 5 || got.Generation != 0 {
		t.Fatalf("identity fields %+v", got)
	}
	if len(got.Results) == 0 || len(got.Results) > 5 {
		t.Fatalf("got %d results", len(got.Results))
	}
	for i := 1; i < len(got.Results); i++ {
		if got.Results[i].Score > got.Results[i-1].Score {
			t.Fatal("results not sorted by score descending")
		}
	}

	// Bit-identical to the library API for the same snapshot generation: the
	// handler and Recommender.Recommend share the TopNScratch kernel and the
	// OwnPOIs skip set. (No observe has run, so the writer is idle and the
	// recommender still holds the generation-0 state.)
	want := srv.src.(*RecommenderSource).Rec.Recommend(3, 5, 5)
	if len(want) != len(got.Results) {
		t.Fatalf("library returned %d recs, handler %d", len(want), len(got.Results))
	}
	for i := range want {
		if want[i].POI != got.Results[i].POI || want[i].Score != got.Results[i].Score {
			t.Fatalf("rank %d: handler %+v, library %+v", i, got.Results[i], want[i])
		}
	}

	// Second identical request: served from cache, byte-identical.
	respA, err := http.Get(hs.URL + "/v1/recommend?user=3&t=5&n=5")
	if err != nil {
		t.Fatal(err)
	}
	bodyA, _ := io.ReadAll(respA.Body)
	respA.Body.Close()
	if respA.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("second request X-Cache = %q, want HIT", respA.Header.Get("X-Cache"))
	}
	wantBody, _ := json.Marshal(&got)
	if string(bodyA) != string(wantBody)+"\n" {
		t.Fatalf("cache hit body %q != miss body %q", bodyA, wantBody)
	}

	// Excluded POIs: the user's own training POIs must never appear.
	own := map[int]bool{}
	for _, j := range srv.snap.load().Side.OwnPOIs[3] {
		own[j] = true
	}
	for _, r := range got.Results {
		if own[r.POI] {
			t.Fatalf("recommended already-visited POI %d", r.POI)
		}
	}
}

func TestRecommendValidation(t *testing.T) {
	_, hs := newTestServer(t, Options{MaxTopN: 7})
	cases := []struct {
		query string
		code  int
	}{
		{"", http.StatusBadRequest},                      // missing user and t
		{"?user=1", http.StatusBadRequest},               // missing t
		{"?user=abc&t=0", http.StatusBadRequest},         // non-integer
		{"?user=100000&t=0", http.StatusBadRequest},      // user out of range
		{"?user=0&t=99", http.StatusBadRequest},          // t out of range
		{"?user=-1&t=0", http.StatusBadRequest},          // negative user
		{"?user=0&t=0&n=notanum", http.StatusBadRequest}, // bad n
		{"?user=0&t=0&n=-3", http.StatusBadRequest},      // negative n
		{"?user=0&t=0", http.StatusOK},                   // defaults applied
	}
	for _, c := range cases {
		resp := getJSON(t, hs.URL+"/v1/recommend"+c.query, nil)
		if resp.StatusCode != c.code {
			t.Errorf("GET /v1/recommend%s = %d, want %d", c.query, resp.StatusCode, c.code)
		}
	}
	// n above MaxTopN is clamped, not rejected.
	var got recommendResponse
	if resp := getJSON(t, hs.URL+"/v1/recommend?user=0&t=0&n=10000", &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("oversized n status %d", resp.StatusCode)
	}
	if len(got.Results) > 7 {
		t.Fatalf("n clamp leaked %d results, want <= 7", len(got.Results))
	}
}

func TestExplainHandler(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	var got explainResponse
	resp := getJSON(t, hs.URL+"/v1/explain?user=2&poi=7&t=4", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got.User != 2 || got.POI != 7 || got.T != 4 || got.Generation != 0 {
		t.Fatalf("identity fields %+v", got)
	}
	if got.VisitProbability < 0 || got.VisitProbability > 1 {
		t.Fatalf("visit probability %g out of range", got.VisitProbability)
	}
	if got.PeakT < 0 || got.PeakT >= 12 {
		t.Fatalf("peak_t %d out of range", got.PeakT)
	}
	if got.NearestFriendKm != nil && *got.NearestFriendKm < 0 {
		t.Fatalf("negative friend distance %g", *got.NearestFriendKm)
	}
	for _, q := range []string{"?user=2&poi=7", "?user=2&t=1", "?poi=1&t=1", "?user=2&poi=99999&t=1", "?user=2&poi=-1&t=1"} {
		if resp := getJSON(t, hs.URL+"/v1/explain"+q, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/explain%s = %d, want 400", q, resp.StatusCode)
		}
	}
}

// findFreshCell locates a (user, poi, month) cell absent from the training
// tensor of the server's current snapshot.
func findFreshCell(t *testing.T, srv *Server) observeCheckIn {
	t.Helper()
	snap := srv.snap.load()
	own := make([]map[int]bool, snap.Model.I)
	for u := range own {
		own[u] = map[int]bool{}
		for _, j := range snap.Side.OwnPOIs[u] {
			own[u][j] = true
		}
	}
	for u := 0; u < snap.Model.I; u++ {
		for j := 0; j < snap.Model.J; j++ {
			if !own[u][j] {
				return observeCheckIn{User: u, POI: j, Month: 3, Week: 13, Hour: 9}
			}
		}
	}
	t.Fatal("no fresh cell available")
	return observeCheckIn{}
}

func postObserve(t *testing.T, url string, body any) (*http.Response, observeResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/observe", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out observeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestObserveHandler(t *testing.T) {
	srv, hs := newTestServer(t, Options{})
	fresh := findFreshCell(t, srv)

	// Recommend once so we can watch the generation change.
	var before recommendResponse
	getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&t=%d", hs.URL, fresh.User, fresh.Month), &before)
	if before.Generation != 0 {
		t.Fatalf("initial generation %d", before.Generation)
	}

	resp, got := postObserve(t, hs.URL, observeRequest{CheckIns: []observeCheckIn{fresh}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe status %d", resp.StatusCode)
	}
	if got.Added != 1 || got.Generation != 1 {
		t.Fatalf("observe = %+v, want added 1 gen 1", got)
	}

	// The same check-in again is a no-op: no new cell, no new generation.
	resp, got = postObserve(t, hs.URL, observeRequest{CheckIns: []observeCheckIn{fresh}})
	if resp.StatusCode != http.StatusOK || got.Added != 0 || got.Generation != 1 {
		t.Fatalf("duplicate observe = %d %+v, want 200 added 0 gen 1", resp.StatusCode, got)
	}

	// Reads now serve the new generation — the swap invalidated the cache.
	var after recommendResponse
	resp2 := getJSON(t, fmt.Sprintf("%s/v1/recommend?user=%d&t=%d", hs.URL, fresh.User, fresh.Month), &after)
	if after.Generation != 1 {
		t.Fatalf("post-observe generation %d, want 1", after.Generation)
	}
	if resp2.Header.Get("X-Cache") != "MISS" {
		t.Fatal("snapshot swap must invalidate the response cache")
	}
	// The freshly observed POI is now in the user's own set and excluded.
	for _, r := range after.Results {
		if r.POI == fresh.POI {
			t.Fatalf("observed POI %d still recommended", r.POI)
		}
	}

	// Malformed bodies and negative ids are 400s.
	for name, body := range map[string]string{
		"not json":    "{",
		"empty batch": `{"checkins":[]}`,
		"bad poi":     `{"checkins":[{"user":1,"poi":-4,"month":1}]}`,
		"bad month":   `{"checkins":[{"user":1,"poi":1,"month":40}]}`,
	} {
		resp, err := http.Post(hs.URL+"/v1/observe", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	// Out-of-range ids on a node without growth enabled are 409 Conflict —
	// they would be valid at a growth-enabled primary.
	for name, body := range map[string]string{
		"oob user": `{"checkins":[{"user":99999,"poi":1,"month":1}]}`,
		"oob poi":  `{"checkins":[{"user":1,"poi":99999,"month":1}]}`,
		"arrival":  `{"new_users":[{"id":99999}]}`,
	} {
		resp, err := http.Post(hs.URL+"/v1/observe", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("%s: status %d, want 409", name, resp.StatusCode)
		}
	}
	if srv.Generation() != 1 {
		t.Fatalf("invalid observes moved the generation to %d", srv.Generation())
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	var health healthResponse
	if resp := getJSON(t, hs.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Generation != 0 || health.AgeSeconds < 0 {
		t.Fatalf("healthz = %+v", health)
	}

	// Generate traffic: two distinct recommends, one repeated (cache hit),
	// one bad request.
	getJSON(t, hs.URL+"/v1/recommend?user=1&t=1", nil)
	getJSON(t, hs.URL+"/v1/recommend?user=2&t=1", nil)
	getJSON(t, hs.URL+"/v1/recommend?user=1&t=1", nil)
	getJSON(t, hs.URL+"/v1/recommend?user=notanum&t=1", nil)
	getJSON(t, hs.URL+"/v1/explain?user=1&poi=1&t=1", nil)

	var met metricsSnapshot
	if resp := getJSON(t, hs.URL+"/metrics", &met); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if met.Recommend.Count != 4 {
		t.Fatalf("recommend count %d, want 4", met.Recommend.Count)
	}
	if met.Explain.Count != 1 {
		t.Fatalf("explain count %d, want 1", met.Explain.Count)
	}
	if met.BadRequests != 1 {
		t.Fatalf("bad requests %d, want 1", met.BadRequests)
	}
	if met.Cache.Hits != 1 || met.Cache.Misses != 2 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/2", met.Cache.Hits, met.Cache.Misses)
	}
	if want := 1.0 / 3.0; met.Cache.HitRate != want {
		t.Fatalf("hit rate %g, want %g", met.Cache.HitRate, want)
	}
	if met.Recommend.P50ms < 0 || met.Recommend.P99ms < met.Recommend.P50ms {
		t.Fatalf("latency percentiles inconsistent: %+v", met.Recommend)
	}
	if met.Admission.MaxInflight <= 0 || met.UptimeSeconds < 0 {
		t.Fatalf("metrics sanity: %+v", met)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	_, hs := newTestServer(t, Options{RequestTimeout: time.Nanosecond})
	resp := getJSON(t, hs.URL+"/v1/recommend?user=0&t=0", nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	var met metricsSnapshot
	getJSON(t, hs.URL+"/metrics", &met)
	if met.DeadlineMissed == 0 {
		t.Fatal("deadline_504 counter not incremented")
	}
}

func TestQueueOverflowSheds503(t *testing.T) {
	entered := make(chan struct{}, 8)
	hold := make(chan struct{})
	opts := Options{
		MaxInflight: 1,
		MaxQueue:    1,
		RetryAfter:  3 * time.Second,
		CacheSize:   -1, // every request must reach admission
	}
	opts.holdForTest = func() { entered <- struct{}{}; <-hold }
	srv, hs := newTestServer(t, opts)

	type result struct {
		code int
		err  error
	}
	results := make(chan result, 2)
	do := func(user int) {
		resp, err := http.Get(fmt.Sprintf("%s/v1/recommend?user=%d&t=0", hs.URL, user))
		if err != nil {
			results <- result{err: err}
			return
		}
		resp.Body.Close()
		results <- result{code: resp.StatusCode}
	}

	// A takes the only scoring slot and parks inside the handler.
	go do(0)
	<-entered
	// B fills the single queue slot (blocked in acquire, before the hook).
	go do(1)
	deadline := time.Now().Add(5 * time.Second)
	for srv.adm.waiting.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// C overflows the bounded queue: immediate 503 with Retry-After.
	resp, err := http.Get(hs.URL + "/v1/recommend?user=2&t=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "3" {
		t.Fatalf("Retry-After = %q, want 3", resp.Header.Get("Retry-After"))
	}

	// Release the holds; A and B must both complete successfully.
	close(hold)
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.err != nil || r.code != http.StatusOK {
				t.Fatalf("held request finished %d (%v)", r.code, r.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("held requests did not finish")
		}
	}
}

func TestSnapshotSaveAndRestart(t *testing.T) {
	path := t.TempDir() + "/snap.json"
	srv, hs := newTestServer(t, Options{SnapshotPath: path})

	// Advance to generation 1, then persist.
	fresh := findFreshCell(t, srv)
	if resp, got := postObserve(t, hs.URL, observeRequest{CheckIns: []observeCheckIn{fresh}}); resp.StatusCode != http.StatusOK || got.Generation != 1 {
		t.Fatalf("observe failed: %d %+v", resp.StatusCode, got)
	}
	var saved saveResponse
	resp, err := http.Post(hs.URL+"/v1/snapshot/save", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&saved); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || saved.Generation != 1 || saved.Path != path {
		t.Fatalf("save = %d %+v", resp.StatusCode, saved)
	}

	// Restart: load the persisted model, reattach it to the (pristine,
	// regenerated) dataset, and continue the generation counter. The
	// factors are the generation-1 factors; the training split is
	// reproduced from the seed, so for every user except the one whose
	// check-in was observed the skip set — and therefore the response —
	// is bit-identical to the running server's.
	m, gen, err := core.LoadFileVersioned(path)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("persisted generation %d, want 1", gen)
	}
	rec2, err := tcss.AttachModel(m, makeDataset(t, 21), tcss.Month, testTrainConfig(21), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	restarted, err := New(rec2, Options{FirstGeneration: gen, Online: quickOnline()})
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	hs2 := httptest.NewServer(restarted.Handler())
	defer hs2.Close()

	var health healthResponse
	getJSON(t, hs2.URL+"/healthz", &health)
	if health.Generation != 1 {
		t.Fatalf("restarted generation %d, want 1", health.Generation)
	}
	otherUser := (fresh.User + 1) % m.I
	q := fmt.Sprintf("/v1/recommend?user=%d&t=2&n=8", otherUser)
	var a, b recommendResponse
	getJSON(t, hs.URL+q, &a)
	getJSON(t, hs2.URL+q, &b)
	if len(a.Results) == 0 || len(a.Results) != len(b.Results) {
		t.Fatalf("restart changed result count %d -> %d", len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("rank %d: %+v before restart, %+v after", i, a.Results[i], b.Results[i])
		}
	}

	// Save without a configured path is a 400.
	_, hsNoPath := newTestServer(t, Options{})
	resp, err = http.Post(hsNoPath.URL+"/v1/snapshot/save", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unconfigured save status %d, want 400", resp.StatusCode)
	}
}
