package serve

import (
	"sync/atomic"
	"time"

	"tcss/internal/core"
)

// Snapshot is one immutable, internally consistent view of the serving state:
// the model factors and the side information they were trained (or last
// updated) against, tagged with a monotonically increasing generation. A
// snapshot is published once behind the server's atomic pointer and never
// mutated afterwards — the single-writer update goroutine builds a fresh
// model/side pair (Recommender.Observe swaps in new objects rather than
// editing published ones) and swaps the pointer, so readers either see the
// old generation or the new one, never a half-updated model.
type Snapshot struct {
	// Gen is the snapshot generation: FirstGeneration for the snapshot
	// published at startup, incremented by one per applied observe batch.
	Gen uint64
	// Model and Side are immutable once published.
	Model *core.Model
	Side  *core.SideInfo
	// Created is the publish time, reported as snapshot age in /metrics.
	Created time.Time
}

// holder wraps the atomic snapshot pointer. Reads are lock-free and
// wait-free; there is exactly one writer (the update goroutine).
type holder struct {
	p atomic.Pointer[Snapshot]
}

func (h *holder) load() *Snapshot   { return h.p.Load() }
func (h *holder) store(s *Snapshot) { h.p.Store(s) }
