package serve

import (
	"runtime"
	"sync"
	"time"

	"tcss/internal/core"
)

// coalescer batches concurrent recommend requests through core.TopNBatch so a
// batch of B requests streams the POI factor slab once instead of B times.
//
// Protocol: a request joins the pending batch (creating it, and arming its
// window timer, if none exists). The batch executes exactly once — flushed
// by the request that fills it to maxBatch, by the leader's group-commit
// loop once the batch stops growing, or by the timer after window — against
// the snapshot loaded at execution time. Each member's skip list is resolved
// from that same snapshot, so every response in the batch is internally
// consistent with exactly one generation, the one it reports — the same
// contract the per-request path gives. The `flushed` flag, guarded by mu,
// detaches the batch exactly once; joiners then wait on done, which the
// executor closes after publishing results (the channel close orders the
// result writes before the waiters' reads).
//
// The group-commit loop is what makes the latency cost negligible: the
// request that creates a batch (the leader) yields the processor and
// re-checks; while concurrently admitted requests keep joining it keeps
// yielding, and once the batch stops growing AND an execution slot is free
// it flushes. A lone request on an idle server therefore pays a couple of
// scheduler yields, not the window. Execution slots (GOMAXPROCS of them)
// are the convoy mechanism: while every slot is busy scoring, the pending
// batch keeps accumulating, so the batch size self-regulates to however
// many requests arrive during one batch service time — batching emerges
// exactly when there is queued load, without ever delaying an uncontended
// request. The timer is only a starvation backstop (a descheduled leader),
// which is why the default window can stay small.
//
// Execution is safe against generation swaps between join and flush because
// model dimensions only ever grow (open-world observes append rows, never
// remove them): user and time indices validated by the handler stay in range
// for every later snapshot.
//
// There is no deadlock with bounded admission: every waiter holds its
// admission slot while blocked on done, but the executor is either one of
// those waiters (the one that filled the batch, running inline) or the timer
// goroutine, which needs no slot.
type coalescer struct {
	s        *Server
	window   time.Duration
	maxBatch int

	mu      sync.Mutex
	pending *coalesceBatch

	// slots bounds concurrent batch executions to GOMAXPROCS. Filling
	// requests and the timer block on it; the leader's group-commit loop
	// only polls it, holding the batch open while all executors are busy.
	slots chan struct{}

	scratch sync.Pool // *core.BatchScratch
}

// coalesceBatch is one batch in flight. reqs and flushed are guarded by the
// coalescer's mu until the batch is detached; snap and out are written by the
// single executor before done is closed and read by waiters only after.
type coalesceBatch struct {
	reqs    []core.BatchReq
	timer   *time.Timer
	flushed bool
	done    chan struct{}
	snap    *Snapshot
	out     [][]core.Recommendation
}

func newCoalescer(s *Server, window time.Duration, maxBatch int) *coalescer {
	return &coalescer{
		s:        s,
		window:   window,
		maxBatch: maxBatch,
		slots:    make(chan struct{}, runtime.GOMAXPROCS(0)),
	}
}

// do answers one recommend request through the batch path, returning the
// results and the snapshot they were computed against. Typical added wait is
// a few scheduler yields; the window is the worst case.
func (c *coalescer) do(user, t, n int) ([]core.Recommendation, *Snapshot) {
	c.mu.Lock()
	b := c.pending
	leader := b == nil
	if leader {
		b = &coalesceBatch{done: make(chan struct{})}
		b.timer = time.AfterFunc(c.window, func() { c.flush(b) })
		c.pending = b
	}
	idx := len(b.reqs)
	b.reqs = append(b.reqs, core.BatchReq{User: user, T: t, N: n})
	prev := len(b.reqs)
	full := prev >= c.maxBatch
	if full {
		b.flushed = true
		c.pending = nil
	}
	c.mu.Unlock()
	switch {
	case full:
		b.timer.Stop()
		c.slots <- struct{}{}
		c.execute(b)
		<-c.slots
	case leader:
		// Group commit: keep yielding while co-travellers are still joining
		// or every execution slot is busy; flush once the batch has been
		// stable for a few consecutive checks and a slot is free. Requiring
		// several stable checks rides out scheduling gaps between joiners
		// under queued load (letting the batch grow toward maxBatch) while
		// costing a lone request only a handful of yields. Another goroutine
		// may flush first (by filling the batch, or the backstop timer),
		// which the flushed flag reports.
		const stableChecks = 4
		stable := 0
		for {
			runtime.Gosched()
			c.mu.Lock()
			if b.flushed {
				c.mu.Unlock()
				break
			}
			if n := len(b.reqs); n != prev {
				prev = n
				stable = 0
				c.mu.Unlock()
				continue
			}
			if stable++; stable < stableChecks {
				c.mu.Unlock()
				continue
			}
			select {
			case c.slots <- struct{}{}:
			default:
				c.mu.Unlock()
				continue
			}
			b.flushed = true
			if c.pending == b {
				c.pending = nil
			}
			c.mu.Unlock()
			b.timer.Stop()
			c.execute(b)
			<-c.slots
			break
		}
	}
	<-b.done
	return b.out[idx], b.snap
}

// flush executes b if nobody else has. Called from the window timer. The
// slot is acquired BEFORE detaching: while every executor is busy the batch
// stays pending and keeps accepting joiners — detaching first would strand
// a small batch in line for the slot while a new pending batch forms behind
// it, exactly the queueing collapse the convoy design avoids.
func (c *coalescer) flush(b *coalesceBatch) {
	c.slots <- struct{}{}
	c.mu.Lock()
	if b.flushed {
		c.mu.Unlock()
		<-c.slots
		return
	}
	b.flushed = true
	if c.pending == b {
		c.pending = nil
	}
	c.mu.Unlock()
	c.execute(b)
	<-c.slots
}

// execute scores a detached batch against the current snapshot and wakes the
// waiters. Skip lists come from the execution snapshot — not the snapshots
// the members joined under — so the batch is consistent with one generation.
func (c *coalescer) execute(b *coalesceBatch) {
	snap := c.s.snap.load()
	for i := range b.reqs {
		b.reqs[i].Skip = snap.Side.OwnPOIs[b.reqs[i].User]
	}
	sc, _ := c.scratch.Get().(*core.BatchScratch)
	if sc == nil {
		sc = core.NewBatchScratch(snap.Model, c.maxBatch)
	}
	b.snap = snap
	b.out = snap.Model.TopNBatch(b.reqs, sc)
	c.scratch.Put(sc)

	met := c.s.met
	met.coalesceBatches.Add(1)
	met.coalesceRequests.Add(int64(len(b.reqs)))
	met.coalesceHist[coalesceBucket(len(b.reqs))].Add(1)
	close(b.done)
}

// coalesceBucket maps a batch size onto the /metrics histogram buckets.
func coalesceBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n == 2:
		return 1
	case n <= 4:
		return 2
	case n <= 8:
		return 3
	case n <= 16:
		return 4
	case n <= 32:
		return 5
	default:
		return 6
	}
}

// coalesceBucketLabels name the histogram buckets, index-aligned with
// coalesceBucket.
var coalesceBucketLabels = [...]string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33+"}
