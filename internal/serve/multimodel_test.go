package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tcss"
	"tcss/internal/baselines"
	"tcss/internal/registry"
)

// fitSeqModel trains a sequential baseline on the recommender's training
// tensor so its dims agree with the served snapshot.
func fitSeqModel(t *testing.T, rec *tcss.Recommender, name string, seed int64) baselines.SeqServer {
	t.Helper()
	m, ok := baselines.SeqLookup(name)
	if !ok {
		t.Fatalf("SeqLookup(%q) failed", name)
	}
	ctx := &baselines.Context{
		Train:  rec.Train,
		Social: rec.Dataset.Social,
		Dist:   rec.Side.Dist,
		Rank:   5,
		Epochs: 2,
		Seed:   seed,
	}
	if err := m.(baselines.Recommender).Fit(ctx); err != nil {
		t.Fatalf("%s: Fit: %v", name, err)
	}
	return m
}

// multiOpts describes one multi-model test server.
type multiOpts struct {
	seq    baselines.SeqServer // registered when non-nil
	abFrac float64             // SetAB("STRNN", abFrac) when > 0
	shadow string              // SetShadow when non-empty
}

func newMultiServer(t *testing.T, mo multiOpts) (*Server, *httptest.Server, *registry.Registry) {
	t.Helper()
	reg := registry.New()
	if mo.seq != nil {
		if err := reg.Register(registry.NewSeqScorer(mo.seq, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if mo.abFrac > 0 {
		if err := reg.SetAB("STRNN", mo.abFrac); err != nil {
			t.Fatal(err)
		}
	}
	if mo.shadow != "" {
		if err := reg.SetShadow(mo.shadow); err != nil {
			t.Fatal(err)
		}
	}
	opts := Options{Registry: reg, Online: quickOnline()}
	srv, err := New(fitRecommender(t, 21), opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs, reg
}

func postNext(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

const nextBody = `{"checkins":[{"poi":1,"t":0},{"poi":7,"t":3},{"poi":2,"t":5}]}`

func TestNextEndpoint(t *testing.T) {
	rec := fitRecommender(t, 21)
	seq := fitSeqModel(t, rec, "STRNN", 21)
	_, hs, _ := newMultiServer(t, multiOpts{seq: seq})

	resp, data := postNext(t, hs.URL+"/v1/next?user=3&n=5", nextBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Cache") != "MISS" || resp.Header.Get("X-Model") != "STRNN" {
		t.Fatalf("headers X-Cache=%q X-Model=%q", resp.Header.Get("X-Cache"), resp.Header.Get("X-Model"))
	}
	var got nextResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	// t defaults to the last check-in's time unit.
	if got.User != 3 || got.T != 5 || got.Model != "STRNN" || got.Generation != 1 {
		t.Fatalf("identity fields %+v", got)
	}
	if len(got.Results) != 5 {
		t.Fatalf("got %d results, want 5", len(got.Results))
	}

	// Scores must equal the model's own NextTopN output exactly.
	want, err := seq.NextTopN(3, []baselines.Visit{
		{POI: 1, TimeIndex: 0}, {POI: 7, TimeIndex: 3}, {POI: 2, TimeIndex: 5},
	}, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].POI != got.Results[i].POI || want[i].Score != got.Results[i].Score {
			t.Fatalf("result %d: handler (%d,%v) != model (%d,%v)",
				i, got.Results[i].POI, got.Results[i].Score, want[i].POI, want[i].Score)
		}
	}

	// Cached repeat must be byte-identical.
	resp2, data2 := postNext(t, hs.URL+"/v1/next?user=3&n=5", nextBody)
	if resp2.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("second request X-Cache = %q, want HIT", resp2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("cache HIT bytes differ from MISS bytes")
	}

	// Validation errors are 400s with JSON bodies.
	for _, tc := range []struct{ url, body, wantSub string }{
		{"/v1/next?user=3", `{"checkins":[]}`, "no checkins"},
		{"/v1/next?user=3", `{`, "decoding body"},
		{"/v1/next?user=3", `{"checkins":[{"poi":999,"t":0}]}`, "out of range"},
		{"/v1/next?user=3", `{"checkins":[{"poi":1,"t":99}]}`, "out of range"},
		{"/v1/next?user=999", nextBody, "out of range"},
		{"/v1/next?user=3&t=99", nextBody, "out of range"},
	} {
		resp, data := postNext(t, hs.URL+tc.url, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.url, resp.StatusCode)
		}
		var eb errorBody
		if err := json.Unmarshal(data, &eb); err != nil || !strings.Contains(eb.Error, tc.wantSub) {
			t.Fatalf("%s: error body %q (err %v), want %q", tc.url, data, err, tc.wantSub)
		}
	}
}

func TestModelRoutingTable(t *testing.T) {
	rec := fitRecommender(t, 21)
	seq := fitSeqModel(t, rec, "STRNN", 21)
	_, hs, _ := newMultiServer(t, multiOpts{seq: seq})

	cases := []struct {
		name       string
		method     string
		url        string
		wantStatus int
		wantModel  string // X-Model when 200
	}{
		{"recommend default", "GET", "/v1/recommend?user=2&t=1&n=3", 200, "tcss"},
		{"recommend override tcss", "GET", "/v1/recommend?user=2&t=1&n=3&model=tcss", 200, "tcss"},
		{"recommend override seq", "GET", "/v1/recommend?user=2&t=1&n=3&model=STRNN", 200, "STRNN"},
		{"recommend unknown model", "GET", "/v1/recommend?user=2&t=1&n=3&model=nope", 404, ""},
		{"next default", "POST", "/v1/next?user=2&n=3", 200, "STRNN"},
		{"next override seq", "POST", "/v1/next?user=2&n=3&model=STRNN", 200, "STRNN"},
		{"next unknown model", "POST", "/v1/next?user=2&n=3&model=nope", 404, ""},
		{"next non-sequential model", "POST", "/v1/next?user=2&n=3&model=tcss", 400, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var data []byte
			if tc.method == "GET" {
				r, err := http.Get(hs.URL + tc.url)
				if err != nil {
					t.Fatal(err)
				}
				defer r.Body.Close()
				data, _ = io.ReadAll(r.Body)
				resp = r
			} else {
				resp, data = postNext(t, hs.URL+tc.url, nextBody)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.wantStatus, data)
			}
			if tc.wantStatus == 200 && resp.Header.Get("X-Model") != tc.wantModel {
				t.Fatalf("X-Model = %q, want %q", resp.Header.Get("X-Model"), tc.wantModel)
			}
			if tc.wantStatus != 200 {
				// Error responses must be the JSON envelope, not a bare 500.
				var eb errorBody
				if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
					t.Fatalf("error body %q not a JSON error envelope (err %v)", data, err)
				}
			}
		})
	}
}

func TestUnfittedModelAnswers503(t *testing.T) {
	unfitted, _ := baselines.SeqLookup("STRNN")
	_, hs, _ := newMultiServer(t, multiOpts{seq: unfitted})

	r, err := http.Get(hs.URL + "/v1/recommend?user=2&t=1&n=3&model=STRNN")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("recommend on unfitted model: status %d, want 503 (%s)", r.StatusCode, data)
	}
	var eb errorBody
	if err := json.Unmarshal(data, &eb); err != nil || eb.Error == "" {
		t.Fatalf("503 body %q not a JSON error envelope", data)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	resp, data := postNext(t, hs.URL+"/v1/next?user=2&n=3", nextBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("next on unfitted model: status %d, want 503 (%s)", resp.StatusCode, data)
	}

	// The failures are attributed to the model in /metrics.
	var met metricsSnapshot
	getJSON(t, hs.URL+"/metrics", &met)
	if met.ModelNotReady != 2 {
		t.Fatalf("model_not_ready_503 = %d, want 2", met.ModelNotReady)
	}
	for _, ms := range met.Models {
		if ms.Name == "STRNN" && ms.NotReady != 2 {
			t.Fatalf("STRNN not_ready = %d, want 2", ms.NotReady)
		}
	}
}

func TestABRoutingDeterministicAcrossServers(t *testing.T) {
	rec := fitRecommender(t, 21)
	build := func() (*httptest.Server, *registry.Registry) {
		_, hs, reg := newMultiServer(t, multiOpts{seq: fitSeqModel(t, rec, "STRNN", 21), abFrac: 0.5})
		return hs, reg
	}
	hs1, _ := build()
	hs2, _ := build()

	armOf := func(hs *httptest.Server, user int) string {
		r, err := http.Get(fmt.Sprintf("%s/v1/recommend?user=%d&t=1&n=3", hs.URL, user))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != 200 {
			t.Fatalf("user %d: status %d", user, r.StatusCode)
		}
		return r.Header.Get("X-Model")
	}
	seen := map[string]bool{}
	for user := 0; user < 40; user++ {
		m1 := armOf(hs1, user)
		// Same user, same server, repeated: stable.
		if m2 := armOf(hs1, user); m2 != m1 {
			t.Fatalf("user %d: arm flapped %q -> %q", user, m1, m2)
		}
		// Same user on a separately constructed server ("restart" or another
		// replica): same arm.
		if m3 := armOf(hs2, user); m3 != m1 {
			t.Fatalf("user %d: arm differs across instances %q vs %q", user, m1, m3)
		}
		seen[m1] = true
	}
	if !seen["tcss"] || !seen["STRNN"] {
		t.Fatalf("both arms must serve traffic, saw %v", seen)
	}
}

// TestShadowNeverAltersResponse runs the same query mix against a shadowed
// server and an unshadowed twin (identical seeds and training) concurrently
// and requires byte-identical responses. Run under -race this also proves the
// shadow goroutines never touch response state.
func TestShadowNeverAltersResponse(t *testing.T) {
	rec := fitRecommender(t, 21)
	_, hsShadow, reg := newMultiServer(t, multiOpts{seq: fitSeqModel(t, rec, "STRNN", 21), shadow: "STRNN"})
	_, hsPlain, _ := newMultiServer(t, multiOpts{seq: fitSeqModel(t, rec, "STRNN", 21)})

	fetch := func(base string, user, k int) []byte {
		r, err := http.Get(fmt.Sprintf("%s/v1/recommend?user=%d&t=%d&n=5", base, user, k))
		if err != nil {
			t.Error(err)
			return nil
		}
		defer r.Body.Close()
		data, _ := io.ReadAll(r.Body)
		if r.StatusCode != 200 {
			t.Errorf("user %d t %d: status %d", user, k, r.StatusCode)
		}
		return data
	}

	var wg sync.WaitGroup
	for user := 0; user < 20; user++ {
		for k := 0; k < 4; k++ {
			wg.Add(1)
			go func(user, k int) {
				defer wg.Done()
				a := fetch(hsShadow.URL, user, k)
				b := fetch(hsPlain.URL, user, k)
				if !bytes.Equal(a, b) {
					t.Errorf("user %d t %d: shadowed response differs from twin:\n%s\nvs\n%s", user, k, a, b)
				}
			}(user, k)
		}
	}
	wg.Wait()
	reg.DrainShadows()

	stats, info := reg.Stats()
	if info.Shadow != "STRNN" {
		t.Fatalf("routing info %+v", info)
	}
	var scored int64
	var agree float64
	for _, ms := range stats {
		if ms.Name == "STRNN" {
			scored = ms.Shadow.Scored
			agree = ms.Shadow.AgreementAvg
		}
	}
	if scored == 0 {
		t.Fatal("shadow scored nothing")
	}
	if agree < 0 || agree > 1 {
		t.Fatalf("shadow agreement %g outside [0,1]", agree)
	}
}

// TestNextStateRoundTripServing is the serving half of the persistence
// satellite: a server over a loaded sequential state must answer /v1/next
// byte-identically to the server over the originally fitted model.
func TestNextStateRoundTripServing(t *testing.T) {
	rec := fitRecommender(t, 21)
	fitted := fitSeqModel(t, rec, "STRNN", 21)
	path := filepath.Join(t.TempDir(), "strnn.state")
	if err := baselines.SaveSeqState(nil, path, 1, 1, fitted); err != nil {
		t.Fatal(err)
	}
	loaded, gen, err := baselines.LoadSeqState(path, rec.Side.Dist)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("loaded generation %d, want 1", gen)
	}

	_, hsA, _ := newMultiServer(t, multiOpts{seq: fitted})
	_, hsB, _ := newMultiServer(t, multiOpts{seq: loaded})
	for user := 0; user < 10; user++ {
		url := fmt.Sprintf("/v1/next?user=%d&n=7", user)
		_, a := postNext(t, hsA.URL+url, nextBody)
		_, b := postNext(t, hsB.URL+url, nextBody)
		if !bytes.Equal(a, b) {
			t.Fatalf("user %d: loaded-state response differs:\n%s\nvs\n%s", user, a, b)
		}
	}
}

func TestMetricsModelBlocks(t *testing.T) {
	rec := fitRecommender(t, 21)
	_, hs, _ := newMultiServer(t, multiOpts{seq: fitSeqModel(t, rec, "STRNN", 21), abFrac: 0.5, shadow: "STRNN"})

	for user := 0; user < 12; user++ {
		r, err := http.Get(fmt.Sprintf("%s/v1/recommend?user=%d&t=1&n=3", hs.URL, user))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		resp, _ := postNext(t, fmt.Sprintf("%s/v1/next?user=%d&n=3", hs.URL, user), nextBody)
		if resp.StatusCode != 200 {
			t.Fatalf("next user %d: status %d", user, resp.StatusCode)
		}
	}

	var met metricsSnapshot
	getJSON(t, hs.URL+"/metrics", &met)
	if met.Routing.Primary != "tcss" || met.Routing.ABModel != "STRNN" || met.Routing.ABFracB != 0.5 ||
		met.Routing.Shadow != "STRNN" || met.Routing.NextDefault != "STRNN" {
		t.Fatalf("routing block %+v", met.Routing)
	}
	if met.Next.Count != 12 {
		t.Fatalf("next count = %d, want 12", met.Next.Count)
	}
	byName := map[string]registry.ModelStats{}
	for _, ms := range met.Models {
		byName[ms.Name] = ms
	}
	if len(byName) != 2 {
		t.Fatalf("models block has %d entries: %+v", len(byName), met.Models)
	}
	if byName["tcss"].Requests == 0 || byName["STRNN"].Requests == 0 {
		t.Fatalf("both arms must have served recommends: %+v", met.Models)
	}
	if byName["STRNN"].NextRequests != 12 {
		t.Fatalf("STRNN next_requests = %d, want 12", byName["STRNN"].NextRequests)
	}
	if byName["STRNN"].NextP99ms <= 0 {
		t.Fatalf("STRNN next p99 = %g, want > 0", byName["STRNN"].NextP99ms)
	}
}
