package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"tcss/internal/core"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"zero value", Options{}, true},
		{"defaults", DefaultOptions(), true},
		{"coalesce with defaults", Options{Coalesce: true}, true},
		{"coalesce tuned", Options{Coalesce: true, CoalesceWindow: time.Millisecond, CoalesceBatch: 8}, true},
		{"batch 0 means default", Options{Coalesce: true, CoalesceBatch: 0}, true},
		{"negative window", Options{CoalesceWindow: -time.Microsecond}, false},
		{"negative batch", Options{CoalesceBatch: -3}, false},
		{"batch of one", Options{CoalesceBatch: 1}, false},
		{"window at timeout", Options{Coalesce: true, RequestTimeout: time.Second, CoalesceWindow: time.Second}, false},
		{"window above default timeout", Options{Coalesce: true, CoalesceWindow: 3 * time.Second}, false},
		{"long window ignored when off", Options{Coalesce: false, CoalesceWindow: 3 * time.Second}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.ok && err != nil {
				t.Fatalf("want valid, got %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("want validation error, got nil")
			}
		})
	}
	// New must surface the same rejection.
	if _, err := New(fitRecommender(t, 21), Options{CoalesceBatch: -1}); err == nil {
		t.Fatal("New must reject invalid coalescing options")
	}
}

// TestCoalesceBatchesForm drives concurrent requests into a wide window and
// checks batches actually form: /metrics must report every request travelling
// through the coalescer and at least one multi-request batch.
func TestCoalesceBatchesForm(t *testing.T) {
	srv, hs := newTestServer(t, Options{
		Coalesce:       true,
		CoalesceWindow: 100 * time.Millisecond,
		CoalesceBatch:  4,
		CacheSize:      -1, // every request must reach the coalescer
		// Coalesced requests hold admission slots for up to the window;
		// give all 8 concurrent requests slots regardless of GOMAXPROCS.
		MaxInflight: 16,
		MaxQueue:    16,
	})
	defer hs.Close()

	model := srv.snap.load().Model
	const reqs = 8
	var wg sync.WaitGroup
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/v1/recommend?user=%d&t=%d&n=5", hs.URL, i%model.I, (i/2)%model.K)
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	var m metricsSnapshot
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if !m.Coalesce.Enabled {
		t.Fatal("metrics must report coalescing enabled")
	}
	if m.Coalesce.Requests != reqs {
		t.Fatalf("coalesced requests = %d, want %d", m.Coalesce.Requests, reqs)
	}
	if m.Coalesce.Batches < 1 || m.Coalesce.Batches > reqs {
		t.Fatalf("batches = %d, want within [1, %d]", m.Coalesce.Batches, reqs)
	}
	var histTotal int64
	for _, b := range m.Coalesce.BatchSizes {
		histTotal += b.Count
	}
	if histTotal != m.Coalesce.Batches {
		t.Fatalf("histogram sums to %d batches, counter says %d", histTotal, m.Coalesce.Batches)
	}
	if m.Coalesce.MaxBatch != 4 || m.Coalesce.WindowUs != 100_000 {
		t.Fatalf("coalesce config in metrics = max %d window %.0fµs", m.Coalesce.MaxBatch, m.Coalesce.WindowUs)
	}
	if m.Model.Storage != "f64" || m.Model.FactorBytes <= 0 || m.Model.BytesPerUser <= 0 {
		t.Fatalf("model metrics = %+v", m.Model)
	}
}

// TestCoalescedConcurrentReadersBitIdentical is the coalesced twin of
// TestConcurrentReadersObserveWriter: readers hammer /v1/recommend through
// the batching path while observe batches swap snapshot generations, and
// under -race every response must be reproducible bit for bit by running
// TopNScratch against the snapshot published at the generation the response
// reports — the coalescer's core contract.
func TestCoalescedConcurrentReadersBitIdentical(t *testing.T) {
	srv, err := New(fitRecommender(t, 21), Options{
		Online:         quickOnline(),
		Coalesce:       true,
		CoalesceWindow: 150 * time.Microsecond,
		CoalesceBatch:  5,
		CacheSize:      -1, // force every response through a live batch
		// Coalesced requests hold their admission slot for the whole window,
		// so give the readers explicit headroom instead of relying on the
		// GOMAXPROCS-derived default.
		MaxInflight: 32,
		MaxQueue:    64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var (
		mu    sync.Mutex
		byGen = map[uint64]*Snapshot{}
	)
	first := srv.snap.load()
	byGen[first.Gen] = first
	srv.onSwap = func(snap *Snapshot) {
		mu.Lock()
		byGen[snap.Gen] = snap
		mu.Unlock()
	}

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	snapshotFor := func(gen uint64) *Snapshot {
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			snap := byGen[gen]
			mu.Unlock()
			if snap != nil || time.Now().After(deadline) {
				return snap
			}
			time.Sleep(time.Millisecond)
		}
	}

	const (
		readers  = 9
		batches  = 3
		perBatch = 2
		topN     = 6
	)
	cells := freshCells(t, srv, batches*perBatch)
	model := first.Model

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sc := core.NewRecScratch(model)
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				user := (r*7 + i) % model.I
				tu := (r + i) % model.K
				var got recommendResponse
				url := fmt.Sprintf("%s/v1/recommend?user=%d&t=%d&n=%d", hs.URL, user, tu, topN)
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close()
					t.Errorf("reader %d: status %d", r, resp.StatusCode)
					return
				}
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					t.Errorf("reader %d: decoding %s: %v", r, url, err)
					return
				}
				snap := snapshotFor(got.Generation)
				if snap == nil {
					t.Errorf("reader %d: response claims unknown generation %d", r, got.Generation)
					return
				}
				want := snap.Model.TopNScratch(user, tu, topN, snap.Side.OwnPOIs[user], sc)
				if len(want) != len(got.Results) {
					t.Errorf("reader %d gen %d: %d results, recompute gives %d",
						r, got.Generation, len(got.Results), len(want))
					return
				}
				for p := range want {
					if want[p].POI != got.Results[p].POI || want[p].Score != got.Results[p].Score {
						t.Errorf("reader %d gen %d user %d t %d rank %d: got %+v, recompute %+v",
							r, got.Generation, user, tu, p, got.Results[p], want[p])
						return
					}
				}
			}
		}(r)
	}

	for b := 0; b < batches; b++ {
		batch := cells[b*perBatch : (b+1)*perBatch]
		resp, out := postObserve(t, hs.URL, observeRequest{CheckIns: batch})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe batch %d: status %d", b, resp.StatusCode)
		}
		if out.Added == 0 {
			t.Fatalf("observe batch %d added no cells", b)
		}
		// Let readers churn between generation swaps so batches execute on
		// several distinct snapshots.
		time.Sleep(5 * time.Millisecond)
	}
	close(done)
	wg.Wait()

	if got := srv.Generation(); got != batches {
		t.Fatalf("final generation %d, want %d", got, batches)
	}
	if srv.met.coalesceBatches.Load() == 0 || srv.met.coalesceRequests.Load() == 0 {
		t.Fatal("no requests travelled through the coalescer")
	}
}
