package serve

import (
	"tcss/internal/core"
	"tcss/internal/registry"
)

// Scorer is the model seam the read path routes through — re-exported from
// internal/registry, where it lives so the registry never has to import the
// server. Anything implementing it (the TCSS snapshot adapter below, the
// sequential baselines via registry.SeqScorer, future AirCP/BPTF adapters) is
// servable behind /v1/recommend, and NextScorers additionally behind
// /v1/next.
type Scorer = registry.Scorer

// NextScorer is re-exported alongside Scorer.
type NextScorer = registry.NextScorer

// snapshotScorer adapts the server's own snapshot path — atomic snapshot
// load, pooled scratch or the request coalescer — to the Scorer interface.
// It is registered as the registry's primary model, so the default routing
// behaves exactly like the single-model server did: same scoring path, same
// bytes.
type snapshotScorer struct {
	s    *Server
	name string
}

// Name implements Scorer.
func (t *snapshotScorer) Name() string { return t.name }

// Generation implements Scorer.
func (t *snapshotScorer) Generation() uint64 { return t.s.snap.load().Gen }

// Dims implements Scorer.
func (t *snapshotScorer) Dims() (int, int, int) {
	snap := t.s.snap.load()
	return snap.Model.I, snap.Model.J, snap.Model.K
}

// Recommend implements Scorer. With coalescing enabled the request joins the
// pending batch and reports the generation of the snapshot the batch executed
// on; otherwise it scores the current snapshot with pooled scratch. Both are
// bit-identical to the pre-registry request path.
func (t *snapshotScorer) Recommend(user, tIdx, n int) ([]core.Recommendation, uint64, error) {
	if t.s.coal != nil {
		recs, esnap := t.s.coal.do(user, tIdx, n)
		return recs, esnap.Gen, nil
	}
	snap := t.s.snap.load()
	sc := t.s.getScratch()
	recs := snap.Model.TopNScratch(user, tIdx, n, snap.Side.OwnPOIs[user], sc)
	t.s.putScratch(sc)
	return recs, snap.Gen, nil
}
