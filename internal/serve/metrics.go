package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyRing keeps the last ringSize request latencies per request class and
// computes percentiles over that window on scrape. A bounded window keeps
// /metrics O(1) in memory over arbitrarily long uptimes while still tracking
// the current tail behaviour.
const ringSize = 4096

type latencyRing struct {
	mu    sync.Mutex
	buf   [ringSize]float64 // milliseconds
	next  int
	count int64 // total observations ever
}

func (r *latencyRing) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	r.buf[r.next] = ms
	r.next = (r.next + 1) % ringSize
	r.count++
	r.mu.Unlock()
}

// percentiles returns the p50/p95/p99 of the current window in milliseconds,
// or zeros when empty.
func (r *latencyRing) percentiles() (p50, p95, p99 float64) {
	r.mu.Lock()
	n := int(r.count)
	if n > ringSize {
		n = ringSize
	}
	window := make([]float64, n)
	copy(window, r.buf[:n])
	r.mu.Unlock()
	if n == 0 {
		return 0, 0, 0
	}
	sort.Float64s(window)
	at := func(p float64) float64 {
		idx := int(p*float64(n)) - 1
		if idx < 0 {
			idx = 0
		}
		return window[idx]
	}
	return at(0.50), at(0.95), at(0.99)
}

// metrics aggregates the server's observability counters. All counters are
// atomics so the request path never takes a lock beyond the latency ring's.
type metrics struct {
	start time.Time

	recommendTotal atomic.Int64
	explainTotal   atomic.Int64
	observeTotal   atomic.Int64

	badRequest     atomic.Int64 // 400s
	shed           atomic.Int64 // 503s from admission or observe queue
	deadlineMissed atomic.Int64 // 504s
	internalErrors atomic.Int64 // 500s
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	observeApplied atomic.Int64 // observe batches that swapped a snapshot
	observeNoop    atomic.Int64 // observe batches with no new cells
	observeAdded   atomic.Int64 // total new tensor cells folded in
	snapshotSwaps  atomic.Int64
	snapshotSaves  atomic.Int64

	// Reliability counters, all monotonic: write-path failures, snapshot
	// save retries/failures, circuit-breaker transitions, and loads the
	// checksum rejected.
	observeFailures   atomic.Int64 // observes that errored (injected or real)
	saveFailures      atomic.Int64 // saves that failed after all retries
	saveRetries       atomic.Int64 // individual save retry attempts
	breakerTrips      atomic.Int64 // closed/half-open -> open transitions
	breakerRecoveries atomic.Int64 // open/half-open -> closed transitions
	breakerRejected   atomic.Int64 // writes rejected while open
	checksumRejected  atomic.Int64 // read-backs that failed the CRC frame

	// Coalescing counters: batches executed, requests that travelled in
	// them, and a batch-size histogram (buckets per coalesceBucket).
	coalesceBatches  atomic.Int64
	coalesceRequests atomic.Int64
	coalesceHist     [len(coalesceBucketLabels)]atomic.Int64

	recommendLat latencyRing
	explainLat   latencyRing
	observeLat   latencyRing
}

// coalesceBucketCount is one batch-size histogram bucket in /metrics,
// serialized as an ordered list so bucket order survives JSON encoding.
type coalesceBucketCount struct {
	Bucket string `json:"bucket"`
	Count  int64  `json:"count"`
}

// routeStats is the per-request-class block of the /metrics document.
type routeStats struct {
	Count int64   `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
}

// metricsSnapshot is the JSON document served by GET /metrics.
type metricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	Recommend routeStats `json:"recommend"`
	Explain   routeStats `json:"explain"`
	Observe   routeStats `json:"observe"`

	BadRequests    int64 `json:"bad_requests"`
	Shed           int64 `json:"shed_503"`
	DeadlineMissed int64 `json:"deadline_504"`
	InternalErrors int64 `json:"internal_500"`

	Cache struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
		Entries int     `json:"entries"`
	} `json:"cache"`

	Snapshot struct {
		Generation uint64  `json:"generation"`
		AgeSeconds float64 `json:"age_seconds"`
		Swaps      int64   `json:"swaps"`
		Saves      int64   `json:"saves"`
	} `json:"snapshot"`

	// Model reports the resident factor storage of the served snapshot:
	// the storage mode, total factor bytes (slabs + scales + core weights),
	// and bytes per user — the capacity-planning number the compact modes
	// exist to shrink.
	Model struct {
		Storage      string  `json:"storage"`
		FactorBytes  int64   `json:"factor_bytes"`
		BytesPerUser float64 `json:"bytes_per_user"`
	} `json:"model"`

	// Coalesce reports the request-batching pipeline: whether it is on, how
	// many batches ran, how many requests travelled in them, the mean batch
	// size, and a batch-size histogram. Mean sizes near 1 mean the window is
	// too short (or load too light) for requests to share slab passes.
	Coalesce struct {
		Enabled      bool                  `json:"enabled"`
		WindowUs     float64               `json:"window_us"`
		MaxBatch     int                   `json:"max_batch"`
		Batches      int64                 `json:"batches"`
		Requests     int64                 `json:"requests"`
		AvgBatchSize float64               `json:"avg_batch_size"`
		BatchSizes   []coalesceBucketCount `json:"batch_size_counts"`
	} `json:"coalesce"`

	ObserveStats struct {
		Applied    int64 `json:"applied"`
		Noop       int64 `json:"noop"`
		CellsAdded int64 `json:"cells_added"`
		QueueCap   int   `json:"queue_capacity"`
		QueueLen   int   `json:"queue_length"`
	} `json:"observe_pipeline"`

	Admission struct {
		Inflight    int64 `json:"inflight"`
		Queued      int64 `json:"queued"`
		MaxInflight int   `json:"max_inflight"`
		MaxQueue    int   `json:"max_queue"`
	} `json:"admission"`

	Reliability struct {
		ObserveFailures       int64  `json:"observe_failures"`
		SaveFailures          int64  `json:"save_failures"`
		SaveRetries           int64  `json:"save_retries"`
		BreakerState          string `json:"breaker_state"`
		BreakerTrips          int64  `json:"breaker_trips"`
		BreakerRecoveries     int64  `json:"breaker_recoveries"`
		BreakerRejected       int64  `json:"breaker_rejected"`
		ChecksumRejectedLoads int64  `json:"checksum_rejected_loads"`
	} `json:"reliability"`
}

func (s *Server) collectMetrics() metricsSnapshot {
	m := s.met
	var out metricsSnapshot
	out.UptimeSeconds = s.opts.now().Sub(m.start).Seconds()

	fill := func(dst *routeStats, total *atomic.Int64, ring *latencyRing) {
		dst.Count = total.Load()
		dst.P50ms, dst.P95ms, dst.P99ms = ring.percentiles()
	}
	fill(&out.Recommend, &m.recommendTotal, &m.recommendLat)
	fill(&out.Explain, &m.explainTotal, &m.explainLat)
	fill(&out.Observe, &m.observeTotal, &m.observeLat)

	out.BadRequests = m.badRequest.Load()
	out.Shed = m.shed.Load()
	out.DeadlineMissed = m.deadlineMissed.Load()
	out.InternalErrors = m.internalErrors.Load()

	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	out.Cache.Hits, out.Cache.Misses = hits, misses
	if hits+misses > 0 {
		out.Cache.HitRate = float64(hits) / float64(hits+misses)
	}
	out.Cache.Entries = s.cache.len()

	if snap := s.snap.load(); snap != nil {
		out.Snapshot.Generation = snap.Gen
		out.Snapshot.AgeSeconds = s.opts.now().Sub(snap.Created).Seconds()
		out.Model.Storage = snap.Model.Mode.String()
		out.Model.FactorBytes = snap.Model.FactorBytes()
		if snap.Model.I > 0 {
			out.Model.BytesPerUser = float64(out.Model.FactorBytes) / float64(snap.Model.I)
		}
	}
	out.Snapshot.Swaps = m.snapshotSwaps.Load()
	out.Snapshot.Saves = m.snapshotSaves.Load()

	out.Coalesce.Enabled = s.coal != nil
	if s.coal != nil {
		out.Coalesce.WindowUs = float64(s.coal.window) / float64(time.Microsecond)
		out.Coalesce.MaxBatch = s.coal.maxBatch
	}
	out.Coalesce.Batches = m.coalesceBatches.Load()
	out.Coalesce.Requests = m.coalesceRequests.Load()
	if out.Coalesce.Batches > 0 {
		out.Coalesce.AvgBatchSize = float64(out.Coalesce.Requests) / float64(out.Coalesce.Batches)
	}
	out.Coalesce.BatchSizes = make([]coalesceBucketCount, len(coalesceBucketLabels))
	for i, label := range coalesceBucketLabels {
		out.Coalesce.BatchSizes[i] = coalesceBucketCount{Bucket: label, Count: m.coalesceHist[i].Load()}
	}

	out.ObserveStats.Applied = m.observeApplied.Load()
	out.ObserveStats.Noop = m.observeNoop.Load()
	out.ObserveStats.CellsAdded = m.observeAdded.Load()
	out.ObserveStats.QueueCap = cap(s.cmds)
	out.ObserveStats.QueueLen = len(s.cmds)

	out.Admission.Inflight = s.adm.inflight.Load()
	out.Admission.Queued = s.adm.waiting.Load()
	out.Admission.MaxInflight = s.adm.maxInflight
	out.Admission.MaxQueue = s.adm.maxQueue

	out.Reliability.ObserveFailures = m.observeFailures.Load()
	out.Reliability.SaveFailures = m.saveFailures.Load()
	out.Reliability.SaveRetries = m.saveRetries.Load()
	out.Reliability.BreakerState, _, _ = s.brk.status()
	out.Reliability.BreakerTrips = m.breakerTrips.Load()
	out.Reliability.BreakerRecoveries = m.breakerRecoveries.Load()
	out.Reliability.BreakerRejected = m.breakerRejected.Load()
	out.Reliability.ChecksumRejectedLoads = m.checksumRejected.Load()
	return out
}
