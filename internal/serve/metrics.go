package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tcss/internal/registry"
)

// latencyRing keeps the last ringSize request latencies per request class and
// computes percentiles over that window on scrape. A bounded window keeps
// /metrics O(1) in memory over arbitrarily long uptimes while still tracking
// the current tail behaviour.
const ringSize = 4096

type latencyRing struct {
	mu    sync.Mutex
	buf   [ringSize]float64 // milliseconds
	next  int
	count int64 // total observations ever
}

func (r *latencyRing) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	r.buf[r.next] = ms
	r.next = (r.next + 1) % ringSize
	r.count++
	r.mu.Unlock()
}

// window copies out the ring's current contents (up to ringSize samples, in
// no particular order). The gateway scrapes these raw windows from every
// shard to compute cluster-wide percentiles — percentiles of merged samples,
// which per-shard percentiles cannot be combined into.
func (r *latencyRing) window() []float64 {
	r.mu.Lock()
	n := int(r.count)
	if n > ringSize {
		n = ringSize
	}
	out := make([]float64, n)
	copy(out, r.buf[:n])
	r.mu.Unlock()
	return out
}

// percentiles returns the p50/p95/p99 of the current window in milliseconds,
// or zeros when empty.
func (r *latencyRing) percentiles() (p50, p95, p99 float64) {
	window := r.window()
	n := len(window)
	if n == 0 {
		return 0, 0, 0
	}
	sort.Float64s(window)
	at := func(p float64) float64 {
		idx := int(p*float64(n)) - 1
		if idx < 0 {
			idx = 0
		}
		return window[idx]
	}
	return at(0.50), at(0.95), at(0.99)
}

// metrics aggregates the server's observability counters. All counters are
// atomics so the request path never takes a lock beyond the latency ring's.
type metrics struct {
	start time.Time

	recommendTotal atomic.Int64
	nextTotal      atomic.Int64
	explainTotal   atomic.Int64
	observeTotal   atomic.Int64

	modelNotFound atomic.Int64 // 404s from unknown ?model= names
	modelNotReady atomic.Int64 // 503s from registered-but-unfitted models

	badRequest     atomic.Int64 // 400s
	shed           atomic.Int64 // 503s from admission or observe queue
	deadlineMissed atomic.Int64 // 504s
	budgetClamped  atomic.Int64 // requests whose X-Deadline-Budget undercut RequestTimeout
	internalErrors atomic.Int64 // 500s
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	observeApplied atomic.Int64 // observe batches that swapped a snapshot
	observeNoop    atomic.Int64 // observe batches with no new cells
	observeAdded   atomic.Int64 // total new tensor cells folded in
	snapshotSwaps  atomic.Int64
	snapshotSaves  atomic.Int64

	// Open-world growth counters: user/POI rows added by observe-path growth,
	// growth batches rejected because the model is compact (503), and batches
	// rejected because growth is disabled or failed range checks (409).
	observeGrownUsers      atomic.Int64
	observeGrownPOIs       atomic.Int64
	observeRejectedCompact atomic.Int64
	observeRejectedRange   atomic.Int64

	// Reliability counters, all monotonic: write-path failures, snapshot
	// save retries/failures, circuit-breaker transitions, and loads the
	// checksum rejected.
	observeFailures   atomic.Int64 // observes that errored (injected or real)
	saveFailures      atomic.Int64 // saves that failed after all retries
	saveRetries       atomic.Int64 // individual save retry attempts
	breakerTrips      atomic.Int64 // closed/half-open -> open transitions
	breakerRecoveries atomic.Int64 // open/half-open -> closed transitions
	breakerRejected   atomic.Int64 // writes rejected while open
	checksumRejected  atomic.Int64 // read-backs that failed the CRC frame

	// Coalescing counters: batches executed, requests that travelled in
	// them, and a batch-size histogram (buckets per coalesceBucket).
	coalesceBatches  atomic.Int64
	coalesceRequests atomic.Int64
	coalesceHist     [len(coalesceBucketLabels)]atomic.Int64

	// Cluster counters: requests rejected because this node does not own the
	// user (421 — a gateway/shard ring disagreement), shipments served to
	// replicas, and the replica-side replication pipeline (publishes applied
	// by the writer, sync attempts that fetched something, failures, and
	// shipments the CRC frame rejected).
	misrouted          atomic.Int64
	shipmentsServed    atomic.Int64
	replicationApplied atomic.Int64
	replicationSyncs   atomic.Int64
	replicationFails   atomic.Int64
	replicationCRC     atomic.Int64

	recommendLat latencyRing
	nextLat      latencyRing
	explainLat   latencyRing
	observeLat   latencyRing
}

// coalesceBucketCount is one batch-size histogram bucket in /metrics,
// serialized as an ordered list so bucket order survives JSON encoding.
type coalesceBucketCount struct {
	Bucket string `json:"bucket"`
	Count  int64  `json:"count"`
}

// routeStats is the per-request-class block of the /metrics document.
type routeStats struct {
	Count int64   `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
}

// latencyWindows carries the raw per-route latency samples (milliseconds,
// bounded by the ring size) when /metrics is scraped with ?window=1. The
// gateway merges these across shards; plain scrapes omit the block.
type latencyWindows struct {
	RecommendMs []float64 `json:"recommend_ms"`
	NextMs      []float64 `json:"next_ms"`
	ExplainMs   []float64 `json:"explain_ms"`
	ObserveMs   []float64 `json:"observe_ms"`
}

// metricsSnapshot is the JSON document served by GET /metrics.
type metricsSnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Shard identifies this node inside a cluster; empty for standalone
	// deployments. Misrouted counts 421s from ring disagreements.
	Shard struct {
		Name      string `json:"name,omitempty"`
		Role      string `json:"role,omitempty"`
		Misrouted int64  `json:"misrouted"`
	} `json:"shard"`

	Recommend routeStats `json:"recommend"`
	Next      routeStats `json:"next"`
	Explain   routeStats `json:"explain"`
	Observe   routeStats `json:"observe"`

	BadRequests    int64 `json:"bad_requests"`
	Shed           int64 `json:"shed_503"`
	DeadlineMissed int64 `json:"deadline_504"`
	InternalErrors int64 `json:"internal_500"`
	ModelNotFound  int64 `json:"model_404"`
	ModelNotReady  int64 `json:"model_not_ready_503"`

	// Routing and Models are the multi-model serving blocks: the active
	// routing policy (primary, A/B split, shadow) and one stats block per
	// registered model (req/s inputs, latency percentiles, cache hits,
	// shadow agreement).
	Routing registry.RoutingInfo  `json:"routing"`
	Models  []registry.ModelStats `json:"models"`

	Cache struct {
		Hits    int64   `json:"hits"`
		Misses  int64   `json:"misses"`
		HitRate float64 `json:"hit_rate"`
		Entries int     `json:"entries"`
	} `json:"cache"`

	Snapshot struct {
		Generation uint64  `json:"generation"`
		AgeSeconds float64 `json:"age_seconds"`
		Swaps      int64   `json:"swaps"`
		Saves      int64   `json:"saves"`
	} `json:"snapshot"`

	// Replication reports the snapshot-shipping pipeline: shipments this
	// node served to replicas, and — on replicas — publishes applied, sync
	// fetches, failures, shipments rejected by the CRC frame, plus the
	// staleness view (the primary's newest advertised generation, how many
	// generations this node trails it, and the configured bound).
	Replication struct {
		ShipmentsServed   int64  `json:"shipments_served"`
		Applied           int64  `json:"applied"`
		Syncs             int64  `json:"syncs"`
		Failures          int64  `json:"failures"`
		ChecksumRejected  int64  `json:"checksum_rejected"`
		PrimaryGeneration uint64 `json:"primary_generation,omitempty"`
		GenerationLag     uint64 `json:"generation_lag,omitempty"`
		MaxGenLag         uint64 `json:"max_generation_lag,omitempty"`
	} `json:"replication"`

	// Model reports the resident factor storage of the served snapshot:
	// the storage mode, total factor bytes (slabs + scales + core weights),
	// and bytes per user — the capacity-planning number the compact modes
	// exist to shrink.
	Model struct {
		Storage      string  `json:"storage"`
		FactorBytes  int64   `json:"factor_bytes"`
		BytesPerUser float64 `json:"bytes_per_user"`
		// Users and POIs are the served snapshot's dimensions — under
		// open-world growth these rise over a node's lifetime.
		Users int `json:"users"`
		POIs  int `json:"pois"`
	} `json:"model"`

	// Coalesce reports the request-batching pipeline: whether it is on, how
	// many batches ran, how many requests travelled in them, the mean batch
	// size, and a batch-size histogram. Mean sizes near 1 mean the window is
	// too short (or load too light) for requests to share slab passes.
	Coalesce struct {
		Enabled      bool                  `json:"enabled"`
		WindowUs     float64               `json:"window_us"`
		MaxBatch     int                   `json:"max_batch"`
		Batches      int64                 `json:"batches"`
		Requests     int64                 `json:"requests"`
		AvgBatchSize float64               `json:"avg_batch_size"`
		BatchSizes   []coalesceBucketCount `json:"batch_size_counts"`
	} `json:"coalesce"`

	ObserveStats struct {
		Applied    int64 `json:"applied"`
		Noop       int64 `json:"noop"`
		CellsAdded int64 `json:"cells_added"`
		QueueCap   int   `json:"queue_capacity"`
		QueueLen   int   `json:"queue_length"`
		// Open-world growth: whether this node accepts growth batches, how
		// many user/POI rows observes have added, and the typed rejections
		// (compact storage → 503, out-of-range with growth off → 409).
		GrowEnabled        bool  `json:"grow_enabled"`
		GrownUsers         int64 `json:"observe_grown_users"`
		GrownPOIs          int64 `json:"observe_grown_pois"`
		RejectedCompact    int64 `json:"observe_rejected_compact"`
		RejectedOutOfRange int64 `json:"observe_rejected_out_of_range"`
	} `json:"observe_pipeline"`

	Admission struct {
		Inflight    int64 `json:"inflight"`
		Queued      int64 `json:"queued"`
		MaxInflight int   `json:"max_inflight"`
		MaxQueue    int   `json:"max_queue"`
		// BudgetClamped counts requests whose X-Deadline-Budget header was
		// tighter than RequestTimeout — deadline propagation in action.
		BudgetClamped int64 `json:"deadline_budget_clamped"`
	} `json:"admission"`

	Reliability struct {
		ObserveFailures       int64  `json:"observe_failures"`
		SaveFailures          int64  `json:"save_failures"`
		SaveRetries           int64  `json:"save_retries"`
		BreakerState          string `json:"breaker_state"`
		BreakerTrips          int64  `json:"breaker_trips"`
		BreakerRecoveries     int64  `json:"breaker_recoveries"`
		BreakerRejected       int64  `json:"breaker_rejected"`
		ChecksumRejectedLoads int64  `json:"checksum_rejected_loads"`
	} `json:"reliability"`

	// Windows is present only when /metrics is scraped with ?window=1: the
	// raw latency samples behind the percentiles above, for cross-shard
	// percentile merging at the gateway.
	Windows *latencyWindows `json:"windows,omitempty"`
}

// collectMetrics snapshots every counter into the /metrics document.
// includeWindows additionally copies out the raw latency rings, which is
// ~3×ringSize float64s of allocation — opt-in for gateway scrapes only.
func (s *Server) collectMetrics(includeWindows bool) metricsSnapshot {
	m := s.met
	var out metricsSnapshot
	out.UptimeSeconds = s.opts.now().Sub(m.start).Seconds()

	fill := func(dst *routeStats, total *atomic.Int64, ring *latencyRing) {
		dst.Count = total.Load()
		dst.P50ms, dst.P95ms, dst.P99ms = ring.percentiles()
	}
	fill(&out.Recommend, &m.recommendTotal, &m.recommendLat)
	fill(&out.Next, &m.nextTotal, &m.nextLat)
	fill(&out.Explain, &m.explainTotal, &m.explainLat)
	fill(&out.Observe, &m.observeTotal, &m.observeLat)

	out.Models, out.Routing = s.reg.Stats()

	out.Shard.Name = s.opts.ShardName
	out.Shard.Role = s.opts.Role
	out.Shard.Misrouted = m.misrouted.Load()

	out.Replication.ShipmentsServed = m.shipmentsServed.Load()
	out.Replication.Applied = m.replicationApplied.Load()
	out.Replication.Syncs = m.replicationSyncs.Load()
	out.Replication.Failures = m.replicationFails.Load()
	out.Replication.ChecksumRejected = m.replicationCRC.Load()
	out.Replication.PrimaryGeneration = s.primaryGen.Load()
	out.Replication.MaxGenLag = s.opts.MaxGenLag

	if includeWindows {
		out.Windows = &latencyWindows{
			RecommendMs: m.recommendLat.window(),
			NextMs:      m.nextLat.window(),
			ExplainMs:   m.explainLat.window(),
			ObserveMs:   m.observeLat.window(),
		}
	}

	out.BadRequests = m.badRequest.Load()
	out.Shed = m.shed.Load()
	out.DeadlineMissed = m.deadlineMissed.Load()
	out.InternalErrors = m.internalErrors.Load()
	out.ModelNotFound = m.modelNotFound.Load()
	out.ModelNotReady = m.modelNotReady.Load()

	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	out.Cache.Hits, out.Cache.Misses = hits, misses
	if hits+misses > 0 {
		out.Cache.HitRate = float64(hits) / float64(hits+misses)
	}
	out.Cache.Entries = s.cache.len()

	if snap := s.snap.load(); snap != nil {
		out.Snapshot.Generation = snap.Gen
		out.Replication.GenerationLag = s.genLag(snap.Gen)
		out.Snapshot.AgeSeconds = s.opts.now().Sub(snap.Created).Seconds()
		out.Model.Storage = snap.Model.Mode.String()
		out.Model.FactorBytes = snap.Model.FactorBytes()
		out.Model.Users = snap.Model.I
		out.Model.POIs = snap.Model.J
		if snap.Model.I > 0 {
			out.Model.BytesPerUser = float64(out.Model.FactorBytes) / float64(snap.Model.I)
		}
	}
	out.Snapshot.Swaps = m.snapshotSwaps.Load()
	out.Snapshot.Saves = m.snapshotSaves.Load()

	out.Coalesce.Enabled = s.coal != nil
	if s.coal != nil {
		out.Coalesce.WindowUs = float64(s.coal.window) / float64(time.Microsecond)
		out.Coalesce.MaxBatch = s.coal.maxBatch
	}
	out.Coalesce.Batches = m.coalesceBatches.Load()
	out.Coalesce.Requests = m.coalesceRequests.Load()
	if out.Coalesce.Batches > 0 {
		out.Coalesce.AvgBatchSize = float64(out.Coalesce.Requests) / float64(out.Coalesce.Batches)
	}
	out.Coalesce.BatchSizes = make([]coalesceBucketCount, len(coalesceBucketLabels))
	for i, label := range coalesceBucketLabels {
		out.Coalesce.BatchSizes[i] = coalesceBucketCount{Bucket: label, Count: m.coalesceHist[i].Load()}
	}

	out.ObserveStats.Applied = m.observeApplied.Load()
	out.ObserveStats.Noop = m.observeNoop.Load()
	out.ObserveStats.CellsAdded = m.observeAdded.Load()
	out.ObserveStats.QueueCap = cap(s.cmds)
	out.ObserveStats.QueueLen = len(s.cmds)
	out.ObserveStats.GrowEnabled = s.opts.Grow
	out.ObserveStats.GrownUsers = m.observeGrownUsers.Load()
	out.ObserveStats.GrownPOIs = m.observeGrownPOIs.Load()
	out.ObserveStats.RejectedCompact = m.observeRejectedCompact.Load()
	out.ObserveStats.RejectedOutOfRange = m.observeRejectedRange.Load()

	out.Admission.Inflight = s.adm.inflight.Load()
	out.Admission.Queued = s.adm.waiting.Load()
	out.Admission.MaxInflight = s.adm.maxInflight
	out.Admission.MaxQueue = s.adm.maxQueue
	out.Admission.BudgetClamped = m.budgetClamped.Load()

	out.Reliability.ObserveFailures = m.observeFailures.Load()
	out.Reliability.SaveFailures = m.saveFailures.Load()
	out.Reliability.SaveRetries = m.saveRetries.Load()
	out.Reliability.BreakerState, _, _ = s.brk.status()
	out.Reliability.BreakerTrips = m.breakerTrips.Load()
	out.Reliability.BreakerRecoveries = m.breakerRecoveries.Load()
	out.Reliability.BreakerRejected = m.breakerRejected.Load()
	out.Reliability.ChecksumRejectedLoads = m.checksumRejected.Load()
	return out
}
