package train

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"tcss/internal/opt"
)

// State is the engine's serializable position within a run: everything
// beyond the parameters themselves that a resumed run needs to continue
// bit-identically. Parameters travel separately — embedded in a Checkpoint
// for the generic format, or in the caller's own model persistence (core's
// versioned model files).
type State struct {
	// Epoch is the number of completed epochs.
	Epoch int `json:"epoch"`
	// Opt is the optimizer's moment state (Adam first/second moments and
	// per-group step counts, or SGD velocities).
	Opt opt.State `json:"opt"`
	// RNG is the engine RNG's stream position (zero-valued when the run is
	// deterministic without randomness).
	RNG RNGState `json:"rng"`
}

// CheckpointVersion is the on-disk format of the generic engine checkpoint
// written by SaveCheckpoint. Version 1 is the initial format.
const CheckpointVersion = 1

// ErrCheckpointVersion is the sentinel wrapped by LoadCheckpoint for files
// written by an incompatible build. Test with errors.Is.
var ErrCheckpointVersion = errors.New("train: unsupported checkpoint version")

// Checkpoint is the generic self-contained checkpoint: the engine state plus
// every parameter group by name. Models with their own persistence format
// (core.Model) store a State inside that format instead.
type Checkpoint struct {
	Version int `json:"version"`
	State
	Params map[string][]float64 `json:"params"`
}

// State returns the driver's current engine state. The optimizer must be
// stateful (enforced at New when checkpointing is configured).
func (d *Driver) State() State {
	st := State{Epoch: d.epoch}
	if s, ok := d.inner.(opt.Stateful); ok {
		st.Opt = s.Export()
	}
	if d.rng != nil {
		st.RNG = d.rng.State()
	}
	return st
}

// Restore repositions the driver at a previously exported State: the
// optimizer moments are imported, the RNG is fast-forwarded to its recorded
// draw count, and Run will continue from st.Epoch. The caller must have
// already restored the parameter values (LoadCheckpoint does both).
func (d *Driver) Restore(st State) error {
	if st.Epoch < 0 || st.Epoch > d.cfg.Epochs {
		return fmt.Errorf("train: checkpoint epoch %d outside run of %d epochs", st.Epoch, d.cfg.Epochs)
	}
	s, ok := d.inner.(opt.Stateful)
	if !ok {
		return fmt.Errorf("train: restore needs a stateful optimizer, got %T", d.inner)
	}
	if err := s.Import(st.Opt); err != nil {
		return err
	}
	if d.rng != nil {
		d.rng.Restore(st.RNG)
	}
	d.epoch = st.Epoch
	return nil
}

// Checkpoint captures the full generic checkpoint: the engine state plus a
// deep copy of every parameter group.
func (d *Driver) Checkpoint() Checkpoint {
	params := make(map[string][]float64)
	for _, g := range d.model.Groups() {
		params[g.Name] = append([]float64(nil), g.Value...)
	}
	return Checkpoint{Version: CheckpointVersion, State: d.State(), Params: params}
}

// SaveCheckpoint writes the generic checkpoint as JSON. float64 values
// round-trip exactly through encoding/json (shortest round-trippable
// decimal), so a restored run is bit-identical, which the resume tests
// assert.
func (d *Driver) SaveCheckpoint(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(d.Checkpoint()); err != nil {
		return fmt.Errorf("train: encoding checkpoint: %w", err)
	}
	return nil
}

// SaveCheckpointFile writes the generic checkpoint to a file, creating or
// truncating it.
func (d *Driver) SaveCheckpointFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("train: creating %s: %w", path, err)
	}
	bw := bufio.NewWriter(f)
	if err := d.SaveCheckpoint(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("train: flushing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("train: closing %s: %w", path, err)
	}
	return nil
}

// LoadCheckpoint restores a generic checkpoint into the driver: every
// parameter group is copied back by name (all groups must be present with
// matching lengths) and the engine state is restored.
func (d *Driver) LoadCheckpoint(r io.Reader) error {
	var ck Checkpoint
	if err := json.NewDecoder(r).Decode(&ck); err != nil {
		return fmt.Errorf("train: decoding checkpoint: %w", err)
	}
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("%w: file is v%d, this build reads v%d", ErrCheckpointVersion, ck.Version, CheckpointVersion)
	}
	for _, g := range d.model.Groups() {
		vals, ok := ck.Params[g.Name]
		if !ok {
			return fmt.Errorf("train: checkpoint missing parameter group %q", g.Name)
		}
		if len(vals) != len(g.Value) {
			return fmt.Errorf("train: checkpoint group %q has %d values, model wants %d", g.Name, len(vals), len(g.Value))
		}
		copy(g.Value, vals)
	}
	return d.Restore(ck.State)
}

// LoadCheckpointFile is LoadCheckpoint from a file.
func (d *Driver) LoadCheckpointFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("train: opening %s: %w", path, err)
	}
	defer f.Close()
	return d.LoadCheckpoint(bufio.NewReader(f))
}
