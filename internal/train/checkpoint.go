package train

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"tcss/internal/fault"
	"tcss/internal/opt"
)

// State is the engine's serializable position within a run: everything
// beyond the parameters themselves that a resumed run needs to continue
// bit-identically. Parameters travel separately — embedded in a Checkpoint
// for the generic format, or in the caller's own model persistence (core's
// versioned model files).
type State struct {
	// Epoch is the number of completed epochs.
	Epoch int `json:"epoch"`
	// Opt is the optimizer's moment state (Adam first/second moments and
	// per-group step counts, or SGD velocities).
	Opt opt.State `json:"opt"`
	// RNG is the engine RNG's stream position (zero-valued when the run is
	// deterministic without randomness).
	RNG RNGState `json:"rng"`
}

// CheckpointVersion is the on-disk format of the generic engine checkpoint
// written by SaveCheckpoint. Version 1 is the initial unframed format;
// version 2 seals the same document in a CRC32-C integrity frame
// (fault.WriteFramed) so torn or bit-flipped checkpoints are rejected with
// fault.ErrChecksum at load instead of being half-read. v1 files still load.
const CheckpointVersion = 2

// ErrCheckpointVersion is the sentinel wrapped by LoadCheckpoint for files
// written by an incompatible build. Test with errors.Is.
var ErrCheckpointVersion = errors.New("train: unsupported checkpoint version")

// Checkpoint is the generic self-contained checkpoint: the engine state plus
// every parameter group by name. Models with their own persistence format
// (core.Model) store a State inside that format instead.
type Checkpoint struct {
	Version int `json:"version"`
	State
	Params map[string][]float64 `json:"params"`
}

// State returns the driver's current engine state. The optimizer must be
// stateful (enforced at New when checkpointing is configured).
func (d *Driver) State() State {
	st := State{Epoch: d.epoch}
	if s, ok := d.inner.(opt.Stateful); ok {
		st.Opt = s.Export()
	}
	if d.rng != nil {
		st.RNG = d.rng.State()
	}
	return st
}

// Restore repositions the driver at a previously exported State: the
// optimizer moments are imported, the RNG is fast-forwarded to its recorded
// draw count, and Run will continue from st.Epoch. The caller must have
// already restored the parameter values (LoadCheckpoint does both).
func (d *Driver) Restore(st State) error {
	if st.Epoch < 0 || st.Epoch > d.cfg.Epochs {
		return fmt.Errorf("train: checkpoint epoch %d outside run of %d epochs", st.Epoch, d.cfg.Epochs)
	}
	s, ok := d.inner.(opt.Stateful)
	if !ok {
		return fmt.Errorf("train: restore needs a stateful optimizer, got %T", d.inner)
	}
	if err := s.Import(st.Opt); err != nil {
		return err
	}
	if d.rng != nil {
		d.rng.Restore(st.RNG)
	}
	d.epoch = st.Epoch
	return nil
}

// Checkpoint captures the full generic checkpoint: the engine state plus a
// deep copy of every parameter group.
func (d *Driver) Checkpoint() Checkpoint {
	params := make(map[string][]float64)
	for _, g := range d.model.Groups() {
		params[g.Name] = append([]float64(nil), g.Value...)
	}
	return Checkpoint{Version: CheckpointVersion, State: d.State(), Params: params}
}

// SaveCheckpoint writes the generic checkpoint as framed JSON. float64
// values round-trip exactly through encoding/json (shortest round-trippable
// decimal), so a restored run is bit-identical, which the resume tests
// assert.
func (d *Driver) SaveCheckpoint(w io.Writer) error {
	payload, err := json.Marshal(d.Checkpoint())
	if err != nil {
		return fmt.Errorf("train: encoding checkpoint: %w", err)
	}
	payload = append(payload, '\n')
	if err := fault.WriteFramed(w, CheckpointVersion, payload); err != nil {
		return fmt.Errorf("train: writing checkpoint: %w", err)
	}
	return nil
}

// SaveCheckpointFile writes the generic checkpoint to a file crash-safely
// (temp file, fsync, atomic rename).
func (d *Driver) SaveCheckpointFile(path string) error {
	return d.SaveCheckpointRotate(nil, path, 0)
}

// SaveCheckpointRotate writes the generic checkpoint crash-safely through fs
// (nil: the real filesystem), keeping up to keep rotated prior checkpoints
// (path.1 … path.keep) as a recovery fallback ladder.
func (d *Driver) SaveCheckpointRotate(fs fault.FS, path string, keep int) error {
	return fault.WriteFileRotate(fs, path, keep, d.SaveCheckpoint)
}

// LoadCheckpoint restores a generic checkpoint into the driver: every
// parameter group is copied back by name (all groups must be present with
// matching lengths) and the engine state is restored. Both the framed v2
// format and legacy unframed v1 files are accepted; a framed file failing
// its integrity check is rejected with an error wrapping fault.ErrChecksum.
func (d *Driver) LoadCheckpoint(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("train: reading checkpoint: %w", err)
	}
	version, payload, err := fault.ReadFramed(data)
	if version < 1 || version > CheckpointVersion {
		return fmt.Errorf("%w: file is v%d, this build reads v1-v%d", ErrCheckpointVersion, version, CheckpointVersion)
	}
	if err != nil {
		if errors.Is(err, fault.ErrChecksum) {
			return fmt.Errorf("train: checkpoint corrupt: %w", err)
		}
		return fmt.Errorf("train: decoding checkpoint: %w", err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		return fmt.Errorf("train: decoding checkpoint: %w", err)
	}
	if ck.Version < 1 || ck.Version > CheckpointVersion {
		return fmt.Errorf("%w: file is v%d, this build reads v1-v%d", ErrCheckpointVersion, ck.Version, CheckpointVersion)
	}
	for _, g := range d.model.Groups() {
		vals, ok := ck.Params[g.Name]
		if !ok {
			return fmt.Errorf("train: checkpoint missing parameter group %q", g.Name)
		}
		if len(vals) != len(g.Value) {
			return fmt.Errorf("train: checkpoint group %q has %d values, model wants %d", g.Name, len(vals), len(g.Value))
		}
		copy(g.Value, vals)
	}
	return d.Restore(ck.State)
}

// LoadCheckpointFile is LoadCheckpoint from a file.
func (d *Driver) LoadCheckpointFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("train: opening %s: %w", path, err)
	}
	defer f.Close()
	return d.LoadCheckpoint(bufio.NewReader(f))
}

// LoadCheckpointFallback walks the rotation ladder of a checkpoint path —
// path, path.1, … path.depth — and restores from the newest file that loads
// cleanly, returning the path it came from. Rungs that are missing, torn,
// or corrupt are skipped; only when no rung loads does it return an error
// (the first load failure seen, or os.ErrNotExist when nothing exists).
func (d *Driver) LoadCheckpointFallback(path string, depth int) (string, error) {
	var firstErr error
	for _, p := range fault.FallbackPaths(path, depth) {
		err := d.LoadCheckpointFile(p)
		if err == nil {
			return p, nil
		}
		if firstErr == nil && !errors.Is(err, os.ErrNotExist) {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("train: opening %s: %w", path, os.ErrNotExist)
	}
	return "", fmt.Errorf("train: no loadable checkpoint at %s (depth %d): %w", path, depth, firstErr)
}
