package train

import (
	"math/rand"

	"tcss/internal/tensor"
)

// MiniBatch is the example-level SGD regime of the neural baselines: each
// epoch draws a labeled example set, shuffles it with the engine RNG, runs
// Step (forward + backward, accumulating layer gradients) per example, and
// lets the driver apply the optimizer every BatchSize examples — keeping the
// per-example cost at the size of the touched rows rather than the whole
// parameter set.
type MiniBatch struct {
	// Examples produces the epoch's labeled examples (typically the observed
	// positives plus freshly sampled negatives). It runs before the shuffle
	// and may consume rng; both uses are part of the checkpointed stream.
	Examples func(epoch int, rng *rand.Rand) ([]tensor.Entry, error)

	// Step processes one example, accumulating parameter gradients, and
	// returns the example's loss contribution.
	Step func(e tensor.Entry) float64

	// BatchSize is the gradient-accumulation window per optimizer step.
	BatchSize int
}

// runBatchEpoch is one mini-batch epoch. The sequence — sample, shuffle,
// per-example step with a partial trailing batch — reproduces the loop the
// baselines used to hand-roll, so their pre-engine trajectories are preserved
// bit for bit.
func (d *Driver) runBatchEpoch(epoch int) (float64, error) {
	batch, err := d.batch.Examples(epoch, d.rng.Rand)
	if err != nil {
		return 0, err
	}
	d.rng.Shuffle(len(batch), func(a, b int) { batch[a], batch[b] = batch[b], batch[a] })
	var total float64
	for s, e := range batch {
		total += d.batch.Step(e)
		if (s+1)%d.batch.BatchSize == 0 || s == len(batch)-1 {
			d.stepGroups()
		}
	}
	return total, nil
}
