package train

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"tcss/internal/opt"
	"tcss/internal/tensor"
)

// TestRNGStreamTransparent pins the property the whole refactor rests on: an
// engine RNG consumes the exact stream of rand.New(rand.NewSource(seed)), so
// loops moved onto the engine reproduce their pre-engine trajectories.
func TestRNGStreamTransparent(t *testing.T) {
	ref := rand.New(rand.NewSource(42))
	r := NewRNG(42)
	for i := 0; i < 200; i++ {
		switch i % 5 {
		case 0:
			if a, b := ref.Int63(), r.Int63(); a != b {
				t.Fatalf("Int63 diverged at %d: %d vs %d", i, a, b)
			}
		case 1:
			if a, b := ref.Float64(), r.Float64(); a != b {
				t.Fatalf("Float64 diverged at %d: %g vs %g", i, a, b)
			}
		case 2:
			if a, b := ref.Intn(17), r.Intn(17); a != b {
				t.Fatalf("Intn diverged at %d: %d vs %d", i, a, b)
			}
		case 3:
			if a, b := ref.NormFloat64(), r.NormFloat64(); a != b {
				t.Fatalf("NormFloat64 diverged at %d: %g vs %g", i, a, b)
			}
		case 4:
			pa, pb := ref.Perm(9), r.Perm(9)
			for n := range pa {
				if pa[n] != pb[n] {
					t.Fatalf("Perm diverged at %d", i)
				}
			}
		}
	}
}

// TestRNGRestoreResumesStream checkpoints the stream position mid-run and
// verifies a restored RNG produces the identical continuation.
func TestRNGRestoreResumesStream(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		r.Intn(100 + i%3) // mix draw widths, including rejection retries
	}
	st := r.State()
	want := make([]float64, 50)
	for i := range want {
		want[i] = r.Float64()
	}
	fresh := NewRNG(0)
	fresh.Restore(st)
	if fresh.State() != st {
		t.Fatalf("restored state %+v, want %+v", fresh.State(), st)
	}
	for i := range want {
		if got := fresh.Float64(); got != want[i] {
			t.Fatalf("restored stream diverged at %d", i)
		}
	}
	// In-place restore: closures holding the inner rand.Rand see it too.
	inner := r.Rand
	r.Restore(st)
	for i := range want {
		if got := inner.Float64(); got != want[i] {
			t.Fatalf("in-place restore not visible through retained rand.Rand at %d", i)
		}
	}
}

// quad is a 2-parameter toy model with loss Σ (p_i − target_i)².
type quad struct {
	GroupSet
	target []float64
}

func newQuad(init, target []float64) *quad {
	p := append([]float64(nil), init...)
	g := make([]float64, len(p))
	return &quad{
		GroupSet: GroupSet{{Name: "p", Value: p, Grad: g}},
		target:   target,
	}
}

func (q *quad) loss() float64 {
	var l float64
	p, g := q.GroupSet[0].Value, q.GroupSet[0].Grad
	for i := range p {
		d := p[i] - q.target[i]
		l += d * d
		g[i] += 2 * d
	}
	return l
}

func TestDriverFullBatchConverges(t *testing.T) {
	q := newQuad([]float64{4, -3}, []float64{1, 2})
	var losses []float64
	d, err := New(q, []Head{HeadFunc{W: 1, F: func(int) (float64, error) { return q.loss(), nil }}},
		nil, opt.NewAdam(0.2, 0), nil, Config{
			Epochs:   120,
			Callback: func(epoch int, loss float64) { losses = append(losses, loss) },
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if len(losses) != 120 {
		t.Fatalf("callback ran %d times, want 120", len(losses))
	}
	if losses[len(losses)-1] > 1e-3 || losses[len(losses)-1] > losses[0] {
		t.Fatalf("no convergence: first %g last %g", losses[0], losses[len(losses)-1])
	}
	if d.Epoch() != 120 {
		t.Fatalf("Epoch() = %d, want 120", d.Epoch())
	}
}

// TestDriverHeadWeights verifies the reported loss is Σ weight·loss.
func TestDriverHeadWeights(t *testing.T) {
	q := newQuad([]float64{1}, []float64{1})
	var got float64
	heads := []Head{
		HeadFunc{W: 1, F: func(int) (float64, error) { return 2, nil }},
		HeadFunc{W: 0.5, F: func(int) (float64, error) { return 4, nil }},
	}
	d, err := New(q, heads, nil, opt.NewAdam(0, 0), nil, Config{
		Epochs:   1,
		Callback: func(_ int, loss float64) { got = loss },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("weighted loss = %g, want 4", got)
	}
}

// TestDriverGradClip verifies the driver clips the joint norm across groups
// before stepping, matching a hand-rolled SGD step on the clipped gradient.
func TestDriverGradClip(t *testing.T) {
	q := newQuad([]float64{10, 0}, []float64{0, 0})
	d, err := New(q, []Head{HeadFunc{W: 1, F: func(int) (float64, error) { return q.loss(), nil }}},
		nil, opt.NewSGD(1, 0), nil, Config{Epochs: 1, GradClip: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	// Gradient was (20, 0), clipped to (1, 0); SGD at lr 1 gives p = 9.
	if p := q.GroupSet[0].Value[0]; math.Abs(p-9) > 1e-12 {
		t.Fatalf("clipped step produced %g, want 9", p)
	}
}

func TestDriverLRSchedule(t *testing.T) {
	q := newQuad([]float64{1}, []float64{0})
	// Gamma 0 zeroes the LR from epoch 1 on: only the first step moves.
	d, err := New(q, []Head{HeadFunc{W: 1, F: func(int) (float64, error) { return q.loss(), nil }}},
		nil, opt.NewSGD(0.25, 0), nil, Config{Epochs: 5, LRSchedule: opt.ExponentialSchedule{Gamma: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	// Epoch 0: p = 1 − 0.25·2 = 0.5; epochs 1-4: lr 0 → unchanged.
	if p := q.GroupSet[0].Value[0]; p != 0.5 {
		t.Fatalf("scheduled run ended at %g, want 0.5", p)
	}
}

func TestNewRejectsBadComposition(t *testing.T) {
	q := newQuad([]float64{1}, []float64{0})
	head := []Head{HeadFunc{W: 1, F: func(int) (float64, error) { return 0, nil }}}
	mb := &MiniBatch{
		Examples:  func(int, *rand.Rand) ([]tensor.Entry, error) { return nil, nil },
		Step:      func(tensor.Entry) float64 { return 0 },
		BatchSize: 1,
	}
	adam := opt.NewAdam(0.1, 0)
	cases := []struct {
		name string
		fn   func() (*Driver, error)
	}{
		{"no objective", func() (*Driver, error) { return New(q, nil, nil, adam, nil, Config{Epochs: 1}) }},
		{"both objectives", func() (*Driver, error) { return New(q, head, mb, adam, NewRNG(1), Config{Epochs: 1}) }},
		{"nil model", func() (*Driver, error) { return New(nil, head, nil, adam, nil, Config{Epochs: 1}) }},
		{"nil optimizer", func() (*Driver, error) { return New(q, head, nil, nil, nil, Config{Epochs: 1}) }},
		{"negative epochs", func() (*Driver, error) { return New(q, head, nil, adam, nil, Config{Epochs: -1}) }},
		{"batch without rng", func() (*Driver, error) { return New(q, nil, mb, adam, nil, Config{Epochs: 1}) }},
		{"batch with clip", func() (*Driver, error) {
			return New(q, nil, mb, adam, NewRNG(1), Config{Epochs: 1, GradClip: 1})
		}},
		{"zero batch size", func() (*Driver, error) {
			return New(q, nil, &MiniBatch{Examples: mb.Examples, Step: mb.Step}, adam, NewRNG(1), Config{Epochs: 1})
		}},
		{"duplicate group", func() (*Driver, error) {
			dup := GroupSet{q.GroupSet[0], q.GroupSet[0]}
			return New(dup, head, nil, adam, nil, Config{Epochs: 1})
		}},
	}
	for _, tc := range cases {
		if _, err := tc.fn(); err == nil {
			t.Errorf("%s: New accepted an invalid composition", tc.name)
		}
	}
}

// miniModel is a one-group linear model trained by per-example SGD, small
// enough to compare the engine sweep against a hand-rolled loop bit for bit.
type miniModel struct {
	GroupSet
}

func newMiniModel() *miniModel {
	return &miniModel{GroupSet{{Name: "w", Value: make([]float64, 3), Grad: make([]float64, 3)}}}
}

func (m *miniModel) step(e tensor.Entry) float64 {
	w, g := m.GroupSet[0].Value, m.GroupSet[0].Grad
	pred := w[0]*float64(e.I) + w[1]*float64(e.J) + w[2]*float64(e.K)
	d := pred - e.Val
	g[0] += 2 * d * float64(e.I)
	g[1] += 2 * d * float64(e.J)
	g[2] += 2 * d * float64(e.K)
	return d * d
}

func syntheticExamples(rng *rand.Rand, n int) []tensor.Entry {
	out := make([]tensor.Entry, n)
	for i := range out {
		e := tensor.Entry{I: rng.Intn(5), J: rng.Intn(5), K: rng.Intn(5)}
		e.Val = 0.3*float64(e.I) - 0.2*float64(e.J) + 0.1*float64(e.K)
		out[i] = e
	}
	return out
}

// TestMiniBatchMatchesHandRolledLoop runs the engine's mini-batch sweep and
// the exact loop the baselines used to hand-roll, and demands bit-identical
// parameters — the property that kept the baseline goldens unchanged.
func TestMiniBatchMatchesHandRolledLoop(t *testing.T) {
	const epochs, batchSize = 3, 4

	// Hand-rolled reference, as the pre-engine baselines wrote it.
	ref := newMiniModel()
	refRNG := rand.New(rand.NewSource(5))
	refOpt := opt.NewAdam(0.05, 0)
	for epoch := 0; epoch < epochs; epoch++ {
		batch := syntheticExamples(refRNG, 13)
		refRNG.Shuffle(len(batch), func(a, b int) { batch[a], batch[b] = batch[b], batch[a] })
		for s, e := range batch {
			ref.step(e)
			if (s+1)%batchSize == 0 || s == len(batch)-1 {
				g := ref.GroupSet[0]
				refOpt.Step(g.Name, g.Value, g.Grad)
				for i := range g.Grad {
					g.Grad[i] = 0
				}
			}
		}
	}

	m := newMiniModel()
	d, err := New(m, nil, &MiniBatch{
		Examples:  func(_ int, rng *rand.Rand) ([]tensor.Entry, error) { return syntheticExamples(rng, 13), nil },
		Step:      m.step,
		BatchSize: batchSize,
	}, opt.NewAdam(0.05, 0), NewRNG(5), Config{Epochs: epochs})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range ref.GroupSet[0].Value {
		if ref.GroupSet[0].Value[i] != m.GroupSet[0].Value[i] {
			t.Fatalf("engine diverged from hand-rolled loop at w[%d]: %v vs %v",
				i, m.GroupSet[0].Value, ref.GroupSet[0].Value)
		}
	}
}

// TestGenericCheckpointResumeBitIdentical is the engine-level resume
// determinism test: checkpoint a mini-batch run at epoch 2 of 5, rebuild a
// fresh driver, resume, and demand the final parameters match an
// uninterrupted run bit for bit.
func TestGenericCheckpointResumeBitIdentical(t *testing.T) {
	build := func(path string, every int) (*miniModel, *Driver) {
		m := newMiniModel()
		d, err := New(m, nil, &MiniBatch{
			Examples:  func(_ int, rng *rand.Rand) ([]tensor.Entry, error) { return syntheticExamples(rng, 11), nil },
			Step:      m.step,
			BatchSize: 4,
		}, opt.NewAdam(0.05, 0), NewRNG(9), Config{Epochs: 5, CheckpointPath: path, CheckpointEvery: every})
		if err != nil {
			t.Fatal(err)
		}
		return m, d
	}
	straight, d1 := build("", 0)
	if err := d1.Run(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "ck.json")
	interrupted, d2 := build(path, 2)
	d2.cfg.Epochs = 2 // simulate the kill after epoch 2's checkpoint
	if err := d2.Run(); err != nil {
		t.Fatal(err)
	}
	_ = interrupted

	resumed, d3 := build("", 0)
	if err := d3.LoadCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	if d3.Epoch() != 2 {
		t.Fatalf("resumed epoch = %d, want 2", d3.Epoch())
	}
	if err := d3.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range straight.GroupSet[0].Value {
		if straight.GroupSet[0].Value[i] != resumed.GroupSet[0].Value[i] {
			t.Fatalf("resumed run diverged at w[%d]: %v vs %v",
				i, resumed.GroupSet[0].Value, straight.GroupSet[0].Value)
		}
	}
}

func TestLoadCheckpointRejectsMismatches(t *testing.T) {
	m := newMiniModel()
	d, err := New(m, []Head{HeadFunc{W: 1, F: func(int) (float64, error) { return 0, nil }}},
		nil, opt.NewAdam(0.1, 0), NewRNG(1), Config{Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := d.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}

	// Wrong group shape.
	other := &miniModel{GroupSet{{Name: "w", Value: make([]float64, 2), Grad: make([]float64, 2)}}}
	d2, err := New(other, []Head{HeadFunc{W: 1, F: func(int) (float64, error) { return 0, nil }}},
		nil, opt.NewAdam(0.1, 0), NewRNG(1), Config{Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.LoadCheckpointFile(path); err == nil {
		t.Fatal("length mismatch must be rejected")
	}

	// Missing group.
	renamed := &miniModel{GroupSet{{Name: "other", Value: make([]float64, 3), Grad: make([]float64, 3)}}}
	d3, err := New(renamed, []Head{HeadFunc{W: 1, F: func(int) (float64, error) { return 0, nil }}},
		nil, opt.NewAdam(0.1, 0), NewRNG(1), Config{Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := d3.LoadCheckpointFile(path); err == nil {
		t.Fatal("missing group must be rejected")
	}

	// Epoch beyond the configured run.
	short, err := New(newMiniModel(), []Head{HeadFunc{W: 1, F: func(int) (float64, error) { return 0, nil }}},
		nil, opt.NewAdam(0.1, 0), NewRNG(1), Config{Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := short.Restore(State{Epoch: 7, Opt: opt.State{Algo: "adam"}}); err == nil {
		t.Fatal("epoch beyond run must be rejected")
	}
}

// TestCheckpointCadence counts Save invocations: every CheckpointEvery
// epochs plus the final epoch, without double-saving when they coincide.
func TestCheckpointCadence(t *testing.T) {
	var saves []int
	q := newQuad([]float64{1}, []float64{0})
	d, err := New(q, []Head{HeadFunc{W: 1, F: func(int) (float64, error) { return q.loss(), nil }}},
		nil, opt.NewAdam(0.1, 0), nil, Config{
			Epochs:          5,
			CheckpointEvery: 2,
			Save:            func(st State) error { saves = append(saves, st.Epoch); return nil },
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 5}
	if len(saves) != len(want) {
		t.Fatalf("saves at %v, want %v", saves, want)
	}
	for i := range want {
		if saves[i] != want[i] {
			t.Fatalf("saves at %v, want %v", saves, want)
		}
	}
}
