package train

import "math/rand"

// RNG is a math/rand generator whose position in the stream is observable and
// restorable, which is what makes a training run checkpointable: the engine
// records (seed, draws consumed) and a resumed run fast-forwards a fresh
// source by exactly that many draws.
//
// The wrapper is stream-transparent: it delegates to the seeded source that
// rand.New(rand.NewSource(seed)) would use and implements rand.Source64, so
// every rand.Rand method consumes the identical underlying sequence — a loop
// that switches from a bare rand.Rand to an RNG reproduces its old trajectory
// bit for bit. Counting works because each Int63/Uint64 call on the standard
// source advances its state by exactly one step.
//
// An RNG is not safe for concurrent use, matching rand.Rand built over a
// plain source.
type RNG struct {
	*rand.Rand
	seed int64
	src  *countingSource
}

// RNGState is the serializable position of an RNG.
type RNGState struct {
	Seed  int64  `json:"seed"`
	Draws uint64 `json:"draws"`
}

// countingSource wraps the standard seeded source, counting state advances.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// NewRNG returns a counting generator seeded like rand.New(rand.NewSource(seed)).
func NewRNG(seed int64) *RNG {
	src := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &RNG{Rand: rand.New(src), seed: seed, src: src}
}

// State returns the current stream position.
func (r *RNG) State() RNGState { return RNGState{Seed: r.seed, Draws: r.src.draws} }

// Restore repositions the generator at st by reseeding and discarding
// st.Draws values. It mutates the RNG in place, so rand.Rand references
// handed out earlier (e.g. closures capturing r.Rand) observe the restored
// stream. The cost is one source advance per recorded draw — a few
// nanoseconds each — which trades a fixed serialization format for exact
// state recovery from an opaque source.
func (r *RNG) Restore(st RNGState) {
	r.seed = st.Seed
	r.src.src = rand.NewSource(st.Seed).(rand.Source64)
	r.src.draws = 0
	for i := uint64(0); i < st.Draws; i++ {
		r.src.src.Uint64()
	}
	r.src.draws = st.Draws
}
