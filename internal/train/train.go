// Package train is the shared training engine behind every gradient-trained
// model in this repository: the TCSS tensor-completion loss (core.Train), its
// warm-start online updates (Model.UpdateOnline, and through it the serving
// writer path), and the neural baselines (NCF, NTM, CoSTCo). Before the
// engine existed each of those carried its own hand-rolled epoch loop; none
// could checkpoint, resume, or share learning-rate scheduling, gradient
// clipping, or callback logic.
//
// The engine separates three concerns:
//
//   - A model exposes its parameters as named flat float64 groups
//     (Trainable/Group — the same shape internal/opt steps and internal/nn's
//     Param already uses), so the driver can zero, clip, step, and serialize
//     them without knowing the model type.
//   - The objective is a sum of weighted Heads (full-batch regime: the
//     whole-data/negative-sampling L2 head plus the social Hausdorff L1
//     head), or a MiniBatch specification (example-level SGD with gradient
//     accumulation, the neural baselines' regime).
//   - The Driver owns the epoch loop: gradient zeroing, head evaluation or
//     batch sweeps, global gradient clipping, optimizer steps with an
//     optional LR schedule, epoch callbacks, and checkpoint/resume.
//
// Checkpointing records the parameter groups (or defers them to the caller's
// own persistence format — core embeds them in its versioned model files),
// the optimizer moment state, the RNG stream position, and the number of
// completed epochs. Restoring all four makes a resumed run bit-identical to
// an uninterrupted one, which the resume-determinism tests assert for every
// model on the engine.
package train

import (
	"fmt"
	"math/rand"

	"tcss/internal/fault"
	"tcss/internal/opt"
)

// Group is one named parameter group with its gradient accumulator, the unit
// the optimizer steps. Value and Grad alias the model's own storage.
type Group struct {
	Name        string
	Value, Grad []float64
}

// Trainable exposes a model's parameters to the driver. Groups must return
// the same names, order, and backing slices on every call.
type Trainable interface {
	Groups() []Group
	// ZeroGrad clears every gradient accumulator.
	ZeroGrad()
}

// GroupSet is the simplest Trainable: a fixed, ordered list of groups.
type GroupSet []Group

// Groups implements Trainable.
func (g GroupSet) Groups() []Group { return g }

// ZeroGrad implements Trainable.
func (g GroupSet) ZeroGrad() {
	for _, gr := range g {
		for i := range gr.Grad {
			gr.Grad[i] = 0
		}
	}
}

// Head is one additive component of a full-batch training objective. Loss
// evaluates the component at the given epoch and accumulates the gradient of
// Weight()·loss into the trainable's gradient buffers; the driver reports
// Σ Weight()·Loss() as the epoch loss. A head that subsamples or draws
// negatives consumes the engine RNG it captured at composition time, so the
// stream position is part of the checkpointed state.
type Head interface {
	Loss(epoch int) (float64, error)
	Weight() float64
}

// HeadFunc adapts a closure plus a constant weight to the Head interface.
type HeadFunc struct {
	F func(epoch int) (float64, error)
	W float64
}

// Loss implements Head.
func (h HeadFunc) Loss(epoch int) (float64, error) { return h.F(epoch) }

// Weight implements Head.
func (h HeadFunc) Weight() float64 { return h.W }

// Config collects the loop-level knobs shared by every training run.
type Config struct {
	// Epochs is the total epoch count of the run; a resumed driver continues
	// from its restored epoch up to this total.
	Epochs int

	// GradClip, when positive, rescales the joint gradient of all groups to
	// this Euclidean norm bound before each optimizer step (full-batch
	// regime only; the mini-batch baselines never clipped).
	GradClip float64

	// LRSchedule optionally anneals the optimizer's learning rate across
	// epochs; nil keeps it constant.
	LRSchedule opt.Schedule

	// Callback, when non-nil, observes every completed epoch with its total
	// weighted loss.
	Callback func(epoch int, loss float64)

	// Save, when non-nil, persists a checkpoint of the given engine state;
	// it runs after every CheckpointEvery-th epoch and after the final one.
	// Callers that own their parameter persistence (core's versioned model
	// files) write the state next to the parameters themselves.
	Save func(st State) error

	// CheckpointPath, when Save is nil, enables the generic self-contained
	// checkpoint format (engine state + parameter groups) at this path.
	CheckpointPath string

	// CheckpointEvery is the epoch period of checkpoints (<= 0: final epoch
	// only).
	CheckpointEvery int

	// CheckpointKeep is how many rotated prior checkpoints to retain next to
	// CheckpointPath (path.1 … path.N) as a recovery fallback ladder; 0 keeps
	// only the newest file. Applies to the generic CheckpointPath writer.
	CheckpointKeep int

	// FS, when non-nil, routes the generic checkpoint writer's filesystem
	// operations through an injectable seam (fault.InjectFS in crash
	// harnesses); nil uses the real filesystem.
	FS fault.FS
}

// Driver runs the epoch loop over one model. Construct with New, optionally
// Restore a checkpointed state, then Run.
type Driver struct {
	cfg   Config
	model Trainable
	heads []Head
	batch *MiniBatch
	rng   *RNG

	optim opt.Optimizer // the stepping optimizer (scheduled wrapper if any)
	inner opt.Optimizer // the unwrapped optimizer holding moment state
	sched *opt.Scheduled

	epoch int // completed epochs; the next epoch to run
}

// New builds a driver over the model with either a full-batch objective
// (heads) or a mini-batch one (batch) — exactly one must be given. The
// optimizer must implement opt.Stateful if the run will checkpoint or
// resume. rng may be nil when no component draws randomness.
func New(model Trainable, heads []Head, batch *MiniBatch, optim opt.Optimizer, rng *RNG, cfg Config) (*Driver, error) {
	if model == nil {
		return nil, fmt.Errorf("train: nil model")
	}
	if (len(heads) == 0) == (batch == nil) {
		return nil, fmt.Errorf("train: exactly one of heads or batch must be set")
	}
	if batch != nil {
		if batch.Examples == nil || batch.Step == nil {
			return nil, fmt.Errorf("train: MiniBatch needs Examples and Step")
		}
		if batch.BatchSize <= 0 {
			return nil, fmt.Errorf("train: MiniBatch batch size must be positive, got %d", batch.BatchSize)
		}
		if rng == nil {
			return nil, fmt.Errorf("train: MiniBatch regime needs an engine RNG for shuffling")
		}
		if cfg.GradClip > 0 {
			return nil, fmt.Errorf("train: GradClip is a full-batch feature")
		}
	}
	if cfg.Epochs < 0 {
		return nil, fmt.Errorf("train: epochs must be non-negative, got %d", cfg.Epochs)
	}
	if optim == nil {
		return nil, fmt.Errorf("train: nil optimizer")
	}
	seen := make(map[string]struct{})
	for _, g := range model.Groups() {
		if len(g.Value) != len(g.Grad) {
			return nil, fmt.Errorf("train: group %q value/grad length mismatch %d vs %d", g.Name, len(g.Value), len(g.Grad))
		}
		if _, dup := seen[g.Name]; dup {
			return nil, fmt.Errorf("train: duplicate parameter group %q", g.Name)
		}
		seen[g.Name] = struct{}{}
	}
	d := &Driver{cfg: cfg, model: model, heads: heads, batch: batch, optim: optim, inner: optim, rng: rng}
	if cfg.LRSchedule != nil {
		sched, err := opt.NewScheduled(optim, cfg.LRSchedule)
		if err != nil {
			return nil, err
		}
		d.sched = sched
		d.optim = sched
	}
	if cfg.Save == nil && cfg.CheckpointPath != "" {
		d.cfg.Save = func(State) error {
			return d.SaveCheckpointRotate(cfg.FS, cfg.CheckpointPath, cfg.CheckpointKeep)
		}
	}
	if d.cfg.Save != nil {
		if _, ok := d.inner.(opt.Stateful); !ok {
			return nil, fmt.Errorf("train: checkpointing needs a stateful optimizer, got %T", d.inner)
		}
	}
	return d, nil
}

// Epoch returns the number of completed epochs.
func (d *Driver) Epoch() int { return d.epoch }

// Run executes epochs from the current position (0, or the restored epoch)
// through cfg.Epochs. Each epoch: zero gradients, evaluate the objective
// (heads, or a shuffled mini-batch sweep), clip, step the optimizer, invoke
// the callback, and checkpoint when due. On error the model holds the last
// completed epoch's parameters.
func (d *Driver) Run() error {
	for d.epoch < d.cfg.Epochs {
		epoch := d.epoch
		if d.sched != nil {
			d.sched.SetEpoch(epoch)
		}
		var total float64
		var err error
		if d.batch != nil {
			total, err = d.runBatchEpoch(epoch)
		} else {
			total, err = d.runHeadsEpoch(epoch)
		}
		if err != nil {
			return err
		}
		d.epoch = epoch + 1
		if d.cfg.Callback != nil {
			d.cfg.Callback(epoch, total)
		}
		if d.checkpointDue() {
			if err := d.cfg.Save(d.State()); err != nil {
				return fmt.Errorf("train: checkpoint after epoch %d: %w", epoch, err)
			}
		}
	}
	return nil
}

// runHeadsEpoch is one full-batch epoch: a single optimizer step over the
// summed weighted head gradients.
func (d *Driver) runHeadsEpoch(epoch int) (float64, error) {
	d.model.ZeroGrad()
	var total float64
	for _, h := range d.heads {
		l, err := h.Loss(epoch)
		if err != nil {
			return 0, err
		}
		total += h.Weight() * l
	}
	groups := d.model.Groups()
	if d.cfg.GradClip > 0 {
		grads := make([][]float64, len(groups))
		for i, g := range groups {
			grads[i] = g.Grad
		}
		opt.ClipGradNorm(d.cfg.GradClip, grads...)
	}
	for _, g := range groups {
		d.optim.Step(g.Name, g.Value, g.Grad)
	}
	return total, nil
}

// checkpointDue reports whether a checkpoint should be written after the
// just-completed epoch: every CheckpointEvery epochs, and always after the
// final one.
func (d *Driver) checkpointDue() bool {
	if d.cfg.Save == nil {
		return false
	}
	if d.epoch == d.cfg.Epochs {
		return true
	}
	return d.cfg.CheckpointEvery > 0 && d.epoch%d.cfg.CheckpointEvery == 0
}

// stepGroups applies one optimizer update to every group, then zeroes the
// gradient accumulators — the shared tail of a gradient-accumulation batch.
func (d *Driver) stepGroups() {
	for _, g := range d.model.Groups() {
		d.optim.Step(g.Name, g.Value, g.Grad)
	}
	d.model.ZeroGrad()
}

// Rand returns the engine RNG's rand.Rand, for composing heads that draw
// from the checkpointed stream.
func (d *Driver) Rand() *rand.Rand {
	if d.rng == nil {
		return nil
	}
	return d.rng.Rand
}
