package cluster

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden ring fixture")

// TestRingBalance checks the load-spread contract: with the default vnode
// count, every shard's share of a large user population stays within ±10% of
// uniform from 4 up to 64 shards.
func TestRingBalance(t *testing.T) {
	const users = 200_000
	for _, shards := range []int{4, 8, 16, 32, 64} {
		names := make([]string, shards)
		for i := range names {
			names[i] = fmt.Sprintf("shard-%d", i)
		}
		ring, err := NewRing(names, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, shards)
		for u := 0; u < users; u++ {
			counts[ring.OwnerIndex(u)]++
		}
		want := float64(users) / float64(shards)
		for i, got := range counts {
			dev := (float64(got) - want) / want
			if dev < -0.10 || dev > 0.10 {
				t.Errorf("%d shards: shard %d owns %d users, %.1f%% from uniform %g",
					shards, i, got, 100*dev, want)
			}
		}
	}
}

// TestRingRemapping checks the consistency contract: growing an N-shard ring
// by one remaps roughly 1/(N+1) of users — never the near-total reshuffle
// `user % N` would cause — and every remapped user lands on the new shard.
func TestRingRemapping(t *testing.T) {
	const users = 100_000
	for _, shards := range []int{4, 8, 16} {
		names := make([]string, shards+1)
		for i := range names {
			names[i] = fmt.Sprintf("shard-%d", i)
		}
		before, err := NewRing(names[:shards], 0)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(names, 0)
		if err != nil {
			t.Fatal(err)
		}
		newShard := fmt.Sprintf("shard-%d", shards)
		moved := 0
		for u := 0; u < users; u++ {
			a, b := before.Owner(u), after.Owner(u)
			if a == b {
				continue
			}
			moved++
			if b != newShard {
				t.Fatalf("%d shards: user %d moved %s -> %s, not to the new shard", shards, u, a, b)
			}
		}
		ideal := float64(users) / float64(shards+1)
		if f := float64(moved); f > 1.35*ideal {
			t.Errorf("%d->%d shards: %d users moved, ideal %.0f (+35%% slack exceeded)",
				shards, shards+1, moved, ideal)
		}
		if moved == 0 {
			t.Errorf("%d->%d shards: nothing remapped, new shard owns no one", shards, shards+1)
		}
	}
}

// TestRingOrderIndependence checks that ownership depends only on shard
// names: gateways and shards configured with the same set in different orders
// must agree, or the cluster misroutes everything.
func TestRingOrderIndependence(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	a, err := NewRing(names, 256)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]string(nil), names...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	b, err := NewRing(shuffled, 256)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10_000; u++ {
		if a.Owner(u) != b.Owner(u) {
			t.Fatalf("user %d: %q with ordered config, %q with shuffled", u, a.Owner(u), b.Owner(u))
		}
	}
}

func TestRingOwnsPredicate(t *testing.T) {
	ring, err := NewRing([]string{"a", "b", "c"}, 128)
	if err != nil {
		t.Fatal(err)
	}
	owns := map[string]func(int) bool{
		"a": ring.Owns("a"), "b": ring.Owns("b"), "c": ring.Owns("c"),
	}
	for u := 0; u < 5_000; u++ {
		owner := ring.Owner(u)
		for name, pred := range owns {
			if got := pred(u); got != (name == owner) {
				t.Fatalf("user %d owned by %q, but Owns(%q) = %v", u, owner, name, got)
			}
		}
	}
	if ring.Owns("nope")(0) {
		t.Fatal("unknown shard claims ownership")
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty shard name accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate shard name accepted")
	}
}

// goldenRing is the fixture shape: ownership of the first users under a
// fixed configuration. It pins the hash placement across refactors — if this
// test fails without a deliberate wire-format bump, deployed clusters whose
// gateways and shards run different builds would disagree on ownership.
type goldenRing struct {
	Shards []string          `json:"shards"`
	Vnodes int               `json:"vnodes"`
	Owners map[string]string `json:"owners"` // user id (decimal) -> shard name
}

func TestRingGolden(t *testing.T) {
	ring, err := NewRing([]string{"alpha", "beta", "gamma", "delta"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	got := goldenRing{
		Shards: ring.Shards(),
		Vnodes: ring.Vnodes(),
		Owners: make(map[string]string),
	}
	for u := 0; u < 64; u++ {
		got.Owners[fmt.Sprint(u)] = ring.Owner(u)
	}

	path := filepath.Join("testdata", "ring_golden.json")
	if *update {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	var want goldenRing
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if want.Vnodes != got.Vnodes || len(want.Owners) != len(got.Owners) {
		t.Fatalf("fixture shape changed: vnodes %d vs %d, %d vs %d owners",
			want.Vnodes, got.Vnodes, len(want.Owners), len(got.Owners))
	}
	for user, shard := range want.Owners {
		if got.Owners[user] != shard {
			t.Errorf("user %s: golden owner %q, ring says %q — hash placement changed", user, shard, got.Owners[user])
		}
	}
}
