package cluster_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tcss/internal/cluster"
)

// recordingBackend captures every request body it receives, then answers
// with a fixed status and body.
type recordingBackend struct {
	mu      sync.Mutex
	bodies  [][]byte
	budgets []string
	status  int
	reply   string
}

func (b *recordingBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	raw, _ := io.ReadAll(r.Body)
	b.mu.Lock()
	b.bodies = append(b.bodies, raw)
	b.budgets = append(b.budgets, r.Header.Get(cluster.DeadlineBudgetHeader))
	b.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(b.status)
	io.WriteString(w, b.reply)
}

func (b *recordingBackend) snapshot() ([][]byte, []string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([][]byte(nil), b.bodies...), append([]string(nil), b.budgets...)
}

// TestGatewayNextFailoverReplaysBody pins down the POST /v1/next failover
// contract at the wire level: when the primary answers a retriable status,
// the gateway replays the buffered request body byte-identically to the
// replica, tags the response with the winning backend, relays the winner's
// bytes untouched, and stamps a deadline budget onto both hops.
func TestGatewayNextFailoverReplaysBody(t *testing.T) {
	primary := &recordingBackend{status: http.StatusServiceUnavailable, reply: `{"error":"draining"}`}
	replica := &recordingBackend{status: http.StatusOK, reply: `{"items":[{"poi":9}]}`}
	ps := httptest.NewServer(primary)
	defer ps.Close()
	rs := httptest.NewServer(replica)
	defer rs.Close()

	gw, err := cluster.NewGateway(
		[]cluster.ShardSet{{Name: "s0", Primary: ps.URL, Replicas: []string{rs.URL}}},
		cluster.GatewayOptions{},
	)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(gw.Handler())
	defer hs.Close()

	body := `{"checkins":[{"poi":1,"t":0},{"poi":5,"t":2}]}`
	resp, err := http.Post(hs.URL+"/v1/next?user=3&n=5", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover next: status %d: %s", resp.StatusCode, got)
	}
	if string(got) != replica.reply {
		t.Fatalf("gateway relayed %q, want the replica's bytes %q", got, replica.reply)
	}
	if s := resp.Header.Get("X-Shard"); s != "s0" {
		t.Fatalf("X-Shard %q, want s0", s)
	}
	if b := resp.Header.Get("X-Backend"); b != rs.URL {
		t.Fatalf("X-Backend %q, want winning replica %q", b, rs.URL)
	}

	pBodies, pBudgets := primary.snapshot()
	rBodies, rBudgets := replica.snapshot()
	if len(pBodies) != 1 || len(rBodies) != 1 {
		t.Fatalf("primary saw %d requests, replica %d, want 1 each", len(pBodies), len(rBodies))
	}
	if !bytes.Equal(pBodies[0], []byte(body)) {
		t.Fatalf("primary received %q, want original body %q", pBodies[0], body)
	}
	if !bytes.Equal(rBodies[0], pBodies[0]) {
		t.Fatalf("replayed body %q differs from first attempt %q", rBodies[0], pBodies[0])
	}
	if pBudgets[0] == "" || rBudgets[0] == "" {
		t.Fatalf("hops missing %s: primary %q, replica %q",
			cluster.DeadlineBudgetHeader, pBudgets[0], rBudgets[0])
	}
}
