// Package cluster implements the sharded, replicated serving tier: a
// consistent-hash ring partitioning users over shards, a gateway that routes
// requests to the owning shard (failing over to replicas), and a replicator
// that keeps replicas on the primary's snapshot generation via checksummed
// snapshot shipping.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per shard. At v vnodes the relative
// spread of a shard's keyspace share is ~1/sqrt(v); 2048 keeps every shard
// within a few percent of uniform even at 64 shards, for a ring of at most
// 64×2048 = 131072 points (~2 MB) built once at startup.
const DefaultVnodes = 2048

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash  uint64
	shard int32
}

// Ring is an immutable consistent-hash ring mapping user ids to shards.
// Adding or removing one shard remaps only the keyspace adjacent to its
// virtual nodes — about 1/N of users — instead of reshuffling everything the
// way `user % N` would.
type Ring struct {
	shards []string
	points []ringPoint
	vnodes int
}

// splitmix64 is the finalizer from the SplitMix64 PRNG: a cheap, well-mixed
// bijection on uint64. User ids are small dense integers, so they need this
// avalanche before landing on the circle; vnode labels get it on top of FNV
// for the same reason.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pointHash places virtual node v of the named shard on the circle.
func pointHash(name string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{'#'})
	h.Write([]byte(strconv.Itoa(v)))
	return splitmix64(h.Sum64())
}

// keyHash places a user id on the circle.
func keyHash(user int) uint64 { return splitmix64(uint64(user)) }

// NewRing builds a ring over the given shard names. vnodes <= 0 selects
// DefaultVnodes. Shard names must be unique and non-empty; order does not
// affect ownership (placement depends only on names), so configurations
// listing the same shards in different orders agree.
func NewRing(shards []string, vnodes int) (*Ring, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(shards))
	for _, name := range shards {
		if name == "" {
			return nil, fmt.Errorf("cluster: empty shard name")
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", name)
		}
		seen[name] = true
	}
	r := &Ring{
		shards: append([]string(nil), shards...),
		points: make([]ringPoint, 0, len(shards)*vnodes),
		vnodes: vnodes,
	}
	for si, name := range r.shards {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(name, v), shard: int32(si)})
		}
	}
	// Ties broken by shard name so ownership is independent of listing order.
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return r.shards[a.shard] < r.shards[b.shard]
	})
	return r, nil
}

// Shards returns the shard names in their configured order.
func (r *Ring) Shards() []string { return append([]string(nil), r.shards...) }

// Vnodes returns the virtual-node count per shard.
func (r *Ring) Vnodes() int { return r.vnodes }

// OwnerIndex returns the index (into the configured shard list) of the shard
// owning user: the shard of the first ring point at or clockwise past the
// user's hash.
func (r *Ring) OwnerIndex(user int) int {
	h := keyHash(user)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past 2^64 to the first point
	}
	return int(r.points[i].shard)
}

// Owner returns the name of the shard owning user.
func (r *Ring) Owner(user int) string { return r.shards[r.OwnerIndex(user)] }

// Owns returns the ownership predicate for one shard, in the shape
// serve.Options.Owns expects.
func (r *Ring) Owns(shard string) func(user int) bool {
	idx := -1
	for i, name := range r.shards {
		if name == shard {
			idx = i
			break
		}
	}
	if idx < 0 {
		return func(int) bool { return false }
	}
	return func(user int) bool { return r.OwnerIndex(user) == idx }
}
