package cluster_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"tcss/internal/cluster/clustertest"
	"tcss/internal/fault"
)

// get fetches url and returns (status, body, response).
func get(t *testing.T, url string) (int, []byte, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp
}

// ownedUsers maps each shard name to one user it owns, scanning the model's
// user range.
func ownedUsers(c *clustertest.Cluster) map[string]int {
	owned := make(map[string]int)
	for u := 0; u < c.Config.Users; u++ {
		name := c.Ring.Owner(u)
		if _, ok := owned[name]; !ok {
			owned[name] = u
		}
	}
	return owned
}

// TestGatewayRoutesBitIdentical drives reads through the gateway and checks
// each lands on the owning shard with a body byte-identical to a standalone
// single-node server over the same model — sharding must not change answers.
func TestGatewayRoutesBitIdentical(t *testing.T) {
	c := clustertest.New(t, clustertest.Config{Shards: 3, Replicas: 1})
	_, refURL := c.Reference(t)

	for u := 0; u < c.Config.Users; u += 7 {
		q := fmt.Sprintf("/v1/recommend?user=%d&t=2&n=5", u)
		gs, gb, resp := get(t, c.GatewayURL+q)
		rs, rb, _ := get(t, refURL+q)
		if gs != http.StatusOK || rs != http.StatusOK {
			t.Fatalf("user %d: gateway %d, reference %d", u, gs, rs)
		}
		if want := c.Ring.Owner(u); resp.Header.Get("X-Shard") != want {
			t.Fatalf("user %d routed to %q, ring owner is %q", u, resp.Header.Get("X-Shard"), want)
		}
		if !bytes.Equal(gb, rb) {
			t.Fatalf("user %d: gateway body %s != reference body %s", u, gb, rb)
		}
	}
}

// TestFailoverBitIdentical kills a shard primary and checks the gateway
// transparently serves the same bytes from the replica.
func TestFailoverBitIdentical(t *testing.T) {
	c := clustertest.New(t, clustertest.Config{Shards: 3, Replicas: 1})
	owned := ownedUsers(c)
	sh := c.Shards[0]
	user, ok := owned[sh.Name]
	if !ok {
		t.Skipf("shard %s owns no user below %d", sh.Name, c.Config.Users)
	}
	q := fmt.Sprintf("/v1/recommend?user=%d&t=3&n=5", user)

	_, before, _ := get(t, c.GatewayURL+q)
	sh.Primary.Kill()
	status, after, resp := get(t, c.GatewayURL+q)
	if status != http.StatusOK {
		t.Fatalf("read after primary kill: status %d", status)
	}
	if got := resp.Header.Get("X-Backend"); got != sh.Replicas[0].URL {
		t.Fatalf("served by %q after kill, want replica %q", got, sh.Replicas[0].URL)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("failover changed the answer:\n primary: %s\n replica: %s", before, after)
	}

	// Revived primary serves again once its cooldown lapses; in-cooldown it
	// is merely deprioritized, so the replica keeps answering correctly.
	sh.Primary.Revive()
	status, again, _ := get(t, c.GatewayURL+q)
	if status != http.StatusOK || !bytes.Equal(before, again) {
		t.Fatalf("after revive: status %d, body %s", status, again)
	}
}

// TestReplicationShipsGenerations observes through the gateway, syncs, and
// checks the replica lands on the primary's exact generation with
// bit-identical scores.
func TestReplicationShipsGenerations(t *testing.T) {
	c := clustertest.New(t, clustertest.Config{Shards: 2, Replicas: 1})
	owned := ownedUsers(c)
	sh := c.Shards[0]
	user, ok := owned[sh.Name]
	if !ok {
		t.Skipf("shard %s owns no user below %d", sh.Name, c.Config.Users)
	}

	body := fmt.Sprintf(`{"checkins":[{"user":%d,"poi":1,"month":2},{"user":%d,"poi":3,"month":5}]}`, user, user)
	resp, err := http.Post(c.GatewayURL+"/v1/observe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var obs struct {
		Added  int `json:"added"`
		Shards []struct {
			Shard      string `json:"shard"`
			Generation uint64 `json:"generation"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&obs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(obs.Shards) != 1 || obs.Shards[0].Shard != sh.Name {
		t.Fatalf("observe fanout: status %d, %+v", resp.StatusCode, obs)
	}

	primaryGen := sh.Primary.Server.Generation()
	if primaryGen == 0 {
		t.Fatal("observe did not advance the primary generation")
	}
	rep := sh.Replicas[0]
	if rep.Server.Generation() == primaryGen {
		t.Fatal("replica already at primary generation before sync")
	}
	c.MustSync()
	if got := rep.Server.Generation(); got != primaryGen {
		t.Fatalf("replica at generation %d after sync, primary at %d", got, primaryGen)
	}

	// Same generation, same bytes: the replica's direct answer must equal the
	// primary's, post-observe model included.
	q := fmt.Sprintf("/v1/recommend?user=%d&t=2&n=5", user)
	_, pb, _ := get(t, sh.Primary.URL+q)
	_, rb, _ := get(t, rep.URL+q)
	if !bytes.Equal(pb, rb) {
		t.Fatalf("replica diverges from primary at generation %d:\n primary: %s\n replica: %s", primaryGen, pb, rb)
	}
}

// TestCorruptShipmentRejected arms a byte flip in a shipment and checks the
// CRC frame rejects it, the replica keeps its last good generation, and the
// next clean sync recovers.
func TestCorruptShipmentRejected(t *testing.T) {
	c := clustertest.New(t, clustertest.Config{Shards: 2, Replicas: 1})
	owned := ownedUsers(c)
	sh := c.Shards[0]
	user, ok := owned[sh.Name]
	if !ok {
		t.Skipf("shard %s owns no user below %d", sh.Name, c.Config.Users)
	}

	body := fmt.Sprintf(`{"checkins":[{"user":%d,"poi":2,"month":4}]}`, user)
	resp, err := http.Post(sh.Primary.URL+"/v1/observe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: status %d", resp.StatusCode)
	}

	rep := sh.Replicas[0]
	before := rep.Server.Generation()
	sh.Primary.CorruptNextShipment()
	errs := c.Sync()
	if err := errs[rep.Name]; !errors.Is(err, fault.ErrChecksum) {
		t.Fatalf("corrupt shipment: want ErrChecksum, got %v", err)
	}
	if got := rep.Server.Generation(); got != before {
		t.Fatalf("replica moved to generation %d on a corrupt shipment", got)
	}

	var met struct {
		Replication struct {
			Failures         int64 `json:"failures"`
			ChecksumRejected int64 `json:"checksum_rejected"`
		} `json:"replication"`
	}
	_, mb, _ := get(t, rep.URL+"/metrics")
	if err := json.Unmarshal(mb, &met); err != nil {
		t.Fatal(err)
	}
	if met.Replication.ChecksumRejected != 1 || met.Replication.Failures != 1 {
		t.Fatalf("replica replication counters: %+v", met.Replication)
	}

	// The corruption was one-shot: the next sync ships clean and catches up.
	c.MustSync()
	if got, want := rep.Server.Generation(), sh.Primary.Server.Generation(); got != want {
		t.Fatalf("replica at %d after clean sync, primary at %d", got, want)
	}
}

// TestGatewayMetricsMerge checks the merged /metrics document: counter sums
// across endpoints, cluster percentiles from concatenated latency windows,
// and the per-endpoint breakdown.
func TestGatewayMetricsMerge(t *testing.T) {
	c := clustertest.New(t, clustertest.Config{Shards: 2, Replicas: 1})

	const reads = 6
	for i := 0; i < reads; i++ {
		status, _, _ := get(t, fmt.Sprintf("%s/v1/recommend?user=%d&t=1&n=3", c.GatewayURL, i))
		if status != http.StatusOK {
			t.Fatalf("read %d: status %d", i, status)
		}
	}
	// One misroute hit directly on a shard (bypassing the gateway): pick a
	// user the first shard does not own.
	foreign := -1
	for u := 0; u < c.Config.Users; u++ {
		if c.Ring.Owner(u) != c.Shards[0].Name {
			foreign = u
			break
		}
	}
	if status, _, _ := get(t, fmt.Sprintf("%s/v1/recommend?user=%d&t=1&n=3", c.Shards[0].Primary.URL, foreign)); status != http.StatusMisdirectedRequest {
		t.Fatalf("direct foreign read: status %d, want 421", status)
	}

	var met struct {
		Shards    int `json:"shards"`
		Endpoints int `json:"endpoints"`
		Recommend struct {
			Count int64   `json:"count"`
			P50ms float64 `json:"p50_ms"`
			P99ms float64 `json:"p99_ms"`
		} `json:"recommend"`
		Totals struct {
			Misrouted int64 `json:"misrouted"`
		} `json:"totals"`
		Gateway struct {
			Requests  int64 `json:"requests"`
			Failovers int64 `json:"failovers"`
		} `json:"gateway"`
		PerEndpoint []struct {
			Shard     string `json:"shard"`
			Role      string `json:"role"`
			Recommend int64  `json:"recommend"`
		} `json:"per_endpoint"`
	}
	status, mb, _ := get(t, c.GatewayURL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("merged metrics: status %d", status)
	}
	if err := json.Unmarshal(mb, &met); err != nil {
		t.Fatal(err)
	}
	if met.Shards != 2 || met.Endpoints != 4 {
		t.Fatalf("topology: %d shards, %d endpoints", met.Shards, met.Endpoints)
	}
	// reads via gateway + 1 direct foreign attempt: the request counter sees
	// every arrival including the 421, which never reaches the latency ring.
	if met.Recommend.Count != reads+1 {
		t.Fatalf("merged recommend count %d, want %d", met.Recommend.Count, reads+1)
	}
	if met.Recommend.P50ms <= 0 || met.Recommend.P99ms < met.Recommend.P50ms {
		t.Fatalf("merged percentiles p50=%v p99=%v", met.Recommend.P50ms, met.Recommend.P99ms)
	}
	if met.Totals.Misrouted != 1 {
		t.Fatalf("merged misrouted %d, want 1", met.Totals.Misrouted)
	}
	if met.Gateway.Requests != reads {
		t.Fatalf("gateway request counter %d, want %d", met.Gateway.Requests, reads)
	}
	var perShardSum int64
	for _, ep := range met.PerEndpoint {
		if ep.Role == "replica" && ep.Recommend != 0 {
			t.Fatalf("replica %q served %d reads without a failover", ep.Shard, ep.Recommend)
		}
		perShardSum += ep.Recommend
	}
	if perShardSum != reads+1 {
		t.Fatalf("per-endpoint breakdown sums to %d, want %d", perShardSum, reads+1)
	}
}

// TestGatewayHealthRollup walks the cluster health state machine: all-ok,
// degraded (primary write path tripped / primary dead with live replica),
// and down (whole shard unreachable).
func TestGatewayHealthRollup(t *testing.T) {
	c := clustertest.New(t, clustertest.Config{Shards: 2, Replicas: 1})

	var health struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
		Shards  []struct {
			Shard  string `json:"shard"`
			Status string `json:"status"`
		} `json:"shards"`
	}
	check := func(wantStatus string, wantHTTP int) {
		t.Helper()
		status, hb, _ := get(t, c.GatewayURL+"/healthz")
		if err := json.Unmarshal(hb, &health); err != nil {
			t.Fatal(err)
		}
		if status != wantHTTP || health.Status != wantStatus {
			t.Fatalf("rollup %q (%d), want %q (%d): %s", health.Status, status, wantStatus, wantHTTP, hb)
		}
	}

	check("ok", http.StatusOK)

	// Dead replica, live primary: still ok — the partition is fully served.
	c.Shards[1].Replicas[0].Kill()
	check("ok", http.StatusOK)
	c.Shards[1].Replicas[0].Revive()

	// Dead primary, live replica: degraded, naming the shard.
	c.Shards[0].Primary.Kill()
	check("degraded", http.StatusOK)
	if len(health.Reasons) != 1 || !strings.Contains(health.Reasons[0], c.Shards[0].Name) {
		t.Fatalf("degraded reasons %v do not name shard %q", health.Reasons, c.Shards[0].Name)
	}

	// Whole shard dead: down, 503 — part of the keyspace is unservable.
	c.Shards[0].Replicas[0].Kill()
	check("down", http.StatusServiceUnavailable)

	c.Shards[0].Primary.Revive()
	c.Shards[0].Replicas[0].Revive()
	check("ok", http.StatusOK)
}

// TestGatewayHealthDegradedBreaker trips a primary's write-path circuit
// breaker via fault injection and checks the shard's degraded state (reads
// fine, writes rejected) surfaces in the cluster rollup with its reason.
func TestGatewayHealthDegradedBreaker(t *testing.T) {
	c := clustertest.New(t, clustertest.Config{Shards: 2, Replicas: 0})
	owned := ownedUsers(c)
	sh := c.Shards[0]
	user, ok := owned[sh.Name]
	if !ok {
		t.Skipf("shard %s owns no user below %d", sh.Name, c.Config.Users)
	}

	// Default breaker threshold is 3 consecutive write failures.
	sh.Primary.Faults.FailNext(3, errors.New("injected disk failure"))
	body := fmt.Sprintf(`{"checkins":[{"user":%d,"poi":1,"month":1}]}`, user)
	for i := 0; i < 3; i++ {
		resp, err := http.Post(sh.Primary.URL+"/v1/observe", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError && resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("injected write %d: status %d", i, resp.StatusCode)
		}
	}

	status, hb, _ := get(t, c.GatewayURL+"/healthz")
	var health struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || health.Status != "degraded" {
		t.Fatalf("rollup with tripped breaker: %q (%d), body %s", health.Status, status, hb)
	}
	if len(health.Reasons) == 0 || !strings.Contains(health.Reasons[0], sh.Name) {
		t.Fatalf("reasons %v do not name shard %q", health.Reasons, sh.Name)
	}
}

// TestGatewayObserveFanout sends one batch touching every shard and checks
// the gateway splits it by ownership and merges per-shard results.
func TestGatewayObserveFanout(t *testing.T) {
	c := clustertest.New(t, clustertest.Config{Shards: 3, Replicas: 0})
	owned := ownedUsers(c)
	if len(owned) < 2 {
		t.Skipf("only %d shards own users below %d", len(owned), c.Config.Users)
	}

	var checkins []string
	for _, u := range owned {
		checkins = append(checkins, fmt.Sprintf(`{"user":%d,"poi":1,"month":3}`, u))
	}
	body := `{"checkins":[` + strings.Join(checkins, ",") + `]}`
	resp, err := http.Post(c.GatewayURL+"/v1/observe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Added  int `json:"added"`
		Shards []struct {
			Shard      string `json:"shard"`
			CheckIns   int    `json:"checkins"`
			Added      int    `json:"added"`
			Generation uint64 `json:"generation"`
			Error      string `json:"error"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fanout observe: status %d", resp.StatusCode)
	}
	if len(out.Shards) != len(owned) {
		t.Fatalf("fanout touched %d shards, want %d", len(out.Shards), len(owned))
	}
	sum := 0
	for _, res := range out.Shards {
		if res.Error != "" {
			t.Fatalf("shard %s: %s", res.Shard, res.Error)
		}
		if res.Generation == 0 {
			t.Fatalf("shard %s did not advance its generation", res.Shard)
		}
		sum += res.Added
	}
	if sum != out.Added {
		t.Fatalf("merged added %d, per-shard sum %d", out.Added, sum)
	}
	// Each primary advanced exactly once; shards owning none of the batch
	// users stayed at generation 0.
	for _, sh := range c.Shards {
		want := uint64(0)
		if _, ok := owned[sh.Name]; ok {
			want = 1
		}
		if got := sh.Primary.Server.Generation(); got != want {
			t.Fatalf("shard %s at generation %d, want %d", sh.Name, got, want)
		}
	}
}

// TestGatewayRejectsBadReads covers the gateway's own 400 path and its
// pass-through of shard client errors.
func TestGatewayRejectsBadReads(t *testing.T) {
	c := clustertest.New(t, clustertest.Config{Shards: 2, Replicas: 0})
	if status, _, _ := get(t, c.GatewayURL+"/v1/recommend?user=bogus&t=1"); status != http.StatusBadRequest {
		t.Fatalf("bogus user: status %d, want 400", status)
	}
	// Out-of-range user: shard answers 400, gateway passes it through.
	if status, _, _ := get(t, fmt.Sprintf("%s/v1/recommend?user=%d&t=1", c.GatewayURL, 1<<20)); status != http.StatusBadRequest {
		t.Fatalf("out-of-range user: status %d, want 400", status)
	}
}

// post POSTs a JSON body to url and returns (status, body, response).
func post(t *testing.T, url, body string) (int, []byte, *http.Response) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw, resp
}

// TestGatewayNextRouting drives POST /v1/next through the gateway: requests
// land on the owning shard with bodies byte-identical to a direct read from
// that shard, survive primary failover (the buffered body is replayed against
// the replica), and surface in the merged metrics' next and models blocks.
func TestGatewayNextRouting(t *testing.T) {
	c := clustertest.New(t, clustertest.Config{Shards: 2, Replicas: 1, SeqModel: "STRNN"})
	body := `{"checkins":[{"poi":1,"t":0},{"poi":5,"t":2},{"poi":9,"t":4}]}`

	const reads = 8
	for u := 0; u < reads; u++ {
		q := fmt.Sprintf("/v1/next?user=%d&n=5", u)
		gs, gb, resp := post(t, c.GatewayURL+q, body)
		if gs != http.StatusOK {
			t.Fatalf("user %d: gateway status %d: %s", u, gs, gb)
		}
		shard := c.Ring.Owner(u)
		if got := resp.Header.Get("X-Shard"); got != shard {
			t.Fatalf("user %d routed to %q, ring owner is %q", u, got, shard)
		}
		if got := resp.Header.Get("X-Model"); got != "STRNN" {
			t.Fatalf("user %d: X-Model %q not forwarded", u, got)
		}
		var set *clustertest.Shard
		for _, sh := range c.Shards {
			if sh.Name == shard {
				set = sh
			}
		}
		ds, db, _ := post(t, set.Primary.URL+q, body)
		if ds != http.StatusOK || !bytes.Equal(gb, db) {
			t.Fatalf("user %d: gateway body %s != direct shard body %s (status %d)", u, gb, db, ds)
		}
	}

	// Failover: kill one primary; the buffered POST body must replay against
	// the replica and, with bit-identical seeded models, return the same bytes.
	owned := ownedUsers(c)
	sh := c.Shards[0]
	user, ok := owned[sh.Name]
	if !ok {
		t.Skipf("shard %s owns no user below %d", sh.Name, c.Config.Users)
	}
	q := fmt.Sprintf("/v1/next?user=%d&n=5", user)
	_, before, _ := post(t, c.GatewayURL+q, body)
	sh.Primary.Kill()
	status, after, resp := post(t, c.GatewayURL+q, body)
	if status != http.StatusOK {
		t.Fatalf("next after primary kill: status %d: %s", status, after)
	}
	if got := resp.Header.Get("X-Backend"); got != sh.Replicas[0].URL {
		t.Fatalf("served by %q after kill, want replica %q", got, sh.Replicas[0].URL)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("failover changed the answer:\n primary: %s\n replica: %s", before, after)
	}
	sh.Primary.Revive()

	var met struct {
		Next struct {
			Count int64   `json:"count"`
			P99ms float64 `json:"p99_ms"`
		} `json:"next"`
		Models []struct {
			Name         string `json:"name"`
			NextRequests int64  `json:"next_requests"`
		} `json:"models"`
	}
	mstatus, mb, _ := get(t, c.GatewayURL+"/metrics")
	if mstatus != http.StatusOK {
		t.Fatalf("merged metrics: status %d", mstatus)
	}
	if err := json.Unmarshal(mb, &met); err != nil {
		t.Fatal(err)
	}
	if met.Next.Count < reads {
		t.Fatalf("merged next count %d, want >= %d", met.Next.Count, reads)
	}
	if met.Next.P99ms <= 0 {
		t.Fatalf("merged next p99 %v, want > 0", met.Next.P99ms)
	}
	var strnn int64
	for _, mm := range met.Models {
		if mm.Name == "STRNN" {
			strnn = mm.NextRequests
		}
	}
	if strnn < reads {
		t.Fatalf("merged STRNN next_requests %d, want >= %d", strnn, reads)
	}
}
