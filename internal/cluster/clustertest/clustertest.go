// Package clustertest is a deterministic in-process harness for the sharded
// serving tier: N shards × R replicas plus a gateway, all on httptest
// servers inside one process. There are no real processes, no background
// polling, and no sleeps — replication advances only when the test calls
// Sync, failures happen only when the test injects them — so every test is
// reproducible and race-clean by construction.
package clustertest

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tcss"
	"tcss/internal/baselines"
	"tcss/internal/cluster"
	"tcss/internal/fault"
	"tcss/internal/lbsn"
	"tcss/internal/registry"
	"tcss/internal/serve"
)

// note: replicas share one immutable fitted model (Observe is copy-on-write
// on Model/Side, and replicas never observe), while each primary gets its own
// independent fit because Observe mutates the Recommender's dataset.

// Config sizes a test cluster. Zero values get small defaults.
type Config struct {
	Shards   int // default 4
	Replicas int // replicas per shard, default 1
	Vnodes   int // ring virtual nodes, default 128 (small: test rings are rebuilt often)
	Users    int // dataset users, default 40
	POIs     int // dataset POIs, default 36
	Seed     int64
	Serve    serve.Options // base options applied to every node

	// Gateway carries gateway tuning (hedging, retry budget, deadline
	// budgets, cooldowns) through to cluster.NewGateway; Vnodes and Client
	// are overridden by the harness (Client is always the chaos transport).
	Gateway cluster.GatewayOptions

	// SeqModel, when non-empty, registers this sequential baseline (STRNN,
	// STGN or STAN) on every node so the cluster serves POST /v1/next.
	// Training is seeded, so every node's copy is bit-identical and failover
	// answers match the primary exactly.
	SeqModel string
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Replicas < 0 {
		c.Replicas = 1
	}
	if c.Vnodes <= 0 {
		c.Vnodes = 128
	}
	if c.Users <= 0 {
		c.Users = 40
	}
	if c.POIs <= 0 {
		c.POIs = 36
	}
	if c.Seed == 0 {
		c.Seed = 21
	}
	return c
}

// Node is one serving process stand-in: a serve.Server behind an httptest
// listener with injectable fault middleware.
type Node struct {
	Name   string // "shard-0", "shard-0-replica-1", ...
	Shard  string
	Role   string
	Server *serve.Server
	URL    string
	Faults *fault.Hooks // the node's write-path fault seam
	Repl   *cluster.Replicator
	// Net is the replicator's network fault seam (replicas only): faults
	// armed here sit on this replica's path to its primary — a one-way
	// partition the gateway and other replicas never see.
	Net *fault.Transport

	http        *httptest.Server
	dead        atomic.Bool
	corruptNext atomic.Bool

	mu    sync.Mutex
	swaps []*serve.Snapshot
}

// Kill makes the node drop every connection mid-request, as a crashed
// process would. Clients observe transport errors, not HTTP statuses.
func (n *Node) Kill() { n.dead.Store(true) }

// Revive undoes Kill.
func (n *Node) Revive() { n.dead.Store(false) }

// CorruptNextShipment arms a one-shot byte flip in the next snapshot
// shipment this node serves; the replica's CRC frame must reject it.
func (n *Node) CorruptNextShipment() { n.corruptNext.Store(true) }

// Swaps returns every snapshot the node has published, oldest first,
// including the bootstrap snapshot.
func (n *Node) Swaps() []*serve.Snapshot {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]*serve.Snapshot(nil), n.swaps...)
}

// middleware wires the kill switch and shipment corruption around the
// server's handler.
func (n *Node) middleware(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.dead.Load() {
			// Abort the connection without a response: the closest in-process
			// analogue to a killed process.
			panic(http.ErrAbortHandler)
		}
		if r.URL.Path == "/v1/snapshot/bin" && n.corruptNext.CompareAndSwap(true, false) {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			if rec.Code == http.StatusOK && len(body) > 0 {
				body[len(body)/2] ^= 0x40
			}
			for k, vs := range rec.Header() {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(rec.Code)
			w.Write(body)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// Shard is one partition: a writable primary plus read-only replicas.
type Shard struct {
	Name     string
	Primary  *Node
	Replicas []*Node
}

// Cluster is the assembled test cluster.
type Cluster struct {
	Ring       *cluster.Ring
	Gateway    *cluster.Gateway
	GatewayURL string
	Shards     []*Shard
	Config     Config

	// Net is the gateway's network fault seam: faults armed here sit between
	// the gateway and the targeted endpoint (one-way — replicators keep their
	// own transports), so a partitioned primary is unreachable for reads yet
	// still ships snapshots to its replicas.
	Net *fault.Transport

	t    *testing.T
	gw   *httptest.Server
	base *tcss.Recommender // shared immutable model for replicas and Dist grafting
}

// New assembles a cluster per cfg. Every node fits the same deterministic
// model (same dataset, same seed), so all shards and replicas boot on an
// identical generation-0 snapshot — exactly what real deployments get from
// loading the same published snapshot file — and responses are bit-comparable
// against any single-node reference built the same way.
func New(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cfg = cfg.withDefaults()

	names := make([]string, cfg.Shards)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	ring, err := cluster.NewRing(names, cfg.Vnodes)
	if err != nil {
		t.Fatal(err)
	}

	c := &Cluster{Ring: ring, Config: cfg, t: t}
	c.base = c.fit(t)
	sets := make([]cluster.ShardSet, cfg.Shards)
	for i, name := range names {
		sh := &Shard{Name: name}
		sh.Primary = c.newNode(t, name, name, "primary", ring)
		set := cluster.ShardSet{Name: name, Primary: sh.Primary.URL}
		for rI := 0; rI < cfg.Replicas; rI++ {
			rep := c.newNode(t, fmt.Sprintf("%s-replica-%d", name, rI+1), name, "replica", ring)
			rep.Net = fault.NewTransport(nil, cfg.Seed+int64(i*100+rI+1))
			rep.Repl = &cluster.Replicator{
				Server:  rep.Server,
				Primary: sh.Primary.URL,
				Dist:    c.base.Side.Dist,
				Client:  &http.Client{Transport: rep.Net},
			}
			sh.Replicas = append(sh.Replicas, rep)
			set.Replicas = append(set.Replicas, rep.URL)
		}
		c.Shards = append(c.Shards, sh)
		sets[i] = set
	}

	c.Net = fault.NewTransport(nil, cfg.Seed)
	gwOpts := cfg.Gateway
	gwOpts.Vnodes = cfg.Vnodes
	gwOpts.Client = &http.Client{Transport: c.Net}
	gw, err := cluster.NewGateway(sets, gwOpts)
	if err != nil {
		t.Fatal(err)
	}
	c.Gateway = gw
	c.gw = httptest.NewServer(gw.Handler())
	c.GatewayURL = c.gw.URL
	t.Cleanup(c.gw.Close)
	return c
}

// fit trains the shared deterministic model. Each call returns an
// independent recommender (observes on one node must not alias another), but
// all of them are bit-identical because dataset and training are seeded.
func (c *Cluster) fit(t *testing.T) *tcss.Recommender {
	t.Helper()
	gen, err := lbsn.NewPreset("gmu-5k", c.Config.Seed)
	if err != nil {
		t.Fatal(err)
	}
	gen.Users, gen.POIs, gen.CheckInsPerUser = c.Config.Users, c.Config.POIs, 18
	ds, err := lbsn.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	tcfg := tcss.DefaultConfig()
	tcfg.Epochs = 8
	tcfg.Rank = 5
	tcfg.Seed = c.Config.Seed
	rec, err := tcss.Fit(ds, tcss.Month, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// fitSeq trains one copy of the configured sequential model on the shared
// base recommender's training tensor. Seeded training makes every copy
// bit-identical.
func (c *Cluster) fitSeq(t *testing.T) baselines.SeqServer {
	t.Helper()
	m, ok := baselines.SeqLookup(c.Config.SeqModel)
	if !ok {
		t.Fatalf("unknown sequential model %q", c.Config.SeqModel)
	}
	ctx := &baselines.Context{
		Train:  c.base.Train,
		Social: c.base.Dataset.Social,
		Dist:   c.base.Side.Dist,
		Rank:   4,
		Epochs: 2,
		Seed:   c.Config.Seed,
	}
	if err := m.(baselines.Recommender).Fit(ctx); err != nil {
		t.Fatalf("fitting %s: %v", c.Config.SeqModel, err)
	}
	return m
}

func (c *Cluster) newNode(t *testing.T, name, shard, role string, ring *cluster.Ring) *Node {
	t.Helper()
	n := &Node{Name: name, Shard: shard, Role: role, Faults: fault.NewHooks(c.Config.Seed)}

	opts := c.Config.Serve
	opts.ShardName = shard
	opts.Role = role
	opts.Owns = ring.Owns(shard)
	opts.Faults = n.Faults
	opts.OnSwap = func(snap *serve.Snapshot) {
		n.mu.Lock()
		n.swaps = append(n.swaps, snap)
		n.mu.Unlock()
	}
	if opts.Online.Epochs == 0 {
		opts.Online = tcss.DefaultOnlineConfig()
		opts.Online.Epochs = 3
	}
	if c.Config.SeqModel != "" {
		// Registries are single-server (the server registers itself as
		// primary), so each node gets its own holding a freshly trained —
		// and, by seeding, bit-identical — sequential model.
		reg := registry.New()
		if err := reg.Register(registry.NewSeqScorer(c.fitSeq(t), 1)); err != nil {
			t.Fatal(err)
		}
		opts.Registry = reg
	}

	var srv *serve.Server
	var err error
	if role == "primary" {
		srv, err = serve.New(c.fit(t), opts)
	} else {
		srv, err = serve.NewFromSource(
			&serve.StaticSource{Model: c.base.Model, Side: c.base.Side, Gran: c.base.Gran}, opts)
	}
	if err != nil {
		t.Fatal(err)
	}
	n.Server = srv
	n.http = httptest.NewServer(n.middleware(srv.Handler()))
	n.URL = n.http.URL
	t.Cleanup(func() { n.http.Close(); srv.Close() })
	return n
}

// Sync runs one replication cycle on every replica and fails the test on
// unexpected errors. Injected failures (killed primaries, corrupted
// shipments) are expected: Sync returns the per-replica errors instead of
// failing, so tests assert on them.
func (c *Cluster) Sync() map[string]error {
	c.t.Helper()
	errs := make(map[string]error)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, sh := range c.Shards {
		for _, rep := range sh.Replicas {
			if _, _, err := rep.Repl.SyncOnce(ctx); err != nil {
				errs[rep.Name] = err
			}
		}
	}
	return errs
}

// MustSync is Sync but fails the test on any replica error.
func (c *Cluster) MustSync() {
	c.t.Helper()
	for name, err := range c.Sync() {
		c.t.Fatalf("replica %s sync: %v", name, err)
	}
}

// ShardFor returns the shard owning the given user.
func (c *Cluster) ShardFor(user int) *Shard {
	idx := c.Ring.OwnerIndex(user)
	return c.Shards[idx]
}

// Reference builds a standalone single-node server over the identical
// fitted model, for bit-identity comparisons against cluster responses.
func (c *Cluster) Reference(t *testing.T) (*serve.Server, string) {
	t.Helper()
	opts := c.Config.Serve
	if opts.Online.Epochs == 0 {
		opts.Online = tcss.DefaultOnlineConfig()
		opts.Online.Epochs = 3
	}
	if c.Config.SeqModel != "" {
		reg := registry.New()
		if err := reg.Register(registry.NewSeqScorer(c.fitSeq(t), 1)); err != nil {
			t.Fatal(err)
		}
		opts.Registry = reg
	}
	srv, err := serve.New(c.fit(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs.URL
}
