package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"tcss/internal/geo"
	"tcss/internal/serve"
)

// Replicator keeps one replica server on its primary's snapshot generation by
// polling GET /v1/snapshot/bin?after=<last> and publishing verified shipments
// through serve.Server.Publish. A corrupt shipment (fault.ErrChecksum from
// the CRC32-C frame) or any transport failure leaves the replica serving its
// last good generation — replication can only move the replica forward, never
// break it.
type Replicator struct {
	// Server is the read-only replica the shipments are published into.
	Server *serve.Server
	// Primary is the base URL of the shard primary, e.g. "http://127.0.0.1:8001".
	Primary string
	// Dist is the replica's local POI distance matrix, grafted into shipped
	// side information (the wire format deliberately excludes the O(J²)
	// static matrix).
	Dist *geo.DistanceMatrix
	// Client is the HTTP client for fetches; http.DefaultClient when nil.
	Client *http.Client
	// Interval is the Run poll period; 500ms when zero. Tests drive SyncOnce
	// directly and never wait on this.
	Interval time.Duration

	last atomic.Uint64 // generation of the last applied shipment
}

// Generation returns the last generation this replicator applied (zero before
// the first successful sync; the replica's own bootstrap snapshot may be
// newer).
func (r *Replicator) Generation() uint64 { return r.last.Load() }

func (r *Replicator) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return http.DefaultClient
}

// SyncOnce performs one poll-fetch-publish cycle and reports the replica's
// generation afterwards plus whether a new snapshot was applied. Every
// outcome is recorded in the replica's /metrics via RecordReplication.
func (r *Replicator) SyncOnce(ctx context.Context) (gen uint64, applied bool, err error) {
	after := r.last.Load()
	if cur := r.Server.Generation(); cur > after {
		after = cur // don't re-fetch what bootstrap already gave us
	}
	url := fmt.Sprintf("%s/v1/snapshot/bin?after=%d", r.Primary, after)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		r.Server.RecordReplication(err)
		return after, false, err
	}
	resp, err := r.client().Do(req)
	if err != nil {
		r.Server.RecordReplication(err)
		return after, false, fmt.Errorf("cluster: fetching shipment: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		// Already current: a successful sync that shipped nothing.
		r.Server.RecordReplication(nil)
		return after, false, nil
	case http.StatusOK:
	default:
		io.Copy(io.Discard, resp.Body)
		err := fmt.Errorf("cluster: primary answered %s to shipment fetch", resp.Status)
		r.Server.RecordReplication(err)
		return after, false, err
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		r.Server.RecordReplication(err)
		return after, false, fmt.Errorf("cluster: reading shipment: %w", err)
	}
	model, side, shippedGen, err := serve.DecodeShipment(body, r.Dist)
	if err != nil {
		// Corrupt or torn shipment: counted (checksum_rejected when the CRC
		// caught it), last good snapshot keeps serving.
		r.Server.RecordReplication(err)
		return after, false, err
	}
	gen, err = r.Server.Publish(ctx, model, side, shippedGen)
	if err != nil {
		r.Server.RecordReplication(err)
		return after, false, err
	}
	// Open-world growth at the primary may have extended the distance matrix
	// (DecodeShipment grew or rebuilt it from shipped coordinates); keep the
	// grown matrix as the local baseline so the next sync grafts it directly.
	if side.Dist != nil && (r.Dist == nil || side.Dist.N > r.Dist.N) {
		r.Dist = side.Dist
	}
	r.Server.RecordReplication(nil)
	r.last.Store(gen)
	return gen, gen == shippedGen, nil
}

// Run polls SyncOnce every Interval until ctx is cancelled. Real deployments
// run this in a goroutine; tests call SyncOnce directly for deterministic,
// sleep-free replication.
func (r *Replicator) Run(ctx context.Context) {
	interval := r.Interval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			r.SyncOnce(ctx) // errors are in /metrics; keep polling
		}
	}
}
