package cluster

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"tcss/internal/geo"
	"tcss/internal/serve"
)

// Replicator keeps one replica server on its primary's snapshot generation by
// polling GET /v1/snapshot/bin?after=<last> and publishing verified shipments
// through serve.Server.Publish. A corrupt shipment (fault.ErrChecksum from
// the CRC32-C frame) or any transport failure leaves the replica serving its
// last good generation — replication can only move the replica forward, never
// break it.
type Replicator struct {
	// Server is the read-only replica the shipments are published into.
	Server *serve.Server
	// Primary is the base URL of the shard primary, e.g. "http://127.0.0.1:8001".
	Primary string
	// Dist is the replica's local POI distance matrix, grafted into shipped
	// side information (the wire format deliberately excludes the O(J²)
	// static matrix).
	Dist *geo.DistanceMatrix
	// Client is the HTTP client for fetches; http.DefaultClient when nil.
	// Hung primaries are bounded by SyncTimeout, not a client-wide timeout.
	Client *http.Client
	// Interval is the Run poll period; 500ms when zero. Tests drive SyncOnce
	// directly and never wait on this.
	Interval time.Duration
	// SyncTimeout bounds one SyncOnce cycle (fetch + decode + publish); 10s
	// when zero. Without it a hung primary would wedge the sync goroutine
	// forever — the replica would stop converging and never report why.
	SyncTimeout time.Duration
	// MaxBackoff caps the jittered exponential backoff Run applies after
	// consecutive sync failures; 16× the interval when zero.
	MaxBackoff time.Duration
	// Seed makes the backoff jitter deterministic in tests; 0 seeds from the
	// primary URL so concurrently-started replicas don't sync in lockstep.
	Seed int64

	last       atomic.Uint64 // generation of the last applied shipment
	primaryGen atomic.Uint64 // newest generation the primary has advertised
}

// Generation returns the last generation this replicator applied (zero before
// the first successful sync; the replica's own bootstrap snapshot may be
// newer).
func (r *Replicator) Generation() uint64 { return r.last.Load() }

func (r *Replicator) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return http.DefaultClient
}

// PrimaryGeneration returns the newest generation the primary has advertised
// to this replicator (zero before the first reachable sync). The gap between
// it and the replica's own generation is the replica's staleness.
func (r *Replicator) PrimaryGeneration() uint64 { return r.primaryGen.Load() }

// notePrimaryGen records the generation the primary advertised in a shipment
// response and forwards it to the replica server so /healthz and /metrics can
// report generation lag against MaxGenLag.
func (r *Replicator) notePrimaryGen(resp *http.Response) {
	raw := resp.Header.Get("X-Generation")
	if raw == "" {
		return
	}
	gen, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return
	}
	for {
		cur := r.primaryGen.Load()
		if gen <= cur || r.primaryGen.CompareAndSwap(cur, gen) {
			break
		}
	}
	r.Server.SetPrimaryGeneration(gen)
}

// SyncOnce performs one poll-fetch-publish cycle and reports the replica's
// generation afterwards plus whether a new snapshot was applied. The whole
// cycle runs under SyncTimeout, so a hung primary costs one bounded failed
// sync instead of a wedged goroutine. Every outcome is recorded in the
// replica's /metrics via RecordReplication.
func (r *Replicator) SyncOnce(ctx context.Context) (gen uint64, applied bool, err error) {
	timeout := r.SyncTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	after := r.last.Load()
	if cur := r.Server.Generation(); cur > after {
		after = cur // don't re-fetch what bootstrap already gave us
	}
	url := fmt.Sprintf("%s/v1/snapshot/bin?after=%d", r.Primary, after)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		r.Server.RecordReplication(err)
		return after, false, err
	}
	resp, err := r.client().Do(req)
	if err != nil {
		r.Server.RecordReplication(err)
		return after, false, fmt.Errorf("cluster: fetching shipment: %w", err)
	}
	defer resp.Body.Close()
	r.notePrimaryGen(resp)
	switch resp.StatusCode {
	case http.StatusNoContent:
		// Already current: a successful sync that shipped nothing.
		r.Server.RecordReplication(nil)
		return after, false, nil
	case http.StatusOK:
	default:
		io.Copy(io.Discard, resp.Body)
		err := fmt.Errorf("cluster: primary answered %s to shipment fetch", resp.Status)
		r.Server.RecordReplication(err)
		return after, false, err
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		r.Server.RecordReplication(err)
		return after, false, fmt.Errorf("cluster: reading shipment: %w", err)
	}
	model, side, shippedGen, err := serve.DecodeShipment(body, r.Dist)
	if err != nil {
		// Corrupt or torn shipment: counted (checksum_rejected when the CRC
		// caught it), last good snapshot keeps serving.
		r.Server.RecordReplication(err)
		return after, false, err
	}
	gen, err = r.Server.Publish(ctx, model, side, shippedGen)
	if err != nil {
		r.Server.RecordReplication(err)
		return after, false, err
	}
	// Open-world growth at the primary may have extended the distance matrix
	// (DecodeShipment grew or rebuilt it from shipped coordinates); keep the
	// grown matrix as the local baseline so the next sync grafts it directly.
	if side.Dist != nil && (r.Dist == nil || side.Dist.N > r.Dist.N) {
		r.Dist = side.Dist
	}
	r.Server.RecordReplication(nil)
	r.last.Store(gen)
	return gen, gen == shippedGen, nil
}

// Run polls SyncOnce every Interval until ctx is cancelled, backing off
// exponentially (with seeded jitter) on consecutive failures so a struggling
// primary isn't hammered by every replica at full poll rate: after k straight
// failures the next poll waits interval·2^k, jittered to [wait/2, wait) and
// capped at MaxBackoff. One success resets the cadence. Real deployments run
// this in a goroutine; tests call SyncOnce directly for deterministic,
// sleep-free replication.
func (r *Replicator) Run(ctx context.Context) {
	interval := r.Interval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	maxBackoff := r.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 16 * interval
	}
	seed := r.Seed
	if seed == 0 {
		for _, c := range r.Primary {
			seed = seed*31 + int64(c)
		}
		seed++ // never 0: rand.NewSource(0) is valid but keep intent explicit
	}
	rng := rand.New(rand.NewSource(seed))

	var fails int
	wait := interval
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
			if _, _, err := r.SyncOnce(ctx); err != nil && ctx.Err() == nil {
				// Errors are in /metrics; back off and keep polling.
				if fails < 30 {
					fails++
				}
				backoff := interval << uint(fails)
				if backoff <= 0 || backoff > maxBackoff {
					backoff = maxBackoff
				}
				wait = backoff/2 + time.Duration(rng.Int63n(int64(backoff/2)))
			} else {
				fails = 0
				wait = interval
			}
			timer.Reset(wait)
		}
	}
}
