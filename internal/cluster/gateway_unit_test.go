package cluster

import (
	"testing"
	"time"
)

// TestDownMarkSweep checks expired down marks are actually deleted — by the
// sweep on markDown and by the expiry check in isDown — so the map stays
// bounded across long deployments with churning endpoints.
func TestDownMarkSweep(t *testing.T) {
	now := time.Unix(0, 0)
	g, err := NewGateway(
		[]ShardSet{{Name: "s0", Primary: "http://primary"}},
		GatewayOptions{Now: func() time.Time { return now }},
	)
	if err != nil {
		t.Fatal(err)
	}

	g.markDown("http://a")
	g.markDown("http://b")
	if got := g.downLen(); got != 2 {
		t.Fatalf("down map holds %d marks, want 2", got)
	}

	// Past the 2s default cooldown: the next markDown sweeps both expired
	// marks, leaving only the fresh one.
	now = now.Add(3 * time.Second)
	g.markDown("http://c")
	if got := g.downLen(); got != 1 {
		t.Fatalf("down map holds %d marks after sweep, want 1", got)
	}
	if g.isDown("http://a") || g.isDown("http://b") {
		t.Fatal("swept endpoints still report down")
	}
	if !g.isDown("http://c") {
		t.Fatal("fresh mark not reported down")
	}

	// isDown on an expired mark deletes it too.
	now = now.Add(3 * time.Second)
	if g.isDown("http://c") {
		t.Fatal("expired mark still reported down")
	}
	if got := g.downLen(); got != 0 {
		t.Fatalf("down map holds %d marks after full expiry, want 0", got)
	}
}

// TestRetryBudgetRefill exercises the token bucket directly: the burst is
// spendable immediately, refill accrues with elapsed time, and tokens never
// exceed the burst cap.
func TestRetryBudgetRefill(t *testing.T) {
	b := &retryBudget{tokens: 2, burst: 2, rate: 1}
	now := time.Unix(0, 0)

	if !b.allow(now) || !b.allow(now) {
		t.Fatal("burst tokens not spendable")
	}
	if b.allow(now) {
		t.Fatal("empty bucket allowed a retry")
	}

	// 1.5s at 1 token/s refills 1.5 tokens: one retry allowed, not two.
	now = now.Add(1500 * time.Millisecond)
	if !b.allow(now) {
		t.Fatal("refilled bucket refused a retry")
	}
	if b.allow(now) {
		t.Fatal("bucket allowed more retries than the refill")
	}

	// A long idle period caps at burst, never beyond it.
	now = now.Add(time.Hour)
	if !b.allow(now) || !b.allow(now) {
		t.Fatal("capped bucket refused its burst")
	}
	if b.allow(now) {
		t.Fatal("bucket exceeded its burst cap after idling")
	}
}
