package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// shardMetricsDoc is the subset of a shard's /metrics document the gateway
// merges. It deliberately mirrors serve's JSON rather than importing its
// types: the gateway only depends on the wire contract, and unknown fields
// added by future shard versions are ignored instead of breaking the merge.
type shardMetricsDoc struct {
	Shard struct {
		Name      string `json:"name"`
		Role      string `json:"role"`
		Misrouted int64  `json:"misrouted"`
	} `json:"shard"`
	Recommend struct {
		Count int64 `json:"count"`
	} `json:"recommend"`
	Explain struct {
		Count int64 `json:"count"`
	} `json:"explain"`
	Next struct {
		Count int64 `json:"count"`
	} `json:"next"`
	Observe struct {
		Count int64 `json:"count"`
	} `json:"observe"`
	ObservePipeline struct {
		GrownUsers         int64 `json:"observe_grown_users"`
		GrownPOIs          int64 `json:"observe_grown_pois"`
		RejectedCompact    int64 `json:"observe_rejected_compact"`
		RejectedOutOfRange int64 `json:"observe_rejected_out_of_range"`
	} `json:"observe_pipeline"`
	BadRequests    int64 `json:"bad_requests"`
	Shed           int64 `json:"shed_503"`
	DeadlineMissed int64 `json:"deadline_504"`
	InternalErrors int64 `json:"internal_500"`
	Snapshot       struct {
		Generation uint64 `json:"generation"`
	} `json:"snapshot"`
	Replication struct {
		ShipmentsServed  int64 `json:"shipments_served"`
		Applied          int64 `json:"applied"`
		Syncs            int64 `json:"syncs"`
		Failures         int64 `json:"failures"`
		ChecksumRejected int64 `json:"checksum_rejected"`
	} `json:"replication"`
	Models  []shardModelDoc `json:"models"`
	Windows *struct {
		RecommendMs []float64 `json:"recommend_ms"`
		ExplainMs   []float64 `json:"explain_ms"`
		NextMs      []float64 `json:"next_ms"`
		ObserveMs   []float64 `json:"observe_ms"`
	} `json:"windows"`
}

// shardModelDoc is one entry of a shard's multi-model block, again mirroring
// the wire contract instead of importing serve/registry types.
type shardModelDoc struct {
	Name         string `json:"name"`
	Generation   uint64 `json:"generation"`
	Requests     int64  `json:"requests"`
	NextRequests int64  `json:"next_requests"`
	CacheHits    int64  `json:"cache_hits"`
	NotReady     int64  `json:"not_ready_503"`
	Shadow       struct {
		Scored       int64   `json:"scored"`
		Errors       int64   `json:"errors"`
		AgreementAvg float64 `json:"agreement_avg"`
		ExactFrac    float64 `json:"exact_frac"`
	} `json:"shadow"`
}

// mergedModel is one model's cluster-wide rollup: counters sum across
// endpoints; shadow agreement fractions are weighted by each endpoint's
// scored count so the merge equals the fraction over all scorings.
type mergedModel struct {
	Name         string  `json:"name"`
	Requests     int64   `json:"requests"`
	NextRequests int64   `json:"next_requests"`
	CacheHits    int64   `json:"cache_hits"`
	NotReady     int64   `json:"not_ready_503"`
	ShadowScored int64   `json:"shadow_scored"`
	ShadowErrors int64   `json:"shadow_errors"`
	AgreementAvg float64 `json:"shadow_agreement_avg"`
	ExactFrac    float64 `json:"shadow_exact_frac"`
}

// routeAgg is one request class merged across the cluster: summed counts and
// percentiles computed over the concatenation of every endpoint's raw latency
// window — per-shard percentiles cannot be merged, raw samples can.
type routeAgg struct {
	Count int64   `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
	P99ms float64 `json:"p99_ms"`
}

// endpointMetrics is the per-endpoint breakdown in the merged document.
type endpointMetrics struct {
	Shard      string `json:"shard"`
	Role       string `json:"role"`
	Endpoint   string `json:"endpoint"`
	Generation uint64 `json:"generation"`
	Recommend  int64  `json:"recommend"`
	Explain    int64  `json:"explain"`
	Next       int64  `json:"next"`
	Observe    int64  `json:"observe"`
	Misrouted  int64  `json:"misrouted"`
}

// clusterMetrics is the document served by the gateway's GET /metrics.
type clusterMetrics struct {
	Shards      int      `json:"shards"`
	Endpoints   int      `json:"endpoints"`
	Unreachable []string `json:"unreachable,omitempty"`

	Recommend routeAgg `json:"recommend"`
	Explain   routeAgg `json:"explain"`
	Next      routeAgg `json:"next"`
	Observe   routeAgg `json:"observe"`

	Models []mergedModel `json:"models,omitempty"`

	Totals struct {
		BadRequests    int64 `json:"bad_requests"`
		Shed           int64 `json:"shed_503"`
		DeadlineMissed int64 `json:"deadline_504"`
		InternalErrors int64 `json:"internal_500"`
		Misrouted      int64 `json:"misrouted"`
	} `json:"totals"`

	// Growth sums the shards' open-world growth counters. GrownPOIs counts
	// per-shard row additions, so with POI openings duplicated to every
	// shard it is roughly shards × the number of distinct openings.
	Growth struct {
		GrownUsers         int64 `json:"observe_grown_users"`
		GrownPOIs          int64 `json:"observe_grown_pois"`
		RejectedCompact    int64 `json:"observe_rejected_compact"`
		RejectedOutOfRange int64 `json:"observe_rejected_out_of_range"`
	} `json:"growth"`

	Replication struct {
		ShipmentsServed  int64 `json:"shipments_served"`
		Applied          int64 `json:"applied"`
		Syncs            int64 `json:"syncs"`
		Failures         int64 `json:"failures"`
		ChecksumRejected int64 `json:"checksum_rejected"`
	} `json:"replication"`

	Gateway struct {
		Requests       int64 `json:"requests"`
		Failovers      int64 `json:"failovers"`
		BackendErrors  int64 `json:"backend_errors"`
		ObserveFanouts int64 `json:"observe_fanouts"`
		// Resilience counters: token-charged retries, retries refused by the
		// drained token bucket, hedged attempts fired and won, and reads that
		// 504ed on a drained deadline budget.
		Retries              int64 `json:"retries"`
		RetryBudgetExhausted int64 `json:"retry_budget_exhausted"`
		Hedges               int64 `json:"hedges"`
		HedgeWins            int64 `json:"hedge_wins"`
		DeadlineMissed       int64 `json:"deadline_504"`
	} `json:"gateway"`

	PerEndpoint []endpointMetrics `json:"per_endpoint"`
}

// percentiles computes p50/p95/p99 of samples (sorted in place), matching the
// per-shard definition so a one-shard cluster reports the same numbers the
// shard does.
func percentiles(samples []float64) (p50, p95, p99 float64) {
	n := len(samples)
	if n == 0 {
		return 0, 0, 0
	}
	sort.Float64s(samples)
	at := func(p float64) float64 {
		idx := int(p*float64(n)) - 1
		if idx < 0 {
			idx = 0
		}
		return samples[idx]
	}
	return at(0.50), at(0.95), at(0.99)
}

// endpointRole labels an endpoint by its position in the shard set.
type taggedEndpoint struct {
	shard string
	role  string
	url   string
}

func (g *Gateway) allEndpoints() []taggedEndpoint {
	var eps []taggedEndpoint
	for _, set := range g.sets {
		eps = append(eps, taggedEndpoint{shard: set.Name, role: "primary", url: set.Primary})
		for _, rep := range set.Replicas {
			eps = append(eps, taggedEndpoint{shard: set.Name, role: "replica", url: rep})
		}
	}
	return eps
}

// fetchJSON GETs path from every endpoint concurrently, decoding each body
// into a value produced by newDoc; failed endpoints report err instead.
type endpointResult[T any] struct {
	ep  taggedEndpoint
	doc T
	err error
}

func fetchAll[T any](ctx context.Context, g *Gateway, path string) []endpointResult[T] {
	eps := g.allEndpoints()
	out := make([]endpointResult[T], len(eps))
	var wg sync.WaitGroup
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep taggedEndpoint) {
			defer wg.Done()
			out[i].ep = ep
			// Bound each fan-out fetch by the per-try timeout so one hung
			// endpoint delays the merge, not wedges it.
			fctx, cancel := context.WithTimeout(ctx, g.perTry)
			defer cancel()
			req, err := http.NewRequestWithContext(fctx, http.MethodGet, ep.url+path, nil)
			if err != nil {
				out[i].err = err
				return
			}
			resp, err := g.client.Do(req)
			if err != nil {
				out[i].err = err
				return
			}
			defer resp.Body.Close()
			if err := json.NewDecoder(resp.Body).Decode(&out[i].doc); err != nil {
				out[i].err = fmt.Errorf("decoding %s%s: %w", ep.url, path, err)
			}
		}(i, ep)
	}
	wg.Wait()
	return out
}

// serveMetrics fans /metrics?window=1 to every endpoint and merges: counters
// sum, latency percentiles are recomputed over the concatenated raw windows,
// and the per-endpoint breakdown keeps each node individually inspectable.
func (g *Gateway) serveMetrics(w http.ResponseWriter, r *http.Request) {
	g.met.scrapes.Add(1)
	results := fetchAll[shardMetricsDoc](r.Context(), g, "/metrics?window=1")

	var out clusterMetrics
	out.Shards = len(g.sets)
	out.Endpoints = len(results)
	var recWin, expWin, nextWin, obsWin []float64
	modelAgg := make(map[string]*mergedModel)
	modelWeight := make(map[string]struct{ agree, exact float64 })
	for _, res := range results {
		if res.err != nil {
			out.Unreachable = append(out.Unreachable, res.ep.url)
			continue
		}
		d := res.doc
		out.Recommend.Count += d.Recommend.Count
		out.Explain.Count += d.Explain.Count
		out.Next.Count += d.Next.Count
		out.Observe.Count += d.Observe.Count
		for _, md := range d.Models {
			mm, ok := modelAgg[md.Name]
			if !ok {
				mm = &mergedModel{Name: md.Name}
				modelAgg[md.Name] = mm
			}
			mm.Requests += md.Requests
			mm.NextRequests += md.NextRequests
			mm.CacheHits += md.CacheHits
			mm.NotReady += md.NotReady
			mm.ShadowScored += md.Shadow.Scored
			mm.ShadowErrors += md.Shadow.Errors
			w := modelWeight[md.Name]
			w.agree += md.Shadow.AgreementAvg * float64(md.Shadow.Scored)
			w.exact += md.Shadow.ExactFrac * float64(md.Shadow.Scored)
			modelWeight[md.Name] = w
		}
		out.Totals.BadRequests += d.BadRequests
		out.Totals.Shed += d.Shed
		out.Totals.DeadlineMissed += d.DeadlineMissed
		out.Totals.InternalErrors += d.InternalErrors
		out.Totals.Misrouted += d.Shard.Misrouted
		out.Growth.GrownUsers += d.ObservePipeline.GrownUsers
		out.Growth.GrownPOIs += d.ObservePipeline.GrownPOIs
		out.Growth.RejectedCompact += d.ObservePipeline.RejectedCompact
		out.Growth.RejectedOutOfRange += d.ObservePipeline.RejectedOutOfRange
		out.Replication.ShipmentsServed += d.Replication.ShipmentsServed
		out.Replication.Applied += d.Replication.Applied
		out.Replication.Syncs += d.Replication.Syncs
		out.Replication.Failures += d.Replication.Failures
		out.Replication.ChecksumRejected += d.Replication.ChecksumRejected
		if d.Windows != nil {
			recWin = append(recWin, d.Windows.RecommendMs...)
			expWin = append(expWin, d.Windows.ExplainMs...)
			nextWin = append(nextWin, d.Windows.NextMs...)
			obsWin = append(obsWin, d.Windows.ObserveMs...)
		}
		out.PerEndpoint = append(out.PerEndpoint, endpointMetrics{
			Shard:      res.ep.shard,
			Role:       res.ep.role,
			Endpoint:   res.ep.url,
			Generation: d.Snapshot.Generation,
			Recommend:  d.Recommend.Count,
			Explain:    d.Explain.Count,
			Next:       d.Next.Count,
			Observe:    d.Observe.Count,
			Misrouted:  d.Shard.Misrouted,
		})
	}
	out.Recommend.P50ms, out.Recommend.P95ms, out.Recommend.P99ms = percentiles(recWin)
	out.Explain.P50ms, out.Explain.P95ms, out.Explain.P99ms = percentiles(expWin)
	out.Next.P50ms, out.Next.P95ms, out.Next.P99ms = percentiles(nextWin)
	out.Observe.P50ms, out.Observe.P95ms, out.Observe.P99ms = percentiles(obsWin)
	names := make([]string, 0, len(modelAgg))
	for name := range modelAgg {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mm := modelAgg[name]
		if mm.ShadowScored > 0 {
			w := modelWeight[name]
			mm.AgreementAvg = w.agree / float64(mm.ShadowScored)
			mm.ExactFrac = w.exact / float64(mm.ShadowScored)
		}
		out.Models = append(out.Models, *mm)
	}
	out.Gateway.Requests = g.met.requests.Load()
	out.Gateway.Failovers = g.met.failovers.Load()
	out.Gateway.BackendErrors = g.met.backendErrors.Load()
	out.Gateway.ObserveFanouts = g.met.observeFanouts.Load()
	out.Gateway.Retries = g.met.retries.Load()
	out.Gateway.RetryBudgetExhausted = g.met.retryExhausted.Load()
	out.Gateway.Hedges = g.met.hedges.Load()
	out.Gateway.HedgeWins = g.met.hedgeWins.Load()
	out.Gateway.DeadlineMissed = g.met.deadlineMissed.Load()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&out)
}

// shardHealthDoc is the subset of a node's /healthz the gateway rolls up.
type shardHealthDoc struct {
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Reason     string `json:"reason"`
}

type endpointHealth struct {
	Endpoint   string `json:"endpoint"`
	Role       string `json:"role"`
	Status     string `json:"status"`
	Generation uint64 `json:"generation"`
	Reason     string `json:"reason,omitempty"`
}

type shardHealth struct {
	Shard     string           `json:"shard"`
	Status    string           `json:"status"`
	Endpoints []endpointHealth `json:"endpoints"`
}

type clusterHealth struct {
	Status  string        `json:"status"`
	Shards  []shardHealth `json:"shards"`
	Reasons []string      `json:"reasons,omitempty"`
}

// serveHealthz fans /healthz to every endpoint and rolls up: a shard is "ok"
// when its primary is, "degraded" when the primary is degraded or reads have
// failed over to a replica, and "down" when no endpoint can serve. The
// cluster is as healthy as its worst shard; a down shard makes the rollup
// 503 because part of the keyspace is unservable.
func (g *Gateway) serveHealthz(w http.ResponseWriter, r *http.Request) {
	results := fetchAll[shardHealthDoc](r.Context(), g, "/healthz")
	byShard := make(map[string][]endpointResult[shardHealthDoc])
	for _, res := range results {
		byShard[res.ep.shard] = append(byShard[res.ep.shard], res)
	}

	out := clusterHealth{Status: "ok"}
	worst := 0 // 0 ok, 1 degraded, 2 down
	for _, set := range g.sets {
		sh := shardHealth{Shard: set.Name, Status: "ok"}
		var primaryOK, anyOK bool
		var primaryReason string
		for _, res := range byShard[set.Name] {
			eh := endpointHealth{Endpoint: res.ep.url, Role: res.ep.role}
			if res.err != nil {
				eh.Status = "unreachable"
				eh.Reason = res.err.Error()
			} else {
				eh.Status = res.doc.Status
				eh.Generation = res.doc.Generation
				eh.Reason = res.doc.Reason
			}
			healthy := eh.Status == "ok"
			if res.ep.role == "primary" {
				primaryOK = healthy
				if !healthy {
					primaryReason = eh.Status
					if eh.Reason != "" {
						primaryReason += ": " + eh.Reason
					}
				}
			}
			// A degraded node still serves reads from its last snapshot.
			if healthy || eh.Status == "degraded" {
				anyOK = true
			}
			sh.Endpoints = append(sh.Endpoints, eh)
		}
		switch {
		case primaryOK:
		case anyOK:
			sh.Status = "degraded"
			out.Reasons = append(out.Reasons,
				fmt.Sprintf("shard %q: primary %s, serving from remaining endpoints", set.Name, primaryReason))
			if worst < 1 {
				worst = 1
			}
		default:
			sh.Status = "down"
			out.Reasons = append(out.Reasons,
				fmt.Sprintf("shard %q: no endpoint can serve (primary %s)", set.Name, primaryReason))
			worst = 2
		}
		out.Shards = append(out.Shards, sh)
	}
	status := http.StatusOK
	switch worst {
	case 1:
		out.Status = "degraded"
	case 2:
		out.Status = "down"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(&out)
}
