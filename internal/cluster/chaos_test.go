package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"tcss/internal/cluster"
	"tcss/internal/cluster/clustertest"
	"tcss/internal/fault"
)

// gwMetrics decodes the merged /metrics gateway block the chaos suites
// assert on.
type gwMetrics struct {
	Gateway struct {
		Requests             int64 `json:"requests"`
		Failovers            int64 `json:"failovers"`
		BackendErrors        int64 `json:"backend_errors"`
		Retries              int64 `json:"retries"`
		RetryBudgetExhausted int64 `json:"retry_budget_exhausted"`
		Hedges               int64 `json:"hedges"`
		HedgeWins            int64 `json:"hedge_wins"`
		DeadlineMissed       int64 `json:"deadline_504"`
	} `json:"gateway"`
}

func gatewayMetrics(t *testing.T, c *clustertest.Cluster) gwMetrics {
	t.Helper()
	status, mb, _ := get(t, c.GatewayURL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("merged metrics: status %d", status)
	}
	var met gwMetrics
	if err := json.Unmarshal(mb, &met); err != nil {
		t.Fatal(err)
	}
	return met
}

// TestChaosSeededSchedule drives the cluster through a seeded fault schedule
// — partition the primary from the gateway, hang a replica, tear snapshot
// shipments mid-body, heal — and holds the resilience invariants throughout:
// every 200 is bit-identical to a standalone reference over the same model,
// retries stay bounded (no storm, no budget exhaustion), no read misses its
// deadline budget, and the cluster reconverges to the primary's exact
// generation after healing.
func TestChaosSeededSchedule(t *testing.T) {
	c := clustertest.New(t, clustertest.Config{
		Shards: 2, Replicas: 2, Seed: 97,
		Gateway: cluster.GatewayOptions{
			PerTryTimeout: 150 * time.Millisecond,
			RetryBurst:    50,
			RetryRate:     0.0001, // effectively no refill: retries draw down a fixed pool
		},
	})
	_, refURL := c.Reference(t)
	owned := ownedUsers(c)
	sh := c.Shards[0]
	if _, ok := owned[sh.Name]; !ok {
		t.Skipf("shard %s owns no user below %d", sh.Name, c.Config.Users)
	}

	// verify reads every shard's owned user through the gateway and demands a
	// 200 bit-identical to the reference — under every fault phase.
	verify := func(phase string) {
		t.Helper()
		for name, u := range owned {
			q := fmt.Sprintf("/v1/recommend?user=%d&t=2&n=5", u)
			gs, gb, _ := get(t, c.GatewayURL+q)
			rs, rb, _ := get(t, refURL+q)
			if gs != http.StatusOK || rs != http.StatusOK {
				t.Fatalf("[%s] shard %s user %d: gateway %d, reference %d: %s", phase, name, u, gs, rs, gb)
			}
			if !bytes.Equal(gb, rb) {
				t.Fatalf("[%s] shard %s user %d: gateway body %s != reference %s", phase, name, u, gb, rb)
			}
		}
	}

	verify("baseline")
	c.MustSync()

	// Phase 1: one-way partition — the gateway cannot reach shard-0's primary,
	// but the primary is alive and replicas still sync from it.
	c.Net.Partition(sh.Primary.URL)
	verify("partitioned primary")
	c.MustSync() // replication is unaffected: the partition is gateway-side only

	// Phase 2: additionally hang replica-1 at the gateway. Reads fail over
	// past the partitioned primary and the hung replica (bounded by the
	// per-try timeout) to replica-2.
	c.Net.Set(sh.Replicas[0].URL, fault.NetFault{Hang: true})
	verify("partitioned primary + hung replica")

	// Phase 3: torn shipment burst. Heal the gateway path; arm one silent
	// corruption and one mid-body truncation on replica-1's own path to the
	// primary. An observe advances the primary so there is a real snapshot to
	// ship; both torn shipments must fail without moving the replica.
	c.Net.HealAll()
	user := owned[sh.Name]
	status, _, _ := post(t, c.GatewayURL+"/v1/observe",
		fmt.Sprintf(`{"checkins":[{"user":%d,"poi":2,"month":3}]}`, user))
	if status != http.StatusOK {
		t.Fatalf("observe through healed gateway: status %d", status)
	}
	rep := sh.Replicas[0]
	before := rep.Server.Generation()
	rep.Net.Schedule(sh.Primary.URL, []fault.NetFault{
		{CorruptByte: 100, Count: 1},
		{TruncateBody: 64, Count: 1},
	})
	for i := 0; i < 2; i++ {
		errs := c.Sync()
		if errs[rep.Name] == nil {
			t.Fatalf("torn shipment %d applied cleanly", i)
		}
		if got := rep.Server.Generation(); got != before {
			t.Fatalf("replica advanced to generation %d on a torn shipment", got)
		}
	}

	// Phase 4: heal everything and reconverge. The drained schedule ships
	// clean; every node lands on the primary's exact generation and the
	// replica's direct answer matches the primary's byte for byte.
	c.MustSync()
	wantGen := sh.Primary.Server.Generation()
	for _, r := range sh.Replicas {
		if got := r.Server.Generation(); got != wantGen {
			t.Fatalf("replica %s at generation %d after heal, primary at %d", r.Name, got, wantGen)
		}
	}
	q := fmt.Sprintf("/v1/recommend?user=%d&t=2&n=5", user)
	_, pb, _ := get(t, sh.Primary.URL+q)
	_, rb, _ := get(t, rep.URL+q)
	if !bytes.Equal(pb, rb) {
		t.Fatalf("replica diverges after reconvergence:\n primary: %s\n replica: %s", pb, rb)
	}
	gs, gb, _ := get(t, c.GatewayURL+q)
	if gs != http.StatusOK || !bytes.Equal(gb, pb) {
		t.Fatalf("gateway after heal: status %d, body %s, primary %s", gs, gb, pb)
	}

	// Invariants over the whole schedule: faults really fired, failovers
	// happened, and retries stayed bounded — the near-zero refill rate means
	// the retry counter is a hard ceiling on amplification. Nothing 504ed and
	// the budget never ran dry: the schedule degraded gracefully.
	if c.Net.Injected() == 0 {
		t.Fatal("no gateway-side fault ever fired")
	}
	if rep.Net.Injected() != 2 {
		t.Fatalf("replica-side faults fired %d times, want 2", rep.Net.Injected())
	}
	met := gatewayMetrics(t, c)
	if met.Gateway.Failovers == 0 {
		t.Fatal("no read failed over during the schedule")
	}
	if met.Gateway.Retries < 2 || met.Gateway.Retries > 10 {
		t.Fatalf("gateway retries %d, want a small bounded count (2..10)", met.Gateway.Retries)
	}
	if met.Gateway.RetryBudgetExhausted != 0 {
		t.Fatalf("retry budget exhausted %d times under a bounded schedule", met.Gateway.RetryBudgetExhausted)
	}
	if met.Gateway.DeadlineMissed != 0 {
		t.Fatalf("%d reads missed their deadline budget", met.Gateway.DeadlineMissed)
	}
}

// TestChaosRetryBudgetBoundsRetries blacks out a whole shard and checks the
// token bucket turns unbounded retry amplification into bounded work: the
// first reads spend the burst failing over, then further reads are refused
// with 503 + Retry-After instead of hammering dead endpoints.
func TestChaosRetryBudgetBoundsRetries(t *testing.T) {
	c := clustertest.New(t, clustertest.Config{
		Shards: 1, Replicas: 1, Seed: 31,
		Gateway: cluster.GatewayOptions{
			RetryBurst:    2,
			RetryRate:     0.0001,
			PerTryTimeout: 100 * time.Millisecond,
		},
	})
	sh := c.Shards[0]
	c.Net.Partition(sh.Primary.URL)
	c.Net.Partition(sh.Replicas[0].URL)

	q := c.GatewayURL + "/v1/recommend?user=1&t=1&n=3"
	var exhausted int
	for i := 0; i < 5; i++ {
		status, body, resp := get(t, q)
		switch status {
		case http.StatusBadGateway:
			// Burst tokens still available: both candidates were tried.
		case http.StatusServiceUnavailable:
			exhausted++
			if resp.Header.Get("Retry-After") != "1" {
				t.Fatalf("read %d: 503 without Retry-After: %s", i, body)
			}
		default:
			t.Fatalf("read %d against a dead shard: status %d: %s", i, status, body)
		}
	}
	if exhausted < 3 {
		t.Fatalf("only %d of 5 reads hit the drained retry budget, want >= 3", exhausted)
	}

	met := gatewayMetrics(t, c)
	if met.Gateway.Retries != 2 {
		t.Fatalf("gateway spent %d retries, want exactly the burst (2)", met.Gateway.Retries)
	}
	if met.Gateway.RetryBudgetExhausted < 3 {
		t.Fatalf("retry_budget_exhausted %d, want >= 3", met.Gateway.RetryBudgetExhausted)
	}
}

// TestChaosHedgedReads slows the primary far past the hedge delay and checks
// the hedged candidate answers first with the identical bytes, the hedge
// counters advance, and the winner is the replica.
func TestChaosHedgedReads(t *testing.T) {
	c := clustertest.New(t, clustertest.Config{
		Shards: 1, Replicas: 1, Seed: 53,
		Gateway: cluster.GatewayOptions{
			Hedge:      true,
			HedgeDelay: 5 * time.Millisecond,
		},
	})
	_, refURL := c.Reference(t)
	sh := c.Shards[0]
	c.Net.Set(sh.Primary.URL, fault.NetFault{Latency: 500 * time.Millisecond})

	q := "/v1/recommend?user=1&t=2&n=5"
	start := time.Now()
	gs, gb, resp := get(t, c.GatewayURL+q)
	elapsed := time.Since(start)
	if gs != http.StatusOK {
		t.Fatalf("hedged read: status %d: %s", gs, gb)
	}
	if got := resp.Header.Get("X-Backend"); got != sh.Replicas[0].URL {
		t.Fatalf("hedged read served by %q, want replica %q", got, sh.Replicas[0].URL)
	}
	if elapsed >= 500*time.Millisecond {
		t.Fatalf("hedged read took %v — it waited out the slow primary", elapsed)
	}
	_, rb, _ := get(t, refURL+q)
	if !bytes.Equal(gb, rb) {
		t.Fatalf("hedged answer %s != reference %s", gb, rb)
	}

	met := gatewayMetrics(t, c)
	if met.Gateway.Hedges < 1 || met.Gateway.HedgeWins < 1 {
		t.Fatalf("hedge counters: hedges=%d hedge_wins=%d, want both >= 1",
			met.Gateway.Hedges, met.Gateway.HedgeWins)
	}
}

// TestChaosDeadlineBudget hangs every endpoint of a shard and checks the
// read dies by its deadline budget — a 504 in roughly budget time, not a
// wedge — both with the configured default and with a client-supplied
// X-Deadline-Budget header. It then heals and checks the per-hop budget the
// gateway stamps onto backends actually clamps their admission deadline.
func TestChaosDeadlineBudget(t *testing.T) {
	c := clustertest.New(t, clustertest.Config{
		Shards: 1, Replicas: 2, Seed: 71,
		Gateway: cluster.GatewayOptions{
			ReadBudget:    150 * time.Millisecond,
			PerTryTimeout: 80 * time.Millisecond,
			RetryBurst:    100,
		},
	})
	sh := c.Shards[0]
	c.Net.Set(sh.Primary.URL, fault.NetFault{Hang: true})
	for _, rep := range sh.Replicas {
		c.Net.Set(rep.URL, fault.NetFault{Hang: true})
	}

	q := c.GatewayURL + "/v1/recommend?user=1&t=1&n=3"
	start := time.Now()
	status, body, _ := get(t, q)
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("read against hung shard: status %d, want 504: %s", status, body)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("504 took %v, want roughly the 150ms budget", elapsed)
	}

	// Client-supplied budget: the header overrides the configured default, so
	// a caller with 100ms to spend is told 504 within that order of time even
	// if the gateway default were much larger.
	req, err := http.NewRequest(http.MethodGet, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(cluster.DeadlineBudgetHeader, "100")
	start = time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	elapsed = time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("read with 100ms header budget: status %d, want 504", resp.StatusCode)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("header-budgeted 504 took %v", elapsed)
	}

	met := gatewayMetrics(t, c)
	if met.Gateway.DeadlineMissed < 2 {
		t.Fatalf("deadline_504 %d, want >= 2", met.Gateway.DeadlineMissed)
	}

	// Healed: a normal read flows again, and because the gateway stamps its
	// 80ms per-hop budget onto the backend (far under the node's 2s default
	// request timeout), the node's admission clamps — deadline propagation
	// reaches all the way into the shard.
	c.Net.HealAll()
	if status, body, _ := get(t, q); status != http.StatusOK {
		t.Fatalf("read after heal: status %d: %s", status, body)
	}
	var nodeMet struct {
		Admission struct {
			BudgetClamped int64 `json:"deadline_budget_clamped"`
		} `json:"admission"`
	}
	_, mb, _ := get(t, sh.Primary.URL+"/metrics")
	if err := json.Unmarshal(mb, &nodeMet); err != nil {
		t.Fatal(err)
	}
	if nodeMet.Admission.BudgetClamped < 1 {
		t.Fatalf("primary deadline_budget_clamped %d, want >= 1", nodeMet.Admission.BudgetClamped)
	}
}

// TestChaosStalenessDegradedHealth bounds replica staleness: a replica that
// learns (via shipment response headers) that its primary is more than
// MaxGenLag generations ahead reports degraded health naming the lag, and
// recovers to ok once a clean sync catches it up.
func TestChaosStalenessDegradedHealth(t *testing.T) {
	cfg := clustertest.Config{Shards: 1, Replicas: 1, Seed: 41}
	cfg.Serve.MaxGenLag = 1
	c := clustertest.New(t, cfg)
	sh := c.Shards[0]
	rep := sh.Replicas[0]

	// Two observes directly on the primary: generation 2, replica still at 0.
	for i := 0; i < 2; i++ {
		status, body, _ := post(t, sh.Primary.URL+"/v1/observe",
			fmt.Sprintf(`{"checkins":[{"user":1,"poi":%d,"month":3}]}`, 2+i))
		if status != http.StatusOK {
			t.Fatalf("observe %d: status %d: %s", i, status, body)
		}
	}

	// A corrupted shipment fails to apply, but its response headers still
	// carry the primary's generation — the replica now knows it is 2 behind.
	rep.Net.Set(sh.Primary.URL, fault.NetFault{CorruptByte: 100, Count: 1})
	if errs := c.Sync(); errs[rep.Name] == nil {
		t.Fatal("corrupted shipment applied cleanly")
	}
	if got := rep.Repl.PrimaryGeneration(); got != 2 {
		t.Fatalf("replicator saw primary generation %d, want 2", got)
	}

	var health struct {
		Status string `json:"status"`
		Reason string `json:"reason"`
		GenLag uint64 `json:"generation_lag"`
	}
	_, hb, _ := get(t, rep.URL+"/healthz")
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || health.GenLag != 2 {
		t.Fatalf("stale replica health: %s", hb)
	}
	if want := "staleness: 2 generations behind primary (bound 1)"; health.Reason != want {
		t.Fatalf("degraded reason %q, want %q", health.Reason, want)
	}

	// The staleness also shows in the replica's own metrics document.
	var met struct {
		Replication struct {
			PrimaryGeneration uint64 `json:"primary_generation"`
			GenerationLag     uint64 `json:"generation_lag"`
			MaxGenLag         uint64 `json:"max_generation_lag"`
		} `json:"replication"`
	}
	_, mb, _ := get(t, rep.URL+"/metrics")
	if err := json.Unmarshal(mb, &met); err != nil {
		t.Fatal(err)
	}
	if met.Replication.PrimaryGeneration != 2 || met.Replication.GenerationLag != 2 || met.Replication.MaxGenLag != 1 {
		t.Fatalf("replica staleness metrics: %+v", met.Replication)
	}

	// A clean sync catches up and health returns to ok with zero lag
	// (generation_lag is omitempty, so clear the stale decode first).
	c.MustSync()
	health.Status, health.Reason, health.GenLag = "", "", 0
	_, hb, _ = get(t, rep.URL+"/healthz")
	if err := json.Unmarshal(hb, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.GenLag != 0 {
		t.Fatalf("replica health after clean sync: %s", hb)
	}
}

// TestChaosFreshnessPreferred checks the gateway routes reads to the
// freshest backend it knows about: after it has observed a replica serving a
// newer generation than anything else it has seen, that replica is tried
// first — ahead of the primary's base-order precedence.
func TestChaosFreshnessPreferred(t *testing.T) {
	clock := struct {
		mu  chan struct{}
		now time.Time
	}{mu: make(chan struct{}, 1), now: time.Unix(1000, 0)}
	clock.mu <- struct{}{}
	now := func() time.Time {
		<-clock.mu
		t := clock.now
		clock.mu <- struct{}{}
		return t
	}
	advance := func(d time.Duration) {
		<-clock.mu
		clock.now = clock.now.Add(d)
		clock.mu <- struct{}{}
	}

	c := clustertest.New(t, clustertest.Config{
		Shards: 1, Replicas: 2, Seed: 67,
		Gateway: cluster.GatewayOptions{
			Now:           now,
			PerTryTimeout: 100 * time.Millisecond,
		},
	})
	sh := c.Shards[0]
	repFresh := sh.Replicas[1] // deliberately the *last* base-order candidate

	// Advance the primary two generations and sync only replica-2.
	for i := 0; i < 2; i++ {
		status, body, _ := post(t, sh.Primary.URL+"/v1/observe",
			fmt.Sprintf(`{"checkins":[{"user":1,"poi":%d,"month":3}]}`, 2+i))
		if status != http.StatusOK {
			t.Fatalf("observe %d: status %d: %s", i, status, body)
		}
	}
	if _, _, err := repFresh.Repl.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Partition the primary and replica-1: the read fails over to replica-2,
	// and the gateway learns from its X-Generation header how fresh it is.
	c.Net.Partition(sh.Primary.URL)
	c.Net.Partition(sh.Replicas[0].URL)
	q := c.GatewayURL + "/v1/recommend?user=1&t=1&n=3"
	status, body, resp := get(t, q)
	if status != http.StatusOK || resp.Header.Get("X-Backend") != repFresh.URL {
		t.Fatalf("read under partition: status %d backend %q: %s", status, resp.Header.Get("X-Backend"), body)
	}
	if resp.Header.Get("X-Generation") != "2" {
		t.Fatalf("fresh replica answered generation %q, want 2", resp.Header.Get("X-Generation"))
	}

	// Heal and let the down marks expire. Every endpoint is reachable again,
	// but replica-2 is the freshest generation the gateway has ever seen on
	// this shard — so it is tried first, ahead of the (stale) primary record.
	c.Net.HealAll()
	advance(5 * time.Second)
	status, body, resp = get(t, q)
	if status != http.StatusOK {
		t.Fatalf("read after heal: status %d: %s", status, body)
	}
	if got := resp.Header.Get("X-Backend"); got != repFresh.URL {
		t.Fatalf("read after heal served by %q, want freshest replica %q", got, repFresh.URL)
	}
	// And the bytes are the primary's exact generation-2 answer.
	_, pb, _ := get(t, sh.Primary.URL+"/v1/recommend?user=1&t=1&n=3")
	if !bytes.Equal(body, pb) {
		t.Fatalf("freshest replica body %s != primary body %s", body, pb)
	}
}
