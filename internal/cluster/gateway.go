package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ShardSet names one shard and its endpoints: the writable primary plus zero
// or more read-only replicas fed by snapshot shipping, all as base URLs.
type ShardSet struct {
	Name     string
	Primary  string
	Replicas []string
}

// GatewayOptions tunes the gateway; the zero value is production-ready.
type GatewayOptions struct {
	// Vnodes is the ring's virtual-node count per shard (DefaultVnodes if 0).
	Vnodes int
	// Client issues all backend requests; http.DefaultClient when nil.
	Client *http.Client
	// DownCooldown is how long a failed endpoint is skipped before being
	// retried (2s when zero). Failover still works inside the cooldown — the
	// mark only changes which endpoint is tried first.
	DownCooldown time.Duration
	// Now is the clock (tests inject a fake one).
	Now func() time.Time
}

// gatewayMetrics counts what the gateway itself does, reported in the
// cluster /metrics document alongside the merged shard counters.
type gatewayMetrics struct {
	requests       atomic.Int64 // read requests routed
	failovers      atomic.Int64 // reads answered by a non-first candidate
	backendErrors  atomic.Int64 // candidate attempts that failed
	observeFanouts atomic.Int64 // observe batches split across shards
	scrapes        atomic.Int64 // merged /metrics scrapes served
}

// Gateway routes the serving API across a sharded cluster: reads go to the
// user's owning shard (replica failover on primary failure), observes are
// split by ownership and fanned to primaries, /metrics and /healthz fan out
// to every endpoint and merge. It holds no model state — only the ring and
// the endpoint table — so any number of gateways can front the same cluster.
type Gateway struct {
	ring     *Ring
	sets     []ShardSet
	byName   map[string]*ShardSet
	client   *http.Client
	cooldown time.Duration
	now      func() time.Time
	mux      *http.ServeMux
	met      gatewayMetrics

	mu   sync.Mutex
	down map[string]time.Time // endpoint base URL -> retry-after instant
}

// NewGateway builds a gateway over the given shard sets. Ring placement uses
// only shard names, so every gateway and shard configured with the same names
// agrees on ownership regardless of listing order.
func NewGateway(sets []ShardSet, opts GatewayOptions) (*Gateway, error) {
	names := make([]string, len(sets))
	for i, set := range sets {
		if set.Primary == "" {
			return nil, fmt.Errorf("cluster: shard %q has no primary endpoint", set.Name)
		}
		names[i] = set.Name
	}
	ring, err := NewRing(names, opts.Vnodes)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		ring:     ring,
		sets:     append([]ShardSet(nil), sets...),
		byName:   make(map[string]*ShardSet, len(sets)),
		client:   opts.Client,
		cooldown: opts.DownCooldown,
		now:      opts.Now,
		down:     make(map[string]time.Time),
	}
	for i := range g.sets {
		g.byName[g.sets[i].Name] = &g.sets[i]
	}
	if g.client == nil {
		g.client = http.DefaultClient
	}
	if g.cooldown <= 0 {
		g.cooldown = 2 * time.Second
	}
	if g.now == nil {
		g.now = time.Now
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/recommend", g.serveRead)
	mux.HandleFunc("GET /v1/explain", g.serveRead)
	mux.HandleFunc("POST /v1/next", g.serveRead)
	mux.HandleFunc("POST /v1/observe", g.serveObserve)
	mux.HandleFunc("GET /metrics", g.serveMetrics)
	mux.HandleFunc("GET /healthz", g.serveHealthz)
	g.mux = mux
	return g, nil
}

// Ring exposes the gateway's ring (tests assert routing against it).
func (g *Gateway) Ring() *Ring { return g.ring }

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

type gwError struct {
	Error string `json:"error"`
}

func (g *Gateway) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(gwError{Error: fmt.Sprintf(format, args...)})
}

// markDown records an endpoint failure; the endpoint is deprioritized until
// the cooldown elapses.
func (g *Gateway) markDown(endpoint string) {
	g.mu.Lock()
	g.down[endpoint] = g.now().Add(g.cooldown)
	g.mu.Unlock()
}

// isDown reports whether an endpoint is inside its failure cooldown.
func (g *Gateway) isDown(endpoint string) bool {
	g.mu.Lock()
	until, ok := g.down[endpoint]
	g.mu.Unlock()
	return ok && g.now().Before(until)
}

// candidates orders a shard's endpoints for a read: primary first, then
// replicas, with endpoints inside their failure cooldown moved to the back —
// never dropped, so a fully-marked shard still gets tried rather than
// blacking out on stale marks.
func (g *Gateway) candidates(set *ShardSet) []string {
	all := make([]string, 0, 1+len(set.Replicas))
	all = append(all, set.Primary)
	all = append(all, set.Replicas...)
	up := all[:0:len(all)]
	var cooling []string
	for _, ep := range all {
		if g.isDown(ep) {
			cooling = append(cooling, ep)
		} else {
			up = append(up, ep)
		}
	}
	return append(up, cooling...)
}

// retriable reports whether a backend status should trigger failover to the
// next candidate: transport-level failures are always retriable, and these
// statuses mean the node (not the request) has a problem. Client errors such
// as 400/404/421 pass through — another endpoint would answer the same.
func retriable(status int) bool {
	switch status {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// serveRead routes /v1/recommend, /v1/explain and POST /v1/next to the shard
// owning the user, trying the primary first and failing over through replicas
// on transport errors and 5xx. A POST body is buffered once so every failover
// candidate replays identical bytes. The winning response passes through
// byte-exact, tagged with X-Shard and X-Backend.
func (g *Gateway) serveRead(w http.ResponseWriter, r *http.Request) {
	g.met.requests.Add(1)
	user, err := strconv.Atoi(r.URL.Query().Get("user"))
	if err != nil {
		g.writeError(w, http.StatusBadRequest, "parameter %q: %v", "user", err)
		return
	}
	var body []byte
	if r.Method == http.MethodPost {
		body, err = io.ReadAll(r.Body)
		if err != nil {
			g.writeError(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
	}
	shard := g.ring.Owner(user)
	set := g.byName[shard]
	uri := r.URL.Path
	if r.URL.RawQuery != "" {
		uri += "?" + r.URL.RawQuery
	}

	var lastErr error
	for i, ep := range g.candidates(set) {
		var reqBody io.Reader
		if body != nil {
			reqBody = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, ep+uri, reqBody)
		if err != nil {
			lastErr = err
			continue
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := g.client.Do(req)
		if err != nil {
			g.met.backendErrors.Add(1)
			g.markDown(ep)
			lastErr = err
			continue
		}
		if retriable(resp.StatusCode) {
			g.met.backendErrors.Add(1)
			g.markDown(ep)
			lastErr = fmt.Errorf("endpoint %s answered %s", ep, resp.Status)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		if i > 0 {
			g.met.failovers.Add(1)
		}
		for _, h := range []string{"Content-Type", "X-Cache", "X-Model", "Retry-After"} {
			if v := resp.Header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.Header().Set("X-Shard", shard)
		w.Header().Set("X-Backend", ep)
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		return
	}
	g.writeError(w, http.StatusBadGateway, "shard %q: no endpoint answered: %v", shard, lastErr)
}

// gwCheckIn mirrors the serve observe schema so subsets re-marshal exactly.
type gwCheckIn struct {
	User  int `json:"user"`
	POI   int `json:"poi"`
	Month int `json:"month"`
	Week  int `json:"week"`
	Hour  int `json:"hour"`
}

type gwNewUser struct {
	ID      int   `json:"id"`
	Friends []int `json:"friends,omitempty"`
}

type gwPOI struct {
	ID       int     `json:"id"`
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	Category int     `json:"category"`
}

type gwObserveRequest struct {
	CheckIns []gwCheckIn `json:"checkins"`
	NewUsers []gwNewUser `json:"new_users,omitempty"`
	NewPOIs  []gwPOI     `json:"new_pois,omitempty"`
}

// shardObserveResult is one shard's slice of a fanned-out observe.
type shardObserveResult struct {
	Shard      string `json:"shard"`
	CheckIns   int    `json:"checkins"`
	Added      int    `json:"added"`
	Generation uint64 `json:"generation"`
	// Users/POIs are the shard's model dimensions after the batch — under
	// open-world growth they report how far the shard has grown.
	Users int    `json:"users,omitempty"`
	POIs  int    `json:"pois,omitempty"`
	Error string `json:"error,omitempty"`
}

type gwObserveResponse struct {
	Added  int                  `json:"added"`
	Shards []shardObserveResult `json:"shards"`
}

// serveObserve splits an observe batch by user ownership and posts each
// subset to the owning shard's primary (writes never go to replicas).
// Open-world arrivals route the same way: a new user goes to the shard the
// ring hashes its id to (consistent hashing needs no membership update for
// new ids), while a new POI is duplicated to every shard in the split — each
// shard carries the full POI space. The merged response reports per-shard
// cell counts and generations; any shard failure turns the overall status
// into 502 while still reporting the shards that succeeded.
func (g *Gateway) serveObserve(w http.ResponseWriter, r *http.Request) {
	var req gwObserveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		g.writeError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.CheckIns) == 0 && len(req.NewUsers) == 0 && len(req.NewPOIs) == 0 {
		g.writeError(w, http.StatusBadRequest, "no checkins in request")
		return
	}
	g.met.observeFanouts.Add(1)
	split := make(map[string]*gwObserveRequest)
	sub := func(shard string) *gwObserveRequest {
		if split[shard] == nil {
			split[shard] = &gwObserveRequest{}
		}
		return split[shard]
	}
	for _, c := range req.CheckIns {
		s := sub(g.ring.Owner(c.User))
		s.CheckIns = append(s.CheckIns, c)
	}
	for _, u := range req.NewUsers {
		s := sub(g.ring.Owner(u.ID))
		s.NewUsers = append(s.NewUsers, u)
	}
	if len(req.NewPOIs) > 0 {
		// Every shard scores over the full POI space, so POI openings go to
		// every primary, not just those owning this batch's users.
		for _, set := range g.sets {
			s := sub(set.Name)
			s.NewPOIs = append(s.NewPOIs, req.NewPOIs...)
		}
	}
	shards := make([]string, 0, len(split))
	for shard := range split {
		shards = append(shards, shard)
	}
	sort.Strings(shards)

	out := gwObserveResponse{Shards: make([]shardObserveResult, len(shards))}
	var wg sync.WaitGroup
	for i, shard := range shards {
		wg.Add(1)
		go func(i int, shard string) {
			defer wg.Done()
			out.Shards[i] = g.postObserve(r.Context(), shard, split[shard])
		}(i, shard)
	}
	wg.Wait()

	status := http.StatusOK
	for _, res := range out.Shards {
		out.Added += res.Added
		if res.Error != "" {
			status = http.StatusBadGateway
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(&out)
}

func (g *Gateway) postObserve(ctx context.Context, shard string, sub *gwObserveRequest) shardObserveResult {
	res := shardObserveResult{Shard: shard, CheckIns: len(sub.CheckIns)}
	body, err := json.Marshal(sub)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		g.byName[shard].Primary+"/v1/observe", bytes.NewReader(body))
	if err != nil {
		res.Error = err.Error()
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		g.met.backendErrors.Add(1)
		g.markDown(g.byName[shard].Primary)
		res.Error = err.Error()
		return res
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		var eb gwError
		json.Unmarshal(raw, &eb)
		if eb.Error == "" {
			eb.Error = resp.Status
		}
		res.Error = fmt.Sprintf("primary answered %d: %s", resp.StatusCode, eb.Error)
		return res
	}
	var ok struct {
		Added      int    `json:"added"`
		Generation uint64 `json:"generation"`
		Users      int    `json:"users"`
		POIs       int    `json:"pois"`
	}
	if err := json.Unmarshal(raw, &ok); err != nil {
		res.Error = err.Error()
		return res
	}
	res.Added, res.Generation = ok.Added, ok.Generation
	res.Users, res.POIs = ok.Users, ok.POIs
	return res
}
