package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ShardSet names one shard and its endpoints: the writable primary plus zero
// or more read-only replicas fed by snapshot shipping, all as base URLs.
type ShardSet struct {
	Name     string
	Primary  string
	Replicas []string
}

// DeadlineBudgetHeader carries a request's remaining deadline budget in
// integer milliseconds. The gateway stamps each backend hop with the budget
// that hop may spend; serve-side admission clamps its per-request timeout to
// it, so a backend never keeps working on a request whose gateway-side
// deadline has already passed.
const DeadlineBudgetHeader = "X-Deadline-Budget"

// GatewayOptions tunes the gateway; the zero value is production-ready.
type GatewayOptions struct {
	// Vnodes is the ring's virtual-node count per shard (DefaultVnodes if 0).
	Vnodes int
	// Client issues all backend requests; http.DefaultClient when nil. Hung
	// backends are bounded by the per-hop deadlines the gateway derives from
	// each request's budget, not by a client-wide timeout.
	Client *http.Client
	// DownCooldown is how long a failed endpoint is skipped before being
	// retried (2s when zero). Failover still works inside the cooldown — the
	// mark only changes which endpoint is tried first.
	DownCooldown time.Duration
	// ReadBudget is the total deadline budget of a read that arrives without
	// an X-Deadline-Budget header (2s when zero). The budget spans every
	// failover attempt; when it drains the gateway answers 504.
	ReadBudget time.Duration
	// PerTryTimeout caps one backend attempt (1s when zero, always clamped
	// to the remaining budget), so a hung endpoint costs one hop, not the
	// whole budget.
	PerTryTimeout time.Duration
	// RetryRate and RetryBurst shape the token-bucket retry budget charged
	// for every failover or hedge attempt beyond a request's first. A
	// flapping shard drains the bucket and further retries are refused with
	// 503 instead of amplifying into a retry storm. Defaults: 10 tokens/s,
	// burst 20.
	RetryRate  float64
	RetryBurst float64
	// Hedge enables hedged reads for GET /v1/recommend: if the first
	// candidate hasn't answered within HedgeDelay (30ms when zero), a second
	// candidate is fired and the first byte-valid response wins; the loser is
	// cancelled when the handler returns. Hedge attempts pay a retry token.
	Hedge      bool
	HedgeDelay time.Duration
	// Now is the clock (tests inject a fake one).
	Now func() time.Time
}

// gatewayMetrics counts what the gateway itself does, reported in the
// cluster /metrics document alongside the merged shard counters.
type gatewayMetrics struct {
	requests       atomic.Int64 // read requests routed
	failovers      atomic.Int64 // reads answered by a non-first candidate
	backendErrors  atomic.Int64 // candidate attempts that failed
	observeFanouts atomic.Int64 // observe batches split across shards
	scrapes        atomic.Int64 // merged /metrics scrapes served
	retries        atomic.Int64 // attempts beyond a request's first (token-charged)
	retryExhausted atomic.Int64 // retries refused by a drained token bucket
	hedges         atomic.Int64 // hedge attempts fired
	hedgeWins      atomic.Int64 // reads won by the hedged candidate
	deadlineMissed atomic.Int64 // reads 504ed on a drained deadline budget
}

// retryBudget is a token bucket charged for every failover or hedge attempt:
// tokens refill at rate per second up to burst, and an empty bucket refuses
// the retry — bounding cluster-wide retry amplification no matter how many
// endpoints flap.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	burst  float64
	rate   float64
	last   time.Time
}

func (b *retryBudget) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Gateway routes the serving API across a sharded cluster: reads go to the
// user's owning shard (replica failover on primary failure), observes are
// split by ownership and fanned to primaries, /metrics and /healthz fan out
// to every endpoint and merge. It holds no model state — only the ring and
// the endpoint table — so any number of gateways can front the same cluster.
type Gateway struct {
	ring       *Ring
	sets       []ShardSet
	byName     map[string]*ShardSet
	client     *http.Client
	cooldown   time.Duration
	readBudget time.Duration
	perTry     time.Duration
	hedge      bool
	hedgeDelay time.Duration
	now        func() time.Time
	mux        *http.ServeMux
	met        gatewayMetrics
	retry      retryBudget

	mu   sync.Mutex
	down map[string]time.Time // endpoint base URL -> retry-after instant
	gens map[string]uint64    // endpoint base URL -> last generation seen
}

// NewGateway builds a gateway over the given shard sets. Ring placement uses
// only shard names, so every gateway and shard configured with the same names
// agrees on ownership regardless of listing order.
func NewGateway(sets []ShardSet, opts GatewayOptions) (*Gateway, error) {
	names := make([]string, len(sets))
	for i, set := range sets {
		if set.Primary == "" {
			return nil, fmt.Errorf("cluster: shard %q has no primary endpoint", set.Name)
		}
		names[i] = set.Name
	}
	ring, err := NewRing(names, opts.Vnodes)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		ring:       ring,
		sets:       append([]ShardSet(nil), sets...),
		byName:     make(map[string]*ShardSet, len(sets)),
		client:     opts.Client,
		cooldown:   opts.DownCooldown,
		readBudget: opts.ReadBudget,
		perTry:     opts.PerTryTimeout,
		hedge:      opts.Hedge,
		hedgeDelay: opts.HedgeDelay,
		now:        opts.Now,
		down:       make(map[string]time.Time),
		gens:       make(map[string]uint64),
	}
	for i := range g.sets {
		g.byName[g.sets[i].Name] = &g.sets[i]
	}
	if g.client == nil {
		g.client = http.DefaultClient
	}
	if g.cooldown <= 0 {
		g.cooldown = 2 * time.Second
	}
	if g.readBudget <= 0 {
		g.readBudget = 2 * time.Second
	}
	if g.perTry <= 0 {
		g.perTry = time.Second
	}
	if g.hedgeDelay <= 0 {
		g.hedgeDelay = 30 * time.Millisecond
	}
	g.retry.rate = opts.RetryRate
	g.retry.burst = opts.RetryBurst
	if g.retry.rate <= 0 {
		g.retry.rate = 10
	}
	if g.retry.burst <= 0 {
		g.retry.burst = 20
	}
	g.retry.tokens = g.retry.burst
	if g.now == nil {
		g.now = time.Now
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/recommend", g.serveRead)
	mux.HandleFunc("GET /v1/explain", g.serveRead)
	mux.HandleFunc("POST /v1/next", g.serveRead)
	mux.HandleFunc("POST /v1/observe", g.serveObserve)
	mux.HandleFunc("GET /metrics", g.serveMetrics)
	mux.HandleFunc("GET /healthz", g.serveHealthz)
	g.mux = mux
	return g, nil
}

// Ring exposes the gateway's ring (tests assert routing against it).
func (g *Gateway) Ring() *Ring { return g.ring }

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler { return g.mux }

type gwError struct {
	Error string `json:"error"`
}

func (g *Gateway) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(gwError{Error: fmt.Sprintf(format, args...)})
}

// markDown records an endpoint failure; the endpoint is deprioritized until
// the cooldown elapses. Expired marks are swept on every call so the map
// stays bounded by the live endpoint count across long deployments with
// churning endpoints.
func (g *Gateway) markDown(endpoint string) {
	now := g.now()
	g.mu.Lock()
	for ep, until := range g.down {
		if !now.Before(until) {
			delete(g.down, ep)
		}
	}
	g.down[endpoint] = now.Add(g.cooldown)
	g.mu.Unlock()
}

// isDown reports whether an endpoint is inside its failure cooldown, deleting
// the mark once it has expired.
func (g *Gateway) isDown(endpoint string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	until, ok := g.down[endpoint]
	if ok && !g.now().Before(until) {
		delete(g.down, endpoint)
		return false
	}
	return ok
}

// downLen reports the current down-mark count (tests assert the sweep).
func (g *Gateway) downLen() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.down)
}

// noteGen records the snapshot generation an endpoint last reported, feeding
// the freshness preference in candidates.
func (g *Gateway) noteGen(endpoint string, gen uint64) {
	g.mu.Lock()
	if gen > g.gens[endpoint] {
		g.gens[endpoint] = gen
	}
	g.mu.Unlock()
}

func (g *Gateway) genOf(endpoint string) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gens[endpoint]
}

// candidates orders a shard's endpoints for a read: healthy endpoints first
// — freshest known generation leading, the primary winning ties (the stable
// sort keeps the primary-then-replicas base order) — then endpoints inside
// their failure cooldown moved to the back, never dropped, so a fully-marked
// shard still gets tried rather than blacking out on stale marks. Preferring
// fresher backends means a replica lagging behind its primary only serves
// when nothing fresher answers.
func (g *Gateway) candidates(set *ShardSet) []string {
	all := make([]string, 0, 1+len(set.Replicas))
	all = append(all, set.Primary)
	all = append(all, set.Replicas...)
	up := all[:0:len(all)]
	var cooling []string
	for _, ep := range all {
		if g.isDown(ep) {
			cooling = append(cooling, ep)
		} else {
			up = append(up, ep)
		}
	}
	sort.SliceStable(up, func(i, j int) bool { return g.genOf(up[i]) > g.genOf(up[j]) })
	return append(up, cooling...)
}

// retriable reports whether a backend status should trigger failover to the
// next candidate: transport-level failures are always retriable, and these
// statuses mean the node (not the request) has a problem. Client errors such
// as 400/404/421 pass through — another endpoint would answer the same.
func retriable(status int) bool {
	switch status {
	case http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// budgetFor resolves a request's total deadline budget: the client's
// X-Deadline-Budget header when present and sane, else the configured
// ReadBudget default.
func (g *Gateway) budgetFor(r *http.Request) time.Duration {
	if raw := r.Header.Get(DeadlineBudgetHeader); raw != "" {
		if ms, err := strconv.ParseInt(raw, 10, 64); err == nil && ms > 0 {
			return time.Duration(ms) * time.Millisecond
		}
	}
	return g.readBudget
}

// backendResp is one candidate's fully buffered answer. Buffering before
// declaring success means a torn response body (truncated mid-stream, length
// mismatch) surfaces as a retriable attempt error instead of partial bytes
// leaking to the client as a 200.
type backendResp struct {
	status int
	header http.Header
	body   []byte
}

// attempt issues one backend hop: the per-hop timeout is the remaining budget
// clamped to PerTryTimeout, stamped onto the hop's X-Deadline-Budget header
// so serve-side admission stops working on it when the gateway gives up.
func (g *Gateway) attempt(ctx context.Context, ep, method, uri string, body []byte, remaining time.Duration) (*backendResp, error) {
	hop := remaining
	if hop > g.perTry {
		hop = g.perTry
	}
	actx, cancel := context.WithTimeout(ctx, hop)
	defer cancel()
	var reqBody io.Reader
	if body != nil {
		reqBody = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, ep+uri, reqBody)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(DeadlineBudgetHeader, strconv.FormatInt(hop.Milliseconds(), 10))
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading body from %s: %w", ep, err)
	}
	return &backendResp{status: resp.StatusCode, header: resp.Header, body: raw}, nil
}

// writeBackend relays a buffered backend response to the client byte-exact,
// tagged with the shard and winning endpoint, and records the endpoint's
// reported generation for the freshness preference.
func (g *Gateway) writeBackend(w http.ResponseWriter, shard, ep string, resp *backendResp) {
	if genStr := resp.header.Get("X-Generation"); genStr != "" {
		if gen, err := strconv.ParseUint(genStr, 10, 64); err == nil {
			g.noteGen(ep, gen)
		}
	}
	for _, h := range []string{"Content-Type", "X-Cache", "X-Model", "X-Generation", "Retry-After"} {
		if v := resp.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Shard", shard)
	w.Header().Set("X-Backend", ep)
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// failAttempt records one failed candidate attempt.
func (g *Gateway) failAttempt(ep string) {
	g.met.backendErrors.Add(1)
	g.markDown(ep)
}

// serveRead routes /v1/recommend, /v1/explain and POST /v1/next to the shard
// owning the user, trying the freshest healthy candidate first and failing
// over on transport errors, torn response bodies, and 5xx. A POST body is
// buffered once so every failover candidate replays identical bytes, and a
// response body is buffered fully before being declared the winner. The whole
// request runs under a deadline budget (X-Deadline-Budget or ReadBudget);
// every attempt beyond the first pays a retry-budget token, so a flapping
// shard degrades into bounded retries instead of a storm.
func (g *Gateway) serveRead(w http.ResponseWriter, r *http.Request) {
	g.met.requests.Add(1)
	user, err := strconv.Atoi(r.URL.Query().Get("user"))
	if err != nil {
		g.writeError(w, http.StatusBadRequest, "parameter %q: %v", "user", err)
		return
	}
	var body []byte
	if r.Method == http.MethodPost {
		body, err = io.ReadAll(r.Body)
		if err != nil {
			g.writeError(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
	}
	shard := g.ring.Owner(user)
	set := g.byName[shard]
	uri := r.URL.Path
	if r.URL.RawQuery != "" {
		uri += "?" + r.URL.RawQuery
	}
	deadline := g.now().Add(g.budgetFor(r))
	cands := g.candidates(set)

	if g.hedge && r.Method == http.MethodGet && r.URL.Path == "/v1/recommend" && len(cands) > 1 {
		g.serveHedged(w, r, shard, cands, uri, deadline)
		return
	}

	var lastErr error
	for i, ep := range cands {
		remaining := deadline.Sub(g.now())
		if remaining <= 0 {
			g.met.deadlineMissed.Add(1)
			g.writeError(w, http.StatusGatewayTimeout, "shard %q: deadline budget exhausted: %v", shard, lastErr)
			return
		}
		if i > 0 {
			if !g.retry.allow(g.now()) {
				g.met.retryExhausted.Add(1)
				w.Header().Set("Retry-After", "1")
				g.writeError(w, http.StatusServiceUnavailable, "shard %q: retry budget exhausted: %v", shard, lastErr)
				return
			}
			g.met.retries.Add(1)
		}
		resp, err := g.attempt(r.Context(), ep, r.Method, uri, body, remaining)
		if err != nil {
			g.failAttempt(ep)
			lastErr = err
			continue
		}
		if retriable(resp.status) {
			g.failAttempt(ep)
			lastErr = fmt.Errorf("endpoint %s answered %d", ep, resp.status)
			continue
		}
		if i > 0 {
			g.met.failovers.Add(1)
		}
		g.writeBackend(w, shard, ep, resp)
		return
	}
	g.writeError(w, http.StatusBadGateway, "shard %q: no endpoint answered: %v", shard, lastErr)
}

// serveHedged races candidates for a GET /v1/recommend: the first candidate
// fires immediately, a hedge fires after HedgeDelay (paying a retry token),
// and the first byte-valid response — fully buffered, non-retriable status —
// wins. The loser's context is cancelled when the handler returns. Failed
// attempts trigger further candidates under the same retry budget, so hedged
// mode never retries more than sequential mode would.
func (g *Gateway) serveHedged(w http.ResponseWriter, r *http.Request, shard string, cands []string, uri string, deadline time.Time) {
	type outcome struct {
		ep   string
		idx  int
		resp *backendResp
		err  error
	}
	results := make(chan outcome, len(cands))
	launch := func(idx int) {
		ep := cands[idx]
		remaining := deadline.Sub(g.now())
		if remaining <= 0 {
			results <- outcome{ep: ep, idx: idx, err: context.DeadlineExceeded}
			return
		}
		go func() {
			resp, err := g.attempt(r.Context(), ep, http.MethodGet, uri, nil, remaining)
			results <- outcome{ep: ep, idx: idx, resp: resp, err: err}
		}()
	}

	launch(0)
	launched, inflight := 1, 1
	hedgedIdx := -1
	hedgeTimer := time.NewTimer(g.hedgeDelay)
	defer hedgeTimer.Stop()

	// tryNext fires the next unlaunched candidate if the retry budget allows.
	tryNext := func(hedged bool) {
		if launched >= len(cands) {
			return
		}
		if !g.retry.allow(g.now()) {
			g.met.retryExhausted.Add(1)
			return
		}
		g.met.retries.Add(1)
		if hedged {
			g.met.hedges.Add(1)
			hedgedIdx = launched
		}
		launch(launched)
		launched++
		inflight++
	}

	var lastErr error
	for inflight > 0 {
		select {
		case <-hedgeTimer.C:
			if launched == 1 {
				tryNext(true)
			}
		case res := <-results:
			inflight--
			if res.err != nil || retriable(res.resp.status) {
				g.failAttempt(res.ep)
				if res.err != nil {
					lastErr = res.err
				} else {
					lastErr = fmt.Errorf("endpoint %s answered %d", res.ep, res.resp.status)
				}
				if g.now().After(deadline) {
					g.met.deadlineMissed.Add(1)
					g.writeError(w, http.StatusGatewayTimeout, "shard %q: deadline budget exhausted: %v", shard, lastErr)
					return
				}
				tryNext(false)
				continue
			}
			if res.idx > 0 {
				g.met.failovers.Add(1)
			}
			if res.idx == hedgedIdx {
				g.met.hedgeWins.Add(1)
			}
			g.writeBackend(w, shard, res.ep, res.resp)
			return
		}
	}
	g.writeError(w, http.StatusBadGateway, "shard %q: no endpoint answered: %v", shard, lastErr)
}

// gwCheckIn mirrors the serve observe schema so subsets re-marshal exactly.
type gwCheckIn struct {
	User  int `json:"user"`
	POI   int `json:"poi"`
	Month int `json:"month"`
	Week  int `json:"week"`
	Hour  int `json:"hour"`
}

type gwNewUser struct {
	ID      int   `json:"id"`
	Friends []int `json:"friends,omitempty"`
}

type gwPOI struct {
	ID       int     `json:"id"`
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	Category int     `json:"category"`
}

type gwObserveRequest struct {
	CheckIns []gwCheckIn `json:"checkins"`
	NewUsers []gwNewUser `json:"new_users,omitempty"`
	NewPOIs  []gwPOI     `json:"new_pois,omitempty"`
}

// shardObserveResult is one shard's slice of a fanned-out observe.
type shardObserveResult struct {
	Shard      string `json:"shard"`
	CheckIns   int    `json:"checkins"`
	Added      int    `json:"added"`
	Generation uint64 `json:"generation"`
	// Users/POIs are the shard's model dimensions after the batch — under
	// open-world growth they report how far the shard has grown.
	Users int    `json:"users,omitempty"`
	POIs  int    `json:"pois,omitempty"`
	Error string `json:"error,omitempty"`
}

type gwObserveResponse struct {
	Added  int                  `json:"added"`
	Shards []shardObserveResult `json:"shards"`
}

// serveObserve splits an observe batch by user ownership and posts each
// subset to the owning shard's primary (writes never go to replicas).
// Open-world arrivals route the same way: a new user goes to the shard the
// ring hashes its id to (consistent hashing needs no membership update for
// new ids), while a new POI is duplicated to every shard in the split — each
// shard carries the full POI space. The merged response reports per-shard
// cell counts and generations; any shard failure turns the overall status
// into 502 while still reporting the shards that succeeded.
func (g *Gateway) serveObserve(w http.ResponseWriter, r *http.Request) {
	var req gwObserveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		g.writeError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	if len(req.CheckIns) == 0 && len(req.NewUsers) == 0 && len(req.NewPOIs) == 0 {
		g.writeError(w, http.StatusBadRequest, "no checkins in request")
		return
	}
	g.met.observeFanouts.Add(1)
	split := make(map[string]*gwObserveRequest)
	sub := func(shard string) *gwObserveRequest {
		if split[shard] == nil {
			split[shard] = &gwObserveRequest{}
		}
		return split[shard]
	}
	for _, c := range req.CheckIns {
		s := sub(g.ring.Owner(c.User))
		s.CheckIns = append(s.CheckIns, c)
	}
	for _, u := range req.NewUsers {
		s := sub(g.ring.Owner(u.ID))
		s.NewUsers = append(s.NewUsers, u)
	}
	if len(req.NewPOIs) > 0 {
		// Every shard scores over the full POI space, so POI openings go to
		// every primary, not just those owning this batch's users.
		for _, set := range g.sets {
			s := sub(set.Name)
			s.NewPOIs = append(s.NewPOIs, req.NewPOIs...)
		}
	}
	shards := make([]string, 0, len(split))
	for shard := range split {
		shards = append(shards, shard)
	}
	sort.Strings(shards)

	out := gwObserveResponse{Shards: make([]shardObserveResult, len(shards))}
	budget := g.budgetFor(r)
	var wg sync.WaitGroup
	for i, shard := range shards {
		wg.Add(1)
		go func(i int, shard string) {
			defer wg.Done()
			out.Shards[i] = g.postObserve(r.Context(), shard, split[shard], budget)
		}(i, shard)
	}
	wg.Wait()

	status := http.StatusOK
	for _, res := range out.Shards {
		out.Added += res.Added
		if res.Error != "" {
			status = http.StatusBadGateway
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(&out)
}

func (g *Gateway) postObserve(ctx context.Context, shard string, sub *gwObserveRequest, budget time.Duration) shardObserveResult {
	res := shardObserveResult{Shard: shard, CheckIns: len(sub.CheckIns)}
	body, err := json.Marshal(sub)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	ctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		g.byName[shard].Primary+"/v1/observe", bytes.NewReader(body))
	if err != nil {
		res.Error = err.Error()
		return res
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(DeadlineBudgetHeader, strconv.FormatInt(budget.Milliseconds(), 10))
	resp, err := g.client.Do(req)
	if err != nil {
		g.met.backendErrors.Add(1)
		g.markDown(g.byName[shard].Primary)
		res.Error = err.Error()
		return res
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		var eb gwError
		json.Unmarshal(raw, &eb)
		if eb.Error == "" {
			eb.Error = resp.Status
		}
		res.Error = fmt.Sprintf("primary answered %d: %s", resp.StatusCode, eb.Error)
		return res
	}
	var ok struct {
		Added      int    `json:"added"`
		Generation uint64 `json:"generation"`
		Users      int    `json:"users"`
		POIs       int    `json:"pois"`
	}
	if err := json.Unmarshal(raw, &ok); err != nil {
		res.Error = err.Error()
		return res
	}
	res.Added, res.Generation = ok.Added, ok.Generation
	res.Users, res.POIs = ok.Users, ok.POIs
	return res
}
