package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSymmetric builds a random symmetric n-by-n matrix.
func randomSymmetric(n int, rng *rand.Rand) *Matrix {
	a := RandomNormal(n, n, 1, rng)
	return a.Add(a.T()).Scale(0.5)
}

func TestSymEigenDiagonal(t *testing.T) {
	a := FromSlice(3, 3, []float64{
		3, 0, 0,
		0, 1, 0,
		0, 0, 2,
	})
	res, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, v := range want {
		if math.Abs(res.Values[i]-v) > 1e-12 {
			t.Fatalf("eigenvalues = %v, want %v", res.Values, want)
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromSlice(2, 2, []float64{2, 1, 1, 2})
	res, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Values[0]-3) > 1e-10 || math.Abs(res.Values[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues = %v, want [3 1]", res.Values)
	}
}

func TestSymEigenResidualAndOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{2, 5, 12, 30} {
		a := randomSymmetric(n, rng)
		res, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// A·V = V·diag(values).
		av := a.Mul(res.Vectors)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				want := res.Vectors.At(i, j) * res.Values[j]
				if math.Abs(av.At(i, j)-want) > 1e-8 {
					t.Fatalf("n=%d residual at (%d,%d): %g vs %g", n, i, j, av.At(i, j), want)
				}
			}
		}
		// VᵀV = I.
		if !res.Vectors.Gram().Equalf(Identity(n), 1e-8) {
			t.Fatalf("n=%d eigenvectors not orthonormal", n)
		}
		// Values sorted descending.
		for i := 1; i < n; i++ {
			if res.Values[i] > res.Values[i-1]+1e-12 {
				t.Fatalf("n=%d eigenvalues not sorted: %v", n, res.Values)
			}
		}
	}
}

func TestSymEigenTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := randomSymmetric(n, rng)
		res, err := SymEigen(a)
		if err != nil {
			return false
		}
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += res.Values[i]
		}
		return math.Abs(trace-sum) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigenRejectsNonSquare(t *testing.T) {
	if _, err := SymEigen(New(2, 3)); err == nil {
		t.Fatal("SymEigen of non-square must error")
	}
}

func TestTopEigenvectorsMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, r := 40, 4
	// PSD matrix with a clear spectral gap: B·Bᵀ with B 40x8.
	b := RandomNormal(n, 8, 1, rng)
	a := b.GramT()
	full, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	top, err := TopEigenvectors(a, r, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r; i++ {
		if math.Abs(top.Values[i]-full.Values[i]) > 1e-6*(1+full.Values[0]) {
			t.Fatalf("leading eigenvalue %d: %g vs Jacobi %g", i, top.Values[i], full.Values[i])
		}
		// Eigenvectors agree up to sign.
		var dot float64
		for k := 0; k < n; k++ {
			dot += top.Vectors.At(k, i) * full.Vectors.At(k, i)
		}
		if math.Abs(math.Abs(dot)-1) > 1e-5 {
			t.Fatalf("eigenvector %d misaligned: |dot| = %g", i, math.Abs(dot))
		}
	}
}

func TestTopEigenvectorsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomSymmetric(60, rng)
	res, err := TopEigenvectors(a, 5, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Vectors.Gram().Equalf(Identity(5), 1e-8) {
		t.Fatal("TopEigenvectors basis must be orthonormal")
	}
}

func TestTopEigenvectorsBadRank(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomSymmetric(4, rng)
	if _, err := TopEigenvectors(a, 0, 10, rng); err == nil {
		t.Fatal("rank 0 must error")
	}
	if _, err := TopEigenvectors(a, 5, 10, rng); err == nil {
		t.Fatal("rank > n must error")
	}
	if _, err := TopEigenvectors(New(2, 3), 1, 10, rng); err == nil {
		t.Fatal("non-square must error")
	}
}

func TestQROrthonormalizeDegenerate(t *testing.T) {
	// Two identical columns: the second must be replaced, keeping full rank.
	q := FromSlice(3, 2, []float64{1, 1, 0, 0, 0, 0})
	qrOrthonormalize(q)
	if !q.Gram().Equalf(Identity(2), 1e-10) {
		t.Fatalf("degenerate columns must still produce an orthonormal basis, got %v", q.Gram())
	}
}
