package mat

import (
	"fmt"
	"math"
)

// Cholesky computes the lower-triangular factor L with a = L·Lᵀ for a
// symmetric positive-definite matrix. It returns an error if a is not
// (numerically) positive definite. ALS sweeps in the CP/Tucker/P-Tucker
// baselines solve their ridge-regularized normal equations through this
// factorization.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: Cholesky requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("mat: Cholesky pivot %d is non-positive (%g); matrix not PD", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholeskySolve solves a·x = b given the Cholesky factor l of a, for a single
// right-hand side. b is not modified.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// SolveSPD solves a·x = b for symmetric positive-definite a. If a is only
// positive semi-definite, pass a small ridge to regularize it first.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return CholeskySolve(l, b), nil
}

// SolveSPDMatrix solves a·X = B column-wise for symmetric positive-definite a.
func SolveSPDMatrix(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("mat: SolveSPDMatrix shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	out := New(b.Rows, b.Cols)
	col := make([]float64, b.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = b.At(i, j)
		}
		x := CholeskySolve(l, col)
		for i := 0; i < b.Rows; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out, nil
}

// AddRidge adds lambda to the diagonal of the square matrix a in place and
// returns a for chaining. It is the standard Tikhonov regularization used
// before Cholesky in ALS updates.
func (m *Matrix) AddRidge(lambda float64) *Matrix {
	if m.Rows != m.Cols {
		panic("mat: AddRidge requires a square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += lambda
	}
	return m
}
