package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// SVDResult holds a thin singular value decomposition A ≈ U·diag(S)·Vᵀ where
// U is m-by-k, S has k non-negative entries in descending order, and V is
// n-by-k.
type SVDResult struct {
	U *Matrix
	S []float64
	V *Matrix
}

// ThinSVD computes the rank-k thin SVD of a. For k equal to min(m, n) it is a
// full thin decomposition. The implementation diagonalizes the smaller Gram
// matrix with the Jacobi eigensolver (for small inner dimension) or block
// orthogonal iteration (for large), then recovers the other factor; this is
// numerically adequate for the well-separated spectra that arise from
// check-in matrices and is entirely self-contained.
func ThinSVD(a *Matrix, k int, rng *rand.Rand) (*SVDResult, error) {
	m, n := a.Rows, a.Cols
	minDim := m
	if n < minDim {
		minDim = n
	}
	if k <= 0 || k > minDim {
		return nil, fmt.Errorf("mat: ThinSVD rank %d out of range (1..%d)", k, minDim)
	}

	if n <= m {
		// Diagonalize AᵀA (n-by-n); V from eigenvectors, U = A·V·Σ⁻¹.
		gram := a.Gram()
		eig, err := gramEigen(gram, k, rng)
		if err != nil {
			return nil, err
		}
		v := eig.Vectors
		s := make([]float64, k)
		for i := 0; i < k; i++ {
			ev := eig.Values[i]
			if ev < 0 {
				ev = 0
			}
			s[i] = math.Sqrt(ev)
		}
		u := a.Mul(v)
		normalizeColumns(u, s)
		return &SVDResult{U: u, S: s, V: v}, nil
	}
	// Diagonalize AAᵀ (m-by-m); U from eigenvectors, V = Aᵀ·U·Σ⁻¹.
	gram := a.GramT()
	eig, err := gramEigen(gram, k, rng)
	if err != nil {
		return nil, err
	}
	u := eig.Vectors
	s := make([]float64, k)
	for i := 0; i < k; i++ {
		ev := eig.Values[i]
		if ev < 0 {
			ev = 0
		}
		s[i] = math.Sqrt(ev)
	}
	v := a.TMul(u)
	normalizeColumns(v, s)
	return &SVDResult{U: u, S: s, V: v}, nil
}

// gramEigen picks the right eigensolver for a symmetric PSD Gram matrix: full
// Jacobi when the matrix is small, orthogonal iteration otherwise.
func gramEigen(gram *Matrix, k int, rng *rand.Rand) (*EigenResult, error) {
	const jacobiLimit = 160
	if gram.Rows <= jacobiLimit {
		full, err := SymEigen(gram)
		if err != nil {
			return nil, err
		}
		vec := New(gram.Rows, k)
		for i := 0; i < gram.Rows; i++ {
			for j := 0; j < k; j++ {
				vec.Set(i, j, full.Vectors.At(i, j))
			}
		}
		return &EigenResult{Values: full.Values[:k], Vectors: vec}, nil
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return TopEigenvectors(gram, k, 300, rng)
}

// normalizeColumns divides column j of m by s[j]; columns with a (near) zero
// singular value are zeroed, which keeps downstream reconstructions finite.
func normalizeColumns(m *Matrix, s []float64) {
	for j := 0; j < m.Cols; j++ {
		sj := s[j]
		if sj < 1e-12 {
			for i := 0; i < m.Rows; i++ {
				m.Set(i, j, 0)
			}
			continue
		}
		inv := 1 / sj
		for i := 0; i < m.Rows; i++ {
			m.Set(i, j, m.At(i, j)*inv)
		}
	}
}

// Reconstruct returns U·diag(S)·Vᵀ for the decomposition.
func (r *SVDResult) Reconstruct() *Matrix {
	us := r.U.Clone()
	for j, s := range r.S {
		for i := 0; i < us.Rows; i++ {
			us.Set(i, j, us.At(i, j)*s)
		}
	}
	return us.MulT(r.V)
}

// SoftThresholdSVD computes the singular value soft-thresholding operator
// D_tau(A): the thin SVD of a with every singular value shrunk by tau (and
// clamped at zero). This is the proximal step of nuclear-norm minimization and
// drives the MCCO (soft-impute) matrix-completion baseline.
func SoftThresholdSVD(a *Matrix, k int, tau float64, rng *rand.Rand) (*SVDResult, error) {
	svd, err := ThinSVD(a, k, rng)
	if err != nil {
		return nil, err
	}
	for i := range svd.S {
		svd.S[i] -= tau
		if svd.S[i] < 0 {
			svd.S[i] = 0
		}
	}
	return svd, nil
}
