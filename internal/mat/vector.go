package mat

import "math"

// Dot returns the inner product of a and b. The slices must have equal length;
// a mismatch is a caller bug and panics via the bounds check.
func Dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies every entry of x by alpha in place.
func ScaleVec(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// Normalize scales x to unit Euclidean norm in place and returns the original
// norm. A zero vector is left unchanged and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	ScaleVec(1/n, x)
	return n
}

// CosineSimilarity returns the cosine of the angle between a and b, or 0 if
// either vector is zero. It is used to build the time-factor similarity
// heatmaps of Figures 6 and 7.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Hadamard returns the element-wise product of a and b as a new slice.
func Hadamard(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v * b[i]
	}
	return out
}

// HadamardInto writes the element-wise product of a and b into dst, which
// must have the same length, and returns dst. It avoids the allocation of
// Hadamard in hot loops.
func HadamardInto(dst, a, b []float64) []float64 {
	for i, v := range a {
		dst[i] = v * b[i]
	}
	return dst
}

// SumVec returns the sum of the entries of x.
func SumVec(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}
