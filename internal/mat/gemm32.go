package mat

import "fmt"

// This file holds the mixed-precision inner-product kernels behind the
// compact model storage modes (core.StorageFloat32 / core.StorageInt8): a
// float64 weight vector against a float32 or int8 factor row, accumulating in
// float64. They mirror DotUnrolled's four-accumulator structure so the
// float32 scoring path differs from the float64 path only by the storage
// rounding of the row operand, never by summation order.

// DotF32Unrolled returns the inner product of the float64 vector a and the
// float32 vector b, widening each b element to float64 before multiplying and
// accumulating with four independent accumulators. The slices must have equal
// length.
func DotF32Unrolled(a []float64, b []float32) float64 {
	n := len(a)
	if n != len(b) {
		panic(fmt.Sprintf("mat: DotF32Unrolled length mismatch %d vs %d", n, len(b)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * float64(b[i])
		s1 += a[i+1] * float64(b[i+1])
		s2 += a[i+2] * float64(b[i+2])
		s3 += a[i+3] * float64(b[i+3])
	}
	for ; i < n; i++ {
		s0 += a[i] * float64(b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// DotI8Unrolled returns the inner product of the float64 vector a and the
// int8 vector q, widening each quantized element to float64. Callers multiply
// the result by the row's dequantization scale; factoring the scale out of
// the loop keeps the kernel a pure dot product.
func DotI8Unrolled(a []float64, q []int8) float64 {
	n := len(a)
	if n != len(q) {
		panic(fmt.Sprintf("mat: DotI8Unrolled length mismatch %d vs %d", n, len(q)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * float64(q[i])
		s1 += a[i+1] * float64(q[i+1])
		s2 += a[i+2] * float64(q[i+2])
		s3 += a[i+3] * float64(q[i+3])
	}
	for ; i < n; i++ {
		s0 += a[i] * float64(q[i])
	}
	return (s0 + s1) + (s2 + s3)
}
