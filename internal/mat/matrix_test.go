package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 3) should panic")
		}
	}()
	New(0, 3)
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	if got := m.At(1, 2); got != 5 {
		t.Fatalf("At(1,2) = %g, want 5", got)
	}
	row := m.Row(1)
	row[0] = 7 // Row is a view.
	if got := m.At(1, 0); got != 7 {
		t.Fatalf("Row must alias the matrix; At(1,0) = %g, want 7", got)
	}
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Random(4, 4, 1, rng)
	id := Identity(4)
	if !a.Mul(id).Equalf(a, 1e-15) || !id.Mul(a).Equalf(a, 1e-15) {
		t.Fatal("multiplication by identity must be a no-op")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := Random(3, 5, 2, rng)
	if !a.T().T().Equalf(a, 0) {
		t.Fatal("transpose must be an involution")
	}
}

func TestMulAgainstManual(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if got := a.Mul(b); !got.Equalf(want, 1e-12) {
		t.Fatalf("Mul = %v, want %v", got, want)
	}
}

func TestMulTAndTMulConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Random(4, 6, 1, rng)
	b := Random(5, 6, 1, rng)
	if !a.MulT(b).Equalf(a.Mul(b.T()), 1e-12) {
		t.Fatal("MulT(b) must equal Mul(b.T())")
	}
	c := Random(4, 3, 1, rng)
	if !a.TMul(c).Equalf(a.T().Mul(c), 1e-12) {
		t.Fatal("TMul(c) must equal T().Mul(c)")
	}
}

func TestGramSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := Random(7, 4, 1, rng)
	g := a.Gram()
	if !g.Equalf(g.T(), 1e-12) {
		t.Fatal("Gram matrix must be symmetric")
	}
	gt := a.GramT()
	if !gt.Equalf(gt.T(), 1e-12) {
		t.Fatal("GramT matrix must be symmetric")
	}
}

func TestMulVecAgainstMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := Random(4, 3, 1, rng)
	x := []float64{1, -2, 0.5}
	got := a.MulVec(x)
	want := a.Mul(FromSlice(3, 1, x))
	for i, v := range got {
		if math.Abs(v-want.At(i, 0)) > 1e-12 {
			t.Fatalf("MulVec[%d] = %g, want %g", i, v, want.At(i, 0))
		}
	}
	gotT := a.TMulVec([]float64{1, 2, 3, 4})
	wantT := a.T().MulVec([]float64{1, 2, 3, 4})
	for i, v := range gotT {
		if math.Abs(v-wantT[i]) > 1e-12 {
			t.Fatalf("TMulVec[%d] = %g, want %g", i, v, wantT[i])
		}
	}
}

func TestZeroDiagonal(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	m.ZeroDiagonal()
	if m.At(0, 0) != 0 || m.At(1, 1) != 0 || m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("ZeroDiagonal wrong: %v", m)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{4, 3, 2, 1})
	if got := a.Add(b); !got.Equalf(FromSlice(2, 2, []float64{5, 5, 5, 5}), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); !got.Equalf(FromSlice(2, 2, []float64{-3, -1, 1, 3}), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); !got.Equalf(FromSlice(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Fatalf("Scale = %v", got)
	}
	// Originals untouched.
	if a.At(0, 0) != 1 || b.At(0, 0) != 4 {
		t.Fatal("Add/Sub/Scale must not mutate inputs")
	}
}

func TestFrobNorm(t *testing.T) {
	a := FromSlice(1, 2, []float64{3, 4})
	if got := a.FrobNorm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("FrobNorm = %g, want 5", got)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small matrices.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := Random(3, 4, 1, rng)
		b := Random(4, 2, 1, rng)
		return a.Mul(b).T().Equalf(b.T().Mul(a.T()), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: dot product is bilinear and symmetric.
func TestDotProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a, b := make([]float64, n), make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		if math.Abs(Dot(a, b)-Dot(b, a)) > 1e-12 {
			return false
		}
		// Cauchy-Schwarz.
		return math.Abs(Dot(a, b)) <= Norm2(a)*Norm2(b)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeAndCosine(t *testing.T) {
	v := []float64{3, 4}
	n := Normalize(v)
	if math.Abs(n-5) > 1e-15 || math.Abs(Norm2(v)-1) > 1e-15 {
		t.Fatalf("Normalize: norm=%g vec=%v", n, v)
	}
	zero := []float64{0, 0}
	if Normalize(zero) != 0 {
		t.Fatal("Normalize of zero vector must return 0")
	}
	if got := CosineSimilarity([]float64{1, 0}, []float64{0, 2}); got != 0 {
		t.Fatalf("orthogonal cosine = %g, want 0", got)
	}
	if got := CosineSimilarity([]float64{1, 1}, []float64{2, 2}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("parallel cosine = %g, want 1", got)
	}
	if got := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("zero-vector cosine = %g, want 0", got)
	}
}

func TestHadamard(t *testing.T) {
	a, b := []float64{1, 2, 3}, []float64{4, 5, 6}
	got := Hadamard(a, b)
	want := []float64{4, 10, 18}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Hadamard = %v, want %v", got, want)
		}
	}
	dst := make([]float64, 3)
	HadamardInto(dst, a, b)
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("HadamardInto = %v, want %v", dst, want)
		}
	}
}

func TestAxpyScaleSum(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v", y)
	}
	ScaleVec(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Fatalf("ScaleVec = %v", y)
	}
	if got := SumVec(y); got != 8 {
		t.Fatalf("SumVec = %g", got)
	}
}

func TestMaxAbsAndString(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, -7, 3, 2})
	if m.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %g, want 7", m.MaxAbs())
	}
	if s := m.String(); len(s) == 0 {
		t.Fatal("empty String")
	}
	big := New(20, 20)
	if s := big.String(); len(s) == 0 {
		t.Fatal("large matrices must summarize, not be empty")
	}
}

func TestEqualfShapeMismatch(t *testing.T) {
	if New(2, 2).Equalf(New(2, 3), 1) {
		t.Fatal("different shapes must not be equal")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice length mismatch must panic")
		}
	}()
	FromSlice(2, 2, []float64{1})
}

func TestScaleInPlaceAndFill(t *testing.T) {
	m := FromSlice(1, 2, []float64{2, 4})
	m.ScaleInPlace(0.5)
	if m.At(0, 0) != 1 || m.At(0, 1) != 2 {
		t.Fatalf("ScaleInPlace wrong: %v", m)
	}
	m.Fill(9)
	if m.At(0, 1) != 9 {
		t.Fatal("Fill wrong")
	}
}

func TestAddRidgePanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddRidge on non-square must panic")
		}
	}()
	New(2, 3).AddRidge(1)
}
