package mat

import "fmt"

// This file holds the allocation-free GEMM kernels behind the repository's
// hot paths: the slab scoring kernel of core.Model.ScoreSlab and the batch
// scorers of internal/eval. The kernels differ from the allocating Mul/MulT
// methods in two ways: the caller owns the output (so epoch loops reuse one
// buffer), and the inner products run with four independent accumulators,
// which breaks the floating-point dependency chain and roughly doubles
// throughput on short rank-sized vectors. Four-way accumulation regroups
// additions relative to the sequential Dot, so results may differ from the
// naive kernels by O(machine epsilon); every user of these kernels compares
// against references with a tolerance, never bit-for-bit.

// DotUnrolled returns the inner product of a and b using four independent
// accumulators. The slices must have equal length.
func DotUnrolled(a, b []float64) float64 {
	n := len(a)
	if n != len(b) {
		panic(fmt.Sprintf("mat: DotUnrolled length mismatch %d vs %d", n, len(b)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

func mustShape(m *Matrix, r, c int, op string) {
	if m.Rows != r || m.Cols != c {
		panic(fmt.Sprintf("mat: %s output shape %dx%d, want %dx%d", op, m.Rows, m.Cols, r, c))
	}
}

// MulInto computes out = a*b without allocating. out must be a.Rows×b.Cols
// and is overwritten; it must not alias a or b. The loop order (ikj with
// row-wise accumulation) matches Mul, so MulInto is bit-for-bit identical to
// Mul on the same inputs.
func MulInto(out, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulInto inner mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape(out, a.Rows, b.Cols, "MulInto")
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulTInto computes out = a*bᵀ without allocating, using the four-accumulator
// dot kernel. out must be a.Rows×b.Rows and must not alias a or b.
func MulTInto(out, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTInto inner mismatch %dx%d * (%dx%d)^T", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape(out, a.Rows, b.Rows, "MulTInto")
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = DotUnrolled(arow, b.Row(j))
		}
	}
	return out
}

// blockDim is the square tile edge used by MulBlocked: 3 tiles of 64×64
// float64 (96 KiB total for the a-, b- and out-panels) stay resident in a
// typical 256 KiB-1 MiB L2 while streaming.
const blockDim = 64

// MulBlocked computes out = a*b with cache blocking over all three loop
// dimensions. out must be a.Rows×b.Cols and must not alias a or b. For
// operands that exceed the cache (hundreds of rows/cols) it outperforms
// MulInto by keeping one out-tile and one b-panel hot; for rank-sized
// operands it falls back to MulInto, whose overhead is lower.
//
// Within each output tile the k-blocks accumulate in ascending order, so the
// result is deterministic for fixed shapes (though it regroups additions
// relative to MulInto).
func MulBlocked(out, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulBlocked inner mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	mustShape(out, a.Rows, b.Cols, "MulBlocked")
	if a.Rows <= blockDim && a.Cols <= blockDim && b.Cols <= blockDim {
		return MulInto(out, a, b)
	}
	for i := range out.Data {
		out.Data[i] = 0
	}
	for i0 := 0; i0 < a.Rows; i0 += blockDim {
		iMax := min(i0+blockDim, a.Rows)
		for k0 := 0; k0 < a.Cols; k0 += blockDim {
			kMax := min(k0+blockDim, a.Cols)
			for j0 := 0; j0 < b.Cols; j0 += blockDim {
				jMax := min(j0+blockDim, b.Cols)
				for i := i0; i < iMax; i++ {
					arow := a.Row(i)
					orow := out.Row(i)[j0:jMax]
					for k := k0; k < kMax; k++ {
						av := arow[k]
						if av == 0 {
							continue
						}
						brow := b.Row(k)[j0:jMax]
						for j, bv := range brow {
							orow[j] += av * bv
						}
					}
				}
			}
		}
	}
	return out
}

// MulDiagTInto computes out = a · diag(w) · bᵀ without materializing the
// scaled operand: out[i][j] = Σ_t a[i][t]·w[t]·b[j][t]. It is the slab
// scoring primitive — with a = U2 (J×r), w = h ⊙ U1[i], b = U3 (K×r) the
// result is the full J×K prediction slice X̂[i,·,·] of Eq (6). scratch must
// have length a.Cols (= len(w) = b.Cols) and is clobbered; passing it in lets
// per-worker callers run allocation-free.
func MulDiagTInto(out, a *Matrix, w []float64, b *Matrix, scratch []float64) *Matrix {
	mustShape(out, a.Rows, b.Rows, "MulDiagTInto")
	MulDiagTSlice(out.Data, a, w, b, scratch)
	return out
}

// MulDiagTSlice is MulDiagTInto writing into a raw row-major slice of length
// a.Rows·b.Rows, avoiding the Matrix header allocation in per-call hot paths
// (one slab score per user per epoch adds up).
func MulDiagTSlice(out []float64, a *Matrix, w []float64, b *Matrix, scratch []float64) {
	r := a.Cols
	if len(w) != r || b.Cols != r {
		panic(fmt.Sprintf("mat: MulDiagTSlice inner mismatch a %dx%d, w %d, b %dx%d", a.Rows, a.Cols, len(w), b.Rows, b.Cols))
	}
	if len(scratch) != r {
		panic(fmt.Sprintf("mat: MulDiagTSlice scratch %d, want %d", len(scratch), r))
	}
	if len(out) != a.Rows*b.Rows {
		panic(fmt.Sprintf("mat: MulDiagTSlice out length %d, want %d", len(out), a.Rows*b.Rows))
	}
	bd := b.Data
	for i := 0; i < a.Rows; i++ {
		HadamardInto(scratch, a.Row(i), w)
		orow := out[i*b.Rows : (i+1)*b.Rows]
		off := 0
		for j := 0; j < b.Rows; j++ {
			// Four-accumulator dot, inlined: a function call per output cell
			// dominates this kernel at rank-sized inner lengths.
			brow := bd[off : off+r : off+r]
			off += r
			var s0, s1, s2, s3 float64
			t := 0
			for ; t+4 <= r; t += 4 {
				s0 += scratch[t] * brow[t]
				s1 += scratch[t+1] * brow[t+1]
				s2 += scratch[t+2] * brow[t+2]
				s3 += scratch[t+3] * brow[t+3]
			}
			for ; t < r; t++ {
				s0 += scratch[t] * brow[t]
			}
			orow[j] = (s0 + s1) + (s2 + s3)
		}
	}
}
