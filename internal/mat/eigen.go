package mat

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// EigenResult holds a symmetric eigendecomposition: Values[i] is the i-th
// eigenvalue (sorted descending) and the i-th column of Vectors is the
// corresponding unit eigenvector.
type EigenResult struct {
	Values  []float64
	Vectors *Matrix
}

// SymEigen computes the full eigendecomposition of the symmetric matrix a
// using the cyclic Jacobi method. It is cubic per sweep and intended for
// matrices up to a few hundred rows; use TopEigenvectors for leading
// eigenpairs of larger matrices. The input is not modified.
func SymEigen(a *Matrix) (*EigenResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: SymEigen requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius mass; stop when it is negligible relative
		// to the matrix scale.
		var off, scale float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				x := w.At(i, j)
				scale += x * x
				if i != j {
					off += x * x
				}
			}
		}
		if off <= 1e-24*scale || off == 0 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				// Stable tangent of the rotation angle.
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				applyJacobiRotation(w, v, p, q, c, s)
			}
		}
	}

	res := &EigenResult{Values: make([]float64, n), Vectors: New(n, n)}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = w.At(i, i)
	}
	sort.Slice(order, func(x, y int) bool { return diag[order[x]] > diag[order[y]] })
	for rank, idx := range order {
		res.Values[rank] = diag[idx]
		for r := 0; r < n; r++ {
			res.Vectors.Set(r, rank, v.At(r, idx))
		}
	}
	return res, nil
}

// applyJacobiRotation performs the two-sided rotation on w (symmetric) and the
// one-sided update on the eigenvector accumulator v, for the (p, q) plane with
// cosine c and sine s.
func applyJacobiRotation(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows
	for k := 0; k < n; k++ {
		wkp, wkq := w.At(k, p), w.At(k, q)
		w.Set(k, p, c*wkp-s*wkq)
		w.Set(k, q, s*wkp+c*wkq)
	}
	for k := 0; k < n; k++ {
		wpk, wqk := w.At(p, k), w.At(q, k)
		w.Set(p, k, c*wpk-s*wqk)
		w.Set(q, k, s*wpk+c*wqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

// TopEigenvectors returns the r leading eigenpairs of the symmetric matrix a
// by block orthogonal iteration (subspace power iteration with QR
// re-orthonormalization). Eigenvalues are returned in descending order of
// magnitude of the Rayleigh quotients. The method converges geometrically with
// ratio |λ_{r+1}/λ_r|; maxIter bounds the sweeps. It is the workhorse behind
// the TCSS spectral initialization where a is I×I, J×J or K×K.
func TopEigenvectors(a *Matrix, r, maxIter int, rng *rand.Rand) (*EigenResult, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: TopEigenvectors requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if r <= 0 || r > n {
		return nil, fmt.Errorf("mat: TopEigenvectors rank %d out of range (1..%d)", r, n)
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	q := RandomNormal(n, r, 1, rng)
	qrOrthonormalize(q)
	var prev []float64
	for it := 0; it < maxIter; it++ {
		z := a.Mul(q)
		qrOrthonormalize(z)
		q = z
		// Rayleigh quotients along the current basis as a convergence probe.
		vals := rayleigh(a, q)
		if prev != nil {
			var diff float64
			for i := range vals {
				diff += math.Abs(vals[i] - prev[i])
			}
			if diff < 1e-12*(1+math.Abs(vals[0])) {
				prev = vals
				break
			}
		}
		prev = vals
	}
	// Rotate q to diagonalize the projected matrix qᵀAq, so the returned
	// columns are true eigenvector estimates rather than an arbitrary basis
	// of the dominant subspace.
	proj := q.TMul(a.Mul(q))
	small, err := SymEigen(proj)
	if err != nil {
		return nil, err
	}
	vectors := q.Mul(small.Vectors)
	return &EigenResult{Values: small.Values, Vectors: vectors}, nil
}

func rayleigh(a, q *Matrix) []float64 {
	az := a.Mul(q)
	vals := make([]float64, q.Cols)
	for j := 0; j < q.Cols; j++ {
		var num float64
		for i := 0; i < q.Rows; i++ {
			num += q.At(i, j) * az.At(i, j)
		}
		vals[j] = num
	}
	return vals
}

// qrOrthonormalize replaces the columns of q with an orthonormal basis of
// their span using modified Gram-Schmidt with one re-orthogonalization pass.
// Columns that become numerically zero are replaced with canonical unit
// vectors so the basis keeps full column rank.
func qrOrthonormalize(q *Matrix) {
	n, r := q.Rows, q.Cols
	col := make([]float64, n)
	for j := 0; j < r; j++ {
		for i := 0; i < n; i++ {
			col[i] = q.At(i, j)
		}
		for pass := 0; pass < 2; pass++ {
			for k := 0; k < j; k++ {
				var dot float64
				for i := 0; i < n; i++ {
					dot += col[i] * q.At(i, k)
				}
				for i := 0; i < n; i++ {
					col[i] -= dot * q.At(i, k)
				}
			}
		}
		norm := Norm2(col)
		if norm < 1e-300 {
			// Degenerate column: substitute e_{j mod n}.
			for i := range col {
				col[i] = 0
			}
			col[j%n] = 1
		} else {
			ScaleVec(1/norm, col)
		}
		for i := 0; i < n; i++ {
			q.Set(i, j, col[i])
		}
	}
}
