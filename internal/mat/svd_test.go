package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestThinSVDExactLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	// Rank-3 matrix 12x8 built from factors; full-rank-3 SVD must
	// reconstruct it (near) exactly.
	u := RandomNormal(12, 3, 1, rng)
	v := RandomNormal(8, 3, 1, rng)
	a := u.MulT(v)
	svd, err := ThinSVD(a, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !svd.Reconstruct().Equalf(a, 1e-7) {
		t.Fatal("rank-3 SVD must reconstruct a rank-3 matrix")
	}
}

func TestThinSVDTallAndWide(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, dims := range [][2]int{{15, 6}, {6, 15}} {
		a := RandomNormal(dims[0], dims[1], 1, rng)
		k := 6
		svd, err := ThinSVD(a, k, rng)
		if err != nil {
			t.Fatal(err)
		}
		// Factors orthonormal.
		if !svd.U.Gram().Equalf(Identity(k), 1e-7) {
			t.Fatalf("%v: U not orthonormal", dims)
		}
		if !svd.V.Gram().Equalf(Identity(k), 1e-7) {
			t.Fatalf("%v: V not orthonormal", dims)
		}
		// Full thin SVD reconstructs exactly.
		if !svd.Reconstruct().Equalf(a, 1e-7) {
			t.Fatalf("%v: full thin SVD must reconstruct", dims)
		}
		// Singular values non-negative descending.
		for i := 1; i < k; i++ {
			if svd.S[i] > svd.S[i-1]+1e-10 || svd.S[i] < -1e-12 {
				t.Fatalf("%v: singular values bad: %v", dims, svd.S)
			}
		}
	}
}

func TestThinSVDFrobeniusProperty(t *testing.T) {
	// Sum of squared singular values equals squared Frobenius norm.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 3+rng.Intn(6), 3+rng.Intn(6)
		a := RandomNormal(m, n, 1, rng)
		k := m
		if n < k {
			k = n
		}
		svd, err := ThinSVD(a, k, rng)
		if err != nil {
			return false
		}
		var ss float64
		for _, s := range svd.S {
			ss += s * s
		}
		fn := a.FrobNorm()
		return math.Abs(ss-fn*fn) < 1e-6*(1+fn*fn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestThinSVDBadRank(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := RandomNormal(4, 5, 1, rng)
	if _, err := ThinSVD(a, 0, rng); err == nil {
		t.Fatal("rank 0 must error")
	}
	if _, err := ThinSVD(a, 5, rng); err == nil {
		t.Fatal("rank beyond min(m,n) must error")
	}
}

func TestSoftThresholdSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := RandomNormal(8, 8, 1, rng)
	plain, err := ThinSVD(a, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	tau := plain.S[3] // threshold at the 4th singular value
	soft, err := SoftThresholdSVD(a, 8, tau, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range soft.S {
		want := plain.S[i] - tau
		if want < 0 {
			want = 0
		}
		if math.Abs(s-want) > 1e-8 {
			t.Fatalf("soft-thresholded S[%d] = %g, want %g", i, s, want)
		}
	}
}

func TestCholeskySolveKnown(t *testing.T) {
	// SPD matrix [[4,2],[2,3]]; solve against known answer.
	a := FromSlice(2, 2, []float64{4, 2, 2, 3})
	x, err := SolveSPD(a, []float64{10, 9})
	if err != nil {
		t.Fatal(err)
	}
	// 4x+2y=10, 2x+3y=9 -> x=1.5, y=2.
	if math.Abs(x[0]-1.5) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("SolveSPD = %v, want [1.5 2]", x)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("Cholesky of indefinite matrix must error")
	}
	if _, err := Cholesky(New(2, 3)); err == nil {
		t.Fatal("Cholesky of non-square must error")
	}
}

func TestSolveSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		b := RandomNormal(n, n, 1, rng)
		a := b.Gram().AddRidge(0.5) // guaranteed SPD
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x, err := SolveSPD(a, rhs)
		if err != nil {
			return false
		}
		back := a.MulVec(x)
		for i := range back {
			if math.Abs(back[i]-rhs[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSPDMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	b := RandomNormal(4, 4, 1, rng)
	a := b.Gram().AddRidge(1)
	rhs := RandomNormal(4, 3, 1, rng)
	x, err := SolveSPDMatrix(a, rhs)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(x).Equalf(rhs, 1e-8) {
		t.Fatal("SolveSPDMatrix residual too large")
	}
	if _, err := SolveSPDMatrix(a, New(3, 2)); err == nil {
		t.Fatal("shape mismatch must error")
	}
}
