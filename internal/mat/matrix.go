// Package mat implements the dense linear algebra used throughout the
// repository: a row-major Matrix type with BLAS-like operations, QR
// factorization, symmetric eigendecomposition (cyclic Jacobi and block
// orthogonal iteration for leading eigenpairs), a thin SVD, and Cholesky
// solvers. Everything is written from scratch on the standard library; no
// external numerical packages are used.
//
// The package exists to support the spectral embedding initialization of the
// TCSS model (top-r eigenvectors of zero-diagonal Gram matrices of tensor
// unfoldings), the PureSVD and MCCO matrix-completion baselines, and the ALS
// sweeps of the CP/Tucker/P-Tucker tensor baselines.
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix. Data holds Rows*Cols float64 values;
// entry (i, j) lives at Data[i*Cols+j]. The zero Matrix is empty and unusable;
// construct with New or one of the From helpers.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-filled r-by-c matrix. It panics if either dimension is
// negative or zero, since a dimensionless matrix is always a caller bug here.
func New(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromSlice wraps data (row-major, length r*c) in a Matrix without copying.
func FromSlice(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: FromSlice length %d != %d*%d", len(data), r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: data}
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Random returns an r-by-c matrix with entries drawn uniformly from
// [-scale, scale) using rng.
func Random(r, c int, scale float64, rng *rand.Rand) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = (2*rng.Float64() - 1) * scale
	}
	return m
}

// RandomNormal returns an r-by-c matrix with N(0, sigma^2) entries.
func RandomNormal(r, c int, sigma float64, rng *rand.Rand) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * sigma
	}
	return m
}

// At returns entry (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Fill sets every entry to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Add returns m + b as a new matrix. Dimensions must match.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.mustSameShape(b, "Add")
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m - b as a new matrix. Dimensions must match.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.mustSameShape(b, "Sub")
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s*m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// AddInPlace accumulates b into m.
func (m *Matrix) AddInPlace(b *Matrix) {
	m.mustSameShape(b, "AddInPlace")
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// ScaleInPlace multiplies every entry of m by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

func (m *Matrix) mustSameShape(b *Matrix, op string) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, b.Rows, b.Cols))
	}
}

// Mul returns the matrix product m*b. It uses a cache-friendly ikj loop order.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul inner mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := New(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, a := range arow {
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// MulT returns m * bᵀ.
func (m *Matrix) MulT(b *Matrix) *Matrix {
	if m.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulT inner mismatch %dx%d * (%dx%d)^T", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := New(m.Rows, b.Rows)
	for i := 0; i < m.Rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = Dot(arow, b.Row(j))
		}
	}
	return out
}

// TMul returns mᵀ * b.
func (m *Matrix) TMul(b *Matrix) *Matrix {
	if m.Rows != b.Rows {
		panic(fmt.Sprintf("mat: TMul inner mismatch (%dx%d)^T * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := New(m.Cols, b.Cols)
	for k := 0; k < m.Rows; k++ {
		arow := m.Row(k)
		brow := b.Row(k)
		for i, a := range arow {
			if a == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// Gram returns mᵀm, the c-by-c Gram matrix of the columns of m.
func (m *Matrix) Gram() *Matrix { return m.TMul(m) }

// GramT returns m·mᵀ, the r-by-r Gram matrix of the rows of m.
func (m *Matrix) GramT() *Matrix { return m.MulT(m) }

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// TMulVec returns mᵀ*x.
func (m *Matrix) TMulVec(x []float64) []float64 {
	if m.Rows != len(x) {
		panic(fmt.Sprintf("mat: TMulVec mismatch (%dx%d)^T * %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Cols)
	for k, xv := range x {
		if xv == 0 {
			continue
		}
		row := m.Row(k)
		for j, v := range row {
			out[j] += xv * v
		}
	}
	return out
}

// FrobNorm returns the Frobenius norm of m.
func (m *Matrix) FrobNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ZeroDiagonal sets the diagonal entries of a square matrix to zero in place.
// The TCSS spectral initialization zeroes the diagonals of the unfoldings'
// Gram matrices because they dominate the principal directions.
func (m *Matrix) ZeroDiagonal() {
	if m.Rows != m.Cols {
		panic("mat: ZeroDiagonal requires a square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] = 0
	}
}

// MaxAbs returns the largest absolute entry of m.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equalf reports whether m and b agree entrywise within tol.
func (m *Matrix) Equalf(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders a small matrix for debugging; large matrices are summarized.
func (m *Matrix) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d, |.|F=%.4g)", m.Rows, m.Cols, m.FrobNorm())
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}
