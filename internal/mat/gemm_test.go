package mat

import (
	"math/rand"
	"testing"
)

func randomMatrix(r, c int, seed int64) *Matrix {
	return Random(r, c, 1, rand.New(rand.NewSource(seed)))
}

func TestDotUnrolledMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 10, 13, 64, 1000} {
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		want := Dot(a, b)
		got := DotUnrolled(a, b)
		if diff := got - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("n=%d: DotUnrolled %v vs Dot %v", n, got, want)
		}
	}
}

func TestMulIntoMatchesMul(t *testing.T) {
	for _, dims := range [][3]int{{3, 4, 5}, {10, 10, 10}, {1, 7, 2}, {65, 33, 70}} {
		a := randomMatrix(dims[0], dims[1], 2)
		b := randomMatrix(dims[1], dims[2], 3)
		want := a.Mul(b)
		out := New(dims[0], dims[2])
		out.Fill(42) // MulInto must overwrite stale contents
		MulInto(out, a, b)
		for i := range out.Data {
			if out.Data[i] != want.Data[i] {
				t.Fatalf("dims=%v: MulInto differs from Mul at %d: %v vs %v", dims, i, out.Data[i], want.Data[i])
			}
		}
	}
}

func TestMulTIntoMatchesMulT(t *testing.T) {
	for _, dims := range [][3]int{{3, 5, 4}, {10, 10, 10}, {1, 2, 7}, {33, 70, 65}} {
		a := randomMatrix(dims[0], dims[1], 4)
		b := randomMatrix(dims[2], dims[1], 5)
		want := a.MulT(b)
		out := New(dims[0], dims[2])
		out.Fill(-1)
		MulTInto(out, a, b)
		if !out.Equalf(want, 1e-12) {
			t.Fatalf("dims=%v: MulTInto differs from MulT", dims)
		}
	}
}

func TestMulBlockedMatchesMul(t *testing.T) {
	for _, dims := range [][3]int{
		{3, 4, 5},     // small: falls back to MulInto
		{64, 64, 64},  // exactly one tile
		{65, 64, 63},  // straddles tile boundaries
		{130, 70, 90}, // several tiles each way
	} {
		a := randomMatrix(dims[0], dims[1], 6)
		b := randomMatrix(dims[1], dims[2], 7)
		want := a.Mul(b)
		out := New(dims[0], dims[2])
		out.Fill(3)
		MulBlocked(out, a, b)
		if !out.Equalf(want, 1e-10) {
			t.Fatalf("dims=%v: MulBlocked differs from Mul", dims)
		}
	}
}

func TestMulDiagTInto(t *testing.T) {
	const J, K, r = 17, 9, 10
	a := randomMatrix(J, r, 8)
	b := randomMatrix(K, r, 9)
	w := make([]float64, r)
	rng := rand.New(rand.NewSource(10))
	for t := range w {
		w[t] = rng.NormFloat64()
	}
	out := New(J, K)
	scratch := make([]float64, r)
	MulDiagTInto(out, a, w, b, scratch)
	for i := 0; i < J; i++ {
		for j := 0; j < K; j++ {
			var want float64
			for t := 0; t < r; t++ {
				want += a.At(i, t) * w[t] * b.At(j, t)
			}
			if diff := out.At(i, j) - want; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("(%d,%d): %v vs %v", i, j, out.At(i, j), want)
			}
		}
	}
}

func TestGemmShapePanics(t *testing.T) {
	a := New(2, 3)
	b := New(3, 4)
	for name, fn := range map[string]func(){
		"MulInto-out":     func() { MulInto(New(2, 3), a, b) },
		"MulInto-inner":   func() { MulInto(New(2, 2), a, New(2, 2)) },
		"MulTInto-out":    func() { MulTInto(New(3, 3), a, New(4, 3)) },
		"MulBlocked-out":  func() { MulBlocked(New(4, 4), a, b) },
		"MulDiagT-w":      func() { MulDiagTInto(New(2, 5), a, make([]float64, 2), New(5, 3), make([]float64, 3)) },
		"MulDiagT-scratch": func() {
			MulDiagTInto(New(2, 5), a, make([]float64, 3), New(5, 3), make([]float64, 1))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
