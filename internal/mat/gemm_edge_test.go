package mat

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMul is the reference triple loop every GEMM kernel is checked against.
func naiveMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

// TestGEMMShapeEdgeCases sweeps the kernels over degenerate and
// block-straddling shapes: single rows/columns, extreme aspect ratios, inner
// dimension 1, and sizes just past the 64-wide MulBlocked tile edge.
func TestGEMMShapeEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct {
		name    string
		m, k, n int
	}{
		{"1x1x1", 1, 1, 1},
		{"row-vector", 1, 7, 5},
		{"col-vector", 6, 3, 1},
		{"inner-1", 4, 1, 5},
		{"tall-skinny", 33, 2, 3},
		{"short-fat", 2, 3, 41},
		{"block-edge", 64, 64, 64},
		{"block-straddle", 65, 3, 70},
		{"block-straddle-inner", 10, 65, 9},
	}
	const tol = 1e-12
	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			a := Random(sh.m, sh.k, 1, rng)
			b := Random(sh.k, sh.n, 1, rng)
			want := naiveMul(a, b)

			if got := a.Mul(b); !got.Equalf(want, tol) {
				t.Fatal("Mul deviates from naive reference")
			}
			if got := MulInto(New(sh.m, sh.n), a, b); !got.Equalf(want, tol) {
				t.Fatal("MulInto deviates from naive reference")
			}
			if got := MulBlocked(New(sh.m, sh.n), a, b); !got.Equalf(want, tol) {
				t.Fatal("MulBlocked deviates from naive reference")
			}
			// a·bᵀ via MulTInto against the same reference on b transposed.
			bt := b.T()
			if got := MulTInto(New(sh.m, sh.n), a, bt); !got.Equalf(want, tol) {
				t.Fatal("MulTInto deviates from naive reference")
			}
		})
	}
}

// TestMulDiagTSliceMatchesNaive checks the slab-scoring primitive
// out = a·diag(w)·bᵀ cell-by-cell, including rank lengths around the
// four-accumulator unroll boundary (1..9 covers remainders 0..3).
func TestMulDiagTSliceMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for r := 1; r <= 9; r++ {
		a := Random(5, r, 1, rng)
		b := Random(4, r, 1, rng)
		w := make([]float64, r)
		for i := range w {
			w[i] = rng.Float64()*2 - 1
		}
		out := make([]float64, 5*4)
		MulDiagTSlice(out, a, w, b, make([]float64, r))
		for i := 0; i < 5; i++ {
			for j := 0; j < 4; j++ {
				var want float64
				for tt := 0; tt < r; tt++ {
					want += a.At(i, tt) * w[tt] * b.At(j, tt)
				}
				if math.Abs(out[i*4+j]-want) > 1e-12 {
					t.Fatalf("rank %d: out[%d,%d] = %g, want %g", r, i, j, out[i*4+j], want)
				}
			}
		}
	}
}

// TestGEMMPanicsOnBadShapes pins the error behaviour: zero or negative
// dimensions are rejected at construction, and mismatched operands panic with
// a shape message rather than corrupting memory.
func TestGEMMPanicsOnBadShapes(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("New(0,3)", func() { New(0, 3) })
	mustPanic("New(3,0)", func() { New(3, 0) })
	mustPanic("New(-1,2)", func() { New(-1, 2) })
	a23, a32 := New(2, 3), New(3, 2)
	mustPanic("Mul inner mismatch", func() { a23.Mul(a23) })
	mustPanic("MulInto inner mismatch", func() { MulInto(New(2, 3), a23, a23) })
	mustPanic("MulInto out shape", func() { MulInto(New(3, 3), a23, a32) })
	mustPanic("MulBlocked inner mismatch", func() { MulBlocked(New(2, 3), a23, a23) })
	mustPanic("MulTInto inner mismatch", func() { MulTInto(New(2, 3), a23, a32) })
	mustPanic("MulDiagTSlice bad scratch", func() {
		MulDiagTSlice(make([]float64, 4), New(2, 3), make([]float64, 3), New(2, 3), make([]float64, 2))
	})
	mustPanic("MulDiagTSlice bad out", func() {
		MulDiagTSlice(make([]float64, 3), New(2, 3), make([]float64, 3), New(2, 3), make([]float64, 3))
	})
	mustPanic("MulDiagTSlice w mismatch", func() {
		MulDiagTSlice(make([]float64, 4), New(2, 3), make([]float64, 2), New(2, 3), make([]float64, 3))
	})
}
