package mat

import "fmt"

// Elem covers the factor-slab element types: float64 factors and the compact
// float32/int8 storage modes. Non-float64 elements are widened to float64
// inside the kernels, exactly like DotF32Unrolled and DotI8Unrolled.
type Elem interface {
	~float64 | ~float32 | ~int8
}

// DotWiden is the generic single-vector counterpart of Dot4: the same
// algorithm as DotUnrolled / DotF32Unrolled / DotI8Unrolled (four-lane
// unroll, tail into lane 0, reduction (s0+s1)+(s2+s3)), so its result is
// bit-identical to the typed kernel for the same element type.
func DotWiden[E Elem](a []float64, b []E) float64 {
	n := len(a)
	if n != len(b) {
		panic(fmt.Sprintf("mat: DotWiden length mismatch %d vs %d", n, len(b)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * float64(b[i])
		s1 += a[i+1] * float64(b[i+1])
		s2 += a[i+2] * float64(b[i+2])
		s3 += a[i+3] * float64(b[i+3])
	}
	for ; i < n; i++ {
		s0 += a[i] * float64(b[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// Dot4 computes four inner products against one shared row, loading each row
// element once — the register-reuse win that only a batched caller can have:
// four separate Dot*Unrolled calls reload the row three times over and pay
// the call overhead four times. Lane k accumulates wk[i]·row[i] in exactly
// the Dot*Unrolled order (four-lane unroll, tail into lane 0, reduction
// (s0+s1)+(s2+s3)), so dk is bit-identical to Dot*Unrolled(wk, row).
func Dot4[E Elem](w0, w1, w2, w3 []float64, row []E) (d0, d1, d2, d3 float64) {
	n := len(row)
	if len(w0) != n || len(w1) != n || len(w2) != n || len(w3) != n {
		panic(fmt.Sprintf("mat: Dot4 length mismatch %d/%d/%d/%d vs %d",
			len(w0), len(w1), len(w2), len(w3), n))
	}
	var a0, a1, a2, a3 float64
	var b0, b1, b2, b3 float64
	var c0, c1, c2, c3 float64
	var e0, e1, e2, e3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		r0, r1, r2, r3 := float64(row[i]), float64(row[i+1]), float64(row[i+2]), float64(row[i+3])
		a0 += w0[i] * r0
		a1 += w0[i+1] * r1
		a2 += w0[i+2] * r2
		a3 += w0[i+3] * r3
		b0 += w1[i] * r0
		b1 += w1[i+1] * r1
		b2 += w1[i+2] * r2
		b3 += w1[i+3] * r3
		c0 += w2[i] * r0
		c1 += w2[i+1] * r1
		c2 += w2[i+2] * r2
		c3 += w2[i+3] * r3
		e0 += w3[i] * r0
		e1 += w3[i+1] * r1
		e2 += w3[i+2] * r2
		e3 += w3[i+3] * r3
	}
	for ; i < n; i++ {
		r := float64(row[i])
		a0 += w0[i] * r
		b0 += w1[i] * r
		c0 += w2[i] * r
		e0 += w3[i] * r
	}
	return (a0 + a1) + (a2 + a3), (b0 + b1) + (b2 + b3), (c0 + c1) + (c2 + c3), (e0 + e1) + (e2 + e3)
}
