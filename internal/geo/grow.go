package geo

import "fmt"

// Grown returns a new distance matrix over pts, reusing the receiver's
// already-computed block: pts must be the full grown point list whose first
// dm.N entries are the points dm was built from. Only the new-vs-all
// distances are computed, so growing by Δ POIs costs O(n·Δ) instead of the
// O(n²) of a full rebuild. The receiver is not modified — published snapshots
// may keep referencing it.
func (dm *DistanceMatrix) Grown(pts []Point) *DistanceMatrix {
	n := len(pts)
	if n < dm.N {
		panic(fmt.Sprintf("geo: Grown with %d points, matrix already covers %d", n, dm.N))
	}
	if n == dm.N {
		return dm
	}
	out := &DistanceMatrix{N: n, D: make([]float64, n*n), DMax: dm.DMax}
	for i := 0; i < dm.N; i++ {
		copy(out.D[i*n:i*n+dm.N], dm.D[i*dm.N:(i+1)*dm.N])
	}
	for i := dm.N; i < n; i++ {
		for j := 0; j < i; j++ {
			d := Haversine(pts[i], pts[j])
			out.D[i*n+j] = d
			out.D[j*n+i] = d
			if d > out.DMax {
				out.DMax = d
			}
		}
	}
	return out
}

// NearestIndices returns the up-to-k nearest POIs to j (excluding j itself),
// closest first, ties broken by lower index. Growth warm-starts a new POI's
// factor row from these geographic neighbours.
func (dm *DistanceMatrix) NearestIndices(j, k int) []int {
	type cand struct {
		idx int
		d   float64
	}
	best := make([]cand, 0, k)
	for i := 0; i < dm.N; i++ {
		if i == j {
			continue
		}
		d := dm.At(j, i)
		pos := len(best)
		for pos > 0 && (d < best[pos-1].d || (d == best[pos-1].d && i < best[pos-1].idx)) {
			pos--
		}
		if pos >= k {
			continue
		}
		if len(best) < k {
			best = append(best, cand{})
		}
		copy(best[pos+1:], best[pos:])
		best[pos] = cand{i, d}
	}
	out := make([]int, len(best))
	for i, c := range best {
		out[i] = c.idx
	}
	return out
}
