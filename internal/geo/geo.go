// Package geo provides the geospatial primitives of the reproduction:
// lat/lon points, Haversine great-circle distance (the paper's POI distance
// function), dense POI distance matrices with the maximum pairwise distance
// d_max, location entropy (Eq 11) for diversity weighting, and clustering
// statistics used by the Figure 12 case study.
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// EarthRadiusKm is the mean Earth radius used by the Haversine formula.
const EarthRadiusKm = 6371.0088

// Point is a geographic location in degrees.
type Point struct {
	Lat, Lon float64
}

// Haversine returns the great-circle distance between a and b in kilometers.
// It is symmetric, non-negative, and zero only for identical points.
func Haversine(a, b Point) float64 {
	const deg2rad = math.Pi / 180
	lat1, lat2 := a.Lat*deg2rad, b.Lat*deg2rad
	dLat := (b.Lat - a.Lat) * deg2rad
	dLon := (b.Lon - a.Lon) * deg2rad
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// BoundingBox is an axis-aligned lat/lon rectangle.
type BoundingBox struct {
	MinLat, MaxLat, MinLon, MaxLon float64
}

// Contains reports whether p lies inside the box (inclusive).
func (b BoundingBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat && p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// RandomPoint draws a uniform point inside the box.
func (b BoundingBox) RandomPoint(rng *rand.Rand) Point {
	return Point{
		Lat: b.MinLat + rng.Float64()*(b.MaxLat-b.MinLat),
		Lon: b.MinLon + rng.Float64()*(b.MaxLon-b.MinLon),
	}
}

// Jitter returns p displaced by a Gaussian perturbation with the given
// standard deviation in degrees, used by the LBSN generator to scatter POIs
// around cluster centers.
func Jitter(p Point, sigmaDeg float64, rng *rand.Rand) Point {
	return Point{
		Lat: p.Lat + rng.NormFloat64()*sigmaDeg,
		Lon: p.Lon + rng.NormFloat64()*sigmaDeg,
	}
}

// DistanceMatrix holds pairwise Haversine distances between a POI set plus
// the maximum distance d_max, which the social Hausdorff loss uses as the
// penalty for improbable POIs (Eq 10).
type DistanceMatrix struct {
	N    int
	D    []float64 // row-major n*n
	DMax float64
}

// NewDistanceMatrix computes all pairwise distances between pts. It costs
// O(n²) time and memory and is computed once per dataset.
func NewDistanceMatrix(pts []Point) *DistanceMatrix {
	n := len(pts)
	if n == 0 {
		panic("geo: NewDistanceMatrix with no points")
	}
	dm := &DistanceMatrix{N: n, D: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := Haversine(pts[i], pts[j])
			dm.D[i*n+j] = d
			dm.D[j*n+i] = d
			if d > dm.DMax {
				dm.DMax = d
			}
		}
	}
	return dm
}

// At returns the distance between POIs i and j in kilometers.
func (dm *DistanceMatrix) At(i, j int) float64 { return dm.D[i*dm.N+j] }

// Nearest returns the index in candidates whose distance to j is smallest,
// together with that distance. candidates must be non-empty.
func (dm *DistanceMatrix) Nearest(j int, candidates []int) (int, float64) {
	if len(candidates) == 0 {
		panic("geo: Nearest with no candidates")
	}
	best, bestD := candidates[0], dm.At(j, candidates[0])
	for _, c := range candidates[1:] {
		if d := dm.At(j, c); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// LocationEntropy computes Eq (11) for one POI: visits[i] is the number of
// check-ins by user i at the POI (only visitors need appear; zeros are
// ignored). The entropy is 0 when a single user accounts for all visits and
// grows to log(#visitors) when visits are spread evenly.
func LocationEntropy(visits []int) float64 {
	var total int
	for _, v := range visits {
		if v < 0 {
			panic(fmt.Sprintf("geo: negative visit count %d", v))
		}
		total += v
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, v := range visits {
		if v == 0 {
			continue
		}
		p := float64(v) / float64(total)
		h -= p * math.Log(p)
	}
	return h
}

// EntropyWeight returns exp(-entropy), the multiplicative weight e_j the
// paper applies to POI distances so that popular POIs (high entropy) are
// down-weighted and rarely-shared POIs keep weight near 1.
func EntropyWeight(entropy float64) float64 { return math.Exp(-entropy) }

// Centroid returns the arithmetic mean of the points (adequate away from the
// antimeridian, which our city-scale generators never straddle).
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geo: Centroid with no points")
	}
	var c Point
	for _, p := range pts {
		c.Lat += p.Lat
		c.Lon += p.Lon
	}
	c.Lat /= float64(len(pts))
	c.Lon /= float64(len(pts))
	return c
}

// RadiusOfGyration returns the root-mean-square Haversine distance of pts to
// their centroid, in kilometers. Figure 12's case study uses it to show that
// top-100 recommendations cluster more tightly than top-200.
func RadiusOfGyration(pts []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	c := Centroid(pts)
	var s float64
	for _, p := range pts {
		d := Haversine(p, c)
		s += d * d
	}
	return math.Sqrt(s / float64(len(pts)))
}

// MeanPairwiseDistance returns the average Haversine distance over all
// unordered pairs, or 0 for fewer than two points.
func MeanPairwiseDistance(pts []Point) float64 {
	n := len(pts)
	if n < 2 {
		return 0
	}
	var s float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s += Haversine(pts[i], pts[j])
		}
	}
	return s / float64(n*(n-1)/2)
}
