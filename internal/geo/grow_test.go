package geo

import (
	"math/rand"
	"testing"
)

func TestDistanceMatrixGrown(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	box := BoundingBox{MinLat: 30, MaxLat: 40, MinLon: -100, MaxLon: -90}
	pts := make([]Point, 12)
	for i := range pts {
		pts[i] = box.RandomPoint(rng)
	}
	base := NewDistanceMatrix(pts[:8])
	grown := base.Grown(pts)
	full := NewDistanceMatrix(pts)
	if grown.N != 12 {
		t.Fatalf("grown.N = %d", grown.N)
	}
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if grown.At(i, j) != full.At(i, j) {
				t.Fatalf("Grown.At(%d,%d) = %g, full rebuild = %g", i, j, grown.At(i, j), full.At(i, j))
			}
		}
	}
	if grown.DMax != full.DMax {
		t.Errorf("DMax = %g, want %g", grown.DMax, full.DMax)
	}
	if base.N != 8 {
		t.Error("Grown mutated the receiver")
	}
	if same := base.Grown(pts[:8]); same != base {
		t.Error("no-op Grown should return the receiver")
	}
}

func TestNearestIndices(t *testing.T) {
	// Collinear points at 0, 1, 2, 5, 9 degrees longitude.
	lons := []float64{0, 1, 2, 5, 9}
	pts := make([]Point, len(lons))
	for i, l := range lons {
		pts[i] = Point{Lat: 0, Lon: l}
	}
	dm := NewDistanceMatrix(pts)
	got := dm.NearestIndices(3, 3) // POI at lon 5: nearest are 2 (Δ3), 1 (Δ4), 4 (Δ4)
	want := []int{2, 1, 4}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("NearestIndices = %v, want %v", got, want)
	}
	if all := dm.NearestIndices(0, 10); len(all) != 4 {
		t.Errorf("k beyond n returned %v", all)
	}
}
