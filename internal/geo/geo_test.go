package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randPoint(rng *rand.Rand) Point {
	return Point{Lat: rng.Float64()*160 - 80, Lon: rng.Float64()*360 - 180}
}

func TestHaversineKnownDistance(t *testing.T) {
	// Paris to London is roughly 344 km.
	paris := Point{Lat: 48.8566, Lon: 2.3522}
	london := Point{Lat: 51.5074, Lon: -0.1278}
	d := Haversine(paris, london)
	if d < 330 || d > 355 {
		t.Fatalf("Paris-London = %g km, want ≈344", d)
	}
}

func TestHaversineZeroIdentity(t *testing.T) {
	p := Point{Lat: 33.5, Lon: -86.8}
	if got := Haversine(p, p); got != 0 {
		t.Fatalf("d(p,p) = %g, want 0", got)
	}
}

func TestHaversineProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randPoint(rng), randPoint(rng), randPoint(rng)
		dab, dba := Haversine(a, b), Haversine(b, a)
		if math.Abs(dab-dba) > 1e-9 {
			return false // symmetry
		}
		if dab < 0 {
			return false // non-negativity
		}
		// Triangle inequality with numerical slack.
		return Haversine(a, c) <= dab+Haversine(b, c)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHaversineAntipodal(t *testing.T) {
	// Antipodal points are half the circumference apart: π·R ≈ 20015 km.
	d := Haversine(Point{Lat: 0, Lon: 0}, Point{Lat: 0, Lon: 180})
	want := math.Pi * EarthRadiusKm
	if math.Abs(d-want) > 1 {
		t.Fatalf("antipodal distance = %g, want %g", d, want)
	}
}

func TestBoundingBox(t *testing.T) {
	b := BoundingBox{MinLat: 30, MaxLat: 35, MinLon: -90, MaxLon: -85}
	if !b.Contains(Point{Lat: 32, Lon: -87}) {
		t.Fatal("point inside box reported outside")
	}
	if b.Contains(Point{Lat: 36, Lon: -87}) {
		t.Fatal("point outside box reported inside")
	}
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 50; n++ {
		if p := b.RandomPoint(rng); !b.Contains(p) {
			t.Fatalf("RandomPoint %v escaped the box", p)
		}
	}
}

func TestDistanceMatrix(t *testing.T) {
	pts := []Point{
		{Lat: 0, Lon: 0},
		{Lat: 0, Lon: 1},
		{Lat: 1, Lon: 0},
	}
	dm := NewDistanceMatrix(pts)
	if dm.At(0, 0) != 0 {
		t.Fatal("diagonal must be zero")
	}
	if math.Abs(dm.At(0, 1)-dm.At(1, 0)) > 1e-12 {
		t.Fatal("distance matrix must be symmetric")
	}
	if math.Abs(dm.At(0, 1)-Haversine(pts[0], pts[1])) > 1e-12 {
		t.Fatal("matrix entry must equal Haversine")
	}
	var want float64
	for i := range pts {
		for j := range pts {
			if dm.At(i, j) > want {
				want = dm.At(i, j)
			}
		}
	}
	if dm.DMax != want {
		t.Fatalf("DMax = %g, want %g", dm.DMax, want)
	}
}

func TestNearest(t *testing.T) {
	pts := []Point{
		{Lat: 0, Lon: 0},
		{Lat: 0, Lon: 0.1},
		{Lat: 0, Lon: 5},
	}
	dm := NewDistanceMatrix(pts)
	idx, d := dm.Nearest(0, []int{1, 2})
	if idx != 1 {
		t.Fatalf("Nearest = %d, want 1", idx)
	}
	if math.Abs(d-dm.At(0, 1)) > 1e-12 {
		t.Fatalf("Nearest distance = %g", d)
	}
}

func TestLocationEntropy(t *testing.T) {
	// Single visitor: entropy 0.
	if got := LocationEntropy([]int{7}); got != 0 {
		t.Fatalf("single-visitor entropy = %g, want 0", got)
	}
	// Even split over n visitors: entropy log(n).
	if got, want := LocationEntropy([]int{3, 3, 3, 3}), math.Log(4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("even entropy = %g, want %g", got, want)
	}
	// No visits at all.
	if got := LocationEntropy(nil); got != 0 {
		t.Fatalf("empty entropy = %g, want 0", got)
	}
}

func TestLocationEntropyProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		visits := make([]int, n)
		var visitors int
		for i := range visits {
			visits[i] = rng.Intn(5)
			if visits[i] > 0 {
				visitors++
			}
		}
		h := LocationEntropy(visits)
		if h < 0 {
			return false
		}
		if visitors > 0 && h > math.Log(float64(visitors))+1e-12 {
			return false // entropy bounded by log of visitor count
		}
		// Scaling all counts by a constant leaves entropy unchanged.
		scaled := make([]int, n)
		for i, v := range visits {
			scaled[i] = 3 * v
		}
		return math.Abs(LocationEntropy(scaled)-h) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEntropyWeightMonotone(t *testing.T) {
	if EntropyWeight(0) != 1 {
		t.Fatal("zero entropy must give weight 1")
	}
	if EntropyWeight(1) >= EntropyWeight(0.5) {
		t.Fatal("weight must decrease with entropy")
	}
}

func TestCentroidAndRadius(t *testing.T) {
	pts := []Point{{Lat: 0, Lon: 0}, {Lat: 0, Lon: 2}}
	c := Centroid(pts)
	if c.Lat != 0 || c.Lon != 1 {
		t.Fatalf("Centroid = %v", c)
	}
	r := RadiusOfGyration(pts)
	want := Haversine(Point{Lat: 0, Lon: 0}, c)
	if math.Abs(r-want) > 1e-9 {
		t.Fatalf("RadiusOfGyration = %g, want %g", r, want)
	}
	if RadiusOfGyration(nil) != 0 {
		t.Fatal("empty radius must be 0")
	}
}

func TestMeanPairwiseDistance(t *testing.T) {
	pts := []Point{{Lat: 0, Lon: 0}, {Lat: 0, Lon: 1}, {Lat: 0, Lon: 2}}
	got := MeanPairwiseDistance(pts)
	want := (Haversine(pts[0], pts[1]) + Haversine(pts[0], pts[2]) + Haversine(pts[1], pts[2])) / 3
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("MeanPairwiseDistance = %g, want %g", got, want)
	}
	if MeanPairwiseDistance(pts[:1]) != 0 {
		t.Fatal("single point must give 0")
	}
}

func TestJitterStaysClose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := Point{Lat: 40, Lon: -75}
	q := Jitter(p, 0.01, rng)
	if Haversine(p, q) > 10 {
		t.Fatalf("jitter moved the point %g km, want small", Haversine(p, q))
	}
}
