// Native Go fuzz targets asserting the repository's algebraic invariants on
// randomized inputs. `go test ./internal/check` runs each target over its
// seed corpus; `make fuzz` (or `go test -fuzz <Target> ./internal/check`)
// explores further. Every target derives its structures deterministically
// from the fuzzed bytes via splitmix64, so failures replay exactly.
package check

import (
	"math"
	"testing"

	"tcss/internal/core"
	"tcss/internal/geo"
	"tcss/internal/graph"
	"tcss/internal/tensor"
)

// fuzzRNG is a tiny deterministic generator seeded from fuzz input.
type fuzzRNG uint64

func (r *fuzzRNG) next() uint64 {
	*r = fuzzRNG(splitmix64(uint64(*r) + 0x9E3779B97F4A7C15))
	return uint64(*r)
}

func (r *fuzzRNG) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *fuzzRNG) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// FuzzCOOInvariants drives a random Set/Add/Scale script against a plain map
// reference and asserts the tensor agrees cell-for-cell, that NNZ matches the
// reference support exactly (Set-to-zero must delete), and that FrobNormSq
// matches the reference sum.
func FuzzCOOInvariants(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(3), uint8(2), uint16(12))
	f.Add(uint64(99), uint8(1), uint8(1), uint8(1), uint16(3))
	f.Add(uint64(7), uint8(6), uint8(5), uint8(4), uint16(200))
	f.Fuzz(func(t *testing.T, seed uint64, di, dj, dk uint8, ops uint16) {
		I, J, K := int(di%8)+1, int(dj%8)+1, int(dk%8)+1
		n := int(ops % 256)
		rng := fuzzRNG(seed)
		x := tensor.NewCOO(I, J, K)
		ref := map[[3]int]float64{}
		for op := 0; op < n; op++ {
			i, j, k := rng.intn(I), rng.intn(J), rng.intn(K)
			v := math.Round(rng.float()*8-4) / 2 // small half-integers incl. 0
			switch rng.intn(3) {
			case 0:
				x.Set(i, j, k, v)
				if v == 0 {
					delete(ref, [3]int{i, j, k})
				} else {
					ref[[3]int{i, j, k}] = v
				}
			case 1:
				x.Add(i, j, k, v)
				if nv := ref[[3]int{i, j, k}] + v; nv == 0 {
					delete(ref, [3]int{i, j, k})
				} else {
					ref[[3]int{i, j, k}] = nv
				}
			case 2:
				s := math.Round(rng.float()*4-2)/2 + 1 // in {0, ±0.5, …}, usually ≠ 1
				x.Scale(s)
				for key, v := range ref {
					if nv := v * s; nv == 0 {
						delete(ref, key)
					} else {
						ref[key] = nv
					}
				}
			}
		}
		if x.NNZ() != len(ref) {
			t.Fatalf("NNZ %d, reference support %d", x.NNZ(), len(ref))
		}
		var wantFrob float64
		for key, v := range ref {
			if got := x.At(key[0], key[1], key[2]); got != v {
				t.Fatalf("At(%v) = %g, reference %g", key, got, v)
			}
			wantFrob += v * v
		}
		for _, e := range x.Entries() {
			if ref[[3]int{e.I, e.J, e.K}] != e.Val {
				t.Fatalf("entry %v not in reference", e)
			}
			if !x.Has(e.I, e.J, e.K) {
				t.Fatalf("Has(%d,%d,%d) false for stored entry", e.I, e.J, e.K)
			}
		}
		if got := x.FrobNormSq(); math.Abs(got-wantFrob) > 1e-9*(1+wantFrob) {
			t.Fatalf("FrobNormSq %g, reference %g", got, wantFrob)
		}
	})
}

// fuzzModel builds a model with bounded parameters derived from the seed.
func fuzzModel(seed uint64, i, j, k, rank int) *core.Model {
	rng := fuzzRNG(seed)
	m := core.NewModel(i, j, k, rank)
	fill := func(data []float64) {
		for idx := range data {
			data[idx] = rng.float()*2 - 1
		}
	}
	fill(m.U1.Data)
	fill(m.U2.Data)
	fill(m.U3.Data)
	fill(m.H)
	return m
}

// FuzzScoreSlabVsPredict asserts the scoring identities on random models:
// the slab GEMM kernel and the candidate gather must agree with pointwise
// Predict, the whole-data loss must be identical at any worker count,
// non-negative, and produce finite gradients.
func FuzzScoreSlabVsPredict(f *testing.F) {
	f.Add(uint64(1), uint8(5), uint8(6), uint8(3), uint8(2))
	f.Add(uint64(42), uint8(2), uint8(9), uint8(4), uint8(5))
	f.Add(uint64(1234), uint8(7), uint8(1), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, di, dj, dk, r uint8) {
		I, J, K := int(di%8)+1, int(dj%8)+1, int(dk%8)+1
		rank := int(r%6) + 1
		m := fuzzModel(seed, I, J, K, rank)

		// ScoreSlab ≡ Predict pointwise (up to GEMM regrouping).
		slab := make([]float64, J*K)
		for i := 0; i < I; i++ {
			m.ScoreSlab(i, slab)
			for j := 0; j < J; j++ {
				for k := 0; k < K; k++ {
					want := m.Predict(i, j, k)
					got := slab[j*K+k]
					if math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
						t.Fatalf("ScoreSlab[%d,%d,%d] = %g, Predict = %g", i, j, k, got, want)
					}
				}
			}
		}

		// ScoreCandidates ≡ Predict on a random candidate subset.
		rng := fuzzRNG(seed ^ 0xABCD)
		js := make([]int, rng.intn(J)+1)
		for idx := range js {
			js[idx] = rng.intn(J)
		}
		out := make([]float64, len(js))
		i, k := rng.intn(I), rng.intn(K)
		m.ScoreCandidates(i, k, js, out)
		for idx, j := range js {
			want := m.Predict(i, j, k)
			if math.Abs(out[idx]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("ScoreCandidates[%d] = %g, Predict(%d,%d,%d) = %g", idx, out[idx], i, j, k, want)
			}
		}

		// Whole-data loss: non-negative, worker-count invariant, finite grads.
		x := tensor.NewCOO(I, J, K)
		for n := 0; n < (I*J*K+1)/2; n++ {
			x.Set(rng.intn(I), rng.intn(J), rng.intn(K), 1)
		}
		g := core.NewGrads(m)
		g.Zero()
		serial := m.WholeDataLossWorkers(x, 0.99, 0.01, g, 1)
		if serial < 0 || math.IsNaN(serial) || math.IsInf(serial, 0) {
			t.Fatalf("whole-data loss %g not a finite non-negative value", serial)
		}
		for _, grad := range [][]float64{g.DU1.Data, g.DU2.Data, g.DU3.Data, g.DH} {
			for idx, v := range grad {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite gradient element %d: %g", idx, v)
				}
			}
		}
		for workers := 2; workers <= 4; workers++ {
			g2 := core.NewGrads(m)
			g2.Zero()
			par := m.WholeDataLossWorkers(x, 0.99, 0.01, g2, workers)
			if math.Abs(par-serial) > 1e-9*(1+math.Abs(serial)) {
				t.Fatalf("loss at %d workers %.17g differs from serial %.17g", workers, par, serial)
			}
		}
	})
}

// FuzzHausdorffSymmetry asserts the social head's structural invariants on
// random geometry: the distance matrix is symmetric with zero diagonal, the
// loss is identical at any worker count, finite and non-negative, invariant
// under permuting a user's friend-POI set, and the generalized mean stays
// within [min, max] of the distances it aggregates.
func FuzzHausdorffSymmetry(f *testing.F) {
	f.Add(uint64(3), uint8(5), uint8(6), uint8(2))
	f.Add(uint64(77), uint8(3), uint8(4), uint8(3))
	f.Add(uint64(500), uint8(8), uint8(9), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, du, dp, dk uint8) {
		I, J, K := int(du%8)+2, int(dp%8)+2, int(dk%4)+1
		rng := fuzzRNG(seed)

		pts := make([]geo.Point, J)
		for j := range pts {
			pts[j] = geo.Point{Lat: 20 + 20*rng.float(), Lon: -120 + 40*rng.float()}
		}
		dist := geo.NewDistanceMatrix(pts)
		for a := 0; a < J; a++ {
			if d := dist.At(a, a); d != 0 {
				t.Fatalf("D(%d,%d) = %g, want 0", a, a, d)
			}
			for b := a + 1; b < J; b++ {
				if dist.At(a, b) != dist.At(b, a) {
					t.Fatalf("distance asymmetric at (%d,%d): %g vs %g", a, b, dist.At(a, b), dist.At(b, a))
				}
			}
		}

		social := graph.New(I)
		for u := 0; u < I; u++ {
			social.AddEdge(u, (u+1)%I)
		}
		x := tensor.NewCOO(I, J, K)
		for u := 0; u < I; u++ {
			for n := 0; n < 2; n++ {
				x.Set(u, rng.intn(J), rng.intn(K), 1)
			}
		}
		side, err := core.BuildSideInfo(social, dist, x)
		if err != nil {
			t.Fatalf("side info: %v", err)
		}
		m := core.NewModel(I, J, K, 3)
		mm := PositiveModel(I, J, K, 3, int64(seed%1024))
		copy(m.U1.Data, mm.U1.Data)
		copy(m.U2.Data, mm.U2.Data)
		copy(m.U3.Data, mm.U3.Data)
		copy(m.H, mm.H)

		users := make([]int, I)
		for u := range users {
			users[u] = u
		}
		head := core.NewHausdorff(side.Dist, side.EntropyW, side.FriendPOIs)
		g := core.NewGrads(m)
		g.Zero()
		serial := head.LossWorkers(m, users, g, 1)
		if serial < 0 || math.IsNaN(serial) || math.IsInf(serial, 0) {
			t.Fatalf("Hausdorff loss %g not a finite non-negative value", serial)
		}
		for workers := 2; workers <= 5; workers++ {
			g2 := core.NewGrads(m)
			g2.Zero()
			par := head.LossWorkers(m, users, g2, workers)
			// Sharding regroups the user-sum reduction, so parallel runs match
			// serial to rounding, not bit-for-bit (they ARE bit-stable for a
			// fixed worker count, which the golden runs rely on).
			if math.Abs(par-serial) > 1e-9*(1+math.Abs(serial)) {
				t.Fatalf("loss at %d workers %.17g differs from serial %.17g", workers, par, serial)
			}
		}

		// Permuting a friend-POI set must not change the loss: the head
		// aggregates each set with order-insensitive min/smooth-min reductions
		// over float sums that never reorder (per-POI terms are accumulated in
		// index order inside the head, so reversing the SET listing only is
		// safe to compare exactly after a full re-listing — use a tolerance).
		perm := make([][]int, len(side.FriendPOIs))
		for u := range perm {
			set := append([]int(nil), side.FriendPOIs[u]...)
			for a, b := 0, len(set)-1; a < b; a, b = a+1, b-1 {
				set[a], set[b] = set[b], set[a]
			}
			perm[u] = set
		}
		headP := core.NewHausdorff(side.Dist, side.EntropyW, perm)
		gp := core.NewGrads(m)
		gp.Zero()
		permuted := headP.LossWorkers(m, users, gp, 1)
		if math.Abs(permuted-serial) > 1e-9*(1+math.Abs(serial)) {
			t.Fatalf("loss changed under friend-set permutation: %.17g vs %.17g", permuted, serial)
		}

		// GeneralizedMean must stay within the range of its inputs.
		vals := make([]float64, rng.intn(5)+1)
		lo, hi := math.Inf(1), math.Inf(-1)
		for idx := range vals {
			vals[idx] = 0.1 + rng.float()
			lo = math.Min(lo, vals[idx])
			hi = math.Max(hi, vals[idx])
		}
		gm := core.GeneralizedMean(vals, -1)
		if gm < lo-1e-12 || gm > hi+1e-12 {
			t.Fatalf("GeneralizedMean(%v) = %g outside [%g, %g]", vals, gm, lo, hi)
		}
	})
}
