package check

import (
	"math/rand"

	"tcss/internal/core"
	"tcss/internal/geo"
	"tcss/internal/graph"
	"tcss/internal/tensor"
)

// TrainFixture is a small deterministic two-community LBSN problem shared by
// the golden runs, the loss-head gradient checks and the fuzz seeds: users
// 0..I/2-1 visit the first half of the POIs at early time units, the rest
// visit the second half late, friendships stay within communities, and POIs
// cluster in two geographic areas.
type TrainFixture struct {
	Train  *tensor.COO
	Test   []tensor.Entry
	Social *graph.Graph
	Dist   *geo.DistanceMatrix
	Side   *core.SideInfo
}

// NewTrainFixture builds the fixture deterministically from seed.
func NewTrainFixture(seed int64) *TrainFixture {
	rng := rand.New(rand.NewSource(seed))
	const I, J, K = 12, 10, 4
	full := tensor.NewCOO(I, J, K)
	for u := 0; u < I; u++ {
		lo, hi, kOff := 0, J/2, 0
		if u >= I/2 {
			lo, hi, kOff = J/2, J, 2
		}
		for n := 0; n < 9; n++ {
			full.Set(u, lo+rng.Intn(hi-lo), kOff+rng.Intn(2), 1)
		}
	}
	train, test := full.Split(0.8, rng)

	social := graph.New(I)
	for u := 0; u < I; u++ {
		for v := u + 1; v < I; v++ {
			if (u < I/2) == (v < I/2) && rng.Float64() < 0.5 {
				social.AddEdge(u, v)
			}
		}
	}
	graph.EnsureMinDegree(social, 1, rng)

	pts := make([]geo.Point, J)
	for j := range pts {
		base := geo.Point{Lat: 30, Lon: -97}
		if j >= J/2 {
			base = geo.Point{Lat: 30.4, Lon: -97.5}
		}
		pts[j] = geo.Jitter(base, 0.01, rng)
	}
	dist := geo.NewDistanceMatrix(pts)

	side, err := core.BuildSideInfo(social, dist, train)
	if err != nil {
		panic("check: fixture side info: " + err.Error())
	}
	return &TrainFixture{Train: train, Test: test, Social: social, Dist: dist, Side: side}
}

// PositiveModel returns a model of the given shape whose parameters are
// small and strictly positive, chosen so every Predict lands well inside
// (0, 1): the Hausdorff head's clamp and no-visit product then stay away
// from their saturation boundaries, where one-sided gradients would make a
// central-difference comparison meaningless.
func PositiveModel(i, j, k, rank int, seed int64) *core.Model {
	rng := rand.New(rand.NewSource(seed))
	m := core.NewModel(i, j, k, rank)
	uniform := func(data []float64, lo, hi float64) {
		for idx := range data {
			data[idx] = lo + rng.Float64()*(hi-lo)
		}
	}
	uniform(m.U1.Data, 0.05, 0.35)
	uniform(m.U2.Data, 0.05, 0.35)
	uniform(m.U3.Data, 0.05, 0.35)
	uniform(m.H, 0.3, 0.6)
	return m
}

// ModelParams exposes a core model's four parameter groups and a matching
// gradient accumulator as checker Params. The Grad slices alias g, so a
// LossFn that accumulates into g satisfies the checker contract.
func ModelParams(m *core.Model, g *core.Grads) []Param {
	return []Param{
		{Name: "U1", Value: m.U1.Data, Grad: g.DU1.Data},
		{Name: "U2", Value: m.U2.Data, Grad: g.DU2.Data},
		{Name: "U3", Value: m.U3.Data, Grad: g.DU3.Data},
		{Name: "h", Value: m.H, Grad: g.DH},
	}
}
