// Package check is the repository's differential correctness harness. It
// provides three reusable verification layers that every gradient-trained
// head and every future performance refactor run under:
//
//   - Gradients: a central-difference gradient checker that perturbs every
//     element of every parameter group of a loss closure and reports the
//     maximum relative error with per-tensor attribution. The TCSS loss heads
//     (WholeDataLoss, NegSamplingLoss, Hausdorff.Loss), every internal/nn
//     layer, and the gradient-trained baselines are wired against it in their
//     packages' gradcheck tests.
//
//   - Golden: a golden-run framework that records loss/metric trajectories of
//     short deterministic training runs into testdata/golden/*.json and
//     compares later runs against them with a relative tolerance, so any
//     refactor that changes training math fails loudly. Re-record with
//     `go test ./internal/check -update`.
//
//   - Fuzzed invariants: native Go fuzz targets (FuzzCOOInvariants,
//     FuzzScoreSlabVsPredict, FuzzHausdorffSymmetry) asserting algebraic
//     invariants on randomized shapes.
//
// The checker deliberately lives in a plain library package so tests in
// internal/core, internal/nn and internal/baselines can share one
// implementation instead of each hand-rolling finite differences.
package check

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
)

// Param is one named flat parameter group with its gradient accumulator,
// mirroring nn.Param and the factor/weight slices of core.Grads. Value and
// Grad must be index-aligned and equally long.
type Param struct {
	Name  string
	Value []float64
	Grad  []float64
}

// LossFn computes the scalar loss at the CURRENT parameter values and leaves
// the full analytic gradient in the Grad slices of the checked Params. The
// implementation must zero (or overwrite) its own gradient accumulators on
// every call; the checker calls it once per perturbed element, ignoring the
// gradients it produces during the numerical passes.
type LossFn func() float64

// Options tunes the checker. The zero value selects the defaults.
type Options struct {
	// Eps is the central-difference step (default 1e-5): large enough that
	// the O(ulp(loss)/eps) cancellation noise stays below the tolerance,
	// small enough that the O(eps²) truncation term does too.
	Eps float64
	// RelTol is the failure threshold for Assert (default 1e-6).
	RelTol float64
	// Scale is the denominator floor of the relative error
	// |a−n| / (Scale + |a| + |n|) (default 1). It keeps noise in
	// near-zero gradients from registering as large relative errors, the
	// same convention as the loss heads' hand-written spot checks.
	Scale float64
	// MaxPerParam caps how many elements of each parameter group are
	// perturbed (0 = all). When a group is larger, elements are chosen by a
	// deterministic splitmix64 stride so repeated runs check the same set.
	MaxPerParam int
	// Seed drives the deterministic subsampling (only used when
	// MaxPerParam truncates a group).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Eps == 0 {
		o.Eps = 1e-5
	}
	if o.RelTol == 0 {
		o.RelTol = 1e-6
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	return o
}

// ElementError is the checker's verdict on one parameter element.
type ElementError struct {
	Param             string
	Index             int
	Analytic, Numeric float64
	RelErr            float64
}

func (e ElementError) String() string {
	return fmt.Sprintf("%s[%d]: analytic %.12g, numeric %.12g, rel-err %.3g",
		e.Param, e.Index, e.Analytic, e.Numeric, e.RelErr)
}

// ParamReport aggregates the errors of one parameter group.
type ParamReport struct {
	Name      string
	Checked   int // elements perturbed (≤ len(Value))
	MaxRelErr float64
	Worst     ElementError
}

// Result is the outcome of one Gradients run, with per-tensor attribution.
type Result struct {
	Reports []ParamReport
	Loss    float64 // loss at the unperturbed parameters
}

// MaxRelErr returns the largest relative error across all parameter groups.
func (r Result) MaxRelErr() float64 {
	var worst float64
	for _, p := range r.Reports {
		if p.MaxRelErr > worst {
			worst = p.MaxRelErr
		}
	}
	return worst
}

// Worst returns the single worst element across all groups.
func (r Result) Worst() ElementError {
	var w ElementError
	for _, p := range r.Reports {
		if p.MaxRelErr >= w.RelErr {
			w = p.Worst
		}
	}
	return w
}

// String renders the per-tensor attribution table, worst group first.
func (r Result) String() string {
	reports := append([]ParamReport(nil), r.Reports...)
	sort.SliceStable(reports, func(a, b int) bool { return reports[a].MaxRelErr > reports[b].MaxRelErr })
	var b strings.Builder
	fmt.Fprintf(&b, "gradient check: loss %.12g, max rel-err %.3g\n", r.Loss, r.MaxRelErr())
	for _, p := range reports {
		fmt.Fprintf(&b, "  %-20s checked %4d  max rel-err %.3g  (worst %s)\n",
			p.Name, p.Checked, p.MaxRelErr, p.Worst)
	}
	return b.String()
}

// splitmix64 advances the subsampling stream; the same finalizer eval's
// per-entry RNG uses.
func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// sampleIndices returns the element indices of one group to perturb: all of
// them when max is 0 or covers the group, otherwise max distinct indices
// drawn deterministically from (seed, group name).
func sampleIndices(n, max int, seed int64, name string) []int {
	if max <= 0 || max >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	state := uint64(seed)
	for _, c := range name {
		state = splitmix64(state + uint64(c))
	}
	picked := make(map[int]struct{}, max)
	idx := make([]int, 0, max)
	for len(idx) < max {
		state = splitmix64(state + 0x9E3779B97F4A7C15)
		i := int(state % uint64(n))
		if _, ok := picked[i]; ok {
			continue
		}
		picked[i] = struct{}{}
		idx = append(idx, i)
	}
	sort.Ints(idx)
	return idx
}

// Gradients verifies the analytic gradient of f against central differences.
// It calls f once to capture the analytic gradient, then for every checked
// element v of every parameter group evaluates f at v±Eps (restoring the
// exact original bits afterwards) and compares (f(v+ε)−f(v−ε))/2ε against the
// captured analytic value. The relative error of one element is
//
//	|analytic − numeric| / (Scale + |analytic| + |numeric|)
//
// so groups whose true gradient is zero are held to an absolute Scale·RelTol
// bound instead of an ill-posed ratio.
func Gradients(f LossFn, params []Param, opts Options) Result {
	opts = opts.withDefaults()
	for _, p := range params {
		if len(p.Value) != len(p.Grad) {
			panic(fmt.Sprintf("check: param %q value/grad length mismatch %d vs %d", p.Name, len(p.Value), len(p.Grad)))
		}
	}
	res := Result{Loss: f()}
	analytic := make([][]float64, len(params))
	for pi, p := range params {
		analytic[pi] = append([]float64(nil), p.Grad...)
	}
	for pi, p := range params {
		report := ParamReport{Name: p.Name, Worst: ElementError{Param: p.Name}}
		for _, i := range sampleIndices(len(p.Value), opts.MaxPerParam, opts.Seed, p.Name) {
			orig := p.Value[i]
			p.Value[i] = orig + opts.Eps
			fp := f()
			p.Value[i] = orig - opts.Eps
			fm := f()
			p.Value[i] = orig
			numeric := (fp - fm) / (2 * opts.Eps)
			a := analytic[pi][i]
			relErr := math.Abs(a-numeric) / (opts.Scale + math.Abs(a) + math.Abs(numeric))
			if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(numeric) || math.IsInf(numeric, 0) {
				relErr = math.Inf(1)
			}
			report.Checked++
			if relErr >= report.MaxRelErr {
				report.MaxRelErr = relErr
				report.Worst = ElementError{Param: p.Name, Index: i, Analytic: a, Numeric: numeric, RelErr: relErr}
			}
		}
		res.Reports = append(res.Reports, report)
	}
	// Leave the Grad slices holding the analytic gradient of the unperturbed
	// point, not whatever the last finite-difference call produced.
	for pi, p := range params {
		copy(p.Grad, analytic[pi])
	}
	return res
}

// Assert runs Gradients and fails the test with the full attribution table
// when the maximum relative error exceeds Options.RelTol. It returns the
// result for further inspection.
func Assert(t testing.TB, f LossFn, params []Param, opts Options) Result {
	t.Helper()
	opts = opts.withDefaults()
	res := Gradients(f, params, opts)
	if res.MaxRelErr() > opts.RelTol {
		t.Errorf("gradient check failed (rel-tol %.3g):\n%s", opts.RelTol, res)
	}
	return res
}
