package check

import (
	"math/rand"

	"tcss/internal/nn"
)

// Parameterized is the slice of the nn.Layer contract LayerParams needs:
// the recurrent cells (RNNCell, LSTMCell, STLSTMCell) expose Params without
// implementing the stateless Forward/Backward of the full interface.
type Parameterized interface {
	Params() []nn.Param
}

// LayerParams converts a layer's parameter groups to the checker's Param
// type. The slices are shared, not copied, so perturbations made by
// Gradients act on the live layer.
func LayerParams(layers ...Parameterized) []Param {
	var out []Param
	for _, l := range layers {
		for _, p := range l.Params() {
			out = append(out, Param{Name: p.Name, Value: p.Value, Grad: p.Grad})
		}
	}
	return out
}

// LayerLoss adapts any nn.Layer to a LossFn through the linear probe
// loss(x) = Σ_o w[o]·Forward(x)[o], whose upstream gradient is exactly w.
// Each call zeroes the layer's accumulators, runs Forward and Backward, and
// returns the probe loss, satisfying the LossFn contract. A linear probe
// with a generic (non-degenerate) w exercises every output coordinate, so a
// wrong parameter gradient anywhere in the layer shows up in the probe.
func LayerLoss(l nn.Layer, x, w []float64) LossFn {
	return func() float64 {
		l.ZeroGrad()
		y := l.Forward(x)
		if len(y) != len(w) {
			panic("check: LayerLoss probe weight length does not match layer output")
		}
		var loss float64
		for o, v := range y {
			loss += w[o] * v
		}
		l.Backward(x, w)
		return loss
	}
}

// ProbeWeights returns a deterministic generic probe vector with entries in
// [0.5, 1.5), suitable as the w of LayerLoss: no zeros (every output
// contributes) and no repeated structure that could mask transposed-index
// bugs.
func ProbeWeights(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.5 + rng.Float64()
	}
	return w
}

// RandomVector returns a deterministic vector with entries uniform in
// [-scale, scale), the generic input of the layer gradient checks.
func RandomVector(n int, scale float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = (2*rng.Float64() - 1) * scale
	}
	return v
}
