package check

import (
	"math"
	"strings"
	"testing"
)

// quadratic is a tiny analytic test function L(x, y) = Σ aᵢxᵢ² + Σ xᵢyᵢ with
// exact hand gradients dL/dxᵢ = 2aᵢxᵢ + yᵢ, dL/dyᵢ = xᵢ.
type quadratic struct {
	a, x, y  []float64
	gx, gy   []float64
	sabotage func(q *quadratic) // optional gradient corruption
}

func newQuadratic(n int) *quadratic {
	q := &quadratic{
		a: make([]float64, n), x: make([]float64, n), y: make([]float64, n),
		gx: make([]float64, n), gy: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		q.a[i] = 0.5 + float64(i)
		q.x[i] = 0.3 - 0.1*float64(i)
		q.y[i] = -0.2 + 0.15*float64(i)
	}
	return q
}

func (q *quadratic) loss() float64 {
	var l float64
	for i := range q.x {
		l += q.a[i]*q.x[i]*q.x[i] + q.x[i]*q.y[i]
		q.gx[i] = 2*q.a[i]*q.x[i] + q.y[i]
		q.gy[i] = q.x[i]
	}
	if q.sabotage != nil {
		q.sabotage(q)
	}
	return l
}

func (q *quadratic) params() []Param {
	return []Param{
		{Name: "x", Value: q.x, Grad: q.gx},
		{Name: "y", Value: q.y, Grad: q.gy},
	}
}

func TestGradientsPassesOnCorrectGradient(t *testing.T) {
	q := newQuadratic(5)
	res := Assert(t, q.loss, q.params(), Options{})
	if res.MaxRelErr() > 1e-9 {
		t.Fatalf("exact quadratic should check to ~machine precision, got %g", res.MaxRelErr())
	}
	for _, rep := range res.Reports {
		if rep.Checked != 5 {
			t.Fatalf("group %s checked %d of 5 elements", rep.Name, rep.Checked)
		}
	}
}

// The mutation regression the harness exists for: a deliberately corrupted
// gradient must be reported, attributed to the right tensor, and pushed well
// past the failure threshold.
func TestGradientsCatchesBrokenGradient(t *testing.T) {
	cases := []struct {
		name     string
		sabotage func(q *quadratic)
	}{
		{"scaled", func(q *quadratic) { q.gx[2] *= 1.05 }},
		{"sign-flipped", func(q *quadratic) { q.gy[1] = -q.gy[1] }},
		{"dropped-term", func(q *quadratic) { q.gx[0] = 2 * q.a[0] * q.x[0] }}, // forgets the xy coupling
		{"nan", func(q *quadratic) { q.gy[3] = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := newQuadratic(5)
			q.sabotage = tc.sabotage
			res := Gradients(q.loss, q.params(), Options{})
			if res.MaxRelErr() <= 1e-6 {
				t.Fatalf("corrupted gradient slipped through: max rel-err %g\n%s", res.MaxRelErr(), res)
			}
			worst := res.Worst()
			wantParam := "x"
			if strings.HasPrefix(tc.name, "sign") || tc.name == "nan" {
				wantParam = "y"
			}
			if worst.Param != wantParam {
				t.Fatalf("worst error attributed to %s, want %s\n%s", worst.Param, wantParam, res)
			}
		})
	}
}

func TestGradientsRestoresValuesAndGrads(t *testing.T) {
	q := newQuadratic(4)
	xBefore := append([]float64(nil), q.x...)
	Gradients(q.loss, q.params(), Options{})
	for i := range xBefore {
		if q.x[i] != xBefore[i] {
			t.Fatalf("x[%d] not restored: %g vs %g", i, q.x[i], xBefore[i])
		}
	}
	// Grads must hold the analytic gradient at the unperturbed point.
	for i := range q.x {
		want := 2*q.a[i]*q.x[i] + q.y[i]
		if math.Abs(q.gx[i]-want) > 1e-15 {
			t.Fatalf("gx[%d] left at %g, want unperturbed analytic %g", i, q.gx[i], want)
		}
	}
}

func TestGradientsSubsamplingDeterministic(t *testing.T) {
	q := newQuadratic(20)
	opts := Options{MaxPerParam: 7, Seed: 3}
	r1 := Gradients(q.loss, q.params(), opts)
	r2 := Gradients(q.loss, q.params(), opts)
	for pi := range r1.Reports {
		if r1.Reports[pi].Checked != 7 {
			t.Fatalf("group %s checked %d, want 7", r1.Reports[pi].Name, r1.Reports[pi].Checked)
		}
		if r1.Reports[pi].Worst.Index != r2.Reports[pi].Worst.Index {
			t.Fatalf("subsampling not deterministic for %s", r1.Reports[pi].Name)
		}
	}
}

func TestGradientsMismatchedLengthsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on value/grad length mismatch")
		}
	}()
	Gradients(func() float64 { return 0 }, []Param{{Name: "bad", Value: make([]float64, 3), Grad: make([]float64, 2)}}, Options{})
}

func TestCompareSeries(t *testing.T) {
	base := Series{"loss": {1, 0.5, 0.25}, "hit": {0.4}}
	cases := []struct {
		name    string
		got     Series
		wantErr string
	}{
		{"identical", Series{"loss": {1, 0.5, 0.25}, "hit": {0.4}}, ""},
		{"within-tol", Series{"loss": {1 + 1e-9, 0.5, 0.25}, "hit": {0.4}}, ""},
		{"drifted", Series{"loss": {1, 0.51, 0.25}, "hit": {0.4}}, `series "loss"[1]`},
		{"missing-series", Series{"loss": {1, 0.5, 0.25}}, `series "hit" recorded`},
		{"extra-series", Series{"loss": {1, 0.5, 0.25}, "hit": {0.4}, "new": {1}}, `series "new" produced`},
		{"short-series", Series{"loss": {1, 0.5}, "hit": {0.4}}, `series "loss" length 2`},
		{"nan", Series{"loss": {1, math.NaN(), 0.25}, "hit": {0.4}}, "non-finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CompareSeries(base, tc.got, 1e-6)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected mismatch: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/roundtrip.json"
	want := Series{"loss": {3.25, 1.5, 0.75}, "mrr": {0.3333333333333333}}
	if err := writeGolden(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGolden(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := CompareSeries(want, got, 0); err != nil {
		t.Fatalf("lossless JSON round-trip expected: %v", err)
	}
}
