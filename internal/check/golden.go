package check

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// update rewrites golden files instead of comparing against them:
//
//	go test ./internal/check -update
//
// The flag is registered by this package, so it is available in every test
// binary that links the harness.
var update = flag.Bool("update", false, "rewrite golden files instead of comparing against them")

// Updating reports whether the current test run was invoked with -update.
// Tests that deliberately diverge from a golden (mutation tests) skip
// themselves while recording.
func Updating() bool { return *update }

// Series is a named set of recorded trajectories: loss per epoch, final
// metrics, probe scores — anything float-valued a training run produces
// deterministically.
type Series map[string][]float64

// Add appends values to the named trajectory.
func (s Series) Add(name string, values ...float64) {
	s[name] = append(s[name], values...)
}

// DefaultGoldenRelTol is the comparison tolerance of Golden: loose enough to
// absorb instruction-level regrouping (FMA fusion on other architectures,
// compiler version drift), tight enough that any genuine change to training
// math — a reweighted term, a dropped gradient, a different update order —
// fails loudly.
const DefaultGoldenRelTol = 1e-6

// CompareSeries reports the first mismatch between a recorded and an observed
// Series: a trajectory missing on either side, differing lengths, a
// non-finite value, or any element pair with
// |want−got| > relTol·(1 + |want| + |got|).
func CompareSeries(want, got Series, relTol float64) error {
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w, g := want[name], got[name]
		if g == nil {
			return fmt.Errorf("series %q recorded in golden but not produced by this run", name)
		}
		if len(w) != len(g) {
			return fmt.Errorf("series %q length %d, golden has %d", name, len(g), len(w))
		}
		for i := range w {
			if math.IsNaN(g[i]) || math.IsInf(g[i], 0) {
				return fmt.Errorf("series %q[%d] is non-finite: %g", name, i, g[i])
			}
			if diff := math.Abs(w[i] - g[i]); diff > relTol*(1+math.Abs(w[i])+math.Abs(g[i])) {
				return fmt.Errorf("series %q[%d]: got %.12g, golden %.12g (diff %.3g, rel-tol %.3g)",
					name, i, g[i], w[i], diff, relTol)
			}
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			return fmt.Errorf("series %q produced by this run but absent from golden (re-record with -update)", name)
		}
	}
	return nil
}

// goldenPath resolves testdata/golden/<name>.json relative to the test's
// working directory (the calling package's directory, per go test).
func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// Golden compares got against the recorded testdata/golden/<name>.json at
// DefaultGoldenRelTol, or rewrites the file when the test runs with -update.
func Golden(t testing.TB, name string, got Series) {
	t.Helper()
	GoldenTol(t, name, got, DefaultGoldenRelTol)
}

// GoldenTol is Golden with an explicit comparison tolerance.
func GoldenTol(t testing.TB, name string, got Series, relTol float64) {
	t.Helper()
	path := goldenPath(name)
	if *update {
		if err := writeGolden(path, got); err != nil {
			t.Fatalf("golden %q: %v", name, err)
		}
		t.Logf("golden %q: recorded %d series to %s", name, len(got), path)
		return
	}
	want, err := ReadGolden(path)
	if err != nil {
		t.Fatalf("golden %q: %v (seed it with: go test ./internal/check -run %s -update)", name, err, t.Name())
	}
	if err := CompareSeries(want, got, relTol); err != nil {
		t.Errorf("golden %q: %v", name, err)
	}
}

// ReadGolden loads a recorded Series from disk.
func ReadGolden(path string) (Series, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Series
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return s, nil
}

func writeGolden(path string, s Series) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
