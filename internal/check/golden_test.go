// Golden-run regression tests: short deterministic training runs of TCSS
// (every ablation variant) and every registered baseline, with their loss
// trajectories and final ranking metrics pinned in testdata/golden/*.json.
// Any change to training math — a refactored kernel, a reordered reduction, a
// sign slip in a gradient — shifts a trajectory by far more than the 1e-6
// comparison tolerance and fails here with the exact series and epoch named.
// After an INTENDED change, re-record with:
//
//	go test ./internal/check -update
//
// This file imports internal/baselines, which the check library itself must
// not (baselines' own tests import check); test-only imports cannot cycle.
package check

import (
	"testing"

	"tcss/internal/baselines"
	"tcss/internal/core"
	"tcss/internal/eval"
	"tcss/internal/opt"
)

// goldenEvalConfig keeps the ranking protocol small enough for the fixture
// (10 POIs) but generic: 7 sampled negatives, top-3 cutoff.
func goldenEvalConfig() eval.Config {
	return eval.Config{Negatives: 7, TopK: 3, Seed: 9}
}

// TestGoldenTCSSVariants pins a 6-epoch single-worker trajectory of every
// Hausdorff ablation variant plus the negative-sampling L2 switch.
func TestGoldenTCSSVariants(t *testing.T) {
	fx := NewTrainFixture(31)
	cases := []struct {
		name string
		mut  func(cfg *core.Config)
	}{
		{"social", func(cfg *core.Config) { cfg.Variant = core.SocialHausdorff }},
		{"self", func(cfg *core.Config) { cfg.Variant = core.SelfHausdorff }},
		{"no-l1", func(cfg *core.Config) { cfg.Variant = core.NoHausdorff; cfg.Lambda = 0 }},
		{"zero-out", func(cfg *core.Config) { cfg.Variant = core.ZeroOut; cfg.Lambda = 0 }},
		{"negsampling", func(cfg *core.Config) { cfg.NegSampling = true; cfg.NegPerPos = 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Series{}
			cfg := core.DefaultConfig()
			cfg.Rank = 4
			cfg.Epochs = 6
			cfg.Workers = 1 // serial reduction order → bit-stable trajectories
			cfg.Seed = 13
			cfg.EpochCallback = func(epoch int, m *core.Model, loss float64) {
				got.Add("loss", loss)
			}
			tc.mut(&cfg)
			m, err := core.Train(fx.Train, fx.Side, cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := eval.Rank(eval.ScorerFunc(m.Score), fx.Test, fx.Train.DimJ, goldenEvalConfig())
			got.Add("hit", res.HitAtK)
			got.Add("mrr", res.MRR)
			// RMSE on the raw prediction: the zero-out Score is −Inf on
			// filtered POIs by design, which is a ranking device, not a
			// regression value.
			got.Add("rmse", eval.RMSE(eval.ScorerFunc(m.Predict), fx.Test))
			Golden(t, "tcss-"+tc.name, got)
		})
	}
}

// TestGoldenBaselines pins the final ranking metrics of every Table I
// baseline after a short deterministic fit on the shared fixture.
func TestGoldenBaselines(t *testing.T) {
	fx := NewTrainFixture(31)
	for _, rec := range baselines.Registry() {
		rec := rec
		t.Run(rec.Name(), func(t *testing.T) {
			ctx := &baselines.Context{
				Train:  fx.Train,
				Social: fx.Social,
				Dist:   fx.Dist,
				Rank:   4,
				Epochs: 3,
				Seed:   13,
			}
			if err := rec.Fit(ctx); err != nil {
				t.Fatal(err)
			}
			res := eval.Rank(eval.ScorerFunc(rec.Score), fx.Test, fx.Train.DimJ, goldenEvalConfig())
			got := Series{}
			got.Add("hit", res.HitAtK)
			got.Add("mrr", res.MRR)
			got.Add("rmse", eval.RMSE(eval.ScorerFunc(rec.Score), fx.Test))
			Golden(t, "baseline-"+rec.Name(), got)
		})
	}
}

// l2AdamTrajectory runs a minimal Adam descent of the whole-data loss and
// returns the per-epoch losses. The sabotage hook corrupts the gradient
// before each step, modeling an undetected backward-pass bug.
func l2AdamTrajectory(sabotage func(*core.Grads)) Series {
	fx := NewTrainFixture(31)
	m := PositiveModel(fx.Train.DimI, fx.Train.DimJ, fx.Train.DimK, 4, 11)
	g := core.NewGrads(m)
	optim := opt.NewAdam(0.05, 0)
	s := Series{}
	for epoch := 0; epoch < 6; epoch++ {
		g.Zero()
		loss := m.WholeDataLossWorkers(fx.Train, 0.99, 0.01, g, 1)
		if sabotage != nil {
			sabotage(g)
		}
		optim.Step("U1", m.U1.Data, g.DU1.Data)
		optim.Step("U2", m.U2.Data, g.DU2.Data)
		optim.Step("U3", m.U3.Data, g.DU3.Data)
		optim.Step("h", m.H, g.DH)
		s.Add("loss", loss)
	}
	return s
}

// TestGoldenL2Adam records the clean trajectory the mutation test below
// diverges from.
func TestGoldenL2Adam(t *testing.T) {
	Golden(t, "l2-adam", l2AdamTrajectory(nil))
}

// TestGoldenCatchesSabotagedGradient is the golden half of the mutation
// acceptance criterion (the checker half lives in internal/core's
// TestGradcheckCatchesSabotagedHeadGradient): a corrupted dH must knock the
// training trajectory visibly off the recorded one. The corruption here is a
// sign flip rather than the checker test's uniform 2% rescale because Adam's
// per-element m/√v normalization absorbs any uniform gradient scaling almost
// exactly — a class of bug only the gradient checker can see, which is why
// the harness needs both layers.
func TestGoldenCatchesSabotagedGradient(t *testing.T) {
	if Updating() {
		t.Skip("golden files being rewritten")
	}
	want, err := ReadGolden(goldenPath("l2-adam"))
	if err != nil {
		t.Fatalf("run with -update first: %v", err)
	}
	got := l2AdamTrajectory(func(g *core.Grads) {
		g.DH[0] = -g.DH[0]
	})
	if err := CompareSeries(want, got, DefaultGoldenRelTol); err == nil {
		t.Fatal("sabotaged gradient reproduced the golden trajectory; mutation not caught")
	}
}
