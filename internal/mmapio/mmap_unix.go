//go:build unix

package mmapio

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and privately. The mapping is
// page-aligned by construction, which the binary snapshot loader relies on
// for its slab alignment guarantees.
func mmapFile(f *os.File, size int) (*Mapping, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return &Mapping{Data: data, Mapped: true}, nil
}

func munmap(data []byte) error { return syscall.Munmap(data) }
