//go:build !unix

package mmapio

import (
	"errors"
	"os"
)

// mmapFile on platforms without a unix mmap reports failure; Open falls back
// to a heap read, so callers see the same Mapping interface either way.
func mmapFile(f *os.File, size int) (*Mapping, error) {
	return nil, errors.New("mmap unsupported on this platform")
}

func munmap(data []byte) error { return nil }
