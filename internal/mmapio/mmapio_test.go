package mmapio

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenReadParity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	want := bytes.Repeat([]byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}, 10_000)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}

	mm, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mm.Data, want) || !bytes.Equal(rd.Data, want) {
		t.Fatal("mapped or read bytes differ from file contents")
	}
	if rd.Mapped {
		t.Fatal("Read must never report a mapping")
	}
	if err := mm.Close(); err != nil {
		t.Fatal(err)
	}
	if mm.Data != nil {
		t.Fatal("Close must clear Data")
	}
	// Double close and nil close are no-ops.
	if err := mm.Close(); err != nil {
		t.Fatal(err)
	}
	var nilMap *Mapping
	if err := nilMap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenEmptyAndMissing(t *testing.T) {
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(empty)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Data) != 0 || m.Mapped {
		t.Fatalf("empty file: %d bytes, mapped %v", len(m.Data), m.Mapped)
	}
	if _, err := Open(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file must error")
	}
}
