// Package mmapio memory-maps files for zero-copy reading, with a portable
// heap-read fallback for platforms without mmap support. It exists so the
// binary model snapshot format (core.FormatVersion 5) can be served straight
// out of the page cache: loading a model becomes O(1) pointer arithmetic over
// the mapping instead of an O(model) parse-and-copy, and cold factor rows are
// paged in on first touch.
//
// Mappings are strictly read-only (PROT_READ); writing through a slice backed
// by a Mapping faults. Callers that need to mutate data — online updates,
// re-quantization — must copy first (core.Model.Clone does).
package mmapio

import (
	"fmt"
	"os"
)

// Mapping is a read-only byte view of a file. Data either aliases a memory
// mapping (Mapped true) or holds a plain heap copy (Mapped false, the
// fallback used on platforms without mmap and by parity tests). Close
// releases the mapping; the Data of a closed Mapping must not be touched.
type Mapping struct {
	Data   []byte
	Mapped bool
}

// Open maps path read-only, falling back to a heap read when the platform
// has no mmap support. An empty file yields an empty Data with no mapping.
func Open(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mmapio: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("mmapio: stat %s: %w", path, err)
	}
	if st.Size() == 0 {
		return &Mapping{}, nil
	}
	m, err := mmapFile(f, int(st.Size()))
	if err == nil {
		return m, nil
	}
	// Fall back to a plain read: same bytes, no zero-copy.
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		return nil, fmt.Errorf("mmapio: mmap failed (%v) and read failed: %w", err, rerr)
	}
	return &Mapping{Data: data}, nil
}

// Read loads path onto the heap through the same Mapping interface — the
// portable fallback path, exported so tests can assert mmap/read parity and
// so callers can force a copy (e.g. when the file will be replaced while the
// model must stay live).
func Read(path string) (*Mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("mmapio: %w", err)
	}
	return &Mapping{Data: data}, nil
}

// Close unmaps the file. It is a no-op for heap-backed and already-closed
// mappings, and is safe to call on a nil Mapping.
func (m *Mapping) Close() error {
	if m == nil || !m.Mapped || m.Data == nil {
		if m != nil {
			m.Data = nil
		}
		return nil
	}
	data := m.Data
	m.Data, m.Mapped = nil, false
	if err := munmap(data); err != nil {
		return fmt.Errorf("mmapio: munmap: %w", err)
	}
	return nil
}
