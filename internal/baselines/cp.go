package baselines

import (
	"fmt"
	"math/rand"

	"tcss/internal/mat"
	"tcss/internal/tensor"
)

// CP fits a rank-r CP (CANDECOMP/PARAFAC) decomposition of the full binary
// tensor (unobserved cells treated as zeros) by alternating least squares.
// Each sweep solves the ridge-regularized normal equations
//
//	U1 ← MTTKRP₁(X) · (U2ᵀU2 ⊙ U3ᵀU3 + λI)⁻¹
//
// and cyclically for the other modes; the MTTKRP is computed directly from
// the sparse entries.
type CP struct {
	Ridge  float64
	Sweeps int

	u1, u2, u3 *mat.Matrix
}

// NewCP returns a CP baseline with a small ridge and the default sweep count.
func NewCP() *CP { return &CP{Ridge: 1e-3, Sweeps: 20} }

// Name implements Recommender.
func (c *CP) Name() string { return "CP" }

// Fit implements Recommender.
func (c *CP) Fit(ctx *Context) error {
	if ctx.Rank <= 0 {
		return fmt.Errorf("baselines: CP needs positive rank, got %d", ctx.Rank)
	}
	rng := rand.New(rand.NewSource(ctx.Seed))
	x := ctx.Train
	r := ctx.Rank
	c.u1 = mat.Random(x.DimI, r, 0.1, rng)
	c.u2 = mat.Random(x.DimJ, r, 0.1, rng)
	c.u3 = mat.Random(x.DimK, r, 0.1, rng)

	for sweep := 0; sweep < c.Sweeps; sweep++ {
		if err := c.updateMode(x, tensor.ModeUser); err != nil {
			return err
		}
		if err := c.updateMode(x, tensor.ModePOI); err != nil {
			return err
		}
		if err := c.updateMode(x, tensor.ModeTime); err != nil {
			return err
		}
	}
	return nil
}

func (c *CP) updateMode(x *tensor.COO, mode tensor.Mode) error {
	var target *mat.Matrix
	var a, b *mat.Matrix
	switch mode {
	case tensor.ModeUser:
		a, b, target = c.u2, c.u3, c.u1
	case tensor.ModePOI:
		a, b, target = c.u1, c.u3, c.u2
	case tensor.ModeTime:
		a, b, target = c.u1, c.u2, c.u3
	}
	m := x.MTTKRP(mode, c.u1, c.u2, c.u3)
	v := hadamardGram(a, b).AddRidge(c.Ridge)
	sol, err := mat.SolveSPDMatrix(v, m.T())
	if err != nil {
		return fmt.Errorf("baselines: CP mode-%d solve: %w", mode, err)
	}
	// sol is r×n; write back transposed.
	st := sol.T()
	copy(target.Data, st.Data)
	return nil
}

// hadamardGram returns (AᵀA) ⊙ (BᵀB).
func hadamardGram(a, b *mat.Matrix) *mat.Matrix {
	ga, gb := a.Gram(), b.Gram()
	out := mat.New(ga.Rows, ga.Cols)
	for i := range out.Data {
		out.Data[i] = ga.Data[i] * gb.Data[i]
	}
	return out
}

// Score implements Recommender with the CP prediction of Eq (1).
func (c *CP) Score(i, j, k int) float64 {
	return tensor.CPValue(c.u1, c.u2, c.u3, nil, i, j, k)
}

// FitError returns the full-tensor squared reconstruction error
// ‖X − X̂‖²_F, computed sparsely through the Gram identity
// ‖X̂‖² = Σ_{ab} (U1ᵀU1 ⊙ U2ᵀU2 ⊙ U3ᵀU3)_{ab}. Tests use it to check that
// ALS sweeps never increase the objective.
func (c *CP) FitError(x *tensor.COO) float64 {
	g1, g2, g3 := c.u1.Gram(), c.u2.Gram(), c.u3.Gram()
	var normSq float64
	for i := range g1.Data {
		normSq += g1.Data[i] * g2.Data[i] * g3.Data[i]
	}
	var cross float64
	for _, e := range x.Entries() {
		cross += e.Val * c.Score(e.I, e.J, e.K)
	}
	return x.FrobNormSq() - 2*cross + normSq
}
