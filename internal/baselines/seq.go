package baselines

import (
	"fmt"
	"math/rand"
	"sync"

	"tcss/internal/geo"
	"tcss/internal/nn"
	"tcss/internal/opt"
)

// The sequential baselines (STRNN, STGN, STAN) model each user's
// time-ordered check-in trajectory. They are trained on a next-POI
// objective: at every trajectory position the model scores the true next POI
// against a sampled negative with binary cross-entropy. At evaluation time
// the user's summary state (final hidden state, or attention context) plus a
// time embedding scores arbitrary (user, POI, time) triples under the same
// protocol as the tensor models.
//
// Recurrent gradients are truncated to one step (the standard cheap BPTT-1
// scheme): the previous hidden state is treated as a constant at each step.

// seqFeatures returns the spatio-temporal input features between two
// consecutive visits: the normalized time gap and normalized Haversine
// distance, the Δt/Δd signals STRNN and STGN gate on.
func seqFeatures(prev, cur Visit, dist *geo.DistanceMatrix, timeUnits int) (dt, dd float64) {
	dt = float64(cur.TimeIndex-prev.TimeIndex) / float64(timeUnits)
	if dist.DMax > 0 {
		dd = dist.At(prev.POI, cur.POI) / dist.DMax
	}
	return dt, dd
}

// STRNN (Liu et al., AAAI 2016) extends a vanilla RNN with spatial and
// temporal transition context: the recurrent input is the previous POI's
// embedding concatenated with the time-gap and distance features.
type STRNN struct {
	LR float64

	embPOI  *nn.Embedding
	embTime *nn.Embedding
	cell    *nn.RNNCell
	rank    int
	finalH  [][]float64
	dist    *geo.DistanceMatrix
	fit     bool
}

// NewSTRNN returns the STRNN baseline.
func NewSTRNN() *STRNN { return &STRNN{LR: 0.01} }

// Name implements Recommender.
func (s *STRNN) Name() string { return "STRNN" }

// Fit implements Recommender.
func (s *STRNN) Fit(ctx *Context) error {
	if err := seqCheck(ctx); err != nil {
		return err
	}
	r := ctx.Rank
	s.rank = r
	rng := rand.New(rand.NewSource(ctx.Seed))
	s.embPOI = nn.NewEmbedding("strnn.poi", ctx.Train.DimJ, r, rng)
	s.embTime = nn.NewEmbedding("strnn.time", ctx.Train.DimK, r, rng)
	s.cell = nn.NewRNNCell("strnn.cell", r+2, r, rng)
	optim := opt.NewAdam(s.LR, 0)
	seqs := ctx.Sequences()
	epochs := ctx.Epochs
	if epochs <= 0 {
		epochs = 10
	}

	for epoch := 0; epoch < epochs; epoch++ {
		for _, seq := range seqs {
			if len(seq) < 2 {
				continue
			}
			h := make([]float64, r)
			for t := 1; t < len(seq); t++ {
				prev, cur := seq[t-1], seq[t]
				dt, dd := seqFeatures(prev, cur, ctx.Dist, ctx.Train.DimK)
				in := make([]float64, r+2)
				copy(in, s.embPOI.Lookup(prev.POI))
				in[r], in[r+1] = dt, dd
				newH, cache := s.cell.Forward(in, h)

				// Score the true next POI against one sampled negative.
				neg := rng.Intn(ctx.Train.DimJ)
				for neg == cur.POI {
					neg = rng.Intn(ctx.Train.DimJ)
				}
				dH := make([]float64, r)
				for _, cand := range []struct {
					j      int
					target float64
				}{{cur.POI, 1}, {neg, 0}} {
					tk := s.embTime.Lookup(cur.TimeIndex)
					ej := s.embPOI.Lookup(cand.j)
					var logit float64
					for d := 0; d < r; d++ {
						logit += (newH[d] + tk[d]) * ej[d]
					}
					dLogit := nn.SigmoidF(logit) - cand.target
					dEj := make([]float64, r)
					dTk := make([]float64, r)
					for d := 0; d < r; d++ {
						dEj[d] = dLogit * (newH[d] + tk[d])
						dTk[d] = dLogit * ej[d]
						dH[d] += dLogit * ej[d]
					}
					s.embPOI.Accumulate(cand.j, dEj)
					s.embTime.Accumulate(cur.TimeIndex, dTk)
				}
				dIn, _ := s.cell.Backward(cache, dH) // BPTT-1: drop dHPrev
				s.embPOI.Accumulate(prev.POI, dIn[:r])
				h = newH
			}
			// One optimizer step per user trajectory (gradients accumulated
			// across its steps).
			stepSeq(optim, s.cell.Params(), s.embPOI, s.embTime)
			s.cell.ZeroGrad()
		}
	}
	s.finalH = s.finalStates(ctx)
	s.dist = ctx.Dist
	s.fit = true
	return nil
}

// finalStates rolls every user's trajectory through the trained cell.
func (s *STRNN) finalStates(ctx *Context) [][]float64 {
	r := s.rank
	out := make([][]float64, ctx.Train.DimI)
	for i, seq := range ctx.Sequences() {
		h := make([]float64, r)
		for t := 1; t < len(seq); t++ {
			dt, dd := seqFeatures(seq[t-1], seq[t], ctx.Dist, ctx.Train.DimK)
			in := make([]float64, r+2)
			copy(in, s.embPOI.Lookup(seq[t-1].POI))
			in[r], in[r+1] = dt, dd
			h, _ = s.cell.Forward(in, h)
		}
		out[i] = h
	}
	return out
}

// Score implements Recommender. Before Fit it returns 0; serving paths reach
// the model through SeqServer, whose methods surface ErrNotFitted instead.
func (s *STRNN) Score(i, j, k int) float64 {
	if !s.fit {
		return 0
	}
	h := s.finalH[i]
	tk := s.embTime.Lookup(k)
	ej := s.embPOI.Lookup(j)
	var logit float64
	for d := 0; d < s.rank; d++ {
		logit += (h[d] + tk[d]) * ej[d]
	}
	return nn.SigmoidF(logit)
}

// STGN (Zhao et al., AAAI 2019) replaces the vanilla recurrence with the
// spatio-temporal gated LSTM (nn.STLSTMCell): dedicated time and distance
// gates driven by the interval Δt and travel distance Δd modulate how much
// of each check-in enters the memory.
type STGN struct {
	LR float64

	embPOI  *nn.Embedding
	embTime *nn.Embedding
	cell    *nn.STLSTMCell
	rank    int
	finalH  [][]float64
	dist    *geo.DistanceMatrix
	fit     bool
}

// NewSTGN returns the STGN baseline.
func NewSTGN() *STGN { return &STGN{LR: 0.01} }

// Name implements Recommender.
func (s *STGN) Name() string { return "STGN" }

// Fit implements Recommender.
func (s *STGN) Fit(ctx *Context) error {
	if err := seqCheck(ctx); err != nil {
		return err
	}
	r := ctx.Rank
	s.rank = r
	rng := rand.New(rand.NewSource(ctx.Seed))
	s.embPOI = nn.NewEmbedding("stgn.poi", ctx.Train.DimJ, r, rng)
	s.embTime = nn.NewEmbedding("stgn.time", ctx.Train.DimK, r, rng)
	s.cell = nn.NewSTLSTMCell("stgn.cell", r, r, rng)
	optim := opt.NewAdam(s.LR, 0)
	seqs := ctx.Sequences()
	epochs := ctx.Epochs
	if epochs <= 0 {
		epochs = 10
	}
	zeroC := make([]float64, r)

	for epoch := 0; epoch < epochs; epoch++ {
		for _, seq := range seqs {
			if len(seq) < 2 {
				continue
			}
			h := make([]float64, r)
			cState := make([]float64, r)
			for t := 1; t < len(seq); t++ {
				prev, cur := seq[t-1], seq[t]
				dt, dd := seqFeatures(prev, cur, ctx.Dist, ctx.Train.DimK)
				in := make([]float64, r)
				copy(in, s.embPOI.Lookup(prev.POI))
				newH, newC, cache := s.cell.Forward(in, h, cState, dt, dd)

				neg := rng.Intn(ctx.Train.DimJ)
				for neg == cur.POI {
					neg = rng.Intn(ctx.Train.DimJ)
				}
				dH := make([]float64, r)
				for _, cand := range []struct {
					j      int
					target float64
				}{{cur.POI, 1}, {neg, 0}} {
					tk := s.embTime.Lookup(cur.TimeIndex)
					ej := s.embPOI.Lookup(cand.j)
					var logit float64
					for d := 0; d < r; d++ {
						logit += (newH[d] + tk[d]) * ej[d]
					}
					dLogit := nn.SigmoidF(logit) - cand.target
					dEj := make([]float64, r)
					dTk := make([]float64, r)
					for d := 0; d < r; d++ {
						dEj[d] = dLogit * (newH[d] + tk[d])
						dTk[d] = dLogit * ej[d]
						dH[d] += dLogit * ej[d]
					}
					s.embPOI.Accumulate(cand.j, dEj)
					s.embTime.Accumulate(cur.TimeIndex, dTk)
				}
				dIn, _, _ := s.cell.Backward(cache, dH, zeroC)
				s.embPOI.Accumulate(prev.POI, dIn)
				h, cState = newH, newC
			}
			stepSeq(optim, s.cell.Params(), s.embPOI, s.embTime)
			s.cell.ZeroGrad()
		}
	}
	s.finalH = s.finalStates(ctx)
	s.dist = ctx.Dist
	s.fit = true
	return nil
}

func (s *STGN) finalStates(ctx *Context) [][]float64 {
	r := s.rank
	out := make([][]float64, ctx.Train.DimI)
	for i, seq := range ctx.Sequences() {
		h := make([]float64, r)
		cState := make([]float64, r)
		for t := 1; t < len(seq); t++ {
			dt, dd := seqFeatures(seq[t-1], seq[t], ctx.Dist, ctx.Train.DimK)
			in := make([]float64, r)
			copy(in, s.embPOI.Lookup(seq[t-1].POI))
			h, cState, _ = s.cell.Forward(in, h, cState, dt, dd)
		}
		out[i] = h
	}
	return out
}

// Score implements Recommender. Before Fit it returns 0; serving paths reach
// the model through SeqServer, whose methods surface ErrNotFitted instead.
func (s *STGN) Score(i, j, k int) float64 {
	if !s.fit {
		return 0
	}
	h := s.finalH[i]
	tk := s.embTime.Lookup(k)
	ej := s.embPOI.Lookup(j)
	var logit float64
	for d := 0; d < s.rank; d++ {
		logit += (h[d] + tk[d]) * ej[d]
	}
	return nn.SigmoidF(logit)
}

// STAN (Luo et al., WWW 2021) attends over the whole trajectory with
// self-attention instead of a recurrence: the query is the user embedding
// plus the target time embedding, the memory holds every prior visit's
// POI+time embedding, and the attended context scores candidate POIs.
type STAN struct {
	LR float64

	embUser *nn.Embedding
	embPOI  *nn.Embedding
	embTime *nn.Embedding
	attn    *nn.Attention
	rank    int

	// seqs holds each user's training trajectory so the attention context
	// can be recomputed at serve/score time without the full Context.
	seqs     [][]Visit
	ctxMu    sync.Mutex
	ctxCache map[int64][]float64
	fit      bool
}

// NewSTAN returns the STAN baseline.
func NewSTAN() *STAN { return &STAN{LR: 0.01} }

// Name implements Recommender.
func (s *STAN) Name() string { return "STAN" }

// Fit implements Recommender.
func (s *STAN) Fit(ctx *Context) error {
	if err := seqCheck(ctx); err != nil {
		return err
	}
	r := ctx.Rank
	s.rank = r
	rng := rand.New(rand.NewSource(ctx.Seed))
	s.embUser = nn.NewEmbedding("stan.user", ctx.Train.DimI, r, rng)
	s.embPOI = nn.NewEmbedding("stan.poi", ctx.Train.DimJ, r, rng)
	s.embTime = nn.NewEmbedding("stan.time", ctx.Train.DimK, r, rng)
	s.attn = &nn.Attention{Dim: r}
	optim := opt.NewAdam(s.LR, 0)
	seqs := ctx.Sequences()
	epochs := ctx.Epochs
	if epochs <= 0 {
		epochs = 10
	}

	for epoch := 0; epoch < epochs; epoch++ {
		for i, seq := range seqs {
			if len(seq) < 2 {
				continue
			}
			for t := 1; t < len(seq); t++ {
				cur := seq[t]
				q, mem, memPOIs, memTimes := s.buildQueryMemory(i, cur.TimeIndex, seq[:t])
				out, cache := s.attn.Forward(q, mem, mem)

				neg := rng.Intn(ctx.Train.DimJ)
				for neg == cur.POI {
					neg = rng.Intn(ctx.Train.DimJ)
				}
				dOut := make([]float64, r)
				dQ := make([]float64, r)
				u := s.embUser.Lookup(i)
				for _, cand := range []struct {
					j      int
					target float64
				}{{cur.POI, 1}, {neg, 0}} {
					ej := s.embPOI.Lookup(cand.j)
					var logit float64
					for d := 0; d < r; d++ {
						logit += (out[d] + u[d]) * ej[d]
					}
					dLogit := nn.SigmoidF(logit) - cand.target
					dEj := make([]float64, r)
					dU := make([]float64, r)
					for d := 0; d < r; d++ {
						dEj[d] = dLogit * (out[d] + u[d])
						dOut[d] += dLogit * ej[d]
						dU[d] = dLogit * ej[d]
					}
					s.embPOI.Accumulate(cand.j, dEj)
					s.embUser.Accumulate(i, dU)
				}
				dQAttn, dK, dV := s.attn.Backward(cache, dOut)
				for d := 0; d < r; d++ {
					dQ[d] += dQAttn[d]
				}
				// Query = user + target-time embeddings.
				s.embUser.Accumulate(i, dQ)
				s.embTime.Accumulate(cur.TimeIndex, dQ)
				// Memory vectors = visit POI + visit time embeddings; keys
				// and values share them.
				for v := range mem {
					dMem := make([]float64, r)
					for d := 0; d < r; d++ {
						dMem[d] = dK[v][d] + dV[v][d]
					}
					s.embPOI.Accumulate(memPOIs[v], dMem)
					s.embTime.Accumulate(memTimes[v], dMem)
				}
			}
			stepSeq(optim, nil, s.embUser, s.embPOI, s.embTime)
		}
	}
	s.seqs = seqs
	s.ctxCache = make(map[int64][]float64)
	s.fit = true
	return nil
}

// buildQueryMemory assembles the attention inputs for user i targeting time
// unit k, over the given visit history.
func (s *STAN) buildQueryMemory(i, k int, history []Visit) (q []float64, mem [][]float64, memPOIs, memTimes []int) {
	r := s.rank
	q = make([]float64, r)
	u := s.embUser.Lookup(i)
	tk := s.embTime.Lookup(k)
	for d := 0; d < r; d++ {
		q[d] = u[d] + tk[d]
	}
	mem = make([][]float64, len(history))
	memPOIs = make([]int, len(history))
	memTimes = make([]int, len(history))
	for v, visit := range history {
		vec := make([]float64, r)
		ep := s.embPOI.Lookup(visit.POI)
		et := s.embTime.Lookup(visit.TimeIndex)
		for d := 0; d < r; d++ {
			vec[d] = ep[d] + et[d]
		}
		mem[v] = vec
		memPOIs[v] = visit.POI
		memTimes[v] = visit.TimeIndex
	}
	return q, mem, memPOIs, memTimes
}

// context returns (cached) the attention context of user i at time k over
// the user's full training trajectory. Safe for concurrent use: the cache is
// mutex-guarded so the serving tier can score in parallel.
func (s *STAN) context(i, k int) []float64 {
	key := int64(i)*int64(s.embTime.N) + int64(k)
	s.ctxMu.Lock()
	if c, ok := s.ctxCache[key]; ok {
		s.ctxMu.Unlock()
		return c
	}
	s.ctxMu.Unlock()
	seq := s.seqs[i]
	var out []float64
	if len(seq) == 0 {
		out = make([]float64, s.rank)
	} else {
		q, mem, _, _ := s.buildQueryMemory(i, k, seq)
		out, _ = s.attn.Forward(q, mem, mem)
	}
	s.ctxMu.Lock()
	s.ctxCache[key] = out
	s.ctxMu.Unlock()
	return out
}

// Score implements Recommender. Before Fit it returns 0; serving paths reach
// the model through SeqServer, whose methods surface ErrNotFitted instead.
func (s *STAN) Score(i, j, k int) float64 {
	if !s.fit {
		return 0
	}
	out := s.context(i, k)
	u := s.embUser.Lookup(i)
	ej := s.embPOI.Lookup(j)
	var logit float64
	for d := 0; d < s.rank; d++ {
		logit += (out[d] + u[d]) * ej[d]
	}
	return nn.SigmoidF(logit)
}

func seqCheck(ctx *Context) error {
	if ctx.Rank <= 0 {
		return fmt.Errorf("baselines: sequential model needs positive rank, got %d", ctx.Rank)
	}
	if ctx.Dist == nil {
		return fmt.Errorf("baselines: sequential model needs a POI distance matrix")
	}
	return nil
}

// stepSeq applies one optimizer step to cell parameters (may be nil) and the
// given embeddings, then clears their gradients.
func stepSeq(optim opt.Optimizer, cellParams []nn.Param, embs ...*nn.Embedding) {
	for _, p := range cellParams {
		optim.Step(p.Name, p.Value, p.Grad)
	}
	for _, e := range embs {
		for _, p := range e.Params() {
			optim.Step(p.Name, p.Value, p.Grad)
		}
		e.ZeroGrad()
	}
}
