package baselines

import (
	"errors"
	"fmt"
	"sort"

	"tcss/internal/nn"
)

// ErrNotFitted is returned by the serving-facing methods of the sequential
// models (SeqServer) when the model has not been trained or loaded yet. The
// registry maps it to HTTP 503: the model exists but cannot score.
var ErrNotFitted = errors.New("baselines: sequential model is not fitted")

// ScoredPOI is one ranked candidate from a sequential model.
type ScoredPOI struct {
	POI   int
	Score float64
}

// SeqServer is the servable surface of the sequential baselines (STRNN, STGN,
// STAN). It extends the offline Recommender protocol with explicit top-N
// entry points, dimension metadata, and a next-POI mode that scores a caller
// supplied check-in sequence rather than the training trajectory. The
// unexported captureState method restricts implementations to this package,
// which is what lets SaveSeqState/LoadSeqState round-trip every
// implementation exactly.
type SeqServer interface {
	Name() string
	// Dims reports (users, pois, times); all zero before Fit.
	Dims() (users, pois, times int)
	// RecommendTopN ranks all POIs for a known user at time unit t using the
	// user's training-trajectory summary state.
	RecommendTopN(user, t, n int) ([]ScoredPOI, error)
	// NextTopN ranks all POIs as the next check-in after the supplied
	// time-ordered sequence, scored at target time unit t. Revisits are
	// valid next-POI outcomes, so visited POIs are not excluded.
	NextTopN(user int, seq []Visit, t, n int) ([]ScoredPOI, error)
	captureState() (*seqState, error)
}

// SeqLookup returns the named sequential model ready for Fit, or false if the
// name is not a sequential baseline.
func SeqLookup(name string) (SeqServer, bool) {
	switch name {
	case "STRNN":
		return NewSTRNN(), true
	case "STGN":
		return NewSTGN(), true
	case "STAN":
		return NewSTAN(), true
	}
	return nil, false
}

// topNScored ranks every POI score descending (ties broken by lower POI id,
// keeping responses deterministic) and returns the first n.
func topNScored(scores []float64, n int) []ScoredPOI {
	idx := make([]int, len(scores))
	for j := range idx {
		idx[j] = j
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]ScoredPOI, n)
	for i := 0; i < n; i++ {
		out[i] = ScoredPOI{POI: idx[i], Score: scores[idx[i]]}
	}
	return out
}

// scoreAllPOIs computes sigmoid((base + emb_time[t])·emb_poi[j]) for every
// POI j, the shared readout of all three sequential models.
func scoreAllPOIs(base []float64, embPOI, embTime *nn.Embedding, t int) []float64 {
	r := embPOI.Dim
	tk := embTime.Lookup(t)
	q := make([]float64, r)
	for d := 0; d < r; d++ {
		q[d] = base[d] + tk[d]
	}
	scores := make([]float64, embPOI.N)
	for j := 0; j < embPOI.N; j++ {
		ej := embPOI.Lookup(j)
		var logit float64
		for d := 0; d < r; d++ {
			logit += q[d] * ej[d]
		}
		scores[j] = nn.SigmoidF(logit)
	}
	return scores
}

// validateSeqQuery bounds-checks a serving query against model dims.
func validateSeqQuery(users, pois, times, user, t, n int, seq []Visit) error {
	if user < 0 || user >= users {
		return fmt.Errorf("baselines: user %d out of range [0,%d)", user, users)
	}
	if t < 0 || t >= times {
		return fmt.Errorf("baselines: time %d out of range [0,%d)", t, times)
	}
	if n <= 0 {
		return fmt.Errorf("baselines: n must be positive, got %d", n)
	}
	for i, v := range seq {
		if v.POI < 0 || v.POI >= pois {
			return fmt.Errorf("baselines: checkin %d poi %d out of range [0,%d)", i, v.POI, pois)
		}
		if v.TimeIndex < 0 || v.TimeIndex >= times {
			return fmt.Errorf("baselines: checkin %d time %d out of range [0,%d)", i, v.TimeIndex, times)
		}
	}
	return nil
}

// --- STRNN ---

// Dims implements SeqServer.
func (s *STRNN) Dims() (int, int, int) {
	if !s.fit {
		return 0, 0, 0
	}
	return len(s.finalH), s.embPOI.N, s.embTime.N
}

// RecommendTopN implements SeqServer using the user's final hidden state.
func (s *STRNN) RecommendTopN(user, t, n int) ([]ScoredPOI, error) {
	if !s.fit {
		return nil, ErrNotFitted
	}
	if err := validateSeqQuery(len(s.finalH), s.embPOI.N, s.embTime.N, user, t, n, nil); err != nil {
		return nil, err
	}
	return topNScored(scoreAllPOIs(s.finalH[user], s.embPOI, s.embTime, t), n), nil
}

// NextTopN implements SeqServer: the hidden state is rolled from zero over
// the supplied sequence with the same transition features as training, then
// every POI is scored at target time t.
func (s *STRNN) NextTopN(user int, seq []Visit, t, n int) ([]ScoredPOI, error) {
	if !s.fit {
		return nil, ErrNotFitted
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("baselines: next-POI query needs at least one check-in")
	}
	if err := validateSeqQuery(len(s.finalH), s.embPOI.N, s.embTime.N, user, t, n, seq); err != nil {
		return nil, err
	}
	r := s.rank
	h := make([]float64, r)
	for i := 1; i < len(seq); i++ {
		dt, dd := seqFeatures(seq[i-1], seq[i], s.dist, s.embTime.N)
		in := make([]float64, r+2)
		copy(in, s.embPOI.Lookup(seq[i-1].POI))
		in[r], in[r+1] = dt, dd
		h, _ = s.cell.Forward(in, h)
	}
	return topNScored(scoreAllPOIs(h, s.embPOI, s.embTime, t), n), nil
}

// --- STGN ---

// Dims implements SeqServer.
func (s *STGN) Dims() (int, int, int) {
	if !s.fit {
		return 0, 0, 0
	}
	return len(s.finalH), s.embPOI.N, s.embTime.N
}

// RecommendTopN implements SeqServer using the user's final hidden state.
func (s *STGN) RecommendTopN(user, t, n int) ([]ScoredPOI, error) {
	if !s.fit {
		return nil, ErrNotFitted
	}
	if err := validateSeqQuery(len(s.finalH), s.embPOI.N, s.embTime.N, user, t, n, nil); err != nil {
		return nil, err
	}
	return topNScored(scoreAllPOIs(s.finalH[user], s.embPOI, s.embTime, t), n), nil
}

// NextTopN implements SeqServer; see STRNN.NextTopN for the rolling scheme.
func (s *STGN) NextTopN(user int, seq []Visit, t, n int) ([]ScoredPOI, error) {
	if !s.fit {
		return nil, ErrNotFitted
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("baselines: next-POI query needs at least one check-in")
	}
	if err := validateSeqQuery(len(s.finalH), s.embPOI.N, s.embTime.N, user, t, n, seq); err != nil {
		return nil, err
	}
	r := s.rank
	h := make([]float64, r)
	cState := make([]float64, r)
	for i := 1; i < len(seq); i++ {
		dt, dd := seqFeatures(seq[i-1], seq[i], s.dist, s.embTime.N)
		in := make([]float64, r)
		copy(in, s.embPOI.Lookup(seq[i-1].POI))
		h, cState, _ = s.cell.Forward(in, h, cState, dt, dd)
	}
	return topNScored(scoreAllPOIs(h, s.embPOI, s.embTime, t), n), nil
}

// --- STAN ---

// Dims implements SeqServer.
func (s *STAN) Dims() (int, int, int) {
	if !s.fit {
		return 0, 0, 0
	}
	return s.embUser.N, s.embPOI.N, s.embTime.N
}

// RecommendTopN implements SeqServer: the attended context over the user's
// training trajectory plus the user embedding scores every POI.
func (s *STAN) RecommendTopN(user, t, n int) ([]ScoredPOI, error) {
	if !s.fit {
		return nil, ErrNotFitted
	}
	if err := validateSeqQuery(s.embUser.N, s.embPOI.N, s.embTime.N, user, t, n, nil); err != nil {
		return nil, err
	}
	return topNScored(s.scoreWithContext(s.context(user, t), user), n), nil
}

// NextTopN implements SeqServer: attention runs over the supplied sequence
// instead of the stored training trajectory.
func (s *STAN) NextTopN(user int, seq []Visit, t, n int) ([]ScoredPOI, error) {
	if !s.fit {
		return nil, ErrNotFitted
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("baselines: next-POI query needs at least one check-in")
	}
	if err := validateSeqQuery(s.embUser.N, s.embPOI.N, s.embTime.N, user, t, n, seq); err != nil {
		return nil, err
	}
	q, mem, _, _ := s.buildQueryMemory(user, t, seq)
	out, _ := s.attn.Forward(q, mem, mem)
	return topNScored(s.scoreWithContext(out, user), n), nil
}

// scoreWithContext applies STAN's readout sigmoid((ctx + emb_user[i])·e_j)
// to every POI.
func (s *STAN) scoreWithContext(out []float64, user int) []float64 {
	r := s.rank
	u := s.embUser.Lookup(user)
	base := make([]float64, r)
	for d := 0; d < r; d++ {
		base[d] = out[d] + u[d]
	}
	scores := make([]float64, s.embPOI.N)
	for j := 0; j < s.embPOI.N; j++ {
		ej := s.embPOI.Lookup(j)
		var logit float64
		for d := 0; d < r; d++ {
			logit += base[d] * ej[d]
		}
		scores[j] = nn.SigmoidF(logit)
	}
	return scores
}
