package baselines

import (
	"path/filepath"
	"testing"
)

// TestNeuralBaselinesResumeBitIdentical fits NCF, NTM and CoSTCo straight
// through, then as a checkpointed run killed at epoch 2 and resumed, and
// demands exactly equal scores everywhere — the engine checkpoint restores
// the parameters, Adam moments and RNG stream the remaining epochs depend
// on.
func TestNeuralBaselinesResumeBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		fresh func() Recommender
	}{
		{"NCF", func() Recommender { return NewNCF() }},
		{"NTM", func() Recommender { return NewNTM() }},
		{"CoSTCo", func() Recommender { return NewCoSTCo() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fx := newFixture(3)
			fx.ctx.Epochs = 4

			straight := tc.fresh()
			if err := straight.Fit(fx.ctx); err != nil {
				t.Fatal(err)
			}

			ck := filepath.Join(t.TempDir(), "ck.json")
			halfCtx := *fx.ctx
			halfCtx.Epochs = 2
			halfCtx.CheckpointPath = ck
			if err := tc.fresh().Fit(&halfCtx); err != nil {
				t.Fatal(err)
			}

			resumedCtx := *fx.ctx
			resumedCtx.ResumePath = ck
			resumed := tc.fresh()
			if err := resumed.Fit(&resumedCtx); err != nil {
				t.Fatal(err)
			}

			x := fx.ctx.Train
			for i := 0; i < x.DimI; i += 3 {
				for j := 0; j < x.DimJ; j += 2 {
					for k := 0; k < x.DimK; k++ {
						a, b := straight.Score(i, j, k), resumed.Score(i, j, k)
						if a != b {
							t.Fatalf("%s: score(%d,%d,%d) = %v straight vs %v resumed — not bit-identical",
								tc.name, i, j, k, a, b)
						}
					}
				}
			}
		})
	}
}
