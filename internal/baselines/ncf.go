package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"tcss/internal/nn"
	"tcss/internal/tensor"
	"tcss/internal/train"
)

// NCF is Neural Collaborative Filtering (He et al., WWW 2017) extended to
// three modes as the paper describes (§V-B): the element-wise product of the
// user/POI/time GMF embeddings feeds the GMF path, the concatenation of three
// separate MLP embeddings feeds a multi-layer perceptron, and a final dense
// layer fuses both paths into a sigmoid score. Training uses binary
// cross-entropy on the observed positives plus an equal number of sampled
// negatives per epoch.
type NCF struct {
	Hidden []int
	LR     float64

	embGMF [3]*nn.Embedding
	embMLP [3]*nn.Embedding
	mlp    *nn.MLP
	fuse   *nn.Dense
	rank   int
	fit    bool
}

// NewNCF returns the NCF baseline with the architecture used in the
// experiments.
func NewNCF() *NCF { return &NCF{Hidden: []int{32, 16}, LR: 0.01} }

// Name implements Recommender.
func (n *NCF) Name() string { return "NCF" }

// Fit implements Recommender. Training is a mini-batch run of the
// internal/train engine over the network's flattened parameter groups.
func (n *NCF) Fit(ctx *Context) error {
	x := ctx.Train
	r := ctx.Rank
	if r <= 0 {
		return fmt.Errorf("baselines: NCF needs positive rank, got %d", r)
	}
	rng := train.NewRNG(ctx.Seed)
	n.build([3]int{x.DimI, x.DimJ, x.DimK}, r, rng.Rand)
	if err := fitEngine(ctx, n.LR, layerGroups(nil, n.layers()...), n.trainStep, rng); err != nil {
		return err
	}
	n.fit = true
	return nil
}

// batchSize is the gradient-accumulation batch of the neural baselines.
const batchSize = 64

// build initializes the network for the given tensor dims and rank. Split
// from Fit so the gradient-check tests can construct a training-shaped model
// without running epochs.
func (n *NCF) build(dims [3]int, r int, rng *rand.Rand) {
	n.rank = r
	names := [3]string{"user", "poi", "time"}
	for m := 0; m < 3; m++ {
		n.embGMF[m] = nn.NewEmbedding("ncf.gmf."+names[m], dims[m], r, rng)
		n.embMLP[m] = nn.NewEmbedding("ncf.mlp."+names[m], dims[m], r, rng)
	}
	n.mlp = nn.NewMLP("ncf.mlp", 3*r, n.Hidden, r, nn.ReLU, rng)
	n.fuse = nn.NewDense("ncf.fuse", 2*r, 1, rng)
}

// layers returns every trainable layer of the network.
func (n *NCF) layers() []nn.Layer {
	return []nn.Layer{
		n.embGMF[0], n.embGMF[1], n.embGMF[2],
		n.embMLP[0], n.embMLP[1], n.embMLP[2], n.mlp, n.fuse,
	}
}

// forward runs the two paths and returns the pre-sigmoid logit plus the
// intermediates needed for backprop.
func (n *NCF) forward(i, j, k int) (logit float64, gmf, mlpIn, mlpOut, fuseIn []float64) {
	r := n.rank
	eu, ej, ek := n.embGMF[0].Lookup(i), n.embGMF[1].Lookup(j), n.embGMF[2].Lookup(k)
	gmf = make([]float64, r)
	for t := 0; t < r; t++ {
		gmf[t] = eu[t] * ej[t] * ek[t]
	}
	mlpIn = make([]float64, 3*r)
	copy(mlpIn, n.embMLP[0].Lookup(i))
	copy(mlpIn[r:], n.embMLP[1].Lookup(j))
	copy(mlpIn[2*r:], n.embMLP[2].Lookup(k))
	mlpOut = n.mlp.Forward(mlpIn)
	fuseIn = make([]float64, 2*r)
	copy(fuseIn, gmf)
	copy(fuseIn[r:], mlpOut)
	logit = n.fuse.Forward(fuseIn)[0]
	return logit, gmf, mlpIn, mlpOut, fuseIn
}

func (n *NCF) trainStep(e tensor.Entry) float64 {
	i, j, k := e.I, e.J, e.K
	logit, _, mlpIn, _, fuseIn := n.forward(i, j, k)
	pred := nn.SigmoidF(logit)
	// BCE gradient w.r.t. the logit is (pred − target).
	dLogit := pred - e.Val

	dFuseIn := n.fuse.Backward(fuseIn, []float64{dLogit})
	r := n.rank
	// GMF path: route gradient into the three GMF embeddings.
	eu, ej, ek := n.embGMF[0].Lookup(i), n.embGMF[1].Lookup(j), n.embGMF[2].Lookup(k)
	du, dj, dk := make([]float64, r), make([]float64, r), make([]float64, r)
	for t := 0; t < r; t++ {
		g := dFuseIn[t]
		du[t] = g * ej[t] * ek[t]
		dj[t] = g * eu[t] * ek[t]
		dk[t] = g * eu[t] * ej[t]
	}
	n.embGMF[0].Accumulate(i, du)
	n.embGMF[1].Accumulate(j, dj)
	n.embGMF[2].Accumulate(k, dk)
	// MLP path.
	dMLPIn := n.mlp.Backward(mlpIn, dFuseIn[r:])
	n.embMLP[0].Accumulate(i, dMLPIn[:r])
	n.embMLP[1].Accumulate(j, dMLPIn[r:2*r])
	n.embMLP[2].Accumulate(k, dMLPIn[2*r:])
	return logLoss(logit, e.Val)
}

// Score implements Recommender.
func (n *NCF) Score(i, j, k int) float64 {
	if !n.fit {
		panic("baselines: NCF.Score before Fit")
	}
	logit, _, _, _, _ := n.forward(i, j, k)
	return nn.SigmoidF(logit)
}

// NTM is the Neural Tensor Machine (Chen & Li, IJCAI 2020): a generalized CP
// term plus a tensorized MLP over the element-wise product of the mode
// embeddings, capturing nonlinear factor interactions.
type NTM struct {
	Hidden []int
	LR     float64

	emb  [3]*nn.Embedding
	mlp  *nn.MLP
	w    *nn.Dense // generalized-CP linear head over the product vector
	rank int
	fit  bool
}

// NewNTM returns the NTM baseline.
func NewNTM() *NTM { return &NTM{Hidden: []int{32}, LR: 0.01} }

// Name implements Recommender.
func (n *NTM) Name() string { return "NTM" }

// Fit implements Recommender. Training is a mini-batch run of the
// internal/train engine over the network's flattened parameter groups.
func (n *NTM) Fit(ctx *Context) error {
	x := ctx.Train
	r := ctx.Rank
	if r <= 0 {
		return fmt.Errorf("baselines: NTM needs positive rank, got %d", r)
	}
	n.rank = r
	rng := train.NewRNG(ctx.Seed)
	dims := [3]int{x.DimI, x.DimJ, x.DimK}
	names := [3]string{"user", "poi", "time"}
	for m := 0; m < 3; m++ {
		n.emb[m] = nn.NewEmbedding("ntm."+names[m], dims[m], r, rng.Rand)
	}
	n.mlp = nn.NewMLP("ntm.mlp", r, n.Hidden, 1, nn.ReLU, rng.Rand)
	n.w = nn.NewDense("ntm.gcp", r, 1, rng.Rand)

	groups := layerGroups(nil, n.emb[0], n.emb[1], n.emb[2], n.mlp, n.w)
	if err := fitEngine(ctx, n.LR, groups, n.trainStep, rng); err != nil {
		return err
	}
	n.fit = true
	return nil
}

func (n *NTM) product(i, j, k int) []float64 {
	r := n.rank
	eu, ej, ek := n.emb[0].Lookup(i), n.emb[1].Lookup(j), n.emb[2].Lookup(k)
	prod := make([]float64, r)
	for t := 0; t < r; t++ {
		prod[t] = eu[t] * ej[t] * ek[t]
	}
	return prod
}

func (n *NTM) trainStep(e tensor.Entry) float64 {
	prod := n.product(e.I, e.J, e.K)
	logit := n.w.Forward(prod)[0] + n.mlp.Forward(prod)[0]
	pred := nn.SigmoidF(logit)
	dLogit := pred - e.Val

	dProdW := n.w.Backward(prod, []float64{dLogit})
	dProdM := n.mlp.Backward(prod, []float64{dLogit})
	r := n.rank
	eu, ej, ek := n.emb[0].Lookup(e.I), n.emb[1].Lookup(e.J), n.emb[2].Lookup(e.K)
	du, dj, dk := make([]float64, r), make([]float64, r), make([]float64, r)
	for t := 0; t < r; t++ {
		g := dProdW[t] + dProdM[t]
		du[t] = g * ej[t] * ek[t]
		dj[t] = g * eu[t] * ek[t]
		dk[t] = g * eu[t] * ej[t]
	}
	n.emb[0].Accumulate(e.I, du)
	n.emb[1].Accumulate(e.J, dj)
	n.emb[2].Accumulate(e.K, dk)
	return logLoss(logit, e.Val)
}

// Score implements Recommender.
func (n *NTM) Score(i, j, k int) float64 {
	if !n.fit {
		panic("baselines: NTM.Score before Fit")
	}
	prod := n.product(i, j, k)
	return nn.SigmoidF(n.w.Forward(prod)[0] + n.mlp.Forward(prod)[0])
}

// logLoss is the numerically stable binary cross-entropy reported per
// training example (and checked directly by the gradient tests).
func logLoss(logit, target float64) float64 {
	// log(1+exp(-z)) for target 1, log(1+exp(z)) for target 0.
	z := logit
	if target > 0.5 {
		z = -z
	}
	if z > 30 {
		return z
	}
	return math.Log1p(math.Exp(z))
}
