package baselines

import (
	"math/rand"

	"tcss/internal/core"
	"tcss/internal/nn"
	"tcss/internal/opt"
	"tcss/internal/tensor"
	"tcss/internal/train"
)

// layerGroups flattens the named parameters of nn layers into engine groups,
// optionally preceded by raw groups (CoSTCo's convolution kernels). The
// order matches the pre-engine nn.StepAll traversal, and Adam's moment state
// is per-name, so stepping all groups before zeroing (the engine's order) is
// bit-identical to the old per-layer step-and-zero.
func layerGroups(raw train.GroupSet, layers ...nn.Layer) train.GroupSet {
	gs := raw
	for _, l := range layers {
		for _, p := range l.Params() {
			gs = append(gs, train.Group{Name: p.Name, Value: p.Value, Grad: p.Grad})
		}
	}
	return gs
}

// fitEngine is the shared training run of the gradient-trained neural
// baselines (NCF, NTM, CoSTCo): each epoch pairs every observed positive
// with one sampled negative, shuffles, and applies per-example BCE steps
// with gradient accumulation every batchSize examples — all driven by the
// internal/train engine, which also provides checkpoint/resume via the
// Context fields.
func fitEngine(ctx *Context, lr float64, groups train.GroupSet, step func(tensor.Entry) float64, rng *train.RNG) error {
	x := ctx.Train
	epochs := ctx.Epochs
	if epochs <= 0 {
		epochs = 10
	}
	mb := &train.MiniBatch{
		Examples: func(_ int, rng *rand.Rand) ([]tensor.Entry, error) {
			negs, err := core.SampleNegatives(x, x.NNZ(), rng)
			if err != nil {
				return nil, err
			}
			batch := make([]tensor.Entry, 0, 2*x.NNZ())
			batch = append(batch, x.Entries()...)
			batch = append(batch, negs...)
			return batch, nil
		},
		Step:      step,
		BatchSize: batchSize,
	}
	d, err := train.New(groups, nil, mb, opt.NewAdam(lr, 0), rng, train.Config{
		Epochs:          epochs,
		CheckpointPath:  ctx.CheckpointPath,
		CheckpointEvery: ctx.CheckpointEvery,
	})
	if err != nil {
		return err
	}
	if ctx.ResumePath != "" {
		// Fall back down the rotation ladder if the newest checkpoint is torn.
		if _, err := d.LoadCheckpointFallback(ctx.ResumePath, 16); err != nil {
			return err
		}
	}
	return d.Run()
}
