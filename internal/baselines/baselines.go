// Package baselines implements every comparison model of the paper's Table I
// from scratch: the classical tensor factorizations (CP-ALS, Tucker-HOOI,
// P-Tucker), the neural tensor models (NCF, NTM, CoSTCo), the sequential
// spatio-temporal recommenders (STRNN, STGN, STAN), the graph-based LFBCA,
// and the matrix-completion methods (PureSVD, MCCO). Each model implements
// Recommender and is evaluated by internal/eval under the same ranking
// protocol as TCSS.
package baselines

import (
	"fmt"
	"sort"

	"tcss/internal/geo"
	"tcss/internal/graph"
	"tcss/internal/tensor"
)

// Context carries everything a baseline may need to fit: the observed
// training tensor, the social graph, POI distances, and the model rank. The
// derived fields (sequences, user-POI matrix) are built lazily from the
// training tensor so no test information can leak in.
type Context struct {
	Train  *tensor.COO
	Social *graph.Graph
	Dist   *geo.DistanceMatrix
	Rank   int
	Epochs int
	Seed   int64

	// Counts optionally carries the training cells with their raw check-in
	// multiplicities instead of binary indicators. Models that fit observed
	// entries only (P-Tucker) are degenerate on an all-ones tensor — every
	// observed cell can be explained by a constant — so they use Counts
	// when available. Must cover exactly the cells of Train.
	Counts *tensor.COO

	// CheckpointPath, when non-empty, makes the engine-trained baselines
	// (NCF, NTM, CoSTCo) write generic internal/train checkpoints after
	// every CheckpointEvery-th epoch and after the final one; ResumePath
	// restores such a checkpoint before training, continuing the run
	// bit-identically to an uninterrupted one. Baselines with closed-form or
	// non-gradient fitting ignore these fields.
	CheckpointPath  string
	CheckpointEvery int
	ResumePath      string

	seqCache [][]Visit
}

// ObservedValues returns Counts when provided and Train otherwise — the
// tensor observed-only fitters should regress on.
func (c *Context) ObservedValues() *tensor.COO {
	if c.Counts != nil {
		return c.Counts
	}
	return c.Train
}

// Visit is one training check-in in a user's time-ordered trajectory.
type Visit struct {
	POI       int
	TimeIndex int
}

// Sequences returns, per user, the training visits ordered by time index
// (ties broken by POI id for determinism). Sequential baselines train on
// these trajectories.
func (c *Context) Sequences() [][]Visit {
	if c.seqCache != nil {
		return c.seqCache
	}
	seqs := make([][]Visit, c.Train.DimI)
	for _, e := range c.Train.Entries() {
		seqs[e.I] = append(seqs[e.I], Visit{POI: e.J, TimeIndex: e.K})
	}
	for i := range seqs {
		s := seqs[i]
		sort.Slice(s, func(a, b int) bool {
			if s[a].TimeIndex != s[b].TimeIndex {
				return s[a].TimeIndex < s[b].TimeIndex
			}
			return s[a].POI < s[b].POI
		})
	}
	c.seqCache = seqs
	return seqs
}

// UserPOIMatrix collapses the tensor over time into the binary user-POI
// interaction matrix the matrix-completion baselines factorize.
func (c *Context) UserPOIMatrix() [][]float64 {
	m := make([][]float64, c.Train.DimI)
	for i := range m {
		m[i] = make([]float64, c.Train.DimJ)
	}
	for _, e := range c.Train.Entries() {
		m[e.I][e.J] = 1
	}
	return m
}

// Recommender is a fitted model that scores (user, POI, time) triples; it is
// the interface the experiment harness evaluates. Matrix-completion models
// ignore the time index, exactly as in the paper's protocol.
type Recommender interface {
	Name() string
	Fit(ctx *Context) error
	Score(i, j, k int) float64
}

// Registry returns a fresh instance of every Table I baseline, in the
// paper's row order.
func Registry() []Recommender {
	return []Recommender{
		NewMCCO(),
		NewPureSVD(),
		NewSTRNN(),
		NewSTAN(),
		NewSTGN(),
		NewLFBCA(),
		NewCP(),
		NewTucker(),
		NewPTucker(),
		NewTenInt(),
		NewNCF(),
		NewNTM(),
		NewCoSTCo(),
	}
}

// Lookup returns the baseline with the given name (as reported by Name), or
// an error listing the valid names.
func Lookup(name string) (Recommender, error) {
	var names []string
	for _, r := range Registry() {
		if r.Name() == name {
			return r, nil
		}
		names = append(names, r.Name())
	}
	return nil, fmt.Errorf("baselines: unknown model %q (want one of %v)", name, names)
}
