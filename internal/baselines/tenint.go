package baselines

import (
	"fmt"
	"math/rand"

	"tcss/internal/mat"
	"tcss/internal/tensor"
)

// TenInt (Yao et al., SIGIR 2015) is the related-work model the paper
// contrasts TCSS against (§II): context-aware POI recommendation by CP
// tensor factorization with *social regularization* — the squared loss is
// regularized by the difference of user factors between each pair of
// friends, ‖U1[u] − U1[v]‖² for (u, v) ∈ E. Unlike TCSS it uses no spatial
// information and plain CP (no learnable h), which is exactly the contrast
// the paper draws. Trained by alternating least squares: the friend
// regularizer is quadratic in U1, so the mode-1 update solves per-user
// normal equations with the friends' factor mean folded in.
type TenInt struct {
	Ridge  float64 // Tikhonov regularization
	Social float64 // friend-difference weight β
	Sweeps int

	u1, u2, u3 *mat.Matrix
	fit        bool
}

// NewTenInt returns the TenInt baseline with the defaults used in the
// experiments.
func NewTenInt() *TenInt { return &TenInt{Ridge: 1e-3, Social: 0.5, Sweeps: 20} }

// Name implements Recommender.
func (t *TenInt) Name() string { return "TenInt" }

// Fit implements Recommender.
func (t *TenInt) Fit(ctx *Context) error {
	if ctx.Rank <= 0 {
		return fmt.Errorf("baselines: TenInt needs positive rank, got %d", ctx.Rank)
	}
	if ctx.Social == nil {
		return fmt.Errorf("baselines: TenInt needs the social graph")
	}
	rng := rand.New(rand.NewSource(ctx.Seed))
	x := ctx.Train
	r := ctx.Rank
	t.u1 = mat.Random(x.DimI, r, 0.1, rng)
	t.u2 = mat.Random(x.DimJ, r, 0.1, rng)
	t.u3 = mat.Random(x.DimK, r, 0.1, rng)

	for sweep := 0; sweep < t.Sweeps; sweep++ {
		if err := t.updateUsers(ctx); err != nil {
			return err
		}
		if err := t.updateMode(x, tensor.ModePOI); err != nil {
			return err
		}
		if err := t.updateMode(x, tensor.ModeTime); err != nil {
			return err
		}
	}
	t.fit = true
	return nil
}

// updateUsers solves, for every user u, the regularized normal equations
//
//	(V + (λ + β·deg(u))·I) · U1[u] = MTTKRP₁[u] + β·Σ_{v∈N(u)} U1[v]
//
// where V = (U2ᵀU2) ⊙ (U3ᵀU3). The friend sum uses the factors from the
// previous sweep (Jacobi-style), which keeps the update embarrassingly
// parallel as in the original paper.
func (t *TenInt) updateUsers(ctx *Context) error {
	x := ctx.Train
	r := t.u1.Cols
	m := x.MTTKRP(tensor.ModeUser, t.u1, t.u2, t.u3)
	v := hadamardGram(t.u2, t.u3)
	prev := t.u1.Clone()
	for u := 0; u < x.DimI; u++ {
		friends := ctx.Social.Neighbors(u)
		a := v.Clone().AddRidge(t.Ridge + t.Social*float64(len(friends)))
		rhs := make([]float64, r)
		copy(rhs, m.Row(u))
		for _, f := range friends {
			row := prev.Row(f)
			for d := 0; d < r; d++ {
				rhs[d] += t.Social * row[d]
			}
		}
		sol, err := mat.SolveSPD(a, rhs)
		if err != nil {
			return fmt.Errorf("baselines: TenInt user %d: %w", u, err)
		}
		copy(t.u1.Row(u), sol)
	}
	return nil
}

// updateMode is the plain CP-ALS update for the POI and time modes.
func (t *TenInt) updateMode(x *tensor.COO, mode tensor.Mode) error {
	var a, b, target *mat.Matrix
	switch mode {
	case tensor.ModePOI:
		a, b, target = t.u1, t.u3, t.u2
	case tensor.ModeTime:
		a, b, target = t.u1, t.u2, t.u3
	default:
		return fmt.Errorf("baselines: TenInt updateMode on mode %d", mode)
	}
	m := x.MTTKRP(mode, t.u1, t.u2, t.u3)
	v := hadamardGram(a, b).AddRidge(t.Ridge)
	sol, err := mat.SolveSPDMatrix(v, m.T())
	if err != nil {
		return fmt.Errorf("baselines: TenInt mode-%d solve: %w", mode, err)
	}
	copy(target.Data, sol.T().Data)
	return nil
}

// Score implements Recommender with the plain CP prediction.
func (t *TenInt) Score(i, j, k int) float64 {
	if !t.fit {
		panic("baselines: TenInt.Score before Fit")
	}
	return tensor.CPValue(t.u1, t.u2, t.u3, nil, i, j, k)
}

// UserFactorDistance returns the mean squared distance between friend user
// factors, the quantity TenInt's regularizer minimizes; tests assert it is
// smaller than for non-friend pairs.
func (t *TenInt) UserFactorDistance(pairs [][2]int) float64 {
	if len(pairs) == 0 {
		return 0
	}
	var sum float64
	for _, p := range pairs {
		a, b := t.u1.Row(p[0]), t.u1.Row(p[1])
		for d := range a {
			diff := a[d] - b[d]
			sum += diff * diff
		}
	}
	return sum / float64(len(pairs))
}
