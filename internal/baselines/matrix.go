package baselines

import (
	"fmt"
	"math/rand"

	"tcss/internal/mat"
)

// PureSVD is the matrix-completion baseline of Cremonesi et al.: treat all
// missing user-POI interactions as zeros, take the rank-r truncated SVD of
// the binary interaction matrix, and score by the low-rank reconstruction.
// It ignores the time dimension, which is exactly the point of comparing it
// against the tensor models (Table I's first block).
type PureSVD struct {
	u   *mat.Matrix
	s   []float64
	v   *mat.Matrix
	fit bool
}

// NewPureSVD returns the PureSVD baseline.
func NewPureSVD() *PureSVD { return &PureSVD{} }

// Name implements Recommender.
func (p *PureSVD) Name() string { return "PureSVD" }

// Fit implements Recommender.
func (p *PureSVD) Fit(ctx *Context) error {
	rows := ctx.UserPOIMatrix()
	m := mat.New(len(rows), len(rows[0]))
	for i, row := range rows {
		copy(m.Row(i), row)
	}
	r := ctx.Rank
	if max := min(m.Rows, m.Cols); r > max {
		r = max
	}
	if r <= 0 {
		return fmt.Errorf("baselines: PureSVD needs positive rank, got %d", ctx.Rank)
	}
	svd, err := mat.ThinSVD(m, r, rand.New(rand.NewSource(ctx.Seed)))
	if err != nil {
		return fmt.Errorf("baselines: PureSVD: %w", err)
	}
	p.u, p.s, p.v = svd.U, svd.S, svd.V
	p.fit = true
	return nil
}

// Score implements Recommender; the time index is ignored.
func (p *PureSVD) Score(i, j, _ int) float64 {
	if !p.fit {
		panic("baselines: PureSVD.Score before Fit")
	}
	urow, vrow := p.u.Row(i), p.v.Row(j)
	var s float64
	for t, sv := range p.s {
		s += urow[t] * sv * vrow[t]
	}
	return s
}

// MCCO approximates the convex matrix completion of Candès & Recht with the
// soft-impute algorithm: alternately fill the unobserved entries of the
// user-POI matrix with the current low-rank estimate and apply singular-value
// soft-thresholding, which solves the nuclear-norm-regularized least-squares
// problem the paper's semidefinite program relaxes to.
type MCCO struct {
	Tau        float64 // soft-threshold; 0 picks a data-dependent default
	Iterations int

	z   *mat.Matrix
	fit bool
}

// NewMCCO returns the MCCO baseline with the defaults used in the
// experiments.
func NewMCCO() *MCCO { return &MCCO{Iterations: 15} }

// Name implements Recommender.
func (m *MCCO) Name() string { return "MCCO" }

// Fit implements Recommender.
func (m *MCCO) Fit(ctx *Context) error {
	rows := ctx.UserPOIMatrix()
	obs := mat.New(len(rows), len(rows[0]))
	observed := make([]bool, obs.Rows*obs.Cols)
	for i, row := range rows {
		for j, v := range row {
			if v != 0 {
				obs.Set(i, j, v)
				observed[i*obs.Cols+j] = true
			}
		}
	}
	r := ctx.Rank
	if max := min(obs.Rows, obs.Cols); r > max {
		r = max
	}
	if r <= 0 {
		return fmt.Errorf("baselines: MCCO needs positive rank, got %d", ctx.Rank)
	}
	rng := rand.New(rand.NewSource(ctx.Seed))

	tau := m.Tau
	if tau <= 0 {
		// Default: a fraction of the top singular value of the observed
		// matrix, the usual soft-impute warm start.
		svd, err := mat.ThinSVD(obs, 1, rng)
		if err != nil {
			return fmt.Errorf("baselines: MCCO warmup SVD: %w", err)
		}
		tau = 0.1 * svd.S[0]
	}

	z := obs.Clone()
	for it := 0; it < m.Iterations; it++ {
		svd, err := mat.SoftThresholdSVD(z, r, tau, rng)
		if err != nil {
			return fmt.Errorf("baselines: MCCO iteration %d: %w", it, err)
		}
		recon := svd.Reconstruct()
		// Keep observed entries fixed, impute the rest.
		for idx := range z.Data {
			if observed[idx] {
				z.Data[idx] = obs.Data[idx]
			} else {
				z.Data[idx] = recon.Data[idx]
			}
		}
	}
	m.z = z
	m.fit = true
	return nil
}

// Score implements Recommender; the time index is ignored.
func (m *MCCO) Score(i, j, _ int) float64 {
	if !m.fit {
		panic("baselines: MCCO.Score before Fit")
	}
	return m.z.At(i, j)
}
