package baselines

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tcss/internal/fault"
)

// fitSeq fits one sequential model on the shared fixture.
func fitSeq(t *testing.T, fx *fixture, name string) SeqServer {
	t.Helper()
	m, ok := SeqLookup(name)
	if !ok {
		t.Fatalf("SeqLookup(%q) = false", name)
	}
	if err := m.(Recommender).Fit(fx.ctx); err != nil {
		t.Fatalf("%s: Fit: %v", name, err)
	}
	return m
}

// sampleQueries exercises both serving entry points and returns all results
// for exact comparison.
func sampleQueries(t *testing.T, m SeqServer) [][]ScoredPOI {
	t.Helper()
	users, pois, times := m.Dims()
	if users == 0 || pois == 0 || times == 0 {
		t.Fatalf("%s: zero dims after fit", m.Name())
	}
	var out [][]ScoredPOI
	seq := []Visit{{POI: 1, TimeIndex: 0}, {POI: 3, TimeIndex: 1}, {POI: 0, TimeIndex: 2}}
	for user := 0; user < users; user += 5 {
		for k := 0; k < times; k += 2 {
			rec, err := m.RecommendTopN(user, k, 5)
			if err != nil {
				t.Fatalf("%s: RecommendTopN(%d,%d): %v", m.Name(), user, k, err)
			}
			nxt, err := m.NextTopN(user, seq, k, 5)
			if err != nil {
				t.Fatalf("%s: NextTopN(%d,%d): %v", m.Name(), user, k, err)
			}
			out = append(out, rec, nxt)
		}
	}
	return out
}

func TestSeqStateRoundTrip(t *testing.T) {
	fx := newFixture(3)
	for _, name := range []string{"STRNN", "STGN", "STAN"} {
		t.Run(name, func(t *testing.T) {
			m := fitSeq(t, fx, name)
			want := sampleQueries(t, m)

			path := filepath.Join(t.TempDir(), "seq.state")
			if err := SaveSeqState(nil, path, 2, 7, m); err != nil {
				t.Fatalf("SaveSeqState: %v", err)
			}
			loaded, gen, err := LoadSeqState(path, fx.ctx.Dist)
			if err != nil {
				t.Fatalf("LoadSeqState: %v", err)
			}
			if gen != 7 {
				t.Fatalf("generation = %d, want 7", gen)
			}
			if loaded.Name() != name {
				t.Fatalf("loaded name = %q, want %q", loaded.Name(), name)
			}
			got := sampleQueries(t, loaded)
			if !reflect.DeepEqual(got, want) {
				t.Fatal("loaded model results differ from the fitted model")
			}
			u1, p1, k1 := m.Dims()
			u2, p2, k2 := loaded.Dims()
			if u1 != u2 || p1 != p2 || k1 != k2 {
				t.Fatalf("dims changed across round trip: (%d,%d,%d) vs (%d,%d,%d)", u1, p1, k1, u2, p2, k2)
			}
		})
	}
}

func TestSeqStateCorruptionRejected(t *testing.T) {
	fx := newFixture(4)
	m := fitSeq(t, fx, "STRNN")
	path := filepath.Join(t.TempDir(), "seq.state")
	if err := SaveSeqState(nil, path, 0, 1, m); err != nil {
		t.Fatalf("SaveSeqState: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A flipped payload byte must be caught by the CRC.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	bad := filepath.Join(t.TempDir(), "flipped.state")
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSeqState(bad, fx.ctx.Dist); !errors.Is(err, fault.ErrChecksum) {
		t.Fatalf("bit-flipped load err = %v, want ErrChecksum", err)
	}

	// A truncated file must be rejected too.
	trunc := filepath.Join(t.TempDir(), "trunc.state")
	if err := os.WriteFile(trunc, data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSeqState(trunc, fx.ctx.Dist); err == nil {
		t.Fatal("truncated load must fail")
	}
}

func TestSeqStateFallbackLadder(t *testing.T) {
	fx := newFixture(5)
	m := fitSeq(t, fx, "STGN")
	path := filepath.Join(t.TempDir(), "seq.state")
	if err := SaveSeqState(nil, path, 2, 1, m); err != nil {
		t.Fatalf("save gen 1: %v", err)
	}
	if err := SaveSeqState(nil, path, 2, 2, m); err != nil {
		t.Fatalf("save gen 2: %v", err)
	}
	// Corrupt the newest file: the ladder must fall back to path.1 (gen 1).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, gen, from, err := LoadSeqStateFallback(path, 2, fx.ctx.Dist)
	if err != nil {
		t.Fatalf("LoadSeqStateFallback: %v", err)
	}
	if gen != 1 {
		t.Fatalf("fallback generation = %d, want 1", gen)
	}
	if from != fault.RotatedPath(path, 1) {
		t.Fatalf("fallback path = %q, want rung 1", from)
	}
	if loaded.Name() != "STGN" {
		t.Fatalf("fallback name = %q", loaded.Name())
	}
}

func TestSeqStateFutureVersionRejected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "future.state")
	err := fault.WriteFileAtomic(nil, path, func(w io.Writer) error {
		return fault.WriteFramed(w, SeqStateVersion+1, []byte(`{"kind":"STRNN"}`))
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSeqState(path, nil); !errors.Is(err, ErrSeqStateVersion) {
		t.Fatalf("future version err = %v, want ErrSeqStateVersion", err)
	}
}
