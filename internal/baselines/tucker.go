package baselines

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"tcss/internal/mat"
	"tcss/internal/tensor"
)

// Tucker fits a Tucker decomposition X ≈ G ×₁U1 ×₂U2 ×₃U3 of the full binary
// tensor via HOOI (higher-order orthogonal iteration): each sweep updates one
// factor to the top-r left singular vectors of the tensor contracted with the
// other two factors, and finally recomputes the core G = X ×₁U1ᵀ ×₂U2ᵀ ×₃U3ᵀ.
// All contractions run directly over the sparse entries.
type Tucker struct {
	Sweeps int

	u1, u2, u3 *mat.Matrix
	core       []float64 // r×r×r, c-order (a fastest-varying last)
	r          int
}

// NewTucker returns a Tucker baseline with the default sweep count.
func NewTucker() *Tucker { return &Tucker{Sweeps: 10} }

// Name implements Recommender.
func (t *Tucker) Name() string { return "Tucker" }

// Fit implements Recommender.
func (t *Tucker) Fit(ctx *Context) error {
	x := ctx.Train
	r := ctx.Rank
	if r <= 0 {
		return fmt.Errorf("baselines: Tucker needs positive rank, got %d", r)
	}
	if r > x.DimK {
		r = x.DimK // rank cannot exceed the smallest mode
	}
	t.r = r
	rng := rand.New(rand.NewSource(ctx.Seed))
	t.u1 = randomOrthonormal(x.DimI, r, rng)
	t.u2 = randomOrthonormal(x.DimJ, r, rng)
	t.u3 = randomOrthonormal(x.DimK, r, rng)

	for sweep := 0; sweep < t.Sweeps; sweep++ {
		var err error
		if t.u1, err = hooiFactor(x, tensor.ModeUser, t.u2, t.u3, r, rng); err != nil {
			return err
		}
		if t.u2, err = hooiFactor(x, tensor.ModePOI, t.u1, t.u3, r, rng); err != nil {
			return err
		}
		if t.u3, err = hooiFactor(x, tensor.ModeTime, t.u1, t.u2, r, rng); err != nil {
			return err
		}
	}
	t.core = tuckerCore(x, t.u1, t.u2, t.u3, r)
	return nil
}

// contract computes, for the given mode, the matrix W (dim_mode × r²) with
// W[i, a*r+b] = Σ_{entries in fiber i} val · A[ja] · B[kb], where A and B are
// the factors of the other two modes in mode order.
func contract(x *tensor.COO, mode tensor.Mode, a, b *mat.Matrix, r int) *mat.Matrix {
	var dim int
	switch mode {
	case tensor.ModeUser:
		dim = x.DimI
	case tensor.ModePOI:
		dim = x.DimJ
	case tensor.ModeTime:
		dim = x.DimK
	}
	w := mat.New(dim, r*r)
	for _, e := range x.Entries() {
		var row int
		var av, bv []float64
		switch mode {
		case tensor.ModeUser:
			row, av, bv = e.I, a.Row(e.J), b.Row(e.K)
		case tensor.ModePOI:
			row, av, bv = e.J, a.Row(e.I), b.Row(e.K)
		case tensor.ModeTime:
			row, av, bv = e.K, a.Row(e.I), b.Row(e.J)
		}
		dst := w.Row(row)
		for p := 0; p < r; p++ {
			vp := e.Val * av[p]
			if vp == 0 {
				continue
			}
			for q := 0; q < r; q++ {
				dst[p*r+q] += vp * bv[q]
			}
		}
	}
	return w
}

// hooiFactor returns the top-r left singular vectors of the mode-n
// contraction, the HOOI factor update.
func hooiFactor(x *tensor.COO, mode tensor.Mode, a, b *mat.Matrix, r int, rng *rand.Rand) (*mat.Matrix, error) {
	w := contract(x, mode, a, b, r)
	svd, err := mat.ThinSVD(w, r, rng)
	if err != nil {
		return nil, fmt.Errorf("baselines: HOOI mode-%d SVD: %w", mode, err)
	}
	return svd.U, nil
}

// tuckerCore computes G[a,b,c] = Σ entries val·U1[i,a]·U2[j,b]·U3[k,c].
func tuckerCore(x *tensor.COO, u1, u2, u3 *mat.Matrix, r int) []float64 {
	core := make([]float64, r*r*r)
	for _, e := range x.Entries() {
		ra, rb, rc := u1.Row(e.I), u2.Row(e.J), u3.Row(e.K)
		for a := 0; a < r; a++ {
			va := e.Val * ra[a]
			if va == 0 {
				continue
			}
			for b := 0; b < r; b++ {
				vb := va * rb[b]
				if vb == 0 {
					continue
				}
				base := (a*r + b) * r
				for c := 0; c < r; c++ {
					core[base+c] += vb * rc[c]
				}
			}
		}
	}
	return core
}

// randomOrthonormal returns an n×r matrix with orthonormal columns.
func randomOrthonormal(n, r int, rng *rand.Rand) *mat.Matrix {
	m := mat.RandomNormal(n, r, 1, rng)
	// Orthonormalize through the Gram-based SVD of the package.
	svd, err := mat.ThinSVD(m, r, rng)
	if err != nil {
		panic(err)
	}
	return svd.U
}

// Score implements Recommender with the Tucker prediction of Eq (2).
func (t *Tucker) Score(i, j, k int) float64 {
	return tuckerScore(t.core, t.r, t.u1.Row(i), t.u2.Row(j), t.u3.Row(k))
}

func tuckerScore(core []float64, r int, ra, rb, rc []float64) float64 {
	var s float64
	for a := 0; a < r; a++ {
		if ra[a] == 0 {
			continue
		}
		for b := 0; b < r; b++ {
			vb := ra[a] * rb[b]
			if vb == 0 {
				continue
			}
			base := (a*r + b) * r
			for c := 0; c < r; c++ {
				s += vb * rc[c] * core[base+c]
			}
		}
	}
	return s
}

// PTucker is the scalable sparse Tucker factorization of Oh et al. (ICDE
// 2018): it treats unobserved cells as missing (not zero) and updates each
// factor row by solving its ridge-regularized normal equations over the
// observed entries of that row's slice, with all rows of a mode updated in
// parallel. The core is recomputed from the (orthonormalized) factors after
// each sweep.
type PTucker struct {
	Ridge  float64
	Sweeps int

	u1, u2, u3 *mat.Matrix
	core       []float64
	r          int
}

// NewPTucker returns a P-Tucker baseline with the defaults used in the
// experiments.
func NewPTucker() *PTucker { return &PTucker{Ridge: 0.1, Sweeps: 8} }

// Name implements Recommender.
func (p *PTucker) Name() string { return "P-Tucker" }

// Fit implements Recommender. P-Tucker regresses on the observed entries
// only, so it fits the count-valued tensor when the context provides one
// (see Context.Counts).
func (p *PTucker) Fit(ctx *Context) error {
	x := ctx.ObservedValues()
	r := ctx.Rank
	if r <= 0 {
		return fmt.Errorf("baselines: P-Tucker needs positive rank, got %d", r)
	}
	if r > x.DimK {
		r = x.DimK
	}
	p.r = r
	rng := rand.New(rand.NewSource(ctx.Seed))
	p.u1 = randomOrthonormal(x.DimI, r, rng)
	p.u2 = randomOrthonormal(x.DimJ, r, rng)
	p.u3 = randomOrthonormal(x.DimK, r, rng)
	p.core = tuckerCore(x, p.u1, p.u2, p.u3, r)

	// Entries grouped by each mode's row index, built once.
	byI := groupEntries(x, tensor.ModeUser)
	byJ := groupEntries(x, tensor.ModePOI)
	byK := groupEntries(x, tensor.ModeTime)

	for sweep := 0; sweep < p.Sweeps; sweep++ {
		if err := p.updateRows(byI, tensor.ModeUser); err != nil {
			return err
		}
		if err := p.updateRows(byJ, tensor.ModePOI); err != nil {
			return err
		}
		if err := p.updateRows(byK, tensor.ModeTime); err != nil {
			return err
		}
		// The projection G = X ×ₙ Uᵀ is only the least-squares core for
		// orthonormal factors, so orthonormalize each factor (keeping its
		// column span, which is what the row updates learned) before
		// recomputing the core.
		var err error
		if p.u1, err = orthonormalize(p.u1, rng); err != nil {
			return err
		}
		if p.u2, err = orthonormalize(p.u2, rng); err != nil {
			return err
		}
		if p.u3, err = orthonormalize(p.u3, rng); err != nil {
			return err
		}
		p.core = tuckerCore(x, p.u1, p.u2, p.u3, r)
	}
	return nil
}

// orthonormalize returns an orthonormal basis of the column span of m.
func orthonormalize(m *mat.Matrix, rng *rand.Rand) (*mat.Matrix, error) {
	svd, err := mat.ThinSVD(m, m.Cols, rng)
	if err != nil {
		return nil, fmt.Errorf("baselines: orthonormalizing factor: %w", err)
	}
	return svd.U, nil
}

func groupEntries(x *tensor.COO, mode tensor.Mode) [][]tensor.Entry {
	var dim int
	switch mode {
	case tensor.ModeUser:
		dim = x.DimI
	case tensor.ModePOI:
		dim = x.DimJ
	case tensor.ModeTime:
		dim = x.DimK
	}
	out := make([][]tensor.Entry, dim)
	for _, e := range x.Entries() {
		switch mode {
		case tensor.ModeUser:
			out[e.I] = append(out[e.I], e)
		case tensor.ModePOI:
			out[e.J] = append(out[e.J], e)
		case tensor.ModeTime:
			out[e.K] = append(out[e.K], e)
		}
	}
	return out
}

// updateRows performs the fully parallel row-wise ALS update of one mode,
// the core algorithmic idea of P-Tucker.
func (p *PTucker) updateRows(groups [][]tensor.Entry, mode tensor.Mode) error {
	r := p.r
	var target *mat.Matrix
	switch mode {
	case tensor.ModeUser:
		target = p.u1
	case tensor.ModePOI:
		target = p.u2
	case tensor.ModeTime:
		target = p.u3
	}
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			design := make([]float64, r)
			for row := w; row < len(groups); row += workers {
				entries := groups[row]
				if len(entries) == 0 {
					continue
				}
				ata := mat.New(r, r)
				atb := make([]float64, r)
				for _, e := range entries {
					p.designVector(mode, e, design)
					for a := 0; a < r; a++ {
						if design[a] == 0 {
							continue
						}
						atb[a] += design[a] * e.Val
						arow := ata.Row(a)
						for b := 0; b < r; b++ {
							arow[b] += design[a] * design[b]
						}
					}
				}
				ata.AddRidge(p.Ridge)
				sol, err := mat.SolveSPD(ata, atb)
				if err != nil {
					errs[w] = fmt.Errorf("baselines: P-Tucker row %d mode %d: %w", row, mode, err)
					return
				}
				copy(target.Row(row), sol)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// designVector fills dst with the length-r regression features of one
// observed entry for the given mode: dst[a] = Σ_{b,c} G[a,b,c]·(other
// factors), arranged so the entry's prediction is dst·row.
func (p *PTucker) designVector(mode tensor.Mode, e tensor.Entry, dst []float64) {
	r := p.r
	for a := range dst {
		dst[a] = 0
	}
	switch mode {
	case tensor.ModeUser:
		rb, rc := p.u2.Row(e.J), p.u3.Row(e.K)
		for a := 0; a < r; a++ {
			var s float64
			for b := 0; b < r; b++ {
				base := (a*r + b) * r
				for c := 0; c < r; c++ {
					s += p.core[base+c] * rb[b] * rc[c]
				}
			}
			dst[a] = s
		}
	case tensor.ModePOI:
		ra, rc := p.u1.Row(e.I), p.u3.Row(e.K)
		for b := 0; b < r; b++ {
			var s float64
			for a := 0; a < r; a++ {
				base := (a*r + b) * r
				for c := 0; c < r; c++ {
					s += p.core[base+c] * ra[a] * rc[c]
				}
			}
			dst[b] = s
		}
	case tensor.ModeTime:
		ra, rb := p.u1.Row(e.I), p.u2.Row(e.J)
		for c := 0; c < r; c++ {
			var s float64
			for a := 0; a < r; a++ {
				for b := 0; b < r; b++ {
					s += p.core[(a*r+b)*r+c] * ra[a] * rb[b]
				}
			}
			dst[c] = s
		}
	}
}

// Score implements Recommender.
func (p *PTucker) Score(i, j, k int) float64 {
	return tuckerScore(p.core, p.r, p.u1.Row(i), p.u2.Row(j), p.u3.Row(k))
}
