package baselines

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"

	"tcss/internal/fault"
	"tcss/internal/geo"
	"tcss/internal/nn"
)

// SeqStateVersion is the on-disk format version of sequential-model state
// files. The payload is JSON (named parameter tensors + per-user final hidden
// states) wrapped in the standard fault frame, so corruption is caught by the
// same CRC32-C check as model snapshots and files participate in the same
// rotation/fallback ladder.
const SeqStateVersion = 1

// ErrSeqStateVersion reports a state file written by a newer format version.
var ErrSeqStateVersion = errors.New("baselines: sequential state file has unsupported format version")

// seqState is the serialized form shared by all three sequential models.
// Float64 slices round-trip bit-exactly through encoding/json (Go prints the
// shortest representation that parses back to the same float), which is what
// makes save → load → serve responses byte-identical.
type seqState struct {
	Kind       string               `json:"kind"`
	Generation uint64               `json:"generation"`
	Rank       int                  `json:"rank"`
	Users      int                  `json:"users"`
	POIs       int                  `json:"pois"`
	Times      int                  `json:"times"`
	Params     map[string][]float64 `json:"params"`
	FinalH     [][]float64          `json:"final_h,omitempty"`
	Sequences  [][]Visit            `json:"sequences,omitempty"` // STAN only
}

// captureState implements SeqServer for STRNN.
func (s *STRNN) captureState() (*seqState, error) {
	if !s.fit {
		return nil, ErrNotFitted
	}
	return &seqState{
		Kind: "STRNN", Rank: s.rank,
		Users: len(s.finalH), POIs: s.embPOI.N, Times: s.embTime.N,
		Params: map[string][]float64{
			"poi.W":   s.embPOI.W,
			"time.W":  s.embTime.W,
			"cell.Wx": s.cell.Wx,
			"cell.Wh": s.cell.Wh,
			"cell.B":  s.cell.B,
		},
		FinalH: s.finalH,
	}, nil
}

// captureState implements SeqServer for STGN.
func (s *STGN) captureState() (*seqState, error) {
	if !s.fit {
		return nil, ErrNotFitted
	}
	return &seqState{
		Kind: "STGN", Rank: s.rank,
		Users: len(s.finalH), POIs: s.embPOI.N, Times: s.embTime.N,
		Params: map[string][]float64{
			"poi.W":    s.embPOI.W,
			"time.W":   s.embTime.W,
			"cell.W":   s.cell.W,
			"cell.B":   s.cell.B,
			"cell.WxT": s.cell.WxT,
			"cell.WtT": s.cell.WtT,
			"cell.BT":  s.cell.BT,
			"cell.WxD": s.cell.WxD,
			"cell.WdD": s.cell.WdD,
			"cell.BD":  s.cell.BD,
		},
		FinalH: s.finalH,
	}, nil
}

// captureState implements SeqServer for STAN. STAN has no rolled state, but
// serving its recommend path needs the training trajectories, so they are
// persisted alongside the embeddings.
func (s *STAN) captureState() (*seqState, error) {
	if !s.fit {
		return nil, ErrNotFitted
	}
	return &seqState{
		Kind: "STAN", Rank: s.rank,
		Users: s.embUser.N, POIs: s.embPOI.N, Times: s.embTime.N,
		Params: map[string][]float64{
			"user.W": s.embUser.W,
			"poi.W":  s.embPOI.W,
			"time.W": s.embTime.W,
		},
		Sequences: s.seqs,
	}, nil
}

// SaveSeqState writes the model's weights and serving state to path with the
// crash-safe temp+fsync+rename protocol and rotation (keep older copies as
// path.1 … path.keep). fs may be nil for the real filesystem.
func SaveSeqState(fs fault.FS, path string, keep int, generation uint64, m SeqServer) error {
	st, err := m.captureState()
	if err != nil {
		return err
	}
	st.Generation = generation
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("baselines: encoding %s state: %w", st.Kind, err)
	}
	return fault.WriteFileRotate(fs, path, keep, func(w io.Writer) error {
		return fault.WriteFramed(w, SeqStateVersion, payload)
	})
}

// LoadSeqState reads a state file written by SaveSeqState and rebuilds the
// model, returning it with the generation recorded at save time. dist must be
// the same POI distance matrix the model was trained with (STRNN and STGN
// consume Δd transition features at query time); STAN ignores it.
func LoadSeqState(path string, dist *geo.DistanceMatrix) (SeqServer, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	version, payload, err := fault.ReadFramed(data)
	if version > SeqStateVersion {
		// The version gate fires before the checksum verdict so a newer
		// format is reported as such, not as corruption.
		return nil, 0, fmt.Errorf("%w: %d > %d", ErrSeqStateVersion, version, SeqStateVersion)
	}
	if err != nil {
		return nil, 0, fmt.Errorf("baselines: reading %s: %w", path, err)
	}
	var st seqState
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, 0, fmt.Errorf("baselines: decoding %s: %w", path, err)
	}
	m, err := restoreSeq(&st, dist)
	if err != nil {
		return nil, 0, fmt.Errorf("baselines: restoring %s: %w", path, err)
	}
	return m, st.Generation, nil
}

// LoadSeqStateFallback walks the rotation ladder (path, path.1, … path.depth)
// and loads the newest intact state file, mirroring the model snapshot
// recovery policy: torn or corrupt rungs fall back to the next older copy.
func LoadSeqStateFallback(path string, depth int, dist *geo.DistanceMatrix) (SeqServer, uint64, string, error) {
	var firstErr error
	for _, p := range fault.FallbackPaths(path, depth) {
		m, gen, err := LoadSeqState(p, dist)
		if err == nil {
			return m, gen, p, nil
		}
		if firstErr == nil && !errors.Is(err, os.ErrNotExist) {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("baselines: opening %s: %w", path, os.ErrNotExist)
	}
	return nil, 0, "", fmt.Errorf("baselines: no loadable sequential state at %s (depth %d): %w", path, depth, firstErr)
}

func restoreSeq(st *seqState, dist *geo.DistanceMatrix) (SeqServer, error) {
	if st.Rank <= 0 || st.Users <= 0 || st.POIs <= 0 || st.Times <= 0 {
		return nil, fmt.Errorf("invalid dims rank=%d users=%d pois=%d times=%d", st.Rank, st.Users, st.POIs, st.Times)
	}
	// Constructors need an RNG for initialization; every weight is then
	// overwritten from the file, so the seed is irrelevant.
	rng := rand.New(rand.NewSource(1))
	r := st.Rank
	switch st.Kind {
	case "STRNN":
		if dist == nil {
			return nil, fmt.Errorf("STRNN needs the training distance matrix")
		}
		s := NewSTRNN()
		s.rank = r
		s.embPOI = nn.NewEmbedding("strnn.poi", st.POIs, r, rng)
		s.embTime = nn.NewEmbedding("strnn.time", st.Times, r, rng)
		s.cell = nn.NewRNNCell("strnn.cell", r+2, r, rng)
		if err := fillParams(st.Params, map[string][]float64{
			"poi.W": s.embPOI.W, "time.W": s.embTime.W,
			"cell.Wx": s.cell.Wx, "cell.Wh": s.cell.Wh, "cell.B": s.cell.B,
		}); err != nil {
			return nil, err
		}
		if err := checkFinalH(st.FinalH, st.Users, r); err != nil {
			return nil, err
		}
		s.finalH = st.FinalH
		s.dist = dist
		s.fit = true
		return s, nil
	case "STGN":
		if dist == nil {
			return nil, fmt.Errorf("STGN needs the training distance matrix")
		}
		s := NewSTGN()
		s.rank = r
		s.embPOI = nn.NewEmbedding("stgn.poi", st.POIs, r, rng)
		s.embTime = nn.NewEmbedding("stgn.time", st.Times, r, rng)
		s.cell = nn.NewSTLSTMCell("stgn.cell", r, r, rng)
		if err := fillParams(st.Params, map[string][]float64{
			"poi.W": s.embPOI.W, "time.W": s.embTime.W,
			"cell.W": s.cell.W, "cell.B": s.cell.B,
			"cell.WxT": s.cell.WxT, "cell.WtT": s.cell.WtT, "cell.BT": s.cell.BT,
			"cell.WxD": s.cell.WxD, "cell.WdD": s.cell.WdD, "cell.BD": s.cell.BD,
		}); err != nil {
			return nil, err
		}
		if err := checkFinalH(st.FinalH, st.Users, r); err != nil {
			return nil, err
		}
		s.finalH = st.FinalH
		s.dist = dist
		s.fit = true
		return s, nil
	case "STAN":
		s := NewSTAN()
		s.rank = r
		s.embUser = nn.NewEmbedding("stan.user", st.Users, r, rng)
		s.embPOI = nn.NewEmbedding("stan.poi", st.POIs, r, rng)
		s.embTime = nn.NewEmbedding("stan.time", st.Times, r, rng)
		s.attn = &nn.Attention{Dim: r}
		if err := fillParams(st.Params, map[string][]float64{
			"user.W": s.embUser.W, "poi.W": s.embPOI.W, "time.W": s.embTime.W,
		}); err != nil {
			return nil, err
		}
		if len(st.Sequences) != st.Users {
			return nil, fmt.Errorf("sequences for %d users, want %d", len(st.Sequences), st.Users)
		}
		for i, seq := range st.Sequences {
			for _, v := range seq {
				if v.POI < 0 || v.POI >= st.POIs || v.TimeIndex < 0 || v.TimeIndex >= st.Times {
					return nil, fmt.Errorf("user %d has out-of-range visit (%d,%d)", i, v.POI, v.TimeIndex)
				}
			}
		}
		s.seqs = st.Sequences
		s.ctxCache = make(map[int64][]float64)
		s.fit = true
		return s, nil
	}
	return nil, fmt.Errorf("unknown sequential model kind %q", st.Kind)
}

// fillParams copies each named parameter from the file into the freshly
// constructed tensors, validating presence and exact length.
func fillParams(got map[string][]float64, want map[string][]float64) error {
	for name, dst := range want {
		src, ok := got[name]
		if !ok {
			return fmt.Errorf("missing parameter %q", name)
		}
		if len(src) != len(dst) {
			return fmt.Errorf("parameter %q has %d values, want %d", name, len(src), len(dst))
		}
		copy(dst, src)
	}
	return nil
}

func checkFinalH(finalH [][]float64, users, rank int) error {
	if len(finalH) != users {
		return fmt.Errorf("final states for %d users, want %d", len(finalH), users)
	}
	for i, h := range finalH {
		if len(h) != rank {
			return fmt.Errorf("final state of user %d has rank %d, want %d", i, len(h), rank)
		}
	}
	return nil
}
