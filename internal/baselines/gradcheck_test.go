// Differential verification of the gradient-trained baselines through the
// internal/check harness, plus residual cross-checks for the ALS solvers.
// This file lives in the internal test package so it can reach trainStep and
// the un-exported network internals; check itself does not import baselines,
// so no cycle arises.
package baselines

import (
	"math"
	"math/rand"
	"testing"

	"tcss/internal/check"
	"tcss/internal/nn"
	"tcss/internal/tensor"
)

// gradcheckEntries exercises both BCE branches: an observed positive and a
// sampled negative.
var gradcheckEntries = []tensor.Entry{
	{I: 1, J: 2, K: 3, Val: 1},
	{I: 4, J: 0, K: 1, Val: 0},
}

func layerCheckParams(layers []nn.Layer) []check.Param {
	var out []check.Param
	for _, l := range layers {
		for _, p := range l.Params() {
			out = append(out, check.Param{Name: p.Name, Value: p.Value, Grad: p.Grad})
		}
	}
	return out
}

// TestGradcheckNCF verifies NCF.trainStep's backward pass — both the GMF
// product routing and the MLP path — against central differences of the BCE
// loss it descends.
func TestGradcheckNCF(t *testing.T) {
	n := NewNCF()
	n.build([3]int{6, 5, 4}, 3, rand.New(rand.NewSource(3)))
	layers := n.layers()
	params := layerCheckParams(layers)
	for _, e := range gradcheckEntries {
		e := e
		f := func() float64 {
			for _, l := range layers {
				l.ZeroGrad()
			}
			n.trainStep(e)
			logit, _, _, _, _ := n.forward(e.I, e.J, e.K)
			return logLoss(logit, e.Val)
		}
		check.Assert(t, f, params, check.Options{})
	}
}

// TestGradcheckNTM verifies NTM's generalized-CP + MLP gradient, including
// the shared dProd routing into all three embeddings.
func TestGradcheckNTM(t *testing.T) {
	n := NewNTM()
	rng := rand.New(rand.NewSource(5))
	n.rank = 3
	dims := [3]int{6, 5, 4}
	names := [3]string{"user", "poi", "time"}
	for m := 0; m < 3; m++ {
		n.emb[m] = nn.NewEmbedding("ntm."+names[m], dims[m], 3, rng)
	}
	n.mlp = nn.NewMLP("ntm.mlp", 3, n.Hidden, 1, nn.ReLU, rng)
	n.w = nn.NewDense("ntm.gcp", 3, 1, rng)
	layers := []nn.Layer{n.emb[0], n.emb[1], n.emb[2], n.mlp, n.w}
	params := layerCheckParams(layers)
	// At init the embedding products are ~0, parking every ReLU
	// pre-activation exactly on its zero bias — the kink, where central
	// differences are meaningless. Jitter all parameters to a generic point.
	for _, p := range params {
		for i, v := range check.RandomVector(len(p.Value), 0.3, 17) {
			p.Value[i] += v
		}
	}
	for _, e := range gradcheckEntries {
		e := e
		f := func() float64 {
			for _, l := range layers {
				l.ZeroGrad()
			}
			n.trainStep(e)
			prod := n.product(e.I, e.J, e.K)
			return logLoss(n.w.Forward(prod)[0]+n.mlp.Forward(prod)[0], e.Val)
		}
		check.Assert(t, f, params, check.Options{})
	}
}

// TestGradcheckCoSTCo verifies the hand-written convolution backward passes
// (conv1 mode mixing, conv2 rank aggregation, ReLU gates) plus the head MLP
// and embedding routing.
func TestGradcheckCoSTCo(t *testing.T) {
	c := NewCoSTCo()
	c.build([3]int{6, 5, 4}, 3, rand.New(rand.NewSource(7)))
	params := layerCheckParams([]nn.Layer{c.emb[0], c.emb[1], c.emb[2], c.head})
	params = append(params,
		check.Param{Name: "costco.w1", Value: c.w1, Grad: c.gw1},
		check.Param{Name: "costco.b1", Value: c.b1, Grad: c.gb1},
		check.Param{Name: "costco.w2", Value: c.w2, Grad: c.gw2},
		check.Param{Name: "costco.b2", Value: c.b2, Grad: c.gb2})
	for _, e := range gradcheckEntries {
		e := e
		f := func() float64 {
			c.zeroGrad()
			c.trainStep(e)
			return logLoss(c.forward(e.I, e.J, e.K).logit, e.Val)
		}
		check.Assert(t, f, params, check.Options{})
	}
}

// denseResidual computes ‖X − X̂‖²_F by brute force over every cell of the
// tensor, the reference the sparse Gram-identity implementations are checked
// against.
func denseResidual(x *tensor.COO, score func(i, j, k int) float64) float64 {
	dense := make(map[[3]int]float64, x.NNZ())
	for _, e := range x.Entries() {
		dense[[3]int{e.I, e.J, e.K}] = e.Val
	}
	var sum float64
	for i := 0; i < x.DimI; i++ {
		for j := 0; j < x.DimJ; j++ {
			for k := 0; k < x.DimK; k++ {
				d := dense[[3]int{i, j, k}] - score(i, j, k)
				sum += d * d
			}
		}
	}
	return sum
}

// TestCPFitErrorMatchesDense differentially checks CP.FitError's sparse Gram
// identity against the brute-force dense residual.
func TestCPFitErrorMatchesDense(t *testing.T) {
	fx := check.NewTrainFixture(21)
	c := NewCP()
	if err := c.Fit(&Context{Train: fx.Train, Rank: 3, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	got := c.FitError(fx.Train)
	want := denseResidual(fx.Train, c.Score)
	if rel := math.Abs(got-want) / (1 + math.Abs(want)); rel > 1e-9 {
		t.Fatalf("FitError %.12g vs dense residual %.12g (rel %g)", got, want, rel)
	}
}

// TestTuckerResidualNonIncreasing checks that additional HOOI sweeps never
// worsen the full-tensor reconstruction, the defining property of the
// alternating update.
func TestTuckerResidualNonIncreasing(t *testing.T) {
	fx := check.NewTrainFixture(22)
	residual := func(sweeps int) float64 {
		tk := NewTucker()
		tk.Sweeps = sweeps
		if err := tk.Fit(&Context{Train: fx.Train, Rank: 3, Seed: 4}); err != nil {
			t.Fatal(err)
		}
		return denseResidual(fx.Train, tk.Score)
	}
	prev := residual(1)
	for _, sweeps := range []int{2, 4} {
		cur := residual(sweeps)
		if cur > prev*(1+1e-9) {
			t.Fatalf("residual rose from %.12g (fewer sweeps) to %.12g (%d sweeps)", prev, cur, sweeps)
		}
		prev = cur
	}
}
