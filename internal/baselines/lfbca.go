package baselines

import (
	"fmt"
)

// LFBCA (Wang et al., SIGSPATIAL 2013) is the location-friendship
// bookmark-coloring algorithm: a personalized-PageRank-style random walk
// with restart over a heterogeneous graph whose nodes are users and POIs.
// Following the published construction, the user-user edges combine the
// social friendship graph with *location friends* — pairs of users whose
// check-in sets overlap geographically — and user-POI edges carry the
// user's visit counts. The stationary visiting probability of POI j from
// user i is the recommendation score; the time index is ignored, as in the
// original model.
type LFBCA struct {
	// Alpha is the walk continuation probability (1−restart).
	Alpha float64
	// FriendWeight scales social user-user edges relative to check-in edges.
	FriendWeight float64
	// LocationWeight scales location-friend edges per shared POI.
	LocationWeight float64
	// MinShared is the number of distinct shared POIs required before two
	// users count as location friends.
	MinShared int
	// Iterations bounds the power iteration.
	Iterations int

	numUsers, numPOIs int
	adj               [][]weightedEdge
	cache             map[int][]float64
	fit               bool
}

type weightedEdge struct {
	to int
	w  float64
}

// NewLFBCA returns the LFBCA baseline with the standard damping 0.85.
func NewLFBCA() *LFBCA {
	return &LFBCA{Alpha: 0.85, FriendWeight: 1.0, LocationWeight: 0.3, MinShared: 2, Iterations: 25}
}

// Name implements Recommender.
func (l *LFBCA) Name() string { return "LFBCA" }

// Fit implements Recommender by building the heterogeneous graph. Nodes
// 0..I-1 are users; nodes I..I+J-1 are POIs.
func (l *LFBCA) Fit(ctx *Context) error {
	if ctx.Social == nil {
		return fmt.Errorf("baselines: LFBCA needs the social graph")
	}
	I, J := ctx.Train.DimI, ctx.Train.DimJ
	l.numUsers, l.numPOIs = I, J
	l.adj = make([][]weightedEdge, I+J)
	add := func(a, b int, w float64) {
		l.adj[a] = append(l.adj[a], weightedEdge{to: b, w: w})
		l.adj[b] = append(l.adj[b], weightedEdge{to: a, w: w})
	}
	for _, e := range ctx.Social.Edges() {
		add(e[0], e[1], l.FriendWeight)
	}
	// User-POI edges, one per distinct (user, POI) pair, weighted by the
	// number of time units the user visited the POI in.
	type pair struct{ i, j int }
	counts := make(map[pair]int)
	visited := make([]map[int]struct{}, I)
	for i := range visited {
		visited[i] = make(map[int]struct{})
	}
	for _, e := range ctx.Train.Entries() {
		counts[pair{e.I, e.J}]++
		visited[e.I][e.J] = struct{}{}
	}
	for p, c := range counts {
		add(p.i, I+p.j, float64(c))
	}
	// Location friends: users sharing at least MinShared distinct POIs,
	// found through per-POI visitor lists so the cost is proportional to
	// co-visitation rather than all user pairs.
	if l.LocationWeight > 0 && l.MinShared > 0 {
		visitors := make([][]int, J)
		for i, set := range visited {
			for j := range set {
				visitors[j] = append(visitors[j], i)
			}
		}
		shared := make(map[pair]int)
		for _, vs := range visitors {
			for a := 0; a < len(vs); a++ {
				for b := a + 1; b < len(vs); b++ {
					shared[pair{vs[a], vs[b]}]++
				}
			}
		}
		for p, c := range shared {
			if c >= l.MinShared && !ctx.Social.HasEdge(p.i, p.j) {
				add(p.i, p.j, l.LocationWeight*float64(c))
			}
		}
	}
	l.cache = make(map[int][]float64)
	l.fit = true
	return nil
}

// ppr runs the power iteration for one user and caches the result.
func (l *LFBCA) ppr(i int) []float64 {
	if v, ok := l.cache[i]; ok {
		return v
	}
	n := len(l.adj)
	outW := make([]float64, n)
	for u, edges := range l.adj {
		for _, e := range edges {
			outW[u] += e.w
		}
	}
	p := make([]float64, n)
	next := make([]float64, n)
	p[i] = 1
	for it := 0; it < l.Iterations; it++ {
		for u := range next {
			next[u] = 0
		}
		next[i] += 1 - l.Alpha
		for u, mass := range p {
			if mass == 0 || outW[u] == 0 {
				// Dangling mass restarts.
				next[i] += l.Alpha * mass
				continue
			}
			scale := l.Alpha * mass / outW[u]
			for _, e := range l.adj[u] {
				next[e.to] += scale * e.w
			}
		}
		p, next = next, p
	}
	l.cache[i] = p
	return p
}

// Score implements Recommender; the time index is ignored.
func (l *LFBCA) Score(i, j, _ int) float64 {
	if !l.fit {
		panic("baselines: LFBCA.Score before Fit")
	}
	return l.ppr(i)[l.numUsers+j]
}
