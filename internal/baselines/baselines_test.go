package baselines

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"tcss/internal/eval"
	"tcss/internal/geo"
	"tcss/internal/graph"
	"tcss/internal/tensor"
)

// fixture builds a small two-community problem: users 0..7 visit POIs 0..5,
// users 8..15 visit POIs 6..11, with friendships inside communities and POIs
// clustered in two geographic areas. Community 0 prefers early time units,
// community 1 late ones.
type fixture struct {
	ctx  *Context
	test []tensor.Entry
}

func newFixture(seed int64) *fixture {
	rng := rand.New(rand.NewSource(seed))
	const I, J, K = 16, 12, 4
	full := tensor.NewCOO(I, J, K)
	for u := 0; u < I; u++ {
		lo, hi, kOff := 0, J/2, 0
		if u >= I/2 {
			lo, hi, kOff = J/2, J, 2
		}
		for n := 0; n < 12; n++ {
			full.Set(u, lo+rng.Intn(hi-lo), kOff+rng.Intn(2), 1)
		}
	}
	train, test := full.Split(0.8, rng)

	social := graph.New(I)
	for u := 0; u < I; u++ {
		for v := u + 1; v < I; v++ {
			if (u < I/2) == (v < I/2) && rng.Float64() < 0.5 {
				social.AddEdge(u, v)
			}
		}
	}
	graph.EnsureMinDegree(social, 1, rng)

	pts := make([]geo.Point, J)
	for j := range pts {
		base := geo.Point{Lat: 30, Lon: -97}
		if j >= J/2 {
			base = geo.Point{Lat: 30.5, Lon: -97.6}
		}
		pts[j] = geo.Jitter(base, 0.01, rng)
	}
	return &fixture{
		ctx: &Context{
			Train:  train,
			Social: social,
			Dist:   geo.NewDistanceMatrix(pts),
			Rank:   4,
			Epochs: 6,
			Seed:   seed,
		},
		test: test,
	}
}

// evalModel fits and evaluates one model on the fixture.
func evalModel(t *testing.T, fx *fixture, m Recommender) eval.Result {
	t.Helper()
	if err := m.Fit(fx.ctx); err != nil {
		t.Fatalf("%s: Fit: %v", m.Name(), err)
	}
	return eval.Rank(m, fx.test, fx.ctx.Train.DimJ, eval.Config{Negatives: 11, TopK: 3, Seed: 9})
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 13 {
		t.Fatalf("Registry has %d models, want 13", len(reg))
	}
	seen := map[string]bool{}
	for _, r := range reg {
		if seen[r.Name()] {
			t.Fatalf("duplicate model name %q", r.Name())
		}
		seen[r.Name()] = true
	}
	for _, want := range []string{"MCCO", "PureSVD", "STRNN", "STAN", "STGN", "LFBCA", "CP", "Tucker", "P-Tucker", "TenInt", "NCF", "NTM", "CoSTCo"} {
		if !seen[want] {
			t.Fatalf("registry missing %q", want)
		}
	}
}

func TestLookup(t *testing.T) {
	m, err := Lookup("CP")
	if err != nil || m.Name() != "CP" {
		t.Fatalf("Lookup(CP) = %v, %v", m, err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown name must error")
	}
}

// Every model must clearly beat the ranked-last MRR of 1/12 ≈ 0.083 (what a
// constant or broken scorer gets under pessimistic tie-breaking) on the
// community-structured fixture. Models that exploit the community/time
// structure well must additionally beat the random-guess MRR
// (H(12)/12 ≈ 0.26). Time-ignoring models (MCCO, PureSVD, LFBCA) and
// missing-value models (P-Tucker) legitimately rank already-observed train
// positives above held-out test positives, so only the lower bar applies to
// them — the same reason the paper's Table I shows matrix completion last.
func TestAllModelsBeatBrokenScorer(t *testing.T) {
	fx := newFixture(1)
	// TenInt's social regularizer pulls same-community user factors together,
	// which on this 16-user fixture flattens within-community discrimination.
	lowBarOnly := map[string]bool{"MCCO": true, "PureSVD": true, "LFBCA": true, "P-Tucker": true, "TenInt": true}
	for _, m := range Registry() {
		res := evalModel(t, fx, m)
		if math.IsNaN(res.MRR) {
			t.Fatalf("%s produced NaN MRR", m.Name())
		}
		if res.MRR <= 0.12 {
			t.Errorf("%s MRR %.4f no better than a broken scorer", m.Name(), res.MRR)
			continue
		}
		if !lowBarOnly[m.Name()] && res.MRR <= 0.26 {
			t.Errorf("%s MRR %.4f did not beat chance 0.26", m.Name(), res.MRR)
		}
	}
}

func TestCPFitErrorDecreasesWithSweeps(t *testing.T) {
	fx := newFixture(2)
	errAt := func(sweeps int) float64 {
		cp := NewCP()
		cp.Sweeps = sweeps
		if err := cp.Fit(fx.ctx); err != nil {
			t.Fatal(err)
		}
		return cp.FitError(fx.ctx.Train)
	}
	e1, e8 := errAt(1), errAt(8)
	if e8 > e1+1e-9 {
		t.Fatalf("more ALS sweeps must not increase fit error: 1 sweep %g, 8 sweeps %g", e1, e8)
	}
	// The rank-4 fit must explain some of the data.
	if e8 >= fx.ctx.Train.FrobNormSq() {
		t.Fatalf("CP fit error %g no better than the zero model %g", e8, fx.ctx.Train.FrobNormSq())
	}
}

func TestCPRejectsZeroRank(t *testing.T) {
	fx := newFixture(3)
	fx.ctx.Rank = 0
	if err := NewCP().Fit(fx.ctx); err == nil {
		t.Fatal("rank 0 must error")
	}
}

func TestTuckerFactorsOrthonormal(t *testing.T) {
	fx := newFixture(4)
	tk := NewTucker()
	if err := tk.Fit(fx.ctx); err != nil {
		t.Fatal(err)
	}
	for name, u := range map[string]interface {
		At(i, j int) float64
	}{"U1": tk.u1.Gram(), "U2": tk.u2.Gram(), "U3": tk.u3.Gram()} {
		r := tk.r
		for a := 0; a < r; a++ {
			for b := 0; b < r; b++ {
				want := 0.0
				if a == b {
					want = 1
				}
				if math.Abs(u.At(a, b)-want) > 1e-6 {
					t.Fatalf("%s not orthonormal at (%d,%d): %g", name, a, b, u.At(a, b))
				}
			}
		}
	}
}

func TestTuckerRankClampedToTimeDim(t *testing.T) {
	fx := newFixture(5)
	fx.ctx.Rank = 10 // exceeds K = 4
	tk := NewTucker()
	if err := tk.Fit(fx.ctx); err != nil {
		t.Fatal(err)
	}
	if tk.r != 4 {
		t.Fatalf("rank clamp: got %d, want 4", tk.r)
	}
}

func TestPTuckerSeparatesObserved(t *testing.T) {
	fx := newFixture(6)
	pt := NewPTucker()
	if err := pt.Fit(fx.ctx); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var obsMean, negMean float64
	entries := fx.ctx.Train.Entries()
	for _, e := range entries {
		obsMean += pt.Score(e.I, e.J, e.K)
	}
	obsMean /= float64(len(entries))
	const nNeg = 200
	for n := 0; n < nNeg; n++ {
		i, j, k := rng.Intn(16), rng.Intn(12), rng.Intn(4)
		if fx.ctx.Train.Has(i, j, k) {
			continue
		}
		negMean += pt.Score(i, j, k) / nNeg
	}
	if obsMean <= negMean {
		t.Fatalf("P-Tucker observed mean %g must exceed unobserved mean %g", obsMean, negMean)
	}
}

func TestPureSVDExactOnLowRank(t *testing.T) {
	// A tensor whose user-POI matrix is rank 2 must be reconstructed
	// (almost) exactly by rank-4 PureSVD.
	x := tensor.NewCOO(6, 6, 2)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if (i < 3) == (j < 3) {
				x.Set(i, j, 0, 1)
			}
		}
	}
	ctx := &Context{Train: x, Rank: 4, Seed: 1}
	p := NewPureSVD()
	if err := p.Fit(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := 0.0
			if (i < 3) == (j < 3) {
				want = 1
			}
			if math.Abs(p.Score(i, j, 0)-want) > 1e-6 {
				t.Fatalf("PureSVD(%d,%d) = %g, want %g", i, j, p.Score(i, j, 0), want)
			}
		}
	}
	// Time index must be irrelevant.
	if p.Score(0, 0, 0) != p.Score(0, 0, 1) {
		t.Fatal("PureSVD must ignore the time index")
	}
}

func TestMCCOPreservesObserved(t *testing.T) {
	fx := newFixture(7)
	m := NewMCCO()
	if err := m.Fit(fx.ctx); err != nil {
		t.Fatal(err)
	}
	for _, e := range fx.ctx.Train.Entries() {
		if got := m.Score(e.I, e.J, 0); math.Abs(got-1) > 1e-9 {
			t.Fatalf("MCCO must keep observed entries fixed, got %g", got)
		}
	}
}

func TestNeuralModelsSeparateClasses(t *testing.T) {
	fx := newFixture(8)
	for _, m := range []Recommender{NewNCF(), NewNTM(), NewCoSTCo()} {
		if err := m.Fit(fx.ctx); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		var pos float64
		entries := fx.ctx.Train.Entries()
		for _, e := range entries {
			s := m.Score(e.I, e.J, e.K)
			if s < 0 || s > 1 {
				t.Fatalf("%s score %g outside [0,1]", m.Name(), s)
			}
			pos += s
		}
		pos /= float64(len(entries))
		rng := rand.New(rand.NewSource(2))
		var neg float64
		const nNeg = 200
		drawn := 0
		for drawn < nNeg {
			i, j, k := rng.Intn(16), rng.Intn(12), rng.Intn(4)
			if fx.ctx.Train.Has(i, j, k) {
				continue
			}
			neg += m.Score(i, j, k)
			drawn++
		}
		neg /= nNeg
		if pos <= neg {
			t.Errorf("%s: positive mean %g must exceed negative mean %g", m.Name(), pos, neg)
		}
	}
}

func TestSequentialModelsDeterministic(t *testing.T) {
	for _, name := range []string{"STRNN", "STGN", "STAN"} {
		a, _ := Lookup(name)
		b, _ := Lookup(name)
		fxA, fxB := newFixture(9), newFixture(9)
		if err := a.Fit(fxA.ctx); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := b.Fit(fxB.ctx); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for n := 0; n < 20; n++ {
			i, j, k := n%16, (n*5)%12, n%4
			if a.Score(i, j, k) != b.Score(i, j, k) {
				t.Fatalf("%s not deterministic under a fixed seed", name)
			}
		}
	}
}

func TestSequencesOrderedAndTrainOnly(t *testing.T) {
	fx := newFixture(10)
	seqs := fx.ctx.Sequences()
	if len(seqs) != fx.ctx.Train.DimI {
		t.Fatal("one sequence per user")
	}
	var total int
	for i, seq := range seqs {
		total += len(seq)
		for s := 1; s < len(seq); s++ {
			if seq[s].TimeIndex < seq[s-1].TimeIndex {
				t.Fatalf("user %d sequence not time-ordered", i)
			}
		}
		for _, v := range seq {
			if !fx.ctx.Train.Has(i, v.POI, v.TimeIndex) {
				t.Fatal("sequence contains a non-training visit")
			}
		}
	}
	if total != fx.ctx.Train.NNZ() {
		t.Fatalf("sequences contain %d visits, train has %d", total, fx.ctx.Train.NNZ())
	}
}

func TestLFBCAMassAndSocialStructure(t *testing.T) {
	fx := newFixture(11)
	l := NewLFBCA()
	if err := l.Fit(fx.ctx); err != nil {
		t.Fatal(err)
	}
	p := l.ppr(0)
	var mass float64
	for _, v := range p {
		mass += v
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("PPR mass = %g, want 1", mass)
	}
	// A user from community 0 must on average score community-0 POIs
	// (visited by the user and friends) above community-1 POIs.
	var own, other float64
	for j := 0; j < 6; j++ {
		own += l.Score(0, j, 0)
		other += l.Score(0, j+6, 0)
	}
	if own <= other {
		t.Fatalf("LFBCA community scores: own %g must exceed other %g", own, other)
	}
	// Time must be ignored.
	if l.Score(0, 1, 0) != l.Score(0, 1, 3) {
		t.Fatal("LFBCA must ignore the time index")
	}
}

func TestScoreBeforeFit(t *testing.T) {
	// The sequential models are servable (SeqServer): before Fit their Score
	// returns 0 and the serving entry points surface ErrNotFitted, which the
	// registry maps to HTTP 503. Every other baseline still panics.
	for _, m := range Registry() {
		if sm, ok := m.(SeqServer); ok {
			if got := m.Score(0, 0, 0); got != 0 {
				t.Errorf("%s: Score before Fit = %g, want 0", m.Name(), got)
			}
			if _, err := sm.RecommendTopN(0, 0, 1); !errors.Is(err, ErrNotFitted) {
				t.Errorf("%s: RecommendTopN before Fit err = %v, want ErrNotFitted", m.Name(), err)
			}
			if _, err := sm.NextTopN(0, []Visit{{POI: 0, TimeIndex: 0}}, 0, 1); !errors.Is(err, ErrNotFitted) {
				t.Errorf("%s: NextTopN before Fit err = %v, want ErrNotFitted", m.Name(), err)
			}
			if _, err := sm.captureState(); !errors.Is(err, ErrNotFitted) {
				t.Errorf("%s: captureState before Fit err = %v, want ErrNotFitted", m.Name(), err)
			}
			continue
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Score before Fit must panic", m.Name())
				}
			}()
			m.Score(0, 0, 0)
		}()
	}
}

func TestLogLoss(t *testing.T) {
	// Perfect confident predictions have near-zero loss.
	if l := logLoss(20, 1); l > 1e-6 {
		t.Fatalf("confident positive loss = %g", l)
	}
	if l := logLoss(-20, 0); l > 1e-6 {
		t.Fatalf("confident negative loss = %g", l)
	}
	// Wrong confident predictions are heavily penalized, stably.
	if l := logLoss(-40, 1); math.Abs(l-40) > 1e-6 {
		t.Fatalf("wrong positive loss = %g, want ≈40", l)
	}
	if math.IsNaN(logLoss(1000, 0)) || math.IsInf(logLoss(1000, 0), 0) {
		t.Fatal("logLoss must be stable for huge logits")
	}
}

func TestTenIntSocialRegularization(t *testing.T) {
	fx := newFixture(12)
	ti := NewTenInt()
	if err := ti.Fit(fx.ctx); err != nil {
		t.Fatal(err)
	}
	// Friend user factors must sit closer together than non-friend factors:
	// the social regularizer's defining effect.
	var friendPairs, otherPairs [][2]int
	for u := 0; u < fx.ctx.Train.DimI; u++ {
		for v := u + 1; v < fx.ctx.Train.DimI; v++ {
			if fx.ctx.Social.HasEdge(u, v) {
				friendPairs = append(friendPairs, [2]int{u, v})
			} else {
				otherPairs = append(otherPairs, [2]int{u, v})
			}
		}
	}
	if len(friendPairs) == 0 {
		t.Skip("fixture has no friendships")
	}
	df := ti.UserFactorDistance(friendPairs)
	do := ti.UserFactorDistance(otherPairs)
	if df >= do {
		t.Fatalf("friend factor distance %g must be below non-friend %g", df, do)
	}
	if ti.UserFactorDistance(nil) != 0 {
		t.Fatal("empty pair list must give 0")
	}
}

func TestTenIntNeedsSocialGraph(t *testing.T) {
	fx := newFixture(13)
	fx.ctx.Social = nil
	if err := NewTenInt().Fit(fx.ctx); err == nil {
		t.Fatal("TenInt without a social graph must error")
	}
}

func TestTenIntSocialWeightEffect(t *testing.T) {
	// With a huge social weight, friend factors nearly coincide.
	fx := newFixture(14)
	strong := NewTenInt()
	strong.Social = 100
	if err := strong.Fit(fx.ctx); err != nil {
		t.Fatal(err)
	}
	weak := NewTenInt()
	weak.Social = 0.001
	if err := weak.Fit(fx.ctx); err != nil {
		t.Fatal(err)
	}
	var pairs [][2]int
	for _, e := range fx.ctx.Social.Edges() {
		pairs = append(pairs, e)
	}
	if strong.UserFactorDistance(pairs) >= weak.UserFactorDistance(pairs) {
		t.Fatal("stronger social weight must shrink friend factor distances")
	}
}
