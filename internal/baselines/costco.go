package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"tcss/internal/nn"
	"tcss/internal/tensor"
	"tcss/internal/train"
)

// CoSTCo (Liu et al., KDD 2019) is a convolutional tensor completion model:
// the three mode embeddings are stacked into a 3×r "image", a first
// convolution with kernel 3×1 mixes the modes at each rank position into c
// channels, a second convolution with kernel 1×r aggregates over rank
// positions, and a small fully connected head produces the sigmoid score.
// The shared convolution kernels preserve the low-rank structure while the
// nonlinearities capture factor interactions.
type CoSTCo struct {
	Channels int
	LR       float64

	emb [3]*nn.Embedding
	// conv1: Channels × 3 kernel + bias (shared across the r positions).
	w1, b1, gw1, gb1 []float64
	// conv2: Channels × (Channels × r) kernel + bias.
	w2, b2, gw2, gb2 []float64
	head             *nn.MLP
	rank             int
	fit              bool
}

// NewCoSTCo returns the CoSTCo baseline with the channel width used in the
// experiments.
func NewCoSTCo() *CoSTCo { return &CoSTCo{Channels: 8, LR: 0.01} }

// Name implements Recommender.
func (c *CoSTCo) Name() string { return "CoSTCo" }

// Fit implements Recommender. Training is a mini-batch run of the
// internal/train engine; the raw convolution kernels join the layer
// parameters as explicit engine groups.
func (c *CoSTCo) Fit(ctx *Context) error {
	x := ctx.Train
	r := ctx.Rank
	if r <= 0 {
		return fmt.Errorf("baselines: CoSTCo needs positive rank, got %d", r)
	}
	rng := train.NewRNG(ctx.Seed)
	c.build([3]int{x.DimI, x.DimJ, x.DimK}, r, rng.Rand)

	groups := layerGroups(train.GroupSet{
		{Name: "costco.w1", Value: c.w1, Grad: c.gw1},
		{Name: "costco.b1", Value: c.b1, Grad: c.gb1},
		{Name: "costco.w2", Value: c.w2, Grad: c.gw2},
		{Name: "costco.b2", Value: c.b2, Grad: c.gb2},
	}, c.emb[0], c.emb[1], c.emb[2], c.head)
	if err := fitEngine(ctx, c.LR, groups, c.trainStep, rng); err != nil {
		return err
	}
	c.fit = true
	return nil
}

// build initializes the network for the given tensor dims and rank. Split
// from Fit so the gradient-check tests can construct a training-shaped model
// without running epochs.
func (c *CoSTCo) build(dims [3]int, r int, rng *rand.Rand) {
	c.rank = r
	ch := c.Channels
	names := [3]string{"user", "poi", "time"}
	for m := 0; m < 3; m++ {
		c.emb[m] = nn.NewEmbedding("costco."+names[m], dims[m], r, rng)
	}
	c.w1 = xavierSlice(ch*3, 3+ch, rng)
	c.b1 = make([]float64, ch)
	c.w2 = xavierSlice(ch*ch*r, ch*r+ch, rng)
	c.b2 = make([]float64, ch)
	// Small positive biases keep the ReLU units alive at initialization,
	// when the embedding products are still near zero.
	for i := range c.b1 {
		c.b1[i] = 0.1
	}
	for i := range c.b2 {
		c.b2[i] = 0.1
	}
	c.gw1 = make([]float64, len(c.w1))
	c.gb1 = make([]float64, ch)
	c.gw2 = make([]float64, len(c.w2))
	c.gb2 = make([]float64, ch)
	c.head = nn.NewMLP("costco.head", ch, []int{ch}, 1, nn.ReLU, rng)
}

// zeroGrad clears every gradient accumulator, the test-facing counterpart of
// step's post-update clear.
func (c *CoSTCo) zeroGrad() {
	zeroSlice(c.gw1)
	zeroSlice(c.gb1)
	zeroSlice(c.gw2)
	zeroSlice(c.gb2)
	c.emb[0].ZeroGrad()
	c.emb[1].ZeroGrad()
	c.emb[2].ZeroGrad()
	c.head.ZeroGrad()
}

func xavierSlice(n, fan int, rng *rand.Rand) []float64 {
	w := make([]float64, n)
	limit := math.Sqrt(6 / float64(fan))
	for i := range w {
		w[i] = (2*rng.Float64() - 1) * limit
	}
	return w
}

// forward computes the network, returning the logit and intermediates.
// stack[m*r+t] is mode m's embedding at position t. pre1/out1 have ch·r
// entries (channel-major); pre2/out2 have ch entries.
type costcoCache struct {
	stack, pre1, out1, pre2, out2, headIn []float64
	logit                                 float64
}

func (c *CoSTCo) forward(i, j, k int) *costcoCache {
	r, ch := c.rank, c.Channels
	cc := &costcoCache{
		stack: make([]float64, 3*r),
		pre1:  make([]float64, ch*r),
		out1:  make([]float64, ch*r),
		pre2:  make([]float64, ch),
		out2:  make([]float64, ch),
	}
	copy(cc.stack, c.emb[0].Lookup(i))
	copy(cc.stack[r:], c.emb[1].Lookup(j))
	copy(cc.stack[2*r:], c.emb[2].Lookup(k))
	// Conv 1: mixes the 3 modes at each rank position t (kernel 3×1).
	for o := 0; o < ch; o++ {
		for t := 0; t < r; t++ {
			s := c.b1[o]
			for m := 0; m < 3; m++ {
				s += c.w1[o*3+m] * cc.stack[m*r+t]
			}
			cc.pre1[o*r+t] = s
			if s > 0 {
				cc.out1[o*r+t] = s
			}
		}
	}
	// Conv 2: aggregates all positions of all channels (kernel 1×r over
	// every input channel).
	for o := 0; o < ch; o++ {
		s := c.b2[o]
		base := o * ch * r
		for in := 0; in < ch; in++ {
			for t := 0; t < r; t++ {
				s += c.w2[base+in*r+t] * cc.out1[in*r+t]
			}
		}
		cc.pre2[o] = s
		if s > 0 {
			cc.out2[o] = s
		}
	}
	cc.headIn = cc.out2
	cc.logit = c.head.Forward(cc.headIn)[0]
	return cc
}

func (c *CoSTCo) trainStep(e tensor.Entry) float64 {
	cc := c.forward(e.I, e.J, e.K)
	pred := nn.SigmoidF(cc.logit)
	dLogit := pred - e.Val

	r, ch := c.rank, c.Channels
	dOut2 := c.head.Backward(cc.headIn, []float64{dLogit})
	// Conv2 backward.
	dOut1 := make([]float64, ch*r)
	for o := 0; o < ch; o++ {
		if cc.pre2[o] <= 0 {
			continue // ReLU gate
		}
		g := dOut2[o]
		c.gb2[o] += g
		base := o * ch * r
		for in := 0; in < ch; in++ {
			for t := 0; t < r; t++ {
				c.gw2[base+in*r+t] += g * cc.out1[in*r+t]
				dOut1[in*r+t] += g * c.w2[base+in*r+t]
			}
		}
	}
	// Conv1 backward.
	dStack := make([]float64, 3*r)
	for o := 0; o < ch; o++ {
		for t := 0; t < r; t++ {
			if cc.pre1[o*r+t] <= 0 {
				continue
			}
			g := dOut1[o*r+t]
			c.gb1[o] += g
			for m := 0; m < 3; m++ {
				c.gw1[o*3+m] += g * cc.stack[m*r+t]
				dStack[m*r+t] += g * c.w1[o*3+m]
			}
		}
	}
	c.emb[0].Accumulate(e.I, dStack[:r])
	c.emb[1].Accumulate(e.J, dStack[r:2*r])
	c.emb[2].Accumulate(e.K, dStack[2*r:])
	return logLoss(cc.logit, e.Val)
}

func zeroSlice(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Score implements Recommender.
func (c *CoSTCo) Score(i, j, k int) float64 {
	if !c.fit {
		panic("baselines: CoSTCo.Score before Fit")
	}
	return nn.SigmoidF(c.forward(i, j, k).logit)
}
