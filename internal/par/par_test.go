package par

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestShardsCoverEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 101} {
		for _, w := range []int{0, 1, 2, 3, 8, 200} {
			shards := Shards(n, w)
			seen := make([]int, n)
			prevEnd := 0
			for idx, s := range shards {
				if s.Index != idx {
					t.Fatalf("n=%d w=%d: shard %d has Index %d", n, w, idx, s.Index)
				}
				if s.Start != prevEnd {
					t.Fatalf("n=%d w=%d: shard %d starts at %d, want %d", n, w, idx, s.Start, prevEnd)
				}
				if s.End < s.Start {
					t.Fatalf("n=%d w=%d: shard %d inverted [%d,%d)", n, w, idx, s.Start, s.End)
				}
				for i := s.Start; i < s.End; i++ {
					seen[i]++
				}
				prevEnd = s.End
			}
			if n > 0 && prevEnd != n {
				t.Fatalf("n=%d w=%d: shards end at %d", n, w, prevEnd)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d covered %d times", n, w, i, c)
				}
			}
			if n > 0 && len(shards) > n {
				t.Fatalf("n=%d w=%d: %d shards exceeds n", n, w, len(shards))
			}
		}
	}
}

func TestShardsBalanced(t *testing.T) {
	shards := Shards(10, 3)
	if len(shards) != 3 {
		t.Fatalf("want 3 shards, got %d", len(shards))
	}
	for _, s := range shards {
		size := s.End - s.Start
		if size < 3 || size > 4 {
			t.Fatalf("unbalanced shard %+v", s)
		}
	}
}

func TestDoRunsEveryIndex(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		var count atomic.Int64
		hit := make([]atomic.Bool, 1000)
		Do(1000, w, func(s Shard) {
			for i := s.Start; i < s.End; i++ {
				if hit[i].Swap(true) {
					t.Errorf("w=%d: index %d run twice", w, i)
				}
				count.Add(1)
			}
		})
		if count.Load() != 1000 {
			t.Fatalf("w=%d: ran %d of 1000", w, count.Load())
		}
	}
}

func TestSumFloatMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 10007)
	var serial float64
	for i := range xs {
		xs[i] = rng.NormFloat64()
		serial += xs[i]
	}
	shardSum := func(s Shard) float64 {
		var v float64
		for i := s.Start; i < s.End; i++ {
			v += xs[i]
		}
		return v
	}
	// workers=1 is bit-for-bit the serial loop.
	if got := SumFloat(len(xs), 1, shardSum); got != serial {
		t.Fatalf("workers=1 sum %v != serial %v", got, serial)
	}
	// Higher worker counts only regroup additions.
	for _, w := range []int{2, 4, 8} {
		got := SumFloat(len(xs), w, shardSum)
		if diff := got - serial; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("workers=%d sum %v vs serial %v", w, got, serial)
		}
	}
}

func TestSumFloatReproducibleAtFixedWorkers(t *testing.T) {
	xs := make([]float64, 5000)
	rng := rand.New(rand.NewSource(7))
	for i := range xs {
		xs[i] = rng.Float64()*2 - 1
	}
	shardSum := func(s Shard) float64 {
		var v float64
		for i := s.Start; i < s.End; i++ {
			v += xs[i]
		}
		return v
	}
	first := SumFloat(len(xs), 4, shardSum)
	for run := 0; run < 20; run++ {
		if got := SumFloat(len(xs), 4, shardSum); got != first {
			t.Fatalf("run %d: %v != first %v", run, got, first)
		}
	}
}

func TestReduceMergesInShardOrder(t *testing.T) {
	var order []int
	Reduce(100, 8, func(s Shard) int { return s.Index }, func(idx int) {
		order = append(order, idx)
	})
	for i, idx := range order {
		if idx != i {
			t.Fatalf("merge order %v not ascending", order)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(0, 10) < 1 {
		t.Fatal("Clamp(0, 10) must be at least 1")
	}
	if got := Clamp(16, 4); got != 4 {
		t.Fatalf("Clamp(16, 4) = %d, want 4", got)
	}
	if got := Clamp(3, 100); got != 3 {
		t.Fatalf("Clamp(3, 100) = %d, want 3", got)
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(-1); err == nil {
		t.Fatal("Validate(-1) must error")
	}
	if err := Validate(0); err != nil {
		t.Fatalf("Validate(0): %v", err)
	}
}
