// Package par is the repository's shared parallel compute layer: a bounded
// worker pool plus sharding and reduction helpers with a strict determinism
// contract.
//
// Determinism contract: every helper splits work into contiguous shards whose
// boundaries depend only on (n, workers), and combines per-shard results in
// ascending shard order on the calling goroutine. Floating-point reductions
// are therefore run-to-run reproducible at a fixed worker count, and integer
// or positional results (ranks, filters, per-index outputs) are bit-for-bit
// identical at ANY worker count. Callers that need float reductions invariant
// across worker counts must reduce per-index (write results into a slice slot
// per item, then sum serially) rather than per-shard; eval.Rank does exactly
// that.
//
// The pool is bounded: at most Workers goroutines execute shards at a time,
// so nested or concurrent calls cannot oversubscribe the scheduler the way
// unbounded go-per-item fan-out does.
package par

import (
	"fmt"
	"runtime"
	"sync"
)

// DefaultWorkers returns the worker count used when a caller passes
// workers <= 0: the current GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Clamp normalizes a requested worker count against n items: non-positive
// requests become DefaultWorkers(), and the result never exceeds n (so no
// worker is ever handed an empty shard) and never drops below 1.
func Clamp(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Shard is one contiguous index range [Start, End) assigned to a worker.
// Index is the shard's position in the fixed reduction order.
type Shard struct {
	Index, Start, End int
}

// Shards splits [0, n) into exactly Clamp(workers, n) contiguous ranges whose
// sizes differ by at most one. The boundaries depend only on (n, workers),
// which is what makes ordered reductions reproducible.
func Shards(n, workers int) []Shard {
	if n <= 0 {
		return nil
	}
	w := Clamp(workers, n)
	out := make([]Shard, w)
	for s := 0; s < w; s++ {
		out[s] = Shard{
			Index: s,
			Start: s * n / w,
			End:   (s + 1) * n / w,
		}
	}
	return out
}

// semaphore bounds global concurrency across all Do calls so that nested
// parallelism (e.g. a parallel loss inside a parallel benchmark) degrades to
// sequential execution instead of spawning workers^2 goroutines.
var (
	semOnce sync.Once
	sem     chan struct{}
)

func acquireSlot() { semOnce.Do(initSem); sem <- struct{}{} }
func releaseSlot() { <-sem }

func initSem() {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	// 2x headroom: a parent blocked in Do holds no slot, but allow some
	// overlap between draining and starting shards.
	sem = make(chan struct{}, 2*n)
}

// Do executes fn once per shard of [0, n), running up to Clamp(workers, n)
// shards concurrently, and returns when all shards finish. With workers == 1
// (or n == 1) fn runs on the calling goroutine with no synchronization, so
// the serial path is exactly the sharded loop at shard count 1.
func Do(n, workers int, fn func(s Shard)) {
	shards := Shards(n, workers)
	if len(shards) == 0 {
		return
	}
	if len(shards) == 1 {
		fn(shards[0])
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(shards))
	for _, s := range shards {
		s := s
		go func() {
			defer wg.Done()
			acquireSlot()
			defer releaseSlot()
			fn(s)
		}()
	}
	wg.Wait()
}

// SumFloat runs fn per shard and returns the per-shard partial sums combined
// in ascending shard order. At a fixed worker count the result is bit-for-bit
// reproducible; across worker counts partial-sum regrouping perturbs the
// result by O(machine epsilon) only.
func SumFloat(n, workers int, fn func(s Shard) float64) float64 {
	shards := Shards(n, workers)
	if len(shards) == 0 {
		return 0
	}
	partial := make([]float64, len(shards))
	Do(n, workers, func(s Shard) {
		partial[s.Index] = fn(s)
	})
	var total float64
	for _, p := range partial {
		total += p
	}
	return total
}

// Reduce runs produce once per shard (concurrently) and then folds the
// per-shard results into acc by calling merge in ascending shard order on the
// calling goroutine. It generalizes SumFloat to arbitrary accumulators such
// as gradient shards.
func Reduce[T any](n, workers int, produce func(s Shard) T, merge func(shard T)) {
	shards := Shards(n, workers)
	if len(shards) == 0 {
		return
	}
	results := make([]T, len(shards))
	Do(n, workers, func(s Shard) {
		results[s.Index] = produce(s)
	})
	for _, r := range results {
		merge(r)
	}
}

// Validate reports an error for nonsensical worker requests; helpers accept
// any value via Clamp, so this exists for config surfaces that want to fail
// fast on typos like workers = -8.
func Validate(workers int) error {
	if workers < 0 {
		return fmt.Errorf("par: negative worker count %d", workers)
	}
	return nil
}
