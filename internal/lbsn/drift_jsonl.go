package lbsn

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"tcss/internal/geo"
)

// jsonlWeek is the JSON-lines record for one simulated week of an open-world
// stream: one line per week, carrying arrivals, openings, closures and the
// week's check-ins. It is the interchange format datagen's drift mode emits
// and the replay tooling consumes.
type jsonlWeek struct {
	Week       int            `json:"week"`
	Month      int            `json:"month"`
	NewUsers   []jsonlNewUser `json:"new_users,omitempty"`
	NewPOIs    []jsonlPOI     `json:"new_pois,omitempty"`
	ClosedPOIs []int          `json:"closed_pois,omitempty"`
	CheckIns   []jsonlCheckIn `json:"checkins,omitempty"`
}

type jsonlNewUser struct {
	ID      int   `json:"id"`
	Friends []int `json:"friends,omitempty"`
}

type jsonlPOI struct {
	ID        int     `json:"id"`
	Lat       float64 `json:"lat"`
	Lon       float64 `json:"lon"`
	Category  int     `json:"category"`
	Cluster   int     `json:"cluster"`
	PeakMonth int     `json:"peak_month"`
}

// WriteWeeksJSONL streams the drift batches to w, one JSON line per week.
func WriteWeeksJSONL(w io.Writer, weeks []WeekBatch) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, wb := range weeks {
		rec := jsonlWeek{Week: wb.Week, Month: wb.Month, ClosedPOIs: wb.ClosedPOIs}
		for _, u := range wb.NewUsers {
			rec.NewUsers = append(rec.NewUsers, jsonlNewUser{ID: u.ID, Friends: u.Friends})
		}
		for _, p := range wb.NewPOIs {
			rec.NewPOIs = append(rec.NewPOIs, jsonlPOI{
				ID: p.ID, Lat: p.Loc.Lat, Lon: p.Loc.Lon,
				Category: int(p.Category), Cluster: p.Cluster, PeakMonth: p.PeakMonth,
			})
		}
		for _, c := range wb.CheckIns {
			rec.CheckIns = append(rec.CheckIns, jsonlCheckIn{User: c.User, POI: c.POI, Month: c.Month, Week: c.Week, Hour: c.Hour})
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("lbsn: encoding drift week %d: %w", wb.Week, err)
		}
	}
	return bw.Flush()
}

// ReadWeeksJSONL parses a drift stream written by WriteWeeksJSONL.
func ReadWeeksJSONL(r io.Reader) ([]WeekBatch, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []WeekBatch
	line := 0
	for scanner.Scan() {
		line++
		raw := scanner.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec jsonlWeek
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("lbsn: drift JSONL line %d: %w", line, err)
		}
		wb := WeekBatch{Week: rec.Week, Month: rec.Month, ClosedPOIs: rec.ClosedPOIs}
		for _, u := range rec.NewUsers {
			wb.NewUsers = append(wb.NewUsers, NewUser{ID: u.ID, Friends: u.Friends})
		}
		for _, p := range rec.NewPOIs {
			wb.NewPOIs = append(wb.NewPOIs, POI{
				ID: p.ID, Loc: geo.Point{Lat: p.Lat, Lon: p.Lon},
				Category: Category(p.Category), Cluster: p.Cluster, PeakMonth: p.PeakMonth,
			})
		}
		for _, c := range rec.CheckIns {
			wb.CheckIns = append(wb.CheckIns, CheckIn{User: c.User, POI: c.POI, Month: c.Month, Week: c.Week, Hour: c.Hour})
		}
		out = append(out, wb)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("lbsn: reading drift JSONL: %w", err)
	}
	return out, nil
}

// WriteWeeksJSONLFile writes the drift batches to a file.
func WriteWeeksJSONLFile(path string, weeks []WeekBatch) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("lbsn: creating %s: %w", path, err)
	}
	if err := WriteWeeksJSONL(f, weeks); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lbsn: closing %s: %w", path, err)
	}
	return nil
}

// ReadWeeksJSONLFile reads a drift stream from a file.
func ReadWeeksJSONLFile(path string) ([]WeekBatch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lbsn: opening %s: %w", path, err)
	}
	defer f.Close()
	return ReadWeeksJSONL(f)
}
