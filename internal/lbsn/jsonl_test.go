package lbsn

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	ds := MustGenerate(smallConfig(40))
	var buf bytes.Buffer
	if err := ds.WriteCheckInsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckInsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ds.CheckIns) {
		t.Fatalf("round trip: %d check-ins, want %d", len(back), len(ds.CheckIns))
	}
	for i := range back {
		if back[i] != ds.CheckIns[i] {
			t.Fatalf("check-in %d differs: %+v vs %+v", i, back[i], ds.CheckIns[i])
		}
	}
}

func TestJSONLFileRoundTrip(t *testing.T) {
	ds := MustGenerate(smallConfig(41))
	path := filepath.Join(t.TempDir(), "checkins.jsonl")
	if err := ds.WriteCheckInsJSONLFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckInsJSONLFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ds.CheckIns) {
		t.Fatal("file round trip lost check-ins")
	}
	if _, err := ReadCheckInsJSONLFile(filepath.Join(t.TempDir(), "missing.jsonl")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestJSONLSkipsBlankAndRejectsMalformed(t *testing.T) {
	in := `{"user":1,"poi":2,"month":3,"week":12,"hour":9}

{"user":0,"poi":1,"month":0,"week":0,"hour":0}
`
	cis, err := ReadCheckInsJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(cis) != 2 || cis[0].POI != 2 {
		t.Fatalf("parsed %v", cis)
	}
	if _, err := ReadCheckInsJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("malformed line must error")
	}
	if _, err := ReadCheckInsJSONL(strings.NewReader(`{"user":0,"poi":0,"month":12,"week":0,"hour":0}` + "\n")); err == nil {
		t.Fatal("out-of-range month must error")
	}
}
