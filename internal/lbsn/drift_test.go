package lbsn

import (
	"bytes"
	"reflect"
	"testing"
)

func driftTestConfig(seed int64) DriftConfig {
	base, err := NewPreset(PresetGMU5K, seed)
	if err != nil {
		panic(err)
	}
	base.Users, base.POIs = 60, 50
	return DriftConfig{
		Base:             base,
		Weeks:            6,
		StartWeek:        14,
		NewUsersPerWeek:  3,
		NewPOIsPerWeek:   2,
		CloseProbPerWeek: 0.01,
		Seed:             seed + 1,
	}
}

func TestGenerateDriftDeterministic(t *testing.T) {
	a, err := GenerateDrift(driftTestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDrift(driftTestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Weeks, b.Weeks) {
		t.Fatal("same config produced different streams")
	}
	if len(a.Base.CheckIns) != len(b.Base.CheckIns) {
		t.Fatal("same config produced different base datasets")
	}
	c, err := GenerateDrift(driftTestConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Weeks, c.Weeks) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGenerateDriftStructure(t *testing.T) {
	cfg := driftTestConfig(11)
	d, err := GenerateDrift(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Weeks) != cfg.Weeks {
		t.Fatalf("weeks = %d, want %d", len(d.Weeks), cfg.Weeks)
	}
	// The base must be a valid, pristine closed world.
	if err := d.Base.Validate(); err != nil {
		t.Fatalf("base invalid: %v", err)
	}
	if d.Base.NumUsers != cfg.Base.Users || len(d.Base.POIs) != cfg.Base.POIs {
		t.Fatal("weekly batches leaked into the base dataset")
	}

	users, pois := d.Base.NumUsers, len(d.Base.POIs)
	closed := map[int]bool{}
	var arrivals, openings, checkIns int
	for n, wb := range d.Weeks {
		if wb.Week != cfg.StartWeek+n {
			t.Fatalf("week %d has index %d", n, wb.Week)
		}
		if wb.Month != monthOfWeek(wb.Week%53) {
			t.Fatalf("week %d month = %d", wb.Week, wb.Month)
		}
		for _, u := range wb.NewUsers {
			if u.ID != users {
				t.Fatalf("new user id %d, want contiguous %d", u.ID, users)
			}
			for _, f := range u.Friends {
				if f < 0 || f >= users && f != u.ID {
					// friends may include same-week earlier arrivals
					if f >= u.ID {
						t.Fatalf("user %d befriends not-yet-existing %d", u.ID, f)
					}
				}
			}
			users++
			arrivals++
		}
		for _, p := range wb.NewPOIs {
			if p.ID != pois {
				t.Fatalf("new POI id %d, want contiguous %d", p.ID, pois)
			}
			if p.Cluster < 0 || p.Cluster >= cfg.Base.Clusters {
				t.Fatalf("new POI cluster %d", p.Cluster)
			}
			pois++
			openings++
		}
		for _, j := range wb.ClosedPOIs {
			if j < 0 || j >= pois {
				t.Fatalf("closed unknown POI %d", j)
			}
			closed[j] = true
		}
		for _, c := range wb.CheckIns {
			if c.User < 0 || c.User >= users {
				t.Fatalf("check-in by unknown user %d (have %d)", c.User, users)
			}
			if c.POI < 0 || c.POI >= pois {
				t.Fatalf("check-in at unknown POI %d (have %d)", c.POI, pois)
			}
			if closed[c.POI] {
				t.Fatalf("check-in at closed POI %d in week %d", c.POI, wb.Week)
			}
			if c.Week != wb.Week%53 || c.Month != wb.Month {
				t.Fatalf("check-in calendar (%d,%d) disagrees with week batch (%d,%d)",
					c.Month, c.Week, wb.Month, wb.Week%53)
			}
			if c.Hour < 0 || c.Hour > 23 {
				t.Fatalf("check-in hour %d", c.Hour)
			}
			checkIns++
		}
	}
	if arrivals == 0 || openings == 0 || checkIns == 0 {
		t.Fatalf("degenerate stream: %d arrivals, %d openings, %d check-ins", arrivals, openings, checkIns)
	}
	gotU, gotJ := d.FinalDims()
	if gotU != users || gotJ != pois {
		t.Fatalf("FinalDims = (%d,%d), want (%d,%d)", gotU, gotJ, users, pois)
	}
}

func TestDriftSeasonalShift(t *testing.T) {
	// Over a long stream, outdoor check-in share in July must exceed the
	// January share — the category-popularity drift the ISSUE requires.
	cfg := driftTestConfig(13)
	cfg.Weeks = 53
	cfg.StartWeek = 0
	cfg.NewUsersPerWeek, cfg.NewPOIsPerWeek, cfg.CloseProbPerWeek = 0, 0, 0
	d, err := GenerateDrift(cfg)
	if err != nil {
		t.Fatal(err)
	}
	share := func(month int) float64 {
		var outdoor, total int
		for _, wb := range d.Weeks {
			if wb.Month != month {
				continue
			}
			for _, c := range wb.CheckIns {
				if d.Base.POIs[c.POI].Category == Outdoor {
					outdoor++
				}
				total++
			}
		}
		if total == 0 {
			t.Fatalf("no check-ins in month %d", month)
		}
		return float64(outdoor) / float64(total)
	}
	jan, jul := share(0), share(6)
	if jul <= jan {
		t.Errorf("outdoor share July %.3f <= January %.3f — no seasonal drift", jul, jan)
	}
}

func TestDriftWeeksJSONLRoundTrip(t *testing.T) {
	d, err := GenerateDrift(driftTestConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteWeeksJSONL(&buf, d.Weeks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWeeksJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d.Weeks) {
		t.Fatal("drift stream did not round-trip through JSONL")
	}
}
