package lbsn

import (
	"fmt"

	"tcss/internal/geo"
)

// Grown returns a copy of the dataset extended to cover at least minUsers
// users and minPOIs POIs, with the listed arrivals wired in: new users join a
// cloned social graph with their friendship edges, new POIs are appended to a
// copied POI list. Id gaps below the minimums (inevitable in a sharded
// deployment where entity ids are assigned globally) are filled with isolated
// placeholder users and centroid-located placeholder POIs; they become real
// entities if check-ins ever arrive for them.
//
// The receiver is not mutated — it may back already-published state. The
// check-in history is shared with the receiver; the distance cache, when
// already computed, is extended incrementally (O(n·Δ), see
// geo.DistanceMatrix.Grown) rather than rebuilt.
func (d *Dataset) Grown(newUsers []NewUser, newPOIs []POI, minUsers, minPOIs int) (*Dataset, error) {
	if minUsers < d.NumUsers {
		minUsers = d.NumUsers
	}
	if minPOIs < len(d.POIs) {
		minPOIs = len(d.POIs)
	}
	for _, u := range newUsers {
		if u.ID >= minUsers {
			minUsers = u.ID + 1
		}
	}
	for _, p := range newPOIs {
		if p.ID >= minPOIs {
			minPOIs = p.ID + 1
		}
	}

	social := d.Social.Clone()
	if minUsers > social.N() {
		social.AddVertices(minUsers - social.N())
	}
	for _, u := range newUsers {
		for _, f := range u.Friends {
			if f < 0 || f >= minUsers {
				return nil, fmt.Errorf("lbsn: new user %d befriends out-of-range user %d", u.ID, f)
			}
			if f != u.ID {
				social.AddEdge(u.ID, f)
			}
		}
	}

	pois := make([]POI, minPOIs)
	copy(pois, d.POIs)
	if minPOIs > len(d.POIs) {
		// Placeholder location for gap ids: the centroid of the known world,
		// so distance rows stay finite and sane until the real POI appears.
		centroid := geo.Centroid(d.Locations())
		for j := len(d.POIs); j < minPOIs; j++ {
			pois[j] = POI{ID: j, Loc: centroid}
		}
	}
	for _, p := range newPOIs {
		if p.ID < len(d.POIs) {
			return nil, fmt.Errorf("lbsn: new POI id %d collides with existing POIs", p.ID)
		}
		q := p
		q.ID = p.ID
		pois[p.ID] = q
	}

	out := &Dataset{
		Name:     d.Name,
		NumUsers: minUsers,
		POIs:     pois,
		CheckIns: d.CheckIns,
		Social:   social,
	}
	if d.distCache != nil {
		out.distCache = d.distCache.Grown(out.Locations())
	}
	return out, nil
}
