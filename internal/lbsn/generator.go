package lbsn

import (
	"fmt"
	"math"
	"math/rand"

	"tcss/internal/geo"
	"tcss/internal/graph"
)

// GenConfig controls the patterns-of-life generator. The defaults in the
// preset constructors are tuned so the generated tensors exhibit the same
// qualitative structure as the paper's datasets: low-rank user-POI-time
// interactions, social co-visitation, geographic locality and category
// seasonality.
type GenConfig struct {
	Name  string
	Users int
	POIs  int

	// Geography. POIs are scattered around Clusters cluster centers inside
	// Box with Gaussian spread ClusterSigmaDeg (degrees).
	Clusters        int
	Box             geo.BoundingBox
	ClusterSigmaDeg float64

	// Social graph. A Watts-Strogatz backbone with mean degree
	// SocialDegree rewired with probability Rewire, plus homophilous
	// shortcuts between users whose home clusters coincide with
	// probability HomophilyEdgeProb. Every user keeps at least one friend.
	SocialDegree      int
	Rewire            float64
	HomophilyEdgeProb float64

	// Check-in behaviour. Each user produces a Poisson-like number of
	// check-ins with mean CheckInsPerUser. A check-in picks its POI by, in
	// order of precedence: adopting a friend's earlier check-in (probability
	// FriendAdoption), staying in the home cluster (probability
	// LocalityBias), or sampling any POI. POI choice within a pool is
	// Zipf-weighted by popularity rank with exponent ZipfS.
	CheckInsPerUser float64
	FriendAdoption  float64
	LocalityBias    float64
	ZipfS           float64

	// SeasonalSharpness scales how concentrated the per-category monthly
	// profiles are; 0 makes every month equally likely, 1 uses the full
	// profile.
	SeasonalSharpness float64

	// POISeasonality in [0, 1] is the weight of each POI's individual
	// peak-month profile relative to its category profile when sampling a
	// check-in month. Higher values make the time dimension more
	// informative per POI.
	POISeasonality float64

	Seed int64
}

// Preset names accepted by NewPreset and the datagen CLI.
const (
	PresetGowalla    = "gowalla"
	PresetYelp       = "yelp"
	PresetFoursquare = "foursquare"
	PresetGMU5K      = "gmu-5k"
)

// PresetNames lists the available dataset presets in paper order.
func PresetNames() []string {
	return []string{PresetGowalla, PresetYelp, PresetFoursquare, PresetGMU5K}
}

// NewPreset returns the generator configuration for one of the paper's four
// datasets, scaled to train in seconds. Relative properties are preserved:
// Gowalla is the reference; Yelp is markedly sparser (the paper attributes
// its lower scores to this); Foursquare has more users per POI; GMU-5K is the
// dense simulator-born dataset (paper density 3.21%).
func NewPreset(name string, seed int64) (GenConfig, error) {
	// The paper's datasets are worldwide: check-ins cluster inside cities
	// that are hundreds to thousands of kilometers apart. The bounding box
	// spans the continental US and each cluster is one city, so random
	// negative POIs usually live in a different city — the geometry the
	// social Hausdorff head exploits.
	continental := geo.BoundingBox{MinLat: 26, MaxLat: 47, MinLon: -122, MaxLon: -70}
	base := GenConfig{
		Name:              name,
		Clusters:          10,
		Box:               continental,
		ClusterSigmaDeg:   0.05,
		SocialDegree:      4,
		Rewire:            0.2,
		HomophilyEdgeProb: 0.01,
		FriendAdoption:    0.32,
		LocalityBias:      0.75,
		ZipfS:             0.9,
		SeasonalSharpness: 1.0,
		POISeasonality:    0.8,
		Seed:              seed,
	}
	// Check-in budgets keep each user's coverage of the POI universe at
	// the paper's scale (a user sees ~0.5-2% of POIs), which is the regime
	// where the social-spatial side information genuinely adds signal the
	// check-in tensor alone does not carry.
	switch name {
	case PresetGowalla:
		base.Users, base.POIs, base.CheckInsPerUser = 360, 800, 18
	case PresetYelp:
		// Sparser still: fewer check-ins per user over a larger POI pool;
		// the paper attributes Yelp's lower scores to this sparsity.
		base.Users, base.POIs, base.CheckInsPerUser = 340, 500, 10
		base.FriendAdoption = 0.18
	case PresetFoursquare:
		base.Users, base.POIs, base.CheckInsPerUser = 420, 700, 13
	case PresetGMU5K:
		// Dense patterns-of-life simulation (paper density 3.21%).
		base.Users, base.POIs, base.CheckInsPerUser = 220, 200, 90
		base.LocalityBias = 0.85
	default:
		return GenConfig{}, fmt.Errorf("lbsn: unknown preset %q (want one of %v)", name, PresetNames())
	}
	return base, nil
}

// Generate synthesizes a dataset from the configuration. The same
// configuration (including Seed) always produces the same dataset.
func Generate(cfg GenConfig) (*Dataset, error) {
	if cfg.Users <= 0 || cfg.POIs <= 0 {
		return nil, fmt.Errorf("lbsn: config needs positive Users and POIs, got %d/%d", cfg.Users, cfg.POIs)
	}
	if cfg.Clusters <= 0 {
		return nil, fmt.Errorf("lbsn: config needs positive Clusters, got %d", cfg.Clusters)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// 1. Geographic cluster centers and POIs. Categories are interleaved so
	// every cluster contains all categories.
	centers := make([]geo.Point, cfg.Clusters)
	for c := range centers {
		centers[c] = cfg.Box.RandomPoint(rng)
	}
	pois := make([]POI, cfg.POIs)
	for j := range pois {
		cluster := rng.Intn(cfg.Clusters)
		cat := Category(j % int(numCategories))
		pois[j] = POI{
			ID:        j,
			Loc:       geo.Jitter(centers[cluster], cfg.ClusterSigmaDeg, rng),
			Category:  cat,
			Cluster:   cluster,
			PeakMonth: sampleIndexArr(monthProfile(cat), rng),
		}
	}
	// Zipf popularity weights per POI (rank = ID order shuffled).
	popRank := rng.Perm(cfg.POIs)
	popWeight := make([]float64, cfg.POIs)
	for j := range popWeight {
		popWeight[j] = 1 / math.Pow(float64(popRank[j]+1), cfg.ZipfS)
	}

	allPOIs := make([]int, cfg.POIs)
	for j := range allPOIs {
		allPOIs[j] = j
	}
	// POIs grouped by cluster for locality-biased sampling.
	clusterPOIs := make([][]int, cfg.Clusters)
	for j, p := range pois {
		clusterPOIs[p.Cluster] = append(clusterPOIs[p.Cluster], j)
	}
	for c, lst := range clusterPOIs {
		if len(lst) == 0 {
			// Guarantee every cluster has at least one POI so locality
			// sampling cannot dead-end.
			j := rng.Intn(cfg.POIs)
			clusterPOIs[c] = append(clusterPOIs[c], j)
		}
	}

	// 2. Users: home cluster plus an individual taste distribution over the
	// POI categories. Taste adds per-user low-rank preference structure
	// beyond geography — two neighbours may favour restaurants vs trails —
	// which collaborative models can factorize but pure graph proximity
	// cannot.
	// Home clusters are assigned blockwise in user-id order so the
	// Watts-Strogatz ring below wires mostly same-city friendships — the
	// geographic homophily of Figure 1(c): friends live near each other and
	// their check-ins co-locate. The ring's rewired fraction provides the
	// cross-city friendships whose influence only the social side
	// information can capture.
	homeCluster := make([]int, cfg.Users)
	taste := make([][numCategories]float64, cfg.Users)
	for u := range homeCluster {
		homeCluster[u] = u * cfg.Clusters / cfg.Users
		var sum float64
		for c := range taste[u] {
			w := math.Pow(rng.Float64(), 2) // skewed: most users have 1-2 dominant categories
			taste[u][c] = w + 0.05
			sum += taste[u][c]
		}
		for c := range taste[u] {
			taste[u][c] /= sum
		}
	}

	// 3. Social graph: small-world backbone + same-cluster homophily edges.
	var social *graph.Graph
	if deg := cfg.SocialDegree; deg >= 2 && deg < cfg.Users {
		social = graph.WattsStrogatz(cfg.Users, deg-deg%2, cfg.Rewire, rng)
	} else {
		social = graph.New(cfg.Users)
	}
	if cfg.HomophilyEdgeProb > 0 {
		for u := 0; u < cfg.Users; u++ {
			for v := u + 1; v < cfg.Users; v++ {
				if homeCluster[u] == homeCluster[v] && rng.Float64() < cfg.HomophilyEdgeProb {
					social.AddEdge(u, v)
				}
			}
		}
	}
	graph.EnsureMinDegree(social, 1, rng)

	// 4. Check-ins. Users are processed in random order; friend adoption
	// samples from check-ins generated so far, so later users imitate
	// earlier friends (a second pass lets early users imitate late ones).
	ds := &Dataset{Name: cfg.Name, NumUsers: cfg.Users, POIs: pois, Social: social}
	byUser := make([][]CheckIn, cfg.Users)
	hourProfiles := [numCategories][24]float64{}
	monthProfiles := [numCategories][12]float64{}
	for _, c := range Categories() {
		hourProfiles[c] = hourProfile(c)
		monthProfiles[c] = sharpen(monthProfile(c), cfg.SeasonalSharpness)
	}

	// Per-user POI weight: popularity × the user's taste for the POI's
	// category.
	userWeight := func(u, j int) float64 {
		return popWeight[j] * taste[u][pois[j].Category]
	}
	samplePOI := func(u int) int {
		// Friend adoption: visit the same place a friend visited, or — per
		// the social homophily + Tobler structure the paper builds on — a
		// place *near* it (same geographic cluster, chosen by the user's
		// own taste). Exact copies are the minority, as in real LBSNs where
		// friends co-locate in neighbourhoods more than in exact venues.
		if cfg.FriendAdoption > 0 && rng.Float64() < cfg.FriendAdoption {
			friends := social.Neighbors(u)
			rng.Shuffle(len(friends), func(a, b int) { friends[a], friends[b] = friends[b], friends[a] })
			for _, f := range friends {
				if len(byUser[f]) == 0 {
					continue
				}
				adopted := byUser[f][rng.Intn(len(byUser[f]))].POI
				if rng.Float64() < exactAdoptFrac {
					return adopted
				}
				pool := clusterPOIs[pois[adopted].Cluster]
				return weightedPOI(pool, func(j int) float64 { return userWeight(u, j) }, rng)
			}
		}
		// Locality bias: home-cluster pool, else the full POI set.
		pool := clusterPOIs[homeCluster[u]]
		if rng.Float64() >= cfg.LocalityBias {
			pool = allPOIs
		}
		return weightedPOI(pool, func(j int) float64 { return userWeight(u, j) }, rng)
	}

	sampleMonth := func(j int) int {
		cat := pois[j].Category
		// Blend the POI's individual peak with its category profile. The
		// blend weight is scaled per category: restaurants are visited
		// year-round (the paper's §V-G observes food is the least seasonal
		// category and hardest to predict), while outdoor POIs live and die
		// with the seasons.
		if w := cfg.POISeasonality * categorySeasonality(cat); w > 0 && rng.Float64() < w {
			m := pois[j].PeakMonth + int(rng.NormFloat64()*1.2+0.5)
			return ((m % 12) + 12) % 12
		}
		return sampleIndex(monthProfiles[cat][:], rng)
	}

	for pass := 0; pass < 2; pass++ {
		order := rng.Perm(cfg.Users)
		for _, u := range order {
			n := poissonLike(cfg.CheckInsPerUser/2, rng) // half the budget per pass
			for c := 0; c < n; c++ {
				j := samplePOI(u)
				cat := pois[j].Category
				month := sampleMonth(j)
				hour := sampleIndex(hourProfiles[cat][:], rng)
				week := weekOfMonth(month, rng)
				ci := CheckIn{User: u, POI: j, Month: month, Week: week, Hour: hour}
				byUser[u] = append(byUser[u], ci)
			}
		}
	}
	for _, lst := range byUser {
		ds.CheckIns = append(ds.CheckIns, lst...)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// MustGenerate is Generate for callers with static configs where an error is
// a programming bug (tests, benchmarks, examples).
func MustGenerate(cfg GenConfig) *Dataset {
	ds, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return ds
}

// MustPreset generates a preset dataset by name, panicking on unknown names.
func MustPreset(name string, seed int64) *Dataset {
	cfg, err := NewPreset(name, seed)
	if err != nil {
		panic(err)
	}
	return MustGenerate(cfg)
}
