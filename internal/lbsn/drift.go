package lbsn

import (
	"fmt"
	"math"
	"math/rand"

	"tcss/internal/geo"
	"tcss/internal/graph"
)

// NewUser describes a user arriving in an open-world stream: its id and the
// existing users it befriends on arrival (preferential attachment — popular
// users accumulate newcomers, the rich-get-richer growth real social graphs
// exhibit).
type NewUser struct {
	ID      int
	Friends []int
}

// WeekBatch is one simulated week of an open-world stream: the entities that
// appeared or disappeared, then the week's check-ins (which may reference the
// week's own arrivals).
type WeekBatch struct {
	Week       int // absolute simulated week index, starting at DriftConfig.StartWeek
	Month      int // calendar month the week's check-ins are stamped with
	NewUsers   []NewUser
	NewPOIs    []POI
	ClosedPOIs []int // POIs that stop receiving check-ins from this week on
	CheckIns   []CheckIn
}

// Drift is a deterministic open-world stream: a closed-world starting
// dataset plus per-week growth batches.
type Drift struct {
	Base  *Dataset
	Weeks []WeekBatch
}

// FinalDims returns the user and POI counts after every batch is applied.
func (d *Drift) FinalDims() (users, pois int) {
	users, pois = d.Base.NumUsers, len(d.Base.POIs)
	for _, w := range d.Weeks {
		users += len(w.NewUsers)
		pois += len(w.NewPOIs)
	}
	return users, pois
}

// DriftConfig controls the open-world stream generator. The zero values of
// the optional fields select the documented defaults.
type DriftConfig struct {
	// Base configures the closed-world dataset the stream starts from.
	Base GenConfig
	// Weeks is the number of simulated weeks to emit.
	Weeks int
	// StartWeek is the absolute week-of-year the stream starts at (0-52);
	// pick a shoulder season to make the category-popularity shift visible
	// over a short stream.
	StartWeek int
	// NewUsersPerWeek / NewPOIsPerWeek are Poisson arrival rates.
	NewUsersPerWeek float64
	NewPOIsPerWeek  float64
	// CloseProbPerWeek is each open POI's weekly probability of closing.
	// A cluster's last open POI never closes.
	CloseProbPerWeek float64
	// FriendsPerNewUser is the number of preferential-attachment edges each
	// arrival wires into the existing graph (default 3).
	FriendsPerNewUser int
	// CheckInsPerUserWeek is the mean weekly check-in count per active user
	// (default Base.CheckInsPerUser/52, the base dataset's yearly budget
	// spread over the calendar).
	CheckInsPerUserWeek float64
	// SeasonalAmplitude in [0,1] scales the week-over-week category
	// popularity shift, applied by sharpening the shared per-category month
	// profiles (default 1: the full profiles).
	SeasonalAmplitude float64
	// Seed drives the stream; 0 derives Base.Seed+1 so base and stream are
	// independent but jointly reproducible.
	Seed int64
}

func (cfg DriftConfig) withDefaults() DriftConfig {
	if cfg.FriendsPerNewUser == 0 {
		cfg.FriendsPerNewUser = 3
	}
	if cfg.CheckInsPerUserWeek == 0 {
		cfg.CheckInsPerUserWeek = cfg.Base.CheckInsPerUser / 52
	}
	if cfg.SeasonalAmplitude == 0 {
		cfg.SeasonalAmplitude = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = cfg.Base.Seed + 1
	}
	return cfg
}

// GenerateDrift synthesizes a deterministic open-world stream: the base
// dataset from cfg.Base, then cfg.Weeks weekly batches in which users arrive
// by preferential attachment, POIs open and close, and category popularity
// follows the same monthly profiles the static generator samples from — so
// the drift a model sees online is distributionally consistent with the world
// it was trained on. The same config always produces the same stream; the
// returned Base is untouched by the weekly batches.
func GenerateDrift(cfg DriftConfig) (*Drift, error) {
	cfg = cfg.withDefaults()
	if cfg.Weeks <= 0 {
		return nil, fmt.Errorf("lbsn: drift needs positive Weeks, got %d", cfg.Weeks)
	}
	if cfg.StartWeek < 0 || cfg.StartWeek > 52 {
		return nil, fmt.Errorf("lbsn: drift StartWeek %d out of range", cfg.StartWeek)
	}
	base, err := Generate(cfg.Base)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Simulation state. The social graph and POI list are clones/copies so
	// the returned Base stays the pristine closed world a model trains on.
	social := base.Social.Clone()
	pois := append([]POI(nil), base.POIs...)
	closed := make([]bool, len(pois))
	numUsers := base.NumUsers
	byUser := make([][]CheckIn, numUsers)
	for _, c := range base.CheckIns {
		byUser[c.User] = append(byUser[c.User], c)
	}

	// Latent preference state. Home clusters reuse the generator's blockwise
	// assignment (a deterministic formula); tastes and popularity are
	// re-drawn from the stream's own rng — the stream models the same kind
	// of world, not the base's exact latent draws.
	clusters := cfg.Base.Clusters
	homeCluster := make([]int, numUsers)
	for u := range homeCluster {
		homeCluster[u] = u * clusters / cfg.Base.Users
	}
	taste := make([][numCategories]float64, numUsers)
	for u := range taste {
		taste[u] = drawTaste(rng)
	}
	popRank := rng.Perm(len(pois))
	popWeight := make([]float64, len(pois))
	for j := range popWeight {
		popWeight[j] = 1 / math.Pow(float64(popRank[j]+1), cfg.Base.ZipfS)
	}

	// Cluster geometry recovered from the base POIs: centroids of each
	// cluster's members place new POIs where the city actually is.
	centroids := make([]geo.Point, clusters)
	counts := make([]int, clusters)
	for _, p := range pois {
		centroids[p.Cluster].Lat += p.Loc.Lat
		centroids[p.Cluster].Lon += p.Loc.Lon
		counts[p.Cluster]++
	}
	for c := range centroids {
		if counts[c] > 0 {
			centroids[c].Lat /= float64(counts[c])
			centroids[c].Lon /= float64(counts[c])
		} else {
			centroids[c] = cfg.Base.Box.RandomPoint(rng)
		}
	}

	openByCluster := func(c int) []int {
		var out []int
		for j, p := range pois {
			if p.Cluster == c && !closed[j] {
				out = append(out, j)
			}
		}
		return out
	}
	allOpen := func() []int {
		var out []int
		for j := range pois {
			if !closed[j] {
				out = append(out, j)
			}
		}
		return out
	}

	hourProfiles := [numCategories][24]float64{}
	monthProfiles := [numCategories][12]float64{}
	for _, c := range Categories() {
		hourProfiles[c] = hourProfile(c)
		monthProfiles[c] = sharpen(monthProfile(c), cfg.Base.SeasonalSharpness)
	}
	// The weekly category-popularity shift: in the static generator the
	// month is sampled given the POI; in a stream the calendar is given, so
	// the same profiles act as POI-choice weights instead. SeasonalAmplitude
	// interpolates them toward uniform exactly like SeasonalSharpness does.
	seasonal := [numCategories][12]float64{}
	for _, c := range Categories() {
		seasonal[c] = sharpen(monthProfile(c), cfg.SeasonalAmplitude)
	}

	out := &Drift{Base: base}
	for n := 0; n < cfg.Weeks; n++ {
		week := cfg.StartWeek + n
		weekOfYear := week % 53
		month := monthOfWeek(weekOfYear)
		batch := WeekBatch{Week: week, Month: month}

		// 1. Arrivals: preferential attachment into the social graph.
		for a := poissonLike(cfg.NewUsersPerWeek, rng); a > 0; a-- {
			v := social.AddVertices(1)
			friends := social.PreferentialAttach(v, cfg.FriendsPerNewUser, rng)
			batch.NewUsers = append(batch.NewUsers, NewUser{ID: v, Friends: friends})
			homeCluster = append(homeCluster, rng.Intn(clusters))
			taste = append(taste, drawTaste(rng))
			byUser = append(byUser, nil)
			numUsers++
		}

		// 2. New POIs open near an existing cluster's centroid, starting in
		// the popularity tail (a new venue has no reputation yet).
		for a := poissonLike(cfg.NewPOIsPerWeek, rng); a > 0; a-- {
			cluster := rng.Intn(clusters)
			cat := Category(rng.Intn(int(numCategories)))
			p := POI{
				ID:        len(pois),
				Loc:       geo.Jitter(centroids[cluster], cfg.Base.ClusterSigmaDeg, rng),
				Category:  cat,
				Cluster:   cluster,
				PeakMonth: sampleIndexArr(monthProfile(cat), rng),
			}
			pois = append(pois, p)
			closed = append(closed, false)
			popWeight = append(popWeight, (1+rng.Float64())/math.Pow(float64(len(pois)), cfg.Base.ZipfS))
			batch.NewPOIs = append(batch.NewPOIs, p)
		}

		// 3. Closures, sparing each cluster's last open POI.
		if cfg.CloseProbPerWeek > 0 {
			for j := range pois {
				if closed[j] || rng.Float64() >= cfg.CloseProbPerWeek {
					continue
				}
				if len(openByCluster(pois[j].Cluster)) <= 1 {
					continue
				}
				closed[j] = true
				batch.ClosedPOIs = append(batch.ClosedPOIs, j)
			}
		}

		// 4. Check-ins, sampled with the static generator's primitives plus
		// the seasonal category weight for the week's month.
		open := allOpen()
		userWeight := func(u, j int) float64 {
			cat := pois[j].Category
			return popWeight[j] * taste[u][cat] * seasonal[cat][month]
		}
		for u := 0; u < numUsers; u++ {
			n := poissonLike(cfg.CheckInsPerUserWeek, rng)
			for c := 0; c < n; c++ {
				j := sampleDriftPOI(u, social, byUser, closed, pois, homeCluster,
					openByCluster, open, userWeight, cfg.Base, rng)
				if j < 0 {
					continue
				}
				cat := pois[j].Category
				ci := CheckIn{
					User:  u,
					POI:   j,
					Month: month,
					Week:  weekOfYear,
					Hour:  sampleIndex(hourProfiles[cat][:], rng),
				}
				byUser[u] = append(byUser[u], ci)
				batch.CheckIns = append(batch.CheckIns, ci)
			}
		}
		out.Weeks = append(out.Weeks, batch)
	}
	return out, nil
}

// drawTaste draws a user's normalized category preference exactly as the
// static generator does: squared uniforms, so most users have one or two
// dominant categories.
func drawTaste(rng *rand.Rand) [numCategories]float64 {
	var t [numCategories]float64
	var sum float64
	for c := range t {
		t[c] = math.Pow(rng.Float64(), 2) + 0.05
		sum += t[c]
	}
	for c := range t {
		t[c] /= sum
	}
	return t
}

// sampleDriftPOI mirrors the static generator's POI choice — friend
// adoption, then locality, then the full pool — restricted to open POIs.
// Returns -1 when no open POI exists at all.
func sampleDriftPOI(u int, social *graph.Graph, byUser [][]CheckIn, closed []bool,
	pois []POI, homeCluster []int, openByCluster func(int) []int, open []int,
	weight func(int, int) float64, base GenConfig, rng *rand.Rand) int {
	if len(open) == 0 {
		return -1
	}
	w := func(j int) float64 { return weight(u, j) }
	if base.FriendAdoption > 0 && rng.Float64() < base.FriendAdoption {
		friends := social.Neighbors(u)
		rng.Shuffle(len(friends), func(a, b int) { friends[a], friends[b] = friends[b], friends[a] })
		for _, f := range friends {
			if len(byUser[f]) == 0 {
				continue
			}
			adopted := byUser[f][rng.Intn(len(byUser[f]))].POI
			if !closed[adopted] && rng.Float64() < exactAdoptFrac {
				return adopted
			}
			if pool := openByCluster(pois[adopted].Cluster); len(pool) > 0 {
				return weightedPOI(pool, w, rng)
			}
			break
		}
	}
	pool := openByCluster(homeCluster[u])
	if len(pool) == 0 || rng.Float64() >= base.LocalityBias {
		pool = open
	}
	return weightedPOI(pool, w, rng)
}
