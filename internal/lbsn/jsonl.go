package lbsn

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonlCheckIn is the JSON-lines record for one check-in, the standard
// interchange format for event streams (one JSON object per line). It is the
// format an ingestion pipeline would emit, so real LBSN feeds can be piped
// into the simulator's Dataset type.
type jsonlCheckIn struct {
	User  int `json:"user"`
	POI   int `json:"poi"`
	Month int `json:"month"`
	Week  int `json:"week"`
	Hour  int `json:"hour"`
}

// WriteCheckInsJSONL streams the dataset's check-ins to w as JSON lines.
func (d *Dataset) WriteCheckInsJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, c := range d.CheckIns {
		if err := enc.Encode(jsonlCheckIn{User: c.User, POI: c.POI, Month: c.Month, Week: c.Week, Hour: c.Hour}); err != nil {
			return fmt.Errorf("lbsn: encoding check-in: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCheckInsJSONL parses a JSON-lines check-in stream. Blank lines are
// skipped; any malformed line aborts with an error naming its line number.
func ReadCheckInsJSONL(r io.Reader) ([]CheckIn, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []CheckIn
	line := 0
	for scanner.Scan() {
		line++
		raw := scanner.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec jsonlCheckIn
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("lbsn: JSONL line %d: %w", line, err)
		}
		ci := CheckIn{User: rec.User, POI: rec.POI, Month: rec.Month, Week: rec.Week, Hour: rec.Hour}
		if ci.Month < 0 || ci.Month > 11 || ci.Week < 0 || ci.Week > 52 || ci.Hour < 0 || ci.Hour > 23 {
			return nil, fmt.Errorf("lbsn: JSONL line %d: calendar (%d,%d,%d) out of range", line, ci.Month, ci.Week, ci.Hour)
		}
		out = append(out, ci)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("lbsn: reading JSONL: %w", err)
	}
	return out, nil
}

// WriteCheckInsJSONLFile writes the check-in stream to a file.
func (d *Dataset) WriteCheckInsJSONLFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("lbsn: creating %s: %w", path, err)
	}
	if err := d.WriteCheckInsJSONL(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lbsn: closing %s: %w", path, err)
	}
	return nil
}

// ReadCheckInsJSONLFile reads a check-in stream from a file.
func ReadCheckInsJSONLFile(path string) ([]CheckIn, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lbsn: opening %s: %w", path, err)
	}
	defer f.Close()
	return ReadCheckInsJSONL(f)
}
