// Package lbsn models a location-based social network: users, categorized
// POIs with geographic coordinates, timestamped check-ins, and a friendship
// graph. It contains a patterns-of-life generator that synthesizes datasets
// with the structures the paper's experiments rely on — geographic POI
// clusters (Tobler locality), homophilous friendships with co-visitation
// (social homophily), per-category seasonal and diurnal visit profiles, and
// Zipf-distributed POI popularity — plus CSV persistence and the conversion
// from check-ins to the user-POI-time tensor at month, week or hour
// granularity.
//
// The four named presets (Gowalla, Yelp, Foursquare, GMU5K) reproduce each
// paper dataset's relative density, user/POI ratio and social structure at a
// scale that trains in seconds on a laptop.
package lbsn

import (
	"fmt"
	"sort"

	"tcss/internal/geo"
	"tcss/internal/graph"
	"tcss/internal/tensor"
)

// Category labels a POI with one of the four Gowalla category groups used in
// the Figure 4/5/7 experiments.
type Category int

// The POI categories of the Gowalla dataset, in the order the paper lists
// them.
const (
	Shopping Category = iota
	Entertainment
	Food
	Outdoor
	numCategories
)

// Categories lists every category in order.
func Categories() []Category {
	return []Category{Shopping, Entertainment, Food, Outdoor}
}

// String returns the category name.
func (c Category) String() string {
	switch c {
	case Shopping:
		return "shopping"
	case Entertainment:
		return "entertainment"
	case Food:
		return "food"
	case Outdoor:
		return "outdoor"
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// POI is a point of interest.
type POI struct {
	ID       int
	Loc      geo.Point
	Category Category
	Cluster  int // geographic cluster the generator placed it in
	// PeakMonth is the month (0-11) where this POI's individual visit
	// propensity peaks; the generator blends it with the category profile
	// so the time dimension carries per-POI signal, as real LBSN data does
	// (a ski shop and a beach bar are both "outdoor" yet peak oppositely).
	PeakMonth int
}

// CheckIn is one user visit to a POI. The three calendar fields are the time
// indices at the three granularities the paper evaluates: month of year
// (0-11), week of year (0-52) and hour of day (0-23).
type CheckIn struct {
	User, POI         int
	Month, Week, Hour int
}

// Granularity selects the time dimension used to build the check-in tensor.
type Granularity int

// The three granularities of Figures 4 and 5.
const (
	Month Granularity = iota
	Week
	Hour
)

// Len returns the number of time units at this granularity.
func (g Granularity) Len() int {
	switch g {
	case Month:
		return 12
	case Week:
		return 53
	case Hour:
		return 24
	}
	panic(fmt.Sprintf("lbsn: unknown granularity %d", int(g)))
}

// String names the granularity.
func (g Granularity) String() string {
	switch g {
	case Month:
		return "month"
	case Week:
		return "week"
	case Hour:
		return "hour"
	}
	return fmt.Sprintf("granularity(%d)", int(g))
}

// Index returns the check-in's time index at this granularity.
func (g Granularity) Index(c CheckIn) int {
	switch g {
	case Month:
		return c.Month
	case Week:
		return c.Week
	case Hour:
		return c.Hour
	}
	panic(fmt.Sprintf("lbsn: unknown granularity %d", int(g)))
}

// Dataset is a complete LBSN snapshot.
type Dataset struct {
	Name     string
	NumUsers int
	POIs     []POI
	CheckIns []CheckIn
	Social   *graph.Graph

	distCache *geo.DistanceMatrix
}

// Validate checks referential integrity: every check-in must reference a
// valid user, POI and calendar indices, and the social graph must cover all
// users.
func (d *Dataset) Validate() error {
	if d.NumUsers <= 0 || len(d.POIs) == 0 {
		return fmt.Errorf("lbsn: dataset %q has %d users and %d POIs", d.Name, d.NumUsers, len(d.POIs))
	}
	if d.Social == nil || d.Social.N() != d.NumUsers {
		return fmt.Errorf("lbsn: dataset %q social graph does not cover users", d.Name)
	}
	for idx, p := range d.POIs {
		if p.ID != idx {
			return fmt.Errorf("lbsn: POI at position %d has ID %d", idx, p.ID)
		}
	}
	for _, c := range d.CheckIns {
		if c.User < 0 || c.User >= d.NumUsers {
			return fmt.Errorf("lbsn: check-in references user %d of %d", c.User, d.NumUsers)
		}
		if c.POI < 0 || c.POI >= len(d.POIs) {
			return fmt.Errorf("lbsn: check-in references POI %d of %d", c.POI, len(d.POIs))
		}
		if c.Month < 0 || c.Month > 11 || c.Week < 0 || c.Week > 52 || c.Hour < 0 || c.Hour > 23 {
			return fmt.Errorf("lbsn: check-in has calendar (%d,%d,%d) out of range", c.Month, c.Week, c.Hour)
		}
	}
	return nil
}

// Locations returns the POI coordinates in ID order.
func (d *Dataset) Locations() []geo.Point {
	pts := make([]geo.Point, len(d.POIs))
	for i, p := range d.POIs {
		pts[i] = p.Loc
	}
	return pts
}

// Distances returns the (cached) pairwise POI distance matrix.
func (d *Dataset) Distances() *geo.DistanceMatrix {
	if d.distCache == nil {
		d.distCache = geo.NewDistanceMatrix(d.Locations())
	}
	return d.distCache
}

// Tensor builds the binary user-POI-time check-in tensor at the given
// granularity: entry (i, j, k) is 1 iff user i checked in at POI j during
// time unit k. Duplicate check-ins in the same unit collapse to a single 1,
// matching the paper's formulation.
func (d *Dataset) Tensor(g Granularity) *tensor.COO {
	t := tensor.NewCOO(d.NumUsers, len(d.POIs), g.Len())
	for _, c := range d.CheckIns {
		t.Set(c.User, c.POI, g.Index(c), 1)
	}
	return t
}

// CategoryPOIs returns the IDs of POIs in the given category, ascending.
func (d *Dataset) CategoryPOIs(cat Category) []int {
	var ids []int
	for _, p := range d.POIs {
		if p.Category == cat {
			ids = append(ids, p.ID)
		}
	}
	return ids
}

// CategorySlice returns a new dataset restricted to one POI category, with
// POIs re-indexed densely. Check-ins to other categories are dropped; users
// and the social graph are kept as-is so user indices stay aligned. This is
// the per-category setup of Figures 4, 5 and 7.
func (d *Dataset) CategorySlice(cat Category) *Dataset {
	keep := d.CategoryPOIs(cat)
	remap := make(map[int]int, len(keep))
	pois := make([]POI, len(keep))
	for newID, oldID := range keep {
		remap[oldID] = newID
		p := d.POIs[oldID]
		p.ID = newID
		pois[newID] = p
	}
	out := &Dataset{
		Name:     fmt.Sprintf("%s/%s", d.Name, cat),
		NumUsers: d.NumUsers,
		POIs:     pois,
		Social:   d.Social,
	}
	for _, c := range d.CheckIns {
		if nj, ok := remap[c.POI]; ok {
			c.POI = nj
			out.CheckIns = append(out.CheckIns, c)
		}
	}
	return out
}

// LocationEntropies computes Eq (11) for every POI from the raw check-ins
// (counting repeat visits, as the paper's Φ multisets do). The result is
// indexed by POI ID.
func (d *Dataset) LocationEntropies() []float64 {
	perPOI := make([]map[int]int, len(d.POIs))
	for _, c := range d.CheckIns {
		if perPOI[c.POI] == nil {
			perPOI[c.POI] = make(map[int]int)
		}
		perPOI[c.POI][c.User]++
	}
	out := make([]float64, len(d.POIs))
	for j, m := range perPOI {
		if m == nil {
			continue
		}
		visits := make([]int, 0, len(m))
		for _, v := range m {
			visits = append(visits, v)
		}
		// Sort so the entropy sum does not depend on map iteration order.
		sort.Ints(visits)
		out[j] = geo.LocationEntropy(visits)
	}
	return out
}

// VisitedPOIs returns, for each user, the sorted set of distinct POIs the
// user checked in at.
func (d *Dataset) VisitedPOIs() [][]int {
	seen := make([]map[int]struct{}, d.NumUsers)
	for i := range seen {
		seen[i] = make(map[int]struct{})
	}
	for _, c := range d.CheckIns {
		seen[c.User][c.POI] = struct{}{}
	}
	out := make([][]int, d.NumUsers)
	for i, m := range seen {
		lst := make([]int, 0, len(m))
		for j := range m {
			lst = append(lst, j)
		}
		sort.Ints(lst)
		out[i] = lst
	}
	return out
}

// FriendVisitedPOIs returns, for each user v, the sorted union of POIs
// visited by v's friends — the set N(v) of Eq (8).
func (d *Dataset) FriendVisitedPOIs() [][]int {
	visited := d.VisitedPOIs()
	out := make([][]int, d.NumUsers)
	for v := 0; v < d.NumUsers; v++ {
		set := make(map[int]struct{})
		for _, f := range d.Social.Neighbors(v) {
			for _, j := range visited[f] {
				set[j] = struct{}{}
			}
		}
		lst := make([]int, 0, len(set))
		for j := range set {
			lst = append(lst, j)
		}
		sort.Ints(lst)
		out[v] = lst
	}
	return out
}

// Stats summarizes the dataset for logging and EXPERIMENTS.md.
type Stats struct {
	Users, POIs, CheckIns, Edges int
	TensorDensityMonth           float64
	MeanCheckInsPerUser          float64
	MeanDegree                   float64
}

// Summary computes dataset statistics.
func (d *Dataset) Summary() Stats {
	t := d.Tensor(Month)
	return Stats{
		Users:               d.NumUsers,
		POIs:                len(d.POIs),
		CheckIns:            len(d.CheckIns),
		Edges:               d.Social.EdgeCount(),
		TensorDensityMonth:  t.Density(),
		MeanCheckInsPerUser: float64(len(d.CheckIns)) / float64(d.NumUsers),
		MeanDegree:          d.Social.AverageDegree(),
	}
}
