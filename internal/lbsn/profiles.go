package lbsn

import (
	"fmt"
	"math"
	"math/rand"
)

// This file holds the temporal profiles and sampling primitives shared by the
// static generator (generator.go) and the open-world drift stream (drift.go).
// Keeping them in one place guarantees the drift simulator cannot silently
// diverge from the closed-world generator's distributions; profiles_test.go
// pins them.

// monthProfile returns the relative visit propensity of the category for
// each month. Outdoor POIs are strongly seasonal (summer peak), shopping
// peaks in the holiday season, entertainment has a mild summer bump, and food
// is nearly flat — matching the paper's observations in §V-G.
func monthProfile(c Category) [12]float64 {
	switch c {
	case Outdoor:
		return [12]float64{0.2, 0.25, 0.5, 0.9, 1.4, 1.9, 2.0, 1.8, 1.2, 0.7, 0.3, 0.2}
	case Shopping:
		return [12]float64{0.7, 0.6, 0.7, 0.8, 0.9, 0.9, 0.9, 1.0, 0.9, 1.0, 1.6, 2.0}
	case Entertainment:
		return [12]float64{0.8, 0.8, 0.9, 1.0, 1.2, 1.4, 1.5, 1.4, 1.1, 1.0, 0.9, 1.0}
	case Food:
		return [12]float64{1.0, 1.0, 1.0, 1.05, 1.05, 1.0, 1.0, 1.0, 1.0, 1.05, 1.05, 1.1}
	}
	panic(fmt.Sprintf("lbsn: unknown category %d", int(c)))
}

// hourProfile returns the relative visit propensity per hour of day.
func hourProfile(c Category) [24]float64 {
	var p [24]float64
	for h := 0; h < 24; h++ {
		switch c {
		case Food:
			// Lunch and dinner peaks.
			p[h] = 0.1 + 1.8*gauss(float64(h), 12, 1.5) + 2.2*gauss(float64(h), 19, 2)
		case Shopping:
			p[h] = 0.05 + 1.5*gauss(float64(h), 15, 3.5)
		case Entertainment:
			p[h] = 0.05 + 2.0*gauss(float64(h), 21, 2.5)
		case Outdoor:
			p[h] = 0.05 + 1.6*gauss(float64(h), 10, 3) + 1.0*gauss(float64(h), 17, 2.5)
		}
	}
	return p
}

func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-0.5 * d * d)
}

// categorySeasonality scales how much of a POI's visit timing follows its
// individual peak month, per category: people eat out all year but hike in
// summer.
func categorySeasonality(c Category) float64 {
	switch c {
	case Food:
		return 0.3
	case Shopping:
		return 0.9
	case Entertainment:
		return 0.85
	case Outdoor:
		return 1.0
	}
	return 1
}

// sharpen interpolates a profile toward uniform when sharpness < 1 and
// normalizes it to sum 1.
func sharpen(p [12]float64, sharpness float64) [12]float64 {
	var sum float64
	for _, v := range p {
		sum += v
	}
	mean := sum / 12
	var out [12]float64
	var norm float64
	for i, v := range p {
		out[i] = mean + sharpness*(v-mean)
		if out[i] < 0 {
			out[i] = 0
		}
		norm += out[i]
	}
	for i := range out {
		out[i] /= norm
	}
	return out
}

// sampleIndexArr is sampleIndex over a fixed-size month profile.
func sampleIndexArr(weights [12]float64, rng *rand.Rand) int {
	return sampleIndex(weights[:], rng)
}

// sampleIndex draws an index proportionally to the non-negative weights.
func sampleIndex(weights []float64, rng *rand.Rand) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// weightedPOI samples a POI from the pool with probability proportional to
// weight(j).
func weightedPOI(pool []int, weight func(int) float64, rng *rand.Rand) int {
	var total float64
	for _, j := range pool {
		total += weight(j)
	}
	x := rng.Float64() * total
	for _, j := range pool {
		x -= weight(j)
		if x < 0 {
			return j
		}
	}
	return pool[len(pool)-1]
}

// poissonLike draws a non-negative count with the given mean using Knuth's
// method for small means and a rounded normal for large ones.
func poissonLike(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(mean + rng.NormFloat64()*math.Sqrt(mean) + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// weekOfMonth converts a month index to a week-of-year index consistent with
// it: one of the month's ~4.4 weeks, uniformly.
func weekOfMonth(month int, rng *rand.Rand) int {
	start := int(float64(month) * 53.0 / 12.0)
	end := int(float64(month+1) * 53.0 / 12.0)
	if end <= start {
		end = start + 1
	}
	w := start + rng.Intn(end-start)
	if w > 52 {
		w = 52
	}
	return w
}

// monthOfWeek is the calendar inverse of weekOfMonth: the month an absolute
// week-of-year index falls in. It is the mapping the drift stream uses to
// stamp a simulated week's check-ins, and round-trips with weekOfMonth:
// monthOfWeek(weekOfMonth(m, rng)) == m for every month m.
func monthOfWeek(week int) int {
	m := (week*12 + 11) / 53
	if m > 11 {
		m = 11
	}
	return m
}

// exactAdoptFrac is the share of friend adoptions that copy the friend's
// exact POI; the remainder land in the same geographic cluster.
const exactAdoptFrac = 0.5
