package lbsn

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"tcss/internal/geo"
	"tcss/internal/graph"
)

// The file names used by WriteDir / ReadDir. The on-disk format is three
// headered CSV files so real LBSN dumps (Gowalla-style check-in exports) can
// be converted into it with a one-line awk script.
const (
	poisFile     = "pois.csv"
	checkinsFile = "checkins.csv"
	edgesFile    = "edges.csv"
)

// WriteDir persists the dataset as CSV files inside dir, creating it if
// needed.
func (d *Dataset) WriteDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("lbsn: creating %s: %w", dir, err)
	}
	if err := writeCSV(filepath.Join(dir, poisFile), append([][]string{{"id", "lat", "lon", "category", "cluster", "peak_month"}}, poiRows(d.POIs)...)); err != nil {
		return err
	}
	rows := [][]string{{"user", "poi", "month", "week", "hour"}}
	for _, c := range d.CheckIns {
		rows = append(rows, []string{
			strconv.Itoa(c.User), strconv.Itoa(c.POI),
			strconv.Itoa(c.Month), strconv.Itoa(c.Week), strconv.Itoa(c.Hour),
		})
	}
	if err := writeCSV(filepath.Join(dir, checkinsFile), rows); err != nil {
		return err
	}
	erows := [][]string{{"u", "v"}}
	for _, e := range d.Social.Edges() {
		erows = append(erows, []string{strconv.Itoa(e[0]), strconv.Itoa(e[1])})
	}
	return writeCSV(filepath.Join(dir, edgesFile), erows)
}

func poiRows(pois []POI) [][]string {
	rows := make([][]string, len(pois))
	for i, p := range pois {
		rows[i] = []string{
			strconv.Itoa(p.ID),
			strconv.FormatFloat(p.Loc.Lat, 'f', -1, 64),
			strconv.FormatFloat(p.Loc.Lon, 'f', -1, 64),
			strconv.Itoa(int(p.Category)),
			strconv.Itoa(p.Cluster),
			strconv.Itoa(p.PeakMonth),
		}
	}
	return rows
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("lbsn: creating %s: %w", path, err)
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return fmt.Errorf("lbsn: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("lbsn: closing %s: %w", path, err)
	}
	return nil
}

// ReadDir loads a dataset previously written by WriteDir (or converted from a
// real LBSN dump). name is attached to the result; users are inferred from
// the maximum user index across check-ins and edges.
func ReadDir(dir, name string) (*Dataset, error) {
	poiRows, err := readCSV(filepath.Join(dir, poisFile))
	if err != nil {
		return nil, err
	}
	var pois []POI
	for _, row := range poiRows {
		vals, err := atoiRow(row[:1])
		if err != nil {
			return nil, fmt.Errorf("lbsn: %s: %w", poisFile, err)
		}
		lat, err1 := strconv.ParseFloat(row[1], 64)
		lon, err2 := strconv.ParseFloat(row[2], 64)
		cat, err3 := strconv.Atoi(row[3])
		cluster, err4 := strconv.Atoi(row[4])
		peak, err5 := strconv.Atoi(row[5])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			return nil, fmt.Errorf("lbsn: %s: malformed row %v", poisFile, row)
		}
		pois = append(pois, POI{ID: vals[0], Loc: geo.Point{Lat: lat, Lon: lon}, Category: Category(cat), Cluster: cluster, PeakMonth: peak})
	}

	ciRows, err := readCSV(filepath.Join(dir, checkinsFile))
	if err != nil {
		return nil, err
	}
	var checkins []CheckIn
	maxUser := -1
	for _, row := range ciRows {
		vals, err := atoiRow(row)
		if err != nil {
			return nil, fmt.Errorf("lbsn: %s: %w", checkinsFile, err)
		}
		checkins = append(checkins, CheckIn{User: vals[0], POI: vals[1], Month: vals[2], Week: vals[3], Hour: vals[4]})
		if vals[0] > maxUser {
			maxUser = vals[0]
		}
	}

	edgeRows, err := readCSV(filepath.Join(dir, edgesFile))
	if err != nil {
		return nil, err
	}
	edges := make([][2]int, 0, len(edgeRows))
	for _, row := range edgeRows {
		vals, err := atoiRow(row)
		if err != nil {
			return nil, fmt.Errorf("lbsn: %s: %w", edgesFile, err)
		}
		edges = append(edges, [2]int{vals[0], vals[1]})
		for _, v := range vals[:2] {
			if v > maxUser {
				maxUser = v
			}
		}
	}
	if maxUser < 0 {
		return nil, fmt.Errorf("lbsn: dataset in %s has no users", dir)
	}
	social := graph.New(maxUser + 1)
	for _, e := range edges {
		social.AddEdge(e[0], e[1])
	}
	ds := &Dataset{Name: name, NumUsers: maxUser + 1, POIs: pois, CheckIns: checkins, Social: social}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

func readCSV(path string) ([][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("lbsn: opening %s: %w", path, err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	if _, err := r.Read(); err != nil { // header
		if err == io.EOF {
			return nil, nil
		}
		return nil, fmt.Errorf("lbsn: reading header of %s: %w", path, err)
	}
	rows, err := r.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("lbsn: reading %s: %w", path, err)
	}
	return rows, nil
}

func atoiRow(row []string) ([]int, error) {
	out := make([]int, len(row))
	for i, s := range row {
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("malformed integer %q", s)
		}
		out[i] = v
	}
	return out, nil
}
