package lbsn

import (
	"math"
	"math/rand"
	"testing"
)

// TestMonthProfilePinned pins the per-category month profiles so the drift
// stream and the static generator cannot diverge without a test failing.
func TestMonthProfilePinned(t *testing.T) {
	cases := []struct {
		cat  Category
		want [12]float64
	}{
		{Outdoor, [12]float64{0.2, 0.25, 0.5, 0.9, 1.4, 1.9, 2.0, 1.8, 1.2, 0.7, 0.3, 0.2}},
		{Shopping, [12]float64{0.7, 0.6, 0.7, 0.8, 0.9, 0.9, 0.9, 1.0, 0.9, 1.0, 1.6, 2.0}},
		{Entertainment, [12]float64{0.8, 0.8, 0.9, 1.0, 1.2, 1.4, 1.5, 1.4, 1.1, 1.0, 0.9, 1.0}},
		{Food, [12]float64{1.0, 1.0, 1.0, 1.05, 1.05, 1.0, 1.0, 1.0, 1.0, 1.05, 1.05, 1.1}},
	}
	for _, tc := range cases {
		if got := monthProfile(tc.cat); got != tc.want {
			t.Errorf("monthProfile(%v) = %v, want %v", tc.cat, got, tc.want)
		}
	}
}

// TestHourProfilePinned pins structural facts of the hour profiles: the peak
// hour and a handful of exact values per category.
func TestHourProfilePinned(t *testing.T) {
	cases := []struct {
		cat      Category
		peakHour int
		at       map[int]float64
	}{
		{Food, 19, map[int]float64{12: 0.1 + 1.8 + 2.2*gauss(12, 19, 2), 0: 0.1 + 1.8*gauss(0, 12, 1.5) + 2.2*gauss(0, 19, 2)}},
		{Shopping, 15, map[int]float64{15: 0.05 + 1.5}},
		{Entertainment, 21, map[int]float64{21: 0.05 + 2.0}},
		{Outdoor, 10, map[int]float64{10: 0.05 + 1.6 + 1.0*gauss(10, 17, 2.5)}},
	}
	for _, tc := range cases {
		p := hourProfile(tc.cat)
		peak := 0
		for h := 1; h < 24; h++ {
			if p[h] > p[peak] {
				peak = h
			}
		}
		if peak != tc.peakHour {
			t.Errorf("hourProfile(%v) peak hour = %d, want %d", tc.cat, peak, tc.peakHour)
		}
		for h, want := range tc.at {
			if math.Abs(p[h]-want) > 1e-12 {
				t.Errorf("hourProfile(%v)[%d] = %g, want %g", tc.cat, h, p[h], want)
			}
		}
	}
}

func TestCategorySeasonalityPinned(t *testing.T) {
	cases := map[Category]float64{Food: 0.3, Shopping: 0.9, Entertainment: 0.85, Outdoor: 1.0}
	for cat, want := range cases {
		if got := categorySeasonality(cat); got != want {
			t.Errorf("categorySeasonality(%v) = %g, want %g", cat, got, want)
		}
	}
}

// TestSharpen checks the interpolation endpoints: sharpness 0 is uniform,
// sharpness 1 is the normalized input, and every output sums to 1.
func TestSharpen(t *testing.T) {
	in := monthProfile(Outdoor)
	var sum float64
	for _, v := range in {
		sum += v
	}
	cases := []struct {
		sharpness float64
		want      func(i int) float64
	}{
		{0, func(int) float64 { return 1.0 / 12 }},
		{1, func(i int) float64 { return in[i] / sum }},
		{0.5, func(i int) float64 { m := sum / 12; return (m + 0.5*(in[i]-m)) / sum }},
	}
	for _, tc := range cases {
		out := sharpen(in, tc.sharpness)
		var total float64
		for i, v := range out {
			total += v
			if want := tc.want(i); math.Abs(v-want) > 1e-12 {
				t.Errorf("sharpen(%g)[%d] = %g, want %g", tc.sharpness, i, v, want)
			}
		}
		if math.Abs(total-1) > 1e-12 {
			t.Errorf("sharpen(%g) sums to %g, want 1", tc.sharpness, total)
		}
	}
}

// TestSampleIndexDistribution verifies empirical frequencies converge to the
// normalized weights.
func TestSampleIndexDistribution(t *testing.T) {
	weights := []float64{1, 3, 0, 6}
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[sampleIndex(weights, rng)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[2])
	}
	for i, w := range weights {
		got := float64(counts[i]) / n
		want := w / 10
		if math.Abs(got-want) > 0.01 {
			t.Errorf("index %d frequency %.3f, want %.3f±0.01", i, got, want)
		}
	}
}

func TestWeightedPOIDistribution(t *testing.T) {
	pool := []int{4, 9, 2}
	weight := func(j int) float64 { return float64(j) }
	rng := rand.New(rand.NewSource(11))
	const n = 150000
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		counts[weightedPOI(pool, weight, rng)]++
	}
	for _, j := range pool {
		got := float64(counts[j]) / n
		want := float64(j) / 15
		if math.Abs(got-want) > 0.01 {
			t.Errorf("POI %d frequency %.3f, want %.3f±0.01", j, got, want)
		}
	}
}

// TestPoissonLikeMoments checks the sample mean tracks the requested mean in
// both the Knuth (small-mean) and rounded-normal (large-mean) regimes.
func TestPoissonLikeMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, mean := range []float64{0, 0.5, 4, 18, 60} {
		const n = 60000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(poissonLike(mean, rng))
		}
		got := sum / n
		tol := 0.05 * (mean + 1)
		if math.Abs(got-mean) > tol {
			t.Errorf("poissonLike(%g) sample mean %.3f, want %.3f±%.3f", mean, got, mean, tol)
		}
	}
}

// TestWeekMonthRoundTrip verifies monthOfWeek inverts weekOfMonth for every
// month, and that drift's week→month stamping covers all twelve months.
func TestWeekMonthRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for m := 0; m < 12; m++ {
		for i := 0; i < 200; i++ {
			w := weekOfMonth(m, rng)
			if w < 0 || w > 52 {
				t.Fatalf("weekOfMonth(%d) = %d out of range", m, w)
			}
			if got := monthOfWeek(w); got != m {
				t.Fatalf("monthOfWeek(weekOfMonth(%d)=%d) = %d", m, w, got)
			}
		}
	}
	seen := map[int]bool{}
	for w := 0; w <= 52; w++ {
		seen[monthOfWeek(w)] = true
	}
	if len(seen) != 12 {
		t.Errorf("monthOfWeek over weeks 0..52 covers %d months, want 12", len(seen))
	}
}
