package lbsn

import (
	"math"
	"testing"

	"tcss/internal/geo"
)

func smallConfig(seed int64) GenConfig {
	return GenConfig{
		Name:              "test",
		Users:             40,
		POIs:              32,
		Clusters:          4,
		Box:               geo.BoundingBox{MinLat: 30, MaxLat: 30.5, MinLon: -98, MaxLon: -97.5},
		ClusterSigmaDeg:   0.01,
		SocialDegree:      4,
		Rewire:            0.1,
		HomophilyEdgeProb: 0.05,
		CheckInsPerUser:   20,
		FriendAdoption:    0.4,
		LocalityBias:      0.7,
		ZipfS:             0.9,
		SeasonalSharpness: 1,
		Seed:              seed,
	}
}

func TestGenerateValidates(t *testing.T) {
	ds := MustGenerate(smallConfig(1))
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.NumUsers != 40 || len(ds.POIs) != 32 {
		t.Fatalf("dims wrong: %d users %d POIs", ds.NumUsers, len(ds.POIs))
	}
	if len(ds.CheckIns) == 0 {
		t.Fatal("no check-ins generated")
	}
	// Every user has at least one friend (paper preprocessing guarantee).
	for u := 0; u < ds.NumUsers; u++ {
		if ds.Social.Degree(u) < 1 {
			t.Fatalf("user %d has no friends", u)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(smallConfig(7))
	b := MustGenerate(smallConfig(7))
	if len(a.CheckIns) != len(b.CheckIns) {
		t.Fatal("same seed must give same check-in count")
	}
	for i := range a.CheckIns {
		if a.CheckIns[i] != b.CheckIns[i] {
			t.Fatal("same seed must give identical check-ins")
		}
	}
	c := MustGenerate(smallConfig(8))
	if len(a.CheckIns) == len(c.CheckIns) {
		same := true
		for i := range a.CheckIns {
			if a.CheckIns[i] != c.CheckIns[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds should differ")
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := smallConfig(1)
	cfg.Users = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("zero users must error")
	}
	cfg = smallConfig(1)
	cfg.Clusters = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("zero clusters must error")
	}
}

func TestTensorBinaryAndDims(t *testing.T) {
	ds := MustGenerate(smallConfig(2))
	for _, g := range []Granularity{Month, Week, Hour} {
		x := ds.Tensor(g)
		if x.DimI != ds.NumUsers || x.DimJ != len(ds.POIs) || x.DimK != g.Len() {
			t.Fatalf("%v tensor dims %dx%dx%d", g, x.DimI, x.DimJ, x.DimK)
		}
		for _, e := range x.Entries() {
			if e.Val != 1 {
				t.Fatalf("tensor must be binary, got %g", e.Val)
			}
		}
	}
	// Month tensor NNZ is bounded by raw check-ins (duplicates collapse).
	if ds.Tensor(Month).NNZ() > len(ds.CheckIns) {
		t.Fatal("tensor NNZ exceeds raw check-ins")
	}
}

func TestGranularity(t *testing.T) {
	c := CheckIn{Month: 3, Week: 14, Hour: 22}
	if Month.Index(c) != 3 || Week.Index(c) != 14 || Hour.Index(c) != 22 {
		t.Fatal("granularity index wrong")
	}
	if Month.Len() != 12 || Week.Len() != 53 || Hour.Len() != 24 {
		t.Fatal("granularity lengths wrong")
	}
}

func TestCategorySlice(t *testing.T) {
	ds := MustGenerate(smallConfig(3))
	sliced := ds.CategorySlice(Food)
	if err := sliced.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range sliced.POIs {
		if p.Category != Food {
			t.Fatal("non-food POI survived the slice")
		}
	}
	var wantCheckins int
	for _, c := range ds.CheckIns {
		if ds.POIs[c.POI].Category == Food {
			wantCheckins++
		}
	}
	if len(sliced.CheckIns) != wantCheckins {
		t.Fatalf("sliced check-ins = %d, want %d", len(sliced.CheckIns), wantCheckins)
	}
}

func TestSeasonalityInGeneratedData(t *testing.T) {
	cfg := smallConfig(4)
	cfg.Users, cfg.CheckInsPerUser = 80, 40
	ds := MustGenerate(cfg)
	// Outdoor check-ins must concentrate in summer (May-Aug) vs winter
	// (Nov-Feb): the generator's core seasonal structure.
	var summer, winter int
	for _, c := range ds.CheckIns {
		if ds.POIs[c.POI].Category != Outdoor {
			continue
		}
		switch c.Month {
		case 4, 5, 6, 7:
			summer++
		case 10, 11, 0, 1:
			winter++
		}
	}
	if summer <= 2*winter {
		t.Fatalf("outdoor seasonality too weak: summer=%d winter=%d", summer, winter)
	}
}

func TestFriendCoVisitation(t *testing.T) {
	// Friends should share more distinct POIs than random pairs — the social
	// homophily the Hausdorff loss exploits (paper Figure 1c).
	cfg := smallConfig(5)
	cfg.Users, cfg.CheckInsPerUser = 60, 30
	ds := MustGenerate(cfg)
	visited := ds.VisitedPOIs()
	overlap := func(u, v int) float64 {
		set := make(map[int]struct{}, len(visited[u]))
		for _, j := range visited[u] {
			set[j] = struct{}{}
		}
		var c int
		for _, j := range visited[v] {
			if _, ok := set[j]; ok {
				c++
			}
		}
		union := len(visited[u]) + len(visited[v]) - c
		if union == 0 {
			return 0
		}
		return float64(c) / float64(union)
	}
	var friendSum float64
	var friendN int
	for _, e := range ds.Social.Edges() {
		friendSum += overlap(e[0], e[1])
		friendN++
	}
	var randSum float64
	var randN int
	for u := 0; u < ds.NumUsers; u++ {
		for v := u + 1; v < ds.NumUsers; v += 7 {
			if !ds.Social.HasEdge(u, v) {
				randSum += overlap(u, v)
				randN++
			}
		}
	}
	friendAvg, randAvg := friendSum/float64(friendN), randSum/float64(randN)
	if friendAvg <= randAvg {
		t.Fatalf("friend overlap %g must exceed non-friend overlap %g", friendAvg, randAvg)
	}
}

func TestFriendshipGeographicHomophily(t *testing.T) {
	// Friends must predominantly share a home cluster (paper Figure 1c):
	// the generated friendship graph is the substrate the social Hausdorff
	// head's assumptions rest on. Check via check-in geography: the mean
	// distance between friends' check-in centroids must be far below that
	// of random pairs.
	cfg, err := NewPreset(PresetGowalla, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Users, cfg.POIs = 120, 240
	ds := MustGenerate(cfg)
	centroid := make([]geo.Point, ds.NumUsers)
	counts := make([]int, ds.NumUsers)
	for _, c := range ds.CheckIns {
		centroid[c.User].Lat += ds.POIs[c.POI].Loc.Lat
		centroid[c.User].Lon += ds.POIs[c.POI].Loc.Lon
		counts[c.User]++
	}
	for u := range centroid {
		if counts[u] > 0 {
			centroid[u].Lat /= float64(counts[u])
			centroid[u].Lon /= float64(counts[u])
		}
	}
	var friendSum float64
	var friendN int
	for _, e := range ds.Social.Edges() {
		if counts[e[0]] == 0 || counts[e[1]] == 0 {
			continue
		}
		friendSum += geo.Haversine(centroid[e[0]], centroid[e[1]])
		friendN++
	}
	var randSum float64
	var randN int
	for u := 0; u < ds.NumUsers; u++ {
		for v := u + 1; v < ds.NumUsers; v += 11 {
			if counts[u] == 0 || counts[v] == 0 || ds.Social.HasEdge(u, v) {
				continue
			}
			randSum += geo.Haversine(centroid[u], centroid[v])
			randN++
		}
	}
	friendAvg, randAvg := friendSum/float64(friendN), randSum/float64(randN)
	if friendAvg >= randAvg/2 {
		t.Fatalf("friend centroid distance %g km should be far below random pairs %g km", friendAvg, randAvg)
	}
}

func TestLocationEntropies(t *testing.T) {
	ds := MustGenerate(smallConfig(6))
	ent := ds.LocationEntropies()
	if len(ent) != len(ds.POIs) {
		t.Fatal("entropy vector length mismatch")
	}
	visitors := make(map[int]map[int]struct{})
	for _, c := range ds.CheckIns {
		if visitors[c.POI] == nil {
			visitors[c.POI] = make(map[int]struct{})
		}
		visitors[c.POI][c.User] = struct{}{}
	}
	for j, h := range ent {
		if h < 0 {
			t.Fatalf("negative entropy at POI %d", j)
		}
		if n := len(visitors[j]); n > 0 && h > math.Log(float64(n))+1e-9 {
			t.Fatalf("entropy %g exceeds log(visitors=%d) at POI %d", h, n, j)
		}
	}
}

func TestVisitedAndFriendVisited(t *testing.T) {
	ds := MustGenerate(smallConfig(9))
	visited := ds.VisitedPOIs()
	friendVisited := ds.FriendVisitedPOIs()
	// N(v) must equal the union of friends' visited sets.
	for v := 0; v < ds.NumUsers; v++ {
		want := make(map[int]struct{})
		for _, f := range ds.Social.Neighbors(v) {
			for _, j := range visited[f] {
				want[j] = struct{}{}
			}
		}
		if len(want) != len(friendVisited[v]) {
			t.Fatalf("user %d: friend-visited size %d, want %d", v, len(friendVisited[v]), len(want))
		}
		for _, j := range friendVisited[v] {
			if _, ok := want[j]; !ok {
				t.Fatalf("user %d: POI %d not actually friend-visited", v, j)
			}
		}
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		cfg, err := NewPreset(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Users == 0 || cfg.POIs == 0 {
			t.Fatalf("preset %s has empty dims", name)
		}
	}
	if _, err := NewPreset("nope", 1); err == nil {
		t.Fatal("unknown preset must error")
	}
}

func TestPresetDensityOrdering(t *testing.T) {
	// GMU-5K must be the densest and Yelp the sparsest, as in the paper.
	density := func(name string) float64 {
		cfg, err := NewPreset(name, 11)
		if err != nil {
			t.Fatal(err)
		}
		// Shrink for test speed while keeping proportions.
		cfg.Users /= 4
		cfg.POIs /= 4
		return MustGenerate(cfg).Tensor(Month).Density()
	}
	gowalla, yelp, gmu := density(PresetGowalla), density(PresetYelp), density(PresetGMU5K)
	if !(gmu > gowalla && gowalla > yelp) {
		t.Fatalf("density ordering wrong: gmu=%g gowalla=%g yelp=%g", gmu, gowalla, yelp)
	}
}

func TestSummary(t *testing.T) {
	ds := MustGenerate(smallConfig(10))
	s := ds.Summary()
	if s.Users != 40 || s.POIs != 32 || s.CheckIns != len(ds.CheckIns) {
		t.Fatalf("Summary wrong: %+v", s)
	}
	if s.TensorDensityMonth <= 0 || s.MeanDegree <= 0 {
		t.Fatalf("Summary stats must be positive: %+v", s)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	ds := MustGenerate(smallConfig(11))
	dir := t.TempDir()
	if err := ds.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDir(dir, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumUsers != ds.NumUsers || len(back.POIs) != len(ds.POIs) || len(back.CheckIns) != len(ds.CheckIns) {
		t.Fatalf("round-trip dims: %d/%d/%d vs %d/%d/%d",
			back.NumUsers, len(back.POIs), len(back.CheckIns),
			ds.NumUsers, len(ds.POIs), len(ds.CheckIns))
	}
	if back.Social.EdgeCount() != ds.Social.EdgeCount() {
		t.Fatal("round-trip lost edges")
	}
	for i := range ds.CheckIns {
		if back.CheckIns[i] != ds.CheckIns[i] {
			t.Fatal("round-trip check-in mismatch")
		}
	}
	for i := range ds.POIs {
		if back.POIs[i].Category != ds.POIs[i].Category ||
			math.Abs(back.POIs[i].Loc.Lat-ds.POIs[i].Loc.Lat) > 1e-12 {
			t.Fatal("round-trip POI mismatch")
		}
	}
}

func TestReadDirMissing(t *testing.T) {
	if _, err := ReadDir(t.TempDir(), "x"); err == nil {
		t.Fatal("missing files must error")
	}
}

func TestCategoryAndGranularityStrings(t *testing.T) {
	if Shopping.String() != "shopping" || Outdoor.String() != "outdoor" {
		t.Fatal("category names wrong")
	}
	if Category(99).String() == "" {
		t.Fatal("unknown category must still render")
	}
	if Month.String() != "month" || Granularity(99).String() == "" {
		t.Fatal("granularity names wrong")
	}
}

func TestGranularityPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown granularity Len must panic")
		}
	}()
	Granularity(99).Len()
}

func TestValidateCatchesCorruption(t *testing.T) {
	ds := MustGenerate(smallConfig(50))
	cases := []func(*Dataset){
		func(d *Dataset) { d.CheckIns[0].User = -1 },
		func(d *Dataset) { d.CheckIns[0].POI = len(d.POIs) },
		func(d *Dataset) { d.CheckIns[0].Month = 12 },
		func(d *Dataset) { d.POIs[3].ID = 0 },
		func(d *Dataset) { d.Social = nil },
	}
	for n, corrupt := range cases {
		c := MustGenerate(smallConfig(50))
		_ = ds
		corrupt(c)
		if err := c.Validate(); err == nil {
			t.Fatalf("corruption %d must fail validation", n)
		}
	}
}
