package registry

import (
	"errors"
	"fmt"

	"tcss/internal/baselines"
	"tcss/internal/core"
)

// SeqScorer adapts a sequential baseline (baselines.SeqServer: STRNN, STGN,
// STAN) to the registry's NextScorer interface. The generation is fixed at
// construction — sequential models are immutable while serving; a reload
// registers a new scorer with a higher generation.
type SeqScorer struct {
	m   baselines.SeqServer
	gen uint64
}

// NewSeqScorer wraps m at the given serving generation.
func NewSeqScorer(m baselines.SeqServer, gen uint64) *SeqScorer {
	return &SeqScorer{m: m, gen: gen}
}

// Name implements Scorer.
func (s *SeqScorer) Name() string { return s.m.Name() }

// Generation implements Scorer.
func (s *SeqScorer) Generation() uint64 { return s.gen }

// Dims implements Scorer.
func (s *SeqScorer) Dims() (int, int, int) { return s.m.Dims() }

// Recommend implements Scorer.
func (s *SeqScorer) Recommend(user, t, n int) ([]core.Recommendation, uint64, error) {
	out, err := s.m.RecommendTopN(user, t, n)
	if err != nil {
		return nil, 0, mapSeqErr(err)
	}
	return toRecs(out), s.gen, nil
}

// Next implements NextScorer.
func (s *SeqScorer) Next(user int, seq []Event, t, n int) ([]core.Recommendation, uint64, error) {
	visits := make([]baselines.Visit, len(seq))
	for i, e := range seq {
		visits[i] = baselines.Visit{POI: e.POI, TimeIndex: e.T}
	}
	out, err := s.m.NextTopN(user, visits, t, n)
	if err != nil {
		return nil, 0, mapSeqErr(err)
	}
	return toRecs(out), s.gen, nil
}

func toRecs(in []baselines.ScoredPOI) []core.Recommendation {
	out := make([]core.Recommendation, len(in))
	for i, sp := range in {
		out[i] = core.Recommendation{POI: sp.POI, Score: sp.Score}
	}
	return out
}

func mapSeqErr(err error) error {
	if errors.Is(err, baselines.ErrNotFitted) {
		return fmt.Errorf("%w: %v", ErrNotReady, err)
	}
	return err
}
