package registry

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"tcss/internal/core"
)

// fakeScorer is a recommend-only scorer with fixed dims.
type fakeScorer struct {
	name string
	gen  uint64
	u, p int
	k    int
}

func (f *fakeScorer) Name() string          { return f.name }
func (f *fakeScorer) Generation() uint64    { return f.gen }
func (f *fakeScorer) Dims() (int, int, int) { return f.u, f.p, f.k }
func (f *fakeScorer) Recommend(user, t, n int) ([]core.Recommendation, uint64, error) {
	out := make([]core.Recommendation, n)
	for i := range out {
		out[i] = core.Recommendation{POI: (user + i) % f.p, Score: 1 - float64(i)/10}
	}
	return out, f.gen, nil
}

// fakeNextScorer adds next-POI capability.
type fakeNextScorer struct{ fakeScorer }

func (f *fakeNextScorer) Next(user int, seq []Event, t, n int) ([]core.Recommendation, uint64, error) {
	out := make([]core.Recommendation, n)
	for i := range out {
		out[i] = core.Recommendation{POI: (seq[len(seq)-1].POI + i) % f.p, Score: 1 - float64(i)/10}
	}
	return out, f.gen, nil
}

func newTestRegistry(t *testing.T, abFrac float64, shadow string) *Registry {
	t.Helper()
	r := New()
	if err := r.RegisterPrimary(&fakeScorer{name: "tcss", gen: 1, u: 100, p: 50, k: 12}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(&fakeNextScorer{fakeScorer{name: "STRNN", gen: 1, u: 100, p: 50, k: 12}}); err != nil {
		t.Fatal(err)
	}
	if abFrac > 0 {
		if err := r.SetAB("STRNN", abFrac); err != nil {
			t.Fatal(err)
		}
	}
	if shadow != "" {
		if err := r.SetShadow(shadow); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Finalize(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestABAssignDeterministicAndBalanced(t *testing.T) {
	// Pure function of the user id: stable within and across "restarts"
	// (there is no process state to consult at all, but pin a golden sample
	// so an accidental hash change shows up as a test failure).
	const frac = 0.5
	var golden []bool
	for user := 0; user < 16; user++ {
		golden = append(golden, ABAssign(user, frac))
	}
	for user := 0; user < 16; user++ {
		if ABAssign(user, frac) != golden[user] {
			t.Fatalf("user %d: assignment not deterministic", user)
		}
	}
	// Both arms must be populated, and the split must be near the fraction.
	var b int
	const N = 20000
	for user := 0; user < N; user++ {
		if ABAssign(user, frac) {
			b++
		}
	}
	if got := float64(b) / N; math.Abs(got-frac) > 0.02 {
		t.Fatalf("arm-B fraction = %g, want ≈%g", got, frac)
	}
	// Edges.
	if ABAssign(7, 0) {
		t.Fatal("frac 0 must never assign arm B")
	}
	if !ABAssign(7, 1) {
		t.Fatal("frac 1 must always assign arm B")
	}
}

func TestRouteDeterministicAcrossInstances(t *testing.T) {
	r1 := newTestRegistry(t, 0.5, "")
	r2 := newTestRegistry(t, 0.5, "")
	seen := map[Arm]bool{}
	for user := 0; user < 64; user++ {
		d1, err := r1.Route(user, "")
		if err != nil {
			t.Fatal(err)
		}
		d2, err := r2.Route(user, "")
		if err != nil {
			t.Fatal(err)
		}
		if d1 != d2 {
			t.Fatalf("user %d routes differently across instances: %+v vs %+v", user, d1, d2)
		}
		seen[d1.Arm] = true
		switch d1.Arm {
		case ArmA:
			if d1.Model != "tcss" {
				t.Fatalf("arm A must be the primary, got %q", d1.Model)
			}
		case ArmB:
			if d1.Model != "STRNN" {
				t.Fatalf("arm B must be STRNN, got %q", d1.Model)
			}
		default:
			t.Fatalf("unexpected arm %q with A/B enabled", d1.Arm)
		}
	}
	if !seen[ArmA] || !seen[ArmB] {
		t.Fatalf("both arms must be populated over 64 users, saw %v", seen)
	}
}

func TestRouteOverrideAndErrors(t *testing.T) {
	r := newTestRegistry(t, 0.5, "")
	d, err := r.Route(3, "STRNN")
	if err != nil || d.Model != "STRNN" || d.Arm != ArmOverride {
		t.Fatalf("override route = %+v, %v", d, err)
	}
	if _, err := r.Route(3, "nope"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown override err = %v, want ErrUnknownModel", err)
	}
	if _, err := r.RouteNext(3, "nope"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown next override err = %v, want ErrUnknownModel", err)
	}
	// tcss exists but cannot score sequences.
	if _, err := r.RouteNext(3, "tcss"); !errors.Is(err, ErrNotNextCapable) {
		t.Fatalf("non-next override err = %v, want ErrNotNextCapable", err)
	}
	// Policy-routed next goes to the sequential default.
	d, err = r.RouteNext(3, "")
	if err != nil || d.Model != "STRNN" {
		t.Fatalf("next route = %+v, %v", d, err)
	}
}

func TestRouteNextNoSequentialModel(t *testing.T) {
	r := New()
	if err := r.RegisterPrimary(&fakeScorer{name: "tcss", gen: 1, u: 10, p: 5, k: 3}); err != nil {
		t.Fatal(err)
	}
	if err := r.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RouteNext(0, ""); !errors.Is(err, ErrNoNextModel) {
		t.Fatalf("err = %v, want ErrNoNextModel", err)
	}
}

func TestShadowNeverShadowsItself(t *testing.T) {
	r := newTestRegistry(t, 0.5, "STRNN")
	sawShadow := false
	for user := 0; user < 64; user++ {
		d, err := r.Route(user, "")
		if err != nil {
			t.Fatal(err)
		}
		if d.Model == "STRNN" && d.Shadow != "" {
			t.Fatalf("user %d: model shadows itself: %+v", user, d)
		}
		if d.Model == "tcss" {
			if d.Shadow != "STRNN" {
				t.Fatalf("user %d: expected shadow STRNN, got %+v", user, d)
			}
			sawShadow = true
		}
	}
	if !sawShadow {
		t.Fatal("no request carried a shadow decision")
	}
	// Next-path shadow requires next capability: shadowing tcss is dropped.
	r2 := newTestRegistry(t, 0, "tcss")
	d, err := r2.RouteNext(1, "")
	if err != nil {
		t.Fatal(err)
	}
	if d.Shadow != "" {
		t.Fatalf("next decision shadows non-next-capable model: %+v", d)
	}
}

func TestFinalizeValidation(t *testing.T) {
	r := New()
	if err := r.Finalize(); err == nil {
		t.Fatal("Finalize without a primary must fail")
	}

	r = New()
	if err := r.RegisterPrimary(&fakeScorer{name: "tcss", gen: 1, u: 10, p: 5, k: 3}); err != nil {
		t.Fatal(err)
	}
	if err := r.SetAB("ghost", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := r.Finalize(); err == nil {
		t.Fatal("Finalize with unregistered A/B model must fail")
	}

	r = New()
	if err := r.RegisterPrimary(&fakeScorer{name: "tcss", gen: 1, u: 10, p: 5, k: 3}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(&fakeScorer{name: "other", gen: 1, u: 11, p: 5, k: 3}); err != nil {
		t.Fatal(err)
	}
	if err := r.Finalize(); err == nil {
		t.Fatal("Finalize with disagreeing dims must fail")
	}

	// Unfitted models (zero dims) are registrable: they answer 503.
	r = New()
	if err := r.RegisterPrimary(&fakeScorer{name: "tcss", gen: 1, u: 10, p: 5, k: 3}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(&fakeNextScorer{fakeScorer{name: "STRNN"}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Finalize(); err != nil {
		t.Fatalf("Finalize with unfitted model: %v", err)
	}
	if d, err := r.RouteNext(0, ""); err != nil || d.Model != "STRNN" {
		t.Fatalf("unfitted next default: %+v, %v", d, err)
	}
}

func TestStatsAndShadowAccounting(t *testing.T) {
	r := newTestRegistry(t, 0, "STRNN")
	r.RecordServe("tcss", false, false, 2*time.Millisecond)
	r.RecordServe("tcss", false, true, 0)
	r.RecordServe("STRNN", true, false, 3*time.Millisecond)
	r.RecordNotReady("STRNN")
	r.RecordShadow("STRNN", 0.8, false)
	r.RecordShadow("STRNN", 1.0, true)

	stats, info := r.Stats()
	if info.Primary != "tcss" || info.Shadow != "STRNN" || info.NextDefault != "STRNN" {
		t.Fatalf("routing info = %+v", info)
	}
	byName := map[string]ModelStats{}
	for _, ms := range stats {
		byName[ms.Name] = ms
	}
	tc := byName["tcss"]
	if tc.Requests != 2 || tc.CacheHits != 1 || tc.P50ms <= 0 {
		t.Fatalf("tcss stats = %+v", tc)
	}
	sr := byName["STRNN"]
	if sr.NextRequests != 1 || sr.NotReady != 1 || sr.NextP50ms <= 0 {
		t.Fatalf("STRNN stats = %+v", sr)
	}
	if sr.Shadow.Scored != 2 || math.Abs(sr.Shadow.AgreementAvg-0.9) > 1e-9 || sr.Shadow.ExactFrac != 0.5 {
		t.Fatalf("shadow stats = %+v", sr.Shadow)
	}
}

func TestShadowGoBoundedAndDrains(t *testing.T) {
	r := newTestRegistry(t, 0, "")
	block := make(chan struct{})
	var scheduled int
	for i := 0; i < 10; i++ {
		if r.ShadowGo(func() { <-block }) {
			scheduled++
		}
	}
	if scheduled != cap(r.shadowSem) {
		t.Fatalf("scheduled %d shadows, want %d", scheduled, cap(r.shadowSem))
	}
	_, info := r.Stats()
	if info.ShadowDropped != int64(10-scheduled) {
		t.Fatalf("dropped = %d, want %d", info.ShadowDropped, 10-scheduled)
	}
	close(block)
	r.DrainShadows()
}

func TestOverlap(t *testing.T) {
	cases := []struct {
		a, b  []int
		frac  float64
		exact bool
	}{
		{[]int{1, 2, 3}, []int{3, 2, 1}, 1, true},
		{[]int{1, 2, 3}, []int{1, 2, 4}, 2.0 / 3, false},
		{[]int{1, 2}, []int{3, 4}, 0, false},
		{nil, nil, 1, true},
		{nil, []int{1}, 0, false},
	}
	for i, c := range cases {
		frac, exact := Overlap(c.a, c.b)
		if math.Abs(frac-c.frac) > 1e-12 || exact != c.exact {
			t.Fatalf("case %d: Overlap = (%g,%v), want (%g,%v)", i, frac, exact, c.frac, c.exact)
		}
	}
}

func ExampleABAssign() {
	// The assignment depends only on the user id and fraction.
	fmt.Println(ABAssign(42, 0.5) == ABAssign(42, 0.5))
	// Output: true
}
