package registry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// statsWindow bounds the per-model latency sample rings. Small relative to
// the server-wide ring: per-model percentiles only need to be indicative.
const statsWindow = 2048

// entry is one registered model plus its serving counters. All fields are
// updated with atomics or under the ring mutex, so recording is safe from any
// request goroutine.
type entry struct {
	s Scorer

	requests     atomic.Int64 // /v1/recommend responses served by this model
	nextRequests atomic.Int64 // /v1/next responses served by this model
	cacheHits    atomic.Int64
	notReady     atomic.Int64 // requests answered 503 (model not fitted)

	lat     sampleRing // recommend latencies
	nextLat sampleRing // next latencies

	shadowScored  atomic.Int64 // shadow scores completed for this model
	shadowErrors  atomic.Int64
	shadowOverlap atomic.Int64 // Σ top-K overlap, in millionths
	shadowExact   atomic.Int64 // shadow top-K exactly matched primary
}

func newEntry(s Scorer) *entry { return &entry{s: s} }

// sampleRing is a fixed-size mutex-guarded latency reservoir.
type sampleRing struct {
	mu      sync.Mutex
	samples [statsWindow]float64
	n       int
	next    int
}

func (r *sampleRing) observe(ms float64) {
	r.mu.Lock()
	r.samples[r.next] = ms
	r.next = (r.next + 1) % statsWindow
	if r.n < statsWindow {
		r.n++
	}
	r.mu.Unlock()
}

// percentiles returns (count, p50, p95, p99) over the retained window.
func (r *sampleRing) percentiles() (int, float64, float64, float64) {
	r.mu.Lock()
	buf := make([]float64, r.n)
	copy(buf, r.samples[:r.n])
	r.mu.Unlock()
	if len(buf) == 0 {
		return 0, 0, 0, 0
	}
	sort.Float64s(buf)
	pick := func(p float64) float64 {
		idx := int(math.Ceil(p*float64(len(buf)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(buf) {
			idx = len(buf) - 1
		}
		return buf[idx]
	}
	return len(buf), pick(0.50), pick(0.95), pick(0.99)
}

// ShadowStats summarizes off-path scoring agreement for one model.
type ShadowStats struct {
	// Scored counts completed shadow scorings of this model.
	Scored int64 `json:"scored"`
	// Errors counts shadow scorings that failed (e.g. model not fitted).
	Errors int64 `json:"errors,omitempty"`
	// AgreementAvg is the mean top-K overlap fraction between the shadow's
	// ranking and the primary response ([0,1]).
	AgreementAvg float64 `json:"agreement_avg"`
	// ExactFrac is the fraction of shadow scorings whose top-K POI sets
	// matched the primary exactly.
	ExactFrac float64 `json:"exact_frac"`
}

// ModelStats is the per-model metrics block exposed under /metrics.
type ModelStats struct {
	Name         string      `json:"name"`
	Roles        []string    `json:"roles"`
	Generation   uint64      `json:"generation"`
	Requests     int64       `json:"requests"`
	NextRequests int64       `json:"next_requests"`
	CacheHits    int64       `json:"cache_hits"`
	NotReady     int64       `json:"not_ready_503"`
	P50ms        float64     `json:"p50_ms"`
	P95ms        float64     `json:"p95_ms"`
	P99ms        float64     `json:"p99_ms"`
	NextP50ms    float64     `json:"next_p50_ms"`
	NextP95ms    float64     `json:"next_p95_ms"`
	NextP99ms    float64     `json:"next_p99_ms"`
	Shadow       ShadowStats `json:"shadow"`
}

// RoutingInfo is the routing-policy block exposed under /metrics.
type RoutingInfo struct {
	Primary     string  `json:"primary"`
	ABModel     string  `json:"ab_model,omitempty"`
	ABFracB     float64 `json:"ab_frac_b,omitempty"`
	Shadow      string  `json:"shadow,omitempty"`
	NextDefault string  `json:"next_default,omitempty"`
	// ShadowDropped counts shadow scorings skipped because all shadow
	// slots were busy.
	ShadowDropped int64 `json:"shadow_dropped,omitempty"`
}

// Stats snapshots per-model counters (registration order) and the routing
// configuration.
func (r *Registry) Stats() ([]ModelStats, RoutingInfo) {
	out := make([]ModelStats, 0, len(r.order))
	for _, name := range r.order {
		e := r.entries[name]
		ms := ModelStats{
			Name:         name,
			Roles:        r.rolesOf(name),
			Generation:   e.s.Generation(),
			Requests:     e.requests.Load(),
			NextRequests: e.nextRequests.Load(),
			CacheHits:    e.cacheHits.Load(),
			NotReady:     e.notReady.Load(),
		}
		_, ms.P50ms, ms.P95ms, ms.P99ms = e.lat.percentiles()
		_, ms.NextP50ms, ms.NextP95ms, ms.NextP99ms = e.nextLat.percentiles()
		scored := e.shadowScored.Load()
		ms.Shadow = ShadowStats{Scored: scored, Errors: e.shadowErrors.Load()}
		if scored > 0 {
			ms.Shadow.AgreementAvg = float64(e.shadowOverlap.Load()) / 1e6 / float64(scored)
			ms.Shadow.ExactFrac = float64(e.shadowExact.Load()) / float64(scored)
		}
		out = append(out, ms)
	}
	info := RoutingInfo{
		Primary:       r.primary,
		ABModel:       r.abB,
		ABFracB:       r.abFrac,
		Shadow:        r.shadow,
		NextDefault:   r.nextDef,
		ShadowDropped: r.shadowDropped.Load(),
	}
	return out, info
}

func (r *Registry) rolesOf(name string) []string {
	roles := []string{}
	if name == r.primary {
		roles = append(roles, "primary")
	}
	if name == r.abB {
		roles = append(roles, "ab-b")
	}
	if name == r.shadow {
		roles = append(roles, "shadow")
	}
	if name == r.nextDef {
		roles = append(roles, "next-default")
	}
	if len(roles) == 0 {
		roles = append(roles, "registered")
	}
	return roles
}

// RecordServe records one served response for the named model. next selects
// the /v1/next counters, cacheHit marks responses answered from the response
// cache (their latency is not recorded against the model — the model did not
// score).
func (r *Registry) RecordServe(name string, next, cacheHit bool, d time.Duration) {
	e, ok := r.entries[name]
	if !ok {
		return
	}
	ms := float64(d) / float64(time.Millisecond)
	if next {
		e.nextRequests.Add(1)
	} else {
		e.requests.Add(1)
	}
	if cacheHit {
		e.cacheHits.Add(1)
		return
	}
	if next {
		e.nextLat.observe(ms)
	} else {
		e.lat.observe(ms)
	}
}

// RecordNotReady records a 503 answered because the named model is unfitted.
func (r *Registry) RecordNotReady(name string) {
	if e, ok := r.entries[name]; ok {
		e.notReady.Add(1)
	}
}

// RecordShadow records one completed shadow scoring of the named model with
// the given top-K overlap fraction against the primary response.
func (r *Registry) RecordShadow(name string, overlap float64, exact bool) {
	e, ok := r.entries[name]
	if !ok {
		return
	}
	e.shadowScored.Add(1)
	e.shadowOverlap.Add(int64(overlap * 1e6))
	if exact {
		e.shadowExact.Add(1)
	}
}

// RecordShadowError records a failed shadow scoring of the named model.
func (r *Registry) RecordShadowError(name string) {
	if e, ok := r.entries[name]; ok {
		e.shadowErrors.Add(1)
	}
}
