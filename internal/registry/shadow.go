package registry

// ShadowGo runs fn on a shadow slot off the request path. It never blocks
// the caller: when every slot is busy the scoring is dropped and counted
// instead of queued, so shadow load cannot back up foreground requests. It
// reports whether fn was scheduled.
func (r *Registry) ShadowGo(fn func()) bool {
	select {
	case r.shadowSem <- struct{}{}:
	default:
		r.shadowDropped.Add(1)
		return false
	}
	r.shadowWG.Add(1)
	go func() {
		defer func() {
			<-r.shadowSem
			r.shadowWG.Done()
		}()
		fn()
	}()
	return true
}

// DrainShadows blocks until every in-flight shadow scoring has finished.
// Tests use it to read agreement counters deterministically; servers call it
// on shutdown.
func (r *Registry) DrainShadows() {
	r.shadowWG.Wait()
}

// Overlap returns |a ∩ b| / len(a) over two POI id lists (the top-K overlap
// agreement metric) and whether the sets match exactly. An empty primary
// list compares as full agreement only against an empty shadow list.
func Overlap(a, b []int) (float64, bool) {
	if len(a) == 0 {
		return boolToFloat(len(b) == 0), len(b) == 0
	}
	set := make(map[int]struct{}, len(a))
	for _, p := range a {
		set[p] = struct{}{}
	}
	var hit int
	for _, p := range b {
		if _, ok := set[p]; ok {
			hit++
		}
	}
	frac := float64(hit) / float64(len(a))
	exact := hit == len(a) && len(b) == len(a)
	return frac, exact
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
