// Package registry is the multi-model serving layer: a named set of Scorers
// (the TCSS snapshot plus any sequential models) with per-request routing
// policies — deterministic hash-split A/B by user id, explicit ?model=
// override, and off-path shadow scoring — and per-model serving metrics.
//
// The registry is configured once (Register*, SetAB, SetShadow, Finalize)
// before the HTTP server starts taking traffic; after Finalize the routing
// configuration is immutable, so Route/RouteNext read it without locks.
package registry

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"tcss/internal/core"
)

// Scorer is the model seam the serving tier routes through instead of a
// concrete core.Model: anything that can rank POIs for a (user, time) query
// and report its dimensions and snapshot generation is servable.
type Scorer interface {
	Name() string
	// Generation is the serving-snapshot generation of the model's current
	// state; it keys response caches so a swap invalidates stale entries.
	Generation() uint64
	// Dims reports (users, pois, times).
	Dims() (users, pois, times int)
	// Recommend returns the top-n POIs for user at time unit t along with
	// the generation the scores were computed against.
	Recommend(user, t, n int) ([]core.Recommendation, uint64, error)
}

// Event is one check-in of a next-POI query sequence.
type Event struct {
	POI int
	T   int
}

// NextScorer is a Scorer that can additionally score the next POI after a
// caller-supplied check-in sequence (the sequential models).
type NextScorer interface {
	Scorer
	Next(user int, seq []Event, t, n int) ([]core.Recommendation, uint64, error)
}

// Sentinel errors, mapped to HTTP statuses by the serving handlers.
var (
	// ErrUnknownModel: the requested model name is not registered (404).
	ErrUnknownModel = errors.New("registry: unknown model")
	// ErrNotReady: the model exists but cannot score yet, e.g. a sequential
	// model that is not fitted (503).
	ErrNotReady = errors.New("registry: model is not ready to score")
	// ErrNotNextCapable: the requested model cannot score next-POI queries
	// (400 — the request is malformed for this model).
	ErrNotNextCapable = errors.New("registry: model cannot score next-POI queries")
	// ErrNoNextModel: no registered model is next-capable (404 — the
	// endpoint has nothing to route to).
	ErrNoNextModel = errors.New("registry: no next-POI capable model registered")
)

// Arm labels which routing policy selected the model for a request.
type Arm string

const (
	ArmDefault  Arm = "default"
	ArmA        Arm = "ab-a"
	ArmB        Arm = "ab-b"
	ArmOverride Arm = "override"
)

// Decision is the outcome of routing one request.
type Decision struct {
	// Model is the name of the scorer that answers the request.
	Model string
	// Arm records which policy picked it.
	Arm Arm
	// Shadow, when non-empty, names the model to score off the request
	// path for agreement tracking. Never equal to Model.
	Shadow string
}

// Registry holds the named scorers and the routing configuration.
type Registry struct {
	order   []string
	entries map[string]*entry

	primary string  // arm-A / default model
	abB     string  // arm-B model ("" = no split)
	abFrac  float64 // fraction of users routed to abB
	shadow  string  // shadow model ("" = off)
	nextDef string  // default next-POI model ("" = none registered)
	final   bool

	shadowSem     chan struct{}
	shadowWG      sync.WaitGroup
	shadowDropped atomic.Int64
}

// New returns an empty registry. Shadow scoring is bounded to a small fixed
// number of concurrent off-path requests; excess shadows are dropped and
// counted rather than queued, so a slow shadow model cannot back up the
// foreground path.
func New() *Registry {
	return &Registry{
		entries:   make(map[string]*entry),
		shadowSem: make(chan struct{}, 4),
	}
}

// Register adds a scorer under its own name.
func (r *Registry) Register(s Scorer) error {
	if r.final {
		return fmt.Errorf("registry: Register after Finalize")
	}
	name := s.Name()
	if name == "" {
		return fmt.Errorf("registry: scorer has empty name")
	}
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("registry: duplicate model name %q", name)
	}
	r.entries[name] = newEntry(s)
	r.order = append(r.order, name)
	return nil
}

// RegisterPrimary registers s and makes it the default (arm-A) model.
func (r *Registry) RegisterPrimary(s Scorer) error {
	if err := r.Register(s); err != nil {
		return err
	}
	r.primary = s.Name()
	return nil
}

// SetAB enables a deterministic hash-split: fracB of users (by id) are routed
// to model b, the rest to the primary.
func (r *Registry) SetAB(b string, fracB float64) error {
	if r.final {
		return fmt.Errorf("registry: SetAB after Finalize")
	}
	if fracB < 0 || fracB > 1 {
		return fmt.Errorf("registry: A/B fraction %g outside [0,1]", fracB)
	}
	r.abB = b
	r.abFrac = fracB
	return nil
}

// SetShadow enables off-path shadow scoring against the named model on every
// request whose routed model differs from it.
func (r *Registry) SetShadow(name string) error {
	if r.final {
		return fmt.Errorf("registry: SetShadow after Finalize")
	}
	r.shadow = name
	return nil
}

// Finalize validates the configuration and freezes it. All referenced names
// must be registered, every scorer must agree with the primary on dimensions,
// and the default next-POI model becomes the first registered NextScorer.
func (r *Registry) Finalize() error {
	if r.final {
		return fmt.Errorf("registry: Finalize called twice")
	}
	if r.primary == "" {
		return fmt.Errorf("registry: no primary model registered")
	}
	pu, pp, pt := r.entries[r.primary].s.Dims()
	for _, name := range r.order {
		e := r.entries[name]
		u, p, t := e.s.Dims()
		// A not-yet-fitted model reports zero dims; it is routable (and
		// answers 503) so dimension agreement is only enforced once it has
		// state.
		if u == 0 && p == 0 && t == 0 {
			continue
		}
		if u != pu || p != pp || t != pt {
			return fmt.Errorf("registry: model %q dims (%d,%d,%d) disagree with primary %q (%d,%d,%d)",
				name, u, p, t, r.primary, pu, pp, pt)
		}
		if _, ok := e.s.(NextScorer); ok && r.nextDef == "" {
			r.nextDef = name
		}
	}
	// An unfitted NextScorer can still be the next default.
	if r.nextDef == "" {
		for _, name := range r.order {
			if _, ok := r.entries[name].s.(NextScorer); ok {
				r.nextDef = name
				break
			}
		}
	}
	if r.abB != "" {
		if _, ok := r.entries[r.abB]; !ok {
			return fmt.Errorf("registry: A/B model %q is not registered", r.abB)
		}
	}
	if r.shadow != "" {
		if _, ok := r.entries[r.shadow]; !ok {
			return fmt.Errorf("registry: shadow model %q is not registered", r.shadow)
		}
	}
	r.final = true
	return nil
}

// Names returns the registered model names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Get returns the named scorer.
func (r *Registry) Get(name string) (Scorer, bool) {
	e, ok := r.entries[name]
	if !ok {
		return nil, false
	}
	return e.s, true
}

// Route decides which model answers a /v1/recommend request. override is the
// ?model= query value ("" = policy routing).
func (r *Registry) Route(user int, override string) (Decision, error) {
	if override != "" {
		if _, ok := r.entries[override]; !ok {
			return Decision{}, fmt.Errorf("%w: %q", ErrUnknownModel, override)
		}
		return r.withShadow(Decision{Model: override, Arm: ArmOverride}), nil
	}
	d := Decision{Model: r.primary, Arm: ArmDefault}
	if r.abB != "" {
		if ABAssign(user, r.abFrac) {
			d = Decision{Model: r.abB, Arm: ArmB}
		} else {
			d = Decision{Model: r.primary, Arm: ArmA}
		}
	}
	return r.withShadow(d), nil
}

// RouteNext decides which model answers a /v1/next request. Only
// next-capable models are eligible: an override naming a model that cannot
// score sequences fails with ErrNotNextCapable, and policy routing targets
// the default sequential model (A/B applies when both arms are
// next-capable).
func (r *Registry) RouteNext(user int, override string) (Decision, error) {
	if override != "" {
		e, ok := r.entries[override]
		if !ok {
			return Decision{}, fmt.Errorf("%w: %q", ErrUnknownModel, override)
		}
		if _, ok := e.s.(NextScorer); !ok {
			return Decision{}, fmt.Errorf("%w: %q", ErrNotNextCapable, override)
		}
		return r.withNextShadow(Decision{Model: override, Arm: ArmOverride}), nil
	}
	if r.nextDef == "" {
		return Decision{}, ErrNoNextModel
	}
	d := Decision{Model: r.nextDef, Arm: ArmDefault}
	if r.abB != "" && r.abB != r.nextDef {
		_, aOK := r.entries[r.nextDef].s.(NextScorer)
		_, bOK := r.entries[r.abB].s.(NextScorer)
		if aOK && bOK {
			if ABAssign(user, r.abFrac) {
				d = Decision{Model: r.abB, Arm: ArmB}
			} else {
				d = Decision{Model: r.nextDef, Arm: ArmA}
			}
		}
	}
	return r.withNextShadow(d), nil
}

func (r *Registry) withShadow(d Decision) Decision {
	if r.shadow != "" && r.shadow != d.Model {
		d.Shadow = r.shadow
	}
	return d
}

func (r *Registry) withNextShadow(d Decision) Decision {
	if r.shadow != "" && r.shadow != d.Model {
		if _, ok := r.entries[r.shadow].s.(NextScorer); ok {
			d.Shadow = r.shadow
		}
	}
	return d
}

// abSalt decorrelates the A/B assignment hash from the cluster ring's shard
// placement hash (which feeds the bare user id through splitmix64): without
// it, arm membership would be a strict function of shard ownership.
const abSalt = 0x5bd1e995a0f3c1e7

// ABAssign reports whether user falls in arm B at the given fraction. The
// assignment is a pure function of the user id, so it is stable across
// process restarts and identical on every shard replica.
func ABAssign(user int, fracB float64) bool {
	if fracB <= 0 {
		return false
	}
	if fracB >= 1 {
		return true
	}
	h := splitmix64(uint64(user) ^ abSalt)
	// Top 53 bits → uniform float in [0,1).
	return float64(h>>11)/float64(1<<53) < fracB
}

// splitmix64 is the SplitMix64 finalizer (Steele et al.), a high-quality
// avalanche mix of a 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
