package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// ErdosRenyi returns a G(n, p) random graph: each of the n·(n-1)/2 possible
// edges is present independently with probability p.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: ErdosRenyi p=%g out of [0,1]", p))
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// WattsStrogatz returns a small-world graph: a ring lattice where every
// vertex connects to its k nearest neighbours (k must be even and < n), with
// each lattice edge rewired to a random endpoint with probability beta.
// Social networks in LBSNs exhibit exactly this high-clustering,
// short-path-length structure, so the LBSN simulator defaults to it.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) *Graph {
	if k%2 != 0 || k <= 0 || k >= n {
		panic(fmt.Sprintf("graph: WattsStrogatz k=%d must be even and in (0,%d)", k, n))
	}
	if beta < 0 || beta > 1 {
		panic(fmt.Sprintf("graph: WattsStrogatz beta=%g out of [0,1]", beta))
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for step := 1; step <= k/2; step++ {
			g.AddEdge(u, (u+step)%n)
		}
	}
	// Rewire each original lattice edge (u, u+step) with probability beta.
	for u := 0; u < n; u++ {
		for step := 1; step <= k/2; step++ {
			v := (u + step) % n
			if rng.Float64() >= beta {
				continue
			}
			if g.Degree(u) >= n-1 {
				continue // u already connected to everyone
			}
			w := rng.Intn(n)
			for w == u || g.HasEdge(u, w) {
				w = rng.Intn(n)
			}
			g.RemoveEdge(u, v)
			g.AddEdge(u, w)
		}
	}
	return g
}

// BarabasiAlbert returns a preferential-attachment graph: starting from a
// clique on m+1 vertices, each new vertex attaches m edges to existing
// vertices with probability proportional to their degree. It produces the
// heavy-tailed degree distributions seen in large follower networks.
func BarabasiAlbert(n, m int, rng *rand.Rand) *Graph {
	if m <= 0 || m >= n {
		panic(fmt.Sprintf("graph: BarabasiAlbert m=%d must be in (0,%d)", m, n))
	}
	g := New(n)
	// Repeated-endpoint list: picking uniformly from it is degree-biased.
	var endpoints []int
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			g.AddEdge(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	for u := m + 1; u < n; u++ {
		chosen := make(map[int]struct{}, m)
		for len(chosen) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			if t != u {
				chosen[t] = struct{}{}
			}
		}
		// Iterate the chosen set in sorted order: map order is randomized
		// per process, and the append order below feeds later rng.Intn
		// index lookups, so an unsorted walk would make the whole graph
		// irreproducible across runs with the same seed.
		picks := make([]int, 0, m)
		for v := range chosen {
			picks = append(picks, v)
		}
		sort.Ints(picks)
		for _, v := range picks {
			g.AddEdge(u, v)
			endpoints = append(endpoints, u, v)
		}
	}
	return g
}

// HomophilousFriendship wires a friendship graph where the probability of an
// edge between u and v decays with the distance between their home positions:
// p(u,v) = pNear if affinity(u,v) < threshold, else pFar. affinity is any
// symmetric dissimilarity (the LBSN simulator passes home-location distance),
// which plants the friends-live-and-check-in-nearby structure the social
// Hausdorff loss exploits.
func HomophilousFriendship(n int, affinity func(u, v int) float64, threshold, pNear, pFar float64, rng *rand.Rand) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pFar
			if affinity(u, v) < threshold {
				p = pNear
			}
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// EnsureMinDegree adds random edges until every vertex has at least minDeg
// neighbours, mirroring the paper's preprocessing step of keeping only users
// with at least one friend (instead of dropping users we connect them, which
// keeps tensor indices dense).
func EnsureMinDegree(g *Graph, minDeg int, rng *rand.Rand) {
	n := g.N()
	if minDeg >= n {
		panic(fmt.Sprintf("graph: EnsureMinDegree %d impossible for %d vertices", minDeg, n))
	}
	for v := 0; v < n; v++ {
		for g.Degree(v) < minDeg {
			u := rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v)
			}
		}
	}
}
