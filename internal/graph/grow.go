package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// AddVertices appends k isolated vertices and returns the id of the first new
// one. Existing edges are untouched, so a grown graph is a strict superset of
// the old one — the invariant open-world growth relies on.
func (g *Graph) AddVertices(k int) int {
	if k < 0 {
		panic(fmt.Sprintf("graph: cannot add %d vertices", k))
	}
	first := g.n
	for i := 0; i < k; i++ {
		g.adj = append(g.adj, make(map[int]struct{}))
	}
	g.n += k
	return first
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New(g.n)
	for v, nbrs := range g.adj {
		for u := range nbrs {
			out.adj[v][u] = struct{}{}
		}
	}
	return out
}

// PreferentialAttach wires vertex v to up to m distinct existing vertices,
// chosen with probability proportional to degree+1 — the Barabási–Albert
// arrival rule, with the +1 keeping isolated vertices reachable. Vertices
// already adjacent to v (and v itself) are excluded. It returns the sorted
// new neighbour ids and is deterministic under rng: candidates are scanned in
// vertex order.
func (g *Graph) PreferentialAttach(v, m int, rng *rand.Rand) []int {
	g.checkVertex(v)
	picked := make([]int, 0, m)
	for len(picked) < m {
		total := 0
		for u := 0; u < g.n; u++ {
			if u == v || g.HasEdge(u, v) {
				continue
			}
			total += len(g.adj[u]) + 1
		}
		if total == 0 {
			break
		}
		x := rng.Intn(total)
		for u := 0; u < g.n; u++ {
			if u == v || g.HasEdge(u, v) {
				continue
			}
			x -= len(g.adj[u]) + 1
			if x < 0 {
				g.AddEdge(u, v)
				picked = append(picked, u)
				break
			}
		}
	}
	sort.Ints(picked)
	return picked
}
