package graph

import (
	"math/rand"
	"testing"
)

func TestAddVertices(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	first := g.AddVertices(2)
	if first != 3 || g.N() != 5 {
		t.Fatalf("first=%d N=%d, want 3/5", first, g.N())
	}
	if !g.HasEdge(0, 1) {
		t.Error("existing edge lost")
	}
	if g.Degree(3) != 0 || g.Degree(4) != 0 {
		t.Error("new vertices not isolated")
	}
	g.AddEdge(4, 0)
	if !g.HasEdge(0, 4) {
		t.Error("cannot wire new vertex")
	}
}

func TestClone(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	c := g.Clone()
	c.AddEdge(0, 2)
	c.RemoveEdge(0, 1)
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Error("clone mutation leaked into original")
	}
	if !c.HasEdge(2, 3) {
		t.Error("clone missing original edge")
	}
}

func TestPreferentialAttachBiasAndDeterminism(t *testing.T) {
	build := func(seed int64) (*Graph, []int) {
		g := New(6)
		// Hub: vertex 0 with degree 4.
		for v := 1; v <= 4; v++ {
			g.AddEdge(0, v)
		}
		v := g.AddVertices(1)
		picked := g.PreferentialAttach(v, 2, rand.New(rand.NewSource(seed)))
		return g, picked
	}
	g, picked := build(9)
	if len(picked) != 2 {
		t.Fatalf("picked %v, want 2 neighbours", picked)
	}
	for _, u := range picked {
		if !g.HasEdge(u, 6) {
			t.Errorf("picked %d but edge missing", u)
		}
	}
	_, again := build(9)
	if len(again) != len(picked) || again[0] != picked[0] || again[1] != picked[1] {
		t.Errorf("same seed picked %v then %v", picked, again)
	}

	// Degree bias: over many trials the hub must be chosen far more often
	// than the isolated vertex 5.
	rng := rand.New(rand.NewSource(17))
	hub, isolated := 0, 0
	for trial := 0; trial < 2000; trial++ {
		g := New(6)
		for v := 1; v <= 4; v++ {
			g.AddEdge(0, v)
		}
		v := g.AddVertices(1)
		for _, u := range g.PreferentialAttach(v, 1, rng) {
			switch u {
			case 0:
				hub++
			case 5:
				isolated++
			}
		}
	}
	if hub <= 3*isolated {
		t.Errorf("hub picked %d times vs isolated %d — no degree bias", hub, isolated)
	}
}

func TestPreferentialAttachExhaustsCandidates(t *testing.T) {
	g := New(3)
	picked := g.PreferentialAttach(0, 10, rand.New(rand.NewSource(1)))
	if len(picked) != 2 {
		t.Fatalf("picked %v, want both other vertices", picked)
	}
}
