// Package graph implements the undirected social graph of an LBSN: an
// adjacency-list structure with neighbour queries, traversal, and similarity
// statistics, plus the random-graph generators (Erdős–Rényi, Watts–Strogatz,
// Barabási–Albert) the LBSN simulator uses to wire friendships.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over vertices 0..N-1 with no self-loops
// or parallel edges. The zero Graph is unusable; construct with New.
type Graph struct {
	n   int
	adj []map[int]struct{}
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("graph: invalid vertex count %d", n))
	}
	adj := make([]map[int]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	return &Graph{n: n, adj: adj}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u, v}. Self-loops are rejected;
// duplicate insertions are no-ops.
func (g *Graph) AddEdge(u, v int) {
	g.checkVertex(u)
	g.checkVertex(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop on vertex %d", u))
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.checkVertex(u)
	g.checkVertex(v)
	_, ok := g.adj[u][v]
	return ok
}

// RemoveEdge deletes the undirected edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	g.checkVertex(u)
	g.checkVertex(v)
	delete(g.adj[u], v)
	delete(g.adj[v], u)
}

func (g *Graph) checkVertex(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// Degree returns the number of neighbours of v.
func (g *Graph) Degree(v int) int {
	g.checkVertex(v)
	return len(g.adj[v])
}

// Neighbors returns the sorted neighbour list of v.
func (g *Graph) Neighbors(v int) []int {
	g.checkVertex(v)
	out := make([]int, 0, len(g.adj[v]))
	for u := range g.adj[v] {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	var total int
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

// Edges returns every undirected edge once, as ordered pairs (u < v), sorted.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int{u, v})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// Components returns the connected components as sorted vertex lists, largest
// first (ties broken by smallest vertex).
func (g *Graph) Components() [][]int {
	visited := make([]bool, g.n)
	var comps [][]int
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = queue[:0]
		queue = append(queue, s)
		comp := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := range g.adj[u] {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
					comp = append(comp, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(a, b int) bool {
		if len(comps[a]) != len(comps[b]) {
			return len(comps[a]) > len(comps[b])
		}
		return comps[a][0] < comps[b][0]
	})
	return comps
}

// CommonNeighbors returns the number of shared neighbours of u and v.
func (g *Graph) CommonNeighbors(u, v int) int {
	g.checkVertex(u)
	g.checkVertex(v)
	a, b := g.adj[u], g.adj[v]
	if len(b) < len(a) {
		a, b = b, a
	}
	var c int
	for w := range a {
		if _, ok := b[w]; ok {
			c++
		}
	}
	return c
}

// Jaccard returns the Jaccard similarity of the neighbourhoods of u and v,
// or 0 when both are isolated.
func (g *Graph) Jaccard(u, v int) float64 {
	common := g.CommonNeighbors(u, v)
	union := g.Degree(u) + g.Degree(v) - common
	if union == 0 {
		return 0
	}
	return float64(common) / float64(union)
}

// AverageDegree returns the mean vertex degree.
func (g *Graph) AverageDegree() float64 {
	return 2 * float64(g.EdgeCount()) / float64(g.n)
}

// LocalClustering returns the clustering coefficient of v: the fraction of
// pairs of v's neighbours that are themselves connected, or 0 for degree < 2.
func (g *Graph) LocalClustering(v int) float64 {
	nbrs := g.Neighbors(v)
	if len(nbrs) < 2 {
		return 0
	}
	var closed int
	for a := 0; a < len(nbrs); a++ {
		for b := a + 1; b < len(nbrs); b++ {
			if g.HasEdge(nbrs[a], nbrs[b]) {
				closed++
			}
		}
	}
	return float64(closed) / float64(len(nbrs)*(len(nbrs)-1)/2)
}

// AverageClustering returns the mean local clustering coefficient, the
// standard small-world statistic. Social networks have high clustering;
// Erdős–Rényi graphs of the same density do not — the LBSN generator's
// Watts-Strogatz backbone is verified against this.
func (g *Graph) AverageClustering() float64 {
	var sum float64
	for v := 0; v < g.n; v++ {
		sum += g.LocalClustering(v)
	}
	return sum / float64(g.n)
}
