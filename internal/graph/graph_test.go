package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddHasRemoveEdge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 2)
	if !g.HasEdge(0, 2) || !g.HasEdge(2, 0) {
		t.Fatal("edge must be undirected")
	}
	g.AddEdge(0, 2) // duplicate is a no-op
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d, want 1", g.EdgeCount())
	}
	g.RemoveEdge(2, 0)
	if g.HasEdge(0, 2) {
		t.Fatal("RemoveEdge failed")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	g := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop must panic")
		}
	}()
	g.AddEdge(1, 1)
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	got := g.Neighbors(2)
	want := []int{0, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors = %v, want %v", got, want)
		}
	}
	if g.Degree(2) != 3 || g.Degree(1) != 0 {
		t.Fatal("Degree wrong")
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1)
	g.AddEdge(0, 2)
	edges := g.Edges()
	if len(edges) != 2 || edges[0] != [2]int{0, 2} || edges[1] != [2]int{1, 3} {
		t.Fatalf("Edges = %v", edges)
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("Components = %v, want 3 components", comps)
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("largest component = %v, want [0 1 2]", comps[0])
	}
	if len(comps[2]) != 1 || comps[2][0] != 5 {
		t.Fatalf("isolated vertex component = %v", comps[2])
	}
}

func TestCommonNeighborsJaccard(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	g.AddEdge(1, 2)
	g.AddEdge(1, 4)
	if got := g.CommonNeighbors(0, 1); got != 1 {
		t.Fatalf("CommonNeighbors = %d, want 1", got)
	}
	// |N(0) ∩ N(1)| = 1, |N(0) ∪ N(1)| = 3.
	if got := g.Jaccard(0, 1); got != 1.0/3 {
		t.Fatalf("Jaccard = %g, want 1/3", got)
	}
	if g.Jaccard(2, 2) != 1 {
		t.Fatal("self Jaccard of non-isolated vertex must be 1")
	}
	h := New(2)
	if h.Jaccard(0, 1) != 0 {
		t.Fatal("isolated vertices must have Jaccard 0")
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, p := 60, 0.1
	g := ErdosRenyi(n, p, rng)
	want := p * float64(n*(n-1)/2)
	got := float64(g.EdgeCount())
	if got < want*0.6 || got > want*1.4 {
		t.Fatalf("ER edge count = %g, expected near %g", got, want)
	}
}

func TestWattsStrogatzContracts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 20, 4
		g := WattsStrogatz(n, k, 0.2, rng)
		// Rewiring preserves the total edge count of the ring lattice.
		return g.EdgeCount() == n*k/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
	// beta=0 leaves the pure lattice: every vertex has degree exactly k.
	g := WattsStrogatz(12, 4, 0, rand.New(rand.NewSource(2)))
	for v := 0; v < 12; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("lattice degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestBarabasiAlbertContracts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, m := 50, 3
	g := BarabasiAlbert(n, m, rng)
	// Seed clique has m(m+1)/2 edges; each of the n-m-1 later vertices adds m.
	want := m*(m+1)/2 + (n-m-1)*m
	if g.EdgeCount() != want {
		t.Fatalf("BA edge count = %d, want %d", g.EdgeCount(), want)
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) < m {
			t.Fatalf("BA degree(%d) = %d < m", v, g.Degree(v))
		}
	}
}

func TestHomophilousFriendship(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Vertices 0..9 near each other, 10..19 near each other, groups far apart.
	aff := func(u, v int) float64 {
		if (u < 10) == (v < 10) {
			return 0
		}
		return 100
	}
	g := HomophilousFriendship(20, aff, 1, 0.8, 0.0, rng)
	var cross int
	for _, e := range g.Edges() {
		if (e[0] < 10) != (e[1] < 10) {
			cross++
		}
	}
	if cross != 0 {
		t.Fatalf("pFar=0 must produce no cross-group edges, got %d", cross)
	}
	if g.EdgeCount() == 0 {
		t.Fatal("pNear=0.8 should produce within-group edges")
	}
}

func TestEnsureMinDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := New(15)
	EnsureMinDegree(g, 2, rng)
	for v := 0; v < 15; v++ {
		if g.Degree(v) < 2 {
			t.Fatalf("degree(%d) = %d after EnsureMinDegree(2)", v, g.Degree(v))
		}
	}
}

func TestLocalClustering(t *testing.T) {
	// Triangle plus a pendant vertex.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	if got := g.LocalClustering(0); got != 1 {
		t.Fatalf("triangle vertex clustering = %g, want 1", got)
	}
	// Vertex 2 has neighbours {0,1,3}; only (0,1) connected: 1/3.
	if got := g.LocalClustering(2); got != 1.0/3 {
		t.Fatalf("clustering(2) = %g, want 1/3", got)
	}
	if got := g.LocalClustering(3); got != 0 {
		t.Fatalf("pendant clustering = %g, want 0", got)
	}
}

func TestSmallWorldClusteringExceedsER(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n, k := 200, 8
	ws := WattsStrogatz(n, k, 0.1, rng)
	// ER with matched edge count.
	p := float64(2*ws.EdgeCount()) / float64(n*(n-1))
	er := ErdosRenyi(n, p, rng)
	if ws.AverageClustering() <= 2*er.AverageClustering() {
		t.Fatalf("WS clustering %g should far exceed ER %g",
			ws.AverageClustering(), er.AverageClustering())
	}
}

func TestAverageDegree(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	if got := g.AverageDegree(); got != 1 {
		t.Fatalf("AverageDegree = %g, want 1", got)
	}
}
