package eval

import (
	"testing"

	"tcss/internal/tensor"
)

func edgeTestEntries() []tensor.Entry {
	return []tensor.Entry{
		{I: 0, J: 3, K: 1, Val: 1},
		{I: 1, J: 7, K: 0, Val: 1},
		{I: 2, J: 0, K: 2, Val: 1},
		{I: 0, J: 9, K: 1, Val: 1},
	}
}

// TestRankTieBreakingPessimistic pins the documented tie rule: a constant
// scorer ties the target with every negative and must receive the WORST rank
// (Negatives+1), i.e. zero Hit@K credit and MRR = 1/(Negatives+1). An
// optimistic or average tie rule would score a constant model far above
// chance, silently inflating every reported metric.
func TestRankTieBreakingPessimistic(t *testing.T) {
	test := edgeTestEntries()
	cfg := Config{Negatives: 5, TopK: 3, Seed: 7}
	res := Rank(ScorerFunc(func(i, j, k int) float64 { return 0.25 }), test, 12, cfg)
	if res.HitAtK != 0 {
		t.Fatalf("constant scorer got Hit@%d = %g, want 0", cfg.TopK, res.HitAtK)
	}
	wantMRR := 1.0 / float64(cfg.Negatives+1)
	if res.MRR != wantMRR {
		t.Fatalf("constant scorer MRR = %g, want %g", res.MRR, wantMRR)
	}
	// With the cutoff at or past the candidate count even the worst rank is a
	// hit, so the same scorer must score a perfect Hit@K.
	cfg.TopK = cfg.Negatives + 1
	if res := Rank(ScorerFunc(func(i, j, k int) float64 { return 0.25 }), test, 12, cfg); res.HitAtK != 1 {
		t.Fatalf("Hit@%d = %g, want 1", cfg.TopK, res.HitAtK)
	}
}

// TestRankWorkerCountInvariance asserts the documented determinism contract:
// per-entry seeded negative sampling makes the metrics bit-for-bit identical
// at every worker count, including counts exceeding the test-set size.
func TestRankWorkerCountInvariance(t *testing.T) {
	test := edgeTestEntries()
	scorer := ScorerFunc(func(i, j, k int) float64 {
		return float64((i*31+j*17+k*7)%13) / 13
	})
	cfg := Config{Negatives: 6, TopK: 2, Seed: 3}
	base := RankWorkers(scorer, test, 12, cfg, 1)
	for _, workers := range []int{2, 3, 8} {
		got := RankWorkers(scorer, test, 12, cfg, workers)
		if got != base {
			t.Fatalf("workers=%d: %+v differs from serial %+v", workers, got, base)
		}
	}
}

// TestRankEmptyTestSet pins the zero-entry behaviour (all-zero result, no
// division by zero).
func TestRankEmptyTestSet(t *testing.T) {
	res := Rank(ScorerFunc(func(i, j, k int) float64 { return 1 }), nil, 5, Config{Negatives: 3, TopK: 2, Seed: 1})
	if res != (Result{}) {
		t.Fatalf("empty test set gave %+v, want zero result", res)
	}
}
