package eval

import (
	"testing"

	"tcss/internal/tensor"
)

// hashScorer gives every (i, j, k) a distinct deterministic score without any
// model machinery; batchable via ScoreCandidates to exercise the fast path.
type hashScorer struct{}

func (hashScorer) Score(i, j, k int) float64 {
	return float64(((i*31+j)*17+k*7)%97) / 97
}

func (h hashScorer) ScoreCandidates(i, k int, js []int, out []float64) {
	for n, j := range js {
		out[n] = h.Score(i, j, k)
	}
}

func parallelTestEntries(n int) []tensor.Entry {
	test := make([]tensor.Entry, n)
	for idx := range test {
		test[idx] = tensor.Entry{I: idx % 7, J: (idx * 13) % 50, K: idx % 4, Val: 1}
	}
	return test
}

// TestRankWorkerInvariance asserts the full Result is bit-for-bit identical
// at every worker count: per-entry RNG streams make the sampled negatives
// independent of sharding, and aggregation runs serially in test order.
func TestRankWorkerInvariance(t *testing.T) {
	test := parallelTestEntries(60)
	cfg := Config{Negatives: 20, TopK: 5, Seed: 9}
	ref := RankWorkers(hashScorer{}, test, 50, cfg, 1)
	for _, w := range []int{2, 3, 8} {
		got := RankWorkers(hashScorer{}, test, 50, cfg, w)
		if got != ref {
			t.Fatalf("workers=%d: %+v != serial %+v", w, got, ref)
		}
	}
}

// TestRankBatchedMatchesUnbatched: wrapping the same scoring function so it
// no longer satisfies CandidateScorer must not change any metric.
func TestRankBatchedMatchesUnbatched(t *testing.T) {
	test := parallelTestEntries(40)
	cfg := Config{Negatives: 15, TopK: 5, Seed: 4}
	batched := RankWorkers(hashScorer{}, test, 50, cfg, 4)
	unbatched := RankWorkers(ScorerFunc(hashScorer{}.Score), test, 50, cfg, 4)
	if batched != unbatched {
		t.Fatalf("batched %+v != unbatched %+v", batched, unbatched)
	}
}

// TestRankFewerPOIsThanNegatives pins the pool-exhaustion fallback: with only
// dimJ−1 possible negatives the protocol ranks against all of them once.
func TestRankFewerPOIsThanNegatives(t *testing.T) {
	test := []tensor.Entry{{I: 0, J: 0, K: 0, Val: 1}}
	cfg := Config{Negatives: 100, TopK: 3, Seed: 2}
	// Perfect scorer: target always wins regardless of pool size.
	perfect := ScorerFunc(func(i, j, k int) float64 {
		if j == 0 {
			return 1
		}
		return 0
	})
	got := RankWorkers(perfect, test, 4, cfg, 2)
	if got.HitAtK != 1 || got.MRR != 1 {
		t.Fatalf("perfect scorer with tiny pool: %+v", got)
	}
	// Constant scorer: rank = 1 + 3 distinct negatives = 4, missing TopK 3.
	constant := ScorerFunc(func(i, j, k int) float64 { return 0.5 })
	got = RankWorkers(constant, test, 4, cfg, 1)
	if got.HitAtK != 0 || got.MRR != 0.25 {
		t.Fatalf("constant scorer with tiny pool: %+v", got)
	}
}
