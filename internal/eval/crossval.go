package eval

import (
	"fmt"
	"math"
	"math/rand"

	"tcss/internal/tensor"
)

// Fold is one train/test partition of a cross-validation.
type Fold struct {
	Train *tensor.COO
	Test  []tensor.Entry
}

// KFold partitions the observed entries of x into k folds and returns, for
// each fold, a training tensor holding the other k−1 folds and the held-out
// entries. Entries are shuffled with rng first; every observed entry appears
// in exactly one test set.
func KFold(x *tensor.COO, k int, rng *rand.Rand) ([]Fold, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: KFold needs k >= 2, got %d", k)
	}
	entries := x.Entries()
	if len(entries) < k {
		return nil, fmt.Errorf("eval: KFold with %d folds needs at least %d entries, have %d", k, k, len(entries))
	}
	perm := rng.Perm(len(entries))
	folds := make([]Fold, k)
	for f := 0; f < k; f++ {
		lo := f * len(entries) / k
		hi := (f + 1) * len(entries) / k
		train := tensor.NewCOO(x.DimI, x.DimJ, x.DimK)
		var test []tensor.Entry
		for pos, idx := range perm {
			e := entries[idx]
			if pos >= lo && pos < hi {
				test = append(test, e)
			} else {
				train.Set(e.I, e.J, e.K, e.Val)
			}
		}
		folds[f] = Fold{Train: train, Test: test}
	}
	return folds, nil
}

// CVSummary aggregates per-fold results into mean and standard deviation.
type CVSummary struct {
	MeanHit, StdHit float64
	MeanMRR, StdMRR float64
	Folds           []Result
}

// String renders the summary.
func (s CVSummary) String() string {
	return fmt.Sprintf("Hit@K=%.4f±%.4f MRR=%.4f±%.4f (%d folds)",
		s.MeanHit, s.StdHit, s.MeanMRR, s.StdMRR, len(s.Folds))
}

// CrossValidate runs the ranking protocol over every fold with a
// caller-supplied trainer (which receives the fold's training tensor and
// returns a scorer), and aggregates the metrics. This is the standard way to
// report variance alongside the paper's single-split numbers.
func CrossValidate(x *tensor.COO, k int, cfg Config, rng *rand.Rand,
	train func(fold *tensor.COO) (Scorer, error)) (CVSummary, error) {
	folds, err := KFold(x, k, rng)
	if err != nil {
		return CVSummary{}, err
	}
	var s CVSummary
	for _, fold := range folds {
		scorer, err := train(fold.Train)
		if err != nil {
			return CVSummary{}, fmt.Errorf("eval: training fold: %w", err)
		}
		s.Folds = append(s.Folds, Rank(scorer, fold.Test, x.DimJ, cfg))
	}
	var sumH, sumM float64
	for _, r := range s.Folds {
		sumH += r.HitAtK
		sumM += r.MRR
	}
	n := float64(len(s.Folds))
	s.MeanHit, s.MeanMRR = sumH/n, sumM/n
	var varH, varM float64
	for _, r := range s.Folds {
		varH += (r.HitAtK - s.MeanHit) * (r.HitAtK - s.MeanHit)
		varM += (r.MRR - s.MeanMRR) * (r.MRR - s.MeanMRR)
	}
	s.StdHit, s.StdMRR = math.Sqrt(varH/n), math.Sqrt(varM/n)
	return s, nil
}
