package eval

import (
	"math"
	"testing"

	"tcss/internal/tensor"
)

func TestRankExtendedPerfectScorer(t *testing.T) {
	truth := map[[3]int]bool{{0, 5, 0}: true, {1, 9, 1}: true}
	s := ScorerFunc(func(i, j, k int) float64 {
		if truth[[3]int{i, j, k}] {
			return 1
		}
		return 0
	})
	test := []tensor.Entry{{I: 0, J: 5, K: 0, Val: 1}, {I: 1, J: 9, K: 1, Val: 1}}
	res := RankExtended(s, test, 300, DefaultConfig())
	if res.HitAtK != 1 || res.MRR != 1 || math.Abs(res.NDCGAtK-1) > 1e-12 {
		t.Fatalf("perfect scorer extended = %+v", res)
	}
}

func TestRankExtendedNDCGRankTwo(t *testing.T) {
	// One candidate always beats the target: rank 2 → NDCG = 1/log2(3).
	s := ScorerFunc(func(i, j, k int) float64 {
		if j == 0 {
			return 2 // the always-better negative
		}
		if j == 5 {
			return 1 // the target
		}
		return 0
	})
	test := []tensor.Entry{{I: 0, J: 5, K: 0, Val: 1}}
	// Use a small POI pool so negative 0 is always drawn.
	res := RankExtended(s, test, 3, Config{Negatives: 100, TopK: 10, Seed: 1})
	want := 1 / math.Log2(3)
	if math.Abs(res.NDCGAtK-want) > 1e-12 {
		t.Fatalf("NDCG = %g, want %g", res.NDCGAtK, want)
	}
}

func TestRankExtendedEmpty(t *testing.T) {
	res := RankExtended(ScorerFunc(func(i, j, k int) float64 { return 0 }), nil, 5, DefaultConfig())
	if res != (Extended{}) {
		t.Fatalf("empty test must give zero extended metrics, got %+v", res)
	}
}

func TestRankExtendedConsistentWithRank(t *testing.T) {
	s := ScorerFunc(func(i, j, k int) float64 { return float64((i*13 + j*7 + k) % 31) })
	var test []tensor.Entry
	for n := 0; n < 25; n++ {
		test = append(test, tensor.Entry{I: n % 4, J: (n * 11) % 90, K: n % 3, Val: 1})
	}
	cfg := DefaultConfig()
	plain := Rank(s, test, 90, cfg)
	ext := RankExtended(s, test, 90, cfg)
	// MRR sums per-user means in map-iteration order, so the two paths may
	// differ in the last floating-point bits.
	if plain.HitAtK != ext.HitAtK || math.Abs(plain.MRR-ext.MRR) > 1e-12 {
		t.Fatalf("extended metrics must agree with Rank: %+v vs %+v", plain, ext)
	}
}

func TestTopNMetrics(t *testing.T) {
	// User 0 at time 0 has relevant POIs {1, 2}; the scorer ranks 1, 2, 0
	// on top. Top-2 precision = 1, recall = 1.
	s := ScorerFunc(func(i, j, k int) float64 {
		switch j {
		case 1:
			return 3
		case 2:
			return 2
		}
		return -float64(j)
	})
	test := []tensor.Entry{
		{I: 0, J: 1, K: 0, Val: 1},
		{I: 0, J: 2, K: 0, Val: 1},
	}
	p, r := TopNMetrics(s, test, 10, 2, nil)
	if p != 1 || r != 1 {
		t.Fatalf("P@2=%g R@2=%g, want 1, 1", p, r)
	}
	// Top-4: precision = 2/4, recall = 1.
	p, r = TopNMetrics(s, test, 10, 4, nil)
	if p != 0.5 || r != 1 {
		t.Fatalf("P@4=%g R@4=%g, want 0.5, 1", p, r)
	}
}

func TestTopNMetricsSkip(t *testing.T) {
	// Skipping the top-scored POI 1 promotes POI 2.
	s := ScorerFunc(func(i, j, k int) float64 { return -float64(j) })
	test := []tensor.Entry{{I: 0, J: 2, K: 0, Val: 1}}
	skip := func(user, poi int) bool { return poi == 0 || poi == 1 }
	p, r := TopNMetrics(s, test, 5, 1, skip)
	if p != 1 || r != 1 {
		t.Fatalf("skip-filtered P@1=%g R@1=%g, want 1, 1", p, r)
	}
}

func TestTopNMetricsEmpty(t *testing.T) {
	p, r := TopNMetrics(ScorerFunc(func(i, j, k int) float64 { return 0 }), nil, 5, 3, nil)
	if p != 0 || r != 0 {
		t.Fatal("empty test must give zeros")
	}
}
