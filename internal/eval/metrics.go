package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tcss/internal/tensor"
)

// Extended holds the full metric set of the extended evaluation: the paper's
// Hit@K and MRR plus NDCG@K and the top-N precision/recall commonly reported
// alongside them.
type Extended struct {
	HitAtK       float64
	MRR          float64
	NDCGAtK      float64
	PrecisionAtN float64
	RecallAtN    float64
}

// String renders an extended result row.
func (e Extended) String() string {
	return fmt.Sprintf("Hit@K=%.4f MRR=%.4f NDCG@K=%.4f P@N=%.4f R@N=%.4f",
		e.HitAtK, e.MRR, e.NDCGAtK, e.PrecisionAtN, e.RecallAtN)
}

// RankExtended runs the sampled-negative protocol of Rank and additionally
// reports NDCG@K (with a single relevant item, NDCG@K = 1/log2(1+rank) when
// the target ranks within K, else 0, averaged over test entries).
func RankExtended(s Scorer, test []tensor.Entry, dimJ int, cfg Config) Extended {
	if len(test) == 0 {
		return Extended{}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var hits int
	var ndcg float64
	userRR := make(map[int]*meanAcc)
	for _, e := range test {
		target := s.Score(e.I, e.J, e.K)
		rank := 1
		seen := make(map[int]bool, cfg.Negatives)
		drawn := 0
		for drawn < cfg.Negatives {
			j := rng.Intn(dimJ)
			if j == e.J || seen[j] {
				if len(seen) >= dimJ-1 {
					break
				}
				continue
			}
			seen[j] = true
			drawn++
			if s.Score(e.I, j, e.K) >= target {
				rank++
			}
		}
		if rank <= cfg.TopK {
			hits++
			ndcg += 1 / math.Log2(1+float64(rank))
		}
		acc := userRR[e.I]
		if acc == nil {
			acc = &meanAcc{}
			userRR[e.I] = acc
		}
		acc.add(1 / float64(rank))
	}
	// Iterate users in sorted order so the floating-point sum (and thus the
	// reported MRR) is bit-for-bit deterministic.
	users := make([]int, 0, len(userRR))
	for u := range userRR {
		users = append(users, u)
	}
	sort.Ints(users)
	var mrr meanAcc
	for _, u := range users {
		mrr.add(userRR[u].mean())
	}
	return Extended{
		HitAtK:  float64(hits) / float64(len(test)),
		MRR:     mrr.mean(),
		NDCGAtK: ndcg / float64(len(test)),
	}
}

// TopNMetrics computes precision@N and recall@N over full rankings: for each
// user with held-out interactions at a time unit, the top-N recommended POIs
// are compared against the user's held-out POIs at that time unit. skip
// optionally removes training POIs per user from the candidate ranking (the
// usual setting).
func TopNMetrics(s Scorer, test []tensor.Entry, dimJ, topN int, skip func(user, poi int) bool) (precision, recall float64) {
	if len(test) == 0 || topN <= 0 {
		return 0, 0
	}
	// Group held-out POIs per (user, time).
	type key struct{ i, k int }
	relevant := make(map[key]map[int]bool)
	for _, e := range test {
		kk := key{e.I, e.K}
		if relevant[kk] == nil {
			relevant[kk] = make(map[int]bool)
		}
		relevant[kk][e.J] = true
	}
	var pSum, rSum float64
	var n int
	for kk, rel := range relevant {
		ranked := rankAllFiltered(s, kk.i, kk.k, dimJ, skip)
		limit := topN
		if limit > len(ranked) {
			limit = len(ranked)
		}
		var hit int
		for _, j := range ranked[:limit] {
			if rel[j] {
				hit++
			}
		}
		pSum += float64(hit) / float64(topN)
		rSum += float64(hit) / float64(len(rel))
		n++
	}
	return pSum / float64(n), rSum / float64(n)
}

func rankAllFiltered(s Scorer, i, k, dimJ int, skip func(user, poi int) bool) []int {
	idx := make([]int, 0, dimJ)
	for j := 0; j < dimJ; j++ {
		if skip != nil && skip(i, j) {
			continue
		}
		idx = append(idx, j)
	}
	scores := make(map[int]float64, len(idx))
	for _, j := range idx {
		scores[j] = s.Score(i, j, k)
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}
