package eval

import (
	"fmt"
	"math/rand"
	"testing"

	"tcss/internal/tensor"
)

func cvTensor(n int, rng *rand.Rand) *tensor.COO {
	x := tensor.NewCOO(8, 10, 3)
	for len(x.Entries()) < n {
		x.Set(rng.Intn(8), rng.Intn(10), rng.Intn(3), 1)
	}
	return x
}

func TestKFoldPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := cvTensor(40, rng)
	folds, err := KFold(x, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 4 {
		t.Fatalf("got %d folds", len(folds))
	}
	// Every entry appears in exactly one test set; train+test = all.
	seen := map[[3]int]int{}
	for _, f := range folds {
		if f.Train.NNZ()+len(f.Test) != x.NNZ() {
			t.Fatal("fold is not a partition")
		}
		for _, e := range f.Test {
			seen[[3]int{e.I, e.J, e.K}]++
			if f.Train.Has(e.I, e.J, e.K) {
				t.Fatal("test entry leaked into fold train")
			}
		}
	}
	if len(seen) != x.NNZ() {
		t.Fatalf("test sets cover %d entries, want %d", len(seen), x.NNZ())
	}
	for key, c := range seen {
		if c != 1 {
			t.Fatalf("entry %v appears in %d test sets", key, c)
		}
	}
}

func TestKFoldValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := cvTensor(10, rng)
	if _, err := KFold(x, 1, rng); err == nil {
		t.Fatal("k=1 must error")
	}
	small := tensor.NewCOO(2, 2, 2)
	small.Set(0, 0, 0, 1)
	if _, err := KFold(small, 3, rng); err == nil {
		t.Fatal("too few entries must error")
	}
}

func TestCrossValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := cvTensor(60, rng)
	// Oracle trainer: memorizes the fold's training entries and scores any
	// cell it has seen; held-out entries get moderate scores via user
	// frequency, so metrics land strictly between 0 and 1.
	trainer := func(fold *tensor.COO) (Scorer, error) {
		return ScorerFunc(func(i, j, k int) float64 {
			if fold.Has(i, j, k) {
				return 1
			}
			return float64((i*7+j*3+k)%13) / 13
		}), nil
	}
	sum, err := CrossValidate(x, 3, Config{Negatives: 9, TopK: 3, Seed: 5}, rng, trainer)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Folds) != 3 {
		t.Fatalf("got %d fold results", len(sum.Folds))
	}
	if sum.MeanHit < 0 || sum.MeanHit > 1 || sum.StdHit < 0 {
		t.Fatalf("bad summary %+v", sum)
	}
	if sum.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestCrossValidatePropagatesTrainerError(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := cvTensor(20, rng)
	_, err := CrossValidate(x, 2, DefaultConfig(), rng,
		func(*tensor.COO) (Scorer, error) { return nil, fmt.Errorf("boom") })
	if err == nil {
		t.Fatal("trainer error must propagate")
	}
}
