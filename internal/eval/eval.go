// Package eval implements the paper's evaluation protocol (§V-C): for every
// held-out interaction (i, j, k), sample 100 random other POIs, score all 101
// candidates, and measure whether the true POI ranks in the top 10 (Hit@10)
// and its reciprocal rank (MRR). MRR is averaged per user first and then
// across users, as the paper specifies. The package also provides plain RMSE
// and a Scorer interface every model in the repository implements.
package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tcss/internal/tensor"
)

// Scorer scores a (user, POI, time) triple; higher means more recommended.
// Matrix-completion baselines ignore k.
type Scorer interface {
	Score(i, j, k int) float64
}

// ScorerFunc adapts a plain function to the Scorer interface.
type ScorerFunc func(i, j, k int) float64

// Score implements Scorer.
func (f ScorerFunc) Score(i, j, k int) float64 { return f(i, j, k) }

// Config controls the ranking protocol.
type Config struct {
	// Negatives is the number of random non-target POIs ranked against each
	// test entry; the paper uses 100.
	Negatives int
	// TopK is the Hit@K cutoff; the paper reports Hit@10.
	TopK int
	// Seed drives the negative sampling, making evaluations repeatable and
	// comparable across models.
	Seed int64
}

// DefaultConfig returns the paper's protocol: 100 negatives, Hit@10.
func DefaultConfig() Config { return Config{Negatives: 100, TopK: 10, Seed: 1} }

// Result holds the two headline metrics.
type Result struct {
	HitAtK float64
	MRR    float64
}

// String renders a result row.
func (r Result) String() string { return fmt.Sprintf("Hit@K=%.4f MRR=%.4f", r.HitAtK, r.MRR) }

// Rank evaluates the scorer on the held-out entries of a tensor with
// dimensions (dimJ POIs needed for negative sampling). For each test entry it
// draws cfg.Negatives distinct random POIs different from the target, scores
// the 101 candidates at the entry's (i, k), and computes the rank of the
// target (1 = best; ties broken pessimistically so a constant scorer gets no
// credit).
func Rank(s Scorer, test []tensor.Entry, dimJ int, cfg Config) Result {
	if cfg.Negatives <= 0 || cfg.TopK <= 0 {
		panic(fmt.Sprintf("eval: invalid config %+v", cfg))
	}
	if len(test) == 0 {
		return Result{}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var hits int
	// Per-user reciprocal-rank accumulation (paper: average per user along
	// time, then across users).
	userRR := make(map[int]*meanAcc)

	for _, e := range test {
		target := s.Score(e.I, e.J, e.K)
		// Rank = 1 + #candidates scoring >= target (pessimistic on ties).
		rank := 1
		seen := make(map[int]bool, cfg.Negatives)
		drawn := 0
		for drawn < cfg.Negatives {
			j := rng.Intn(dimJ)
			if j == e.J || seen[j] {
				// With fewer POIs than requested negatives, fall back to
				// allowing duplicates after exhausting the candidate pool.
				if len(seen) >= dimJ-1 {
					break
				}
				continue
			}
			seen[j] = true
			drawn++
			if s.Score(e.I, j, e.K) >= target {
				rank++
			}
		}
		if rank <= cfg.TopK {
			hits++
		}
		acc := userRR[e.I]
		if acc == nil {
			acc = &meanAcc{}
			userRR[e.I] = acc
		}
		acc.add(1 / float64(rank))
	}

	// Iterate users in sorted order so the floating-point sum (and thus the
	// reported MRR) is bit-for-bit deterministic.
	users := make([]int, 0, len(userRR))
	for u := range userRR {
		users = append(users, u)
	}
	sort.Ints(users)
	var mrr meanAcc
	for _, u := range users {
		mrr.add(userRR[u].mean())
	}
	return Result{
		HitAtK: float64(hits) / float64(len(test)),
		MRR:    mrr.mean(),
	}
}

type meanAcc struct {
	sum float64
	n   int
}

func (a *meanAcc) add(v float64) { a.sum += v; a.n++ }
func (a *meanAcc) mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// RMSE returns the root-mean-squared error of the scorer against the test
// entries' values.
func RMSE(s Scorer, test []tensor.Entry) float64 {
	if len(test) == 0 {
		return 0
	}
	var sum float64
	for _, e := range test {
		d := s.Score(e.I, e.J, e.K) - e.Val
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(test)))
}

// TopNOverlap reports |topA ∩ topB| / n for two ranked POI lists, a utility
// for the diversity analyses.
func TopNOverlap(a, b []int) float64 {
	if len(a) == 0 {
		return 0
	}
	set := make(map[int]bool, len(a))
	for _, j := range a {
		set[j] = true
	}
	var c int
	for _, j := range b {
		if set[j] {
			c++
		}
	}
	return float64(c) / float64(len(a))
}

// RankAll returns the POIs 0..dimJ-1 sorted by descending score for user i at
// time k, a helper for case studies.
func RankAll(s Scorer, i, k, dimJ int) []int {
	idx := make([]int, dimJ)
	for j := range idx {
		idx[j] = j
	}
	scores := make([]float64, dimJ)
	for j := range scores {
		scores[j] = s.Score(i, j, k)
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}
