// Package eval implements the paper's evaluation protocol (§V-C): for every
// held-out interaction (i, j, k), sample 100 random other POIs, score all 101
// candidates, and measure whether the true POI ranks in the top 10 (Hit@10)
// and its reciprocal rank (MRR). MRR is averaged per user first and then
// across users, as the paper specifies. The package also provides plain RMSE
// and a Scorer interface every model in the repository implements.
package eval

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"tcss/internal/par"
	"tcss/internal/tensor"
)

// Scorer scores a (user, POI, time) triple; higher means more recommended.
// Matrix-completion baselines ignore k.
type Scorer interface {
	Score(i, j, k int) float64
}

// CandidateScorer is an optional fast path for Rank: scoring every candidate
// POI of one test entry in a single call lets the model hoist the per-(user,
// time) work out of the candidate loop (core.Model factors h ⊙ U1ᵢ ⊙ U3ₖ once
// and reduces each candidate to one rank-length dot product). Implementations
// must order out[n] to match js[n] and apply the same filtering as Score so
// target and negatives round identically.
type CandidateScorer interface {
	ScoreCandidates(i, k int, js []int, out []float64)
}

// ScorerFunc adapts a plain function to the Scorer interface.
type ScorerFunc func(i, j, k int) float64

// Score implements Scorer.
func (f ScorerFunc) Score(i, j, k int) float64 { return f(i, j, k) }

// Config controls the ranking protocol.
type Config struct {
	// Negatives is the number of random non-target POIs ranked against each
	// test entry; the paper uses 100.
	Negatives int
	// TopK is the Hit@K cutoff; the paper reports Hit@10.
	TopK int
	// Seed drives the negative sampling, making evaluations repeatable and
	// comparable across models.
	Seed int64
}

// DefaultConfig returns the paper's protocol: 100 negatives, Hit@10.
func DefaultConfig() Config { return Config{Negatives: 100, TopK: 10, Seed: 1} }

// Result holds the two headline metrics.
type Result struct {
	HitAtK float64
	MRR    float64
}

// String renders a result row.
func (r Result) String() string { return fmt.Sprintf("Hit@K=%.4f MRR=%.4f", r.HitAtK, r.MRR) }

// Rank evaluates the scorer on the held-out entries of a tensor with
// dimensions (dimJ POIs needed for negative sampling). For each test entry it
// draws cfg.Negatives distinct random POIs different from the target, scores
// the 101 candidates at the entry's (i, k), and computes the rank of the
// target (1 = best; ties broken pessimistically so a constant scorer gets no
// credit). It delegates to RankWorkers with the default worker count.
func Rank(s Scorer, test []tensor.Entry, dimJ int, cfg Config) Result {
	return RankWorkers(s, test, dimJ, cfg, 0)
}

// entryRNG is a splitmix64 stream seeded independently per test entry.
// Seeding per entry instead of streaming one shared RNG across the test set
// makes every entry's negative sample — and therefore every metric —
// bit-for-bit identical at any worker count and any sharding. It is also far
// cheaper than seeding a math/rand source per entry, which initializes a
// 607-word lagged-Fibonacci state each time.
type entryRNG uint64

func splitmix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// newEntryRNG derives the stream for one entry index. Running the finalizer
// over seed + (idx+1)·γ starts each entry at an effectively random position of
// the γ-orbit, so consecutive entries' streams do not overlap in practice.
func newEntryRNG(seed int64, idx int) entryRNG {
	return entryRNG(splitmix64(uint64(seed) + (uint64(idx)+1)*0x9E3779B97F4A7C15))
}

func (r *entryRNG) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	return splitmix64(uint64(*r))
}

// intn returns a uniform int in [0, n) via Lemire's multiply-shift reduction.
func (r *entryRNG) intn(n int) int {
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int(hi)
}

// RankWorkers is Rank with an explicit worker count (<= 0 selects
// par.DefaultWorkers). Per-entry ranks are computed in parallel — each worker
// reuses one generation-marked []int candidate-dedup scratch instead of
// allocating a map per entry, and scorers implementing CandidateScorer are
// scored one batched call per entry — then aggregated serially in test order,
// so the result is identical at any worker count.
func RankWorkers(s Scorer, test []tensor.Entry, dimJ int, cfg Config, workers int) Result {
	if cfg.Negatives <= 0 || cfg.TopK <= 0 {
		panic(fmt.Sprintf("eval: invalid config %+v", cfg))
	}
	if len(test) == 0 {
		return Result{}
	}
	cs, batched := s.(CandidateScorer)
	ranks := make([]int, len(test))
	par.Do(len(test), par.Clamp(workers, len(test)), func(sh par.Shard) {
		// mark[j] == idx marks POI j as already drawn for entry idx: a
		// generation counter needs no clearing between entries, unlike the
		// per-entry map it replaces.
		mark := make([]int, dimJ)
		for j := range mark {
			mark[j] = -1
		}
		// js[0] holds the target so a batched scorer ranks target and
		// negatives from the same call (identical rounding); scores aligns.
		js := make([]int, 0, cfg.Negatives+1)
		scores := make([]float64, cfg.Negatives+1)
		for idx := sh.Start; idx < sh.End; idx++ {
			e := test[idx]
			rng := newEntryRNG(cfg.Seed, idx)
			js = append(js[:0], e.J)
			seen := 0
			for len(js)-1 < cfg.Negatives {
				j := rng.intn(dimJ)
				if j == e.J || mark[j] == idx {
					// With fewer POIs than requested negatives, stop after
					// exhausting the candidate pool.
					if seen >= dimJ-1 {
						break
					}
					continue
				}
				mark[j] = idx
				seen++
				js = append(js, j)
			}
			out := scores[:len(js)]
			if batched {
				cs.ScoreCandidates(e.I, e.K, js, out)
			} else {
				for n, j := range js {
					out[n] = s.Score(e.I, j, e.K)
				}
			}
			// Rank = 1 + #negatives scoring >= target (pessimistic on ties).
			target := out[0]
			rank := 1
			for _, v := range out[1:] {
				if v >= target {
					rank++
				}
			}
			ranks[idx] = rank
		}
	})

	var hits int
	// Per-user reciprocal-rank accumulation (paper: average per user along
	// time, then across users).
	userRR := make(map[int]*meanAcc)
	for idx, e := range test {
		rank := ranks[idx]
		if rank <= cfg.TopK {
			hits++
		}
		acc := userRR[e.I]
		if acc == nil {
			acc = &meanAcc{}
			userRR[e.I] = acc
		}
		acc.add(1 / float64(rank))
	}

	// Iterate users in sorted order so the floating-point sum (and thus the
	// reported MRR) is bit-for-bit deterministic.
	users := make([]int, 0, len(userRR))
	for u := range userRR {
		users = append(users, u)
	}
	sort.Ints(users)
	var mrr meanAcc
	for _, u := range users {
		mrr.add(userRR[u].mean())
	}
	return Result{
		HitAtK: float64(hits) / float64(len(test)),
		MRR:    mrr.mean(),
	}
}

type meanAcc struct {
	sum float64
	n   int
}

func (a *meanAcc) add(v float64) { a.sum += v; a.n++ }
func (a *meanAcc) mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// RMSE returns the root-mean-squared error of the scorer against the test
// entries' values.
func RMSE(s Scorer, test []tensor.Entry) float64 {
	if len(test) == 0 {
		return 0
	}
	var sum float64
	for _, e := range test {
		d := s.Score(e.I, e.J, e.K) - e.Val
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(test)))
}

// TopNOverlap reports |topA ∩ topB| / n for two ranked POI lists, a utility
// for the diversity analyses.
func TopNOverlap(a, b []int) float64 {
	if len(a) == 0 {
		return 0
	}
	set := make(map[int]bool, len(a))
	for _, j := range a {
		set[j] = true
	}
	var c int
	for _, j := range b {
		if set[j] {
			c++
		}
	}
	return float64(c) / float64(len(a))
}

// RankAll returns the POIs 0..dimJ-1 sorted by descending score for user i at
// time k, a helper for case studies.
func RankAll(s Scorer, i, k, dimJ int) []int {
	idx := make([]int, dimJ)
	for j := range idx {
		idx[j] = j
	}
	scores := make([]float64, dimJ)
	for j := range scores {
		scores[j] = s.Score(i, j, k)
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx
}
