package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tcss/internal/tensor"
)

// oracleScorer scores the true entry highest.
type oracleScorer struct{ truth map[[3]int]bool }

func (o oracleScorer) Score(i, j, k int) float64 {
	if o.truth[[3]int{i, j, k}] {
		return 1
	}
	return 0
}

func TestRankPerfectScorer(t *testing.T) {
	truth := map[[3]int]bool{}
	var test []tensor.Entry
	for n := 0; n < 20; n++ {
		e := tensor.Entry{I: n % 5, J: n * 3 % 200, K: n % 4, Val: 1}
		truth[[3]int{e.I, e.J, e.K}] = true
		test = append(test, e)
	}
	res := Rank(oracleScorer{truth}, test, 200, DefaultConfig())
	if res.HitAtK != 1 || math.Abs(res.MRR-1) > 1e-12 {
		t.Fatalf("perfect scorer must get Hit=1 MRR=1, got %+v", res)
	}
}

func TestRankConstantScorerGetsNoCredit(t *testing.T) {
	// Pessimistic tie-breaking: a constant scorer ranks last (101st).
	s := ScorerFunc(func(i, j, k int) float64 { return 0.5 })
	test := []tensor.Entry{{I: 0, J: 5, K: 0, Val: 1}}
	res := Rank(s, test, 500, DefaultConfig())
	if res.HitAtK != 0 {
		t.Fatalf("constant scorer Hit = %g, want 0", res.HitAtK)
	}
	if math.Abs(res.MRR-1.0/101) > 1e-12 {
		t.Fatalf("constant scorer MRR = %g, want 1/101", res.MRR)
	}
}

func TestRankWorstScorer(t *testing.T) {
	truth := map[[3]int]bool{{0, 5, 0}: true}
	s := ScorerFunc(func(i, j, k int) float64 {
		if truth[[3]int{i, j, k}] {
			return -1
		}
		return 1
	})
	res := Rank(s, []tensor.Entry{{I: 0, J: 5, K: 0, Val: 1}}, 500, DefaultConfig())
	if res.HitAtK != 0 || math.Abs(res.MRR-1.0/101) > 1e-12 {
		t.Fatalf("worst scorer got %+v", res)
	}
}

func TestRankDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := ScorerFunc(func(i, j, k int) float64 { return float64((i*31+j*17+k*7)%97) / 97 })
	var test []tensor.Entry
	for n := 0; n < 30; n++ {
		test = append(test, tensor.Entry{I: rng.Intn(6), J: rng.Intn(150), K: rng.Intn(3), Val: 1})
	}
	cfg := DefaultConfig()
	a := Rank(s, test, 150, cfg)
	b := Rank(s, test, 150, cfg)
	if a != b {
		t.Fatalf("same seed must give same result: %+v vs %+v", a, b)
	}
}

func TestRankBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := ScorerFunc(func(i, j, k int) float64 { return rng.Float64() })
		var test []tensor.Entry
		for n := 0; n < 10; n++ {
			test = append(test, tensor.Entry{I: rng.Intn(4), J: rng.Intn(120), K: rng.Intn(3), Val: 1})
		}
		res := Rank(s, test, 120, Config{Negatives: 100, TopK: 10, Seed: seed})
		return res.HitAtK >= 0 && res.HitAtK <= 1 && res.MRR >= 0 && res.MRR <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRankSmallPOIPool(t *testing.T) {
	// Fewer POIs than requested negatives must not loop forever.
	s := ScorerFunc(func(i, j, k int) float64 { return float64(j) })
	test := []tensor.Entry{{I: 0, J: 4, K: 0, Val: 1}}
	res := Rank(s, test, 5, DefaultConfig())
	// POI 4 scores highest of 0..4, so it must be a hit with rank 1.
	if res.HitAtK != 1 || res.MRR != 1 {
		t.Fatalf("small pool result %+v", res)
	}
}

func TestRankEmptyTest(t *testing.T) {
	res := Rank(ScorerFunc(func(i, j, k int) float64 { return 0 }), nil, 10, DefaultConfig())
	if res.HitAtK != 0 || res.MRR != 0 {
		t.Fatalf("empty test must give zeros, got %+v", res)
	}
}

func TestMRRPerUserAveraging(t *testing.T) {
	// User 0 has two entries (rank 1 and rank 101), user 1 has one (rank 1).
	// Per-user averaging: user0 = (1 + 1/101)/2, user1 = 1;
	// MRR = (user0 + user1)/2 — NOT the flat average over 3 entries.
	truth := map[[3]int]bool{{0, 0, 0}: true, {1, 1, 0}: true}
	s := ScorerFunc(func(i, j, k int) float64 {
		if truth[[3]int{i, j, k}] {
			return 2
		}
		return 1 // ties beat the remaining test entry (0, 2, 0)
	})
	test := []tensor.Entry{
		{I: 0, J: 0, K: 0, Val: 1},
		{I: 0, J: 2, K: 0, Val: 1},
		{I: 1, J: 1, K: 0, Val: 1},
	}
	res := Rank(s, test, 500, DefaultConfig())
	user0 := (1.0 + 1.0/101) / 2
	want := (user0 + 1.0) / 2
	if math.Abs(res.MRR-want) > 1e-12 {
		t.Fatalf("per-user MRR = %g, want %g", res.MRR, want)
	}
}

func TestRMSE(t *testing.T) {
	s := ScorerFunc(func(i, j, k int) float64 { return 0 })
	test := []tensor.Entry{{Val: 3}, {Val: 4}}
	want := math.Sqrt((9.0 + 16.0) / 2)
	if got := RMSE(s, test); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %g, want %g", got, want)
	}
	if RMSE(s, nil) != 0 {
		t.Fatal("empty RMSE must be 0")
	}
}

func TestTopNOverlap(t *testing.T) {
	if got := TopNOverlap([]int{1, 2, 3}, []int{3, 4, 5}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("overlap = %g, want 1/3", got)
	}
	if TopNOverlap(nil, []int{1}) != 0 {
		t.Fatal("empty overlap must be 0")
	}
}

func TestRankAll(t *testing.T) {
	s := ScorerFunc(func(i, j, k int) float64 { return float64(-j) })
	got := RankAll(s, 0, 0, 4)
	for j, v := range []int{0, 1, 2, 3} {
		if got[j] != v {
			t.Fatalf("RankAll = %v", got)
		}
	}
}
