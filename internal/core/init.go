package core

import (
	"fmt"
	"math"
	"math/rand"

	"tcss/internal/mat"
	"tcss/internal/tensor"
)

// InitMethod selects the embedding initialization strategy (§IV-A and the
// initialization ablation of Table II).
type InitMethod int

// The three initialization strategies compared in the paper.
const (
	// SpectralInit estimates factors from the top-r eigenvectors of the
	// zero-diagonal Gram matrices of the three tensor unfoldings (Eq 4),
	// the paper's method.
	SpectralInit InitMethod = iota
	// RandomInit draws factors from a small uniform distribution, the
	// strategy of CP and Tucker.
	RandomInit
	// OneHotInit indexes each entity with a (rank-folded) one-hot vector
	// plus symmetry-breaking noise, mirroring NCF's one-hot embedding
	// layer at its initial state.
	OneHotInit
)

// String names the method.
func (m InitMethod) String() string {
	switch m {
	case SpectralInit:
		return "spectral"
	case RandomInit:
		return "random"
	case OneHotInit:
		return "one-hot"
	}
	return fmt.Sprintf("init(%d)", int(m))
}

// Initialize fills the model's factors according to the method, using the
// observed training tensor for the spectral estimate. h starts at all ones so
// the model begins exactly at the CP special case of Eq (6).
func (m *Model) Initialize(method InitMethod, x *tensor.COO, rng *rand.Rand) error {
	for t := range m.H {
		m.H[t] = 1
	}
	switch method {
	case SpectralInit:
		return m.spectralInit(x, rng)
	case RandomInit:
		scale := 1.0 / math.Sqrt(float64(m.Rank))
		randomFill(m.U1, scale, rng)
		randomFill(m.U2, scale, rng)
		randomFill(m.U3, scale, rng)
		return nil
	case OneHotInit:
		oneHotFill(m.U1, rng)
		oneHotFill(m.U2, rng)
		oneHotFill(m.U3, rng)
		return nil
	}
	return fmt.Errorf("core: unknown init method %d", int(method))
}

func randomFill(u *mat.Matrix, scale float64, rng *rand.Rand) {
	for i := range u.Data {
		u.Data[i] = rng.Float64() * scale
	}
}

// oneHotFill sets row i to the (i mod r)-th unit vector plus small noise so
// identical rows can still separate under gradient descent.
func oneHotFill(u *mat.Matrix, rng *rand.Rand) {
	for i := 0; i < u.Rows; i++ {
		row := u.Row(i)
		for t := range row {
			row[t] = rng.NormFloat64() * 0.01
		}
		row[i%u.Cols] += 1
	}
}

// spectralInit implements Eq (4): for each mode, compute the Gram matrix of
// the unfolding, zero its diagonal, and take the top-r eigenvectors as the
// factor estimate. Columns are rescaled by |λ_t|^(1/6) so the three modes
// jointly reproduce the singular-value magnitude of the data (each mode
// carries a third of σ_t = √λ_t), which puts the initial predictions on the
// same scale as the binary observations.
func (m *Model) spectralInit(x *tensor.COO, rng *rand.Rand) error {
	if x.DimI != m.I || x.DimJ != m.J || x.DimK != m.K {
		return fmt.Errorf("core: spectral init tensor dims %dx%dx%d mismatch model %dx%dx%d",
			x.DimI, x.DimJ, x.DimK, m.I, m.J, m.K)
	}
	modes := []struct {
		mode tensor.Mode
		dst  *mat.Matrix
	}{
		{tensor.ModeUser, m.U1},
		{tensor.ModePOI, m.U2},
		{tensor.ModeTime, m.U3},
	}
	for _, md := range modes {
		gram := x.GramOfUnfolding(md.mode)
		gram.ZeroDiagonal()
		eig, err := topEigen(gram, m.Rank, rng)
		if err != nil {
			return fmt.Errorf("core: spectral init mode %d: %w", md.mode, err)
		}
		for t := 0; t < m.Rank; t++ {
			for i := 0; i < md.dst.Rows; i++ {
				md.dst.Set(i, t, eig.Vectors.At(i, t))
			}
		}
		// The check-in tensor is non-negative, so the useful part of each
		// eigenvector is one sign lobe (the leading one is non-negative
		// outright by Perron-Frobenius). As in the NNDSVD initialization for
		// non-negative factorizations, keep the dominant sign lobe of every
		// column and replace the minority lobe with small noise: a mixed-sign
		// start would have to reorganize sign patterns through a hard
		// combinatorial landscape and gets trapped, the very failure mode
		// spectral initialization is meant to avoid.
		for t := 0; t < m.Rank; t++ {
			var posNorm, negNorm float64
			for i := 0; i < md.dst.Rows; i++ {
				v := md.dst.At(i, t)
				if v >= 0 {
					posNorm += v * v
				} else {
					negNorm += v * v
				}
			}
			flip := negNorm > posNorm
			// Rescale every column to the same RMS a random initialization
			// would have: the eigen-directions carry the structure, while
			// matched magnitudes keep the optimizer's moment estimates on
			// the same footing as for the baselines' random starts.
			targetRMS := initTargetRMS(m.Rank)
			lobeRMS := math.Sqrt(math.Max(posNorm, negNorm)/float64(md.dst.Rows) + 1e-300)
			rescale := targetRMS / lobeRMS
			for i := 0; i < md.dst.Rows; i++ {
				v := md.dst.At(i, t)
				if flip {
					v = -v
				}
				if v < 0 {
					v = 0
				}
				v *= rescale
				// Blend in non-negative noise at a fraction of the column
				// scale: the spectral estimate seeds the subspace while the
				// noise keeps enough slack for gradient descent to leave the
				// estimate's immediate basin.
				v += math.Abs(rng.NormFloat64()) * initBlendNoise * targetRMS
				md.dst.Set(i, t, v)
			}
		}
	}
	return nil
}

// topEigen picks the full Jacobi solver for small matrices (the K×K time
// Gram) and block orthogonal iteration for the larger user/POI Grams.
func topEigen(gram *mat.Matrix, r int, rng *rand.Rand) (*mat.EigenResult, error) {
	n := gram.Rows
	if r > n {
		return nil, fmt.Errorf("rank %d exceeds matrix side %d", r, n)
	}
	if n <= 64 {
		full, err := mat.SymEigen(gram)
		if err != nil {
			return nil, err
		}
		vec := mat.New(n, r)
		for i := 0; i < n; i++ {
			for t := 0; t < r; t++ {
				vec.Set(i, t, full.Vectors.At(i, t))
			}
		}
		return &mat.EigenResult{Values: full.Values[:r], Vectors: vec}, nil
	}
	return mat.TopEigenvectors(gram, r, 300, rng)
}

// initBlendNoise is the relative magnitude of the non-negative noise blended
// into the spectral factor estimates (see spectralInit).
const initBlendNoise = 0.3

// initTargetRMS is the per-entry RMS the random initialization produces
// (uniform on [0, 1/√r]), used to put the spectral columns on the same scale.
func initTargetRMS(rank int) float64 {
	return 1 / (math.Sqrt(3) * math.Sqrt(float64(rank)))
}
