package core

import (
	"fmt"
	"math/rand"

	"tcss/internal/fault"
	"tcss/internal/opt"
	"tcss/internal/par"
	"tcss/internal/tensor"
	"tcss/internal/train"
)

// resumeFallbackDepth bounds how far down the checkpoint rotation ladder
// (path.1, path.2, …) resume searches for an intact file. Deeper than any
// sane CheckpointKeep, and cheap: missing rungs cost one failed open each.
const resumeFallbackDepth = 16

// HausdorffVariant selects how (and whether) the social-spatial head is
// applied, covering the ablation rows of Table II.
type HausdorffVariant int

// The variants of the social-spatial component.
const (
	// SocialHausdorff is the full TCSS head: N(v) = POIs visited by v's
	// friends.
	SocialHausdorff HausdorffVariant = iota
	// SelfHausdorff replaces N(v) with v's own visited POIs, removing the
	// social influence (Table II row "Self-Hausdorff").
	SelfHausdorff
	// NoHausdorff trains with L2 only (Table II row "Remove L1 (λ=0)").
	NoHausdorff
	// ZeroOut trains with L2 only and, at recommendation time, disregards
	// POIs farther than σ = 1% of d_max from the user's nearest own POI
	// (Table II row "Zero-out").
	ZeroOut
)

// String names the variant.
func (v HausdorffVariant) String() string {
	switch v {
	case SocialHausdorff:
		return "social-hausdorff"
	case SelfHausdorff:
		return "self-hausdorff"
	case NoHausdorff:
		return "no-l1"
	case ZeroOut:
		return "zero-out"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// Config holds every training hyperparameter. DefaultConfig returns the
// paper's defaults (§V-D).
type Config struct {
	Rank   int     // embedding length r (paper default 10)
	WPos   float64 // positive entry weight w₊ (0.99)
	WNeg   float64 // unlabeled entry weight w₋ (0.01)
	Lambda float64 // social Hausdorff weight λ (0.1)
	Alpha  float64 // smooth-minimum exponent α (−1)
	Eps    float64 // division guard ε (1e-6)

	Epochs      int
	LR          float64 // Adam learning rate (0.001)
	WeightDecay float64 // Adam decoupled weight decay (0.1)
	GradClip    float64 // global gradient-norm clip; 0 disables

	Init    InitMethod
	Variant HausdorffVariant

	// NegSampling switches L2 from the whole-data rewritten loss to the
	// NCF-style sampled loss (Table II row "Negative sampling"); NegPerPos
	// controls how many negatives are drawn per positive (paper: 1).
	NegSampling bool
	NegPerPos   float64

	// UsersPerEpoch stochastically subsamples users for the L1 head each
	// epoch (0 = all users). The head's loss and gradient are rescaled by
	// I/UsersPerEpoch so the expectation is unchanged.
	UsersPerEpoch int

	// ZeroOutSigmaFrac is the zero-out threshold as a fraction of d_max
	// (paper: 0.01).
	ZeroOutSigmaFrac float64

	// DisableEntropy turns off the location-entropy weights e_j, isolating
	// their contribution in ablation benches.
	DisableEntropy bool

	// LRSchedule optionally anneals the learning rate across epochs
	// (see internal/opt); nil keeps the rate constant, the paper's setting.
	LRSchedule opt.Schedule

	// Workers bounds the goroutines used by the parallel loss kernels and the
	// zero-out filter build (0 = par.DefaultWorkers, i.e. GOMAXPROCS).
	// Results are reproducible for a fixed value and bit-for-bit identical to
	// the serial loops at Workers = 1; other counts only regroup
	// floating-point reductions (shards always merge in ascending order).
	Workers int

	Seed int64

	// EpochCallback, when non-nil, is invoked after every epoch with the
	// current model and total loss — Figure 9's convergence curves hook in
	// here.
	EpochCallback func(epoch int, m *Model, loss float64)

	// CheckpointPath, when non-empty, makes Train write resumable
	// checkpoints (model factors plus engine state, persisted as a
	// FormatVersion 3 model file) after every CheckpointEvery-th epoch and
	// after the final one. A checkpoint file is also a complete model file:
	// Load reads it, ignoring the training state.
	CheckpointPath string

	// CheckpointEvery is the epoch period of mid-run checkpoints (<= 0:
	// final epoch only).
	CheckpointEvery int

	// ResumePath, when non-empty, makes Train continue a checkpointed run
	// instead of initializing fresh factors: the model, optimizer moments,
	// RNG stream position, and completed-epoch count are restored from the
	// file and training proceeds up to Epochs. The resumed run is
	// bit-identical to an uninterrupted one under the same Config. When the
	// newest file at ResumePath is torn or corrupt (a crash landed mid-save
	// before crash-safe writes, or the disk rotted), Train falls back down
	// the rotation ladder (ResumePath.1, .2, …) to the newest intact copy.
	ResumePath string

	// CheckpointKeep is how many rotated prior checkpoints to retain next to
	// CheckpointPath (path.1 … path.N) as a recovery fallback ladder; 0 keeps
	// only the newest file.
	CheckpointKeep int

	// FS, when non-nil, routes checkpoint writes through an injectable
	// filesystem seam (fault.InjectFS in crash harnesses); nil uses the real
	// filesystem.
	FS fault.FS

	// Storage selects how the returned model stores its factor matrices
	// (StorageFloat64, StorageFloat32, StorageInt8). Training itself always
	// runs in float64 — checkpoints and the EpochCallback model are
	// unaffected — and the finished model is converted once at the end, so a
	// compact mode changes only serving memory, never convergence.
	Storage StorageMode
}

// DefaultConfig returns the default hyperparameters of this implementation.
// They follow the paper (§V-D) with two documented adaptations for the
// full-batch training regime used here:
//
//   - The paper trains mini-batched Adam at lr 1e-3 with weight decay 0.1;
//     this implementation takes one full-batch step per epoch, so the
//     equivalent settings are lr 0.1, weight decay 0.01 over ~250 epochs.
//   - The paper's social Hausdorff head uses raw kilometre distances; this
//     implementation normalizes distances by d_max (see Hausdorff), which
//     rescales λ. λ = 5 here plays the role of the paper's λ = 0.1.
//
// Everything else is the paper's default: rank 10, (w₊, w₋) = (0.99, 0.01),
// α = −1, ε = 1e-6, spectral initialization, whole-data training.
func DefaultConfig() Config {
	return Config{
		Rank: 10, WPos: 0.99, WNeg: 0.01, Lambda: 5, Alpha: -1, Eps: 1e-6,
		Epochs: 250, LR: 0.1, WeightDecay: 0.01, GradClip: 0,
		Init: SpectralInit, Variant: SocialHausdorff,
		NegPerPos: 1, UsersPerEpoch: 0, ZeroOutSigmaFrac: 0.01,
	}
}

// PaperConfig returns the hyperparameters exactly as printed in the paper
// (§V-D): Adam at lr 1e-3, weight decay 0.1, λ = 0.1, 30 epochs. Provided
// for reference and ablation; with this repository's full-batch optimizer
// these values underfit — use DefaultConfig for the equivalent behaviour.
func PaperConfig() Config {
	cfg := DefaultConfig()
	cfg.Lambda = 0.1
	cfg.Epochs = 30
	cfg.LR = 0.001
	cfg.WeightDecay = 0.1
	return cfg
}

// Validate reports configuration errors early.
func (c Config) Validate() error {
	if c.Rank <= 0 {
		return fmt.Errorf("core: rank must be positive, got %d", c.Rank)
	}
	if c.Epochs < 0 {
		return fmt.Errorf("core: epochs must be non-negative, got %d", c.Epochs)
	}
	if c.WPos <= 0 || c.WNeg < 0 {
		return fmt.Errorf("core: weights (w+=%g, w-=%g) invalid", c.WPos, c.WNeg)
	}
	if c.Lambda < 0 {
		return fmt.Errorf("core: lambda must be non-negative, got %g", c.Lambda)
	}
	if c.NegSampling && c.NegPerPos <= 0 {
		return fmt.Errorf("core: NegPerPos must be positive with NegSampling, got %g", c.NegPerPos)
	}
	if c.UsersPerEpoch < 0 {
		return fmt.Errorf("core: UsersPerEpoch must be non-negative, got %d", c.UsersPerEpoch)
	}
	if c.ZeroOutSigmaFrac < 0 {
		return fmt.Errorf("core: ZeroOutSigmaFrac must be non-negative, got %g", c.ZeroOutSigmaFrac)
	}
	if c.CheckpointKeep < 0 {
		return fmt.Errorf("core: CheckpointKeep must be non-negative, got %d", c.CheckpointKeep)
	}
	if !c.Storage.valid() {
		return fmt.Errorf("core: unknown storage mode %d", int(c.Storage))
	}
	if err := par.Validate(c.Workers); err != nil {
		return err
	}
	return nil
}

// permInto fills buf[:n] with a pseudo-random permutation of [0, n),
// consuming the exact RNG draws of rng.Perm(n) and producing the identical
// permutation — it is that algorithm run into a caller-owned buffer, so the
// per-epoch user subsample allocates nothing after the first epoch.
func permInto(rng *rand.Rand, buf []int, n int) []int {
	p := buf[:n]
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Train fits a TCSS model to the observed training tensor with the given
// side information. side may be nil only for variants that never touch it
// (NoHausdorff with no zero-out filter would still need it for nothing); all
// paper configurations pass it.
//
// Train is a composition over the internal/train engine: it builds the L2
// head (whole-data or negative-sampling) and, for the social variants, the
// weighted Hausdorff L1 head, exposes the factor matrices as named parameter
// groups, and lets the engine drive epochs, clipping, Adam steps, LR
// scheduling, callbacks, and checkpoint/resume.
func Train(x *tensor.COO, side *SideInfo, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	needSide := cfg.Variant == SocialHausdorff || cfg.Variant == SelfHausdorff || cfg.Variant == ZeroOut
	if needSide && side == nil {
		return nil, fmt.Errorf("core: variant %v requires side information", cfg.Variant)
	}
	rng := train.NewRNG(cfg.Seed)
	var m *Model
	var resume *train.State
	if cfg.ResumePath != "" {
		var err error
		m, resume, _, err = LoadCheckpointFallback(cfg.ResumePath, resumeFallbackDepth)
		if err != nil {
			return nil, err
		}
		if resume == nil {
			return nil, fmt.Errorf("core: %s has no training state to resume (plain model file)", cfg.ResumePath)
		}
		if m.I != x.DimI || m.J != x.DimJ || m.K != x.DimK || m.Rank != cfg.Rank {
			return nil, fmt.Errorf("core: checkpoint shape %dx%dx%d rank %d does not match data %dx%dx%d rank %d",
				m.I, m.J, m.K, m.Rank, x.DimI, x.DimJ, x.DimK, cfg.Rank)
		}
	} else {
		m = NewModel(x.DimI, x.DimJ, x.DimK, cfg.Rank)
		// The engine RNG consumes the same stream as the bare source the
		// initializer always used; its draws are counted, so a resumed run
		// fast-forwards past initialization too.
		if err := m.Initialize(cfg.Init, x, rng.Rand); err != nil {
			return nil, err
		}
	}

	var head *Hausdorff
	switch cfg.Variant {
	case SocialHausdorff, SelfHausdorff:
		sets := side.FriendPOIs
		if cfg.Variant == SelfHausdorff {
			sets = side.OwnPOIs
		}
		entropyW := side.EntropyW
		if cfg.DisableEntropy {
			entropyW = nil
		}
		head = NewHausdorff(side.Dist, entropyW, sets)
		head.Alpha = cfg.Alpha
		head.Epsilon = cfg.Eps
	}

	grads := NewGrads(m)
	groups := train.GroupSet{
		{Name: "U1", Value: m.U1.Data, Grad: grads.DU1.Data},
		{Name: "U2", Value: m.U2.Data, Grad: grads.DU2.Data},
		{Name: "U3", Value: m.U3.Data, Grad: grads.DU3.Data},
		{Name: "h", Value: m.H, Grad: grads.DH},
	}

	// Head order matters for the RNG stream: L2 draws its negatives before
	// L1 draws its user subsample, exactly as the pre-engine loop did.
	heads := []train.Head{train.HeadFunc{W: 1, F: func(int) (float64, error) {
		if cfg.NegSampling {
			n := int(cfg.NegPerPos * float64(x.NNZ()))
			negs, err := SampleNegatives(x, n, rng.Rand)
			if err != nil {
				return 0, err
			}
			return m.NegSamplingLossWorkers(x, negs, cfg.WPos, cfg.WNeg, grads, cfg.Workers), nil
		}
		return m.WholeDataLossWorkers(x, cfg.WPos, cfg.WNeg, grads, cfg.Workers), nil
	}}}

	if head != nil && cfg.Lambda > 0 {
		headGrads := NewGrads(m)
		subsample := cfg.UsersPerEpoch > 0 && cfg.UsersPerEpoch < m.I
		allUsers := make([]int, m.I)
		for i := range allUsers {
			allUsers[i] = i
		}
		var permBuf []int
		if subsample {
			permBuf = make([]int, m.I)
		}
		heads = append(heads, train.HeadFunc{W: cfg.Lambda, F: func(int) (float64, error) {
			headGrads.Zero()
			users := allUsers
			scale := 1.0
			if subsample {
				users = permInto(rng.Rand, permBuf, m.I)[:cfg.UsersPerEpoch]
				scale = float64(m.I) / float64(cfg.UsersPerEpoch)
			}
			l1 := head.LossWorkers(m, users, headGrads, cfg.Workers) * scale
			w := cfg.Lambda * scale
			grads.DU1.AddInPlace(headGrads.DU1.Scale(w))
			grads.DU2.AddInPlace(headGrads.DU2.Scale(w))
			grads.DU3.AddInPlace(headGrads.DU3.Scale(w))
			for t := range grads.DH {
				grads.DH[t] += w * headGrads.DH[t]
			}
			return l1, nil
		}})
	}

	tcfg := train.Config{
		Epochs:          cfg.Epochs,
		GradClip:        cfg.GradClip,
		LRSchedule:      cfg.LRSchedule,
		CheckpointEvery: cfg.CheckpointEvery,
	}
	if cfg.EpochCallback != nil {
		tcfg.Callback = func(epoch int, loss float64) { cfg.EpochCallback(epoch, m, loss) }
	}
	if cfg.CheckpointPath != "" {
		path := cfg.CheckpointPath
		tcfg.Save = func(st train.State) error {
			return m.SaveCheckpointRotate(cfg.FS, path, cfg.CheckpointKeep, &st)
		}
	}
	driver, err := train.New(groups, heads, nil, opt.NewAdam(cfg.LR, cfg.WeightDecay), rng, tcfg)
	if err != nil {
		return nil, err
	}
	if resume != nil {
		if err := driver.Restore(*resume); err != nil {
			return nil, err
		}
	}
	if err := driver.Run(); err != nil {
		return nil, err
	}

	if cfg.Variant == ZeroOut {
		m.ZeroOutFilter = buildZeroOutFilter(m, side, cfg.ZeroOutSigmaFrac, cfg.Workers)
	}
	return m.ToStorage(cfg.Storage)
}

// buildZeroOutFilter marks, per user, the POIs within σ = sigmaFrac·d_max of
// the user's nearest own visited POI. Users with no training visits keep all
// POIs (an empty reference set gives the variant nothing to filter on). User
// rows are independent, so the build parallelizes over user shards with a
// bit-for-bit identical result at any worker count.
func buildZeroOutFilter(m *Model, side *SideInfo, sigmaFrac float64, workers int) [][]bool {
	sigma := sigmaFrac * side.Dist.DMax
	filter := make([][]bool, m.I)
	par.Do(m.I, par.Clamp(workers, m.I), func(s par.Shard) {
		for i := s.Start; i < s.End; i++ {
			row := make([]bool, m.J)
			own := side.OwnPOIs[i]
			if len(own) == 0 {
				for j := range row {
					row[j] = true
				}
			} else {
				for j := 0; j < m.J; j++ {
					_, d := side.Dist.Nearest(j, own)
					row[j] = d <= sigma
				}
			}
			filter[i] = row
		}
	})
	return filter
}
