package core

import (
	"fmt"
	"sort"

	"tcss/internal/geo"
	"tcss/internal/graph"
	"tcss/internal/tensor"
)

// SideInfo bundles the social-spatial side information the TCSS loss heads
// consume: the POI distance matrix, the location-entropy weights e_j, and
// the per-user POI sets derived from the TRAINING tensor only (so no test
// information leaks into the regularizer).
type SideInfo struct {
	Dist     *geo.DistanceMatrix
	EntropyW []float64 // e_j = exp(−E_j) per POI
	// OwnPOIs[v] is the sorted set of POIs user v visited in training.
	OwnPOIs [][]int
	// FriendPOIs[v] is N(v): the sorted union of training POIs visited by
	// v's friends (Eq 8).
	FriendPOIs [][]int
	// Locs, when non-nil, holds the POI coordinates Dist was computed from
	// (len == Dist.N). BuildSideInfo leaves it nil; the tcss layer fills it
	// in so snapshot shipping can extend a replica's distance matrix when
	// the shipped model has grown beyond it.
	Locs []geo.Point
}

// BuildSideInfo derives side information from the social graph, the POI
// distance matrix and the observed training tensor. Location entropy counts,
// for each POI, how many distinct time units each user visited it in — the
// tensor-level analogue of the paper's check-in multisets Φ.
func BuildSideInfo(social *graph.Graph, dist *geo.DistanceMatrix, train *tensor.COO) (*SideInfo, error) {
	if social.N() != train.DimI {
		return nil, fmt.Errorf("core: social graph covers %d users, tensor has %d", social.N(), train.DimI)
	}
	if dist.N != train.DimJ {
		return nil, fmt.Errorf("core: distance matrix covers %d POIs, tensor has %d", dist.N, train.DimJ)
	}
	I, J := train.DimI, train.DimJ

	visitCounts := make([]map[int]int, J) // POI -> user -> #time-units
	ownSets := make([]map[int]struct{}, I)
	for i := range ownSets {
		ownSets[i] = make(map[int]struct{})
	}
	for _, e := range train.Entries() {
		if visitCounts[e.J] == nil {
			visitCounts[e.J] = make(map[int]int)
		}
		visitCounts[e.J][e.I]++
		ownSets[e.I][e.J] = struct{}{}
	}

	entropyW := make([]float64, J)
	for j, counts := range visitCounts {
		if counts == nil {
			entropyW[j] = 1 // unvisited POI: entropy 0, weight 1
			continue
		}
		visits := make([]int, 0, len(counts))
		for _, c := range counts {
			visits = append(visits, c)
		}
		// Map iteration order is randomized per process; the entropy sum is
		// order-sensitive at the ulp level, so sort for reproducible models.
		sort.Ints(visits)
		entropyW[j] = geo.EntropyWeight(geo.LocationEntropy(visits))
	}

	own := make([][]int, I)
	for i, set := range ownSets {
		lst := make([]int, 0, len(set))
		for j := range set {
			lst = append(lst, j)
		}
		sort.Ints(lst)
		own[i] = lst
	}

	friends := make([][]int, I)
	for v := 0; v < I; v++ {
		set := make(map[int]struct{})
		for _, f := range social.Neighbors(v) {
			for j := range ownSets[f] {
				set[j] = struct{}{}
			}
		}
		lst := make([]int, 0, len(set))
		for j := range set {
			lst = append(lst, j)
		}
		sort.Ints(lst)
		friends[v] = lst
	}

	return &SideInfo{Dist: dist, EntropyW: entropyW, OwnPOIs: own, FriendPOIs: friends}, nil
}
