package core

import (
	"math"
	"testing"

	"tcss/internal/tensor"
)

func TestUpdateOnlineRaisesNewEntryScores(t *testing.T) {
	fx := newTrainFixture(30)
	cfg := DefaultConfig()
	cfg.Epochs = 30
	cfg.Rank = 3
	m, err := Train(fx.x, fx.side, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Feed held-out entries the model currently scores low back as "new"
	// check-ins; those are the cells where the update must visibly act.
	var newEntries []tensor.Entry
	for _, e := range fx.test {
		if m.Predict(e.I, e.J, e.K) < 0.5 {
			newEntries = append(newEntries, e)
		}
		if len(newEntries) == 2 {
			break
		}
	}
	if len(newEntries) < 2 {
		t.Skip("fixture produced no low-scored test entries")
	}
	before := make([]float64, len(newEntries))
	for n, e := range newEntries {
		before[n] = m.Predict(e.I, e.J, e.K)
	}
	ocfg := DefaultOnlineConfig()
	ocfg.Seed = 1
	added, err := m.UpdateOnline(fx.x, newEntries, fx.side, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("added = %d, want 2", added)
	}
	for n, e := range newEntries {
		after := m.Predict(e.I, e.J, e.K)
		// The squared loss pulls the prediction toward the target 1 — from
		// below or from above.
		if math.Abs(after-1) >= math.Abs(before[n]-1) {
			t.Fatalf("entry %d: score must approach 1 after online update (%g -> %g)", n, before[n], after)
		}
		if !fx.x.Has(e.I, e.J, e.K) {
			t.Fatal("new entry must be inserted into the tensor")
		}
	}
}

func TestUpdateOnlineIdempotentOnKnownEntries(t *testing.T) {
	fx := newTrainFixture(31)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	cfg.Rank = 3
	m, err := Train(fx.x, fx.side, cfg)
	if err != nil {
		t.Fatal(err)
	}
	known := fx.x.Entries()[0]
	snapshot := m.Clone()
	added, err := m.UpdateOnline(fx.x, []tensor.Entry{known}, fx.side, DefaultOnlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if added != 0 {
		t.Fatalf("re-adding a known entry reported %d new cells", added)
	}
	if !m.U1.Equalf(snapshot.U1, 0) {
		t.Fatal("no-op update must not change the model")
	}
}

func TestUpdateOnlineValidation(t *testing.T) {
	fx := newTrainFixture(32)
	m := NewModel(fx.x.DimI, fx.x.DimJ, fx.x.DimK, 2)
	bad := DefaultOnlineConfig()
	bad.Epochs = 0
	if _, err := m.UpdateOnline(fx.x, nil, nil, bad); err == nil {
		t.Fatal("zero epochs must be rejected")
	}
	out := []tensor.Entry{{I: 999, J: 0, K: 0}}
	if _, err := m.UpdateOnline(fx.x, out, nil, DefaultOnlineConfig()); err == nil {
		t.Fatal("out-of-range entry must be rejected")
	}
}

func TestUpdateOnlineWithoutSideInfo(t *testing.T) {
	fx := newTrainFixture(33)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	cfg.Rank = 3
	m, err := Train(fx.x, fx.side, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fx.test) == 0 {
		t.Skip("no test entries")
	}
	if _, err := m.UpdateOnline(fx.x, fx.test[:1], nil, DefaultOnlineConfig()); err != nil {
		t.Fatalf("nil side info must be allowed: %v", err)
	}
}
