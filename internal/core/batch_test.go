package core

import (
	"math/rand"
	"sort"
	"testing"
)

// TestTopNBatchBitIdentical: every request in a coalesced batch must return
// exactly what the same request computes through the per-request path, in
// every storage mode — mixed users, time slices, Ns, and skip lists.
func TestTopNBatchBitIdentical(t *testing.T) {
	base := storageTestModel(t, 29, 41, 6, 10, 11)
	filter := make([][]bool, base.I)
	for i := range filter {
		filter[i] = make([]bool, base.J)
		for j := range filter[i] {
			filter[i][j] = (i*7+j)%5 != 0
		}
	}
	rng := rand.New(rand.NewSource(99))
	for _, withFilter := range []bool{false, true} {
		base.ZeroOutFilter = nil
		if withFilter {
			base.ZeroOutFilter = filter
		}
		for _, mode := range []StorageMode{StorageFloat64, StorageFloat32, StorageInt8} {
			m, err := base.ToStorage(mode)
			if err != nil {
				t.Fatal(err)
			}
			// Random batches of varying size, including size 1 and empty skip.
			for trial := 0; trial < 20; trial++ {
				B := 1 + rng.Intn(40)
				reqs := make([]BatchReq, B)
				for b := range reqs {
					var skip []int
					for j := 0; j < m.J; j++ {
						if rng.Float64() < 0.15 {
							skip = append(skip, j)
						}
					}
					sort.Ints(skip)
					reqs[b] = BatchReq{
						User: rng.Intn(m.I),
						T:    rng.Intn(m.K),
						N:    rng.Intn(12), // includes N=0 → nil result
						Skip: skip,
					}
				}
				got := m.TopNBatch(reqs, NewBatchScratch(m, B))
				sc := NewRecScratch(m)
				for b, rq := range reqs {
					want := m.TopNScratch(rq.User, rq.T, rq.N, rq.Skip, sc)
					if len(got[b]) != len(want) {
						t.Fatalf("%v filter=%v trial %d req %d: %d results, scalar path %d",
							mode, withFilter, trial, b, len(got[b]), len(want))
					}
					for p := range want {
						if got[b][p] != want[p] {
							t.Fatalf("%v filter=%v trial %d req %d rank %d: batch %+v, scalar %+v",
								mode, withFilter, trial, b, p, got[b][p], want[p])
						}
					}
				}
			}
		}
	}
}

// TestTopNBatchScratchReuse: a scratch must be reusable across batches of
// different sizes and models without leaking state between calls.
func TestTopNBatchScratchReuse(t *testing.T) {
	m := storageTestModel(t, 13, 17, 4, 6, 12)
	s := NewBatchScratch(nil, 0)
	sc := NewRecScratch(m)
	for _, B := range []int{5, 1, 9, 3} {
		reqs := make([]BatchReq, B)
		for b := range reqs {
			reqs[b] = BatchReq{User: b % m.I, T: b % m.K, N: 4, Skip: []int{0, 5}}
		}
		got := m.TopNBatch(reqs, s)
		for b, rq := range reqs {
			want := m.TopNScratch(rq.User, rq.T, rq.N, rq.Skip, sc)
			for p := range want {
				if got[b][p] != want[p] {
					t.Fatalf("batch %d req %d rank %d: %+v vs %+v", B, b, p, got[b][p], want[p])
				}
			}
		}
	}
}

func TestTopNBatchPanicsOutOfRange(t *testing.T) {
	m := storageTestModel(t, 5, 7, 3, 4, 13)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range request must panic like TopNScratch")
		}
	}()
	m.TopNBatch([]BatchReq{{User: 99, T: 0, N: 3}}, NewBatchScratch(m, 1))
}

// BenchmarkTopNBatch quantifies the batch-scoring win per storage mode: the
// quad-lane kernel (mat.Dot4) loads and widens each POI factor element once
// for four requests, so the largest gains are in the compact modes, where
// the per-request path pays the float32/int8 widening per request. The
// bit-identity contract (TestTopNBatchBitIdentical) pins both sides to
// the same floating-point results.
func BenchmarkTopNBatch(b *testing.B) {
	base := NewModel(512, 32768, 12, 32)
	rng := rand.New(rand.NewSource(1))
	for _, d := range [][]float64{base.U1.Data, base.U2.Data, base.U3.Data, base.H} {
		for i := range d {
			d[i] = rng.NormFloat64() * 0.3
		}
	}
	const B, N = 32, 10
	reqs := make([]BatchReq, B)
	for i := range reqs {
		reqs[i] = BatchReq{User: i * 16 % base.I, T: i % base.K, N: N}
	}
	for _, mode := range []StorageMode{StorageFloat64, StorageFloat32, StorageInt8} {
		m := base
		if mode != StorageFloat64 {
			var err error
			m, err = base.ToStorage(mode)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.Run(mode.String()+"/batched", func(b *testing.B) {
			s := NewBatchScratch(m, B)
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				m.TopNBatch(reqs, s)
			}
		})
		b.Run(mode.String()+"/per-request", func(b *testing.B) {
			s := NewRecScratch(m)
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				for _, rq := range reqs {
					m.TopNScratch(rq.User, rq.T, rq.N, rq.Skip, s)
				}
			}
		})
	}
}
