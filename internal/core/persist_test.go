package core

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomModel(5, 6, 3, 4, rng)
	m.ZeroOutFilter = make([][]bool, 5)
	for i := range m.ZeroOutFilter {
		m.ZeroOutFilter[i] = make([]bool, 6)
		m.ZeroOutFilter[i][i%6] = true
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rank != m.Rank || back.I != m.I || back.J != m.J || back.K != m.K {
		t.Fatal("shape lost in round trip")
	}
	for i := 0; i < m.I; i++ {
		for j := 0; j < m.J; j++ {
			for k := 0; k < m.K; k++ {
				if back.Predict(i, j, k) != m.Predict(i, j, k) {
					t.Fatal("predictions differ after round trip")
				}
				if back.Score(i, j, k) != m.Score(i, j, k) {
					t.Fatal("zero-out filter lost in round trip")
				}
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomModel(3, 3, 2, 2, rng)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Predict(1, 2, 1) != m.Predict(1, 2, 1) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadRejectsCorruptModels(t *testing.T) {
	cases := map[string]string{
		"garbage":         "not json",
		"bad version":     `{"version":99,"rank":1,"i":1,"j":1,"k":1,"u1":[0],"u2":[0],"u3":[0],"h":[0]}`,
		"bad shape":       `{"version":1,"rank":0,"i":1,"j":1,"k":1,"u1":[],"u2":[],"u3":[],"h":[]}`,
		"length mismatch": `{"version":1,"rank":2,"i":2,"j":1,"k":1,"u1":[0],"u2":[0,0],"u3":[0,0],"h":[0,0]}`,
		"bad filter":      `{"version":1,"rank":1,"i":2,"j":1,"k":1,"u1":[0,0],"u2":[0],"u3":[0],"h":[0],"zero_out":[[true]]}`,
	}
	for name, payload := range cases {
		if _, err := Load(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: Load must reject", name)
		}
	}
}
