package core

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomModel(5, 6, 3, 4, rng)
	m.ZeroOutFilter = make([][]bool, 5)
	for i := range m.ZeroOutFilter {
		m.ZeroOutFilter[i] = make([]bool, 6)
		m.ZeroOutFilter[i][i%6] = true
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rank != m.Rank || back.I != m.I || back.J != m.J || back.K != m.K {
		t.Fatal("shape lost in round trip")
	}
	for i := 0; i < m.I; i++ {
		for j := 0; j < m.J; j++ {
			for k := 0; k < m.K; k++ {
				if back.Predict(i, j, k) != m.Predict(i, j, k) {
					t.Fatal("predictions differ after round trip")
				}
				if back.Score(i, j, k) != m.Score(i, j, k) {
					t.Fatal("zero-out filter lost in round trip")
				}
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomModel(3, 3, 2, 2, rng)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Predict(1, 2, 1) != m.Predict(1, 2, 1) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadAcceptsLegacyVersions(t *testing.T) {
	// v0: files written before versioning carry no "version" field at all.
	// v1: explicit version, same factor layout. Both must keep loading.
	for name, payload := range map[string]string{
		"v0 legacy":   `{"rank":1,"i":1,"j":2,"k":1,"u1":[1],"u2":[0.5,2],"u3":[1],"h":[1]}`,
		"v1 explicit": `{"version":1,"rank":1,"i":1,"j":2,"k":1,"u1":[1],"u2":[0.5,2],"u3":[1],"h":[1]}`,
	} {
		m, gen, err := LoadVersioned(strings.NewReader(payload))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if gen != 0 {
			t.Fatalf("%s: legacy generation = %d, want 0", name, gen)
		}
		if got := m.Predict(0, 1, 0); got != 2 {
			t.Fatalf("%s: Predict = %g, want 2", name, got)
		}
	}
}

func TestLoadRejectsFutureFormatVersion(t *testing.T) {
	payload := `{"version":99,"rank":1,"i":1,"j":1,"k":1,"u1":[0],"u2":[0],"u3":[0],"h":[0]}`
	_, err := Load(strings.NewReader(payload))
	if !errors.Is(err, ErrFormatVersion) {
		t.Fatalf("future version error = %v, want ErrFormatVersion", err)
	}
	if !strings.Contains(err.Error(), "v99") {
		t.Fatalf("error %q does not name the offending version", err)
	}
	if _, err := Load(strings.NewReader(`{"version":-1,"rank":1,"i":1,"j":1,"k":1,"u1":[0],"u2":[0],"u3":[0],"h":[0]}`)); !errors.Is(err, ErrFormatVersion) {
		t.Fatalf("negative version error = %v, want ErrFormatVersion", err)
	}
}

func TestSaveVersionedGenerationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomModel(3, 4, 2, 2, rng)
	var buf bytes.Buffer
	if err := m.SaveVersioned(&buf, 41); err != nil {
		t.Fatal(err)
	}
	back, gen, err := LoadVersioned(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 41 {
		t.Fatalf("generation = %d, want 41", gen)
	}
	if back.Predict(2, 3, 1) != m.Predict(2, 3, 1) {
		t.Fatal("versioned round trip mismatch")
	}

	path := filepath.Join(t.TempDir(), "snap.json")
	if err := m.SaveFileVersioned(path, 7); err != nil {
		t.Fatal(err)
	}
	_, gen, err = LoadFileVersioned(path)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 7 {
		t.Fatalf("file generation = %d, want 7", gen)
	}
	// Offline saves record generation 0.
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	_, gen, err = LoadFileVersioned(path)
	if err != nil || gen != 0 {
		t.Fatalf("offline save generation = %d (%v), want 0", gen, err)
	}
}

func TestLoadRejectsCorruptModels(t *testing.T) {
	cases := map[string]string{
		"garbage":         "not json",
		"bad version":     `{"version":99,"rank":1,"i":1,"j":1,"k":1,"u1":[0],"u2":[0],"u3":[0],"h":[0]}`,
		"bad shape":       `{"version":1,"rank":0,"i":1,"j":1,"k":1,"u1":[],"u2":[],"u3":[],"h":[]}`,
		"length mismatch": `{"version":1,"rank":2,"i":2,"j":1,"k":1,"u1":[0],"u2":[0,0],"u3":[0,0],"h":[0,0]}`,
		"bad filter":      `{"version":1,"rank":1,"i":2,"j":1,"k":1,"u1":[0,0],"u2":[0],"u3":[0],"h":[0],"zero_out":[[true]]}`,
	}
	for name, payload := range cases {
		if _, err := Load(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: Load must reject", name)
		}
	}
}
