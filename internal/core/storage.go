package core

import (
	"fmt"
	"math"
	"strings"
)

// StorageMode selects how a Model stores its factor matrices. Training always
// runs in float64; the compact modes exist for serving, where the factor
// slabs dominate resident memory and memory bandwidth. All scoring entry
// points (Predict, Score, ScoreCandidates, ScoreSlab, TopNScratch, TopNBatch)
// work in every mode: compact values are widened to float64 inside the
// kernels, so the compute path — summation order included — matches the
// float64 kernels and the only deviation is the storage rounding of the
// factor entries themselves.
type StorageMode int

const (
	// StorageFloat64 is the native mode: factors are *mat.Matrix float64
	// slabs. Training, checkpointing and gradient math require it.
	StorageFloat64 StorageMode = iota
	// StorageFloat32 stores U1/U2/U3 as float32 slabs (half the bytes).
	// Scores drift from float64 by at most the float32 rounding of the
	// factor entries (~1e-7 relative per entry).
	StorageFloat32
	// StorageInt8 stores U1/U2/U3 as int8 slabs with one float64
	// dequantization scale per row (symmetric max-abs quantization to
	// [-127, 127]; about an 8x reduction of the factor bytes). Ranking
	// quality drift is bounded by the eval harness, not by construction.
	StorageInt8
)

// String names the mode the way the CLI flags spell it.
func (m StorageMode) String() string {
	switch m {
	case StorageFloat64:
		return "f64"
	case StorageFloat32:
		return "f32"
	case StorageInt8:
		return "int8"
	}
	return fmt.Sprintf("storage(%d)", int(m))
}

// ParseStorageMode parses the CLI spelling of a storage mode ("f64"/"float64",
// "f32"/"float32", "int8"/"i8").
func ParseStorageMode(s string) (StorageMode, error) {
	switch strings.ToLower(s) {
	case "f64", "float64", "":
		return StorageFloat64, nil
	case "f32", "float32":
		return StorageFloat32, nil
	case "int8", "i8":
		return StorageInt8, nil
	}
	return StorageFloat64, fmt.Errorf("core: unknown storage mode %q (want f64, f32 or int8)", s)
}

// valid reports whether m is one of the defined modes.
func (m StorageMode) valid() bool {
	return m == StorageFloat64 || m == StorageFloat32 || m == StorageInt8
}

// compactFactors holds the factor slabs of a non-float64 model. Exactly one
// representation is populated per mode: the float32 slabs, or the int8 slabs
// plus per-row scales. Slices may alias a read-only memory mapping (see
// LoadModelMmap), so they must never be written through.
type compactFactors struct {
	// StorageFloat32: row-major slabs, same layout as mat.Matrix.Data.
	U1f, U2f, U3f []float32

	// StorageInt8: row-major quantized slabs and one dequantization scale
	// per row (value = scale[row] * q). A zero row has scale 0.
	U1q, U2q, U3q []int8
	S1, S2, S3    []float64
}

// clone deep-copies every populated slab onto the heap (the source may alias
// a read-only mmap region).
func (c *compactFactors) clone() *compactFactors {
	out := &compactFactors{}
	cp32 := func(s []float32) []float32 {
		if s == nil {
			return nil
		}
		d := make([]float32, len(s))
		copy(d, s)
		return d
	}
	cp8 := func(s []int8) []int8 {
		if s == nil {
			return nil
		}
		d := make([]int8, len(s))
		copy(d, s)
		return d
	}
	cp64 := func(s []float64) []float64 {
		if s == nil {
			return nil
		}
		d := make([]float64, len(s))
		copy(d, s)
		return d
	}
	out.U1f, out.U2f, out.U3f = cp32(c.U1f), cp32(c.U2f), cp32(c.U3f)
	out.U1q, out.U2q, out.U3q = cp8(c.U1q), cp8(c.U2q), cp8(c.U3q)
	out.S1, out.S2, out.S3 = cp64(c.S1), cp64(c.S2), cp64(c.S3)
	return out
}

// quantizeRows quantizes a row-major float64 slab to int8 with one symmetric
// max-abs scale per row: q = round(v * 127 / maxabs(row)), value' = s * q
// with s = maxabs(row) / 127.
func quantizeRows(data []float64, rows, cols int) (q []int8, scale []float64) {
	q = make([]int8, len(data))
	scale = make([]float64, rows)
	for i := 0; i < rows; i++ {
		row := data[i*cols : (i+1)*cols]
		var mx float64
		for _, v := range row {
			if a := math.Abs(v); a > mx {
				mx = a
			}
		}
		if mx == 0 {
			continue // scale 0, all-zero quantized row
		}
		s := mx / 127
		scale[i] = s
		inv := 127 / mx
		for t, v := range row {
			q[i*cols+t] = int8(math.RoundToEven(v * inv))
		}
	}
	return q, scale
}

// ToStorage returns a model storing its factors in the given mode. Converting
// to the model's current mode returns the model itself (no copy). Converting
// between the two compact modes or back to float64 goes through Decompress,
// so int8 -> f32 carries the quantization loss of the int8 source. H and the
// zero-out filter are shared; they are negligible next to the factor slabs.
func (m *Model) ToStorage(mode StorageMode) (*Model, error) {
	if !mode.valid() {
		return nil, fmt.Errorf("core: unknown storage mode %d", int(mode))
	}
	if mode == m.Mode {
		return m, nil
	}
	if m.Mode != StorageFloat64 {
		return m.Decompress().ToStorage(mode)
	}
	out := &Model{
		Rank: m.Rank, I: m.I, J: m.J, K: m.K,
		Mode:          mode,
		H:             m.H,
		ZeroOutFilter: m.ZeroOutFilter,
	}
	switch mode {
	case StorageFloat32:
		out.Compact = &compactFactors{
			U1f: f32FromF64(m.U1.Data),
			U2f: f32FromF64(m.U2.Data),
			U3f: f32FromF64(m.U3.Data),
		}
	case StorageInt8:
		c := &compactFactors{}
		c.U1q, c.S1 = quantizeRows(m.U1.Data, m.I, m.Rank)
		c.U2q, c.S2 = quantizeRows(m.U2.Data, m.J, m.Rank)
		c.U3q, c.S3 = quantizeRows(m.U3.Data, m.K, m.Rank)
		out.Compact = c
	}
	return out, nil
}

// Decompress returns a float64-mode model carrying exactly the values the
// compact scoring kernels compute with (float32 entries widened, int8 entries
// dequantized as scale*q). A float64 model decompresses to itself. The
// returned model is fully trainable; the online-update path decompresses,
// updates, and re-compacts.
func (m *Model) Decompress() *Model {
	if m.Mode == StorageFloat64 {
		return m
	}
	out := NewModel(m.I, m.J, m.K, m.Rank)
	copy(out.H, m.H)
	out.ZeroOutFilter = m.ZeroOutFilter
	c := m.Compact
	switch m.Mode {
	case StorageFloat32:
		f64FromF32(out.U1.Data, c.U1f)
		f64FromF32(out.U2.Data, c.U2f)
		f64FromF32(out.U3.Data, c.U3f)
	case StorageInt8:
		dequantRows(out.U1.Data, c.U1q, c.S1, m.Rank)
		dequantRows(out.U2.Data, c.U2q, c.S2, m.Rank)
		dequantRows(out.U3.Data, c.U3q, c.S3, m.Rank)
	}
	return out
}

func f32FromF64(src []float64) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}

func f64FromF32(dst []float64, src []float32) {
	for i, v := range src {
		dst[i] = float64(v)
	}
}

func dequantRows(dst []float64, q []int8, scale []float64, cols int) {
	for i, s := range scale {
		row := q[i*cols : (i+1)*cols]
		for t, v := range row {
			dst[i*cols+t] = s * float64(v)
		}
	}
}

// FactorBytes returns the resident size of the factor parameters in bytes:
// the three factor slabs, the per-row scales in int8 mode, and h. The
// zero-out filter (an optional ablation artifact) is not counted.
func (m *Model) FactorBytes() int64 {
	h := int64(len(m.H)) * 8
	switch m.Mode {
	case StorageFloat32:
		c := m.Compact
		return h + 4*int64(len(c.U1f)+len(c.U2f)+len(c.U3f))
	case StorageInt8:
		c := m.Compact
		return h + int64(len(c.U1q)+len(c.U2q)+len(c.U3q)) +
			8*int64(len(c.S1)+len(c.S2)+len(c.S3))
	default:
		return h + 8*int64(m.I+m.J+m.K)*int64(m.Rank)
	}
}

// u1Row returns user row i as float64s: the row view itself in float64 mode
// (no copy), otherwise dequantized into buf, which must have length >= Rank.
func (m *Model) u1Row(i int, buf []float64) []float64 {
	switch m.Mode {
	case StorageFloat32:
		row := m.Compact.U1f[i*m.Rank : (i+1)*m.Rank]
		buf = buf[:m.Rank]
		for t, v := range row {
			buf[t] = float64(v)
		}
		return buf
	case StorageInt8:
		row := m.Compact.U1q[i*m.Rank : (i+1)*m.Rank]
		s := m.Compact.S1[i]
		buf = buf[:m.Rank]
		for t, v := range row {
			buf[t] = s * float64(v)
		}
		return buf
	default:
		return m.U1.Row(i)
	}
}

// u2Row is u1Row for POI rows.
func (m *Model) u2Row(j int, buf []float64) []float64 {
	switch m.Mode {
	case StorageFloat32:
		row := m.Compact.U2f[j*m.Rank : (j+1)*m.Rank]
		buf = buf[:m.Rank]
		for t, v := range row {
			buf[t] = float64(v)
		}
		return buf
	case StorageInt8:
		row := m.Compact.U2q[j*m.Rank : (j+1)*m.Rank]
		s := m.Compact.S2[j]
		buf = buf[:m.Rank]
		for t, v := range row {
			buf[t] = s * float64(v)
		}
		return buf
	default:
		return m.U2.Row(j)
	}
}

// u3Row is u1Row for time rows.
func (m *Model) u3Row(k int, buf []float64) []float64 {
	switch m.Mode {
	case StorageFloat32:
		row := m.Compact.U3f[k*m.Rank : (k+1)*m.Rank]
		buf = buf[:m.Rank]
		for t, v := range row {
			buf[t] = float64(v)
		}
		return buf
	case StorageInt8:
		row := m.Compact.U3q[k*m.Rank : (k+1)*m.Rank]
		s := m.Compact.S3[k]
		buf = buf[:m.Rank]
		for t, v := range row {
			buf[t] = s * float64(v)
		}
		return buf
	default:
		return m.U3.Row(k)
	}
}
