package core

import (
	"bytes"
	"path/filepath"
	"testing"
)

// grownTestModel builds a model with a zero-out filter and grows it with
// warm-start hints (including an id gap before the last user), the shape a
// serving node reaches after open-world observe batches.
func grownTestModel(t *testing.T) *Model {
	t.Helper()
	m := storageTestModel(t, 11, 13, 5, 6, 99)
	filter := make([][]bool, m.I)
	for i := range filter {
		filter[i] = make([]bool, m.J)
		for j := range filter[i] {
			filter[i][j] = (i+j)%4 != 0
		}
	}
	m.ZeroOutFilter = filter
	hints := &GrowthHints{
		Friends:  map[int][]int{11: {0, 3}, 12: {11, 5}},
		NearPOIs: map[int][]int{13: {2, 7, 9}},
		Seed:     17,
	}
	if err := m.Grow(14, 15, hints); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestGrownModelJSONRoundTrip: a model grown past its trained dimensions
// must survive the JSON (v4) snapshot format bit-identically — grown rows,
// extended zero-out filter and generation included.
func TestGrownModelJSONRoundTrip(t *testing.T) {
	m := grownTestModel(t)

	var buf bytes.Buffer
	if err := m.SaveVersioned(&buf, 7); err != nil {
		t.Fatal(err)
	}
	got, gen, err := LoadVersioned(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 7 {
		t.Fatalf("generation %d, want 7", gen)
	}
	binModelsEqual(t, "json", m, got)

	path := filepath.Join(t.TempDir(), "grown.json")
	if err := m.SaveFileVersioned(path, 9); err != nil {
		t.Fatal(err)
	}
	fm, fgen, err := LoadFileVersioned(path)
	if err != nil {
		t.Fatal(err)
	}
	if fgen != 9 {
		t.Fatalf("file generation %d, want 9", fgen)
	}
	binModelsEqual(t, "json/file", m, fm)

	// The reloaded model must stay growable: old rows keep their bits.
	before := append([]float64(nil), fm.U1.Data...)
	if err := fm.Grow(20, 15, nil); err != nil {
		t.Fatal(err)
	}
	for n, v := range before {
		if fm.U1.Data[n] != v {
			t.Fatalf("u1[%d] changed across post-load Grow", n)
		}
	}
}

// TestGrownModelBinaryRoundTrip: the v5 binary slab format must carry grown
// models through both the mmap and the stream loaders bit-identically, in
// every storage mode a grown float64 model can be compacted to.
func TestGrownModelBinaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := grownTestModel(t)
	for _, mode := range []StorageMode{StorageFloat64, StorageFloat32, StorageInt8} {
		m, err := base.ToStorage(mode)
		if err != nil {
			t.Fatalf("%v: compact: %v", mode, err)
		}
		path := filepath.Join(dir, "grown-"+mode.String()+".bin")
		if err := m.SaveFileBinary(path, 21); err != nil {
			t.Fatalf("%v: save: %v", mode, err)
		}

		mm, gen, mapping, err := LoadFileMmap(path)
		if err != nil {
			t.Fatalf("%v: mmap load: %v", mode, err)
		}
		if gen != 21 {
			t.Fatalf("%v: mmap generation %d, want 21", mode, gen)
		}
		binModelsEqual(t, mode.String()+"/mmap", m, mm)
		if err := mapping.Close(); err != nil {
			t.Fatalf("%v: close: %v", mode, err)
		}

		sm, sgen, err := LoadFileVersioned(path)
		if err != nil {
			t.Fatalf("%v: stream load: %v", mode, err)
		}
		if sgen != 21 {
			t.Fatalf("%v: stream generation %d, want 21", mode, sgen)
		}
		binModelsEqual(t, mode.String()+"/stream", m, sm)
	}
}
