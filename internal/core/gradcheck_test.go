// Differential gradient verification of every core loss head through the
// internal/check harness: unlike the hand-rolled spot checks in loss_test.go
// (kept as fast smoke tests), these sweep EVERY parameter element of every
// head — serial and sharded — at the harness's 1e-6 relative tolerance.
package core_test

import (
	"math/rand"
	"testing"

	"tcss/internal/check"
	"tcss/internal/core"
)

// headFixture bundles the shared setup of the loss-head checks: a positive
// model (predictions strictly inside the Hausdorff head's clamp range), the
// deterministic training tensor, and a gradient accumulator aliased into the
// checker params.
func headFixture(t *testing.T) (*check.TrainFixture, *core.Model, *core.Grads, []check.Param) {
	t.Helper()
	fx := check.NewTrainFixture(7)
	m := check.PositiveModel(fx.Train.DimI, fx.Train.DimJ, fx.Train.DimK, 4, 11)
	g := core.NewGrads(m)
	return fx, m, g, check.ModelParams(m, g)
}

func allUsers(n int) []int {
	users := make([]int, n)
	for i := range users {
		users[i] = i
	}
	return users
}

func TestGradcheckWholeDataLoss(t *testing.T) {
	fx, m, g, params := headFixture(t)
	for _, workers := range []int{1, 3} {
		f := func() float64 {
			g.Zero()
			return m.WholeDataLossWorkers(fx.Train, 0.99, 0.01, g, workers)
		}
		check.Assert(t, f, params, check.Options{})
	}
}

func TestGradcheckNegSamplingLoss(t *testing.T) {
	fx, m, g, params := headFixture(t)
	negs, err := core.SampleNegatives(fx.Train, 2*fx.Train.NNZ(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		f := func() float64 {
			g.Zero()
			return m.NegSamplingLossWorkers(fx.Train, negs, 0.99, 0.01, g, workers)
		}
		check.Assert(t, f, params, check.Options{})
	}
}

func TestGradcheckHausdorffLoss(t *testing.T) {
	fx, m, g, params := headFixture(t)
	users := allUsers(m.I)
	for _, entropy := range []bool{true, false} {
		entropyW := fx.Side.EntropyW
		if !entropy {
			entropyW = nil
		}
		head := core.NewHausdorff(fx.Side.Dist, entropyW, fx.Side.FriendPOIs)
		for _, workers := range []int{1, 3} {
			f := func() float64 {
				g.Zero()
				return head.LossWorkers(m, users, g, workers)
			}
			check.Assert(t, f, params, check.Options{})
		}
	}
}

// The non-harmonic (α ≠ −1) smooth-minimum branch takes a different code path
// through math.Pow; check it separately.
func TestGradcheckHausdorffNonHarmonicAlpha(t *testing.T) {
	fx, m, g, params := headFixture(t)
	head := core.NewHausdorff(fx.Side.Dist, fx.Side.EntropyW, fx.Side.FriendPOIs)
	head.Alpha = -2
	users := allUsers(m.I)
	f := func() float64 {
		g.Zero()
		return head.Loss(m, users, g)
	}
	check.Assert(t, f, params, check.Options{})
}

// The self-Hausdorff ablation swaps the friend sets for the user's own POIs.
func TestGradcheckSelfHausdorffLoss(t *testing.T) {
	fx, m, g, params := headFixture(t)
	head := core.NewHausdorff(fx.Side.Dist, fx.Side.EntropyW, fx.Side.OwnPOIs)
	users := allUsers(m.I)
	f := func() float64 {
		g.Zero()
		return head.Loss(m, users, g)
	}
	check.Assert(t, f, params, check.Options{})
}

// The full training objective λ·L1 + L2, composed exactly as core.Train
// composes it (separate head accumulator scaled by λ and merged).
func TestGradcheckCombinedTrainingLoss(t *testing.T) {
	fx, m, g, params := headFixture(t)
	head := core.NewHausdorff(fx.Side.Dist, fx.Side.EntropyW, fx.Side.FriendPOIs)
	gh := core.NewGrads(m)
	users := allUsers(m.I)
	const lambda = 5.0
	f := func() float64 {
		g.Zero()
		l2 := m.WholeDataLossWorkers(fx.Train, 0.99, 0.01, g, 2)
		gh.Zero()
		l1 := head.LossWorkers(m, users, gh, 2)
		g.DU1.AddInPlace(gh.DU1.Scale(lambda))
		g.DU2.AddInPlace(gh.DU2.Scale(lambda))
		g.DU3.AddInPlace(gh.DU3.Scale(lambda))
		for i := range g.DH {
			g.DH[i] += lambda * gh.DH[i]
		}
		return lambda*l1 + l2
	}
	check.Assert(t, f, params, check.Options{})
}

// Regression demonstrating the checker catches a deliberately broken core
// gradient: a 2% scale error on dH — the magnitude of a typical
// double-counted regularization term — must fail the check and be attributed
// to the right tensor.
func TestGradcheckCatchesSabotagedHeadGradient(t *testing.T) {
	fx, m, g, params := headFixture(t)
	f := func() float64 {
		g.Zero()
		loss := m.WholeDataLoss(fx.Train, 0.99, 0.01, g)
		for i := range g.DH {
			g.DH[i] *= 1.02
		}
		return loss
	}
	res := check.Gradients(f, params, check.Options{})
	if res.MaxRelErr() <= 1e-6 {
		t.Fatalf("sabotaged dH passed the checker: max rel-err %g", res.MaxRelErr())
	}
	if worst := res.Worst(); worst.Param != "h" {
		t.Fatalf("sabotage attributed to %q, want h:\n%s", worst.Param, res)
	}
}
