package core

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tcss/internal/opt"
)

func TestConfigValidateTable(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Rank = 4
		cfg.Epochs = 2
		return cfg
	}
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring; empty means valid
	}{
		{"default", func(*Config) {}, ""},
		{"zero epochs", func(c *Config) { c.Epochs = 0 }, ""},
		{"subsampling", func(c *Config) { c.UsersPerEpoch = 3 }, ""},
		{"zero rank", func(c *Config) { c.Rank = 0 }, "rank"},
		{"negative rank", func(c *Config) { c.Rank = -2 }, "rank"},
		{"negative epochs", func(c *Config) { c.Epochs = -1 }, "epochs"},
		{"zero wpos", func(c *Config) { c.WPos = 0 }, "weights"},
		{"negative wneg", func(c *Config) { c.WNeg = -0.1 }, "weights"},
		{"negative lambda", func(c *Config) { c.Lambda = -1 }, "lambda"},
		{"negsampling without rate", func(c *Config) { c.NegSampling = true; c.NegPerPos = 0 }, "NegPerPos"},
		{"negative users per epoch", func(c *Config) { c.UsersPerEpoch = -5 }, "UsersPerEpoch"},
		{"negative sigma frac", func(c *Config) { c.ZeroOutSigmaFrac = -0.01 }, "ZeroOutSigmaFrac"},
		{"negative workers", func(c *Config) { c.Workers = -3 }, "worker"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted an invalid config")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestPermIntoMatchesPerm pins the reusable-buffer permutation to rand.Perm:
// identical output and identical RNG stream position afterwards, for a
// buffer reused (and therefore dirty) across calls.
func TestPermIntoMatchesPerm(t *testing.T) {
	buf := make([]int, 64)
	for _, n := range []int{1, 2, 7, 16, 64} {
		a := rand.New(rand.NewSource(99))
		b := rand.New(rand.NewSource(99))
		for round := 0; round < 3; round++ {
			want := a.Perm(n)
			got := permInto(b, buf, n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d round=%d: permInto %v, Perm %v", n, round, got, want)
				}
			}
		}
		if a.Int63() != b.Int63() {
			t.Fatalf("n=%d: RNG streams diverged after permInto", n)
		}
	}
}

// resumeCase is one Train configuration whose checkpoint/resume must be
// bit-identical to an uninterrupted run.
func resumeCase(variant HausdorffVariant) Config {
	cfg := Config{
		Rank: 4, WPos: 0.99, WNeg: 0.01, Lambda: 5, Alpha: -1, Eps: 1e-6,
		Epochs: 6, LR: 0.1, WeightDecay: 0.01,
		Init: SpectralInit, Variant: variant,
		NegPerPos: 1, ZeroOutSigmaFrac: 0.01,
		Workers: 1, Seed: 13,
	}
	if variant == NoHausdorff || variant == ZeroOut {
		cfg.Lambda = 0
	}
	return cfg
}

func modelsEqual(t *testing.T, name string, a, b *Model) {
	t.Helper()
	check := func(part string, x, y []float64) {
		if len(x) != len(y) {
			t.Fatalf("%s: %s length %d vs %d", name, part, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("%s: %s[%d] = %v vs %v — resume is not bit-identical", name, part, i, x[i], y[i])
			}
		}
	}
	check("U1", a.U1.Data, b.U1.Data)
	check("U2", a.U2.Data, b.U2.Data)
	check("U3", a.U3.Data, b.U3.Data)
	check("h", a.H, b.H)
	if (a.ZeroOutFilter == nil) != (b.ZeroOutFilter == nil) {
		t.Fatalf("%s: zero-out filter presence differs", name)
	}
	for i := range a.ZeroOutFilter {
		for j := range a.ZeroOutFilter[i] {
			if a.ZeroOutFilter[i][j] != b.ZeroOutFilter[i][j] {
				t.Fatalf("%s: zero-out filter differs at (%d,%d)", name, i, j)
			}
		}
	}
}

// TestTrainResumeBitIdentical trains each variant straight through, then as
// a checkpointed run killed at epoch 3 and resumed, and demands the final
// models match bit for bit — the engine's checkpoint carries everything
// (factors, Adam moments, RNG position, epoch) the trajectory depends on.
func TestTrainResumeBitIdentical(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"social", func(*Config) {}},
		{"self", func(c *Config) { c.Variant = SelfHausdorff }},
		{"no-l1", func(c *Config) { c.Variant = NoHausdorff }},
		{"zero-out", func(c *Config) { c.Variant = ZeroOut }},
		{"negsampling", func(c *Config) { c.NegSampling = true }},
		{"subsample", func(c *Config) { c.UsersPerEpoch = 7 }},
		{"scheduled", func(c *Config) { c.LRSchedule = opt.ExponentialSchedule{Gamma: 0.9} }},
	}
	fx := newTrainFixture(31)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := resumeCase(SocialHausdorff)
			tc.mutate(&cfg)
			if cfg.Variant == NoHausdorff || cfg.Variant == ZeroOut {
				cfg.Lambda = 0
			}

			straight, err := Train(fx.x.Clone(), fx.side, cfg)
			if err != nil {
				t.Fatal(err)
			}

			ck := filepath.Join(t.TempDir(), "ck.json")
			half := cfg
			half.Epochs = 3
			half.CheckpointPath = ck
			if _, err := Train(fx.x.Clone(), fx.side, half); err != nil {
				t.Fatal(err)
			}

			resumedCfg := cfg
			resumedCfg.ResumePath = ck
			resumed, err := Train(fx.x.Clone(), fx.side, resumedCfg)
			if err != nil {
				t.Fatal(err)
			}
			modelsEqual(t, tc.name, straight, resumed)
		})
	}
}

func TestTrainResumeRejectsMismatch(t *testing.T) {
	fx := newTrainFixture(31)
	cfg := resumeCase(NoHausdorff)
	cfg.Epochs = 2
	ck := filepath.Join(t.TempDir(), "ck.json")
	cfg.CheckpointPath = ck
	if _, err := Train(fx.x.Clone(), fx.side, cfg); err != nil {
		t.Fatal(err)
	}

	wrongRank := cfg
	wrongRank.CheckpointPath = ""
	wrongRank.ResumePath = ck
	wrongRank.Rank = 5
	if _, err := Train(fx.x.Clone(), fx.side, wrongRank); err == nil {
		t.Fatal("resume with mismatched rank must fail")
	}

	// A plain model file (no training state) is not resumable.
	m, _, err := LoadCheckpointFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	plain := filepath.Join(t.TempDir(), "plain.json")
	if err := m.SaveFile(plain); err != nil {
		t.Fatal(err)
	}
	noState := cfg
	noState.CheckpointPath = ""
	noState.ResumePath = plain
	if _, err := Train(fx.x.Clone(), fx.side, noState); err == nil {
		t.Fatal("resume from a stateless model file must fail")
	}
}

// TestCheckpointFileIsModelFile verifies the dual nature of a v3 checkpoint:
// Load reads it as a plain model, ignoring the training state.
func TestCheckpointFileIsModelFile(t *testing.T) {
	fx := newTrainFixture(31)
	cfg := resumeCase(NoHausdorff)
	cfg.Epochs = 2
	ck := filepath.Join(t.TempDir(), "ck.json")
	cfg.CheckpointPath = ck
	trained, err := Train(fx.x.Clone(), fx.side, cfg)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	modelsEqual(t, "checkpoint-as-model", trained, loaded)
}

func TestPersistV3RoundTripAndVersionGates(t *testing.T) {
	fx := newTrainFixture(31)
	cfg := resumeCase(NoHausdorff)
	cfg.Epochs = 2
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "ck.json")
	if _, err := Train(fx.x.Clone(), fx.side, cfg); err != nil {
		t.Fatal(err)
	}
	m, st, err := LoadCheckpointFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil {
		t.Fatal("checkpoint lost its training state")
	}
	if st.Epoch != 2 {
		t.Fatalf("checkpoint epoch = %d, want 2", st.Epoch)
	}
	if st.Opt.Algo != "adam" {
		t.Fatalf("checkpoint optimizer algo = %q, want adam", st.Opt.Algo)
	}
	if st.RNG.Seed != cfg.Seed || st.RNG.Draws == 0 {
		t.Fatalf("checkpoint RNG state %+v not recorded", st.RNG)
	}

	// Round-trip through a second save preserves every bit.
	second := filepath.Join(t.TempDir(), "ck2.json")
	if err := m.SaveCheckpointFile(second, st); err != nil {
		t.Fatal(err)
	}
	m2, st2, err := LoadCheckpointFile(second)
	if err != nil {
		t.Fatal(err)
	}
	modelsEqual(t, "round-trip", m, m2)
	if st2.Epoch != st.Epoch || st2.RNG != st.RNG {
		t.Fatalf("state round-trip changed %+v to %+v", st, st2)
	}
	for name, mom := range st.Opt.M {
		for i := range mom {
			if st2.Opt.M[name][i] != mom[i] {
				t.Fatalf("Adam first moment %q[%d] changed in round-trip", name, i)
			}
		}
	}

	// Legacy plain files load with a nil state.
	plain := filepath.Join(t.TempDir(), "plain.json")
	if err := m.SaveFile(plain); err != nil {
		t.Fatal(err)
	}
	_, stPlain, err := LoadCheckpointFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	if stPlain != nil {
		t.Fatal("plain model file must load with nil training state")
	}

	// Future versions are rejected loudly. The first "version" in a sealed
	// file is the frame header's; bumping it is how a future build's file
	// looks to this one.
	future := strings.Replace(readFileString(t, plain), `"version":4`, `"version":9`, 1)
	if _, _, err := LoadCheckpoint(strings.NewReader(future)); !errors.Is(err, ErrFormatVersion) {
		t.Fatalf("future version gave %v, want ErrFormatVersion", err)
	}
}

func readFileString(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestOnlineUpdateMatchesEngine re-runs an online update twice from clones
// and checks determinism through the engine path (the serve writer loop
// depends on it).
func TestOnlineUpdateMatchesEngine(t *testing.T) {
	fx := newTrainFixture(31)
	cfg := resumeCase(NoHausdorff)
	cfg.Epochs = 3
	m, err := Train(fx.x.Clone(), fx.side, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ocfg := DefaultOnlineConfig()
	ocfg.Epochs = 4
	ocfg.Lambda = 0.5

	run := func() *Model {
		mm := m.Clone()
		x := fx.x.Clone()
		if _, err := mm.UpdateOnline(x, fx.test[:3], fx.side, ocfg); err != nil {
			t.Fatal(err)
		}
		return mm
	}
	modelsEqual(t, "online-determinism", run(), run())
}
