package core

import (
	"fmt"
	"math"
	"math/rand"

	"tcss/internal/mat"
	"tcss/internal/par"
	"tcss/internal/tensor"
)

// Grads accumulates the gradient of the training loss with respect to every
// model parameter.
type Grads struct {
	DU1, DU2, DU3 *mat.Matrix
	DH            []float64
}

// NewGrads allocates a zeroed gradient accumulator shaped like m.
func NewGrads(m *Model) *Grads {
	return &Grads{
		DU1: mat.New(m.I, m.Rank),
		DU2: mat.New(m.J, m.Rank),
		DU3: mat.New(m.K, m.Rank),
		DH:  make([]float64, m.Rank),
	}
}

// Zero clears the accumulator.
func (g *Grads) Zero() {
	g.DU1.Fill(0)
	g.DU2.Fill(0)
	g.DU3.Fill(0)
	for i := range g.DH {
		g.DH[i] = 0
	}
}

// Add accumulates other into g.
func (g *Grads) Add(other *Grads) {
	g.DU1.AddInPlace(other.DU1)
	g.DU2.AddInPlace(other.DU2)
	g.DU3.AddInPlace(other.DU3)
	for i, v := range other.DH {
		g.DH[i] += v
	}
}

// WholeDataLoss computes L2 of Eq (14) — the class-weighted squared error
// over EVERY tensor cell, treating unlabeled cells as negatives — using the
// rewritten form of Eq (15) whose cost is O(|Ω₊|·r + (I+J+K)·r²) instead of
// O(I·J·K·r). If grads is non-nil the full gradient is accumulated into it.
//
// The returned value includes the constant Σ_{Ω₊} w₊·X² term that Eq (15)
// drops, so it matches the naive Eq (14) evaluation (the equivalence Remark 1
// proves); tests rely on this. It delegates to WholeDataLossWorkers with the
// default worker count.
func (m *Model) WholeDataLoss(x *tensor.COO, wPos, wNeg float64, grads *Grads) float64 {
	return m.WholeDataLossWorkers(x, wPos, wNeg, grads, 0)
}

// lossOverEntries sums fn over the entries, parallelized across contiguous
// shards (tensor.ShardEntries). Each worker accumulates into a private
// gradient shard; shard losses and gradients merge in ascending shard order,
// so the result is reproducible at a fixed worker count and bit-for-bit equal
// to the plain serial loop at workers <= 1.
func (m *Model) lossOverEntries(entries []tensor.Entry, grads *Grads, workers int, fn func(e tensor.Entry, g *Grads) float64) float64 {
	n := len(entries)
	if n == 0 {
		return 0
	}
	w := par.Clamp(workers, n)
	if w <= 1 {
		var loss float64
		for _, e := range entries {
			loss += fn(e, grads)
		}
		return loss
	}
	shards := tensor.ShardEntries(entries, w)
	type shardResult struct {
		loss  float64
		grads *Grads
	}
	var total float64
	par.Reduce(len(shards), len(shards), func(s par.Shard) shardResult {
		var g *Grads
		if grads != nil {
			g = NewGrads(m)
		}
		var loss float64
		for _, e := range shards[s.Index] {
			loss += fn(e, g)
		}
		return shardResult{loss: loss, grads: g}
	}, func(sr shardResult) {
		total += sr.loss
		if grads != nil {
			grads.Add(sr.grads)
		}
	})
	return total
}

// WholeDataLossWorkers is WholeDataLoss with an explicit worker count for the
// positive-entry correction loop (<= 0 selects par.DefaultWorkers). The
// whole-tensor Gram term is O((I+J+K)·r²) and stays serial.
func (m *Model) WholeDataLossWorkers(x *tensor.COO, wPos, wNeg float64, grads *Grads, workers int) float64 {
	r := m.Rank
	// Gram matrices of the factors: G1 = U1ᵀU1 (r×r), etc.
	g1 := m.U1.Gram()
	g2 := m.U2.Gram()
	g3 := m.U3.Gram()

	// Whole-data term: w₋ Σ_{r1,r2} h_{r1}h_{r2} G1·G2·G3 (elementwise).
	var whole float64
	for a := 0; a < r; a++ {
		for b := 0; b < r; b++ {
			whole += m.H[a] * m.H[b] * g1.At(a, b) * g2.At(a, b) * g3.At(a, b)
		}
	}
	loss := wNeg * whole

	// Positive-entry corrections: (w₊−w₋)·X̂² − 2·w₊·X·X̂ + w₊·X²
	// (the last term restores the constant Eq (15) omits).
	loss += m.lossOverEntries(x.Entries(), grads, workers, func(e tensor.Entry, g *Grads) float64 {
		pred := m.Predict(e.I, e.J, e.K)
		if g != nil {
			coeff := 2 * ((wPos-wNeg)*pred - wPos*e.Val)
			m.accumEntryGrad(g, e.I, e.J, e.K, coeff)
		}
		return (wPos-wNeg)*pred*pred - 2*wPos*e.Val*pred + wPos*e.Val*e.Val
	})

	if grads != nil {
		// Gradient of the whole-data term:
		//   ∂/∂U1 = 2·w₋·U1·M1 with M1 = (h hᵀ) ⊙ G2 ⊙ G3, and cyclically;
		//   ∂/∂h_t = 2·w₋ Σ_b h_b (G1⊙G2⊙G3)[t,b].
		m1 := mat.New(r, r)
		m2 := mat.New(r, r)
		m3 := mat.New(r, r)
		for a := 0; a < r; a++ {
			for b := 0; b < r; b++ {
				hh := m.H[a] * m.H[b]
				m1.Set(a, b, hh*g2.At(a, b)*g3.At(a, b))
				m2.Set(a, b, hh*g1.At(a, b)*g3.At(a, b))
				m3.Set(a, b, hh*g1.At(a, b)*g2.At(a, b))
				grads.DH[a] += 2 * wNeg * m.H[b] * g1.At(a, b) * g2.At(a, b) * g3.At(a, b)
			}
		}
		grads.DU1.AddInPlace(m.U1.Mul(m1).Scale(2 * wNeg))
		grads.DU2.AddInPlace(m.U2.Mul(m2).Scale(2 * wNeg))
		grads.DU3.AddInPlace(m.U3.Mul(m3).Scale(2 * wNeg))
	}
	return loss
}

// accumEntryGrad adds coeff·∂X̂[i,j,k]/∂θ to every parameter gradient.
func (m *Model) accumEntryGrad(grads *Grads, i, j, k int, coeff float64) {
	a, b, c := m.U1.Row(i), m.U2.Row(j), m.U3.Row(k)
	da, db, dc := grads.DU1.Row(i), grads.DU2.Row(j), grads.DU3.Row(k)
	for t := 0; t < m.Rank; t++ {
		ht := m.H[t]
		da[t] += coeff * ht * b[t] * c[t]
		db[t] += coeff * ht * a[t] * c[t]
		dc[t] += coeff * ht * a[t] * b[t]
		grads.DH[t] += coeff * a[t] * b[t] * c[t]
	}
}

// NaiveWholeDataLoss evaluates Eq (14) literally with a triple loop over all
// I·J·K cells, with optional gradient accumulation. It exists for the
// equivalence tests against WholeDataLoss and for the Table IV timing
// comparison; never use it for real training.
func (m *Model) NaiveWholeDataLoss(x *tensor.COO, wPos, wNeg float64, grads *Grads) float64 {
	var loss float64
	for i := 0; i < m.I; i++ {
		for j := 0; j < m.J; j++ {
			for k := 0; k < m.K; k++ {
				val := x.At(i, j, k)
				w := wNeg
				if val != 0 {
					w = wPos
				}
				pred := m.Predict(i, j, k)
				diff := pred - val
				loss += w * diff * diff
				if grads != nil {
					m.accumEntryGrad(grads, i, j, k, 2*w*diff)
				}
			}
		}
	}
	return loss
}

// SampleNegatives draws n cells uniformly at random from the unobserved part
// of x by rejection sampling. The Negative Sampling ablation row of Table II
// and the Table IV timing use it. The rejection loop is bounded: after
// 50·n + 1000 attempts (enough for tensors up to ~98% dense with high
// probability) it returns a descriptive error instead of spinning, as it also
// does immediately for a full tensor.
func SampleNegatives(x *tensor.COO, n int, rng *rand.Rand) ([]tensor.Entry, error) {
	if n <= 0 {
		return nil, nil
	}
	if int64(x.NNZ()) >= x.Size() {
		return nil, fmt.Errorf("core: cannot sample %d negatives: tensor %dx%dx%d is full", n, x.DimI, x.DimJ, x.DimK)
	}
	maxAttempts := 50*n + 1000
	out := make([]tensor.Entry, 0, n)
	for attempts := 0; len(out) < n; attempts++ {
		if attempts >= maxAttempts {
			return nil, fmt.Errorf("core: sampled only %d of %d negatives after %d attempts (density %.4f): tensor too dense for rejection sampling",
				len(out), n, attempts, x.Density())
		}
		i, j, k := rng.Intn(x.DimI), rng.Intn(x.DimJ), rng.Intn(x.DimK)
		if !x.Has(i, j, k) {
			out = append(out, tensor.Entry{I: i, J: j, K: k, Val: 0})
		}
	}
	return out, nil
}

// NegSamplingLoss is the ablation counterpart of WholeDataLoss: the weighted
// squared error over the observed entries plus the given sampled negatives
// only (the strategy of NCF), with optional gradient accumulation. It
// delegates to NegSamplingLossWorkers with the default worker count.
func (m *Model) NegSamplingLoss(x *tensor.COO, negatives []tensor.Entry, wPos, wNeg float64, grads *Grads) float64 {
	return m.NegSamplingLossWorkers(x, negatives, wPos, wNeg, grads, 0)
}

// NegSamplingLossWorkers is NegSamplingLoss with an explicit worker count
// (<= 0 selects par.DefaultWorkers). The positive and negative sweeps are each
// sharded with deterministic in-order reduction, so the result is bit-for-bit
// equal to the serial loops at workers = 1.
func (m *Model) NegSamplingLossWorkers(x *tensor.COO, negatives []tensor.Entry, wPos, wNeg float64, grads *Grads, workers int) float64 {
	loss := m.lossOverEntries(x.Entries(), grads, workers, func(e tensor.Entry, g *Grads) float64 {
		pred := m.Predict(e.I, e.J, e.K)
		diff := pred - e.Val
		if g != nil {
			m.accumEntryGrad(g, e.I, e.J, e.K, 2*wPos*diff)
		}
		return wPos * diff * diff
	})
	loss += m.lossOverEntries(negatives, grads, workers, func(e tensor.Entry, g *Grads) float64 {
		pred := m.Predict(e.I, e.J, e.K)
		if g != nil {
			m.accumEntryGrad(g, e.I, e.J, e.K, 2*wNeg*pred)
		}
		return wNeg * pred * pred
	})
	return loss
}

// PositiveRMSE and NegativeRMSE report the root-mean-squared error of the
// model on the observed (positive, target 1) cells and on a deterministic
// sample of unobserved (target 0) cells. Table III reports both columns.
func (m *Model) PositiveRMSE(x *tensor.COO) float64 {
	if x.NNZ() == 0 {
		return 0
	}
	var s float64
	for _, e := range x.Entries() {
		d := m.Predict(e.I, e.J, e.K) - e.Val
		s += d * d
	}
	return math.Sqrt(s / float64(x.NNZ()))
}

// NegativeRMSE samples n unobserved cells with rng and reports the RMSE of
// predicting them against 0, or NaN when the tensor is too dense to sample
// (see SampleNegatives).
func (m *Model) NegativeRMSE(x *tensor.COO, n int, rng *rand.Rand) float64 {
	if n <= 0 {
		return 0
	}
	negs, err := SampleNegatives(x, n, rng)
	if err != nil {
		return math.NaN()
	}
	var s float64
	for _, e := range negs {
		d := m.Predict(e.I, e.J, e.K)
		s += d * d
	}
	return math.Sqrt(s / float64(n))
}
