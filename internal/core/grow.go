package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tcss/internal/mat"
)

// ErrCompactModel marks operations that need float64 factors but found a
// compact (f32/int8) or mmap-backed model. Callers should Decompress first —
// or, for growth, route the write to a float64 replica; serving maps this to
// 503 rather than a generic failure.
var ErrCompactModel = errors.New("core: model factors are not float64 storage")

// ErrOutOfRange marks an online entry outside the model's dimensions when
// growth is not enabled. Serving maps this to 409 so clients can distinguish
// "the model has not grown yet" from a malformed request.
var ErrOutOfRange = errors.New("core: entry outside model dimensions")

// GrowthHints supplies the side knowledge Grow uses to warm-start appended
// factor rows. All fields are optional; rows without hints fall back to the
// column-mean direction of the existing factors (the dominant direction of
// the learned subspace, which is what the spectral initialization would
// estimate for a history-less entity).
type GrowthHints struct {
	// Friends maps a new user row to existing user ids; the new U1 row
	// starts at the mean of the friends' rows (social homophily: friends
	// co-visit, so a newcomer's taste is best estimated by their circle).
	Friends map[int][]int
	// NearPOIs maps a new POI row to geographically-near existing POI ids;
	// the new U2 row starts at their mean (Tobler's law: near POIs draw
	// similar crowds).
	NearPOIs map[int][]int
	// Random disables warm-starting entirely: new rows are drawn uniform on
	// [0, 1/√r) as RandomInit would. Exists for the warm-vs-random ablation.
	Random bool
	// Seed drives the symmetry-breaking noise blended into warm rows.
	Seed int64
}

// Grow extends the model to newI users and newJ POIs in place, appending
// warm-started rows to U1/U2. Dimensions only grow; the time axis K is the
// calendar and never changes. Existing rows are preserved bit-identically, so
// predictions for old (i,j,k) cells shift only through subsequent training —
// the invariant that lets readers of an older-generation snapshot coexist
// with a grown successor.
//
// Row id gaps are allowed (a sharded deployment numbers new entities
// globally, so one shard sees non-contiguous ids): rows between the old and
// new dimension without hints get the column-mean fallback and become real
// entities if check-ins ever arrive for them.
func (m *Model) Grow(newI, newJ int, hints *GrowthHints) error {
	if newI < m.I || newJ < m.J {
		return fmt.Errorf("core: Grow cannot shrink %dx%d to %dx%d", m.I, m.J, newI, newJ)
	}
	if newI == m.I && newJ == m.J {
		return nil
	}
	if m.Mode != StorageFloat64 {
		return fmt.Errorf("core: Grow on %v model: %w", m.Mode, ErrCompactModel)
	}
	if hints == nil {
		hints = &GrowthHints{}
	}
	rng := rand.New(rand.NewSource(hints.Seed))
	oldI, oldJ := m.I, m.J
	m.U1 = growFactor(m.U1, newI, hints.Friends, hints.Random, rng)
	m.U2 = growFactor(m.U2, newJ, hints.NearPOIs, hints.Random, rng)
	if m.ZeroOutFilter != nil {
		m.ZeroOutFilter = growZeroOut(m.ZeroOutFilter, oldI, oldJ, newI, newJ)
	}
	m.I, m.J = newI, newJ
	return nil
}

// growFactor returns a newRows×r matrix whose first u.Rows rows are u's and
// whose appended rows are warm-started: the mean of the hinted source rows
// (only sources below the row's own index contribute, so hints may chain
// through other arrivals) plus non-negative symmetry-breaking noise at the
// same relative magnitude the spectral initialization uses. Without usable
// hints a row starts at the column means of the existing factors.
func growFactor(u *mat.Matrix, newRows int, srcs map[int][]int, random bool, rng *rand.Rand) *mat.Matrix {
	r := u.Cols
	out := mat.New(newRows, r)
	copy(out.Data[:u.Rows*r], u.Data)
	if newRows == u.Rows {
		return out
	}
	if random {
		scale := 1.0 / math.Sqrt(float64(r))
		for i := u.Rows * r; i < newRows*r; i++ {
			out.Data[i] = rng.Float64() * scale
		}
		return out
	}
	colMean := make([]float64, r)
	for i := 0; i < u.Rows; i++ {
		row := u.Row(i)
		for t := range colMean {
			colMean[t] += row[t]
		}
	}
	for t := range colMean {
		colMean[t] /= float64(u.Rows)
	}
	targetRMS := initTargetRMS(r)
	for i := u.Rows; i < newRows; i++ {
		row := out.Row(i)
		n := 0
		for _, s := range srcs[i] {
			if s < 0 || s >= i {
				continue
			}
			src := out.Row(s)
			for t := range row {
				row[t] += src[t]
			}
			n++
		}
		if n > 0 {
			for t := range row {
				row[t] /= float64(n)
			}
		} else {
			copy(row, colMean)
		}
		for t := range row {
			row[t] += math.Abs(rng.NormFloat64()) * initBlendNoise * targetRMS
		}
	}
	return out
}

// growZeroOut extends the zero-out filter permissively: rows and columns
// without distance history allow every POI until the filter is next rebuilt
// from real side information.
func growZeroOut(zf [][]bool, oldI, oldJ, newI, newJ int) [][]bool {
	out := make([][]bool, newI)
	for i := 0; i < oldI; i++ {
		row := zf[i]
		if newJ > oldJ {
			nr := make([]bool, newJ)
			copy(nr, row)
			for j := oldJ; j < newJ; j++ {
				nr[j] = true
			}
			row = nr
		}
		out[i] = row
	}
	for i := oldI; i < newI; i++ {
		nr := make([]bool, newJ)
		for j := range nr {
			nr[j] = true
		}
		out[i] = nr
	}
	return out
}
