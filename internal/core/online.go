package core

import (
	"fmt"
	"math/rand"
	"sort"

	"tcss/internal/opt"
	"tcss/internal/tensor"
)

// OnlineConfig controls incremental updates of an already-trained model when
// new check-ins arrive, without retraining from scratch. Only the rows of
// the affected users and POIs (and the shared time factors and h) receive
// gradient updates, so an update is cheap even on large models.
type OnlineConfig struct {
	Epochs     int     // update passes over the combined objective
	LR         float64 // Adam learning rate for the update
	WPos, WNeg float64 // class weights, as in training
	Lambda     float64 // social head weight; 0 skips the head
	NegPerNew  float64 // sampled negatives per new check-in for contrast
	Seed       int64
}

// DefaultOnlineConfig returns update hyperparameters matched to
// DefaultConfig's training regime.
func DefaultOnlineConfig() OnlineConfig {
	return OnlineConfig{Epochs: 15, LR: 0.02, WPos: 0.99, WNeg: 0.01, Lambda: 0, NegPerNew: 8}
}

// UpdateOnline folds new observed entries into the model: the entries are
// added to the training tensor, and the affected user rows are refined
// against (a) the new positives, (b) sampled negatives for contrast, and
// (c) the social Hausdorff head restricted to the affected users when side
// information is given. The tensor x is modified in place (the new entries
// are inserted); the returned count is the number of genuinely new cells.
func (m *Model) UpdateOnline(x *tensor.COO, newEntries []tensor.Entry, side *SideInfo, cfg OnlineConfig) (int, error) {
	if cfg.Epochs <= 0 || cfg.LR <= 0 {
		return 0, fmt.Errorf("core: online update needs positive epochs and LR, got %d/%g", cfg.Epochs, cfg.LR)
	}
	var fresh []tensor.Entry
	affected := make(map[int]struct{})
	for _, e := range newEntries {
		if e.I < 0 || e.I >= m.I || e.J < 0 || e.J >= m.J || e.K < 0 || e.K >= m.K {
			return 0, fmt.Errorf("core: online entry (%d,%d,%d) out of model range", e.I, e.J, e.K)
		}
		if !x.Has(e.I, e.J, e.K) {
			x.Set(e.I, e.J, e.K, 1)
			fresh = append(fresh, tensor.Entry{I: e.I, J: e.J, K: e.K, Val: 1})
		}
		affected[e.I] = struct{}{}
	}
	if len(fresh) == 0 {
		return 0, nil
	}

	var head *Hausdorff
	if side != nil && cfg.Lambda > 0 {
		// Rebuild friend sets only for the affected users? The side info
		// passed in already reflects the updated training data if the
		// caller rebuilt it; we use it as-is to keep the update cheap.
		head = NewHausdorff(side.Dist, side.EntropyW, side.FriendPOIs)
	}
	users := make([]int, 0, len(affected))
	for u := range affected {
		users = append(users, u)
	}
	sort.Ints(users)

	rng := rand.New(rand.NewSource(cfg.Seed))
	optim := opt.NewAdam(cfg.LR, 0)
	grads := NewGrads(m)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		grads.Zero()
		// New positives pulled toward 1.
		for _, e := range fresh {
			pred := m.Predict(e.I, e.J, e.K)
			m.accumEntryGrad(grads, e.I, e.J, e.K, 2*cfg.WPos*(pred-e.Val))
		}
		// Sampled negatives keep the update from inflating everything.
		n := int(cfg.NegPerNew * float64(len(fresh)))
		negs, err := SampleNegatives(x, n, rng)
		if err != nil {
			return 0, err
		}
		for _, e := range negs {
			pred := m.Predict(e.I, e.J, e.K)
			m.accumEntryGrad(grads, e.I, e.J, e.K, 2*cfg.WNeg*pred)
		}
		if head != nil {
			headGrads := NewGrads(m)
			head.Loss(m, users, headGrads)
			grads.DU1.AddInPlace(headGrads.DU1.Scale(cfg.Lambda))
			grads.DU2.AddInPlace(headGrads.DU2.Scale(cfg.Lambda))
			grads.DU3.AddInPlace(headGrads.DU3.Scale(cfg.Lambda))
			for t := range grads.DH {
				grads.DH[t] += cfg.Lambda * headGrads.DH[t]
			}
		}
		optim.Step("U1", m.U1.Data, grads.DU1.Data)
		optim.Step("U2", m.U2.Data, grads.DU2.Data)
		optim.Step("U3", m.U3.Data, grads.DU3.Data)
		optim.Step("h", m.H, grads.DH)
	}
	return len(fresh), nil
}
