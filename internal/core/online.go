package core

import (
	"fmt"
	"math"
	"sort"

	"tcss/internal/opt"
	"tcss/internal/tensor"
	"tcss/internal/train"
)

// OnlineConfig controls incremental updates of an already-trained model when
// new check-ins arrive, without retraining from scratch. Only the rows of
// the affected users and POIs (and the shared time factors and h) receive
// gradient updates, so an update is cheap even on large models.
type OnlineConfig struct {
	Epochs     int     // update passes over the combined objective
	LR         float64 // Adam learning rate for the update
	WPos, WNeg float64 // class weights, as in training
	Lambda     float64 // social head weight; 0 skips the head
	NegPerNew  float64 // sampled negatives per new check-in for contrast
	Seed       int64

	// Grow lets entries beyond the model's current (I, J) extend it via
	// Model.Grow instead of failing with ErrOutOfRange. GrowHints, when
	// set, warm-starts the appended rows (see GrowthHints); the time axis K
	// never grows.
	Grow      bool
	GrowHints *GrowthHints

	// DecayHalfLife, when positive, exponentially decays the existing
	// training positives before folding in the new batch: every stored
	// value is multiplied by 2^(-1/DecayHalfLife) per update, so a
	// check-in's training weight halves every DecayHalfLife observe steps
	// and stale positives stop dominating the loss. Re-observing a decayed
	// cell refreshes its weight to the new entry's value. 0 disables decay
	// (the historical behaviour).
	DecayHalfLife float64
	// DecayFloor drops entries once decay pushes them below it; 0 means
	// the default of 0.05 when decay is enabled.
	DecayFloor float64
}

// defaultDecayFloor is the weight below which decayed positives are dropped
// from the training tensor when DecayHalfLife is set without an explicit
// floor: 1/20th of a fresh check-in, reached after ~4.3 half-lives.
const defaultDecayFloor = 0.05

// DefaultOnlineConfig returns update hyperparameters matched to
// DefaultConfig's training regime.
func DefaultOnlineConfig() OnlineConfig {
	return OnlineConfig{Epochs: 15, LR: 0.02, WPos: 0.99, WNeg: 0.01, Lambda: 0, NegPerNew: 8}
}

// UpdateOnline folds new observed entries into the model: the entries are
// added to the training tensor, and the affected user rows are refined
// against (a) the new positives, (b) sampled negatives for contrast, and
// (c) the social Hausdorff head restricted to the affected users when side
// information is given. The tensor x is modified in place (the new entries
// are inserted, after time decay if configured); the returned count is the
// number of genuinely new cells. Entry values are honoured as gradient
// targets and stored weights — they must be positive.
//
// With cfg.Grow set, entries beyond (I, J) first extend the model and x via
// Model.Grow; without it they fail with ErrOutOfRange. Compact models fail
// with ErrCompactModel.
//
// The refinement is a warm-start run of the internal/train engine: the same
// driver that powers offline training executes a short full-batch schedule
// over three heads (fresh positives, sampled negatives, restricted social
// head), starting from the model's current factors instead of a fresh
// initialization.
func (m *Model) UpdateOnline(x *tensor.COO, newEntries []tensor.Entry, side *SideInfo, cfg OnlineConfig) (int, error) {
	if cfg.Epochs <= 0 || cfg.LR <= 0 {
		return 0, fmt.Errorf("core: online update needs positive epochs and LR, got %d/%g", cfg.Epochs, cfg.LR)
	}
	if m.Mode != StorageFloat64 {
		return 0, fmt.Errorf("core: online update on %v storage (Decompress first, re-compact after): %w", m.Mode, ErrCompactModel)
	}
	needI, needJ := m.I, m.J
	for _, e := range newEntries {
		if e.I < 0 || e.J < 0 || e.K < 0 || e.K >= m.K {
			return 0, fmt.Errorf("core: online entry (%d,%d,%d) invalid for model %dx%dx%d: %w",
				e.I, e.J, e.K, m.I, m.J, m.K, ErrOutOfRange)
		}
		if e.Val <= 0 {
			return 0, fmt.Errorf("core: online entry (%d,%d,%d) has non-positive weight %g", e.I, e.J, e.K, e.Val)
		}
		if e.I >= needI {
			needI = e.I + 1
		}
		if e.J >= needJ {
			needJ = e.J + 1
		}
	}
	if needI > m.I || needJ > m.J {
		if !cfg.Grow {
			return 0, fmt.Errorf("core: online entries need %dx%d but model is %dx%d and growth is disabled: %w",
				needI, needJ, m.I, m.J, ErrOutOfRange)
		}
		if err := m.Grow(needI, needJ, cfg.GrowHints); err != nil {
			return 0, err
		}
		x.Grow(needI, needJ, x.DimK)
	}
	if cfg.DecayHalfLife > 0 {
		floor := cfg.DecayFloor
		if floor == 0 {
			floor = defaultDecayFloor
		}
		x.DecayScale(math.Exp2(-1/cfg.DecayHalfLife), floor)
	}
	var fresh []tensor.Entry
	affected := make(map[int]struct{})
	for _, e := range newEntries {
		if !x.Has(e.I, e.J, e.K) {
			x.Set(e.I, e.J, e.K, e.Val)
			fresh = append(fresh, e)
		} else if cfg.DecayHalfLife > 0 {
			// A re-visit refreshes the decayed weight of the cell.
			x.Set(e.I, e.J, e.K, e.Val)
		}
		affected[e.I] = struct{}{}
	}
	if len(fresh) == 0 {
		return 0, nil
	}

	var head *Hausdorff
	if side != nil && cfg.Lambda > 0 {
		// Rebuild friend sets only for the affected users? The side info
		// passed in already reflects the updated training data if the
		// caller rebuilt it; we use it as-is to keep the update cheap.
		head = NewHausdorff(side.Dist, side.EntropyW, side.FriendPOIs)
	}
	users := make([]int, 0, len(affected))
	for u := range affected {
		// A stale side info (built before growth) has no friend sets for
		// newly-grown users; keep the head restricted to covered rows.
		if head != nil && u >= len(side.FriendPOIs) {
			continue
		}
		users = append(users, u)
	}
	sort.Ints(users)

	rng := train.NewRNG(cfg.Seed)
	grads := NewGrads(m)
	groups := train.GroupSet{
		{Name: "U1", Value: m.U1.Data, Grad: grads.DU1.Data},
		{Name: "U2", Value: m.U2.Data, Grad: grads.DU2.Data},
		{Name: "U3", Value: m.U3.Data, Grad: grads.DU3.Data},
		{Name: "h", Value: m.H, Grad: grads.DH},
	}

	// New positives pulled toward 1.
	heads := []train.Head{train.HeadFunc{W: 1, F: func(int) (float64, error) {
		var loss float64
		for _, e := range fresh {
			pred := m.Predict(e.I, e.J, e.K)
			d := pred - e.Val
			loss += cfg.WPos * d * d
			m.accumEntryGrad(grads, e.I, e.J, e.K, 2*cfg.WPos*(pred-e.Val))
		}
		return loss, nil
	}}}
	// Sampled negatives keep the update from inflating everything.
	heads = append(heads, train.HeadFunc{W: 1, F: func(int) (float64, error) {
		n := int(cfg.NegPerNew * float64(len(fresh)))
		negs, err := SampleNegatives(x, n, rng.Rand)
		if err != nil {
			return 0, err
		}
		var loss float64
		for _, e := range negs {
			pred := m.Predict(e.I, e.J, e.K)
			loss += cfg.WNeg * pred * pred
			m.accumEntryGrad(grads, e.I, e.J, e.K, 2*cfg.WNeg*pred)
		}
		return loss, nil
	}})
	if head != nil {
		headGrads := NewGrads(m)
		heads = append(heads, train.HeadFunc{W: cfg.Lambda, F: func(int) (float64, error) {
			headGrads.Zero()
			l1 := head.Loss(m, users, headGrads)
			grads.DU1.AddInPlace(headGrads.DU1.Scale(cfg.Lambda))
			grads.DU2.AddInPlace(headGrads.DU2.Scale(cfg.Lambda))
			grads.DU3.AddInPlace(headGrads.DU3.Scale(cfg.Lambda))
			for t := range grads.DH {
				grads.DH[t] += cfg.Lambda * headGrads.DH[t]
			}
			return l1, nil
		}})
	}

	driver, err := train.New(groups, heads, nil, opt.NewAdam(cfg.LR, 0), rng, train.Config{Epochs: cfg.Epochs})
	if err != nil {
		return 0, err
	}
	if err := driver.Run(); err != nil {
		return 0, err
	}
	return len(fresh), nil
}
