package core

import (
	"math"
	"math/rand"
	"testing"

	"tcss/internal/geo"
	"tcss/internal/tensor"
)

// parallelFixture is a model + data instance large enough that every worker
// count in the invariance tables gets multiple non-trivial shards.
type parallelFixture struct {
	m    *Model
	x    *tensor.COO
	head *Hausdorff
	side *SideInfo
}

func newParallelFixture(seed int64) *parallelFixture {
	rng := rand.New(rand.NewSource(seed))
	const I, J, K, r = 12, 25, 5, 4
	m := randomModel(I, J, K, r, rng)
	x := randomBinaryCOO(I, J, K, 120, rng)

	pts := make([]geo.Point, J)
	for j := range pts {
		pts[j] = geo.Point{Lat: float64(j%5) * 0.1, Lon: float64(j/5) * 0.1}
	}
	dist := geo.NewDistanceMatrix(pts)

	friendPOIs := make([][]int, I)
	ownPOIs := make([][]int, I)
	entropyW := make([]float64, J)
	for j := range entropyW {
		entropyW[j] = 0.5 + 0.5*rng.Float64()
	}
	for i := range friendPOIs {
		if i%4 == 0 {
			continue // leave some users without friend POIs
		}
		friendPOIs[i] = []int{i % J, (i*3 + 1) % J, (i*7 + 2) % J}
		ownPOIs[i] = []int{(i * 2) % J}
	}
	side := &SideInfo{Dist: dist, EntropyW: entropyW, OwnPOIs: ownPOIs, FriendPOIs: friendPOIs}
	return &parallelFixture{
		m: m, x: x, side: side,
		head: NewHausdorff(dist, entropyW, friendPOIs),
	}
}

func maxAbsDiff(a, b []float64) float64 {
	var worst float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func assertGradsClose(t *testing.T, tag string, want, got *Grads, tol float64) {
	t.Helper()
	for _, pair := range []struct {
		name       string
		want, got2 []float64
	}{
		{"DU1", want.DU1.Data, got.DU1.Data},
		{"DU2", want.DU2.Data, got.DU2.Data},
		{"DU3", want.DU3.Data, got.DU3.Data},
		{"DH", want.DH, got.DH},
	} {
		if d := maxAbsDiff(pair.want, pair.got2); d > tol {
			t.Fatalf("%s: %s differs by %g (> %g)", tag, pair.name, d, tol)
		}
	}
}

// TestWholeDataLossWorkerInvariance asserts the parallel positive-entry loop
// reproduces the serial loss and gradient at every worker count: workers = 1
// is the serial loop itself, and higher counts only regroup the shard-ordered
// reduction, staying within 1e-10.
func TestWholeDataLossWorkerInvariance(t *testing.T) {
	f := newParallelFixture(1)
	refGrads := NewGrads(f.m)
	ref := f.m.WholeDataLossWorkers(f.x, 0.99, 0.01, refGrads, 1)
	for _, w := range []int{2, 4, 8} {
		g := NewGrads(f.m)
		got := f.m.WholeDataLossWorkers(f.x, 0.99, 0.01, g, w)
		if math.Abs(got-ref) > 1e-10 {
			t.Fatalf("workers=%d: loss %g vs serial %g", w, got, ref)
		}
		assertGradsClose(t, "whole-data", refGrads, g, 1e-10)
	}
}

func TestNegSamplingLossWorkerInvariance(t *testing.T) {
	f := newParallelFixture(2)
	rng := rand.New(rand.NewSource(3))
	negs, err := SampleNegatives(f.x, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	refGrads := NewGrads(f.m)
	ref := f.m.NegSamplingLossWorkers(f.x, negs, 0.99, 0.01, refGrads, 1)
	for _, w := range []int{2, 8} {
		g := NewGrads(f.m)
		got := f.m.NegSamplingLossWorkers(f.x, negs, 0.99, 0.01, g, w)
		if math.Abs(got-ref) > 1e-10 {
			t.Fatalf("workers=%d: loss %g vs serial %g", w, got, ref)
		}
		assertGradsClose(t, "neg-sampling", refGrads, g, 1e-10)
	}
}

func TestHausdorffLossWorkerInvariance(t *testing.T) {
	f := newParallelFixture(4)
	users := make([]int, f.m.I)
	for i := range users {
		users[i] = i
	}
	refGrads := NewGrads(f.m)
	ref := f.head.LossWorkers(f.m, users, refGrads, 1)
	for _, w := range []int{2, 8} {
		// A fresh head per worker count proves the lazily built caches
		// (min-distances, normalized distances) do not depend on which worker
		// populates them.
		head := NewHausdorff(f.side.Dist, f.side.EntropyW, f.side.FriendPOIs)
		g := NewGrads(f.m)
		got := head.LossWorkers(f.m, users, g, w)
		if math.Abs(got-ref) > 1e-10 {
			t.Fatalf("workers=%d: loss %g vs serial %g", w, got, ref)
		}
		assertGradsClose(t, "hausdorff", refGrads, g, 1e-10)
	}
}

// TestScoreSlabMatchesPredict pins the slab GEMM kernel to the scalar Eq (6)
// evaluation across the whole J×K slice of several users.
func TestScoreSlabMatchesPredict(t *testing.T) {
	f := newParallelFixture(5)
	m := f.m
	out := make([]float64, m.J*m.K)
	for _, i := range []int{0, 3, m.I - 1} {
		m.ScoreSlab(i, out)
		for j := 0; j < m.J; j++ {
			for k := 0; k < m.K; k++ {
				want := m.Predict(i, j, k)
				if d := math.Abs(out[j*m.K+k] - want); d > 1e-12 {
					t.Fatalf("slab (%d,%d,%d): %g vs Predict %g", i, j, k, out[j*m.K+k], want)
				}
			}
		}
	}
}

func TestScoreCandidatesMatchesScore(t *testing.T) {
	f := newParallelFixture(6)
	m := f.m
	// Exercise the zero-out branch too.
	m.ZeroOutFilter = buildZeroOutFilter(m, f.side, 0.3, 1)
	js := []int{0, 5, 7, 11, 24}
	out := make([]float64, len(js))
	for i := 0; i < m.I; i++ {
		for k := 0; k < m.K; k++ {
			m.ScoreCandidates(i, k, js, out)
			for n, j := range js {
				want := m.Score(i, j, k)
				if math.IsInf(want, -1) {
					if !math.IsInf(out[n], -1) {
						t.Fatalf("(%d,%d,%d): filter not applied", i, j, k)
					}
					continue
				}
				if d := math.Abs(out[n] - want); d > 1e-12 {
					t.Fatalf("(%d,%d,%d): %g vs Score %g", i, j, k, out[n], want)
				}
			}
		}
	}
}

// TestZeroOutFilterWorkerInvariance: the filter rows are computed
// independently per user, so any worker count must give bit-for-bit the same
// boolean matrix.
func TestZeroOutFilterWorkerInvariance(t *testing.T) {
	f := newParallelFixture(7)
	ref := buildZeroOutFilter(f.m, f.side, 0.2, 1)
	for _, w := range []int{2, 8} {
		got := buildZeroOutFilter(f.m, f.side, 0.2, w)
		for i := range ref {
			for j := range ref[i] {
				if got[i][j] != ref[i][j] {
					t.Fatalf("workers=%d: filter[%d][%d] = %v, want %v", w, i, j, got[i][j], ref[i][j])
				}
			}
		}
	}
}

// TestTrainShortRunParallel drives a few epochs with Workers = 8 so the
// sharded loss kernels, the per-user distance caches and the zero-out filter
// build all run concurrently under the race detector (go test -race).
func TestTrainShortRunParallel(t *testing.T) {
	f := newParallelFixture(8)
	cfg := DefaultConfig()
	cfg.Rank = 4 // the fixture's K = 5 is below the default spectral rank
	cfg.Init = RandomInit
	cfg.Epochs = 3
	cfg.Workers = 8
	cfg.Variant = ZeroOut
	var last float64
	cfg.EpochCallback = func(epoch int, m *Model, loss float64) { last = loss }
	m, err := Train(f.x, f.side, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.ZeroOutFilter == nil {
		t.Fatal("zero-out variant must build a filter")
	}
	if math.IsNaN(last) || math.IsInf(last, 0) {
		t.Fatalf("non-finite training loss %g", last)
	}

	cfg.Variant = SocialHausdorff
	if _, err := Train(f.x, f.side, cfg); err != nil {
		t.Fatal(err)
	}
}
