package core

import (
	"fmt"
	"math"
)

// Explanation decomposes why the model recommends a POI to a user: the raw
// score at the queried time unit, the all-time visit probability (Eq 10's
// p_{i,j}), the peak time unit, whether friends visited the POI, the distance
// to the nearest friend-visited POI, and the POI's location-entropy weight.
// It makes the social-spatial reasoning of the TCSS loss inspectable at
// recommendation time.
type Explanation struct {
	User, POI, TimeUnit int

	Score            float64 // X̂[i,j,k] at the queried time unit
	VisitProbability float64 // p_{i,j} across all time units
	PeakTimeUnit     int     // argmax_k X̂[i,j,k]
	PeakScore        float64

	FriendVisited      bool    // j ∈ N(v_i)
	NearestFriendPOI   int     // closest member of N(v_i), -1 if none
	NearestFriendDist  float64 // kilometres; +Inf if no friend POIs
	LocationEntropyW   float64 // e_j = exp(−E_j); 1 when unweighted
	OwnVisited         bool    // user already visited j in training
	NearestOwnPOI      int     // closest own POI, -1 if none
	NearestOwnDistance float64 // kilometres; +Inf if none
}

// String renders a one-line human-readable explanation.
func (e Explanation) String() string {
	social := "no friend signal"
	if e.FriendVisited {
		social = "visited by friends"
	} else if e.NearestFriendPOI >= 0 && !math.IsInf(e.NearestFriendDist, 1) {
		social = fmt.Sprintf("%.1f km from friend POI %d", e.NearestFriendDist, e.NearestFriendPOI)
	}
	return fmt.Sprintf("POI %d for user %d at t=%d: score %.3f (peak t=%d), p(visit)=%.3f, %s, e_j=%.3f",
		e.POI, e.User, e.TimeUnit, e.Score, e.PeakTimeUnit, e.VisitProbability, social, e.LocationEntropyW)
}

// Explain builds the explanation of scoring (i, j, k) against the given side
// information (which may be the training-time SideInfo).
func (m *Model) Explain(side *SideInfo, i, j, k int) Explanation {
	ex := Explanation{
		User: i, POI: j, TimeUnit: k,
		Score:              m.Predict(i, j, k),
		VisitProbability:   m.VisitProbability(i, j),
		NearestFriendPOI:   -1,
		NearestFriendDist:  math.Inf(1),
		NearestOwnPOI:      -1,
		NearestOwnDistance: math.Inf(1),
		LocationEntropyW:   1,
	}
	for kk := 0; kk < m.K; kk++ {
		if s := m.Predict(i, j, kk); kk == 0 || s > ex.PeakScore {
			ex.PeakScore = s
			ex.PeakTimeUnit = kk
		}
	}
	if side == nil {
		return ex
	}
	if side.EntropyW != nil {
		ex.LocationEntropyW = side.EntropyW[j]
	}
	if friends := side.FriendPOIs[i]; len(friends) > 0 {
		ex.NearestFriendPOI, ex.NearestFriendDist = side.Dist.Nearest(j, friends)
		for _, fj := range friends {
			if fj == j {
				ex.FriendVisited = true
				break
			}
		}
	}
	if own := side.OwnPOIs[i]; len(own) > 0 {
		ex.NearestOwnPOI, ex.NearestOwnDistance = side.Dist.Nearest(j, own)
		for _, oj := range own {
			if oj == j {
				ex.OwnVisited = true
				break
			}
		}
	}
	return ex
}
