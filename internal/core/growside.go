package core

import (
	"fmt"
	"sort"

	"tcss/internal/geo"
	"tcss/internal/graph"
	"tcss/internal/tensor"
)

// GrowSideInfo extends side information to the dimensions of train and
// refreshes exactly the rows the touched entries affect, instead of the full
// O(I+J+nnz) rebuild of BuildSideInfo. The receiver-style input old is never
// mutated — published snapshots may still reference it — and unaffected rows
// of the result share their slices with old (copy-on-write at row
// granularity).
//
// social and dist must already cover train's dimensions (grow them first with
// graph.AddVertices / geo.DistanceMatrix.Grown). touched lists the entries
// just observed (or about to be): their users' own sets, their POIs' entropy
// weights, and the friend sets of every neighbour of a touched user are
// recomputed from train; everything else is carried over. Rows between old
// and new dimensions are initialized even when untouched.
func GrowSideInfo(old *SideInfo, social *graph.Graph, dist *geo.DistanceMatrix, train *tensor.COO, touched []tensor.Entry) (*SideInfo, error) {
	if social.N() != train.DimI {
		return nil, fmt.Errorf("core: social graph covers %d users, tensor has %d", social.N(), train.DimI)
	}
	if dist.N != train.DimJ {
		return nil, fmt.Errorf("core: distance matrix covers %d POIs, tensor has %d", dist.N, train.DimJ)
	}
	oldI, oldJ := len(old.OwnPOIs), len(old.EntropyW)
	I, J := train.DimI, train.DimJ
	if I < oldI || J < oldJ {
		return nil, fmt.Errorf("core: side info cannot shrink %dx%d to %dx%d", oldI, oldJ, I, J)
	}

	// Rows needing recomputation: touched entries plus every newly-grown row.
	userDirty := make(map[int]struct{})
	poiDirty := make(map[int]struct{})
	for _, e := range touched {
		userDirty[e.I] = struct{}{}
		poiDirty[e.J] = struct{}{}
	}
	for i := oldI; i < I; i++ {
		userDirty[i] = struct{}{}
	}
	for j := oldJ; j < J; j++ {
		poiDirty[j] = struct{}{}
	}

	// One pass over the training entries collects the inputs for exactly the
	// dirty rows: per-POI visit multiplicities for entropy, per-user POI sets
	// for the own lists.
	visitCounts := make(map[int]map[int]int)
	ownSets := make(map[int]map[int]struct{})
	for _, e := range train.Entries() {
		if _, ok := poiDirty[e.J]; ok {
			if visitCounts[e.J] == nil {
				visitCounts[e.J] = make(map[int]int)
			}
			visitCounts[e.J][e.I]++
		}
		if _, ok := userDirty[e.I]; ok {
			if ownSets[e.I] == nil {
				ownSets[e.I] = make(map[int]struct{})
			}
			ownSets[e.I][e.J] = struct{}{}
		}
	}

	entropyW := make([]float64, J)
	copy(entropyW, old.EntropyW)
	for j := oldJ; j < J; j++ {
		entropyW[j] = 1 // unvisited POI: entropy 0, weight 1
	}
	for j := range poiDirty {
		counts := visitCounts[j]
		if counts == nil {
			entropyW[j] = 1
			continue
		}
		visits := make([]int, 0, len(counts))
		for _, c := range counts {
			visits = append(visits, c)
		}
		sort.Ints(visits)
		entropyW[j] = geo.EntropyWeight(geo.LocationEntropy(visits))
	}

	own := make([][]int, I)
	copy(own, old.OwnPOIs)
	for i := oldI; i < I; i++ {
		own[i] = nil
	}
	for i := range userDirty {
		set := ownSets[i]
		lst := make([]int, 0, len(set))
		for j := range set {
			lst = append(lst, j)
		}
		sort.Ints(lst)
		own[i] = lst
	}

	// A user's friend set changes when any neighbour's own set changed, or
	// when the user itself is new (its edges are new). Dirty users' own sets
	// changed, so their neighbours are dirty too.
	friendDirty := make(map[int]struct{})
	for u := range userDirty {
		friendDirty[u] = struct{}{}
		for _, v := range social.Neighbors(u) {
			friendDirty[v] = struct{}{}
		}
	}
	friends := make([][]int, I)
	copy(friends, old.FriendPOIs)
	for i := oldI; i < I; i++ {
		friends[i] = nil
	}
	for v := range friendDirty {
		set := make(map[int]struct{})
		for _, f := range social.Neighbors(v) {
			for _, j := range own[f] {
				set[j] = struct{}{}
			}
		}
		lst := make([]int, 0, len(set))
		for j := range set {
			lst = append(lst, j)
		}
		sort.Ints(lst)
		friends[v] = lst
	}

	return &SideInfo{Dist: dist, EntropyW: entropyW, OwnPOIs: own, FriendPOIs: friends}, nil
}
