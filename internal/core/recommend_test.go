package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"tcss/internal/mat"
)

// randomRecModel builds a model with random factors for ranking tests.
func randomRecModel(i, j, k, rank int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := NewModel(i, j, k, rank)
	for t := range m.U1.Data {
		m.U1.Data[t] = rng.NormFloat64()
	}
	for t := range m.U2.Data {
		m.U2.Data[t] = rng.NormFloat64()
	}
	for t := range m.U3.Data {
		m.U3.Data[t] = rng.NormFloat64()
	}
	for t := range m.H {
		m.H[t] = rng.NormFloat64()
	}
	return m
}

// referenceTopN ranks every candidate with the same factored kernel as
// TopNScratch and a full sort — the O(J log J) specification the bounded heap
// must reproduce exactly, ties included.
func referenceTopN(m *Model, i, k, n int, skip map[int]bool) []Recommendation {
	w := make([]float64, m.Rank)
	u1, u3 := m.U1.Row(i), m.U3.Row(k)
	for t := range w {
		w[t] = m.H[t] * u1[t] * u3[t]
	}
	recs := make([]Recommendation, 0, m.J)
	for j := 0; j < m.J; j++ {
		if skip[j] {
			continue
		}
		if m.ZeroOutFilter != nil && !m.ZeroOutFilter[i][j] {
			continue
		}
		recs = append(recs, Recommendation{POI: j, Score: mat.DotUnrolled(w, m.U2.Row(j))})
	}
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].Score != recs[b].Score {
			return recs[a].Score > recs[b].Score
		}
		return recs[a].POI < recs[b].POI
	})
	if n < len(recs) {
		recs = recs[:n]
	}
	return recs
}

func TestTopNScratchMatchesReference(t *testing.T) {
	m := randomRecModel(6, 57, 4, 7, 1)
	scratch := NewRecScratch(m)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		i, k := rng.Intn(m.I), rng.Intn(m.K)
		n := 1 + rng.Intn(m.J+5)
		skip := map[int]bool{}
		var skipList []int
		for j := 0; j < m.J; j++ {
			if rng.Float64() < 0.2 {
				skip[j] = true
				skipList = append(skipList, j)
			}
		}
		got := m.TopNScratch(i, k, n, skipList, scratch)
		want := referenceTopN(m, i, k, n, skip)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d recs, want %d", trial, len(got), len(want))
		}
		for r := range got {
			if got[r] != want[r] {
				t.Fatalf("trial %d rank %d: got %+v, want %+v", trial, r, got[r], want[r])
			}
		}
	}
}

func TestTopNScratchTies(t *testing.T) {
	// All candidates score identically: the tie-break must hand back the
	// lowest POI ids in ascending order, as the full sort does.
	m := NewModel(1, 9, 1, 1)
	for j := 0; j < m.J; j++ {
		m.U2.Set(j, 0, 1)
	}
	m.U1.Set(0, 0, 1)
	m.U3.Set(0, 0, 1)
	m.H[0] = 1
	got := m.TopNScratch(0, 0, 4, nil, NewRecScratch(m))
	if len(got) != 4 {
		t.Fatalf("got %d recs", len(got))
	}
	for r, rec := range got {
		if rec.POI != r {
			t.Fatalf("tie-break order %+v, want POIs 0,1,2,3", got)
		}
	}
}

func TestTopNScratchZeroOutAndEdgeCases(t *testing.T) {
	m := randomRecModel(2, 12, 2, 3, 3)
	m.ZeroOutFilter = make([][]bool, m.I)
	for i := range m.ZeroOutFilter {
		m.ZeroOutFilter[i] = make([]bool, m.J)
		for j := 0; j < m.J; j += 2 {
			m.ZeroOutFilter[i][j] = true // only even POIs allowed
		}
	}
	s := NewRecScratch(m)
	got := m.TopNScratch(0, 0, m.J, nil, s)
	if len(got) != m.J/2 {
		t.Fatalf("filter kept %d POIs, want %d", len(got), m.J/2)
	}
	for _, rec := range got {
		if rec.POI%2 != 0 {
			t.Fatalf("zero-out filter leaked POI %d", rec.POI)
		}
	}
	if recs := m.TopNScratch(0, 0, 0, nil, s); len(recs) != 0 {
		t.Fatalf("n=0 returned %d recs", len(recs))
	}
	// Out-of-range skip entries are ignored rather than panicking.
	if recs := m.TopNScratch(0, 0, 3, []int{-5, 9999}, s); len(recs) != 3 {
		t.Fatalf("out-of-range skip gave %d recs", len(recs))
	}
	// Skipping everything yields an empty result.
	all := make([]int, m.J)
	for j := range all {
		all[j] = j
	}
	if recs := m.TopNScratch(0, 0, 3, all, s); len(recs) != 0 {
		t.Fatalf("skip-all gave %d recs", len(recs))
	}
}

func TestTopNScratchReuseAcrossCalls(t *testing.T) {
	// The same scratch must give identical answers call after call (stamp
	// rollover of the skip bitmap, heap reset), including when the skip set
	// changes between calls.
	m := randomRecModel(3, 30, 3, 5, 4)
	s := NewRecScratch(m)
	first := m.TopNScratch(1, 2, 8, []int{0, 1, 2}, s)
	for trial := 0; trial < 100; trial++ {
		m.TopNScratch(trial%m.I, trial%m.K, 5, []int{trial % m.J}, s)
	}
	again := m.TopNScratch(1, 2, 8, []int{0, 1, 2}, s)
	if len(first) != len(again) {
		t.Fatalf("reuse changed result length %d -> %d", len(first), len(again))
	}
	for r := range first {
		if first[r] != again[r] {
			t.Fatalf("reuse changed rank %d: %+v -> %+v", r, first[r], again[r])
		}
	}
}

func TestTopNScratchAllocs(t *testing.T) {
	m := randomRecModel(4, 100, 4, 8, 5)
	s := NewRecScratch(m)
	skip := []int{3, 17, 42}
	m.TopNScratch(0, 0, 10, skip, s) // warm buffer growth
	allocs := testing.AllocsPerRun(100, func() {
		m.TopNScratch(1, 1, 10, skip, s)
	})
	// Only the returned slice may allocate.
	if allocs > 1 {
		t.Fatalf("TopNScratch allocates %v objects/op, want <= 1", allocs)
	}
}

func TestTopNScoresMatchPredict(t *testing.T) {
	// The factored kernel regroups multiplications, so scores agree with
	// Predict to rounding error, not bit-for-bit.
	m := randomRecModel(3, 20, 3, 6, 6)
	for _, rec := range m.TopN(1, 1, 20, nil) {
		want := m.Predict(1, rec.POI, 1)
		if diff := math.Abs(rec.Score - want); diff > 1e-12*(1+math.Abs(want)) {
			t.Fatalf("POI %d score %g vs Predict %g (diff %g)", rec.POI, rec.Score, want, diff)
		}
	}
}

// BenchmarkTopNAlloc is the pre-scratch path: a fresh scratch (and skip map
// conversion) per call, as Model.TopN does.
func BenchmarkTopNAlloc(b *testing.B) {
	m := randomRecModel(64, 800, 12, 10, 7)
	skip := map[int]bool{}
	for j := 0; j < 20; j++ {
		skip[j*7%m.J] = true
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TopN(i%m.I, i%m.K, 10, skip)
	}
}

// BenchmarkTopNScratch is the serving path: reused buffers, slice skip set.
func BenchmarkTopNScratch(b *testing.B) {
	m := randomRecModel(64, 800, 12, 10, 7)
	var skip []int
	for j := 0; j < 20; j++ {
		skip = append(skip, j*7%m.J)
	}
	s := NewRecScratch(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TopNScratch(i%m.I, i%m.K, 10, skip, s)
	}
}
