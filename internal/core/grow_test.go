package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"tcss/internal/geo"
	"tcss/internal/tensor"
)

func TestModelGrowPreservesExistingRows(t *testing.T) {
	m := NewModel(4, 3, 2, 2)
	rng := rand.New(rand.NewSource(1))
	if err := m.Initialize(RandomInit, nil, rng); err != nil {
		t.Fatal(err)
	}
	oldU1 := m.U1.Clone()
	oldU2 := m.U2.Clone()
	if err := m.Grow(6, 5, &GrowthHints{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if m.I != 6 || m.J != 5 || m.K != 2 {
		t.Fatalf("dims = %dx%dx%d", m.I, m.J, m.K)
	}
	for i := 0; i < 4; i++ {
		for r := 0; r < 2; r++ {
			if m.U1.At(i, r) != oldU1.At(i, r) {
				t.Fatalf("U1[%d,%d] changed", i, r)
			}
		}
	}
	for j := 0; j < 3; j++ {
		for r := 0; r < 2; r++ {
			if m.U2.At(j, r) != oldU2.At(j, r) {
				t.Fatalf("U2[%d,%d] changed", j, r)
			}
		}
	}
	// New rows must be initialized (non-zero) and deterministic under seed.
	for i := 4; i < 6; i++ {
		var s float64
		for r := 0; r < 2; r++ {
			s += math.Abs(m.U1.At(i, r))
		}
		if s == 0 {
			t.Fatalf("grown U1 row %d is zero", i)
		}
	}
	m2 := NewModel(4, 3, 2, 2)
	if err := m2.Initialize(RandomInit, nil, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if err := m2.Grow(6, 5, &GrowthHints{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6*2; i++ {
		if m.U1.Data[i] != m2.U1.Data[i] || i < 5*2 && m.U2.Data[i] != m2.U2.Data[i] {
			t.Fatal("Grow is not deterministic under seed")
		}
	}
}

func TestModelGrowWarmStartsFromFriends(t *testing.T) {
	m := NewModel(3, 2, 1, 2)
	// Users 0 and 1 have distinctive rows; user 2 is far away.
	m.U1.Set(0, 0, 1)
	m.U1.Set(0, 1, 3)
	m.U1.Set(1, 0, 3)
	m.U1.Set(1, 1, 1)
	m.U1.Set(2, 0, 40)
	m.U1.Set(2, 1, 40)
	if err := m.Grow(4, 2, &GrowthHints{Friends: map[int][]int{3: {0, 1}}, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	// Row 3 must start near the friend mean (2, 2), not the column mean
	// (~14.7): noise is bounded by a few initTargetRMS.
	tol := 5 * initTargetRMS(2)
	for r := 0; r < 2; r++ {
		if d := m.U1.At(3, r) - 2; d < 0 || d > tol {
			t.Errorf("warm row component %d = %g, want 2..%g", r, m.U1.At(3, r), 2+tol)
		}
	}
}

func TestModelGrowCompactRejected(t *testing.T) {
	m := NewModel(3, 3, 2, 2)
	if err := m.Initialize(RandomInit, nil, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
	c, err := m.ToStorage(StorageFloat32)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Grow(4, 4, nil); !errors.Is(err, ErrCompactModel) {
		t.Fatalf("Grow on f32 model: err = %v, want ErrCompactModel", err)
	}
}

func TestUpdateOnlineGrows(t *testing.T) {
	fx := newTrainFixture(40)
	cfg := DefaultConfig()
	cfg.Epochs = 5
	cfg.Rank = 3
	m, err := Train(fx.x, fx.side, cfg)
	if err != nil {
		t.Fatal(err)
	}
	oldI, oldJ := m.I, m.J
	entries := []tensor.Entry{
		{I: oldI + 1, J: oldJ, K: 0, Val: 1},
		{I: 0, J: oldJ, K: 1, Val: 1},
	}
	// Without Grow: typed sentinel.
	ocfg := DefaultOnlineConfig()
	if _, err := m.UpdateOnline(fx.x, entries, fx.side, ocfg); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	// With Grow: dims extend, entries land, predictions work everywhere.
	ocfg.Grow = true
	ocfg.GrowHints = &GrowthHints{Friends: map[int][]int{oldI + 1: {0}}, Seed: 3}
	added, err := m.UpdateOnline(fx.x, entries, fx.side, ocfg)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 {
		t.Fatalf("added = %d, want 2", added)
	}
	if m.I != oldI+2 || m.J != oldJ+1 {
		t.Fatalf("model dims = %dx%d, want %dx%d", m.I, m.J, oldI+2, oldJ+1)
	}
	if fx.x.DimI != m.I || fx.x.DimJ != m.J {
		t.Fatalf("tensor dims = %dx%d did not follow model", fx.x.DimI, fx.x.DimJ)
	}
	if !fx.x.Has(oldI+1, oldJ, 0) {
		t.Fatal("grown entry not inserted")
	}
	_ = m.Predict(m.I-1, m.J-1, 0) // must not panic
}

func TestUpdateOnlineHonorsEntryWeight(t *testing.T) {
	fx := newTrainFixture(41)
	m := NewModel(fx.x.DimI, fx.x.DimJ, fx.x.DimK, 2)
	if err := m.Initialize(RandomInit, nil, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	// Find an unobserved cell.
	var e tensor.Entry
	found := false
	for i := 0; i < fx.x.DimI && !found; i++ {
		for j := 0; j < fx.x.DimJ && !found; j++ {
			if !fx.x.Has(i, j, 0) {
				e = tensor.Entry{I: i, J: j, K: 0, Val: 0.25}
				found = true
			}
		}
	}
	if !found {
		t.Skip("fixture tensor is dense")
	}
	ocfg := DefaultOnlineConfig()
	ocfg.Epochs = 1
	if _, err := m.UpdateOnline(fx.x, []tensor.Entry{e}, nil, ocfg); err != nil {
		t.Fatal(err)
	}
	if got := fx.x.At(e.I, e.J, e.K); got != 0.25 {
		t.Fatalf("stored weight = %g, want the caller's 0.25 (regression: silent Val coercion)", got)
	}
	// Non-positive weights are rejected with a clear error, not coerced.
	bad := tensor.Entry{I: e.I, J: e.J, K: 1, Val: 0}
	if _, err := m.UpdateOnline(fx.x, []tensor.Entry{bad}, nil, ocfg); err == nil {
		t.Fatal("zero-weight entry must be rejected")
	}
}

func TestUpdateOnlineDecay(t *testing.T) {
	fx := newTrainFixture(42)
	m := NewModel(fx.x.DimI, fx.x.DimJ, fx.x.DimK, 2)
	if err := m.Initialize(RandomInit, nil, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	var old tensor.Entry
	for _, e := range fx.x.Entries() {
		old = e
		break
	}
	var e tensor.Entry
	for i := 0; i < fx.x.DimI; i++ {
		if !fx.x.Has(i, 0, 0) && (i != old.I || old.J != 0 || old.K != 0) {
			e = tensor.Entry{I: i, J: 0, K: 0, Val: 1}
			break
		}
	}
	ocfg := DefaultOnlineConfig()
	ocfg.Epochs = 1
	ocfg.DecayHalfLife = 2
	if _, err := m.UpdateOnline(fx.x, []tensor.Entry{e}, nil, ocfg); err != nil {
		t.Fatal(err)
	}
	factor := math.Exp2(-1.0 / 2)
	if got := fx.x.At(old.I, old.J, old.K); math.Abs(got-old.Val*factor) > 1e-12 {
		t.Fatalf("old entry weight = %g, want %g (one half-life step)", got, old.Val*factor)
	}
	if got := fx.x.At(e.I, e.J, e.K); got != 1 {
		t.Fatalf("fresh entry weight = %g, want 1 (decay must not touch the incoming batch)", got)
	}
	// Re-observing the decayed cell refreshes it to full weight.
	refresh := tensor.Entry{I: old.I, J: old.J, K: old.K, Val: 1}
	if _, err := m.UpdateOnline(fx.x, []tensor.Entry{refresh}, nil, ocfg); err != nil {
		t.Fatal(err)
	}
	if got := fx.x.At(old.I, old.J, old.K); got != 1 {
		t.Fatalf("re-observed weight = %g, want refreshed to 1", got)
	}
}

func TestGrowSideInfoMatchesFullRebuild(t *testing.T) {
	fx := newTrainFixture(43)
	rng := rand.New(rand.NewSource(9))
	I, J := fx.x.DimI, fx.x.DimJ

	// Grow the world: two new users (friends with 0 and 1), one new POI.
	social := fx.social.Clone()
	first := social.AddVertices(2)
	social.AddEdge(first, 0)
	social.AddEdge(first+1, 1)
	pts := make([]geo.Point, J+1)
	for j := 0; j < J; j++ {
		base := geo.Point{Lat: 30, Lon: -97}
		if j >= J/2 {
			base = geo.Point{Lat: 30.4, Lon: -97.5}
		}
		pts[j] = base
	}
	pts[J] = geo.Point{Lat: 30.2, Lon: -97.2}
	dist := geo.NewDistanceMatrix(pts)

	grownTrain := fx.x.Clone()
	grownTrain.Grow(I+2, J+1, fx.x.DimK)
	touched := []tensor.Entry{
		{I: first, J: J, K: 0, Val: 1},
		{I: 2, J: 1, K: 1, Val: 1},
		{I: first + 1, J: rng.Intn(J), K: 2, Val: 1},
	}
	for _, e := range touched {
		grownTrain.Set(e.I, e.J, e.K, e.Val)
	}

	got, err := GrowSideInfo(fx.side, social, dist, grownTrain, touched)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BuildSideInfo(social, dist, grownTrain)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.EntropyW) != len(want.EntropyW) {
		t.Fatalf("EntropyW len %d vs %d", len(got.EntropyW), len(want.EntropyW))
	}
	for j := range want.EntropyW {
		if math.Abs(got.EntropyW[j]-want.EntropyW[j]) > 1e-12 {
			t.Errorf("EntropyW[%d] = %g, want %g", j, got.EntropyW[j], want.EntropyW[j])
		}
	}
	for i := range want.OwnPOIs {
		if !equalInts(got.OwnPOIs[i], want.OwnPOIs[i]) {
			t.Errorf("OwnPOIs[%d] = %v, want %v", i, got.OwnPOIs[i], want.OwnPOIs[i])
		}
		if !equalInts(got.FriendPOIs[i], want.FriendPOIs[i]) {
			t.Errorf("FriendPOIs[%d] = %v, want %v", i, got.FriendPOIs[i], want.FriendPOIs[i])
		}
	}
	// Copy-on-write: the original side info must be untouched.
	if len(fx.side.OwnPOIs) != I || len(fx.side.EntropyW) != J {
		t.Error("GrowSideInfo mutated its input")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
