package core

import (
	"math/rand"
	"strings"
	"testing"

	"tcss/internal/tensor"
)

// TestSampleNegativesErrorPaths pins the failure modes of the rejection
// sampler: a full tensor is rejected immediately with a descriptive error, a
// near-saturated tensor fails the attempt cap rather than spinning forever,
// and non-positive requests are a silent no-op.
func TestSampleNegativesErrorPaths(t *testing.T) {
	t.Run("full-tensor", func(t *testing.T) {
		x := tensor.NewCOO(2, 2, 2)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				for k := 0; k < 2; k++ {
					x.Set(i, j, k, 1)
				}
			}
		}
		_, err := SampleNegatives(x, 1, rand.New(rand.NewSource(1)))
		if err == nil || !strings.Contains(err.Error(), "full") {
			t.Fatalf("full tensor: err = %v, want mention of full tensor", err)
		}
	})

	t.Run("attempt-cap-on-near-dense", func(t *testing.T) {
		// 99 of 100 cells observed: each attempt finds the single empty cell
		// with probability 1/100, so the 50n+1000 attempt budget cannot cover
		// n = 1000 requested negatives and the sampler must give up with the
		// density diagnostic instead of looping forever.
		x := tensor.NewCOO(5, 5, 4)
		filled := 0
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				for k := 0; k < 4 && filled < 99; k++ {
					x.Set(i, j, k, 1)
					filled++
				}
			}
		}
		_, err := SampleNegatives(x, 1000, rand.New(rand.NewSource(2)))
		if err == nil || !strings.Contains(err.Error(), "too dense") {
			t.Fatalf("near-dense tensor: err = %v, want attempt-cap diagnostic", err)
		}
	})

	t.Run("non-positive-n", func(t *testing.T) {
		x := tensor.NewCOO(2, 2, 2)
		x.Set(0, 0, 0, 1)
		for _, n := range []int{0, -3} {
			negs, err := SampleNegatives(x, n, rand.New(rand.NewSource(3)))
			if negs != nil || err != nil {
				t.Fatalf("n=%d: got (%v, %v), want (nil, nil)", n, negs, err)
			}
		}
	})

	t.Run("negatives-are-unobserved", func(t *testing.T) {
		x := tensor.NewCOO(4, 4, 4)
		rng := rand.New(rand.NewSource(4))
		for n := 0; n < 30; n++ {
			x.Set(rng.Intn(4), rng.Intn(4), rng.Intn(4), 1)
		}
		negs, err := SampleNegatives(x, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(negs) != 10 {
			t.Fatalf("got %d negatives, want 10", len(negs))
		}
		for _, e := range negs {
			if x.Has(e.I, e.J, e.K) {
				t.Fatalf("negative (%d,%d,%d) collides with an observed entry", e.I, e.J, e.K)
			}
			if e.Val != 0 {
				t.Fatalf("negative (%d,%d,%d) has value %g, want 0", e.I, e.J, e.K, e.Val)
			}
		}
	})
}
